module continuum

go 1.22
