// Package stream models continuous dataflow pipelines over the continuum:
// IoT sensors emit events that flow through a chain of operators (filter,
// aggregate, infer), each placed on some node. Operator placement is
// exactly the keynote's "where should I compute" question in streaming
// form — push raw data to central silicon, or filter at the edge and ship
// only survivors?
package stream

import (
	"fmt"

	"continuum/internal/core"
	"continuum/internal/metrics"
	"continuum/internal/node"
	"continuum/internal/workload"
)

// Stage is one pipeline operator.
type Stage struct {
	Name string
	// WorkPerEvent is the scalar flops spent on each incoming event.
	WorkPerEvent float64
	// Selectivity is the probability an event survives this stage (the
	// filter/aggregation ratio); must be in (0, 1].
	Selectivity float64
	// OutBytes is the size of each forwarded event.
	OutBytes float64
}

// Pipeline is an ordered operator chain.
type Pipeline struct {
	Name   string
	Stages []Stage
}

// Validate reports the first invalid stage, or nil.
func (p *Pipeline) Validate() error {
	if len(p.Stages) == 0 {
		return fmt.Errorf("stream: pipeline %q has no stages", p.Name)
	}
	for i, s := range p.Stages {
		if s.Selectivity <= 0 || s.Selectivity > 1 {
			return fmt.Errorf("stream: stage %d selectivity %v outside (0,1]", i, s.Selectivity)
		}
		if s.WorkPerEvent < 0 || s.OutBytes < 0 {
			return fmt.Errorf("stream: stage %d has negative work or bytes", i)
		}
	}
	return nil
}

// Source emits events into the pipeline from a topology vertex.
type Source struct {
	Origin     int // vertex id (typically a sensor)
	Arrivals   workload.ArrivalProcess
	Events     int     // number of events to emit
	EventBytes float64 // raw event size entering stage 0
}

// Placement assigns each stage to a node. Len must equal len(Stages).
type Placement []*node.Node

// Stats summarizes one streaming run.
type Stats struct {
	EventsIn  int64
	EventsOut int64 // events surviving the full pipeline
	Dropped   int64 // filtered out along the way
	Latency   *metrics.Histogram
	Joules    float64
	// StageEvents counts arrivals per stage.
	StageEvents []int64
	// WANBytes is the total bytes that crossed each stage boundary.
	BoundaryBytes []float64
}

// Run executes the pipeline in the continuum's simulation: each event
// travels origin→stage0→…→stageN, paying network movement between
// distinct nodes and compute at each stage. Events drop per stage
// selectivity (deterministically seeded). Run owns the kernel.
func Run(c *core.Continuum, p Pipeline, sources []Source, place Placement, rng *workload.RNG) (*Stats, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(place) != len(p.Stages) {
		return nil, fmt.Errorf("stream: placement covers %d of %d stages", len(place), len(p.Stages))
	}
	st := &Stats{
		Latency:       metrics.NewHistogram(),
		StageEvents:   make([]int64, len(p.Stages)),
		BoundaryBytes: make([]float64, len(p.Stages)+1),
	}

	var advance func(stage int, emitted float64)
	advance = func(stage int, emitted float64) {
		if stage == len(p.Stages) {
			st.EventsOut++
			st.Latency.Add(c.K.Now() - emitted)
			return
		}
		s := p.Stages[stage]
		n := place[stage]
		st.StageEvents[stage]++
		n.Execute(s.WorkPerEvent, 0, node.NoAccel, func() {
			if rng.Float64() >= s.Selectivity {
				st.Dropped++
				return
			}
			// Forward to the next stage (or finish).
			if stage+1 == len(p.Stages) {
				advance(stage+1, emitted)
				return
			}
			next := place[stage+1]
			st.BoundaryBytes[stage+1] += s.OutBytes
			if next.ID == n.ID {
				advance(stage+1, emitted)
				return
			}
			c.Net.Message(n.ID, next.ID, s.OutBytes, func() {
				advance(stage+1, emitted)
			})
		})
	}

	for _, src := range sources {
		src := src
		t := 0.0
		for i := 0; i < src.Events; i++ {
			t += src.Arrivals.Next()
			emit := t
			c.K.At(emit, func() {
				st.EventsIn++
				st.BoundaryBytes[0] += src.EventBytes
				first := place[0]
				if src.Origin == first.ID {
					advance(0, emit)
					return
				}
				c.Net.Message(src.Origin, first.ID, src.EventBytes, func() {
					advance(0, emit)
				})
			})
		}
	}
	c.K.Run()
	st.Joules = c.TotalJoules()
	return st, nil
}

// ExpectedOutRate returns the steady-state fraction of input events that
// survive all stages.
func (p *Pipeline) ExpectedOutRate() float64 {
	f := 1.0
	for _, s := range p.Stages {
		f *= s.Selectivity
	}
	return f
}

// IoTAnalytics returns the reference pipeline for the T1 experiment:
// parse (cheap, keeps everything), filter (drops 90%), featurize
// (moderate), infer (heavy, keeps everything it sees).
func IoTAnalytics() Pipeline {
	return Pipeline{
		Name: "iot-analytics",
		Stages: []Stage{
			{Name: "parse", WorkPerEvent: 1e6, Selectivity: 1.0, OutBytes: 512},
			{Name: "filter", WorkPerEvent: 5e6, Selectivity: 0.1, OutBytes: 256},
			{Name: "featurize", WorkPerEvent: 5e7, Selectivity: 1.0, OutBytes: 1024},
			{Name: "infer", WorkPerEvent: 5e8, Selectivity: 1.0, OutBytes: 128},
		},
	}
}
