package stream

import (
	"math"
	"testing"

	"continuum/internal/core"
	"continuum/internal/node"
	"continuum/internal/workload"
)

func tinyPipeline() Pipeline {
	return Pipeline{
		Name: "tiny",
		Stages: []Stage{
			{Name: "a", WorkPerEvent: 1e6, Selectivity: 1.0, OutBytes: 100},
			{Name: "b", WorkPerEvent: 1e6, Selectivity: 1.0, OutBytes: 50},
		},
	}
}

func testContinuum() (*core.ThreeTier, *core.Continuum) {
	tt := core.BuildThreeTier(core.DefaultThreeTierParams(2, 2))
	return tt, tt.Continuum
}

func TestPipelineValidate(t *testing.T) {
	good := tinyPipeline()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := tinyPipeline()
	bad.Stages[0].Selectivity = 0
	if bad.Validate() == nil {
		t.Fatal("zero selectivity accepted")
	}
	bad2 := tinyPipeline()
	bad2.Stages[1].WorkPerEvent = -1
	if bad2.Validate() == nil {
		t.Fatal("negative work accepted")
	}
	empty := Pipeline{Name: "e"}
	if empty.Validate() == nil {
		t.Fatal("empty pipeline accepted")
	}
}

func TestExpectedOutRate(t *testing.T) {
	p := IoTAnalytics()
	if r := p.ExpectedOutRate(); math.Abs(r-0.1) > 1e-12 {
		t.Fatalf("ExpectedOutRate = %v, want 0.1", r)
	}
}

func TestRunAllEventsSurviveWithUnitSelectivity(t *testing.T) {
	tt, c := testContinuum()
	p := tinyPipeline()
	src := Source{
		Origin:     tt.Sensors[0][0].ID,
		Arrivals:   workload.NewDeterministic(0.1),
		Events:     50,
		EventBytes: 200,
	}
	place := Placement{tt.Gateways[0], tt.Gateways[0]}
	st, err := Run(c, p, []Source{src}, place, workload.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if st.EventsIn != 50 || st.EventsOut != 50 || st.Dropped != 0 {
		t.Fatalf("in/out/drop = %d/%d/%d", st.EventsIn, st.EventsOut, st.Dropped)
	}
	if st.Latency.Count() != 50 {
		t.Fatal("latency histogram incomplete")
	}
	if st.StageEvents[0] != 50 || st.StageEvents[1] != 50 {
		t.Fatalf("stage events = %v", st.StageEvents)
	}
}

func TestRunSelectivityDrops(t *testing.T) {
	tt, c := testContinuum()
	p := tinyPipeline()
	p.Stages[0].Selectivity = 0.5
	src := Source{
		Origin:     tt.Sensors[0][0].ID,
		Arrivals:   workload.NewDeterministic(0.05),
		Events:     400,
		EventBytes: 200,
	}
	place := Placement{tt.Gateways[0], tt.Fog}
	st, err := Run(c, p, []Source{src}, place, workload.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	if st.EventsOut+st.Dropped != st.EventsIn {
		t.Fatalf("conservation violated: %d + %d != %d", st.EventsOut, st.Dropped, st.EventsIn)
	}
	frac := float64(st.EventsOut) / float64(st.EventsIn)
	if frac < 0.40 || frac > 0.60 {
		t.Fatalf("survival fraction %v, want ~0.5", frac)
	}
	// Stage 1 only sees survivors.
	if st.StageEvents[1] != st.EventsOut {
		t.Fatalf("stage1 events %d != out %d", st.StageEvents[1], st.EventsOut)
	}
}

func TestEdgeFilteringCutsWANBytes(t *testing.T) {
	// Placing the filter at the gateway vs at the cloud changes the bytes
	// crossing the WAN boundary by ~the selectivity factor.
	run := func(filterAtEdge bool) *Stats {
		tt, c := testContinuum()
		p := Pipeline{
			Name: "filter-then-infer",
			Stages: []Stage{
				{Name: "filter", WorkPerEvent: 1e6, Selectivity: 0.1, OutBytes: 100},
				{Name: "infer", WorkPerEvent: 1e7, Selectivity: 1.0, OutBytes: 10},
			},
		}
		var place Placement
		if filterAtEdge {
			place = Placement{tt.Gateways[0], tt.Cloud}
		} else {
			place = Placement{tt.Cloud, tt.Cloud}
		}
		src := Source{
			Origin:     tt.Sensors[0][0].ID,
			Arrivals:   workload.NewDeterministic(0.05),
			Events:     300,
			EventBytes: 1000,
		}
		st, err := Run(c, p, []Source{src}, place, workload.NewRNG(3))
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	edge := run(true)
	cloud := run(false)
	// Edge filtering: boundary 1 carries ~10% of events at 100B each.
	// Cloud-everything: boundary 0 carries all raw 1000B events over WAN.
	edgeCross := edge.BoundaryBytes[1]
	cloudCross := cloud.BoundaryBytes[0]
	if edgeCross*5 > cloudCross {
		t.Fatalf("edge filtering moved %v bytes, cloud %v; expected >5x reduction",
			edgeCross, cloudCross)
	}
}

func TestRunRejectsBadPlacement(t *testing.T) {
	tt, c := testContinuum()
	p := tinyPipeline()
	if _, err := Run(c, p, nil, Placement{tt.Fog}, workload.NewRNG(4)); err == nil {
		t.Fatal("short placement accepted")
	}
}

func TestMultipleSources(t *testing.T) {
	tt, c := testContinuum()
	p := tinyPipeline()
	var sources []Source
	for g := range tt.Sensors {
		for _, s := range tt.Sensors[g] {
			sources = append(sources, Source{
				Origin:     s.ID,
				Arrivals:   workload.NewPoisson(workload.NewRNG(uint64(s.ID)), 5),
				Events:     25,
				EventBytes: 300,
			})
		}
	}
	place := Placement{tt.Fog, tt.Fog}
	st, err := Run(c, p, sources, place, workload.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	want := int64(len(sources) * 25)
	if st.EventsIn != want || st.EventsOut != want {
		t.Fatalf("in/out = %d/%d, want %d", st.EventsIn, st.EventsOut, want)
	}
	if st.Joules <= 0 {
		t.Fatal("no energy accounted")
	}
}

func TestLatencyOrderingEdgeVsCloudForHeavyCompute(t *testing.T) {
	// With heavy per-event compute and tiny events, the fast cloud beats
	// the slow gateway even across the WAN.
	run := func(n *node.Node, tt *core.ThreeTier, c *core.Continuum) float64 {
		p := Pipeline{Name: "x", Stages: []Stage{
			{Name: "heavy", WorkPerEvent: 5e9, Selectivity: 1, OutBytes: 64},
		}}
		src := Source{
			Origin:     tt.Sensors[0][0].ID,
			Arrivals:   workload.NewDeterministic(5.0), // no queueing
			Events:     10,
			EventBytes: 100,
		}
		st, err := Run(c, p, []Source{src}, Placement{n}, workload.NewRNG(6))
		if err != nil {
			t.Fatal(err)
		}
		return st.Latency.Mean()
	}
	tt1, c1 := testContinuum()
	gw := run(tt1.Gateways[0], tt1, c1)
	tt2, c2 := testContinuum()
	cl := run(tt2.Cloud, tt2, c2)
	if cl >= gw {
		t.Fatalf("cloud %v not faster than gateway %v for heavy compute", cl, gw)
	}
}
