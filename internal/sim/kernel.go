// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel is callback-based rather than goroutine-based: events are
// closures scheduled at virtual times and executed in nondecreasing time
// order by a single Run loop. This keeps simulations deterministic
// (identical seeds produce identical traces), avoids synchronization
// overhead, and scales to millions of events per second on one core.
//
// Ties are broken by scheduling order: two events at the same virtual time
// fire in the order they were scheduled, so the simulation is fully
// reproducible.
//
// # Event queue
//
// The queue is a calendar queue (Brown 1988): an array of "day" buckets,
// each a sorted intrusive list, indexed by floor(time/width) mod buckets.
// Insert and extract-min are O(1) when the bucket width tracks the mean
// inter-event gap, which the queue maintains by resampling the width and
// doubling/halving the bucket count as the population crosses powers of
// two. Time distributions that defeat a fixed-width layout (a huge
// far-future outlier stretching the sampled width so the near-term events
// pile into one bucket) are detected by the per-operation work counters
// and demote the kernel to a binary heap for the rest of its lifetime —
// the heap is also available directly via NewKernelQueue for reference
// runs and differential tests.
//
// Event records are pooled: a fired or compacted record returns to a
// per-kernel freelist, and a fully drained kernel parks its freelist in a
// shared sync.Pool for the next kernel to adopt (the wire-buffer
// discipline), so steady-state scheduling — and even whole-kernel-per-run
// sweeps — allocate nothing. Timer handles carry a generation number so a
// stale handle can never cancel the record's next tenant.
package sim

import (
	"fmt"
	"math"
	"sync"
)

// timerRec is the pooled event record. Handles (Timer) reference it
// together with the generation observed at scheduling time; the
// generation advances whenever the record is recycled, invalidating every
// outstanding handle.
type timerRec struct {
	next      *timerRec // bucket chain (calendar mode) or freelist link
	fn        func()
	time      float64
	seq       uint64
	gen       uint64
	vb        int64 // virtual bucket index = floor(time/width) at insert
	cancelled bool
}

// recLess orders records by (time, seq): virtual time, ties broken by
// scheduling order.
func recLess(a, b *timerRec) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}

// Timer is a cancellable handle to a scheduled event, returned by At and
// After. It is a small value — copy it freely; the zero Timer is inert
// (Cancel and Pending are no-ops on it).
//
// Records behind timers are pooled and reused after the event fires or
// its cancellation is compacted away. A stale handle is detected by its
// generation number, so Cancel after firing remains a safe no-op even
// when the record already carries a different event.
type Timer struct {
	k   *Kernel
	rec *timerRec
	gen uint64
	at  float64
}

// Cancel prevents the timer's event from firing. It reports whether the
// event was still pending; cancelling an already-fired or
// already-cancelled timer is a no-op.
func (t Timer) Cancel() bool {
	r := t.rec
	if r == nil || r.gen != t.gen || r.cancelled {
		return false
	}
	r.cancelled = true
	k := t.k
	k.live--
	k.dead++
	// Compact once cancelled records exceed the live half of the queue:
	// a speculation/hedge-heavy run cancels most of what it schedules,
	// and without compaction the dead records would ride the queue until
	// their virtual time arrives.
	if k.dead > k.live && k.dead > compactMin {
		k.compact()
	}
	return true
}

// Time returns the virtual time at which the timer is (or was) scheduled.
func (t Timer) Time() float64 { return t.at }

// Pending reports whether the event is still scheduled: not yet fired and
// not cancelled.
func (t Timer) Pending() bool {
	return t.rec != nil && t.rec.gen == t.gen && !t.rec.cancelled
}

// QueueKind selects the kernel's event-queue implementation.
type QueueKind int

const (
	// QueueCalendar is the default: the calendar queue with automatic
	// demotion to the binary heap on pathological time distributions.
	QueueCalendar QueueKind = iota
	// QueueHeap pins the binary heap. It is the reference ordering the
	// calendar queue is differentially tested against, and the baseline
	// continuum-bench -engine measures speedups over.
	QueueHeap
)

const (
	minBuckets = 64
	maxBuckets = 1 << 21

	// compactMin is the cancelled-record floor below which compaction is
	// not worth the walk.
	compactMin = 64

	// workSample/workThreshold drive the heap fallback: per-operation
	// queue work (insert walk + dequeue scan steps) is averaged over
	// windows of workSample operations, and a sustained average above
	// workThreshold on a grown queue means the time distribution has
	// defeated the calendar layout.
	workSample    = 4096
	workThreshold = 24

	// maxVB caps virtual bucket indices so degenerate widths cannot
	// overflow the int64 bucket arithmetic; everything beyond collapses
	// into one (sorted) far-future bucket.
	maxVB = int64(1) << 62
)

// bucketEnt is one calendar day: the head of an UNSORTED intrusive list
// plus the minimum virtual bucket index of the records on it. Buckets are
// deliberately not kept sorted: a sorted insert must load another record
// to compare against, and at large populations that dependent load is a
// guaranteed cache miss on the insert critical path. Instead insert is a
// pure push-front touching only this entry, and the dequeue scan — which
// has to load the record it fires anyway — resolves ordering lazily. The
// cached minVB lets the hand's year test skip a bucket without loading
// any record. 16 bytes: four entries per cache line for the hand sweep.
type bucketEnt struct {
	head  *timerRec
	minVB int64
}

// calendar is the bucketed event queue. All fields are managed by the
// kernel; the year test uses exact integer virtual-bucket indices (vb)
// rather than accumulated float bucket edges, so ordering can never be
// broken by floating-point drift.
type calendar struct {
	ents  []bucketEnt
	mask  int64
	width float64
	invW  float64 // 1/width: vb mapping by multiply, off the division port
	hand  int64   // virtual bucket index the dequeue scan is at
	count int     // records in buckets, including cancelled ones
}

func (q *calendar) init(n int, width float64, hand int64) {
	if q.ents == nil || len(q.ents) != n {
		q.ents = make([]bucketEnt, n)
	}
	q.mask = int64(n - 1)
	q.width = width
	q.invW = 1 / width
	q.hand = hand
	q.count = 0
}

// vbOf maps a time to its virtual bucket under the current width,
// clamped to the far-future bucket and never behind the hand. Any
// monotone non-decreasing mapping preserves ordering (the in-bucket sort
// and the vb<=hand year test do the rest), so the multiply's rounding
// differences from an exact division are harmless.
func (q *calendar) vbOf(t float64) int64 {
	fv := t * q.invW
	vb := maxVB
	if fv < float64(maxVB) {
		vb = int64(fv)
	}
	if vb < q.hand {
		vb = q.hand
	}
	return vb
}

// insert files r into its bucket: an O(1) push-front that touches no
// record but r itself (which the caller just wrote and has in cache).
// Ordering is resolved lazily by the dequeue scan.
func (q *calendar) insert(r *timerRec) {
	r.vb = q.vbOf(r.time)
	e := &q.ents[r.vb&q.mask]
	r.next = e.head
	if e.head == nil || r.vb < e.minVB {
		e.minVB = r.vb
	}
	e.head = r
	q.count++
}

// locate advances the hand to the bucket holding the earliest record and
// returns its index, or -1 when the queue is empty. The year test is
// minVB <= hand: a bucket is due only in the year the hand is sweeping,
// never early, and the cached minVB answers it without loading a record.
// A full fruitless sweep (sparse or far-future queue) falls back to a
// direct minimum search over the cached indices and jumps the hand there.
// Correctness leans on vbOf being monotone: distinct vb values in play
// always map to distinct buckets (same vb ⇒ same bucket), so the bucket
// with the globally minimal vb contains every globally earliest record.
func (q *calendar) locate() (int64, int) {
	if q.count == 0 {
		return -1, 0
	}
	n := int64(len(q.ents))
	work := 0
	for i := int64(0); i < n; i++ {
		b := q.hand & q.mask
		if e := &q.ents[b]; e.head != nil && e.minVB <= q.hand {
			return b, work
		}
		q.hand++
		work++
	}
	minvb := int64(math.MaxInt64)
	for i := range q.ents {
		if e := &q.ents[i]; e.head != nil && e.minVB < minvb {
			minvb = e.minVB
		}
	}
	work += int(n)
	q.hand = minvb
	return minvb & q.mask, work
}

// collect drains every bucket into dst (for rebuilds and the heap
// fallback) and leaves the calendar empty.
func (q *calendar) collect(dst []*timerRec) []*timerRec {
	for i := range q.ents {
		for r := q.ents[i].head; r != nil; {
			next := r.next
			r.next = nil
			dst = append(dst, r)
			r = next
		}
		q.ents[i] = bucketEnt{}
	}
	q.count = 0
	return dst
}

// Kernel is a discrete-event simulation engine. The zero value is not
// usable; construct with NewKernel.
type Kernel struct {
	now     float64
	seq     uint64
	stopped bool
	fired   uint64

	live int // scheduled, uncancelled events — O(1) Pending()
	dead int // cancelled records still occupying the queue

	cal    calendar
	heap   []*timerRec
	onHeap bool

	free    *timerRec   // recycled records; steady-state At/fire never allocates
	scratch []*timerRec // rebuild/compaction buffer, reused across resizes

	// opWork/opCount sample per-operation queue work for the heap
	// fallback detector (see workThreshold).
	opWork, opCount uint64
}

// chainPool parks the freelists of fully drained kernels for the next
// kernel to adopt — the sync.Pool discipline the wire codec uses for its
// buffers. Sweeps that build one kernel per run reuse one freelist chain
// across the whole sweep instead of reallocating every record.
var chainPool sync.Pool

// NewKernel returns a kernel with virtual clock at 0 and the default
// (calendar) event queue.
func NewKernel() *Kernel {
	return NewKernelQueue(QueueCalendar)
}

// NewKernelQueue returns a kernel using the given event-queue
// implementation. QueueHeap is the reference/baseline queue; QueueCalendar
// is the default used by NewKernel.
func NewKernelQueue(kind QueueKind) *Kernel {
	k := &Kernel{}
	k.cal.init(minBuckets, 1.0, 0)
	if kind == QueueHeap {
		k.onHeap = true
	}
	return k
}

// Now returns the current virtual time in seconds.
func (k *Kernel) Now() float64 { return k.now }

// Pending returns the number of scheduled, uncancelled events. It is O(1):
// the kernel counts live events as they are scheduled, cancelled, and
// fired, so cancelled records still awaiting compaction are excluded
// without scanning the queue.
func (k *Kernel) Pending() int { return k.live }

// Fired returns the total number of events executed so far.
func (k *Kernel) Fired() uint64 { return k.fired }

// newRec takes a record from the freelist, adopting a drained kernel's
// parked chain when the local list is empty, and allocates only as a last
// resort.
func (k *Kernel) newRec() *timerRec {
	if k.free == nil {
		if c, _ := chainPool.Get().(*timerRec); c != nil {
			k.free = c
		}
	}
	if r := k.free; r != nil {
		k.free = r.next
		r.next = nil
		return r
	}
	return &timerRec{}
}

// recycle invalidates every outstanding handle to r (generation bump) and
// returns it to the freelist.
func (k *Kernel) recycle(r *timerRec) {
	r.gen++
	r.fn = nil
	r.cancelled = false
	r.next = k.free
	k.free = r
}

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past panics: allowing it would silently reorder causality. Non-finite
// times panic too — an event at +Inf could never fire.
func (k *Kernel) At(t float64, fn func()) Timer {
	if math.IsNaN(t) || math.IsInf(t, 0) {
		panic(fmt.Sprintf("sim: schedule at non-finite time %v", t))
	}
	if t < k.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, k.now))
	}
	k.seq++
	r := k.newRec()
	r.time, r.seq, r.fn = t, k.seq, fn
	k.live++
	if k.onHeap {
		k.heapPush(r)
	} else {
		k.cal.insert(r)
		k.noteWork(0)
		if !k.onHeap && k.cal.count > len(k.cal.ents) && len(k.cal.ents) < maxBuckets {
			k.rebuildCal()
		}
	}
	return Timer{k: k, rec: r, gen: r.gen, at: t}
}

// After schedules fn to run d seconds after the current virtual time.
// Negative d panics.
func (k *Kernel) After(d float64, fn func()) Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return k.At(k.now+d, fn)
}

// noteWork feeds the heap-fallback detector and, on a sustained
// pathological average over a grown queue, demotes this kernel to the
// binary heap for the rest of its lifetime.
func (k *Kernel) noteWork(w int) {
	k.opWork += uint64(w)
	k.opCount++
	// The window closes after workSample operations — or early, the
	// moment a partial window has already burned a full window's work
	// budget (one degenerate bucket scan must not run 4096 more times
	// before the detector looks).
	if k.opCount < workSample && k.opWork <= workThreshold*workSample {
		return
	}
	if k.opWork > workThreshold*k.opCount && len(k.cal.ents) >= 1024 {
		k.fallbackToHeap()
	}
	k.opWork, k.opCount = 0, 0
}

// fallbackToHeap pours the calendar into the binary heap. One-way: a
// distribution that defeated the calendar once (far-future outliers
// stretching the width until near-term events share a bucket) would keep
// defeating it after every resample.
func (k *Kernel) fallbackToHeap() {
	recs := k.cal.collect(k.scratch[:0])
	k.scratch = recs[:0]
	k.heap = append(k.heap[:0], recs...)
	for i := len(k.heap)/2 - 1; i >= 0; i-- {
		k.siftDown(i)
	}
	k.onHeap = true
}

// rebuildCal resizes the calendar to the current population: the bucket
// count leads the population by 2x and the width is resampled from the
// pending time range targeting ~1 event per bucket, so the sorted-insert
// walk almost never compares more than one record. (A denser layout reads
// nicer on paper but the walk's pointer chases are cache misses — the
// profile says sparse-and-wide wins.)
func (k *Kernel) rebuildCal() {
	recs := k.cal.collect(k.scratch[:0])
	k.scratch = recs[:0]
	count := len(recs)
	n := minBuckets
	for n < 2*count && n < maxBuckets {
		n <<= 1
	}
	tmin, tmax := math.Inf(1), math.Inf(-1)
	for _, r := range recs {
		if r.time < tmin {
			tmin = r.time
		}
		if r.time > tmax {
			tmax = r.time
		}
	}
	width := k.cal.width
	if count > 1 && tmax > tmin {
		width = (tmax - tmin) / float64(count)
	}
	if !(width > 0) || math.IsInf(width, 1) {
		width = 1
	}
	hand := int64(0)
	if fv := k.now * (1 / width); fv >= float64(maxVB) {
		hand = maxVB
	} else {
		hand = int64(fv)
	}
	k.cal.init(n, width, hand)
	for _, r := range recs {
		k.cal.insert(r)
	}
}

// compact removes every cancelled record from the queue and recycles it.
// Called from Cancel when dead records outnumber live ones, so a
// cancel-heavy run (speculation losers, hedge cancels) cannot bloat the
// queue with corpses waiting for their virtual time.
func (k *Kernel) compact() {
	if k.onHeap {
		kept := k.heap[:0]
		for _, r := range k.heap {
			if r.cancelled {
				k.recycle(r)
				continue
			}
			kept = append(kept, r)
		}
		for i := len(kept); i < len(k.heap); i++ {
			k.heap[i] = nil
		}
		k.heap = kept
		for i := len(k.heap)/2 - 1; i >= 0; i-- {
			k.siftDown(i)
		}
	} else {
		q := &k.cal
		for i := range q.ents {
			var head, tail *timerRec
			minvb := int64(math.MaxInt64)
			for r := q.ents[i].head; r != nil; {
				next := r.next
				if r.cancelled {
					q.count--
					k.recycle(r)
				} else {
					r.next = nil
					if tail == nil {
						head = r
					} else {
						tail.next = r
					}
					tail = r
					if r.vb < minvb {
						minvb = r.vb
					}
				}
				r = next
			}
			q.ents[i] = bucketEnt{head: head, minVB: minvb}
		}
	}
	k.dead = 0
	// A heavy cancellation wave may leave the calendar much larger than
	// its population; shrink it back toward the live count.
	k.maybeShrink()
}

// maybeShrink halves an oversized calendar after its population dropped.
func (k *Kernel) maybeShrink() {
	if !k.onHeap && len(k.cal.ents) > minBuckets && k.cal.count < len(k.cal.ents)/4 {
		k.rebuildCal()
	}
}

// scanBucket walks bucket b once: cancelled records are unlinked and
// recycled on the way, the cached minVB is rebuilt exactly, and the
// earliest live record due at the hand (vb <= hand) is returned — nil if
// the bucket holds only future-year records. The walk length is the work
// signal for the heap-fallback detector: a degenerate distribution that
// piles one bucket high shows up here as long scans.
func (k *Kernel) scanBucket(b int64) (*timerRec, int) {
	q := &k.cal
	e := &q.ents[b]
	var best, pred *timerRec
	minvb := int64(math.MaxInt64)
	work := 0
	for r := e.head; r != nil; {
		next := r.next
		if r.cancelled {
			if pred == nil {
				e.head = next
			} else {
				pred.next = next
			}
			r.next = nil
			q.count--
			k.dead--
			k.recycle(r)
		} else {
			if r.vb <= q.hand && (best == nil || recLess(r, best)) {
				best = r
			}
			if r.vb < minvb {
				minvb = r.vb
			}
			pred = r
		}
		r = next
		work++
	}
	e.minVB = minvb
	return best, work
}

// nextLive positions the queue at the earliest pending uncancelled
// record and returns it with its bucket index (-1 in heap mode) without
// removing it, recycling cancelled records it meets on the way. Returns
// a nil record when the queue is empty. The bucket index lets the run
// loops take the record afterwards without a second locate scan.
func (k *Kernel) nextLive() (*timerRec, int64) {
	for {
		if k.onHeap {
			if len(k.heap) == 0 {
				return nil, -1
			}
			r := k.heap[0]
			if !r.cancelled {
				return r, -1
			}
			k.heapPop()
			k.dead--
			k.recycle(r)
			continue
		}
		b, w := k.cal.locate()
		if b < 0 {
			return nil, -1
		}
		r, w2 := k.scanBucket(b)
		k.noteWork(w + w2)
		if k.onHeap {
			// The dequeue work signal just tripped the heap fallback;
			// the bucket index is stale, so restart in heap mode.
			continue
		}
		if r != nil {
			return r, b
		}
		// Every due record in the bucket was cancelled; the survivors are
		// future years, so the hand sweeps on.
	}
}

// takeLive unlinks the record nextLive just returned. In calendar mode
// the bucket is rescanned for the unlink and its minVB rebuilt — with the
// population spread at ~1 record per bucket both walks are trivially
// short, and nextLive already pulled the bucket's line into cache.
func (k *Kernel) takeLive(r *timerRec, b int64) {
	if b < 0 {
		k.heapPop()
		return
	}
	q := &k.cal
	e := &q.ents[b]
	var pred *timerRec
	for p := e.head; p != r; p = p.next {
		pred = p
	}
	if pred == nil {
		e.head = r.next
	} else {
		pred.next = r.next
	}
	r.next = nil
	q.count--
	minvb := int64(math.MaxInt64)
	for p := e.head; p != nil; p = p.next {
		if p.vb < minvb {
			minvb = p.vb
		}
	}
	e.minVB = minvb
}

// NextTime returns the virtual time of the earliest pending event, or
// +Inf when the queue is empty. It does not advance the clock.
func (k *Kernel) NextTime() float64 {
	if r, _ := k.nextLive(); r != nil {
		return r.time
	}
	return math.Inf(1)
}

// Stop makes the current Run call return after the executing event
// completes. Pending events remain scheduled.
func (k *Kernel) Stop() { k.stopped = true }

// Run executes events until none remain or Stop is called. It returns the
// number of events executed by this call. A fully drained kernel parks
// its record freelist in a shared pool for the next kernel to adopt.
func (k *Kernel) Run() int {
	n := k.RunUntil(math.Inf(1))
	if k.live == 0 && k.dead == 0 && k.free != nil {
		chainPool.Put(k.free)
		k.free = nil
	}
	return n
}

// RunUntil executes events with time <= deadline, then advances the clock
// to deadline (if finite). It returns the number of events executed by
// this call.
func (k *Kernel) RunUntil(deadline float64) int {
	k.stopped = false
	n := 0
	for !k.stopped {
		r, b := k.nextLive()
		if r == nil || r.time > deadline {
			break
		}
		k.takeLive(r, b)
		k.now = r.time
		fn := r.fn
		k.live--
		k.recycle(r)
		fn()
		k.fired++
		n++
		k.maybeShrink()
	}
	if !math.IsInf(deadline, 1) && k.now < deadline {
		k.now = deadline
	}
	return n
}

// Step executes exactly one pending event, if any, and reports whether an
// event ran.
func (k *Kernel) Step() bool {
	r, b := k.nextLive()
	if r == nil {
		return false
	}
	k.takeLive(r, b)
	k.now = r.time
	fn := r.fn
	k.live--
	k.recycle(r)
	fn()
	k.fired++
	k.maybeShrink()
	return true
}

// ---- binary heap (fallback + reference queue) ----

func (k *Kernel) heapPush(r *timerRec) {
	k.heap = append(k.heap, r)
	i := len(k.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !recLess(k.heap[i], k.heap[parent]) {
			break
		}
		k.heap[i], k.heap[parent] = k.heap[parent], k.heap[i]
		i = parent
	}
}

func (k *Kernel) heapPop() *timerRec {
	h := k.heap
	r := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h[last] = nil
	k.heap = h[:last]
	if last > 0 {
		k.siftDown(0)
	}
	return r
}

func (k *Kernel) siftDown(i int) {
	h := k.heap
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && recLess(h[r], h[l]) {
			m = r
		}
		if !recLess(h[m], h[i]) {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}
