// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel is callback-based rather than goroutine-based: events are
// closures scheduled at virtual times and executed in nondecreasing time
// order by a single Run loop. This keeps simulations deterministic
// (identical seeds produce identical traces), avoids synchronization
// overhead, and scales to millions of events per second on one core.
//
// Ties are broken by scheduling order: two events at the same virtual time
// fire in the order they were scheduled, so the simulation is fully
// reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Timer is a handle to a scheduled event. Cancel prevents a pending event
// from firing; cancelling an already-fired or already-cancelled timer is a
// no-op.
type Timer struct {
	index     int // heap index, -1 once fired or cancelled
	time      float64
	seq       uint64
	fn        func()
	cancelled bool
}

// Cancel prevents the timer's event from firing. It reports whether the
// event was still pending.
func (t *Timer) Cancel() bool {
	if t == nil || t.cancelled || t.index < 0 {
		return false
	}
	t.cancelled = true
	return true
}

// Time returns the virtual time at which the timer is (or was) scheduled.
func (t *Timer) Time() float64 { return t.time }

// eventHeap orders timers by (time, seq).
type eventHeap []*Timer

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	t := x.(*Timer)
	t.index = len(*h)
	*h = append(*h, t)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*h = old[:n-1]
	return t
}

// Kernel is a discrete-event simulation engine. The zero value is not
// usable; construct with NewKernel.
type Kernel struct {
	now     float64
	seq     uint64
	events  eventHeap
	stopped bool
	fired   uint64
}

// NewKernel returns a kernel with virtual clock at 0.
func NewKernel() *Kernel {
	return &Kernel{}
}

// Now returns the current virtual time in seconds.
func (k *Kernel) Now() float64 { return k.now }

// Pending returns the number of scheduled, uncancelled events.
// Cancelled events still occupying the heap are excluded.
func (k *Kernel) Pending() int {
	n := 0
	for _, t := range k.events {
		if !t.cancelled {
			n++
		}
	}
	return n
}

// Fired returns the total number of events executed so far.
func (k *Kernel) Fired() uint64 { return k.fired }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: allowing it would silently reorder causality.
func (k *Kernel) At(t float64, fn func()) *Timer {
	if math.IsNaN(t) {
		panic("sim: schedule at NaN time")
	}
	if t < k.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, k.now))
	}
	k.seq++
	tm := &Timer{time: t, seq: k.seq, fn: fn}
	heap.Push(&k.events, tm)
	return tm
}

// After schedules fn to run d seconds after the current virtual time.
// Negative d panics.
func (k *Kernel) After(d float64, fn func()) *Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return k.At(k.now+d, fn)
}

// Stop makes the current Run call return after the executing event
// completes. Pending events remain scheduled.
func (k *Kernel) Stop() { k.stopped = true }

// Run executes events until none remain or Stop is called. It returns the
// number of events executed by this call.
func (k *Kernel) Run() int {
	return k.RunUntil(math.Inf(1))
}

// RunUntil executes events with time <= deadline, then advances the clock
// to deadline (if any event ran or the clock was behind and events remain
// beyond). It returns the number of events executed by this call.
func (k *Kernel) RunUntil(deadline float64) int {
	k.stopped = false
	n := 0
	for len(k.events) > 0 && !k.stopped {
		next := k.events[0]
		if next.cancelled {
			heap.Pop(&k.events)
			continue
		}
		if next.time > deadline {
			break
		}
		heap.Pop(&k.events)
		k.now = next.time
		next.fn()
		k.fired++
		n++
	}
	if !math.IsInf(deadline, 1) && k.now < deadline {
		k.now = deadline
	}
	return n
}

// Step executes exactly one pending event, if any, and reports whether an
// event ran.
func (k *Kernel) Step() bool {
	for len(k.events) > 0 {
		next := k.events[0]
		heap.Pop(&k.events)
		if next.cancelled {
			continue
		}
		k.now = next.time
		next.fn()
		k.fired++
		return true
	}
	return false
}
