package sim

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// Group runs several independent Kernels ("shards") with conservative
// barrier synchronization, so per-node timelines that interact only at
// known points can execute in parallel across cores while producing
// output bit-identical to a serial run.
//
// The synchronization model is classic conservative parallel DES
// (Chandy–Misra windows): every cross-shard interaction must be posted
// through Post with a delivery time at least Lookahead beyond the
// sender's clock. Run then repeats three steps until no work remains:
//
//  1. deliver all buffered posts, in (sending shard, post order) —
//     a deterministic order independent of worker scheduling;
//  2. find T, the minimum next-event time across shards, and set the
//     window W = T + Lookahead;
//  3. run every shard up to W — serially with workers <= 1, or on a
//     worker pool otherwise. Within a window shards cannot affect each
//     other (any new cross-shard message lands at >= W), so the events
//     each shard executes are identical in both modes; only wall-clock
//     time differs.
//
// Each shard's events run on a single goroutine at a time, so event
// callbacks need no locking as long as they touch only their own shard's
// state (plus Post).
type Group struct {
	shards    []*Kernel
	lookahead float64
	posts     [][]post // buffered cross-shard messages, indexed by source shard
}

type post struct {
	dst int
	at  float64
	fn  func()
}

// NewGroup creates n shards with the given lookahead (the minimum
// cross-shard latency, in virtual seconds). Lookahead must be positive:
// a zero-lookahead message could violate the window in flight.
func NewGroup(n int, lookahead float64) *Group {
	if n <= 0 {
		panic(fmt.Sprintf("sim: group needs at least one shard, got %d", n))
	}
	if !(lookahead > 0) || math.IsInf(lookahead, 1) {
		panic(fmt.Sprintf("sim: group lookahead must be positive and finite, got %v", lookahead))
	}
	g := &Group{
		shards:    make([]*Kernel, n),
		lookahead: lookahead,
		posts:     make([][]post, n),
	}
	for i := range g.shards {
		g.shards[i] = NewKernel()
	}
	return g
}

// Shards returns the number of shards.
func (g *Group) Shards() int { return len(g.shards) }

// Shard returns the i'th kernel for scheduling that shard's own events.
func (g *Group) Shard(i int) *Kernel { return g.shards[i] }

// Lookahead returns the group's minimum cross-shard latency.
func (g *Group) Lookahead() float64 { return g.lookahead }

// Post schedules fn on shard dst at absolute virtual time at, from an
// event currently executing on shard src. The delivery time must be at
// least src.Now()+Lookahead — that slack is what lets shards run a whole
// window without observing each other. Delivery is buffered and applied
// at the next barrier in (src, post order), so the schedule order — and
// therefore the (time, seq) tie-break — is identical no matter how many
// workers ran the window.
func (g *Group) Post(src, dst int, at float64, fn func()) {
	now := g.shards[src].Now()
	if at < now+g.lookahead {
		panic(fmt.Sprintf("sim: post at %v violates lookahead %v from shard %d at %v",
			at, g.lookahead, src, now))
	}
	g.posts[src] = append(g.posts[src], post{dst: dst, at: at, fn: fn})
}

// Run executes all shards to completion using up to workers goroutines
// per window (workers <= 1 means fully serial) and returns the total
// number of events fired. Output is bit-identical across worker counts:
// the window boundaries, the post delivery order, and each shard's
// internal event order are all independent of scheduling.
func (g *Group) Run(workers int) uint64 {
	if workers < 1 {
		workers = 1
	}
	if workers > runtime.NumCPU() {
		workers = runtime.NumCPU()
	}
	var total uint64
	for {
		// Deliver buffered posts in deterministic (src, order) sequence.
		for src := range g.posts {
			for _, p := range g.posts[src] {
				g.shards[p.dst].At(p.at, p.fn)
			}
			g.posts[src] = g.posts[src][:0]
		}
		// Next window: [T, T+lookahead] where T is the global minimum.
		t := math.Inf(1)
		for _, k := range g.shards {
			if nt := k.NextTime(); nt < t {
				t = nt
			}
		}
		if math.IsInf(t, 1) {
			return total
		}
		w := t + g.lookahead
		if workers == 1 || len(g.shards) == 1 {
			for _, k := range g.shards {
				total += uint64(k.runWindow(w))
			}
			continue
		}
		var cursor int64 = -1
		counts := make([]int, len(g.shards))
		var wg sync.WaitGroup
		for wk := 0; wk < workers; wk++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(atomic.AddInt64(&cursor, 1))
					if i >= len(g.shards) {
						return
					}
					counts[i] = g.shards[i].runWindow(w)
				}
			}()
		}
		wg.Wait()
		for _, c := range counts {
			total += uint64(c)
		}
	}
}

// runWindow executes this kernel's events with time <= w without
// advancing the clock past the last event (unlike RunUntil, which jumps
// to the deadline): a shard's clock must not outrun its own events, or a
// later window starting before w would look like the past.
func (k *Kernel) runWindow(w float64) int {
	k.stopped = false
	n := 0
	for !k.stopped {
		r, b := k.nextLive()
		if r == nil || r.time > w {
			break
		}
		k.takeLive(r, b)
		k.now = r.time
		fn := r.fn
		k.live--
		k.recycle(r)
		fn()
		k.fired++
		n++
		k.maybeShrink()
	}
	return n
}

// Fired returns the per-shard fired counters, summed. Unlike the Run
// return value this includes events fired by direct Shard(i).Run calls.
func (g *Group) Fired() uint64 {
	var total uint64
	for _, k := range g.shards {
		total += k.Fired()
	}
	return total
}

// Times returns each shard's current virtual time, sorted ascending —
// a cheap fingerprint for tests asserting serial/parallel equivalence.
func (g *Group) Times() []float64 {
	ts := make([]float64, len(g.shards))
	for i, k := range g.shards {
		ts[i] = k.Now()
	}
	sort.Float64s(ts)
	return ts
}
