package sim

import (
	"math"
	"math/rand"
	"testing"
)

// fired records one event execution for order comparison.
type fired struct {
	t  float64
	id int
}

// driveBoth replays the same schedule/cancel script against a calendar
// kernel and a heap-reference kernel and asserts identical fire order —
// including same-time seq tie-breaks — and identical final state.
//
// The script is a function of (kernel, recorder) so callbacks can
// schedule follow-up events; determinism of the script itself comes from
// seeding its RNG identically for both kernels.
func driveBoth(t *testing.T, name string, script func(k *Kernel, rng *rand.Rand, rec func(id int))) {
	t.Helper()
	run := func(kind QueueKind) ([]fired, *Kernel) {
		k := NewKernelQueue(kind)
		var got []fired
		script(k, rand.New(rand.NewSource(99)), func(id int) {
			got = append(got, fired{t: k.Now(), id: id})
		})
		k.Run()
		return got, k
	}
	cal, ck := run(QueueCalendar)
	ref, hk := run(QueueHeap)
	if len(cal) != len(ref) {
		t.Fatalf("%s: calendar fired %d events, heap reference fired %d", name, len(cal), len(ref))
	}
	for i := range cal {
		if cal[i] != ref[i] {
			t.Fatalf("%s: divergence at event %d: calendar %+v, heap %+v", name, i, cal[i], ref[i])
		}
	}
	if ck.Pending() != 0 || hk.Pending() != 0 {
		t.Fatalf("%s: leftover pending: calendar %d, heap %d", name, ck.Pending(), hk.Pending())
	}
	if ck.Now() != hk.Now() {
		t.Fatalf("%s: final clocks differ: calendar %v, heap %v", name, ck.Now(), hk.Now())
	}
}

// TestDifferentialCalendarVsHeap runs the calendar queue against the
// binary-heap reference over time distributions chosen to stress every
// calendar mechanism: uniform spread (bucket balance), same-time bursts
// (seq tie-breaks within one bucket), exponential gaps (resize churn),
// clustered storms (long bucket chains), a far-future outlier (the
// pathology that triggers the heap fallback), and cancel-heavy mixes
// (compaction during the comparison).
func TestDifferentialCalendarVsHeap(t *testing.T) {
	type dist struct {
		name string
		next func(rng *rand.Rand, i int) float64
	}
	dists := []dist{
		{"uniform", func(rng *rand.Rand, i int) float64 { return rng.Float64() * 1000 }},
		{"same-time-bursts", func(rng *rand.Rand, i int) float64 { return float64(i / 50) }},
		{"exponential", func(rng *rand.Rand, i int) float64 { return rng.ExpFloat64() * 10 }},
		{"clustered", func(rng *rand.Rand, i int) float64 {
			return float64(i%7)*1000 + rng.Float64()*1e-6
		}},
		{"far-future-outlier", func(rng *rand.Rand, i int) float64 {
			if i == 0 {
				return 1e9
			}
			return rng.Float64()
		}},
	}
	for _, d := range dists {
		d := d
		t.Run(d.name, func(t *testing.T) {
			driveBoth(t, d.name, func(k *Kernel, rng *rand.Rand, rec func(int)) {
				timers := make([]Timer, 0, 4096)
				for i := 0; i < 4096; i++ {
					id := i
					timers = append(timers, k.At(d.next(rng, i), func() { rec(id) }))
					// Cancel a random earlier timer every few inserts so
					// cancellation and compaction interleave with ordering.
					if i%5 == 0 {
						timers[rng.Intn(len(timers))].Cancel()
					}
				}
			})
		})
	}
}

// TestDifferentialCascading replays a self-perpetuating workload — every
// fired event schedules successors — so ordering is also compared for
// events scheduled *during* the run, where the calendar's hand is mid-
// sweep and resizes happen with the clock advanced.
func TestDifferentialCascading(t *testing.T) {
	driveBoth(t, "cascading", func(k *Kernel, rng *rand.Rand, rec func(int)) {
		remaining := 20000
		var spawn func(id int)
		spawn = func(id int) {
			k.After(rng.Float64(), func() {
				rec(id)
				if remaining > 0 {
					remaining--
					spawn(id + 1)
					if rng.Intn(8) == 0 && remaining > 0 {
						remaining--
						spawn(id + 100000)
					}
				}
			})
		}
		for i := 0; i < 64; i++ {
			spawn(i * 1000000)
		}
	})
}

// TestHeapFallbackTriggers proves the pathological distribution actually
// demotes the kernel: one far-future outlier stretches the resampled
// width so that tens of thousands of near-term events pile into a single
// bucket in random order, the per-op work average crosses the threshold,
// and the kernel switches to the heap — while still firing in exact
// (time, seq) order.
func TestHeapFallbackTriggers(t *testing.T) {
	k := NewKernel()
	rng := rand.New(rand.NewSource(7))
	k.At(1e9, func() {}) // the outlier dominating the sampled range
	var last float64 = -1
	n := 0
	for i := 0; i < 60000; i++ {
		k.At(rng.Float64(), func() {
			if k.Now() < last {
				t.Fatalf("out of order: %v after %v", k.Now(), last)
			}
			last = k.Now()
			n++
		})
	}
	if !k.onHeap {
		// The trigger may need dequeue work too; run and re-check below.
		t.Log("not yet on heap after inserts (dequeue work may trigger it)")
	}
	k.Run()
	if n != 60000 {
		t.Fatalf("fired %d of 60000 near-term events", n)
	}
	if !k.onHeap {
		t.Fatalf("pathological distribution did not trigger the heap fallback")
	}
}

// TestCancelCompactionFuzz hammers the compaction path: schedule far
// ahead, cancel most of it, and assert the cancelled records are
// physically removed (queue occupancy tracks live+dead) and the
// survivors still fire exactly once in order.
func TestCancelCompactionFuzz(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		k := NewKernel()
		type ev struct {
			tm        Timer
			cancelled bool
			id        int
		}
		var evs []ev
		for i := 0; i < 5000; i++ {
			id := i
			evs = append(evs, ev{tm: k.At(rng.Float64()*1e6, func() {
				if evs[id].cancelled {
					t.Fatalf("seed %d: cancelled event %d fired", seed, id)
				}
				evs[id].id = -1 // mark fired
			}), id: id})
		}
		// Cancel ~90% in random order.
		for _, i := range rng.Perm(len(evs)) {
			if rng.Float64() < 0.9 {
				if evs[i].tm.Cancel() {
					evs[i].cancelled = true
				}
			}
		}
		occupancy := k.cal.count
		if k.onHeap {
			occupancy = len(k.heap)
		}
		if occupancy != k.live+k.dead {
			t.Fatalf("seed %d: occupancy %d != live %d + dead %d", seed, occupancy, k.live, k.dead)
		}
		if k.dead > k.live && k.dead > compactMin {
			t.Fatalf("seed %d: compaction left dead %d > live %d", seed, k.dead, k.live)
		}
		k.Run()
		for i := range evs {
			if !evs[i].cancelled && evs[i].id != -1 {
				t.Fatalf("seed %d: surviving event %d never fired", seed, i)
			}
		}
		if k.Pending() != 0 {
			t.Fatalf("seed %d: %d pending after drain", seed, k.Pending())
		}
	}
}

// TestStaleHandleAfterReuse proves the generation check: a handle whose
// record has been recycled into a *new* event must not cancel (or report
// pending for) the record's next tenant.
func TestStaleHandleAfterReuse(t *testing.T) {
	k := NewKernel()
	first := k.At(1, func() {})
	k.Run() // fires; the record returns to the freelist
	secondRan := false
	second := k.At(2, func() { secondRan = true })
	if second.rec != first.rec {
		t.Skip("freelist did not reuse the record (allocator changed?)")
	}
	if first.Pending() {
		t.Fatal("stale handle reports pending")
	}
	if first.Cancel() {
		t.Fatal("stale handle cancelled the record's new tenant")
	}
	k.Run()
	if !secondRan {
		t.Fatal("second event did not fire (stale handle interfered)")
	}
}

func TestTimerPendingLifecycle(t *testing.T) {
	k := NewKernel()
	var zero Timer
	if zero.Pending() || zero.Cancel() {
		t.Fatal("zero Timer must be inert")
	}
	tm := k.At(5, func() {})
	if !tm.Pending() {
		t.Fatal("scheduled timer not pending")
	}
	if got := tm.Time(); got != 5 {
		t.Fatalf("Time() = %v, want 5", got)
	}
	tm.Cancel()
	if tm.Pending() {
		t.Fatal("cancelled timer still pending")
	}
	tm2 := k.At(6, func() {})
	k.Run()
	if tm2.Pending() {
		t.Fatal("fired timer still pending")
	}
}

func TestAtInfinityPanics(t *testing.T) {
	k := NewKernel()
	for _, bad := range []float64{math.Inf(1), math.Inf(-1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("At(%v) did not panic", bad)
				}
			}()
			k.At(bad, func() {})
		}()
	}
}

func TestPendingIsLiveCount(t *testing.T) {
	k := NewKernel()
	var tms []Timer
	for i := 0; i < 1000; i++ {
		tms = append(tms, k.At(float64(i), func() {}))
	}
	if k.Pending() != 1000 {
		t.Fatalf("Pending() = %d, want 1000", k.Pending())
	}
	for i := 0; i < 500; i++ {
		tms[i*2].Cancel()
	}
	if k.Pending() != 500 {
		t.Fatalf("Pending() = %d after cancels, want 500", k.Pending())
	}
	k.RunUntil(250)
	// Survivors are the odd times; 251..999 odd = 375 remain.
	if k.Pending() != 375 {
		t.Fatalf("Pending() = %d after partial run, want 375", k.Pending())
	}
	k.Run()
	if k.Pending() != 0 {
		t.Fatalf("Pending() = %d after drain, want 0", k.Pending())
	}
}

func TestNextTime(t *testing.T) {
	k := NewKernel()
	if !math.IsInf(k.NextTime(), 1) {
		t.Fatal("empty kernel NextTime not +Inf")
	}
	a := k.At(7, func() {})
	k.At(9, func() {})
	if k.NextTime() != 7 {
		t.Fatalf("NextTime = %v, want 7", k.NextTime())
	}
	a.Cancel()
	if k.NextTime() != 9 {
		t.Fatalf("NextTime after cancel = %v, want 9", k.NextTime())
	}
}

// TestSteadyStateZeroAlloc asserts the tentpole acceptance criterion
// directly: once warmed, the schedule→fire cycle performs zero heap
// allocations per event.
func TestSteadyStateZeroAlloc(t *testing.T) {
	k := NewKernel()
	rng := rand.New(rand.NewSource(1))
	var hop func()
	hop = func() { k.After(rng.Float64(), hop) }
	for i := 0; i < 256; i++ {
		k.After(rng.Float64(), hop)
	}
	// Warm: let the pool and calendar reach steady state.
	k.RunUntil(5)
	allocs := testing.AllocsPerRun(10, func() {
		for i := 0; i < 1000; i++ {
			k.Step()
		}
	})
	if allocs > 0 {
		t.Fatalf("steady-state schedule/fire allocates %.1f objects per 1000 events, want 0", allocs)
	}
}
