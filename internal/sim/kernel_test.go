package sim

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestKernelStartsAtZero(t *testing.T) {
	k := NewKernel()
	if k.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", k.Now())
	}
	if k.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", k.Pending())
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	k := NewKernel()
	var order []float64
	for _, tt := range []float64{5, 1, 3, 2, 4} {
		tt := tt
		k.At(tt, func() { order = append(order, tt) })
	}
	if n := k.Run(); n != 5 {
		t.Fatalf("Run() = %d events, want 5", n)
	}
	if !sort.Float64sAreSorted(order) {
		t.Fatalf("events fired out of order: %v", order)
	}
	if k.Now() != 5 {
		t.Fatalf("Now() = %v after run, want 5", k.Now())
	}
}

func TestTieBreakBySchedulingOrder(t *testing.T) {
	k := NewKernel()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(1.0, func() { order = append(order, i) })
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break violated at %d: got %v", i, order)
		}
	}
}

func TestAfterIsRelative(t *testing.T) {
	k := NewKernel()
	var at float64 = -1
	k.At(10, func() {
		k.After(5, func() { at = k.Now() })
	})
	k.Run()
	if at != 15 {
		t.Fatalf("After fired at %v, want 15", at)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	k := NewKernel()
	k.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.At(5, func() {})
	})
	k.Run()
}

func TestNegativeDelayPanics(t *testing.T) {
	k := NewKernel()
	defer func() {
		if recover() == nil {
			t.Error("negative After did not panic")
		}
	}()
	k.After(-1, func() {})
}

func TestNaNTimePanics(t *testing.T) {
	k := NewKernel()
	defer func() {
		if recover() == nil {
			t.Error("NaN At did not panic")
		}
	}()
	k.At(math.NaN(), func() {})
}

func TestCancelPreventsFiring(t *testing.T) {
	k := NewKernel()
	fired := false
	tm := k.At(1, func() { fired = true })
	if !tm.Cancel() {
		t.Fatal("Cancel() = false on pending timer")
	}
	if tm.Cancel() {
		t.Fatal("second Cancel() = true, want false")
	}
	k.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelAfterFireIsNoop(t *testing.T) {
	k := NewKernel()
	tm := k.At(1, func() {})
	k.Run()
	if tm.Cancel() {
		t.Fatal("Cancel() after firing = true, want false")
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	k := NewKernel()
	var fired []float64
	for _, tt := range []float64{1, 2, 3, 4} {
		tt := tt
		k.At(tt, func() { fired = append(fired, tt) })
	}
	n := k.RunUntil(2.5)
	if n != 2 {
		t.Fatalf("RunUntil(2.5) executed %d, want 2", n)
	}
	if k.Now() != 2.5 {
		t.Fatalf("Now() = %v, want 2.5", k.Now())
	}
	n = k.Run()
	if n != 2 {
		t.Fatalf("second Run() executed %d, want 2", n)
	}
}

func TestRunUntilEmptyAdvancesToDeadline(t *testing.T) {
	k := NewKernel()
	k.RunUntil(42)
	if k.Now() != 42 {
		t.Fatalf("Now() = %v, want 42", k.Now())
	}
}

func TestStopHaltsRun(t *testing.T) {
	k := NewKernel()
	count := 0
	for i := 1; i <= 10; i++ {
		k.At(float64(i), func() {
			count++
			if count == 3 {
				k.Stop()
			}
		})
	}
	n := k.Run()
	if n != 3 {
		t.Fatalf("Run() after Stop executed %d, want 3", n)
	}
	// Run resumes with remaining events.
	if n := k.Run(); n != 7 {
		t.Fatalf("resumed Run() = %d, want 7", n)
	}
}

func TestStepExecutesOne(t *testing.T) {
	k := NewKernel()
	count := 0
	k.At(1, func() { count++ })
	k.At(2, func() { count++ })
	if !k.Step() {
		t.Fatal("Step() = false with pending events")
	}
	if count != 1 {
		t.Fatalf("count = %d after one Step, want 1", count)
	}
	k.Step()
	if k.Step() {
		t.Fatal("Step() = true with no events")
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	k := NewKernel()
	depth := 0
	var rec func()
	rec = func() {
		depth++
		if depth < 100 {
			k.After(1, rec)
		}
	}
	k.After(1, rec)
	k.Run()
	if depth != 100 {
		t.Fatalf("chained depth = %d, want 100", depth)
	}
	if k.Now() != 100 {
		t.Fatalf("Now() = %v, want 100", k.Now())
	}
}

func TestFiredCounter(t *testing.T) {
	k := NewKernel()
	for i := 0; i < 5; i++ {
		k.At(float64(i), func() {})
	}
	k.Run()
	if k.Fired() != 5 {
		t.Fatalf("Fired() = %d, want 5", k.Fired())
	}
}

// Property: for any set of nonnegative schedule times, events fire in sorted
// order and the final clock equals the max time.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(times []uint16) bool {
		k := NewKernel()
		var fired []float64
		for _, u := range times {
			tt := float64(u)
			k.At(tt, func() { fired = append(fired, tt) })
		}
		k.Run()
		if len(fired) != len(times) {
			return false
		}
		if !sort.Float64sAreSorted(fired) {
			return false
		}
		if len(times) > 0 {
			max := 0.0
			for _, u := range times {
				if float64(u) > max {
					max = float64(u)
				}
			}
			if k.Now() != max {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling a random subset leaves exactly the uncancelled ones
// firing.
func TestPropertyCancelSubset(t *testing.T) {
	f := func(n uint8, seed int64) bool {
		k := NewKernel()
		rng := rand.New(rand.NewSource(seed))
		fired := 0
		want := 0
		for i := 0; i < int(n); i++ {
			tm := k.At(float64(i%7), func() { fired++ })
			if rng.Intn(2) == 0 {
				tm.Cancel()
			} else {
				want++
			}
		}
		k.Run()
		return fired == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	trace := func(seed int64) []float64 {
		k := NewKernel()
		rng := rand.New(rand.NewSource(seed))
		var out []float64
		var spawn func()
		spawn = func() {
			out = append(out, k.Now())
			if len(out) < 200 {
				k.After(rng.Float64(), spawn)
			}
		}
		k.After(rng.Float64(), spawn)
		k.Run()
		return out
	}
	a, b := trace(7), trace(7)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
