package sim

import (
	"fmt"
	"math/rand"
	"testing"
)

// buildGroupWorkload wires a deterministic cross-shard workload: each
// shard runs a self-perpetuating chain of local events, and every k'th
// event posts a message to the next shard. It returns a per-shard event
// log so serial and parallel runs can be compared bit-for-bit.
func buildGroupWorkload(g *Group, perShard int) [][]string {
	logs := make([][]string, g.Shards())
	for s := 0; s < g.Shards(); s++ {
		s := s
		rng := rand.New(rand.NewSource(int64(1000 + s)))
		k := g.Shard(s)
		remaining := perShard
		var step func(id int)
		step = func(id int) {
			k.After(0.001+rng.Float64(), func() {
				logs[s] = append(logs[s], fmt.Sprintf("%d@%.9f", id, k.Now()))
				if remaining <= 0 {
					return
				}
				remaining--
				step(id + 1)
				if id%16 == 0 {
					dst := (s + 1) % g.Shards()
					at := k.Now() + g.Lookahead() + rng.Float64()
					g.Post(s, dst, at, func() {
						logs[dst] = append(logs[dst], fmt.Sprintf("x%d@%.9f", id, g.Shard(dst).Now()))
					})
				}
			})
		}
		step(s * 1000000)
	}
	return logs
}

// TestGroupSerialParallelIdentical is the determinism core of -parallel:
// the same seeded workload run with 1 worker and with many workers must
// produce identical per-shard event logs and identical fired totals.
func TestGroupSerialParallelIdentical(t *testing.T) {
	run := func(workers int) ([][]string, uint64) {
		g := NewGroup(8, 0.05)
		logs := buildGroupWorkload(g, 2000)
		total := g.Run(workers)
		return logs, total
	}
	serialLogs, serialTotal := run(1)
	parallelLogs, parallelTotal := run(8)
	if serialTotal != parallelTotal {
		t.Fatalf("fired totals differ: serial %d, parallel %d", serialTotal, parallelTotal)
	}
	if serialTotal == 0 {
		t.Fatal("workload fired no events")
	}
	for s := range serialLogs {
		if len(serialLogs[s]) != len(parallelLogs[s]) {
			t.Fatalf("shard %d log lengths differ: serial %d, parallel %d",
				s, len(serialLogs[s]), len(parallelLogs[s]))
		}
		for i := range serialLogs[s] {
			if serialLogs[s][i] != parallelLogs[s][i] {
				t.Fatalf("shard %d event %d differs: serial %q, parallel %q",
					s, i, serialLogs[s][i], parallelLogs[s][i])
			}
		}
	}
}

func TestGroupPostLookaheadViolationPanics(t *testing.T) {
	g := NewGroup(2, 1.0)
	defer func() {
		if recover() == nil {
			t.Fatal("post inside the lookahead window did not panic")
		}
	}()
	g.Post(0, 1, 0.5, func() {})
}

func TestGroupRunEmpty(t *testing.T) {
	g := NewGroup(4, 0.1)
	if n := g.Run(4); n != 0 {
		t.Fatalf("empty group fired %d events", n)
	}
}

// TestGroupWindowClockDiscipline: a shard's clock must never outrun its
// own last event into a future window (runWindow, unlike RunUntil, does
// not jump to the deadline), or a barrier post could look like the past.
func TestGroupWindowClockDiscipline(t *testing.T) {
	g := NewGroup(2, 0.5)
	// Shard 0 has events at 0.1 and then 10; shard 1 only at 5. Windows
	// must interleave without shard 1's emptiness dragging clocks around.
	var order []string
	g.Shard(0).At(0.1, func() {
		order = append(order, "a")
		g.Post(0, 1, 5, func() { order = append(order, "b") })
	})
	g.Shard(0).At(10, func() { order = append(order, "c") })
	g.Run(1)
	want := []string{"a", "b", "c"}
	if len(order) != 3 || order[0] != want[0] || order[1] != want[1] || order[2] != want[2] {
		t.Fatalf("order = %v, want %v", order, want)
	}
}
