package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestResourceImmediateGrant(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "cores", 4)
	granted := false
	r.Acquire(2, func() { granted = true })
	if !granted {
		t.Fatal("acquire within capacity not granted immediately")
	}
	if r.InUse() != 2 || r.Free() != 2 {
		t.Fatalf("InUse=%d Free=%d, want 2/2", r.InUse(), r.Free())
	}
}

func TestResourceBlocksWhenFull(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "cores", 2)
	r.Acquire(2, func() {})
	blocked := true
	r.Acquire(1, func() { blocked = false })
	if !blocked {
		t.Fatal("acquire beyond free granted immediately")
	}
	if r.QueueLen() != 1 {
		t.Fatalf("QueueLen = %d, want 1", r.QueueLen())
	}
	r.Release(2)
	if blocked {
		t.Fatal("queued acquire not granted after release")
	}
}

func TestResourceFIFONoOvertaking(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "cores", 4)
	r.Acquire(4, func() {})
	var order []int
	r.Acquire(3, func() { order = append(order, 1) }) // head, large
	r.Acquire(1, func() { order = append(order, 2) }) // small, behind
	r.Release(1)
	// 3 units free is still < head's 3? No: 1 free < 3, head blocked; the
	// small request must NOT overtake.
	if len(order) != 0 {
		t.Fatalf("overtaking occurred: %v", order)
	}
	r.Release(2) // 3 free: head (3) granted, then small blocked (0 free)
	if len(order) != 1 || order[0] != 1 {
		t.Fatalf("order = %v, want [1]", order)
	}
	r.Release(3)
	if len(order) != 2 || order[1] != 2 {
		t.Fatalf("order = %v, want [1 2]", order)
	}
}

func TestResourceCancelPending(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "cores", 1)
	r.Acquire(1, func() {})
	granted := false
	h := r.Acquire(1, func() { granted = true })
	if !h.Cancel() {
		t.Fatal("Cancel pending acquire = false")
	}
	if h.Cancel() {
		t.Fatal("double Cancel = true")
	}
	r.Release(1)
	if granted {
		t.Fatal("cancelled acquire was granted")
	}
	if r.InUse() != 0 {
		t.Fatalf("InUse = %d, want 0", r.InUse())
	}
}

func TestResourceCancelGrantedIsFalse(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "cores", 1)
	h := r.Acquire(1, func() {})
	if h.Cancel() {
		t.Fatal("Cancel on already-granted acquire = true")
	}
}

func TestResourceUseReleasesAfterDuration(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "cores", 1)
	var doneAt float64 = -1
	r.Use(1, 5, func() { doneAt = k.Now() })
	if r.InUse() != 1 {
		t.Fatalf("InUse = %d during Use, want 1", r.InUse())
	}
	k.Run()
	if doneAt != 5 {
		t.Fatalf("done at %v, want 5", doneAt)
	}
	if r.InUse() != 0 {
		t.Fatalf("InUse = %d after Use, want 0", r.InUse())
	}
}

func TestResourceMMcQueueing(t *testing.T) {
	// 3 jobs of 10s on 2 servers: completions at 10, 10, 20.
	k := NewKernel()
	r := NewResource(k, "srv", 2)
	var done []float64
	for i := 0; i < 3; i++ {
		r.Use(1, 10, func() { done = append(done, k.Now()) })
	}
	k.Run()
	want := []float64{10, 10, 20}
	for i, w := range want {
		if done[i] != w {
			t.Fatalf("done = %v, want %v", done, want)
		}
	}
}

func TestResourceStats(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "srv", 2)
	r.Use(2, 10, nil)
	k.At(20, func() {}) // extend sim to 20s
	k.Run()
	if r.MaxInUse != 2 {
		t.Fatalf("MaxInUse = %d, want 2", r.MaxInUse)
	}
	if r.Grants != 1 {
		t.Fatalf("Grants = %d, want 1", r.Grants)
	}
	// Busy 2 units for 10s of 2x20 capacity-time = 0.5 utilization.
	if u := r.Utilization(); u < 0.49 || u > 0.51 {
		t.Fatalf("Utilization = %v, want ~0.5", u)
	}
}

func TestResourcePanics(t *testing.T) {
	k := NewKernel()
	cases := []struct {
		name string
		fn   func()
	}{
		{"zero capacity", func() { NewResource(k, "x", 0) }},
		{"acquire zero", func() { NewResource(k, "x", 1).Acquire(0, func() {}) }},
		{"acquire beyond capacity", func() { NewResource(k, "x", 1).Acquire(2, func() {}) }},
		{"release unheld", func() { NewResource(k, "x", 1).Release(1) }},
		{"release zero", func() { NewResource(k, "x", 1).Release(0) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", tc.name)
				}
			}()
			tc.fn()
		})
	}
}

// Property: conservation — after any schedule of acquire/release pairs
// completes, InUse returns to 0 and grants equal the number of acquisitions.
func TestPropertyResourceConservation(t *testing.T) {
	f := func(seed int64, nJobs uint8, capacity uint8) bool {
		cap64 := int64(capacity%8) + 1
		k := NewKernel()
		r := NewResource(k, "r", cap64)
		rng := rand.New(rand.NewSource(seed))
		jobs := int(nJobs%64) + 1
		completed := 0
		for i := 0; i < jobs; i++ {
			n := rng.Int63n(cap64) + 1
			d := rng.Float64() * 10
			at := rng.Float64() * 10
			k.At(at, func() {
				r.Use(n, d, func() { completed++ })
			})
		}
		k.Run()
		return completed == jobs && r.InUse() == 0 && int(r.Grants) == jobs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: InUse never exceeds capacity at any grant point.
func TestPropertyResourceNeverOversubscribed(t *testing.T) {
	f := func(seed int64) bool {
		k := NewKernel()
		const capacity = 5
		r := NewResource(k, "r", capacity)
		rng := rand.New(rand.NewSource(seed))
		ok := true
		for i := 0; i < 100; i++ {
			n := rng.Int63n(capacity) + 1
			at := rng.Float64() * 20
			d := rng.Float64() * 5
			k.At(at, func() {
				r.Acquire(n, func() {
					if r.InUse() > capacity {
						ok = false
					}
					k.After(d, func() { r.Release(n) })
				})
			})
		}
		k.Run()
		return ok && r.InUse() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
