package sim

import "fmt"

// Resource models a counted resource (cores, channels, container slots)
// inside a simulation. Acquire requests are granted FIFO; a request blocks
// (its callback is deferred) until enough units are free.
type Resource struct {
	k        *Kernel
	name     string
	capacity int64
	inUse    int64
	waiters  []*acquireReq

	// Grants counts successful acquisitions; MaxInUse tracks the high-water
	// mark, useful for utilization reporting.
	Grants   uint64
	MaxInUse int64

	// busyTime integrates inUse over virtual time for utilization.
	busyTime   float64
	lastChange float64
}

type acquireReq struct {
	n         int64
	fn        func()
	cancelled bool
}

// AcquireHandle cancels a pending acquire.
type AcquireHandle struct{ req *acquireReq }

// Cancel removes a still-pending acquire from the wait queue. It reports
// whether the request was pending (false if already granted or cancelled).
func (h AcquireHandle) Cancel() bool {
	if h.req == nil || h.req.cancelled || h.req.fn == nil {
		return false
	}
	h.req.cancelled = true
	return true
}

// NewResource creates a resource with the given capacity in units.
func NewResource(k *Kernel, name string, capacity int64) *Resource {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: resource %q capacity %d <= 0", name, capacity))
	}
	return &Resource{k: k, name: name, capacity: capacity}
}

// Name returns the resource's name.
func (r *Resource) Name() string { return r.name }

// Capacity returns total units.
func (r *Resource) Capacity() int64 { return r.capacity }

// InUse returns currently held units.
func (r *Resource) InUse() int64 { return r.inUse }

// Free returns currently available units.
func (r *Resource) Free() int64 { return r.capacity - r.inUse }

// QueueLen returns the number of pending acquire requests.
func (r *Resource) QueueLen() int {
	n := 0
	for _, w := range r.waiters {
		if !w.cancelled {
			n++
		}
	}
	return n
}

// Utilization returns mean in-use fraction over virtual time up to now.
func (r *Resource) Utilization() float64 {
	r.accumulate()
	if r.k.Now() == 0 {
		return 0
	}
	return r.busyTime / (r.k.Now() * float64(r.capacity))
}

func (r *Resource) accumulate() {
	now := r.k.Now()
	r.busyTime += float64(r.inUse) * (now - r.lastChange)
	r.lastChange = now
}

// Acquire requests n units; fn runs (immediately, synchronously) once the
// units are granted. Requests exceeding capacity panic since they can never
// be satisfied.
func (r *Resource) Acquire(n int64, fn func()) AcquireHandle {
	if n <= 0 {
		panic(fmt.Sprintf("sim: acquire %d <= 0 units of %q", n, r.name))
	}
	if n > r.capacity {
		panic(fmt.Sprintf("sim: acquire %d > capacity %d of %q", n, r.capacity, r.name))
	}
	req := &acquireReq{n: n, fn: fn}
	if len(r.waiters) == 0 && r.inUse+n <= r.capacity {
		r.grant(req)
		return AcquireHandle{req}
	}
	r.waiters = append(r.waiters, req)
	return AcquireHandle{req}
}

func (r *Resource) grant(req *acquireReq) {
	r.accumulate()
	r.inUse += req.n
	if r.inUse > r.MaxInUse {
		r.MaxInUse = r.inUse
	}
	r.Grants++
	fn := req.fn
	req.fn = nil // mark granted
	fn()
}

// Release returns n units and grants as many queued requests as now fit,
// in FIFO order (no overtaking: a large request at the head blocks smaller
// ones behind it, preserving fairness).
func (r *Resource) Release(n int64) {
	if n <= 0 {
		panic(fmt.Sprintf("sim: release %d <= 0 units of %q", n, r.name))
	}
	if n > r.inUse {
		panic(fmt.Sprintf("sim: release %d > in-use %d of %q", n, r.inUse, r.name))
	}
	r.accumulate()
	r.inUse -= n
	for len(r.waiters) > 0 {
		head := r.waiters[0]
		if head.cancelled {
			r.waiters = r.waiters[1:]
			continue
		}
		if r.inUse+head.n > r.capacity {
			break
		}
		r.waiters = r.waiters[1:]
		r.grant(head)
	}
}

// Use acquires n units, holds them for d seconds of virtual time, then
// releases them and calls done (which may be nil). It is the common
// "occupy a server for a service time" pattern.
func (r *Resource) Use(n int64, d float64, done func()) {
	r.Acquire(n, func() {
		r.k.After(d, func() {
			r.Release(n)
			if done != nil {
				done()
			}
		})
	})
}
