package task

import (
	"fmt"

	"continuum/internal/workload"
)

// Generators for workflow shapes used by the scheduling experiments. Work
// and data sizes are drawn from lognormal distributions (the standard
// model for task runtimes) seeded deterministically.

// GenSpec parameterizes random DAG generation.
type GenSpec struct {
	// MeanWork is the mean scalar work per task in flops.
	MeanWork float64
	// WorkSigma is the lognormal sigma of per-task work (heterogeneity).
	WorkSigma float64
	// MeanBytes is the mean intermediate data size per edge.
	MeanBytes float64
	// BytesSigma is the lognormal sigma of edge bytes.
	BytesSigma float64
}

func (g GenSpec) work(rng *workload.RNG) float64 {
	return drawLognormalWithMean(rng, g.MeanWork, g.WorkSigma)
}

func (g GenSpec) bytes(rng *workload.RNG) float64 {
	return drawLognormalWithMean(rng, g.MeanBytes, g.BytesSigma)
}

// drawLognormalWithMean draws a lognormal sample whose distribution mean is
// m: mu = ln(m) - sigma^2/2.
func drawLognormalWithMean(rng *workload.RNG, m, sigma float64) float64 {
	if m <= 0 {
		return 0
	}
	if sigma == 0 {
		return m
	}
	mu := lnv(m) - sigma*sigma/2
	return rng.Lognormal(mu, sigma)
}

// Chain builds a linear pipeline of n tasks.
func Chain(rng *workload.RNG, n int, spec GenSpec) *DAG {
	d := NewDAG(fmt.Sprintf("chain-%d", n))
	for i := 0; i < n; i++ {
		d.AddTask(fmt.Sprintf("stage%d", i), spec.work(rng), spec.bytes(rng))
	}
	for i := 0; i+1 < n; i++ {
		d.Connect(ID(i), ID(i+1), -1)
	}
	return d
}

// FanOutIn builds a scatter-gather: one source, width parallel workers,
// one sink. The shape of embarrassingly parallel analysis with a reduce.
func FanOutIn(rng *workload.RNG, width int, spec GenSpec) *DAG {
	d := NewDAG(fmt.Sprintf("fanoutin-%d", width))
	src := d.AddTask("scatter", spec.work(rng), spec.bytes(rng))
	sink := &Task{Name: "gather", ScalarWork: spec.work(rng), OutputBytes: spec.bytes(rng)}
	for i := 0; i < width; i++ {
		w := d.AddTask(fmt.Sprintf("work%d", i), spec.work(rng), spec.bytes(rng))
		d.Connect(src.ID, w.ID, -1)
	}
	d.Add(sink)
	for i := 0; i < width; i++ {
		d.Connect(ID(i+1), sink.ID, -1)
	}
	return d
}

// RandomLayered builds a layered DAG: layers of random width with edges
// from each task to 1..maxFanout tasks in the next layer. The generic
// "scientific workflow" shape used for scheduling robustness sweeps.
func RandomLayered(rng *workload.RNG, layers, maxWidth, maxFanout int, spec GenSpec) *DAG {
	if layers < 1 || maxWidth < 1 || maxFanout < 1 {
		panic("task: RandomLayered requires positive layers, width, fanout")
	}
	d := NewDAG(fmt.Sprintf("layered-%dx%d", layers, maxWidth))
	var layerIDs [][]ID
	for l := 0; l < layers; l++ {
		width := rng.Intn(maxWidth) + 1
		var ids []ID
		for w := 0; w < width; w++ {
			t := d.AddTask(fmt.Sprintf("l%dw%d", l, w), spec.work(rng), spec.bytes(rng))
			ids = append(ids, t.ID)
		}
		layerIDs = append(layerIDs, ids)
	}
	for l := 0; l+1 < layers; l++ {
		next := layerIDs[l+1]
		for _, u := range layerIDs[l] {
			fanout := rng.Intn(maxFanout) + 1
			perm := rng.Perm(len(next))
			if fanout > len(next) {
				fanout = len(next)
			}
			for i := 0; i < fanout; i++ {
				d.Connect(u, next[perm[i]], -1)
			}
		}
		// Ensure every next-layer task has at least one predecessor so the
		// DAG stays connected layer to layer.
		for _, v := range next {
			if d.InDegree(v) == 0 {
				u := layerIDs[l][rng.Intn(len(layerIDs[l]))]
				d.Connect(u, v, -1)
			}
		}
	}
	return d
}

// MontageLike builds a DAG shaped like the Montage astronomy mosaic
// workflow: project N images in parallel, compute pairwise background
// differences, fit a common background model, correct each image, then
// co-add into the final mosaic. Proportions follow the published workflow
// characterizations: wide fan-out stages dominated by many small tasks
// with one heavy reduction.
func MontageLike(rng *workload.RNG, images int, spec GenSpec) *DAG {
	if images < 2 {
		panic("task: MontageLike requires >= 2 images")
	}
	d := NewDAG(fmt.Sprintf("montage-%d", images))
	// mProject: one per image.
	project := make([]ID, images)
	for i := range project {
		project[i] = d.AddTask(fmt.Sprintf("mProject%d", i), spec.work(rng), spec.bytes(rng)).ID
	}
	// mDiff: one per adjacent pair.
	diff := make([]ID, images-1)
	for i := range diff {
		t := d.AddTask(fmt.Sprintf("mDiff%d", i), spec.work(rng)/4, spec.bytes(rng)/4)
		diff[i] = t.ID
		d.Connect(project[i], t.ID, -1)
		d.Connect(project[i+1], t.ID, -1)
	}
	// mFit/mBgModel: global reduction over all diffs.
	model := d.AddTask("mBgModel", spec.work(rng)*2, spec.bytes(rng)/8)
	for _, dd := range diff {
		d.Connect(dd, model.ID, -1)
	}
	// mBackground: one correction per image, needs the model and the
	// projected image.
	background := make([]ID, images)
	for i := range background {
		t := d.AddTask(fmt.Sprintf("mBackground%d", i), spec.work(rng)/2, spec.bytes(rng))
		background[i] = t.ID
		d.Connect(model.ID, t.ID, -1)
		d.Connect(project[i], t.ID, -1)
	}
	// mAdd: final co-addition, the heavy sink.
	add := d.AddTask("mAdd", spec.work(rng)*float64(images)/2, spec.bytes(rng)*2)
	for _, b := range background {
		d.Connect(b, add.ID, -1)
	}
	return d
}

// CyberShakeLike builds a DAG shaped like the CyberShake seismic-hazard
// workflow: a few strain-Green-tensor (SGT) generators produce very large
// datasets consumed by a wide fan of cheap per-site chains (seismogram
// synthesis → peak ground motion), all folded into one hazard-curve
// aggregation. Unlike Montage (compute-balanced) or Epigenomics (deep
// chains), CyberShake is data-movement-dominated: edges out of the SGT
// roots are ~100x heavier than elsewhere, which punishes schedulers that
// scatter consumers away from the data.
func CyberShakeLike(rng *workload.RNG, sites int, spec GenSpec) *DAG {
	if sites < 1 {
		panic("task: CyberShakeLike requires >= 1 site")
	}
	d := NewDAG(fmt.Sprintf("cybershake-%d", sites))
	// Two SGT generators: heavy compute, very heavy output.
	sgtA := d.AddTask("sgtGenX", spec.work(rng)*8, spec.bytes(rng)*100)
	sgtB := d.AddTask("sgtGenY", spec.work(rng)*8, spec.bytes(rng)*100)
	agg := &Task{Name: "hazardCurve", ScalarWork: spec.work(rng) * 2, OutputBytes: spec.bytes(rng) / 10}
	for s := 0; s < sites; s++ {
		synth := d.AddTask(fmt.Sprintf("synth%d", s), spec.work(rng)/4, spec.bytes(rng))
		d.Connect(sgtA.ID, synth.ID, -1)
		d.Connect(sgtB.ID, synth.ID, -1)
		pgm := d.AddTask(fmt.Sprintf("peakGM%d", s), spec.work(rng)/8, spec.bytes(rng)/10)
		d.Connect(synth.ID, pgm.ID, -1)
	}
	d.Add(agg)
	for s := 0; s < sites; s++ {
		// peakGM tasks are every third task after the two roots.
		pgmID := ID(2 + s*2 + 1)
		d.Connect(pgmID, agg.ID, -1)
	}
	return d
}

// EpigenomicsLike builds a DAG shaped like the Epigenomics genome-methylation
// pipeline: independent lanes of chained filtering/alignment stages that
// merge into a global map/reduce tail. Lanes are deep chains (unlike
// Montage's wide fans), exercising schedulers on pipeline-parallel shapes.
func EpigenomicsLike(rng *workload.RNG, lanes, depth int, spec GenSpec) *DAG {
	if lanes < 1 || depth < 1 {
		panic("task: EpigenomicsLike requires positive lanes and depth")
	}
	d := NewDAG(fmt.Sprintf("epigenomics-%dx%d", lanes, depth))
	split := d.AddTask("fastqSplit", spec.work(rng), spec.bytes(rng))
	var laneEnds []ID
	for l := 0; l < lanes; l++ {
		prev := split.ID
		for s := 0; s < depth; s++ {
			t := d.AddTask(fmt.Sprintf("lane%d.stage%d", l, s), spec.work(rng), spec.bytes(rng))
			d.Connect(prev, t.ID, -1)
			prev = t.ID
		}
		laneEnds = append(laneEnds, prev)
	}
	merge := d.AddTask("mergeSAM", spec.work(rng)*2, spec.bytes(rng)*2)
	for _, e := range laneEnds {
		d.Connect(e, merge.ID, -1)
	}
	index := d.AddTask("mapIndex", spec.work(rng), spec.bytes(rng))
	d.Connect(merge.ID, index.ID, -1)
	return d
}
