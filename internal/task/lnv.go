package task

import "math"

func lnv(x float64) float64 { return math.Log(x) }
