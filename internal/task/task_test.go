package task

import (
	"math"
	"testing"
	"testing/quick"

	"continuum/internal/workload"
)

func diamond() *DAG {
	// 0 -> {1,2} -> 3
	d := NewDAG("diamond")
	d.AddTask("a", 1e9, 100)
	d.AddTask("b", 2e9, 200)
	d.AddTask("c", 3e9, 300)
	d.AddTask("d", 1e9, 0)
	d.Connect(0, 1, -1)
	d.Connect(0, 2, -1)
	d.Connect(1, 3, -1)
	d.Connect(2, 3, -1)
	return d
}

func TestAddAssignsIDs(t *testing.T) {
	d := NewDAG("x")
	a := d.AddTask("a", 1, 1)
	b := d.AddTask("b", 1, 1)
	if a.ID != 0 || b.ID != 1 || d.N() != 2 {
		t.Fatalf("ids %d,%d n=%d", a.ID, b.ID, d.N())
	}
}

func TestConnectDefaultBytes(t *testing.T) {
	d := diamond()
	// Edge 0->1 inherits task 0's OutputBytes = 100.
	if d.Edges[0].Bytes != 100 {
		t.Fatalf("edge bytes = %v, want 100", d.Edges[0].Bytes)
	}
	d.Connect(1, 3, 42)
	if d.Edges[len(d.Edges)-1].Bytes != 42 {
		t.Fatal("explicit bytes not honored")
	}
}

func TestPredSucc(t *testing.T) {
	d := diamond()
	succ := d.Successors(0)
	if len(succ) != 2 {
		t.Fatalf("Successors(0) = %d, want 2", len(succ))
	}
	pred := d.Predecessors(3)
	if len(pred) != 2 {
		t.Fatalf("Predecessors(3) = %d, want 2", len(pred))
	}
	if d.InDegree(0) != 0 || d.InDegree(3) != 2 {
		t.Fatal("InDegree wrong")
	}
}

func TestRootsAndSinks(t *testing.T) {
	d := diamond()
	roots, sinks := d.Roots(), d.Sinks()
	if len(roots) != 1 || roots[0] != 0 {
		t.Fatalf("Roots = %v", roots)
	}
	if len(sinks) != 1 || sinks[0] != 3 {
		t.Fatalf("Sinks = %v", sinks)
	}
}

func TestTopoOrderValid(t *testing.T) {
	d := diamond()
	order, err := d.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[ID]int)
	for i, id := range order {
		pos[id] = i
	}
	for _, e := range d.Edges {
		if pos[e.From] >= pos[e.To] {
			t.Fatalf("topo violated for edge %v in %v", e, order)
		}
	}
}

func TestCycleDetected(t *testing.T) {
	d := NewDAG("cyclic")
	d.AddTask("a", 1, 1)
	d.AddTask("b", 1, 1)
	d.Connect(0, 1, 0)
	d.Connect(1, 0, 0)
	if err := d.Validate(); err == nil {
		t.Fatal("cycle not detected")
	}
}

func TestValidateRejectsBadEdges(t *testing.T) {
	d := NewDAG("bad")
	d.AddTask("a", 1, 1)
	d.Edges = append(d.Edges, Edge{From: 0, To: 9, Bytes: 1})
	if d.Validate() == nil {
		t.Fatal("out-of-range edge accepted")
	}
	d2 := NewDAG("self")
	d2.AddTask("a", 1, 1)
	d2.Edges = append(d2.Edges, Edge{From: 0, To: 0})
	if d2.Validate() == nil {
		t.Fatal("self-edge accepted")
	}
	d3 := NewDAG("neg")
	d3.AddTask("a", 1, 1)
	d3.AddTask("b", 1, 1)
	d3.Edges = append(d3.Edges, Edge{From: 0, To: 1, Bytes: -4})
	if d3.Validate() == nil {
		t.Fatal("negative bytes accepted")
	}
}

func TestCriticalPath(t *testing.T) {
	d := diamond()
	compute := func(tk *Task) float64 { return tk.ScalarWork / 1e9 }
	comm := func(Edge) float64 { return 0.5 }
	length, path := d.CriticalPath(compute, comm)
	// Longest: 0 (1s) -> c (3s) -> d (1s) + 2 comm hops = 6s.
	if math.Abs(length-6) > 1e-12 {
		t.Fatalf("critical path = %v, want 6", length)
	}
	want := []ID{0, 2, 3}
	if len(path) != 3 {
		t.Fatalf("witness = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("witness = %v, want %v", path, want)
		}
	}
}

func TestTotals(t *testing.T) {
	d := diamond()
	if w := d.TotalWork(); math.Abs(w-7e9) > 1 {
		t.Fatalf("TotalWork = %v", w)
	}
	if b := d.TotalEdgeBytes(); math.Abs(b-(100+100+200+300)) > 1e-9 {
		t.Fatalf("TotalEdgeBytes = %v", b)
	}
}

func genSpec() GenSpec {
	return GenSpec{MeanWork: 1e9, WorkSigma: 0.5, MeanBytes: 1e6, BytesSigma: 0.5}
}

func TestChainShape(t *testing.T) {
	d := Chain(workload.NewRNG(1), 5, genSpec())
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.N() != 5 || len(d.Edges) != 4 {
		t.Fatalf("chain shape %d/%d", d.N(), len(d.Edges))
	}
	if len(d.Roots()) != 1 || len(d.Sinks()) != 1 {
		t.Fatal("chain should have one root and one sink")
	}
}

func TestFanOutInShape(t *testing.T) {
	d := FanOutIn(workload.NewRNG(2), 8, genSpec())
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.N() != 10 {
		t.Fatalf("N = %d, want 10", d.N())
	}
	if len(d.Roots()) != 1 || len(d.Sinks()) != 1 {
		t.Fatal("fan-out-in should have one root and one sink")
	}
	// Source fans to 8, sink gathers 8.
	if len(d.Successors(d.Roots()[0])) != 8 {
		t.Fatal("source fanout wrong")
	}
	if d.InDegree(d.Sinks()[0]) != 8 {
		t.Fatal("sink indegree wrong")
	}
}

func TestRandomLayeredConnected(t *testing.T) {
	d := RandomLayered(workload.NewRNG(3), 6, 10, 3, genSpec())
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every non-first-layer task must have a predecessor (generator
	// guarantees layer connectivity).
	order, _ := d.TopoOrder()
	if len(order) != d.N() {
		t.Fatal("topo order incomplete")
	}
}

func TestMontageShape(t *testing.T) {
	const images = 10
	d := MontageLike(workload.NewRNG(4), images, genSpec())
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// images projects + (images-1) diffs + model + images backgrounds + add
	want := images + (images - 1) + 1 + images + 1
	if d.N() != want {
		t.Fatalf("N = %d, want %d", d.N(), want)
	}
	if len(d.Sinks()) != 1 {
		t.Fatalf("Montage sinks = %v, want 1 (mAdd)", d.Sinks())
	}
	if len(d.Roots()) != images {
		t.Fatalf("Montage roots = %d, want %d projections", len(d.Roots()), images)
	}
}

func TestEpigenomicsShape(t *testing.T) {
	d := EpigenomicsLike(workload.NewRNG(5), 4, 5, genSpec())
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// split + 4*5 lanes + merge + index
	if d.N() != 1+20+2 {
		t.Fatalf("N = %d", d.N())
	}
	if len(d.Roots()) != 1 || len(d.Sinks()) != 1 {
		t.Fatal("epigenomics should be single-root single-sink")
	}
}

func TestCyberShakeShape(t *testing.T) {
	const sites = 12
	d := CyberShakeLike(workload.NewRNG(6), sites, genSpec())
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// 2 SGT roots + 2 per site + 1 aggregator.
	if d.N() != 2+2*sites+1 {
		t.Fatalf("N = %d", d.N())
	}
	if len(d.Roots()) != 2 {
		t.Fatalf("roots = %v", d.Roots())
	}
	if len(d.Sinks()) != 1 {
		t.Fatalf("sinks = %v", d.Sinks())
	}
	// The aggregator gathers all sites.
	if d.InDegree(d.Sinks()[0]) != sites {
		t.Fatalf("aggregator indegree = %d", d.InDegree(d.Sinks()[0]))
	}
	// SGT outputs dominate: root out-edges should be far heavier than
	// the non-root edges.
	isRoot := map[ID]bool{}
	for _, r := range d.Roots() {
		isRoot[r] = true
	}
	rootBytes, rootEdges := 0.0, 0
	otherBytes, otherEdges := 0.0, 0
	for _, e := range d.Edges {
		if isRoot[e.From] {
			rootBytes += e.Bytes
			rootEdges++
		} else {
			otherBytes += e.Bytes
			otherEdges++
		}
	}
	avgRoot := rootBytes / float64(rootEdges)
	avgOther := otherBytes / float64(otherEdges)
	if avgRoot < 10*avgOther {
		t.Fatalf("SGT edges not dominant: root avg %v vs other %v", avgRoot, avgOther)
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := MontageLike(workload.NewRNG(7), 8, genSpec())
	b := MontageLike(workload.NewRNG(7), 8, genSpec())
	if a.N() != b.N() || len(a.Edges) != len(b.Edges) {
		t.Fatal("same-seed DAGs differ in shape")
	}
	for i := range a.Tasks {
		if a.Tasks[i].ScalarWork != b.Tasks[i].ScalarWork {
			t.Fatalf("same-seed DAGs differ in work at task %d", i)
		}
	}
}

// Property: all generators produce valid DAGs with positive work.
func TestPropertyGeneratorsValid(t *testing.T) {
	f := func(seed uint64, size uint8) bool {
		rng := workload.NewRNG(seed)
		n := int(size%20) + 2
		spec := genSpec()
		dags := []*DAG{
			Chain(rng.Split(), n, spec),
			FanOutIn(rng.Split(), n, spec),
			RandomLayered(rng.Split(), n/4+2, n/2+1, 3, spec),
			MontageLike(rng.Split(), n, spec),
			EpigenomicsLike(rng.Split(), n/4+1, n/4+1, spec),
		}
		for _, d := range dags {
			if d.Validate() != nil {
				return false
			}
			for _, tk := range d.Tasks {
				if tk.TotalWork() <= 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: critical path length >= max single-task compute and <= sum of
// all compute + comm.
func TestPropertyCriticalPathBounds(t *testing.T) {
	f := func(seed uint64) bool {
		rng := workload.NewRNG(seed)
		d := RandomLayered(rng, 5, 6, 3, genSpec())
		compute := func(tk *Task) float64 { return tk.ScalarWork / 1e9 }
		comm := func(e Edge) float64 { return e.Bytes / 1e8 }
		cp, _ := d.CriticalPath(compute, comm)
		maxTask, sum := 0.0, 0.0
		for _, tk := range d.Tasks {
			c := compute(tk)
			sum += c
			if c > maxTask {
				maxTask = c
			}
		}
		for _, e := range d.Edges {
			sum += comm(e)
		}
		return cp >= maxTask-1e-9 && cp <= sum+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
