// Package task models units of work and workflow DAGs for the continuum.
//
// A Task carries scalar work (flops on a core), tensor work (flops that an
// accelerator of the right kind executes far faster), and external data
// references. A DAG adds producer-consumer edges annotated with the bytes
// that must move if the endpoints are placed on different nodes — the
// quantity every placement policy trades against compute speed.
package task

import (
	"fmt"

	"continuum/internal/node"
)

// ID indexes a task within its DAG.
type ID int

// DataRef names an external dataset a task reads, with its size. The data
// fabric resolves where replicas live.
type DataRef struct {
	Name  string
	Bytes float64
}

// Task is one schedulable unit.
type Task struct {
	ID   ID
	Name string

	ScalarWork float64 // flops executed on a core
	TensorWork float64 // flops targeting Accel
	Accel      node.AccelKind

	// Inputs are external datasets (not produced by DAG predecessors).
	Inputs []DataRef
	// OutputBytes is the size of the result this task materializes; it is
	// what flows along outgoing edges unless the edge overrides it.
	OutputBytes float64
}

// TotalWork returns scalar + tensor flops, a device-independent size proxy.
func (t *Task) TotalWork() float64 { return t.ScalarWork + t.TensorWork }

// Edge is a producer→consumer dependency carrying Bytes of intermediate
// data.
type Edge struct {
	From, To ID
	Bytes    float64
}

// DAG is a directed acyclic graph of tasks.
type DAG struct {
	Name  string
	Tasks []*Task
	Edges []Edge

	succ, pred [][]int // adjacency by edge index, built lazily
	built      bool
}

// NewDAG returns an empty DAG with the given name.
func NewDAG(name string) *DAG {
	return &DAG{Name: name}
}

// Add appends a task, assigns its ID, and returns it.
func (d *DAG) Add(t *Task) *Task {
	t.ID = ID(len(d.Tasks))
	d.Tasks = append(d.Tasks, t)
	d.built = false
	return t
}

// AddTask is a convenience constructor: scalar-only work with output size.
func (d *DAG) AddTask(name string, scalarWork, outputBytes float64) *Task {
	return d.Add(&Task{Name: name, ScalarWork: scalarWork, OutputBytes: outputBytes})
}

// Connect adds an edge moving bytes from producer to consumer. A negative
// bytes value means "use the producer's OutputBytes".
func (d *DAG) Connect(from, to ID, bytes float64) {
	if bytes < 0 {
		bytes = d.Tasks[from].OutputBytes
	}
	d.Edges = append(d.Edges, Edge{From: from, To: to, Bytes: bytes})
	d.built = false
}

// N returns the number of tasks.
func (d *DAG) N() int { return len(d.Tasks) }

func (d *DAG) build() {
	if d.built {
		return
	}
	n := len(d.Tasks)
	d.succ = make([][]int, n)
	d.pred = make([][]int, n)
	for i, e := range d.Edges {
		d.succ[e.From] = append(d.succ[e.From], i)
		d.pred[e.To] = append(d.pred[e.To], i)
	}
	d.built = true
}

// Successors returns the edges leaving t.
func (d *DAG) Successors(t ID) []Edge {
	d.build()
	out := make([]Edge, len(d.succ[t]))
	for i, ei := range d.succ[t] {
		out[i] = d.Edges[ei]
	}
	return out
}

// Predecessors returns the edges entering t.
func (d *DAG) Predecessors(t ID) []Edge {
	d.build()
	out := make([]Edge, len(d.pred[t]))
	for i, ei := range d.pred[t] {
		out[i] = d.Edges[ei]
	}
	return out
}

// InDegree returns the number of incoming edges of t.
func (d *DAG) InDegree(t ID) int {
	d.build()
	return len(d.pred[t])
}

// Roots returns tasks with no predecessors.
func (d *DAG) Roots() []ID {
	d.build()
	var roots []ID
	for i := range d.Tasks {
		if len(d.pred[i]) == 0 {
			roots = append(roots, ID(i))
		}
	}
	return roots
}

// Sinks returns tasks with no successors.
func (d *DAG) Sinks() []ID {
	d.build()
	var sinks []ID
	for i := range d.Tasks {
		if len(d.succ[i]) == 0 {
			sinks = append(sinks, ID(i))
		}
	}
	return sinks
}

// Validate checks edge endpoints and acyclicity.
func (d *DAG) Validate() error {
	n := len(d.Tasks)
	for _, e := range d.Edges {
		if e.From < 0 || int(e.From) >= n || e.To < 0 || int(e.To) >= n {
			return fmt.Errorf("task: edge %v out of range [0,%d)", e, n)
		}
		if e.From == e.To {
			return fmt.Errorf("task: self-edge on %d", e.From)
		}
		if e.Bytes < 0 {
			return fmt.Errorf("task: negative edge bytes %v", e.Bytes)
		}
	}
	if _, err := d.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// TopoOrder returns a topological order (Kahn), or an error if the graph
// has a cycle. Ties are broken by task ID for determinism.
func (d *DAG) TopoOrder() ([]ID, error) {
	d.build()
	n := len(d.Tasks)
	indeg := make([]int, n)
	for i := range d.Tasks {
		indeg[i] = len(d.pred[i])
	}
	// Deterministic Kahn: repeatedly take the smallest ready ID. A simple
	// sorted frontier is fine at workflow scales.
	var order []ID
	ready := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	for len(ready) > 0 {
		// Pop the minimum.
		mi := 0
		for i := 1; i < len(ready); i++ {
			if ready[i] < ready[mi] {
				mi = i
			}
		}
		u := ready[mi]
		ready = append(ready[:mi], ready[mi+1:]...)
		order = append(order, ID(u))
		for _, ei := range d.succ[u] {
			v := int(d.Edges[ei].To)
			indeg[v]--
			if indeg[v] == 0 {
				ready = append(ready, v)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("task: DAG %q has a cycle (%d of %d ordered)", d.Name, len(order), n)
	}
	return order, nil
}

// CriticalPath returns the longest path length through the DAG where each
// task costs compute(t) seconds and each edge costs comm(e) seconds, plus
// one witness path. It is the classic makespan lower bound.
func (d *DAG) CriticalPath(compute func(*Task) float64, comm func(Edge) float64) (float64, []ID) {
	order, err := d.TopoOrder()
	if err != nil {
		panic(err) // callers validate first; a cycle is a programming error
	}
	n := len(d.Tasks)
	dist := make([]float64, n)
	via := make([]ID, n)
	for i := range via {
		via[i] = -1
	}
	best := 0.0
	bestEnd := ID(-1)
	for _, u := range order {
		dist[u] += compute(d.Tasks[u])
		if dist[u] > best {
			best = dist[u]
			bestEnd = u
		}
		for _, e := range d.Successors(u) {
			cand := dist[u] + comm(e)
			if cand > dist[e.To] {
				dist[e.To] = cand
				via[e.To] = u
			}
		}
	}
	var path []ID
	for at := bestEnd; at >= 0; at = via[at] {
		path = append(path, at)
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return best, path
}

// TotalWork sums flops over all tasks.
func (d *DAG) TotalWork() float64 {
	sum := 0.0
	for _, t := range d.Tasks {
		sum += t.TotalWork()
	}
	return sum
}

// TotalEdgeBytes sums intermediate data over all edges.
func (d *DAG) TotalEdgeBytes() float64 {
	sum := 0.0
	for _, e := range d.Edges {
		sum += e.Bytes
	}
	return sum
}
