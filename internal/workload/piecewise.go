package workload

import "math"

// Phase is one segment of a piecewise-constant rate schedule: from Start
// (seconds from process start) onward, the base rate is multiplied by
// Factor, until the next phase begins.
type Phase struct {
	Start  float64
	Factor float64
}

// Piecewise is a Poisson arrival process whose rate is modulated by a
// piecewise-constant factor schedule — flash crowds, diurnal ramps, and
// every other scenario "workload" event compile down to it. Before the
// first phase the factor is 1. Like MMPP, phase boundaries are handled
// by burning the remaining segment time and redrawing: exponential
// memorylessness makes that exact, not an approximation.
type Piecewise struct {
	rng    *RNG
	rate   float64
	phases []Phase
	t      float64 // absolute time of the last arrival
	idx    int     // number of phases with Start <= t
}

// NewPiecewise builds the process. rate is the base rate (events/s);
// phases must be sorted by Start with positive factors. An empty
// schedule degenerates to plain Poisson.
func NewPiecewise(rng *RNG, rate float64, phases []Phase) *Piecewise {
	if rate <= 0 {
		panic("workload: Piecewise rate <= 0")
	}
	for i, p := range phases {
		if p.Factor <= 0 {
			panic("workload: Piecewise factor <= 0")
		}
		if i > 0 && p.Start < phases[i-1].Start {
			panic("workload: Piecewise phases not sorted by Start")
		}
	}
	return &Piecewise{rng: rng, rate: rate, phases: phases}
}

// factor returns the rate multiplier in effect at the current time.
func (p *Piecewise) factor() float64 {
	if p.idx == 0 {
		return 1
	}
	return p.phases[p.idx-1].Factor
}

// boundary returns when the current factor stops applying.
func (p *Piecewise) boundary() float64 {
	if p.idx >= len(p.phases) {
		return math.Inf(1)
	}
	return p.phases[p.idx].Start
}

// Next returns the next inter-arrival gap, crossing phase boundaries as
// needed.
func (p *Piecewise) Next() float64 {
	total := 0.0
	for {
		gap := p.rng.Exp(p.rate * p.factor())
		if end := p.boundary(); p.t+gap > end {
			// The tentative arrival lands past the boundary: burn the time
			// to the boundary and redraw at the new rate.
			total += end - p.t
			p.t = end
			for p.idx < len(p.phases) && p.phases[p.idx].Start <= p.t {
				p.idx++
			}
			continue
		}
		p.t += gap
		return total + gap
	}
}

// Rate returns the base (unmodulated) rate; the schedule multiplies it
// segment by segment.
func (p *Piecewise) Rate() float64 { return p.rate }
