package workload

import (
	"math"
	"testing"
)

// countArrivals draws from p until horizon and buckets arrivals by
// window boundaries.
func countArrivals(p *Piecewise, horizon float64, edges []float64) []int {
	counts := make([]int, len(edges)+1)
	t := 0.0
	for {
		t += p.Next()
		if t > horizon {
			return counts
		}
		i := 0
		for i < len(edges) && t >= edges[i] {
			i++
		}
		counts[i]++
	}
}

func TestPiecewiseModulatesRate(t *testing.T) {
	// Base rate 100/s; factor 1 on [0,50), 4 on [50,100), 0.5 on [100,150).
	p := NewPiecewise(NewRNG(3), 100, []Phase{{Start: 50, Factor: 4}, {Start: 100, Factor: 0.5}})
	counts := countArrivals(p, 150, []float64{50, 100})
	want := []float64{100 * 50, 400 * 50, 50 * 50}
	for i, c := range counts {
		if ratio := float64(c) / want[i]; math.Abs(ratio-1) > 0.1 {
			t.Fatalf("window %d: %d arrivals, want ~%v", i, c, want[i])
		}
	}
	if p.Rate() != 100 {
		t.Fatalf("Rate() = %v, want base 100", p.Rate())
	}
}

func TestPiecewiseNoPhasesIsPoisson(t *testing.T) {
	// With no phases the process must be exactly the base Poisson draw
	// sequence for the same seed.
	a := NewPiecewise(NewRNG(4), 7, nil)
	b := NewPoisson(NewRNG(4), 7)
	for i := 0; i < 1000; i++ {
		if g, h := a.Next(), b.Next(); math.Abs(g-h) > 1e-12 {
			t.Fatalf("draw %d: piecewise %v vs poisson %v", i, g, h)
		}
	}
}

func TestPiecewiseDeterministic(t *testing.T) {
	draw := func() []float64 {
		p := NewPiecewise(NewRNG(5), 10, []Phase{{Start: 1, Factor: 3}, {Start: 2, Factor: 0.25}})
		out := make([]float64, 500)
		for i := range out {
			out[i] = p.Next()
		}
		return out
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d diverged: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestPiecewisePanicsOnBadInput(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"zero rate", func() { NewPiecewise(NewRNG(1), 0, nil) }},
		{"zero factor", func() { NewPiecewise(NewRNG(1), 1, []Phase{{Start: 1, Factor: 0}}) }},
		{"unsorted phases", func() {
			NewPiecewise(NewRNG(1), 1, []Phase{{Start: 5, Factor: 2}, {Start: 1, Factor: 3}})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", tc.name)
				}
			}()
			tc.fn()
		})
	}
}
