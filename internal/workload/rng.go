// Package workload provides deterministic random workload generation:
// a seedable PRNG independent of math/rand version drift, standard
// distributions (exponential, lognormal, Pareto, Zipf), and arrival
// processes (Poisson, MMPP, deterministic).
//
// Determinism matters here: every experiment in the repository is
// reproducible from a seed, and sub-streams can be split off so that adding
// one more random draw in one component does not perturb another.
package workload

import "math"

// RNG is a splitmix64-based pseudo-random generator. It is deliberately
// self-contained (not math/rand) so generated workloads are stable across
// Go releases. The zero value is a valid generator seeded with 0.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Split returns an independent sub-stream generator derived from the
// current state. The parent advances, so successive Splits differ.
func (r *RNG) Split() *RNG {
	// Mix the parent's output with a distinct odd constant so child streams
	// do not overlap the parent sequence.
	return &RNG{state: r.Uint64()*0x9e3779b97f4a7c15 + 0xbf58476d1ce4e5b9}
}

// Uint64 returns the next 64 pseudo-random bits (splitmix64).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("workload: Intn with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("workload: Int63n with n <= 0")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Range returns a uniform float64 in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Exp returns an exponential variate with the given rate (mean 1/rate).
func (r *RNG) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("workload: Exp with rate <= 0")
	}
	// 1-Float64() is in (0,1]; avoids log(0).
	return -math.Log(1-r.Float64()) / rate
}

// Norm returns a normal variate with the given mean and standard deviation
// (Box-Muller).
func (r *RNG) Norm(mean, stddev float64) float64 {
	u1 := 1 - r.Float64() // (0,1]
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Lognormal returns exp(N(mu, sigma)). Note mu/sigma parameterize the
// underlying normal, not the lognormal's own mean.
func (r *RNG) Lognormal(mu, sigma float64) float64 {
	return math.Exp(r.Norm(mu, sigma))
}

// Pareto returns a Pareto variate with minimum xm and shape alpha.
// Heavy-tailed for alpha <= 2 (infinite variance), the classic model for
// file and flow sizes.
func (r *RNG) Pareto(xm, alpha float64) float64 {
	if xm <= 0 || alpha <= 0 {
		panic("workload: Pareto with nonpositive parameter")
	}
	u := 1 - r.Float64() // (0,1]
	return xm / math.Pow(u, 1/alpha)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using swap, Fisher-Yates.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Zipf generates ranks in [0, n) with probability proportional to
// 1/(rank+1)^s, the standard popularity-skew model for dataset access.
type Zipf struct {
	rng *RNG
	cdf []float64
}

// NewZipf builds a Zipf sampler over n items with exponent s >= 0
// (s = 0 is uniform). It precomputes the CDF in O(n).
func NewZipf(rng *RNG, n int, s float64) *Zipf {
	if n <= 0 {
		panic("workload: Zipf with n <= 0")
	}
	if s < 0 {
		panic("workload: Zipf with s < 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{rng: rng, cdf: cdf}
}

// N returns the number of items.
func (z *Zipf) N() int { return len(z.cdf) }

// Next returns the next sampled rank in [0, N).
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	// Binary search the CDF.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
