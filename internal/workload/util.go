package workload

import "math"

func expm(x float64) float64 { return math.Exp(x) }

func inf() float64 { return math.Inf(1) }
