package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverged at draw %d", i)
		}
	}
}

func TestRNGDifferentSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/100 identical draws across seeds", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := NewRNG(7)
	c1 := r.Split()
	c2 := r.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling sub-streams produced identical first draw")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(5)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(9)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) covered %d values, want 7", len(seen))
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestExpMean(t *testing.T) {
	r := NewRNG(11)
	const rate = 2.5
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.Exp(rate)
		if v < 0 {
			t.Fatalf("Exp = %v < 0", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-1/rate) > 0.01 {
		t.Fatalf("Exp mean = %v, want ~%v", mean, 1/rate)
	}
}

func TestNormMoments(t *testing.T) {
	r := NewRNG(13)
	const mu, sd = 3.0, 2.0
	sum, sq := 0.0, 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.Norm(mu, sd)
		sum += v
		sq += v * v
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean-mu) > 0.05 {
		t.Fatalf("Norm mean = %v, want ~%v", mean, mu)
	}
	if math.Abs(math.Sqrt(variance)-sd) > 0.05 {
		t.Fatalf("Norm sd = %v, want ~%v", math.Sqrt(variance), sd)
	}
}

func TestLognormalMean(t *testing.T) {
	r := NewRNG(17)
	const mu, sigma = 0.0, 0.5
	sum := 0.0
	const n = 300000
	for i := 0; i < n; i++ {
		sum += r.Lognormal(mu, sigma)
	}
	want := math.Exp(mu + sigma*sigma/2)
	if mean := sum / n; math.Abs(mean-want)/want > 0.02 {
		t.Fatalf("Lognormal mean = %v, want ~%v", mean, want)
	}
}

func TestParetoMinimumAndMean(t *testing.T) {
	r := NewRNG(19)
	const xm, alpha = 2.0, 3.0
	sum := 0.0
	const n = 300000
	for i := 0; i < n; i++ {
		v := r.Pareto(xm, alpha)
		if v < xm {
			t.Fatalf("Pareto = %v < xm %v", v, xm)
		}
		sum += v
	}
	want := alpha * xm / (alpha - 1)
	if mean := sum / n; math.Abs(mean-want)/want > 0.03 {
		t.Fatalf("Pareto mean = %v, want ~%v", mean, want)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(23)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestPropertyPermAlwaysPermutation(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		size := int(n%50) + 1
		p := NewRNG(seed).Perm(size)
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRNG(29)
	z := NewZipf(r, 100, 1.0)
	counts := make([]int, 100)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	// Rank 0 should dominate rank 10 by roughly 11x under s=1.
	if counts[0] < 5*counts[10] {
		t.Fatalf("Zipf skew too weak: rank0=%d rank10=%d", counts[0], counts[10])
	}
	// Every rank should still be reachable-ish; at least the top half.
	for i := 0; i < 50; i++ {
		if counts[i] == 0 {
			t.Fatalf("rank %d never sampled", i)
		}
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	r := NewRNG(31)
	z := NewZipf(r, 10, 0)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	for i, c := range counts {
		if math.Abs(float64(c)-n/10) > n/10*0.1 {
			t.Fatalf("s=0 not uniform: counts[%d] = %d", i, c)
		}
	}
}

func TestPropertyZipfInRange(t *testing.T) {
	f := func(seed uint64, n uint8, s uint8) bool {
		size := int(n%30) + 1
		z := NewZipf(NewRNG(seed), size, float64(s%3))
		for i := 0; i < 100; i++ {
			v := z.Next()
			if v < 0 || v >= size {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
