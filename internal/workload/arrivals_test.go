package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPoissonMeanRate(t *testing.T) {
	p := NewPoisson(NewRNG(1), 4.0)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		g := p.Next()
		if g < 0 {
			t.Fatalf("negative gap %v", g)
		}
		sum += g
	}
	rate := n / sum
	if math.Abs(rate-4.0) > 0.05 {
		t.Fatalf("empirical rate %v, want ~4", rate)
	}
	if p.Rate() != 4.0 {
		t.Fatalf("Rate() = %v, want 4", p.Rate())
	}
}

func TestPoissonPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewPoisson(0) did not panic")
		}
	}()
	NewPoisson(NewRNG(1), 0)
}

func TestDeterministicGaps(t *testing.T) {
	d := NewDeterministic(0.5)
	for i := 0; i < 10; i++ {
		if d.Next() != 0.5 {
			t.Fatal("deterministic gap varied")
		}
	}
	if d.Rate() != 2.0 {
		t.Fatalf("Rate() = %v, want 2", d.Rate())
	}
}

func TestMMPPMeanRate(t *testing.T) {
	// Low 1/s for mean 10s, high 20/s for mean 10s: mean rate 10.5/s.
	m := NewMMPP(NewRNG(2), 1, 20, 10, 10)
	wantRate := m.Rate()
	if math.Abs(wantRate-10.5) > 1e-9 {
		t.Fatalf("Rate() = %v, want 10.5", wantRate)
	}
	sum := 0.0
	const n = 400000
	for i := 0; i < n; i++ {
		g := m.Next()
		if g < 0 {
			t.Fatalf("negative gap %v", g)
		}
		sum += g
	}
	rate := n / sum
	if math.Abs(rate-wantRate)/wantRate > 0.05 {
		t.Fatalf("empirical MMPP rate %v, want ~%v", rate, wantRate)
	}
}

func TestMMPPBurstiness(t *testing.T) {
	// MMPP gaps should have a higher coefficient of variation than Poisson
	// at the same mean rate.
	m := NewMMPP(NewRNG(3), 0.5, 50, 20, 2)
	var gaps []float64
	for i := 0; i < 100000; i++ {
		gaps = append(gaps, m.Next())
	}
	cv := coefVar(gaps)
	if cv <= 1.05 {
		t.Fatalf("MMPP CV = %v, want > 1.05 (burstier than Poisson)", cv)
	}
}

func coefVar(xs []float64) float64 {
	sum, sq := 0.0, 0.0
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	n := float64(len(xs))
	mean := sum / n
	v := sq/n - mean*mean
	return math.Sqrt(v) / mean
}

func TestSizeDistMeans(t *testing.T) {
	cases := []struct {
		name string
		d    SizeDist
		tol  float64
	}{
		{"fixed", FixedSize(7), 0},
		{"lognormal", NewLognormalSize(NewRNG(4), 1, 0.6), 0.03},
		{"pareto", NewParetoSize(NewRNG(5), 1, 2.5), 0.05},
		{"uniform", NewUniformSize(NewRNG(6), 2, 8), 0.02},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sum := 0.0
			const n = 300000
			for i := 0; i < n; i++ {
				v := tc.d.Next()
				if v < 0 {
					t.Fatalf("negative size %v", v)
				}
				sum += v
			}
			mean := sum / n
			want := tc.d.Mean()
			if tc.tol == 0 {
				if mean != want {
					t.Fatalf("mean = %v, want %v", mean, want)
				}
				return
			}
			if math.Abs(mean-want)/want > tc.tol {
				t.Fatalf("mean = %v, want ~%v", mean, want)
			}
		})
	}
}

func TestParetoInfiniteMean(t *testing.T) {
	p := NewParetoSize(NewRNG(7), 1, 0.9)
	if !math.IsInf(p.Mean(), 1) {
		t.Fatalf("Pareto alpha<=1 Mean() = %v, want +Inf", p.Mean())
	}
}

func TestPropertyArrivalGapsNonnegative(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		procs := []ArrivalProcess{
			NewPoisson(rng.Split(), 3),
			NewDeterministic(0.25),
			NewMMPP(rng.Split(), 1, 10, 5, 5),
		}
		for _, p := range procs {
			for i := 0; i < 200; i++ {
				if p.Next() < 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
