package workload

// ArrivalProcess produces successive inter-arrival gaps in seconds. Next
// never returns a negative value.
type ArrivalProcess interface {
	// Next returns the gap to the next arrival.
	Next() float64
	// Rate returns the long-run mean arrival rate in events/second.
	Rate() float64
}

// Poisson is a memoryless arrival process with exponential gaps.
type Poisson struct {
	rng  *RNG
	rate float64
}

// NewPoisson returns a Poisson process with the given mean rate (events/s).
func NewPoisson(rng *RNG, rate float64) *Poisson {
	if rate <= 0 {
		panic("workload: Poisson rate <= 0")
	}
	return &Poisson{rng: rng, rate: rate}
}

// Next returns an exponential inter-arrival gap.
func (p *Poisson) Next() float64 { return p.rng.Exp(p.rate) }

// Rate returns the configured rate.
func (p *Poisson) Rate() float64 { return p.rate }

// Deterministic emits arrivals at a fixed period.
type Deterministic struct{ period float64 }

// NewDeterministic returns a process with the given fixed period in seconds.
func NewDeterministic(period float64) *Deterministic {
	if period <= 0 {
		panic("workload: Deterministic period <= 0")
	}
	return &Deterministic{period: period}
}

// Next returns the constant period.
func (d *Deterministic) Next() float64 { return d.period }

// Rate returns 1/period.
func (d *Deterministic) Rate() float64 { return 1 / d.period }

// MMPP is a two-state Markov-modulated Poisson process: a bursty source
// that alternates between a low-rate and a high-rate phase with
// exponentially distributed phase durations. It is the standard simple
// model for bursty IoT and request traffic.
type MMPP struct {
	rng                  *RNG
	rateLow, rateHigh    float64
	meanLowDur, meanHigh float64
	inHigh               bool
	phaseLeft            float64
}

// NewMMPP builds a two-phase MMPP. rateLow/rateHigh are the per-phase
// Poisson rates; meanLowDur/meanHighDur the mean phase durations in seconds.
func NewMMPP(rng *RNG, rateLow, rateHigh, meanLowDur, meanHighDur float64) *MMPP {
	if rateLow <= 0 || rateHigh <= 0 || meanLowDur <= 0 || meanHighDur <= 0 {
		panic("workload: MMPP nonpositive parameter")
	}
	m := &MMPP{
		rng: rng, rateLow: rateLow, rateHigh: rateHigh,
		meanLowDur: meanLowDur, meanHigh: meanHighDur,
	}
	m.phaseLeft = rng.Exp(1 / meanLowDur)
	return m
}

// Next returns the next inter-arrival gap, advancing phases as needed.
func (m *MMPP) Next() float64 {
	total := 0.0
	for {
		rate := m.rateLow
		if m.inHigh {
			rate = m.rateHigh
		}
		gap := m.rng.Exp(rate)
		if gap <= m.phaseLeft {
			m.phaseLeft -= gap
			return total + gap
		}
		// Phase expires before the tentative arrival: burn the remaining
		// phase time and redraw in the next phase (memorylessness makes
		// this exact).
		total += m.phaseLeft
		m.inHigh = !m.inHigh
		mean := m.meanLowDur
		if m.inHigh {
			mean = m.meanHigh
		}
		m.phaseLeft = m.rng.Exp(1 / mean)
	}
}

// Rate returns the time-weighted mean rate across phases.
func (m *MMPP) Rate() float64 {
	wLow := m.meanLowDur / (m.meanLowDur + m.meanHigh)
	return wLow*m.rateLow + (1-wLow)*m.rateHigh
}

// SizeDist produces i.i.d. job/flow sizes.
type SizeDist interface {
	// Next returns the next size (bytes, flops — caller's unit).
	Next() float64
	// Mean returns the distribution mean.
	Mean() float64
}

// FixedSize always returns the same size.
type FixedSize float64

// Next returns the fixed size.
func (f FixedSize) Next() float64 { return float64(f) }

// Mean returns the fixed size.
func (f FixedSize) Mean() float64 { return float64(f) }

// LognormalSize draws lognormal sizes, the common model for task runtimes.
type LognormalSize struct {
	rng       *RNG
	mu, sigma float64
}

// NewLognormalSize builds a lognormal size source with underlying-normal
// parameters mu and sigma.
func NewLognormalSize(rng *RNG, mu, sigma float64) *LognormalSize {
	return &LognormalSize{rng: rng, mu: mu, sigma: sigma}
}

// Next draws one size.
func (l *LognormalSize) Next() float64 { return l.rng.Lognormal(l.mu, l.sigma) }

// Mean returns exp(mu + sigma^2/2).
func (l *LognormalSize) Mean() float64 {
	return expm(l.mu + l.sigma*l.sigma/2)
}

// ParetoSize draws heavy-tailed Pareto sizes (file/flow sizes).
type ParetoSize struct {
	rng       *RNG
	xm, alpha float64
}

// NewParetoSize builds a Pareto size source with minimum xm and shape alpha.
func NewParetoSize(rng *RNG, xm, alpha float64) *ParetoSize {
	return &ParetoSize{rng: rng, xm: xm, alpha: alpha}
}

// Next draws one size.
func (p *ParetoSize) Next() float64 { return p.rng.Pareto(p.xm, p.alpha) }

// Mean returns alpha*xm/(alpha-1) for alpha > 1, +Inf otherwise.
func (p *ParetoSize) Mean() float64 {
	if p.alpha <= 1 {
		return inf()
	}
	return p.alpha * p.xm / (p.alpha - 1)
}

// UniformSize draws uniform sizes in [lo, hi).
type UniformSize struct {
	rng    *RNG
	lo, hi float64
}

// NewUniformSize builds a uniform size source on [lo, hi).
func NewUniformSize(rng *RNG, lo, hi float64) *UniformSize {
	if hi < lo {
		panic("workload: UniformSize hi < lo")
	}
	return &UniformSize{rng: rng, lo: lo, hi: hi}
}

// Next draws one size.
func (u *UniformSize) Next() float64 { return u.rng.Range(u.lo, u.hi) }

// Mean returns (lo+hi)/2.
func (u *UniformSize) Mean() float64 { return (u.lo + u.hi) / 2 }
