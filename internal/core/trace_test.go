package core

import (
	"testing"

	"continuum/internal/placement"
	"continuum/internal/task"
	"continuum/internal/trace"
)

func TestRunStreamRecordsTrace(t *testing.T) {
	c := miniContinuum()
	c.Tracer = trace.New(0)
	jobs := []StreamJob{
		{Task: &task.Task{Name: "a", ScalarWork: 1e8, OutputBytes: 10}, Origin: c.Nodes[0].ID, Submit: 0},
		{Task: &task.Task{Name: "b", ScalarWork: 1e8, OutputBytes: 10}, Origin: c.Nodes[0].ID, Submit: 1},
	}
	st := c.RunStream(placement.GreedyLatency{}, jobs, nil)
	if st.Completed != 2 {
		t.Fatalf("Completed = %d", st.Completed)
	}
	if got := len(c.Tracer.Filter(trace.TaskStart)); got != 2 {
		t.Fatalf("TaskStart events = %d, want 2", got)
	}
	if got := len(c.Tracer.Filter(trace.TaskEnd)); got != 2 {
		t.Fatalf("TaskEnd events = %d, want 2", got)
	}
}

func TestRunStreamNilTracerSafe(t *testing.T) {
	c := miniContinuum() // Tracer nil
	jobs := []StreamJob{
		{Task: &task.Task{Name: "a", ScalarWork: 1e8}, Origin: c.Nodes[0].ID, Submit: 0},
	}
	if st := c.RunStream(placement.GreedyLatency{}, jobs, nil); st.Completed != 1 {
		t.Fatal("nil tracer broke the runner")
	}
}
