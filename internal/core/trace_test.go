package core

import (
	"testing"

	"continuum/internal/fault"
	"continuum/internal/node"
	"continuum/internal/placement"
	"continuum/internal/task"
	"continuum/internal/trace"
	"continuum/internal/workload"
)

func TestRunStreamRecordsTrace(t *testing.T) {
	c := miniContinuum()
	c.Tracer = trace.New(0)
	jobs := []StreamJob{
		{Task: &task.Task{Name: "a", ScalarWork: 1e8, OutputBytes: 10}, Origin: c.Nodes[0].ID, Submit: 0},
		{Task: &task.Task{Name: "b", ScalarWork: 1e8, OutputBytes: 10}, Origin: c.Nodes[0].ID, Submit: 1},
	}
	st := c.RunStream(placement.GreedyLatency{}, jobs, nil)
	if st.Completed != 2 {
		t.Fatalf("Completed = %d", st.Completed)
	}
	if got := len(c.Tracer.Filter(trace.TaskStart)); got != 2 {
		t.Fatalf("TaskStart events = %d, want 2", got)
	}
	if got := len(c.Tracer.Filter(trace.TaskEnd)); got != 2 {
		t.Fatalf("TaskEnd events = %d, want 2", got)
	}
}

// TestEngineSpanAttribution checks the observability contract of the
// unified engine: every attempt is bracketed by a Dispatch instant and
// Stage/Task spans, and retried attempts carry their attempt number so
// exported timelines (JSONL, Chrome trace) can attribute work to retries.
func TestEngineSpanAttribution(t *testing.T) {
	c := miniContinuum()
	c.Tracer = trace.New(0)
	jobs := []StreamJob{
		{Task: &task.Task{Name: "a", ScalarWork: 1e8, OutputBytes: 10}, Origin: c.Nodes[0].ID, Submit: 0},
		{Task: &task.Task{Name: "b", ScalarWork: 1e8, OutputBytes: 10}, Origin: c.Nodes[0].ID, Submit: 1},
	}
	if st := c.RunStream(placement.GreedyLatency{}, jobs, nil); st.Completed != 2 {
		t.Fatalf("Completed = %d", st.Completed)
	}
	if got := len(c.Tracer.Filter(trace.Dispatch)); got != 2 {
		t.Fatalf("Dispatch events = %d, want 2", got)
	}
	starts, ends := c.Tracer.Filter(trace.StageStart), c.Tracer.Filter(trace.StageEnd)
	if len(starts) != 2 || len(ends) != 2 {
		t.Fatalf("stage spans = %d/%d, want 2/2", len(starts), len(ends))
	}
	for _, e := range c.Tracer.Events() {
		if e.Attempt != 0 {
			t.Fatalf("fault-free run recorded attempt %d: %+v", e.Attempt, e)
		}
	}

	// Force retries on a single flaky candidate: some attempt must be
	// re-dispatched with a higher attempt number.
	c2 := miniContinuum()
	c2.Tracer = trace.New(0)
	inj := fault.NewInjector(c2.K, workload.NewRNG(2), 1e4)
	gwFault := inj.Attach("gw", fault.Spec{MeanUp: 0.3, MeanDown: 0.2})
	var retryJobs []StreamJob
	for i := 0; i < 30; i++ {
		retryJobs = append(retryJobs, StreamJob{
			Task:   &task.Task{Name: "r", ScalarWork: 2e9, OutputBytes: 10},
			Origin: c2.Nodes[0].ID,
			Submit: float64(i) * 0.2,
		})
	}
	st := c2.RunStreamReliable(placement.GreedyLatency{}, retryJobs,
		[]*node.Node{c2.Nodes[0]}, ReliableOptions{
			Faults:     map[int]*fault.Target{c2.Nodes[0].ID: gwFault},
			MaxRetries: 50,
		})
	if st.Retries == 0 {
		t.Fatal("workload produced no retries; attribution untestable")
	}
	maxAttempt := 0
	for _, e := range c2.Tracer.Filter(trace.Dispatch) {
		if e.Attempt > maxAttempt {
			maxAttempt = e.Attempt
		}
	}
	if maxAttempt == 0 {
		t.Fatalf("%d retries happened but every Dispatch has attempt 0", st.Retries)
	}
}

func TestRunStreamNilTracerSafe(t *testing.T) {
	c := miniContinuum() // Tracer nil
	jobs := []StreamJob{
		{Task: &task.Task{Name: "a", ScalarWork: 1e8}, Origin: c.Nodes[0].ID, Submit: 0},
	}
	if st := c.RunStream(placement.GreedyLatency{}, jobs, nil); st.Completed != 1 {
		t.Fatal("nil tracer broke the runner")
	}
}
