package core

import (
	"math"
	"testing"

	"continuum/internal/data"
	"continuum/internal/node"
	"continuum/internal/placement"
	"continuum/internal/task"
	"continuum/internal/workload"
)

func miniContinuum() *Continuum {
	c := New()
	cat := node.Catalog()
	gw := cat["gateway"]
	gw.Name = "gw"
	cl := cat["cloud"]
	cl.Name = "cloud"
	a := c.AddNode(gw)
	b := c.AddNode(cl)
	c.Connect(a.ID, b.ID, 0.020, 1.25e9)
	return c
}

func TestBuilderBasics(t *testing.T) {
	c := miniContinuum()
	if len(c.Nodes) != 2 {
		t.Fatalf("nodes = %d", len(c.Nodes))
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.NodeByName("cloud") == nil || c.NodeByName("nope") != nil {
		t.Fatal("NodeByName wrong")
	}
	env := c.Env()
	if env.Net != c.Net || len(env.Nodes) != 2 {
		t.Fatal("Env mismatch")
	}
}

func TestValidateDetectsPartition(t *testing.T) {
	c := New()
	cat := node.Catalog()
	g1 := cat["gateway"]
	g1.Name = "a"
	g2 := cat["gateway"]
	g2.Name = "b"
	c.AddNode(g1)
	c.AddNode(g2) // never connected
	if c.Validate() == nil {
		t.Fatal("partition not detected")
	}
}

func TestBuildThreeTierShape(t *testing.T) {
	tt := BuildThreeTier(DefaultThreeTierParams(3, 4))
	if len(tt.Gateways) != 3 || len(tt.Sensors) != 3 || len(tt.Sensors[0]) != 4 {
		t.Fatal("three-tier shape wrong")
	}
	if err := tt.Validate(); err != nil {
		t.Fatal(err)
	}
	// Sensor to cloud latency: 5 + 2 + 20 ms.
	lat := tt.Net.Latency(tt.Sensors[0][0].ID, tt.Cloud.ID)
	if math.Abs(lat-0.027) > 1e-9 {
		t.Fatalf("sensor->cloud latency = %v, want 0.027", lat)
	}
	cn := tt.ComputeNodes()
	if len(cn) != 3+2 {
		t.Fatalf("ComputeNodes = %d, want 5", len(cn))
	}
}

func TestRunStreamBasic(t *testing.T) {
	c := miniContinuum()
	var jobs []StreamJob
	for i := 0; i < 20; i++ {
		jobs = append(jobs, StreamJob{
			Task:   &task.Task{Name: "t", ScalarWork: 1e8, OutputBytes: 1e3},
			Origin: c.Nodes[0].ID,
			Submit: float64(i) * 0.1,
		})
	}
	st := c.RunStream(placement.GreedyLatency{}, jobs, nil)
	if st.Completed != 20 {
		t.Fatalf("Completed = %d", st.Completed)
	}
	if st.Latency.Count() != 20 {
		t.Fatal("latency histogram incomplete")
	}
	if st.Latency.Mean() <= 0 {
		t.Fatal("nonpositive latency")
	}
	if st.Joules <= 0 {
		t.Fatal("no energy recorded")
	}
	if st.Makespan <= 0 {
		t.Fatal("no makespan")
	}
}

func TestRunStreamEdgeVsCloudLatency(t *testing.T) {
	// With tiny tasks, placing on the local gateway must beat the cloud on
	// latency (WAN RTT dominates).
	mk := func() (*Continuum, []StreamJob) {
		c := miniContinuum()
		var jobs []StreamJob
		for i := 0; i < 50; i++ {
			jobs = append(jobs, StreamJob{
				Task:   &task.Task{Name: "t", ScalarWork: 1e7, OutputBytes: 100},
				Origin: c.Nodes[0].ID,
				Submit: float64(i) * 0.05,
			})
		}
		return c, jobs
	}
	c1, j1 := mk()
	edge := c1.RunStream(placement.EdgeOnly{}, j1, nil)
	c2, j2 := mk()
	cloud := c2.RunStream(placement.CloudOnly{}, j2, nil)
	if edge.Latency.Mean() >= cloud.Latency.Mean() {
		t.Fatalf("edge mean %v not below cloud %v for tiny tasks",
			edge.Latency.Mean(), cloud.Latency.Mean())
	}
}

func TestRunStreamWithFabricStaging(t *testing.T) {
	c := miniContinuum()
	rng := workload.NewRNG(1)
	c.EnableFabric(rng, 1e9, data.LRU)
	ds := data.Dataset{Name: "model", Bytes: 1e6}
	c.Fabric.Pin(ds, c.Nodes[1].ID) // model lives in the cloud
	jobs := []StreamJob{{
		Task: &task.Task{
			Name: "infer", ScalarWork: 1e8, OutputBytes: 100,
			Inputs: []task.DataRef{{Name: "model", Bytes: ds.Bytes}},
		},
		Origin: c.Nodes[0].ID,
		Submit: 0,
	}}
	st := c.RunStream(placement.DataAware{}, jobs, nil)
	if st.Completed != 1 {
		t.Fatalf("Completed = %d", st.Completed)
	}
	// The data-aware policy should have run it at the cloud, where the
	// model already lives (no staging).
	if st.PerNode["cloud"] != 1 {
		t.Fatalf("PerNode = %v, want cloud", st.PerNode)
	}
}

func TestRunDAGChainSingleNode(t *testing.T) {
	c := miniContinuum()
	d := task.NewDAG("chain")
	d.AddTask("a", 2.5e9, 1e3) // 1s on gateway core (2.5e9 flops)
	d.AddTask("b", 2.5e9, 1e3)
	d.Connect(0, 1, -1)
	sched := placement.Schedule{
		Algorithm: "manual",
		Assign:    map[task.ID]int{0: 0, 1: 0},
		EstFinish: map[task.ID]float64{},
	}
	st, err := c.RunDAG(d, sched, c.Env())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.Makespan-2.0) > 1e-9 {
		t.Fatalf("makespan = %v, want 2.0", st.Makespan)
	}
}

func TestRunDAGCrossNodeTransfer(t *testing.T) {
	c := miniContinuum()
	d := task.NewDAG("xfer")
	d.AddTask("a", 2.5e9, 1.25e9) // outputs 1.25GB -> 1s over the WAN link
	d.AddTask("b", 3.2e9*96, 0)   // 1s on cloud using... 1 core: 96 cores*3.2e9 -> we use 1 core
	d.Connect(0, 1, -1)
	sched := placement.Schedule{
		Algorithm: "manual",
		Assign:    map[task.ID]int{0: 0, 1: 1},
	}
	st, err := c.RunDAG(d, sched, c.Env())
	if err != nil {
		t.Fatal(err)
	}
	// a: 1s; transfer: 20ms + 1s; b on one cloud core: 96s.
	want := 1.0 + 0.020 + 1.0 + 96.0
	if math.Abs(st.Makespan-want) > 0.01 {
		t.Fatalf("makespan = %v, want ~%v", st.Makespan, want)
	}
}

func TestRunDAGParallelismExploited(t *testing.T) {
	c := miniContinuum()
	rng := workload.NewRNG(2)
	d := task.FanOutIn(rng, 8, task.GenSpec{MeanWork: 2.5e9, MeanBytes: 1e3})
	env := c.Env()
	heft := placement.HEFT(env, d)
	st, err := c.RunDAG(d, heft, env)
	if err != nil {
		t.Fatal(err)
	}
	// Serial execution of 10 x 1s-ish tasks would be ~10s on the gateway;
	// with fan-out on multiple cores makespan must be far less than the sum.
	sumWork := 0.0
	for _, tk := range d.Tasks {
		sumWork += tk.ScalarWork / 2.5e9
	}
	if st.Makespan > 0.8*sumWork {
		t.Fatalf("makespan %v shows no parallelism (serial %v)", st.Makespan, sumWork)
	}
}

func TestRunDAGHEFTNoWorseThanRandom(t *testing.T) {
	rng := workload.NewRNG(3)
	spec := task.GenSpec{MeanWork: 5e9, WorkSigma: 1.0, MeanBytes: 1e5, BytesSigma: 0.5}
	var heftTot, randTot float64
	for trial := 0; trial < 5; trial++ {
		d := task.RandomLayered(rng.Split(), 4, 6, 3, spec)
		{
			c := miniContinuum()
			env := c.Env()
			st, err := c.RunDAG(d, placement.HEFT(env, d), env)
			if err != nil {
				t.Fatal(err)
			}
			heftTot += st.Makespan
		}
		{
			c := miniContinuum()
			env := c.Env()
			st, err := c.RunDAG(d, placement.ListRandom(env, d, rng.Split()), env)
			if err != nil {
				t.Fatal(err)
			}
			randTot += st.Makespan
		}
	}
	if heftTot > randTot*1.05 {
		t.Fatalf("HEFT measured %v worse than random %v", heftTot, randTot)
	}
}

func TestRunDAGRejectsIncompleteSchedule(t *testing.T) {
	c := miniContinuum()
	d := task.NewDAG("x")
	d.AddTask("a", 1e9, 0)
	_, err := c.RunDAG(d, placement.Schedule{Assign: map[task.ID]int{}}, c.Env())
	if err == nil {
		t.Fatal("incomplete schedule accepted")
	}
}

func TestRunDAGWithFabricInputs(t *testing.T) {
	c := miniContinuum()
	c.EnableFabric(workload.NewRNG(4), 2e9, data.LRU)
	ds := data.Dataset{Name: "raw", Bytes: 1.25e9} // 1s over WAN
	c.Fabric.Pin(ds, c.Nodes[1].ID)
	d := task.NewDAG("staged")
	d.Add(&task.Task{
		Name: "crunch", ScalarWork: 2.5e9,
		Inputs: []task.DataRef{{Name: "raw", Bytes: ds.Bytes}},
	})
	sched := placement.Schedule{Assign: map[task.ID]int{0: 0}} // on gateway
	st, err := c.RunDAG(d, sched, c.Env())
	if err != nil {
		t.Fatal(err)
	}
	// Stage 1.25GB to the gateway (~1.02s) + exec 1s.
	if st.Makespan < 1.5 || st.Makespan > 2.5 {
		t.Fatalf("makespan = %v, want ~2.02", st.Makespan)
	}
	if !c.Fabric.Holds(c.Nodes[0].ID, "raw") {
		t.Fatal("input not cached at gateway after staging")
	}
}

func TestTotalJoulesGrowsWithTime(t *testing.T) {
	c := miniContinuum()
	c.K.RunUntil(10)
	j1 := c.TotalJoules()
	c.K.RunUntil(20)
	j2 := c.TotalJoules()
	if j2 <= j1 || j1 <= 0 {
		t.Fatalf("energy not increasing: %v then %v", j1, j2)
	}
}
