package core

import (
	"testing"

	"continuum/internal/node"
	"continuum/internal/placement"
)

// TestDisturbDropConsumesRetries: a Disturb hook that drops every
// attempt on one node must show up as ChaosDrops and force retries,
// while the other node absorbs the work and nothing is lost.
func TestDisturbDropConsumesRetries(t *testing.T) {
	c := miniContinuum()
	gwID := c.Nodes[0].ID
	opts := ReliableOptions{
		MaxRetries: 5,
		Disturb: func(n *node.Node) (bool, float64) {
			return n.ID == gwID, 0
		},
	}
	st := c.RunStreamReliable(&placement.RoundRobin{}, reliableJobs(c, 30, 0.2), nil, opts)
	if st.ChaosDrops == 0 {
		t.Fatal("no chaos drops recorded")
	}
	if st.Retries == 0 {
		t.Fatal("drops did not consume retries")
	}
	if st.Lost != 0 {
		t.Fatalf("%d lost with a healthy cloud available", st.Lost)
	}
	if st.PerNode["gw"] != 0 {
		t.Fatalf("work completed on a node that drops everything: %v", st.PerNode)
	}
}

// TestDisturbDelayAddsLatency: a pure-delay hook must not drop anything
// but must show up in measured latency.
func TestDisturbDelayAddsLatency(t *testing.T) {
	base := miniContinuum()
	plain := base.RunStreamReliable(placement.GreedyLatency{}, reliableJobs(base, 20, 0.3), nil,
		ReliableOptions{MaxRetries: 3})

	slow := miniContinuum()
	st := slow.RunStreamReliable(placement.GreedyLatency{}, reliableJobs(slow, 20, 0.3), nil,
		ReliableOptions{
			MaxRetries: 3,
			Disturb:    func(*node.Node) (bool, float64) { return false, 0.05 },
		})
	if st.ChaosDrops != 0 || st.Lost != 0 || st.Retries != 0 {
		t.Fatalf("delay-only disturb dropped work: %+v", st)
	}
	if st.Completed != plain.Completed {
		t.Fatalf("completed %d vs plain %d", st.Completed, plain.Completed)
	}
	if got, want := st.Latency.Mean(), plain.Latency.Mean()+0.05; got < want-1e-9 {
		t.Fatalf("mean latency %v, want >= %v (plain + injected 50ms)", got, want)
	}
}

// TestDropSubmitSuppresses: submissions from a down origin are silenced
// before they enter the engine, mirroring a live node whose generator is
// paused while it is failed.
func TestDropSubmitSuppresses(t *testing.T) {
	c := miniContinuum()
	gwID := c.Nodes[0].ID
	jobs := reliableJobs(c, 30, 0.2)
	// Origin down for submit times in [2, 4): 10 of the 30 jobs.
	down := func(at float64) bool { return at >= 2 && at < 4 }
	var noted int
	for _, j := range jobs {
		if down(j.Submit) {
			noted++
		}
	}
	opts := ReliableOptions{
		MaxRetries: 3,
		DropSubmit: func(origin int) bool {
			return origin == gwID && down(c.K.Now())
		},
	}
	st := c.RunStreamReliable(placement.GreedyLatency{}, jobs, nil, opts)
	if st.Suppressed != int64(noted) {
		t.Fatalf("suppressed %d, want %d", st.Suppressed, noted)
	}
	if st.Completed != int64(len(jobs)-noted) {
		t.Fatalf("completed %d, want %d", st.Completed, len(jobs)-noted)
	}
	if st.Lost != 0 {
		t.Fatalf("suppressed submissions counted as lost: %+v", st)
	}
}

// TestDisturbZeroOptionsUnchanged: leaving the hooks nil must be
// byte-for-byte the pre-hook engine.
func TestDisturbZeroOptionsUnchanged(t *testing.T) {
	run := func(opts ReliableOptions) *ReliableStats {
		c := miniContinuum()
		return c.RunStreamReliable(placement.GreedyLatency{}, reliableJobs(c, 25, 0.2), nil, opts)
	}
	a := run(ReliableOptions{MaxRetries: 3})
	b := run(ReliableOptions{
		MaxRetries: 3,
		Disturb:    func(*node.Node) (bool, float64) { return false, 0 },
		DropSubmit: func(int) bool { return false },
	})
	if a.Completed != b.Completed || a.Latency.Mean() != b.Latency.Mean() {
		t.Fatalf("no-op hooks changed the run: %+v vs %+v", a, b)
	}
}
