package core

import (
	"math"
	"testing"
	"testing/quick"

	"continuum/internal/data"
	"continuum/internal/placement"
	"continuum/internal/task"
	"continuum/internal/trace"
	"continuum/internal/workload"
)

// statsEqual compares two Stats field-for-field, reporting the first
// mismatch through t.Errorf.
func statsEqual(t *testing.T, label string, a, b *Stats) bool {
	t.Helper()
	ok := true
	if a.Completed != b.Completed {
		t.Errorf("%s: Completed %d vs %d", label, a.Completed, b.Completed)
		ok = false
	}
	if !a.Latency.Equal(b.Latency) {
		t.Errorf("%s: Latency histograms differ (mean %v vs %v, n %d vs %d)",
			label, a.Latency.Mean(), b.Latency.Mean(), a.Latency.Count(), b.Latency.Count())
		ok = false
	}
	if a.Joules != b.Joules {
		t.Errorf("%s: Joules %v vs %v", label, a.Joules, b.Joules)
		ok = false
	}
	if a.Dollars != b.Dollars {
		t.Errorf("%s: Dollars %v vs %v", label, a.Dollars, b.Dollars)
		ok = false
	}
	if a.EgressB != b.EgressB {
		t.Errorf("%s: EgressB %v vs %v", label, a.EgressB, b.EgressB)
		ok = false
	}
	if a.Makespan != b.Makespan {
		t.Errorf("%s: Makespan %v vs %v", label, a.Makespan, b.Makespan)
		ok = false
	}
	if len(a.PerNode) != len(b.PerNode) {
		t.Errorf("%s: PerNode %v vs %v", label, a.PerNode, b.PerNode)
		ok = false
	} else {
		for name, n := range a.PerNode {
			if b.PerNode[name] != n {
				t.Errorf("%s: PerNode[%s] %d vs %d", label, name, n, b.PerNode[name])
				ok = false
			}
		}
	}
	return ok
}

// seededJobs derives a random stream workload from one seed: job count,
// inter-arrival gaps, work sizes, and output bytes all come from the
// seed's PRNG stream.
func seededJobs(c *Continuum, seed uint64, withInputs bool) []StreamJob {
	rng := workload.NewRNG(seed)
	n := 5 + rng.Intn(25)
	var jobs []StreamJob
	t := 0.0
	for i := 0; i < n; i++ {
		t += 0.02 + rng.Float64()*0.3
		tk := &task.Task{
			Name:        "t",
			ScalarWork:  1e7 + rng.Float64()*5e8,
			OutputBytes: 10 + rng.Float64()*1e5,
		}
		if withInputs {
			tk.Inputs = []task.DataRef{{Name: "shared", Bytes: 1e6}}
		}
		jobs = append(jobs, StreamJob{Task: tk, Origin: c.Nodes[0].ID, Submit: t})
	}
	return jobs
}

// TestZeroFaultStreamEquivalence is the invariant the unified engine
// buys: a reliable stream run with zero-value ReliableOptions produces
// Stats identical, field-for-field, to the base runner on the same seed.
func TestZeroFaultStreamEquivalence(t *testing.T) {
	prop := func(seed uint64) bool {
		c1 := miniContinuum()
		base := c1.RunStream(placement.GreedyLatency{}, seededJobs(c1, seed, false), nil)

		c2 := miniContinuum()
		rel := c2.RunStreamReliable(placement.GreedyLatency{}, seededJobs(c2, seed, false), nil,
			ReliableOptions{})

		if rel.Retries != 0 || rel.Lost != 0 {
			t.Errorf("seed %d: zero-fault run retried (%d) or lost (%d)", seed, rel.Retries, rel.Lost)
			return false
		}
		return statsEqual(t, "stream", base, rel.Stats)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestZeroFaultStreamEquivalenceWithFabric covers the staging branch of
// the pipeline: with a fabric enabled and inputs attached, base and
// zero-fault reliable runs must still match exactly (this is the drift
// the engine removed — the old reliable runner bypassed the fabric).
func TestZeroFaultStreamEquivalenceWithFabric(t *testing.T) {
	prop := func(seed uint64) bool {
		mk := func() *Continuum {
			c := miniContinuum()
			c.EnableFabric(workload.NewRNG(7), 1e9, data.LRU)
			c.Fabric.Pin(data.Dataset{Name: "shared", Bytes: 1e6}, c.Nodes[1].ID)
			return c
		}
		c1 := mk()
		base := c1.RunStream(placement.GreedyLatency{}, seededJobs(c1, seed, true), nil)
		c2 := mk()
		rel := c2.RunStreamReliable(placement.GreedyLatency{}, seededJobs(c2, seed, true), nil,
			ReliableOptions{MaxRetries: 3})
		if rel.Retries != 0 || rel.Lost != 0 {
			t.Errorf("seed %d: zero-fault fabric run retried or lost", seed)
			return false
		}
		return statsEqual(t, "stream+fabric", base, rel.Stats)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// TestZeroFaultDAGEquivalence asserts the same invariant on the DAG
// path: RunDAGReliable with empty Faults reproduces RunDAG field-for-field.
func TestZeroFaultDAGEquivalence(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := workload.NewRNG(seed)
		d := task.RandomLayered(rng, 3, 5, 3, task.GenSpec{
			MeanWork: 3e9, WorkSigma: 0.8, MeanBytes: 1e5, BytesSigma: 0.5,
		})

		c1 := miniContinuum()
		env1 := c1.Env()
		base, err := c1.RunDAG(d, placement.HEFT(env1, d), env1)
		if err != nil {
			t.Errorf("seed %d: base DAG: %v", seed, err)
			return false
		}
		c2 := miniContinuum()
		env2 := c2.Env()
		rel, err := c2.RunDAGReliable(d, placement.HEFT(env2, d), env2, ReliableOptions{})
		if err != nil {
			t.Errorf("seed %d: reliable DAG: %v", seed, err)
			return false
		}
		if rel.Retries != 0 || rel.Lost != 0 {
			t.Errorf("seed %d: zero-fault DAG retried or lost", seed)
			return false
		}
		return statsEqual(t, "dag", base, rel.Stats)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestReliableStreamStagesThroughFabric is the regression test for the
// pre-engine bug: RunStreamReliable ignored c.Fabric and always shipped
// inputs from the origin, so edge caching had no effect on reliability
// runs. With the engine, a fabric hit at the executing node must remove
// the input transfer from the reliable run's latency.
func TestReliableStreamStagesThroughFabric(t *testing.T) {
	const inputBytes = 1.25e9 // ~1s over the 10 Gbit WAN link
	mkJobs := func(c *Continuum) []StreamJob {
		return []StreamJob{{
			Task: &task.Task{
				Name: "crunch", ScalarWork: 2.5e9, OutputBytes: 100,
				Inputs: []task.DataRef{{Name: "model", Bytes: inputBytes}},
			},
			Origin: c.Nodes[0].ID, // gateway
			Submit: 0,
		}}
	}

	// Without a fabric, the input ships gateway→cloud over the WAN.
	c1 := miniContinuum()
	shipped := c1.RunStreamReliable(placement.CloudOnly{}, mkJobs(c1), nil,
		ReliableOptions{MaxRetries: 2})
	if shipped.Completed != 1 {
		t.Fatalf("shipped run completed %d", shipped.Completed)
	}

	// With a fabric and the model already resident at the cloud, staging
	// is a cache hit and the transfer disappears.
	c2 := miniContinuum()
	c2.EnableFabric(workload.NewRNG(1), 2e9, data.LRU)
	c2.Fabric.Pin(data.Dataset{Name: "model", Bytes: inputBytes}, c2.Nodes[1].ID)
	cached := c2.RunStreamReliable(placement.CloudOnly{}, mkJobs(c2), nil,
		ReliableOptions{MaxRetries: 2})
	if cached.Completed != 1 {
		t.Fatalf("cached run completed %d", cached.Completed)
	}
	if c2.Fabric.Store(c2.Nodes[1].ID).Hits == 0 {
		t.Fatal("reliable run did not consult the fabric (no cache hit recorded)")
	}
	if gain := shipped.Latency.Mean() - cached.Latency.Mean(); gain < 0.5 {
		t.Fatalf("fabric hit saved only %vs of reliable-run latency (shipped %v, cached %v)",
			gain, shipped.Latency.Mean(), cached.Latency.Mean())
	}
}

// TestReliableTraceParity asserts reliable runs emit the same trace event
// kinds as base runs — the second half of the pre-engine drift (the old
// reliable runners recorded nothing, or skipped transfer records).
func TestReliableTraceParity(t *testing.T) {
	kindCounts := func(tr *trace.Tracer) map[trace.Kind]int {
		out := map[trace.Kind]int{}
		for _, e := range tr.Events() {
			out[e.Kind]++
		}
		return out
	}

	// Stream: TaskStart/TaskEnd per job.
	c1 := miniContinuum()
	c1.Tracer = trace.New(0)
	c1.RunStream(placement.GreedyLatency{}, seededJobs(c1, 11, false), nil)
	c2 := miniContinuum()
	c2.Tracer = trace.New(0)
	c2.RunStreamReliable(placement.GreedyLatency{}, seededJobs(c2, 11, false), nil,
		ReliableOptions{MaxRetries: 3})
	base, rel := kindCounts(c1.Tracer), kindCounts(c2.Tracer)
	if len(base) == 0 || base[trace.TaskStart] == 0 {
		t.Fatal("base stream run recorded no TaskStart events")
	}
	for k, n := range base {
		if rel[k] != n {
			t.Fatalf("stream trace drift: kind %s base %d reliable %d", k, n, rel[k])
		}
	}

	// DAG with cross-node edges: TaskStart/TaskEnd plus TransferStart/End.
	d := task.NewDAG("x")
	d.AddTask("a", 2.5e9, 1e6)
	d.AddTask("b", 2.5e9, 1e3)
	d.Connect(0, 1, -1)
	sched := placement.Schedule{Algorithm: "manual", Assign: map[task.ID]int{0: 0, 1: 1}}
	c3 := miniContinuum()
	c3.Tracer = trace.New(0)
	if _, err := c3.RunDAG(d, sched, c3.Env()); err != nil {
		t.Fatal(err)
	}
	c4 := miniContinuum()
	c4.Tracer = trace.New(0)
	if _, err := c4.RunDAGReliable(d, sched, c4.Env(), ReliableOptions{MaxRetries: 3}); err != nil {
		t.Fatal(err)
	}
	base, rel = kindCounts(c3.Tracer), kindCounts(c4.Tracer)
	if base[trace.TransferStart] == 0 || base[trace.TransferEnd] == 0 {
		t.Fatal("base DAG run recorded no transfer events for a cross-node edge")
	}
	for k, n := range base {
		if rel[k] != n {
			t.Fatalf("DAG trace drift: kind %s base %d reliable %d", k, n, rel[k])
		}
	}
}

// TestDAGLatencyIsReadyToFinish pins the fixed Stats.Latency semantics:
// each DAG task's sample is ready→finish, not its absolute completion
// time. In a two-task 1s+1s chain on one node both tasks wait ~0s after
// becoming ready and run for 1s, so the mean must be ~1.0 (the old
// absolute-time accounting would report 1.5).
func TestDAGLatencyIsReadyToFinish(t *testing.T) {
	c := miniContinuum()
	d := task.NewDAG("chain")
	d.AddTask("a", 2.5e9, 1e3) // 1s on the gateway core
	d.AddTask("b", 2.5e9, 1e3)
	d.Connect(0, 1, -1)
	sched := placement.Schedule{Algorithm: "manual", Assign: map[task.ID]int{0: 0, 1: 0}}
	st, err := c.RunDAG(d, sched, c.Env())
	if err != nil {
		t.Fatal(err)
	}
	if st.Latency.Count() != 2 {
		t.Fatalf("latency samples = %d, want 2", st.Latency.Count())
	}
	if math.Abs(st.Latency.Mean()-1.0) > 1e-6 {
		t.Fatalf("mean task latency = %v, want ~1.0 (ready→finish)", st.Latency.Mean())
	}
	if math.Abs(st.Latency.Max()-1.0) > 1e-6 {
		t.Fatalf("max task latency = %v, want ~1.0", st.Latency.Max())
	}
	if math.Abs(st.Makespan-2.0) > 1e-9 {
		t.Fatalf("makespan = %v, want 2.0", st.Makespan)
	}
}
