package core

import (
	"testing"

	"continuum/internal/node"
	"continuum/internal/placement"
	"continuum/internal/task"
	"continuum/internal/trace"
)

// pinFirst always selects the first node of the env — with it the primary
// placement is deterministic and the backup (the policy re-selected with
// the primary excluded) deterministically falls to the next candidate.
type pinFirst struct{}

func (pinFirst) Name() string { return "pin-first" }
func (pinFirst) Select(env *placement.Env, req placement.Request) *node.Node {
	return env.Nodes[0]
}

// specContinuum builds two single-core gateway-class nodes: one core each
// makes queueing stragglers trivially reproducible (a whale on n1 blocks
// everything behind it while n2 idles).
func specContinuum() *Continuum {
	c := New()
	cat := node.Catalog()
	s1 := cat["gateway"]
	s1.Name, s1.Cores = "n1", 1
	s2 := cat["gateway"]
	s2.Name, s2.Cores = "n2", 1
	a := c.AddNode(s1)
	b := c.AddNode(s2)
	c.Connect(a.ID, b.ID, 0.020, 1.25e9)
	return c
}

// specJobs is the canonical straggler bag: a 5s whale submitted first,
// then a 0.1s mouse that queues behind it on a pin-first single core.
func specJobs(c *Continuum) []StreamJob {
	return []StreamJob{
		{Task: &task.Task{Name: "whale", ScalarWork: 12.5e9, OutputBytes: 10},
			Origin: c.Nodes[0].ID, Submit: 0},
		{Task: &task.Task{Name: "mouse", ScalarWork: 2.5e8, OutputBytes: 10},
			Origin: c.Nodes[0].ID, Submit: 0.01},
	}
}

// TestSpeculationRescuesQueuedStraggler is the core property: a mouse
// queued behind a whale exceeds Multiple x its expected runtime, a backup
// launches on the idle node, wins, and the stale primary is preempted on
// delivery — with every stat consistent and no double-completion.
func TestSpeculationRescuesQueuedStraggler(t *testing.T) {
	base := specContinuum()
	bst := base.RunStreamReliable(pinFirst{}, specJobs(base), nil, ReliableOptions{MaxRetries: 1})
	if bst.Completed != 2 {
		t.Fatalf("baseline completed %d, want 2", bst.Completed)
	}
	if bst.Latency.Min() < 4 {
		t.Fatalf("baseline min latency %v — the mouse was not queued behind the whale", bst.Latency.Min())
	}

	c := specContinuum()
	st := c.RunStreamReliable(pinFirst{}, specJobs(c), nil, ReliableOptions{
		MaxRetries: 1,
		Speculate:  SpeculateOptions{Multiple: 2},
	})
	if st.Completed != 2 {
		t.Fatalf("completed %d, want 2 (no double-completion, no loss)", st.Completed)
	}
	if st.SpeculativeLaunches != 1 || st.SpeculativeWins != 1 || st.PreemptedTasks != 1 {
		t.Fatalf("launches/wins/preempted = %d/%d/%d, want 1/1/1",
			st.SpeculativeLaunches, st.SpeculativeWins, st.PreemptedTasks)
	}
	if st.Latency.Min() > 1 {
		t.Fatalf("rescued mouse latency %v, want < 1s (baseline %v)", st.Latency.Min(), bst.Latency.Min())
	}
	// The whale was never hedged (its own 2x threshold exceeds its
	// runtime), so it still completes on n1; the mouse's winning backup
	// ran on n2.
	if st.PerNode["n1"] != 1 || st.PerNode["n2"] != 1 {
		t.Fatalf("PerNode = %v, want n1:1 n2:1", st.PerNode)
	}
	if st.Retries != 0 || st.Lost != 0 {
		t.Fatalf("retries %d lost %d, want 0/0", st.Retries, st.Lost)
	}
}

// TestSpeculationNoBackupCandidate: with a single node there is nowhere
// to hedge to — the policy must degrade to exactly the non-speculative
// run rather than stall or double-run.
func TestSpeculationNoBackupCandidate(t *testing.T) {
	mk := func() *Continuum {
		c := New()
		cat := node.Catalog()
		s := cat["gateway"]
		s.Name, s.Cores = "only", 1
		c.AddNode(s)
		return c
	}
	c1 := mk()
	base := c1.RunStreamReliable(pinFirst{}, specJobs(c1), nil, ReliableOptions{MaxRetries: 1})
	c2 := mk()
	spec := c2.RunStreamReliable(pinFirst{}, specJobs(c2), nil, ReliableOptions{
		MaxRetries: 1,
		Speculate:  SpeculateOptions{Multiple: 2},
	})
	if spec.SpeculativeLaunches != 0 || spec.SpeculativeWins != 0 || spec.PreemptedTasks != 0 {
		t.Fatalf("single-node run speculated: launches/wins/preempted = %d/%d/%d",
			spec.SpeculativeLaunches, spec.SpeculativeWins, spec.PreemptedTasks)
	}
	statsEqual(t, "no-backup-candidate", base.Stats, spec.Stats)
}

// TestSpeculationQuantileTrigger exercises the latency-quantile hedge
// delay: round-robin placement alternates a fast and a 10x-degraded node,
// so after the first (fast) sample every slow-node job exceeds the
// observed quantile and is rescued by a backup on the fast node.
func TestSpeculationQuantileTrigger(t *testing.T) {
	c := New()
	cat := node.Catalog()
	fast := cat["gateway"]
	fast.Name, fast.Cores = "fast", 1
	slow := cat["gateway"]
	slow.Name, slow.Cores = "slow", 1
	slow.CoreFlops /= 10 // the degraded node: 1s per 2.5e8-flop task
	a := c.AddNode(fast)
	b := c.AddNode(slow)
	c.Connect(a.ID, b.ID, 0.002, 1.25e9)

	var jobs []StreamJob
	for i := 0; i < 6; i++ {
		jobs = append(jobs, StreamJob{
			Task:   &task.Task{Name: "t", ScalarWork: 2.5e8, OutputBytes: 10},
			Origin: a.ID,
			Submit: float64(i) * 2, // spaced out: no queueing, pure node speed
		})
	}
	st := c.RunStreamReliable(&placement.RoundRobin{}, jobs, nil, ReliableOptions{
		MaxRetries: 1,
		Speculate:  SpeculateOptions{Quantile: 0.5, MinSamples: 1},
	})
	if st.Completed != int64(len(jobs)) {
		t.Fatalf("completed %d, want %d", st.Completed, len(jobs))
	}
	if st.SpeculativeWins == 0 {
		t.Fatal("quantile trigger never rescued a slow-node job")
	}
	if st.Latency.Max() > 1 {
		t.Fatalf("max latency %v, want < 1s (slow node alone takes ~1s)", st.Latency.Max())
	}
}

// TestSpeculationDAG covers the DAG runner's hook: two parallel roots
// pinned to the same single core; the queued mouse is hedged to the idle
// node and wins there.
func TestSpeculationDAG(t *testing.T) {
	c := specContinuum()
	d := task.NewDAG("spec")
	d.AddTask("whale", 12.5e9, 10)
	d.AddTask("mouse", 2.5e8, 10)
	sched := placement.Schedule{Algorithm: "manual", Assign: map[task.ID]int{0: 0, 1: 0}}
	st, err := c.RunDAGReliable(d, sched, c.Env(), ReliableOptions{
		MaxRetries: 1,
		Speculate:  SpeculateOptions{Multiple: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed != 2 {
		t.Fatalf("completed %d, want 2", st.Completed)
	}
	if st.SpeculativeLaunches != 1 || st.SpeculativeWins != 1 || st.PreemptedTasks != 1 {
		t.Fatalf("launches/wins/preempted = %d/%d/%d, want 1/1/1",
			st.SpeculativeLaunches, st.SpeculativeWins, st.PreemptedTasks)
	}
	if st.PerNode["n2"] != 1 {
		t.Fatalf("PerNode = %v, want the mouse's winning backup on n2", st.PerNode)
	}
}

// TestSpeculationTraceAttribution pins the trace contract: the primary
// and its backup carry distinct attempt numbers, and the losing replica's
// discarded delivery is recorded as a Preempt instant with the loser's
// attempt — so exported timelines can tell the replicas apart.
func TestSpeculationTraceAttribution(t *testing.T) {
	c := specContinuum()
	c.Tracer = trace.New(0)
	c.RunStreamReliable(pinFirst{}, specJobs(c), nil, ReliableOptions{
		MaxRetries: 1,
		Speculate:  SpeculateOptions{Multiple: 2},
	})
	preempts := c.Tracer.Filter(trace.Preempt)
	if len(preempts) != 1 {
		t.Fatalf("preempt events = %d, want 1", len(preempts))
	}
	if preempts[0].Attempt != 0 {
		t.Fatalf("preempted attempt = %d, want 0 (the stale primary)", preempts[0].Attempt)
	}
	// The mouse executed twice — primary (attempt 0) and backup (attempt
	// 1) — and both executions must appear as TaskEnd events with their
	// own attempt numbers.
	attempts := map[int]bool{}
	for _, e := range c.Tracer.Filter(trace.TaskEnd) {
		if e.Detail == "mouse" {
			attempts[e.Attempt] = true
		}
	}
	if !attempts[0] || !attempts[1] {
		t.Fatalf("mouse TaskEnd attempts = %v, want both 0 and 1", attempts)
	}
}
