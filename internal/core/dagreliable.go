package core

import (
	"fmt"

	"continuum/internal/netsim"
	"continuum/internal/placement"
	"continuum/internal/task"
	"continuum/internal/trace"
)

// RunDAGReliable executes a static schedule on a continuum with failing
// nodes, with task-level retry: a completed task's outputs are durable
// (checkpointed), but a task whose host fails mid-execution is lost and
// re-executed once the host repairs — up to MaxRetries times per task,
// after which the run aborts with an error. The makespan inflation versus
// the failure-free run quantifies what checkpointing buys workflows on a
// flaky continuum.
//
// Retries wait for the assigned node to come back (static schedules pin
// tasks); RetryBackoff paces the re-check while the node is down.
func (c *Continuum) RunDAGReliable(d *task.DAG, sched placement.Schedule, env *placement.Env, opts ReliableOptions) (*ReliableStats, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if len(sched.Assign) != d.N() {
		return nil, fmt.Errorf("core: schedule covers %d of %d tasks", len(sched.Assign), d.N())
	}
	if opts.RetryBackoff <= 0 {
		opts.RetryBackoff = 0.1
	}
	st := &ReliableStats{Stats: newStats()}

	waiting := make([]int, d.N())
	for i := 0; i < d.N(); i++ {
		waiting[i] = d.InDegree(task.ID(i))
	}
	started := make([]bool, d.N())
	var aborted bool

	var tryStart func(id task.ID)
	var runTask func(id task.ID, retriesLeft int)
	runTask = func(id task.ID, retriesLeft int) {
		if aborted {
			return
		}
		tk := d.Tasks[id]
		n := env.Nodes[sched.Assign[id]]
		retry := func() {
			if retriesLeft <= 0 {
				st.Lost++
				aborted = true
				return
			}
			st.Retries++
			c.K.After(opts.RetryBackoff, func() {
				runTask(id, retriesLeft-1)
			})
		}
		if !opts.up(n) {
			retry() // wait out the downtime without consuming the task
			return
		}
		epoch0 := opts.epoch(n)
		c.Tracer.Record(c.K.Now(), trace.TaskStart, n.Name, tk.Name)
		n.Execute(tk.ScalarWork, tk.TensorWork, tk.Accel, func() {
			now := c.K.Now()
			if opts.epoch(n) != epoch0 {
				c.Tracer.Record(now, trace.Failure, n.Name, tk.Name+" lost")
				retry()
				return
			}
			c.Tracer.Record(now, trace.TaskEnd, n.Name, tk.Name)
			st.Completed++
			st.PerNode[n.Name]++
			if now > st.Makespan {
				st.Makespan = now
			}
			execTime := n.ExecTime(tk.ScalarWork, tk.TensorWork, tk.Accel)
			st.Dollars += n.DollarCost(execTime)
			for _, e := range d.Successors(id) {
				e := e
				dst := env.Nodes[sched.Assign[e.To]]
				if dst.ID == n.ID {
					waiting[e.To]--
					tryStart(e.To)
					continue
				}
				if n.EgressPerByte > 0 {
					st.Dollars += n.EgressPerByte * e.Bytes
					st.EgressB += e.Bytes
				}
				c.Net.Transfer(n.ID, dst.ID, e.Bytes, func(*netsim.Flow) {
					waiting[e.To]--
					tryStart(e.To)
				})
			}
		})
	}

	tryStart = func(id task.ID) {
		if started[id] || waiting[id] > 0 || aborted {
			return
		}
		started[id] = true
		runTask(id, opts.MaxRetries)
	}

	for _, r := range d.Roots() {
		tryStart(r)
	}
	c.K.Run()
	st.Joules = c.TotalJoules()

	if aborted {
		return st, fmt.Errorf("core: DAG aborted after exhausting retries (%d tasks completed)", st.Completed)
	}
	if st.Completed != int64(d.N()) {
		return st, fmt.Errorf("core: only %d of %d tasks completed", st.Completed, d.N())
	}
	return st, nil
}
