package core

import (
	"continuum/internal/placement"
	"continuum/internal/task"
)

// RunDAGReliable executes a static schedule on a continuum with failing
// nodes, with task-level retry: a completed task's outputs are durable
// (checkpointed), but a task whose host fails mid-execution is lost and
// re-executed once the host repairs — up to MaxRetries times per task,
// after which the run aborts with an error. The makespan inflation versus
// the failure-free run quantifies what checkpointing buys workflows on a
// flaky continuum.
//
// Retries wait for the assigned node to come back (static schedules pin
// tasks); RetryBackoff paces the re-check while the node is down.
//
// It is the same engine as RunDAG with the fault hook engaged: external
// inputs stage through the fabric when one is enabled, and
// TaskStart/TaskEnd/TransferStart/TransferEnd trace records are emitted
// exactly as in base runs (plus Failure records for lost attempts).
func (c *Continuum) RunDAGReliable(d *task.DAG, sched placement.Schedule, env *placement.Env, opts ReliableOptions) (*ReliableStats, error) {
	return c.runDAG(d, sched, env, opts)
}
