package core

import (
	"fmt"
	"math"

	"continuum/internal/data"
	"continuum/internal/netsim"
	"continuum/internal/node"
	"continuum/internal/placement"
	"continuum/internal/sim"
	"continuum/internal/task"
	"continuum/internal/trace"
)

// engine is the single execution loop behind all four public runners
// (RunStream, RunStreamReliable, RunDAG, RunDAGReliable). Every unit of
// work — an online stream job or one DAG task — flows through the same
// pipeline:
//
//	stage inputs → epoch-check → execute → epoch-check →
//	    account cost/egress → deliver outputs → feedback/trace
//
// Fault-awareness is not a separate runner: it is the ReliableOptions
// hook. With the zero value (no Faults) every epoch-check is a no-op, no
// retry can ever fire, and no backup replica is ever launched, so a
// reliable run without faults is the same computation as a base run —
// the equivalence property engine_test.go asserts. Deadlines
// (TaskDeadline) and speculation/preemption (Speculate) are likewise
// hooks on this shared pipeline, so all four entry points inherit them
// at once.
type engine struct {
	c    *Continuum
	st   *ReliableStats
	opts ReliableOptions
	// fb receives measured latencies when the policy implements
	// placement.FeedbackPolicy (stream runs only).
	fb placement.FeedbackPolicy

	// hasFaults caches len(opts.Faults) > 0 so fault-free runs skip the
	// per-dispatch epoch map lookups (three per attempt) entirely.
	hasFaults bool

	// Per-dispatch scratch, reused across attempts. The kernel is
	// single-threaded and policies consume their Env synchronously
	// without retaining it, so one buffer per purpose suffices — the
	// steady-state dispatch path allocates nothing.
	liveScratch   []*node.Node
	backupScratch []*node.Node
	envScratch    placement.Env
}

// defaultRetryBackoff paces re-dispatch when ReliableOptions leaves
// RetryBackoff unset.
const defaultRetryBackoff = 0.1

func newEngine(c *Continuum, opts ReliableOptions) *engine {
	if opts.RetryBackoff <= 0 {
		opts.RetryBackoff = defaultRetryBackoff
	}
	return &engine{c: c, st: &ReliableStats{Stats: newStats()}, opts: opts, hasFaults: len(opts.Faults) > 0}
}

// unit is one attempt at executing a task on a chosen node.
type unit struct {
	task *task.Task
	node *node.Node

	// attempt numbers this try: 0 for the first dispatch, incremented on
	// every retry. It rides on every trace event the unit emits so
	// exported timelines attribute spans to the retry that produced them.
	attempt int

	// origin, when >= 0, is the vertex inputs are shipped from when no
	// fabric serves them (stream semantics). DAG tasks pass -1: their
	// inputs arrive via fabric staging or predecessor edge transfers.
	origin int

	// deliver runs after successful execution and cost accounting, at
	// virtual time execEnd: stream jobs send the reply message, DAG
	// tasks count completion and launch successor edge transfers.
	deliver func(execEnd float64)

	// lost runs instead of deliver when the host's failure epoch
	// advanced mid-attempt (inputs or results on a failed node).
	lost func()
}

// run admits one attempt into the pipeline, consulting the Disturb hook
// first: a drawn delay re-enters late via the kernel, a drawn drop is
// routed to u.lost exactly like an epoch failure. With a nil hook this
// is a direct call to dispatch.
func (e *engine) run(u unit) {
	if e.opts.Disturb != nil {
		drop, delay := e.opts.Disturb(u.node)
		if delay > 0 {
			e.c.K.After(delay, func() { e.afterDisturb(u, drop) })
			return
		}
		if drop {
			e.afterDisturb(u, true)
			return
		}
	}
	e.dispatch(u)
}

// afterDisturb resumes a disturbed attempt once its injected delay (if
// any) has elapsed: a dropped attempt is lost like an epoch failure, a
// merely delayed one enters the pipeline late.
func (e *engine) afterDisturb(u unit, drop bool) {
	if drop {
		e.st.ChaosDrops++
		e.c.Tracer.RecordAttempt(e.c.K.Now(), trace.Failure, u.node.Name, u.task.Name+" chaos", u.attempt)
		u.lost()
		return
	}
	e.dispatch(u)
}

// dispatch drives one attempt through the pipeline. Epoch checks bracket
// the execution: the epoch is sampled at dispatch, re-checked after
// input staging and after execution, and any advance routes to u.lost
// with a Failure trace record. TaskDeadline is checked at the same two
// points against virtual time elapsed since dispatch; an overrun attempt
// is treated exactly like a lost one. With zero-value options every
// check is a no-op.
//
// Trace spans: a Dispatch instant marks the attempt entering the
// pipeline, StageStart/StageEnd bracket input staging when data actually
// moves, and TaskStart/TaskEnd bracket execution — all carrying the
// attempt number. Every record is nil-safe, so a continuum without a
// tracer pays only the dead branch inside Tracer.RecordAttempt.
func (e *engine) dispatch(u unit) {
	var epoch0 uint64
	if e.hasFaults {
		epoch0 = e.opts.epoch(u.node)
	}
	start := e.c.K.Now()
	e.c.Tracer.RecordAttempt(start, trace.Dispatch, u.node.Name, u.task.Name, u.attempt)
	e.stage(u, func() {
		if e.hasFaults && e.opts.epoch(u.node) != epoch0 {
			e.c.Tracer.RecordAttempt(e.c.K.Now(), trace.Failure, u.node.Name, u.task.Name+" inputs lost", u.attempt)
			u.lost()
			return
		}
		if e.missedDeadline(u, start) {
			return // staging alone blew the attempt's budget
		}
		e.c.Tracer.RecordAttempt(e.c.K.Now(), trace.TaskStart, u.node.Name, u.task.Name, u.attempt)
		u.node.Execute(u.task.ScalarWork, u.task.TensorWork, u.task.Accel, func() {
			now := e.c.K.Now()
			if e.hasFaults && e.opts.epoch(u.node) != epoch0 {
				e.c.Tracer.RecordAttempt(now, trace.Failure, u.node.Name, u.task.Name+" lost", u.attempt)
				u.lost()
				return
			}
			if e.missedDeadline(u, start) {
				return
			}
			e.c.Tracer.RecordAttempt(now, trace.TaskEnd, u.node.Name, u.task.Name, u.attempt)
			execTime := u.node.ExecTime(u.task.ScalarWork, u.task.TensorWork, u.task.Accel)
			e.st.Dollars += u.node.DollarCost(execTime)
			u.deliver(now)
		})
	})
}

// missedDeadline enforces the per-attempt deadline: when virtual time
// since dispatch exceeds TaskDeadline, the attempt is counted as a
// deadline miss, attributed in the trace, and routed to u.lost (which
// consumes the retry budget). The completed work is not billed — the
// result was discarded, matching the epoch-loss path.
func (e *engine) missedDeadline(u unit, start float64) bool {
	if e.opts.TaskDeadline <= 0 || e.c.K.Now()-start <= e.opts.TaskDeadline {
		return false
	}
	e.st.DeadlineMisses++
	e.c.Tracer.RecordAttempt(e.c.K.Now(), trace.Failure, u.node.Name, u.task.Name+" deadline exceeded", u.attempt)
	u.lost()
	return true
}

// stage makes the unit's inputs resident on its node, then calls next.
// With a fabric enabled every input stages through it (cache hits and
// transfer coalescing apply — for reliable runs too). Otherwise stream
// jobs ship their input bytes from the origin vertex in one message, and
// DAG tasks' external inputs are modeled as already resident
// (predecessor edges move intermediate data explicitly).
func (e *engine) stage(u unit, next func()) {
	if e.c.Fabric != nil && len(u.task.Inputs) > 0 {
		e.c.Tracer.RecordAttempt(e.c.K.Now(), trace.StageStart, u.node.Name, u.task.Name, u.attempt)
		pending := len(u.task.Inputs)
		for _, in := range u.task.Inputs {
			ds := data.Dataset{Name: in.Name, Bytes: in.Bytes}
			e.c.Fabric.Stage(ds, u.node.ID, func(bool) {
				pending--
				if pending == 0 {
					e.c.Tracer.RecordAttempt(e.c.K.Now(), trace.StageEnd, u.node.Name, u.task.Name, u.attempt)
					next()
				}
			})
		}
		return
	}
	if u.origin >= 0 {
		inBytes := 0.0
		for _, in := range u.task.Inputs {
			inBytes += in.Bytes
		}
		// Only wrap the completion callback when a tracer exists: the
		// extra closure would otherwise cost an allocation per job on the
		// untraced hot path BenchmarkEngineOverhead guards.
		cb := next
		if e.c.Tracer != nil {
			e.c.Tracer.RecordAttempt(e.c.K.Now(), trace.StageStart, u.node.Name, u.task.Name, u.attempt)
			cb = func() {
				e.c.Tracer.RecordAttempt(e.c.K.Now(), trace.StageEnd, u.node.Name, u.task.Name, u.attempt)
				next()
			}
		}
		e.c.Net.Message(u.origin, u.node.ID, inBytes, cb)
		return
	}
	next()
}

// egress charges n's per-byte egress price for bytes leaving n toward
// vertex dst and tallies them in Stats.EgressB. Local delivery (dst is
// n itself) and unbilled nodes are free. This is the single egress
// accounting point for replies and DAG edges alike.
func (e *engine) egress(n *node.Node, dst int, bytes float64) {
	if n.ID == dst || n.EgressPerByte <= 0 {
		return
	}
	e.st.Dollars += n.EgressPerByte * bytes
	e.st.EgressB += bytes
}

// complete finalizes one successful unit at the current virtual time:
// completion counters, the latency observation (now − latencyBase, see
// Stats.Latency for what the base is per workload kind), policy
// feedback, and the makespan high-water mark.
func (e *engine) complete(n *node.Node, latencyBase float64) {
	now := e.c.K.Now()
	e.st.Completed++
	e.st.PerNode[n.Name]++
	lat := now - latencyBase
	e.st.Latency.Add(lat)
	if e.fb != nil {
		e.fb.Observe(n.ID, lat)
	}
	if now > e.st.Makespan {
		e.st.Makespan = now
	}
}

// specGroup tracks one unit's replica set under the Speculate policy:
// how many replicas are still in flight, whether one already delivered,
// and the pending hedge timer (cancelled once the race is decided).
type specGroup struct {
	won         bool
	outstanding int
	timer       sim.Timer
}

// speculate dispatches one unit with hedged execution: the primary runs
// immediately, and if it is still in flight after the hedge delay a
// backup replica launches on the node pickBackup returns. The first
// replica to deliver wins; the loser's result is discarded (and counted
// as preempted) when it eventually completes — node.Execute has no
// mid-flight cancellation, which models real preemption-without-kill:
// the loser's core time and energy were genuinely consumed.
//
// mk builds a unit for a given (node, attempt) pair so each replica's
// delivery path is bound to the node that actually ran it; seq numbers
// every dispatch of the logical job, so primary, backup, and any later
// retry each carry a distinct trace attempt. Loss semantics: a replica
// loss while its sibling is still in flight is absorbed (the sibling
// carries the unit); only when the last outstanding replica is lost does
// the unit's loss path (retry budget) run.
func (e *engine) speculate(mk func(n *node.Node, attempt int) unit, primary *node.Node, seq *int, pickBackup func() *node.Node) {
	g := &specGroup{}
	wrap := func(v unit, backup bool) unit {
		deliver, lost := v.deliver, v.lost
		v.deliver = func(execEnd float64) {
			g.outstanding--
			if g.won {
				// The sibling already delivered: this replica lost the race.
				// Its execution was billed in run(); only the result is
				// discarded.
				e.st.PreemptedTasks++
				e.c.Tracer.RecordAttempt(e.c.K.Now(), trace.Preempt, v.node.Name, v.task.Name, v.attempt)
				return
			}
			g.won = true
			g.timer.Cancel()
			if backup {
				e.st.SpeculativeWins++
			}
			deliver(execEnd)
		}
		v.lost = func() {
			g.outstanding--
			if g.won || g.outstanding > 0 {
				return // the sibling still carries the unit
			}
			g.timer.Cancel()
			lost()
		}
		return v
	}
	u := mk(primary, *seq)
	*seq++
	if delay, ok := e.hedgeDelay(u); ok {
		g.timer = e.c.K.After(delay, func() {
			if g.won || g.outstanding == 0 {
				return // decided before the hedge delay elapsed
			}
			n := pickBackup()
			if n == nil {
				return // nowhere else to run it
			}
			b := mk(n, *seq)
			*seq++
			e.st.SpeculativeLaunches++
			g.outstanding++
			e.run(wrap(b, true))
		})
	}
	g.outstanding++
	e.run(wrap(u, false))
}

// hedgeDelay is how long an attempt may be in flight before a backup
// launches: the observed latency quantile once enough samples exist,
// else Multiple × the primary node's expected execution time.
func (e *engine) hedgeDelay(u unit) (float64, bool) {
	s := e.opts.Speculate
	if !s.enabled() {
		return 0, false
	}
	if s.Quantile > 0 && e.st.Latency.Count() >= int64(s.minSamples()) {
		if d := e.st.Latency.Quantile(s.Quantile); d > 0 {
			return d, true
		}
	}
	if s.Multiple > 0 {
		if d := s.Multiple * u.node.ExecTime(u.task.ScalarWork, u.task.TensorWork, u.task.Accel); d > 0 {
			return d, true
		}
	}
	return 0, false
}

// retry re-enqueues a failed attempt after RetryBackoff, or counts the
// unit lost and calls exhausted (may be nil) once the budget is spent.
func (e *engine) retry(retriesLeft int, again, exhausted func()) {
	if retriesLeft <= 0 {
		e.st.Lost++
		if exhausted != nil {
			exhausted()
		}
		return
	}
	e.st.Retries++
	e.c.K.After(e.opts.RetryBackoff, again)
}

// runStream is the engine configuration shared by RunStream and
// RunStreamReliable: per-job placement at submit time, inputs staged to
// the chosen node, reply shipped back to the origin, latency measured
// submit→reply (including any retries).
func (c *Continuum) runStream(pol placement.Policy, jobs []StreamJob, candidates []*node.Node, opts ReliableOptions) *ReliableStats {
	if len(candidates) == 0 {
		candidates = c.Nodes
	}
	e := newEngine(c, opts)
	e.fb, _ = pol.(placement.FeedbackPolicy)

	// Without faults every candidate is always live: build the placement
	// env once and keep it off the per-job hot path.
	staticEnv := &placement.Env{Net: c.Net, Nodes: candidates, Fabric: c.Fabric}

	// outstanding is the admission controller's state: jobs admitted at
	// submit time and not yet completed or lost. The kernel is
	// single-threaded, so a plain counter suffices.
	outstanding := 0
	release := func() {
		if opts.Admission.enabled() {
			outstanding--
		}
	}

	var attempt func(j StreamJob, retriesLeft int, seq *int)
	attempt = func(j StreamJob, retriesLeft int, seq *int) {
		again := func() { attempt(j, retriesLeft-1, seq) }
		env := staticEnv
		if e.hasFaults || e.opts.Cordoned != nil {
			live := e.liveScratch[:0]
			for _, n := range candidates {
				if e.opts.eligible(n) {
					live = append(live, n)
				}
			}
			e.liveScratch = live
			if len(live) == 0 {
				e.retry(retriesLeft, again, release)
				return
			}
			e.envScratch = placement.Env{Net: c.Net, Nodes: live, Fabric: c.Fabric}
			env = &e.envScratch
		}
		req := placement.Request{Task: j.Task, Origin: j.Origin}
		n := pol.Select(env, req)
		// mk binds a replica's delivery path to the node that actually runs
		// it — under speculation a backup executes (and replies from) a
		// different node than the primary.
		mk := func(n *node.Node, attemptNo int) unit {
			return unit{
				task:    j.Task,
				node:    n,
				attempt: attemptNo,
				origin:  j.Origin,
				deliver: func(float64) {
					e.egress(n, j.Origin, j.Task.OutputBytes)
					c.Net.Message(n.ID, j.Origin, j.Task.OutputBytes, func() {
						e.complete(n, j.Submit)
						release()
					})
				},
				lost: func() { e.retry(retriesLeft, again, release) },
			}
		}
		if !e.opts.Speculate.enabled() {
			u := mk(n, *seq)
			*seq++
			e.run(u)
			return
		}
		// The backup node is the policy's choice over the candidates that
		// are still eligible (up, not cordoned) at hedge time, with the
		// straggling primary excluded.
		e.speculate(mk, n, seq, func() *node.Node {
			rest := e.backupScratch[:0]
			for _, cn := range candidates {
				if cn != n && e.opts.eligible(cn) {
					rest = append(rest, cn)
				}
			}
			e.backupScratch = rest
			if len(rest) == 0 {
				return nil
			}
			e.envScratch = placement.Env{Net: c.Net, Nodes: rest, Fabric: c.Fabric}
			return pol.Select(&e.envScratch, req)
		})
	}

	for _, j := range jobs {
		j := j
		c.K.At(j.Submit, func() {
			if e.opts.DropSubmit != nil && e.opts.DropSubmit(j.Origin) {
				e.st.Suppressed++
				return
			}
			// Admission: shed at submit time when the job's class watermark
			// is full — the graduated-bound half of the live admission
			// controller (there is no wait queue to evict from here).
			if opts.Admission.enabled() {
				cls := classOf(j.Priority)
				if outstanding >= opts.Admission.classLimit(cls) {
					e.st.Shed++
					e.st.ShedByClass[cls]++
					return
				}
				outstanding++
			}
			attempt(j, opts.MaxRetries, new(int))
		})
	}
	c.K.Run()
	e.st.Joules = c.TotalJoules()
	return e.st
}

// runDAG is the engine configuration shared by RunDAG and
// RunDAGReliable: tasks start when their last prerequisite edge arrives,
// completed outputs are durable (cross-node successor edges are bulk
// transfers), and latency is measured per task ready→finish. Retries
// wait for the assigned node (static schedules pin tasks); exhausting a
// task's retry budget aborts the run.
func (c *Continuum) runDAG(d *task.DAG, sched placement.Schedule, env *placement.Env, opts ReliableOptions) (*ReliableStats, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if len(sched.Assign) != d.N() {
		return nil, fmt.Errorf("core: schedule covers %d of %d tasks", len(sched.Assign), d.N())
	}
	e := newEngine(c, opts)

	// waiting[t] counts unsatisfied prerequisites: one per incoming edge.
	waiting := make([]int, d.N())
	for i := 0; i < d.N(); i++ {
		waiting[i] = d.InDegree(task.ID(i))
	}
	started := make([]bool, d.N())
	readyAt := make([]float64, d.N())
	var aborted bool

	var tryStart func(id task.ID)
	var runTask func(id task.ID, retriesLeft int)

	// arrive delivers one prerequisite edge to id.
	arrive := func(id task.ID) {
		waiting[id]--
		tryStart(id)
	}

	seqs := make([]int, d.N()) // per-task dispatch sequence for trace attempts

	runTask = func(id task.ID, retriesLeft int) {
		if aborted {
			return
		}
		tk := d.Tasks[id]
		n := env.Nodes[sched.Assign[id]]
		retry := func() {
			e.retry(retriesLeft,
				func() { runTask(id, retriesLeft-1) },
				func() { aborted = true })
		}
		if !e.opts.eligible(n) {
			retry() // wait out the downtime/cordon; the schedule pins the task here
			return
		}
		// mk binds a replica's successor-edge transfers to the node that
		// actually executed it (a winning backup ships edges from its own
		// node, not the schedule's pinned one).
		mk := func(n *node.Node, attemptNo int) unit {
			return unit{
				task:    tk,
				node:    n,
				attempt: attemptNo,
				origin:  -1,
				deliver: func(execEnd float64) {
					e.complete(n, readyAt[id])
					for _, edge := range d.Successors(id) {
						edge := edge
						dst := env.Nodes[sched.Assign[edge.To]]
						if dst.ID == n.ID {
							arrive(edge.To)
							continue
						}
						e.egress(n, dst.ID, edge.Bytes)
						c.Tracer.Record(execEnd, trace.TransferStart, n.Name+"->"+dst.Name,
							fmt.Sprintf("%.0fB", edge.Bytes))
						c.Net.Transfer(n.ID, dst.ID, edge.Bytes, func(*netsim.Flow) {
							c.Tracer.Record(c.K.Now(), trace.TransferEnd, n.Name+"->"+dst.Name, "")
							arrive(edge.To)
						})
					}
				},
				lost: retry,
			}
		}
		if !e.opts.Speculate.enabled() {
			u := mk(n, seqs[id])
			seqs[id]++
			e.run(u)
			return
		}
		// The schedule pins the primary; the backup goes to the fastest
		// other node that is up at hedge time.
		e.speculate(mk, n, &seqs[id], func() *node.Node {
			var best *node.Node
			bestT := math.Inf(1)
			for _, cand := range env.Nodes {
				if cand == n || !e.opts.eligible(cand) {
					continue
				}
				if et := cand.ExecTime(tk.ScalarWork, tk.TensorWork, tk.Accel); et < bestT {
					bestT, best = et, cand
				}
			}
			return best
		})
	}

	tryStart = func(id task.ID) {
		if started[id] || waiting[id] > 0 || aborted {
			return
		}
		started[id] = true
		readyAt[id] = c.K.Now()
		runTask(id, e.opts.MaxRetries)
	}

	for _, r := range d.Roots() {
		tryStart(r)
	}
	c.K.Run()
	e.st.Joules = c.TotalJoules()

	if aborted {
		return e.st, fmt.Errorf("core: DAG aborted after exhausting retries (%d tasks completed)", e.st.Completed)
	}
	if e.st.Completed != int64(d.N()) {
		return e.st, fmt.Errorf("core: only %d of %d tasks completed", e.st.Completed, d.N())
	}
	return e.st, nil
}
