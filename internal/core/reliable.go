package core

import (
	"continuum/internal/fault"
	"continuum/internal/node"
	"continuum/internal/placement"
)

// ReliableOptions configures failure-aware execution. It is the engine's
// fault hook (see engine.go): the zero value makes every availability and
// epoch check a no-op, so a runner configured with it reproduces the
// corresponding base runner exactly.
type ReliableOptions struct {
	// Faults maps node IDs to their failure targets; nodes absent from
	// the map are considered always-up.
	Faults map[int]*fault.Target
	// MaxRetries bounds re-dispatches per job (0 = fail on first loss).
	MaxRetries int
	// RetryBackoff is the delay before re-dispatching a lost or
	// unplaceable job. Defaults to 0.1s when unset.
	RetryBackoff float64
	// TaskDeadline bounds each attempt (virtual seconds, dispatch through
	// execution). An attempt that overruns is treated like a lost one: a
	// Failure trace record ("deadline exceeded") attributes it and the
	// retry budget applies. 0 disables the bound. It mirrors the live
	// path's faas.EndpointConfig.ExecTimeout, so simulated and real runs
	// share one deadline semantics.
	TaskDeadline float64
	// Speculate enables hedged (speculative) execution: a straggling
	// attempt gets a backup replica on a different candidate node, first
	// finisher wins, the loser is preempted. The zero value disables it.
	// It mirrors the live path's wire.HedgeConfig, so simulated and real
	// runs share one tail-latency semantics.
	Speculate SpeculateOptions
	// Disturb, when set, is consulted once per attempt at dispatch: it
	// may drop the attempt (treated exactly like an epoch loss — the
	// retry budget applies) and/or delay its entry into the pipeline by
	// the returned virtual seconds. It is the simulator mirror of the
	// live path's per-request fault.Chaos draw, so scenario chaos events
	// mean the same thing on both backends. Nil disturbs nothing.
	Disturb func(n *node.Node) (drop bool, delay float64)
	// DropSubmit, when set, is consulted at each stream job's submit
	// time; returning true silences the submission entirely (counted in
	// Suppressed, not Lost). It models an origin that is itself down —
	// a failed gateway generates no traffic — matching the live runner,
	// which pauses a failed node's request generator. Nil submits all.
	DropSubmit func(origin int) bool
	// Admission, when enabled, bounds how many stream jobs may be
	// outstanding (admitted, not yet completed or lost) with graduated
	// per-priority watermarks: low-priority jobs shed first as the bound
	// fills. It is the simulator mirror of the live path's
	// faas.AdmissionConfig, so overload experiments compare across
	// backends. The zero value admits everything.
	Admission AdmissionOptions
	// Cordoned, when set, is consulted wherever candidates are chosen:
	// a cordoned node receives no NEW work (placement, retries, and
	// speculative backups all skip it) but work already dispatched to it
	// finishes normally — the difference from a Faults downtime, which
	// loses in-flight attempts. It is the simulator half of the
	// scenario "cordon" event; the live half is faas.Endpoint.SetCordon.
	// Nil cordons nothing.
	Cordoned func(n *node.Node) bool
}

// Stream job priority classes, mirroring internal/faas: the zero value
// is normal, so existing workloads are unaffected.
const (
	PriorityLow    = -1
	PriorityNormal = 0
	PriorityHigh   = 1

	numPriorityClasses = 3
)

// AdmissionOptions is the engine's admission-control mirror. Unlike the
// live controller there is no wait queue to evict from — the simulated
// decision happens once, at submit time — so the model is the graduated
// watermark alone: a class-p job is shed when outstanding work has
// already consumed that class's share of the bound.
type AdmissionOptions struct {
	// MaxOutstanding is the bound on admitted-but-unfinished stream
	// jobs. Class limits are graduated across it exactly like
	// faas.AdmissionConfig.MaxQueue: low sheds beyond 1/3 of the bound,
	// normal beyond 2/3, high only at the full bound. <= 0 disables
	// admission control.
	MaxOutstanding int
}

// enabled reports whether admission control is configured.
func (a AdmissionOptions) enabled() bool { return a.MaxOutstanding > 0 }

// classOf clamps a StreamJob priority to its class index in
// [0, numPriorityClasses).
func classOf(p int) int {
	if p < PriorityLow {
		p = PriorityLow
	}
	if p > PriorityHigh {
		p = PriorityHigh
	}
	return p - PriorityLow
}

// classLimit is the graduated watermark for one class.
func (a AdmissionOptions) classLimit(cls int) int {
	limit := a.MaxOutstanding * (cls + 1) / numPriorityClasses
	if limit < 1 {
		limit = 1
	}
	return limit
}

// SpeculateOptions configures speculative (hedged) execution. A backup
// replica launches once an attempt has been in flight longer than the
// hedge delay; whichever replica delivers first wins, and the loser's
// result is discarded (its node time stays billed — the work physically
// ran). The zero value disables speculation, preserving the engine's
// zero-options equivalence property.
type SpeculateOptions struct {
	// Quantile, when > 0, derives the hedge delay from the observed
	// latency distribution: a backup launches once an attempt exceeds
	// this quantile of completed-unit latency (e.g. 0.95). It engages
	// after MinSamples observations; before that, Multiple (if set)
	// carries the trigger.
	Quantile float64
	// Multiple, when > 0, is the static trigger: a backup launches once
	// an attempt has been in flight longer than Multiple × the primary
	// node's expected execution time for the task. Straggling here means
	// queueing or staging delay the dispatcher could not foresee.
	Multiple float64
	// MinSamples is how many latency observations the Quantile trigger
	// needs before it engages (default 20).
	MinSamples int
}

// enabled reports whether any speculation trigger is configured.
func (s SpeculateOptions) enabled() bool { return s.Quantile > 0 || s.Multiple > 0 }

func (s SpeculateOptions) minSamples() int {
	if s.MinSamples <= 0 {
		return 20
	}
	return s.MinSamples
}

// ReliableStats extends Stats with failure accounting.
type ReliableStats struct {
	*Stats
	// Retries counts re-dispatches (loss or no live candidate).
	Retries int64
	// Lost counts jobs abandoned after exhausting retries.
	Lost int64
	// DeadlineMisses counts attempts that overran TaskDeadline (each one
	// also consumed a retry or contributed to Lost).
	DeadlineMisses int64
	// SpeculativeLaunches counts backup replicas dispatched by the
	// Speculate policy.
	SpeculativeLaunches int64
	// SpeculativeWins counts units whose backup replica delivered first.
	SpeculativeWins int64
	// PreemptedTasks counts losing replicas whose results were discarded
	// because a sibling finished first. Their node time and energy stay
	// billed — the work physically ran — which is the wasted-work cost of
	// speculation.
	PreemptedTasks int64
	// ChaosDrops counts attempts dropped by the Disturb hook (each one
	// also consumed a retry or contributed to Lost).
	ChaosDrops int64
	// Suppressed counts stream submissions silenced by DropSubmit
	// (origin down at submit time). They are not failures: the request
	// was never made, so it appears in neither Completed nor Lost.
	Suppressed int64
	// Shed counts stream submissions rejected by Admission at submit
	// time (the sum of ShedByClass). Shed jobs were refused before any
	// work started, so like Suppressed they appear in neither Completed
	// nor Lost — they are the simulator's fail-fast rejections.
	Shed int64
	// ShedByClass breaks Shed down by priority class
	// (index classOf(priority): 0 low, 1 normal, 2 high).
	ShedByClass [numPriorityClasses]int64
}

// SuccessRate returns completed/(completed+lost).
func (r *ReliableStats) SuccessRate() float64 {
	total := r.Completed + r.Lost
	if total == 0 {
		return 0
	}
	return float64(r.Completed) / float64(total)
}

// up reports whether the node is currently up per opts.
func (o *ReliableOptions) up(n *node.Node) bool {
	t, ok := o.Faults[n.ID]
	return !ok || t.Up()
}

// epoch returns the node's failure epoch (0 for fault-free nodes).
func (o *ReliableOptions) epoch(n *node.Node) uint64 {
	if t, ok := o.Faults[n.ID]; ok {
		return t.Epoch()
	}
	return 0
}

// cordoned reports whether the node currently refuses new work.
func (o *ReliableOptions) cordoned(n *node.Node) bool {
	return o.Cordoned != nil && o.Cordoned(n)
}

// eligible reports whether the node may receive new work right now:
// up and not cordoned.
func (o *ReliableOptions) eligible(n *node.Node) bool {
	return o.up(n) && !o.cordoned(n)
}

// RunStreamReliable executes jobs under pol on a continuum with failing
// nodes: placement only considers currently-up candidates, and work whose
// host fails mid-flight (epoch change between dispatch and completion) is
// lost and re-dispatched up to MaxRetries times. Latency is measured
// submit→reply including retries. RunStreamReliable owns the kernel.
//
// It is the same engine as RunStream with the fault hook engaged: inputs
// stage through the fabric when one is enabled, and TaskStart/TaskEnd
// trace records are emitted exactly as in base runs (plus Failure records
// for lost attempts).
func (c *Continuum) RunStreamReliable(pol placement.Policy, jobs []StreamJob, candidates []*node.Node, opts ReliableOptions) *ReliableStats {
	return c.runStream(pol, jobs, candidates, opts)
}
