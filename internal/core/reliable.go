package core

import (
	"continuum/internal/fault"
	"continuum/internal/node"
	"continuum/internal/placement"
)

// ReliableOptions configures failure-aware execution. It is the engine's
// fault hook (see engine.go): the zero value makes every availability and
// epoch check a no-op, so a runner configured with it reproduces the
// corresponding base runner exactly.
type ReliableOptions struct {
	// Faults maps node IDs to their failure targets; nodes absent from
	// the map are considered always-up.
	Faults map[int]*fault.Target
	// MaxRetries bounds re-dispatches per job (0 = fail on first loss).
	MaxRetries int
	// RetryBackoff is the delay before re-dispatching a lost or
	// unplaceable job. Defaults to 0.1s when unset.
	RetryBackoff float64
	// TaskDeadline bounds each attempt (virtual seconds, dispatch through
	// execution). An attempt that overruns is treated like a lost one: a
	// Failure trace record ("deadline exceeded") attributes it and the
	// retry budget applies. 0 disables the bound. It mirrors the live
	// path's faas.EndpointConfig.ExecTimeout, so simulated and real runs
	// share one deadline semantics.
	TaskDeadline float64
}

// ReliableStats extends Stats with failure accounting.
type ReliableStats struct {
	*Stats
	// Retries counts re-dispatches (loss or no live candidate).
	Retries int64
	// Lost counts jobs abandoned after exhausting retries.
	Lost int64
	// DeadlineMisses counts attempts that overran TaskDeadline (each one
	// also consumed a retry or contributed to Lost).
	DeadlineMisses int64
}

// SuccessRate returns completed/(completed+lost).
func (r *ReliableStats) SuccessRate() float64 {
	total := r.Completed + r.Lost
	if total == 0 {
		return 0
	}
	return float64(r.Completed) / float64(total)
}

// up reports whether the node is currently up per opts.
func (o *ReliableOptions) up(n *node.Node) bool {
	t, ok := o.Faults[n.ID]
	return !ok || t.Up()
}

// epoch returns the node's failure epoch (0 for fault-free nodes).
func (o *ReliableOptions) epoch(n *node.Node) uint64 {
	if t, ok := o.Faults[n.ID]; ok {
		return t.Epoch()
	}
	return 0
}

// RunStreamReliable executes jobs under pol on a continuum with failing
// nodes: placement only considers currently-up candidates, and work whose
// host fails mid-flight (epoch change between dispatch and completion) is
// lost and re-dispatched up to MaxRetries times. Latency is measured
// submit→reply including retries. RunStreamReliable owns the kernel.
//
// It is the same engine as RunStream with the fault hook engaged: inputs
// stage through the fabric when one is enabled, and TaskStart/TaskEnd
// trace records are emitted exactly as in base runs (plus Failure records
// for lost attempts).
func (c *Continuum) RunStreamReliable(pol placement.Policy, jobs []StreamJob, candidates []*node.Node, opts ReliableOptions) *ReliableStats {
	return c.runStream(pol, jobs, candidates, opts)
}
