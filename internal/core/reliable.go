package core

import (
	"continuum/internal/fault"
	"continuum/internal/node"
	"continuum/internal/placement"
)

// ReliableOptions configures failure-aware execution.
type ReliableOptions struct {
	// Faults maps node IDs to their failure targets; nodes absent from
	// the map are considered always-up.
	Faults map[int]*fault.Target
	// MaxRetries bounds re-dispatches per job (0 = fail on first loss).
	MaxRetries int
	// RetryBackoff is the delay before re-dispatching a lost or
	// unplaceable job.
	RetryBackoff float64
}

// ReliableStats extends Stats with failure accounting.
type ReliableStats struct {
	*Stats
	// Retries counts re-dispatches (loss or no live candidate).
	Retries int64
	// Lost counts jobs abandoned after exhausting retries.
	Lost int64
}

// SuccessRate returns completed/(completed+lost).
func (r *ReliableStats) SuccessRate() float64 {
	total := r.Completed + r.Lost
	if total == 0 {
		return 0
	}
	return float64(r.Completed) / float64(total)
}

// upTarget reports whether the node is currently up per opts.
func (o *ReliableOptions) up(n *node.Node) bool {
	t, ok := o.Faults[n.ID]
	return !ok || t.Up()
}

// epoch returns the node's failure epoch (0 for fault-free nodes).
func (o *ReliableOptions) epoch(n *node.Node) uint64 {
	if t, ok := o.Faults[n.ID]; ok {
		return t.Epoch()
	}
	return 0
}

// RunStreamReliable executes jobs under pol on a continuum with failing
// nodes: placement only considers currently-up candidates, and work whose
// host fails mid-flight (epoch change between dispatch and completion) is
// lost and re-dispatched up to MaxRetries times. Latency is measured
// submit→reply including retries. RunStreamReliable owns the kernel.
func (c *Continuum) RunStreamReliable(pol placement.Policy, jobs []StreamJob, candidates []*node.Node, opts ReliableOptions) *ReliableStats {
	if len(candidates) == 0 {
		candidates = c.Nodes
	}
	if opts.RetryBackoff <= 0 {
		opts.RetryBackoff = 0.1
	}
	st := &ReliableStats{Stats: newStats()}
	fb, _ := pol.(placement.FeedbackPolicy)

	var attempt func(j StreamJob, retriesLeft int)
	attempt = func(j StreamJob, retriesLeft int) {
		retry := func() {
			if retriesLeft <= 0 {
				st.Lost++
				return
			}
			st.Retries++
			c.K.After(opts.RetryBackoff, func() {
				attempt(j, retriesLeft-1)
			})
		}

		var live []*node.Node
		for _, n := range candidates {
			if opts.up(n) {
				live = append(live, n)
			}
		}
		if len(live) == 0 {
			retry()
			return
		}
		env := &placement.Env{Net: c.Net, Nodes: live, Fabric: c.Fabric}
		n := pol.Select(env, placement.Request{Task: j.Task, Origin: j.Origin})
		epoch0 := opts.epoch(n)

		inBytes := 0.0
		for _, in := range j.Task.Inputs {
			inBytes += in.Bytes
		}
		c.Net.Message(j.Origin, n.ID, inBytes, func() {
			if opts.epoch(n) != epoch0 {
				retry() // host failed while the input was in flight
				return
			}
			n.Execute(j.Task.ScalarWork, j.Task.TensorWork, j.Task.Accel, func() {
				if opts.epoch(n) != epoch0 {
					retry() // host failed during execution: result lost
					return
				}
				execTime := n.ExecTime(j.Task.ScalarWork, j.Task.TensorWork, j.Task.Accel)
				st.Dollars += n.DollarCost(execTime)
				if n.ID != j.Origin && n.EgressPerByte > 0 {
					st.Dollars += n.EgressPerByte * j.Task.OutputBytes
					st.EgressB += j.Task.OutputBytes
				}
				c.Net.Message(n.ID, j.Origin, j.Task.OutputBytes, func() {
					st.Completed++
					st.PerNode[n.Name]++
					lat := c.K.Now() - j.Submit
					st.Latency.Add(lat)
					if fb != nil {
						fb.Observe(n.ID, lat)
					}
					if c.K.Now() > st.Makespan {
						st.Makespan = c.K.Now()
					}
				})
			})
		})
	}

	for _, j := range jobs {
		j := j
		c.K.At(j.Submit, func() { attempt(j, opts.MaxRetries) })
	}
	c.K.Run()
	st.Joules = c.TotalJoules()
	return st
}
