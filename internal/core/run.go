package core

import (
	"continuum/internal/metrics"
	"continuum/internal/node"
	"continuum/internal/placement"
	"continuum/internal/task"
)

// Stats summarizes one workload run. All four runners produce it through
// the same engine (see engine.go), so every field has one definition:
type Stats struct {
	Completed int64

	// Latency is the per-unit latency distribution in seconds.
	//
	// Stream runs: one sample per completed job, submit→reply — from the
	// job's virtual submission time until its output message lands back
	// at the origin vertex, including input staging, queueing, and (for
	// reliable runs) retry backoff and re-dispatch.
	//
	// DAG runs: one sample per completed task, ready→finish — from the
	// instant the task's last prerequisite edge arrived (submission time
	// for roots) until its execution completes, including input staging,
	// core queueing, and any retries. Successor edge transfers are not
	// part of the producing task's latency; they show up in the
	// consumer's ready time instead.
	Latency *metrics.Histogram

	Joules   float64 // total energy integrated over the run
	Dollars  float64 // accumulated node-time + egress cost
	EgressB  float64 // bytes leaving billed nodes
	Makespan float64 // virtual time when the last unit finished

	// PerNode counts completed units per node name.
	PerNode map[string]int64
}

func newStats() *Stats {
	return &Stats{Latency: metrics.NewHistogram(), PerNode: make(map[string]int64)}
}

// StreamJob describes one online task submission.
type StreamJob struct {
	Task   *task.Task
	Origin int     // vertex the request (and its reply) is anchored to
	Submit float64 // virtual submission time
	// Priority is the job's admission class (PriorityLow, PriorityNormal,
	// PriorityHigh): under ReliableOptions.Admission, lower classes shed
	// first. The zero value is normal, so priority-unaware workloads are
	// unchanged.
	Priority int
}

// RunStream executes jobs under the given policy: each job's inputs move
// to the selected node (via the fabric when enabled, else shipped from the
// origin), the task executes, and the result returns to the origin. The
// returned stats measure submit→reply latency. Candidates defaults to all
// nodes when nil.
//
// RunStream owns the kernel: it schedules all submissions and runs the
// simulation to completion. It is the zero-value-options configuration of
// the unified engine; see RunStreamReliable for the fault-aware one.
func (c *Continuum) RunStream(pol placement.Policy, jobs []StreamJob, candidates []*node.Node) *Stats {
	return c.runStream(pol, jobs, candidates, ReliableOptions{}).Stats
}

// RunDAG executes a static schedule under the full contention model: a
// task starts once every predecessor's edge data has arrived (bulk
// Transfer for cross-node edges) and its external inputs are staged
// (through the fabric when enabled). It returns measured stats; Makespan
// is the headline number for the F2 experiment.
//
// RunDAG owns the kernel: it runs the simulation to completion and errors
// if any task never became runnable (which would indicate a malformed
// schedule). It is the zero-value-options configuration of the unified
// engine; see RunDAGReliable for the fault-aware one.
func (c *Continuum) RunDAG(d *task.DAG, sched placement.Schedule, env *placement.Env) (*Stats, error) {
	st, err := c.runDAG(d, sched, env, ReliableOptions{})
	if st == nil {
		return nil, err
	}
	return st.Stats, err
}
