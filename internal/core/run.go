package core

import (
	"fmt"

	"continuum/internal/data"
	"continuum/internal/metrics"
	"continuum/internal/netsim"
	"continuum/internal/node"
	"continuum/internal/placement"
	"continuum/internal/task"
	"continuum/internal/trace"
)

// Stats summarizes one workload run.
type Stats struct {
	Completed int64
	Latency   *metrics.Histogram // per-task end-to-end seconds
	Joules    float64            // total energy integrated over the run
	Dollars   float64            // accumulated node-time + egress cost
	EgressB   float64            // bytes leaving billed nodes
	Makespan  float64            // virtual time when the last task finished

	// PerNode counts completed tasks per node name.
	PerNode map[string]int64
}

func newStats() *Stats {
	return &Stats{Latency: metrics.NewHistogram(), PerNode: make(map[string]int64)}
}

// StreamJob describes one online task submission.
type StreamJob struct {
	Task   *task.Task
	Origin int     // vertex the request (and its reply) is anchored to
	Submit float64 // virtual submission time
}

// RunStream executes jobs under the given policy: each job's inputs move
// to the selected node (via the fabric when enabled, else shipped from the
// origin), the task executes, and the result returns to the origin. The
// returned stats measure submit→reply latency. Candidates defaults to all
// nodes when nil.
//
// RunStream owns the kernel: it schedules all submissions and runs the
// simulation to completion.
func (c *Continuum) RunStream(pol placement.Policy, jobs []StreamJob, candidates []*node.Node) *Stats {
	if len(candidates) == 0 {
		candidates = c.Nodes
	}
	env := &placement.Env{Net: c.Net, Nodes: candidates, Fabric: c.Fabric}
	st := newStats()

	fb, _ := pol.(placement.FeedbackPolicy)
	for _, j := range jobs {
		j := j
		c.K.At(j.Submit, func() {
			n := pol.Select(env, placement.Request{Task: j.Task, Origin: j.Origin})
			c.dispatch(j, n, st, fb)
		})
	}
	c.K.Run()
	st.Joules = c.TotalJoules()
	return st
}

// dispatch moves inputs, executes, and returns the result to the origin.
// When fb is non-nil the measured latency is fed back to the policy.
func (c *Continuum) dispatch(j StreamJob, n *node.Node, st *Stats, fb placement.FeedbackPolicy) {
	exec := func() {
		c.Tracer.Record(c.K.Now(), trace.TaskStart, n.Name, j.Task.Name)
		n.Execute(j.Task.ScalarWork, j.Task.TensorWork, j.Task.Accel, func() {
			c.Tracer.Record(c.K.Now(), trace.TaskEnd, n.Name, j.Task.Name)
			execTime := n.ExecTime(j.Task.ScalarWork, j.Task.TensorWork, j.Task.Accel)
			st.Dollars += n.DollarCost(execTime)
			if n.ID != j.Origin && n.EgressPerByte > 0 {
				st.Dollars += n.EgressPerByte * j.Task.OutputBytes
				st.EgressB += j.Task.OutputBytes
			}
			c.Net.Message(n.ID, j.Origin, j.Task.OutputBytes, func() {
				st.Completed++
				st.PerNode[n.Name]++
				lat := c.K.Now() - j.Submit
				st.Latency.Add(lat)
				if fb != nil {
					fb.Observe(n.ID, lat)
				}
				if c.K.Now() > st.Makespan {
					st.Makespan = c.K.Now()
				}
			})
		})
	}

	if c.Fabric != nil && len(j.Task.Inputs) > 0 {
		pending := len(j.Task.Inputs)
		for _, in := range j.Task.Inputs {
			ds := data.Dataset{Name: in.Name, Bytes: in.Bytes}
			c.Fabric.Stage(ds, n.ID, func(bool) {
				pending--
				if pending == 0 {
					exec()
				}
			})
		}
		return
	}
	inBytes := 0.0
	for _, in := range j.Task.Inputs {
		inBytes += in.Bytes
	}
	c.Net.Message(j.Origin, n.ID, inBytes, exec)
}

// RunDAG executes a static schedule under the full contention model: a
// task starts once every predecessor's edge data has arrived (bulk
// Transfer for cross-node edges) and its external inputs are staged
// (through the fabric when enabled). It returns measured stats; Makespan
// is the headline number for the F2 experiment.
//
// RunDAG owns the kernel: it runs the simulation to completion and errors
// if any task never became runnable (which would indicate a malformed
// schedule).
func (c *Continuum) RunDAG(d *task.DAG, sched placement.Schedule, env *placement.Env) (*Stats, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if len(sched.Assign) != d.N() {
		return nil, fmt.Errorf("core: schedule covers %d of %d tasks", len(sched.Assign), d.N())
	}
	st := newStats()

	// waiting[t] counts unsatisfied prerequisites: one per incoming edge.
	waiting := make([]int, d.N())
	for i := 0; i < d.N(); i++ {
		waiting[i] = d.InDegree(task.ID(i))
	}
	started := make([]bool, d.N())

	var tryStart func(id task.ID)
	runTask := func(id task.ID) {
		tk := d.Tasks[id]
		n := env.Nodes[sched.Assign[id]]
		start := func() {
			c.Tracer.Record(c.K.Now(), trace.TaskStart, n.Name, tk.Name)
			n.Execute(tk.ScalarWork, tk.TensorWork, tk.Accel, func() {
				now := c.K.Now()
				c.Tracer.Record(now, trace.TaskEnd, n.Name, tk.Name)
				st.Completed++
				st.PerNode[n.Name]++
				st.Latency.Add(now)
				if now > st.Makespan {
					st.Makespan = now
				}
				execTime := n.ExecTime(tk.ScalarWork, tk.TensorWork, tk.Accel)
				st.Dollars += n.DollarCost(execTime)
				for _, e := range d.Successors(id) {
					e := e
					dst := env.Nodes[sched.Assign[e.To]]
					if dst.ID == n.ID {
						waiting[e.To]--
						tryStart(e.To)
						continue
					}
					if n.EgressPerByte > 0 {
						st.Dollars += n.EgressPerByte * e.Bytes
						st.EgressB += e.Bytes
					}
					c.Tracer.Record(now, trace.TransferStart, n.Name+"->"+dst.Name,
						fmt.Sprintf("%.0fB", e.Bytes))
					c.Net.Transfer(n.ID, dst.ID, e.Bytes, func(*netsim.Flow) {
						c.Tracer.Record(c.K.Now(), trace.TransferEnd, n.Name+"->"+dst.Name, "")
						waiting[e.To]--
						tryStart(e.To)
					})
				}
			})
		}
		if c.Fabric != nil && len(tk.Inputs) > 0 {
			pending := len(tk.Inputs)
			for _, in := range tk.Inputs {
				ds := data.Dataset{Name: in.Name, Bytes: in.Bytes}
				c.Fabric.Stage(ds, n.ID, func(bool) {
					pending--
					if pending == 0 {
						start()
					}
				})
			}
			return
		}
		start()
	}

	tryStart = func(id task.ID) {
		if started[id] || waiting[id] > 0 {
			return
		}
		started[id] = true
		runTask(id)
	}

	for _, r := range d.Roots() {
		tryStart(r)
	}
	c.K.Run()
	st.Joules = c.TotalJoules()

	if st.Completed != int64(d.N()) {
		return st, fmt.Errorf("core: only %d of %d tasks completed", st.Completed, d.N())
	}
	return st, nil
}
