package core

import (
	"testing"

	"continuum/internal/fault"
	"continuum/internal/placement"
	"continuum/internal/task"
	"continuum/internal/workload"
)

func reliableJobs(c *Continuum, n int, gap float64) []StreamJob {
	var jobs []StreamJob
	for i := 0; i < n; i++ {
		jobs = append(jobs, StreamJob{
			Task:   &task.Task{Name: "t", ScalarWork: 2.5e8, OutputBytes: 100},
			Origin: c.Nodes[0].ID,
			Submit: float64(i) * gap,
		})
	}
	return jobs
}

func TestReliableNoFaultsMatchesPlain(t *testing.T) {
	c1 := miniContinuum()
	plain := c1.RunStream(placement.GreedyLatency{}, reliableJobs(c1, 30, 0.2), nil)

	c2 := miniContinuum()
	rel := c2.RunStreamReliable(placement.GreedyLatency{}, reliableJobs(c2, 30, 0.2), nil,
		ReliableOptions{MaxRetries: 3})

	if rel.Completed != plain.Completed || rel.Retries != 0 || rel.Lost != 0 {
		t.Fatalf("fault-free reliable run diverged: %+v vs %d completed", rel, plain.Completed)
	}
	if rel.Latency.Mean() != plain.Latency.Mean() {
		t.Fatalf("latency diverged: %v vs %v", rel.Latency.Mean(), plain.Latency.Mean())
	}
	if rel.SuccessRate() != 1 {
		t.Fatalf("SuccessRate = %v", rel.SuccessRate())
	}
}

func TestReliableAvoidsDownNodes(t *testing.T) {
	c := miniContinuum()
	inj := fault.NewInjector(c.K, workload.NewRNG(1), 1e4)
	// The gateway flaps constantly; the cloud never fails.
	gwFault := inj.Attach("gw", fault.Spec{MeanUp: 0.5, MeanDown: 0.5})
	opts := ReliableOptions{
		Faults:     map[int]*fault.Target{c.Nodes[0].ID: gwFault},
		MaxRetries: 5,
	}
	st := c.RunStreamReliable(placement.GreedyLatency{}, reliableJobs(c, 50, 0.2), nil, opts)
	if st.Completed+st.Lost != 50 {
		t.Fatalf("accounting: %d completed + %d lost != 50", st.Completed, st.Lost)
	}
	if st.SuccessRate() < 0.9 {
		t.Fatalf("SuccessRate = %v with a reliable cloud available", st.SuccessRate())
	}
	// Most work should have landed on the never-failing cloud.
	if st.PerNode["cloud"] < st.PerNode["gw"] {
		t.Fatalf("placement ignored failures: %v", st.PerNode)
	}
}

func TestReliableRetriesOnLoss(t *testing.T) {
	// Force losses: a single candidate that fails frequently relative to
	// task duration, with generous retries — jobs eventually finish in an
	// up window, but retries must be visible.
	c := miniContinuum()
	inj := fault.NewInjector(c.K, workload.NewRNG(2), 1e4)
	gwFault := inj.Attach("gw", fault.Spec{MeanUp: 0.3, MeanDown: 0.2})
	opts := ReliableOptions{
		Faults:     map[int]*fault.Target{c.Nodes[0].ID: gwFault},
		MaxRetries: 50,
	}
	// Only the gateway as candidate.
	st := c.RunStreamReliable(placement.GreedyLatency{},
		reliableJobs(c, 20, 0.5), c.Nodes[:1], opts)
	if st.Retries == 0 {
		t.Fatal("no retries despite constant flapping on the only candidate")
	}
	if st.Completed+st.Lost != 20 {
		t.Fatalf("accounting: %d + %d != 20", st.Completed, st.Lost)
	}
}

func TestReliableExhaustionCountsLost(t *testing.T) {
	c := miniContinuum()
	inj := fault.NewInjector(c.K, workload.NewRNG(3), 1e4)
	// Down almost always; zero retries.
	gwFault := inj.Attach("gw", fault.Spec{MeanUp: 0.01, MeanDown: 100})
	opts := ReliableOptions{
		Faults:     map[int]*fault.Target{c.Nodes[0].ID: gwFault},
		MaxRetries: 0,
	}
	st := c.RunStreamReliable(placement.GreedyLatency{},
		reliableJobs(c, 10, 1.0), c.Nodes[:1], opts)
	if st.Lost == 0 {
		t.Fatal("no losses with an almost-always-down sole candidate and 0 retries")
	}
	if st.SuccessRate() > 0.9 {
		t.Fatalf("SuccessRate = %v, expected mostly lost", st.SuccessRate())
	}
}

func TestReliableLatencyIncludesRetries(t *testing.T) {
	// With flapping and retries, mean latency must exceed the fault-free
	// baseline.
	base := func() float64 {
		c := miniContinuum()
		st := c.RunStreamReliable(placement.GreedyLatency{},
			reliableJobs(c, 30, 0.5), c.Nodes[:1], ReliableOptions{MaxRetries: 3})
		return st.Latency.Mean()
	}()
	c := miniContinuum()
	inj := fault.NewInjector(c.K, workload.NewRNG(4), 1e4)
	gwFault := inj.Attach("gw", fault.Spec{MeanUp: 0.4, MeanDown: 0.3})
	st := c.RunStreamReliable(placement.GreedyLatency{},
		reliableJobs(c, 30, 0.5), c.Nodes[:1],
		ReliableOptions{Faults: map[int]*fault.Target{c.Nodes[0].ID: gwFault}, MaxRetries: 50})
	if st.Retries == 0 {
		t.Skip("no retries occurred; cannot compare")
	}
	if st.Latency.Mean() <= base {
		t.Fatalf("latency with retries %v not above fault-free %v", st.Latency.Mean(), base)
	}
}
