package core

import (
	"strings"
	"testing"

	"continuum/internal/placement"
	"continuum/internal/trace"
)

func TestStreamDeadlineMissCountsAndTraces(t *testing.T) {
	c := miniContinuum()
	c.Tracer = trace.New(0)
	// The gateway needs ~0.1s for 2.5e8 scalar ops; a 1µs deadline can
	// never be met, so every attempt misses and each job is eventually
	// lost after the retry budget.
	st := c.RunStreamReliable(placement.GreedyLatency{},
		reliableJobs(c, 5, 1.0), c.Nodes[:1],
		ReliableOptions{MaxRetries: 2, TaskDeadline: 1e-6})
	if st.Completed != 0 || st.Lost != 5 {
		t.Fatalf("completed=%d lost=%d, want 0/5", st.Completed, st.Lost)
	}
	// Each job burns 1 initial attempt + 2 retries, all missing.
	if st.DeadlineMisses != 15 {
		t.Fatalf("DeadlineMisses = %d, want 15", st.DeadlineMisses)
	}
	if st.Retries != 10 {
		t.Fatalf("Retries = %d, want 10", st.Retries)
	}
	// The trace must attribute every miss to the task and its attempt.
	var misses int
	maxAttempt := -1
	for _, e := range c.Tracer.Filter(trace.Failure) {
		if strings.Contains(e.Detail, "deadline exceeded") {
			misses++
			if e.Attempt > maxAttempt {
				maxAttempt = e.Attempt
			}
		}
	}
	if misses != 15 {
		t.Fatalf("trace deadline failures = %d, want 15", misses)
	}
	if maxAttempt != 2 {
		t.Fatalf("max traced attempt = %d, want 2", maxAttempt)
	}
}

func TestStreamDeadlineGenerousIsNoOp(t *testing.T) {
	c1 := miniContinuum()
	plain := c1.RunStream(placement.GreedyLatency{}, reliableJobs(c1, 20, 0.2), nil)
	c2 := miniContinuum()
	rel := c2.RunStreamReliable(placement.GreedyLatency{}, reliableJobs(c2, 20, 0.2), nil,
		ReliableOptions{MaxRetries: 3, TaskDeadline: 1e6})
	if rel.Completed != plain.Completed || rel.DeadlineMisses != 0 || rel.Lost != 0 {
		t.Fatalf("generous deadline diverged: %+v vs %d completed", rel, plain.Completed)
	}
	if rel.Latency.Mean() != plain.Latency.Mean() {
		t.Fatalf("latency diverged: %v vs %v", rel.Latency.Mean(), plain.Latency.Mean())
	}
}

func TestDAGDeadlineAbortsRun(t *testing.T) {
	d := reliableDAG() // six ~0.5s tasks pinned to the gateway
	c := miniContinuum()
	c.Tracer = trace.New(0)
	st, err := c.RunDAGReliable(d, gwSchedule(d), c.Env(),
		ReliableOptions{MaxRetries: 1, TaskDeadline: 0.01})
	if err == nil {
		t.Fatal("DAG met an impossible deadline")
	}
	if st.DeadlineMisses == 0 {
		t.Fatal("no deadline misses recorded")
	}
	found := false
	for _, e := range c.Tracer.Filter(trace.Failure) {
		if strings.Contains(e.Detail, "deadline exceeded") {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no deadline-exceeded failure in trace")
	}
}

func TestDAGDeadlineGenerousMatchesPlain(t *testing.T) {
	d := reliableDAG()
	c1 := miniContinuum()
	plain, err := c1.RunDAG(d, gwSchedule(d), c1.Env())
	if err != nil {
		t.Fatal(err)
	}
	c2 := miniContinuum()
	rel, err := c2.RunDAGReliable(d, gwSchedule(d), c2.Env(),
		ReliableOptions{MaxRetries: 3, TaskDeadline: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Makespan != plain.Makespan || rel.DeadlineMisses != 0 {
		t.Fatalf("generous DAG deadline diverged: %v vs %v (misses %d)",
			rel.Makespan, plain.Makespan, rel.DeadlineMisses)
	}
}
