package core

import (
	"testing"

	"continuum/internal/fault"
	"continuum/internal/placement"
	"continuum/internal/task"
	"continuum/internal/workload"
)

func reliableDAG() *task.DAG {
	// Chain of 6 half-second (on gateway) tasks: long enough for faults
	// to land mid-run.
	d := task.NewDAG("chain6")
	for i := 0; i < 6; i++ {
		d.AddTask("t", 1.25e9, 1e3)
	}
	for i := 0; i+1 < 6; i++ {
		d.Connect(task.ID(i), task.ID(i+1), -1)
	}
	return d
}

func gwSchedule(d *task.DAG) placement.Schedule {
	assign := make(map[task.ID]int, d.N())
	for i := 0; i < d.N(); i++ {
		assign[task.ID(i)] = 0 // everything on the gateway
	}
	return placement.Schedule{Algorithm: "pin-gw", Assign: assign}
}

func TestDAGReliableNoFaultsMatchesPlain(t *testing.T) {
	d := reliableDAG()
	c1 := miniContinuum()
	plain, err := c1.RunDAG(d, gwSchedule(d), c1.Env())
	if err != nil {
		t.Fatal(err)
	}
	c2 := miniContinuum()
	rel, err := c2.RunDAGReliable(d, gwSchedule(d), c2.Env(), ReliableOptions{MaxRetries: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Makespan != plain.Makespan || rel.Retries != 0 {
		t.Fatalf("fault-free reliable DAG diverged: %v vs %v (retries %d)",
			rel.Makespan, plain.Makespan, rel.Retries)
	}
}

func TestDAGReliableRetriesAndFinishes(t *testing.T) {
	d := reliableDAG()
	c := miniContinuum()
	inj := fault.NewInjector(c.K, workload.NewRNG(5), 1e4)
	gwFault := inj.Attach("gw", fault.Spec{MeanUp: 1.0, MeanDown: 0.5})
	opts := ReliableOptions{
		Faults:     map[int]*fault.Target{c.Nodes[0].ID: gwFault},
		MaxRetries: 100,
	}
	st, err := c.RunDAGReliable(d, gwSchedule(d), c.Env(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed != 6 {
		t.Fatalf("Completed = %d", st.Completed)
	}
	if st.Retries == 0 {
		t.Fatal("no retries despite MTBF ~ task duration")
	}
	// Makespan must exceed the failure-free 3s chain.
	if st.Makespan <= 3.0 {
		t.Fatalf("makespan %v <= failure-free baseline", st.Makespan)
	}
}

func TestDAGReliableAbortsOnExhaustion(t *testing.T) {
	d := reliableDAG()
	c := miniContinuum()
	inj := fault.NewInjector(c.K, workload.NewRNG(6), 1e4)
	// Down nearly always: with 0 retries the first loss aborts.
	gwFault := inj.Attach("gw", fault.Spec{MeanUp: 0.05, MeanDown: 50})
	opts := ReliableOptions{
		Faults:     map[int]*fault.Target{c.Nodes[0].ID: gwFault},
		MaxRetries: 0,
	}
	_, err := c.RunDAGReliable(d, gwSchedule(d), c.Env(), opts)
	if err == nil {
		t.Fatal("exhausted DAG did not error")
	}
}

func TestDAGReliableRejectsIncompleteSchedule(t *testing.T) {
	d := reliableDAG()
	c := miniContinuum()
	_, err := c.RunDAGReliable(d, placement.Schedule{Assign: map[task.ID]int{}}, c.Env(),
		ReliableOptions{})
	if err == nil {
		t.Fatal("incomplete schedule accepted")
	}
}

func TestDAGReliableCrossNodeStillWorks(t *testing.T) {
	// Alternate tasks between gateway and cloud with a flaky gateway:
	// transfers + retries must still converge.
	d := reliableDAG()
	c := miniContinuum()
	assign := make(map[task.ID]int, d.N())
	for i := 0; i < d.N(); i++ {
		assign[task.ID(i)] = i % 2
	}
	inj := fault.NewInjector(c.K, workload.NewRNG(7), 1e4)
	gwFault := inj.Attach("gw", fault.Spec{MeanUp: 2, MeanDown: 0.5})
	st, err := c.RunDAGReliable(d, placement.Schedule{Algorithm: "alt", Assign: assign},
		c.Env(), ReliableOptions{
			Faults:     map[int]*fault.Target{c.Nodes[0].ID: gwFault},
			MaxRetries: 100,
		})
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed != 6 {
		t.Fatalf("Completed = %d", st.Completed)
	}
	if st.PerNode["cloud"] == 0 || st.PerNode["gw"] == 0 {
		t.Fatalf("placement collapsed: %v", st.PerNode)
	}
}
