package core

// Tests for the engine's admission-control mirror (ReliableOptions.
// Admission) and the cordon hook — the simulator halves of the live
// path's faas admission controller and faas.Endpoint.SetCordon.

import (
	"testing"

	"continuum/internal/node"
	"continuum/internal/placement"
	"continuum/internal/task"
)

// priorityJobs submits count interleaved low/normal/high triples at the
// same instant, so the admission decision is purely about watermarks,
// not timing: as the bound fills, low hits its watermark first while
// high keeps being admitted.
func priorityJobs(c *Continuum, count int) []StreamJob {
	var jobs []StreamJob
	for i := 0; i < count; i++ {
		for _, p := range []int{PriorityLow, PriorityNormal, PriorityHigh} {
			jobs = append(jobs, StreamJob{
				Task:     &task.Task{Name: "t", ScalarWork: 2.5e8, OutputBytes: 100},
				Origin:   c.Nodes[0].ID,
				Submit:   0,
				Priority: p,
			})
		}
	}
	return jobs
}

// TestAdmissionShedsLowestFirst: with a burst far over the outstanding
// bound, the low class must shed the most and the high class the least
// (graduated watermarks), every shed job must be accounted, and nothing
// may be lost — shedding happens before any work starts.
func TestAdmissionShedsLowestFirst(t *testing.T) {
	c := miniContinuum()
	st := c.RunStreamReliable(placement.GreedyLatency{}, priorityJobs(c, 12), nil,
		ReliableOptions{Admission: AdmissionOptions{MaxOutstanding: 9}})

	total := int64(3 * 12)
	if st.Completed+st.Shed != total {
		t.Fatalf("accounting: %d completed + %d shed != %d", st.Completed, st.Shed, total)
	}
	if st.Lost != 0 {
		t.Fatalf("admission shed must not count as Lost: %d", st.Lost)
	}
	var sum int64
	for _, n := range st.ShedByClass {
		sum += n
	}
	if sum != st.Shed {
		t.Fatalf("ShedByClass %v does not sum to Shed %d", st.ShedByClass, st.Shed)
	}
	// Graduated watermarks with interleaved triples against a bound of 9
	// (limits 3/6/9): low stops at 1 admitted, normal at 3, high at 5 —
	// so shed counts are strictly lowest-first.
	if st.ShedByClass[0] <= st.ShedByClass[1] || st.ShedByClass[1] <= st.ShedByClass[2] {
		t.Fatalf("shedding not lowest-first: %v", st.ShedByClass)
	}
	if st.ShedByClass[2] == int64(12) {
		t.Fatalf("high class fully shed: %v", st.ShedByClass)
	}
}

// TestAdmissionReleasesOnCompletion: spacing the jobs out lets each
// finish before the next submits, so even a bound of 1 admits everything
// — proving completions release their admission slot.
func TestAdmissionReleasesOnCompletion(t *testing.T) {
	c := miniContinuum()
	st := c.RunStreamReliable(placement.GreedyLatency{}, reliableJobs(c, 10, 5.0), nil,
		ReliableOptions{Admission: AdmissionOptions{MaxOutstanding: 3}})
	if st.Shed != 0 {
		t.Fatalf("spaced jobs shed %d times; admission slots leaked", st.Shed)
	}
	if st.Completed != 10 {
		t.Fatalf("Completed = %d, want 10", st.Completed)
	}
}

// TestAdmissionDisabledIsZeroCost: the zero value admits everything and
// reproduces the plain run exactly (the engine's equivalence property
// extends to the new hook).
func TestAdmissionDisabledIsZeroCost(t *testing.T) {
	c1 := miniContinuum()
	plain := c1.RunStream(placement.GreedyLatency{}, reliableJobs(c1, 20, 0.1), nil)
	c2 := miniContinuum()
	rel := c2.RunStreamReliable(placement.GreedyLatency{}, reliableJobs(c2, 20, 0.1), nil,
		ReliableOptions{})
	if rel.Shed != 0 || rel.Completed != plain.Completed || rel.Latency.Mean() != plain.Latency.Mean() {
		t.Fatalf("zero-value admission diverged: %+v vs %d completed", rel, plain.Completed)
	}
}

// TestCordonedNodeGetsNoNewWork: a cordon hook must steer every
// placement away from the cordoned node without losing anything.
func TestCordonedNodeGetsNoNewWork(t *testing.T) {
	c := miniContinuum()
	gw := c.NodeByName("gw")
	st := c.RunStreamReliable(placement.GreedyLatency{}, reliableJobs(c, 20, 0.2), nil,
		ReliableOptions{Cordoned: func(n *node.Node) bool { return n == gw }})
	if st.Completed != 20 || st.Lost != 0 {
		t.Fatalf("cordon run: %d completed, %d lost", st.Completed, st.Lost)
	}
	if st.PerNode["gw"] != 0 {
		t.Fatalf("cordoned node received %d new jobs", st.PerNode["gw"])
	}
	if st.PerNode["cloud"] != 20 {
		t.Fatalf("work did not fail over to the cloud: %v", st.PerNode)
	}
}

// TestCordonAllRetriesThenLoses: with every candidate cordoned, jobs
// burn their retries waiting and end Lost — the cordon never silently
// drops or wedges the run.
func TestCordonAllRetriesThenLoses(t *testing.T) {
	c := miniContinuum()
	st := c.RunStreamReliable(placement.GreedyLatency{}, reliableJobs(c, 5, 0.2), nil,
		ReliableOptions{MaxRetries: 2, Cordoned: func(*node.Node) bool { return true }})
	if st.Lost != 5 {
		t.Fatalf("Lost = %d, want 5 with everything cordoned", st.Lost)
	}
	if st.Retries != 10 {
		t.Fatalf("Retries = %d, want 2 per job", st.Retries)
	}
}
