// Package core is the continuum orchestrator: it assembles the substrates
// (simulation kernel, network, nodes, data fabric) into one system, and
// executes workloads — online task streams under a placement policy, and
// static DAG schedules — while collecting the latency/energy/cost metrics
// every experiment reports.
//
// Reliability is opt-in via RunStreamReliable and ReliableOptions:
// injected faults, bounded retries, per-node circuit breaking, and —
// through SpeculateOptions — hedged execution, where a task in flight
// past the observed latency quantile (or a multiple of its expected
// runtime) gets a backup replica on a different node; the first finisher
// wins and the loser is preempted on delivery with its node time still
// billed, so wasted work shows up in the stats instead of hiding.
package core

import (
	"fmt"

	"continuum/internal/data"
	"continuum/internal/metrics"
	"continuum/internal/netsim"
	"continuum/internal/node"
	"continuum/internal/placement"
	"continuum/internal/sim"
	"continuum/internal/trace"
	"continuum/internal/workload"
)

// Continuum is a live simulated deployment.
type Continuum struct {
	K      *sim.Kernel
	Net    *netsim.Network
	Nodes  []*node.Node
	Fabric *data.Fabric
	Reg    *metrics.Registry
	// Tracer, when set, records task and transfer events for post-hoc
	// timelines (see internal/trace). Nil tracers cost nothing.
	Tracer *trace.Tracer
}

// New creates an empty continuum with a fresh kernel and network.
func New() *Continuum {
	k := sim.NewKernel()
	return &Continuum{
		K:   k,
		Net: netsim.New(k, 0),
		Reg: metrics.NewRegistry(),
	}
}

// AddNode creates a topology vertex, instantiates spec on it, and returns
// the live node.
func (c *Continuum) AddNode(spec node.Spec) *node.Node {
	id := c.Net.AddNode()
	n := node.New(c.K, id, spec)
	c.Nodes = append(c.Nodes, n)
	return n
}

// AddVertex adds a pure network vertex (router, site junction) with no
// compute attached.
func (c *Continuum) AddVertex() int { return c.Net.AddNode() }

// Connect links two vertices with a duplex link and returns both
// directed halves, so callers that retune links mid-run (scenario
// link-degradation events) can keep handles to them.
func (c *Continuum) Connect(a, b int, latency, capacity float64) (ab, ba *netsim.Link) {
	return c.Net.AddDuplexLink(a, b, latency, capacity)
}

// EnableFabric attaches a data fabric with a store on every current node.
// Capacity and policy apply to every store; call Fabric.AddStore directly
// for heterogeneous configurations.
func (c *Continuum) EnableFabric(rng *workload.RNG, capacity float64, pol data.Policy) *data.Fabric {
	c.Fabric = data.NewFabric(c.Net, rng)
	for _, n := range c.Nodes {
		c.Fabric.AddStore(n.ID, capacity, pol)
	}
	return c.Fabric
}

// Env returns the placement view of this continuum.
func (c *Continuum) Env() *placement.Env {
	return &placement.Env{Net: c.Net, Nodes: c.Nodes, Fabric: c.Fabric}
}

// NodeByName returns the first node with the given spec name, or nil.
func (c *Continuum) NodeByName(name string) *node.Node {
	for _, n := range c.Nodes {
		if n.Name == name {
			return n
		}
	}
	return nil
}

// TotalJoules sums energy over all node meters at the current time.
func (c *Continuum) TotalJoules() float64 {
	sum := 0.0
	for _, n := range c.Nodes {
		sum += n.Meter.Joules()
	}
	return sum
}

// Validate checks that every node vertex is reachable from every other
// (experiments assume a connected continuum).
func (c *Continuum) Validate() error {
	for _, a := range c.Nodes {
		for _, b := range c.Nodes {
			if a == b {
				continue
			}
			if _, err := c.Net.Path(a.ID, b.ID); err != nil {
				return fmt.Errorf("core: %s cannot reach %s: %w", a.Name, b.Name, err)
			}
		}
	}
	return nil
}

// ThreeTierParams configures the canonical sensors→gateways→cloud
// deployment used by the T1/T4/F6 experiments.
type ThreeTierParams struct {
	Gateways          int
	SensorsPerGateway int

	SensorLatency, SensorCapacity float64
	MetroLatency, MetroCapacity   float64
	WANLatency, WANCapacity       float64

	SensorSpec, GatewaySpec, FogSpec, CloudSpec node.Spec
}

// DefaultThreeTierParams returns a realistic metro deployment: 20ms WAN,
// 2ms metro, 5ms constrained sensor uplinks, with catalog hardware.
func DefaultThreeTierParams(gateways, sensorsPer int) ThreeTierParams {
	cat := node.Catalog()
	return ThreeTierParams{
		Gateways: gateways, SensorsPerGateway: sensorsPer,
		SensorLatency: 0.005, SensorCapacity: 2e6, // ~16 Mbit wireless
		MetroLatency: 0.002, MetroCapacity: 1.25e8, // 1 Gbit metro
		WANLatency: 0.020, WANCapacity: 1.25e9, // 10 Gbit WAN, 20ms
		SensorSpec: cat["sensor"], GatewaySpec: cat["gateway"],
		FogSpec: cat["fog"], CloudSpec: cat["cloud"],
	}
}

// ThreeTier is a built three-tier continuum with the tier handles the
// experiments need.
type ThreeTier struct {
	*Continuum
	Sensors  [][]*node.Node // grouped by gateway
	Gateways []*node.Node
	Fog      *node.Node
	Cloud    *node.Node
}

// BuildThreeTier assembles the canonical continuum: per-gateway sensor
// stars, a metro fog node co-located with the metro core, and a cloud
// across the WAN.
func BuildThreeTier(p ThreeTierParams) *ThreeTier {
	c := New()
	tt := &ThreeTier{Continuum: c}

	fogSpec := p.FogSpec
	fogSpec.Name = "fog"
	tt.Fog = c.AddNode(fogSpec)

	cloudSpec := p.CloudSpec
	cloudSpec.Name = "cloud"
	tt.Cloud = c.AddNode(cloudSpec)
	c.Connect(tt.Fog.ID, tt.Cloud.ID, p.WANLatency, p.WANCapacity)

	for g := 0; g < p.Gateways; g++ {
		gwSpec := p.GatewaySpec
		gwSpec.Name = fmt.Sprintf("gateway%d", g)
		gw := c.AddNode(gwSpec)
		c.Connect(gw.ID, tt.Fog.ID, p.MetroLatency, p.MetroCapacity)
		tt.Gateways = append(tt.Gateways, gw)

		var group []*node.Node
		for s := 0; s < p.SensorsPerGateway; s++ {
			sSpec := p.SensorSpec
			sSpec.Name = fmt.Sprintf("sensor%d.%d", g, s)
			sn := c.AddNode(sSpec)
			c.Connect(sn.ID, gw.ID, p.SensorLatency, p.SensorCapacity)
			group = append(group, sn)
		}
		tt.Sensors = append(tt.Sensors, group)
	}
	return tt
}

// ComputeNodes returns the nodes a placement policy should consider for
// offloaded work in a three-tier deployment: gateways, fog, and cloud
// (sensors only produce data; their 100 MFLOPS cores are modeled but
// excluded as offload targets).
func (tt *ThreeTier) ComputeNodes() []*node.Node {
	out := []*node.Node{tt.Fog, tt.Cloud}
	out = append(out, tt.Gateways...)
	return out
}
