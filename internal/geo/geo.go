// Package geo answers the keynote's third question — "where should I
// place my computers?" — as a weighted k-facility location problem over a
// planar geography. Demand sites (cities, campuses, sensor fields) carry
// request weights; facilities are chosen among site locations; the
// objective is weighted network round-trip time, which at continental
// scale is dominated by speed-of-light propagation.
//
// Three placers are provided: greedy k-median (the classic 1-1/e
// approximation shape), swap-based local search, and random (the floor).
package geo

import (
	"math"
	"sort"

	"continuum/internal/netsim"
	"continuum/internal/workload"
)

// Point is a location on a plane, in kilometers.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance in km.
func Dist(a, b Point) float64 {
	dx, dy := a.X-b.X, a.Y-b.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// RTT returns the fiber round-trip time between two points, seconds.
// Real paths are never geodesic; the conventional 1.5x path-stretch
// factor is applied.
func RTT(a, b Point) float64 {
	const pathStretch = 1.5
	return 2 * netsim.PropagationDelay(Dist(a, b)*pathStretch)
}

// Site is a demand location with a request weight (requests/sec share).
type Site struct {
	Loc    Point
	Weight float64
}

// ClusteredSites generates n demand sites grouped into clusters across an
// extent×extent km region — the population-center pattern real demand
// follows. Weights are Pareto-distributed (a few heavy metros).
func ClusteredSites(rng *workload.RNG, clusters, perCluster int, spread, extent float64) []Site {
	if clusters < 1 || perCluster < 1 {
		panic("geo: ClusteredSites requires positive counts")
	}
	var sites []Site
	for c := 0; c < clusters; c++ {
		center := Point{X: rng.Range(0, extent), Y: rng.Range(0, extent)}
		for s := 0; s < perCluster; s++ {
			sites = append(sites, Site{
				Loc: Point{
					X: center.X + rng.Norm(0, spread),
					Y: center.Y + rng.Norm(0, spread),
				},
				Weight: rng.Pareto(1, 1.5),
			})
		}
	}
	return sites
}

// Assessment summarizes a placement's quality.
type Assessment struct {
	MeanRTT float64 // weight-averaged RTT to nearest facility
	P99RTT  float64 // weighted 99th percentile RTT
	MaxRTT  float64
	// MaxLoadShare is the largest fraction of total weight served by one
	// facility (1/k is perfectly balanced).
	MaxLoadShare float64
}

// nearestFacility returns the index into facilities of the closest
// facility to s, and the RTT.
func nearestFacility(sites []Site, facilities []int, s Site) (int, float64) {
	best, bestRTT := -1, math.Inf(1)
	for fi, si := range facilities {
		r := RTT(s.Loc, sites[si].Loc)
		if r < bestRTT {
			best, bestRTT = fi, r
		}
	}
	return best, bestRTT
}

// Evaluate assesses serving every site from its nearest facility.
// facilities index into sites. It panics on an empty facility set.
func Evaluate(sites []Site, facilities []int) Assessment {
	if len(facilities) == 0 {
		panic("geo: no facilities")
	}
	type wr struct{ rtt, w float64 }
	var rows []wr
	totalW := 0.0
	loads := make([]float64, len(facilities))
	var a Assessment
	for _, s := range sites {
		fi, r := nearestFacility(sites, facilities, s)
		rows = append(rows, wr{r, s.Weight})
		totalW += s.Weight
		loads[fi] += s.Weight
		a.MeanRTT += r * s.Weight
		if r > a.MaxRTT {
			a.MaxRTT = r
		}
	}
	a.MeanRTT /= totalW
	sort.Slice(rows, func(i, j int) bool { return rows[i].rtt < rows[j].rtt })
	cum := 0.0
	a.P99RTT = rows[len(rows)-1].rtt
	for _, r := range rows {
		cum += r.w
		if cum >= 0.99*totalW {
			a.P99RTT = r.rtt
			break
		}
	}
	for _, l := range loads {
		if share := l / totalW; share > a.MaxLoadShare {
			a.MaxLoadShare = share
		}
	}
	return a
}

// totalCost is the weighted sum of RTTs to nearest facilities — the
// k-median objective.
func totalCost(sites []Site, facilities []int) float64 {
	sum := 0.0
	for _, s := range sites {
		_, r := nearestFacility(sites, facilities, s)
		sum += r * s.Weight
	}
	return sum
}

// GreedyKMedian picks k facilities by repeatedly adding the site that most
// reduces the weighted-RTT objective. Deterministic; O(k·n²).
func GreedyKMedian(sites []Site, k int) []int {
	if k < 1 || k > len(sites) {
		panic("geo: k out of range")
	}
	var chosen []int
	inSet := make([]bool, len(sites))
	// Current best RTT per site (∞ before any facility exists).
	best := make([]float64, len(sites))
	for i := range best {
		best[i] = math.Inf(1)
	}
	for len(chosen) < k {
		bestCand, bestDelta := -1, math.Inf(1)
		for cand := range sites {
			if inSet[cand] {
				continue
			}
			cost := 0.0
			for i, s := range sites {
				r := RTT(s.Loc, sites[cand].Loc)
				if r < best[i] {
					cost += r * s.Weight
				} else {
					cost += best[i] * s.Weight
				}
			}
			if cost < bestDelta {
				bestDelta, bestCand = cost, cand
			}
		}
		chosen = append(chosen, bestCand)
		inSet[bestCand] = true
		for i, s := range sites {
			if r := RTT(s.Loc, sites[bestCand].Loc); r < best[i] {
				best[i] = r
			}
		}
	}
	sort.Ints(chosen)
	return chosen
}

// LocalSearch improves a random initial placement by single-swap descent:
// repeatedly replace one facility with one non-facility when it lowers the
// objective, for at most iters sweeps. The classic (3+ε)-approximation
// scheme for k-median.
func LocalSearch(sites []Site, k int, rng *workload.RNG, iters int) []int {
	if k < 1 || k > len(sites) {
		panic("geo: k out of range")
	}
	perm := rng.Perm(len(sites))
	facilities := append([]int(nil), perm[:k]...)
	cost := totalCost(sites, facilities)
	for it := 0; it < iters; it++ {
		improved := false
		for fi := 0; fi < k; fi++ {
			for cand := range sites {
				if contains(facilities, cand) {
					continue
				}
				old := facilities[fi]
				facilities[fi] = cand
				if c := totalCost(sites, facilities); c < cost {
					cost = c
					improved = true
				} else {
					facilities[fi] = old
				}
			}
		}
		if !improved {
			break
		}
	}
	sort.Ints(facilities)
	return facilities
}

// RandomPlacement picks k distinct random sites.
func RandomPlacement(sites []Site, k int, rng *workload.RNG) []int {
	if k < 1 || k > len(sites) {
		panic("geo: k out of range")
	}
	perm := rng.Perm(len(sites))
	out := append([]int(nil), perm[:k]...)
	sort.Ints(out)
	return out
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
