package geo

import (
	"math"
	"testing"
	"testing/quick"

	"continuum/internal/workload"
)

func TestDistAndRTT(t *testing.T) {
	a, b := Point{0, 0}, Point{3000, 4000} // 5000 km
	if d := Dist(a, b); math.Abs(d-5000) > 1e-9 {
		t.Fatalf("Dist = %v", d)
	}
	// 5000km * 1.5 stretch = 7500km path; RTT = 2*7500/200000 = 75ms.
	if r := RTT(a, b); math.Abs(r-0.075) > 1e-9 {
		t.Fatalf("RTT = %v, want 0.075", r)
	}
	if RTT(a, a) != 0 {
		t.Fatal("self RTT != 0")
	}
}

func TestClusteredSitesShape(t *testing.T) {
	sites := ClusteredSites(workload.NewRNG(1), 5, 10, 50, 4000)
	if len(sites) != 50 {
		t.Fatalf("sites = %d", len(sites))
	}
	for _, s := range sites {
		if s.Weight <= 0 {
			t.Fatal("nonpositive weight")
		}
	}
}

func TestEvaluateSingleFacility(t *testing.T) {
	sites := []Site{
		{Loc: Point{0, 0}, Weight: 1},
		{Loc: Point{1000, 0}, Weight: 1},
	}
	a := Evaluate(sites, []int{0})
	// Site 0: RTT 0; site 1: 2*1500/200000 = 15ms. Mean = 7.5ms.
	if math.Abs(a.MeanRTT-0.0075) > 1e-9 {
		t.Fatalf("MeanRTT = %v", a.MeanRTT)
	}
	if a.MaxLoadShare != 1 {
		t.Fatalf("MaxLoadShare = %v, want 1 (single facility)", a.MaxLoadShare)
	}
	if a.MaxRTT < a.MeanRTT {
		t.Fatal("MaxRTT below mean")
	}
}

func TestEvaluateP99Weighted(t *testing.T) {
	// 99 weight at distance 0, 1 weight far away: P99 should be ~0.
	sites := []Site{
		{Loc: Point{0, 0}, Weight: 99},
		{Loc: Point{5000, 0}, Weight: 1},
	}
	a := Evaluate(sites, []int{0})
	if a.P99RTT != 0 {
		t.Fatalf("P99RTT = %v, want 0 (99%% of weight local)", a.P99RTT)
	}
}

func TestGreedyBeatsRandom(t *testing.T) {
	rng := workload.NewRNG(2)
	sites := ClusteredSites(rng.Split(), 6, 15, 60, 5000)
	const k = 4
	greedy := Evaluate(sites, GreedyKMedian(sites, k))
	// Average several random placements.
	randTotal := 0.0
	const trials = 10
	for i := 0; i < trials; i++ {
		randTotal += Evaluate(sites, RandomPlacement(sites, k, rng.Split())).MeanRTT
	}
	if greedy.MeanRTT >= randTotal/trials {
		t.Fatalf("greedy %v not better than random mean %v", greedy.MeanRTT, randTotal/trials)
	}
}

func TestLocalSearchNotWorseThanItsStart(t *testing.T) {
	rng := workload.NewRNG(3)
	sites := ClusteredSites(rng.Split(), 5, 12, 50, 4000)
	const k = 3
	// Local search from a random start must beat (or match) pure random
	// with the same seed stream shape.
	ls := Evaluate(sites, LocalSearch(sites, k, workload.NewRNG(99), 10))
	rnd := Evaluate(sites, RandomPlacement(sites, k, workload.NewRNG(99)))
	if ls.MeanRTT > rnd.MeanRTT+1e-12 {
		t.Fatalf("local search %v worse than its random start %v", ls.MeanRTT, rnd.MeanRTT)
	}
}

func TestMoreFacilitiesNeverHurt(t *testing.T) {
	rng := workload.NewRNG(4)
	sites := ClusteredSites(rng.Split(), 6, 10, 40, 5000)
	prev := math.Inf(1)
	for _, k := range []int{1, 2, 4, 8} {
		a := Evaluate(sites, GreedyKMedian(sites, k))
		if a.MeanRTT > prev+1e-12 {
			t.Fatalf("k=%d mean RTT %v worse than smaller k %v", k, a.MeanRTT, prev)
		}
		prev = a.MeanRTT
	}
}

func TestKEqualsAllSitesIsFree(t *testing.T) {
	rng := workload.NewRNG(5)
	sites := ClusteredSites(rng.Split(), 3, 4, 30, 2000)
	a := Evaluate(sites, GreedyKMedian(sites, len(sites)))
	if a.MeanRTT != 0 {
		t.Fatalf("facility at every site should zero RTT, got %v", a.MeanRTT)
	}
}

func TestPanicsOnBadInputs(t *testing.T) {
	sites := []Site{{Loc: Point{0, 0}, Weight: 1}}
	cases := []struct {
		name string
		fn   func()
	}{
		{"evaluate empty", func() { Evaluate(sites, nil) }},
		{"greedy k=0", func() { GreedyKMedian(sites, 0) }},
		{"greedy k>n", func() { GreedyKMedian(sites, 2) }},
		{"random k>n", func() { RandomPlacement(sites, 5, workload.NewRNG(1)) }},
		{"local k=0", func() { LocalSearch(sites, 0, workload.NewRNG(1), 1) }},
		{"clustered zero", func() { ClusteredSites(workload.NewRNG(1), 0, 1, 1, 1) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", tc.name)
				}
			}()
			tc.fn()
		})
	}
}

// Property: placements are distinct valid indices of the requested size.
func TestPropertyPlacementsValid(t *testing.T) {
	f := func(seed uint64, kRaw uint8) bool {
		rng := workload.NewRNG(seed)
		sites := ClusteredSites(rng.Split(), 4, 8, 40, 3000)
		k := int(kRaw)%8 + 1
		for _, placement := range [][]int{
			GreedyKMedian(sites, k),
			LocalSearch(sites, k, rng.Split(), 3),
			RandomPlacement(sites, k, rng.Split()),
		} {
			if len(placement) != k {
				return false
			}
			seen := map[int]bool{}
			for _, f := range placement {
				if f < 0 || f >= len(sites) || seen[f] {
					return false
				}
				seen[f] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
