package fault

import (
	"testing"
	"time"
)

func TestParseChaos(t *testing.T) {
	spec, err := ParseChaos("drop=0.05,err=0.1,delay=20ms,delayp=0.2,up=10s,down=500ms,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	if spec.DropProb != 0.05 || spec.ErrProb != 0.1 || spec.DelayProb != 0.2 ||
		spec.DelayMean != 20*time.Millisecond || spec.Seed != 7 {
		t.Fatalf("spec = %+v", spec)
	}
	if spec.MeanUp != 10 || spec.MeanDown != 0.5 {
		t.Fatalf("up/down = %v/%v", spec.MeanUp, spec.MeanDown)
	}
}

func TestParseChaosDelayAloneAppliesAlways(t *testing.T) {
	spec, err := ParseChaos("delay=5ms")
	if err != nil {
		t.Fatal(err)
	}
	if spec.DelayProb != 1 {
		t.Fatalf("DelayProb = %v", spec.DelayProb)
	}
}

func TestParseChaosRejects(t *testing.T) {
	for _, s := range []string{
		"",
		"bogus=1",
		"drop",
		"drop=1.5",
		"up=10s", // down missing
		"drop=x",
	} {
		if _, err := ParseChaos(s); err == nil {
			t.Errorf("ParseChaos(%q) accepted", s)
		}
	}
}

func TestChaosProbabilities(t *testing.T) {
	c := NewChaos(ChaosSpec{DropProb: 0.3, ErrProb: 0.3, Seed: 1})
	counts := map[ChaosAction]int{}
	const n = 10000
	for i := 0; i < n; i++ {
		a, d := c.Next()
		if d != 0 {
			t.Fatalf("delay %v with DelayProb 0", d)
		}
		counts[a]++
	}
	// drop ≈ 0.3, err ≈ 0.7·0.3 = 0.21 (err is drawn only when drop
	// didn't fire). Allow generous slack; the seed makes this stable.
	if f := float64(counts[ChaosDrop]) / n; f < 0.25 || f > 0.35 {
		t.Errorf("drop fraction = %v", f)
	}
	if f := float64(counts[ChaosError]) / n; f < 0.16 || f > 0.26 {
		t.Errorf("error fraction = %v", f)
	}
	if counts[ChaosNone] == 0 {
		t.Error("no request survived injection at 30/30 rates")
	}
}

func TestChaosDelayInjection(t *testing.T) {
	c := NewChaos(ChaosSpec{DelayProb: 1, DelayMean: 10 * time.Millisecond, Seed: 1})
	sum := time.Duration(0)
	const n = 2000
	for i := 0; i < n; i++ {
		a, d := c.Next()
		if a != ChaosNone {
			t.Fatalf("action = %v with only delay configured", a)
		}
		sum += d
	}
	mean := sum / n
	if mean < 5*time.Millisecond || mean > 20*time.Millisecond {
		t.Fatalf("mean injected delay = %v, want ≈10ms", mean)
	}
}

func TestChaosUpDownCycling(t *testing.T) {
	c := NewChaos(ChaosSpec{
		Spec: Spec{MeanUp: 1, MeanDown: 1},
		Seed: 3,
	})
	// Drive the phase machine with a fake clock stepping 100ms at a time
	// over 200 simulated seconds; both phases must be visited, and every
	// down-phase request must drop.
	now := time.Unix(0, 0)
	c.now = func() time.Time { return now }
	upSeen, downSeen := 0, 0
	for i := 0; i < 2000; i++ {
		now = now.Add(100 * time.Millisecond)
		a, _ := c.Next()
		if c.Up() {
			upSeen++
			if a != ChaosNone {
				t.Fatalf("action %v while up with zero probabilities", a)
			}
		} else {
			downSeen++
			if a != ChaosDrop {
				t.Fatalf("action %v while down", a)
			}
		}
	}
	if upSeen == 0 || downSeen == 0 {
		t.Fatalf("phases not both visited: up=%d down=%d", upSeen, downSeen)
	}
	// MeanUp == MeanDown: availability should be near 50%.
	frac := float64(upSeen) / float64(upSeen+downSeen)
	if frac < 0.2 || frac > 0.8 {
		t.Fatalf("up fraction = %v", frac)
	}
}

func TestChaosActionString(t *testing.T) {
	for a, want := range map[ChaosAction]string{
		ChaosNone: "none", ChaosError: "error", ChaosDrop: "drop",
	} {
		if got := a.String(); got != want {
			t.Errorf("%d.String() = %q", int(a), got)
		}
	}
}
