package fault

import (
	"math"
	"testing"
	"testing/quick"

	"continuum/internal/sim"
	"continuum/internal/workload"
)

func TestSpecValidate(t *testing.T) {
	if (Spec{MeanUp: 1, MeanDown: 1}).Validate() != nil {
		t.Fatal("valid spec rejected")
	}
	for _, s := range []Spec{{0, 1}, {1, 0}, {-1, 1}} {
		if s.Validate() == nil {
			t.Fatalf("spec %+v accepted", s)
		}
	}
}

func TestAttachStartsUp(t *testing.T) {
	k := sim.NewKernel()
	inj := NewInjector(k, workload.NewRNG(1), 1e6)
	tg := inj.Attach("gw", Spec{MeanUp: 10, MeanDown: 1})
	if !tg.Up() || tg.Epoch() != 0 || tg.Failures() != 0 {
		t.Fatal("fresh target not clean")
	}
	if tg.Availability() != 1 {
		t.Fatal("availability at t=0 != 1")
	}
	if len(inj.Targets()) != 1 {
		t.Fatal("target not registered")
	}
}

func TestFailureRepairCycle(t *testing.T) {
	k := sim.NewKernel()
	inj := NewInjector(k, workload.NewRNG(2), 1e6)
	tg := inj.Attach("gw", Spec{MeanUp: 5, MeanDown: 1})
	var fails, repairs int
	tg.OnFail = func() { fails++ }
	tg.OnRepair = func() { repairs++ }
	k.RunUntil(1000)
	if fails == 0 || repairs == 0 {
		t.Fatalf("no transitions in 1000s (fails=%d repairs=%d)", fails, repairs)
	}
	if int64(fails) != tg.Failures() {
		t.Fatalf("OnFail count %d != Failures %d", fails, tg.Failures())
	}
	if diff := fails - repairs; diff < 0 || diff > 1 {
		t.Fatalf("fail/repair imbalance: %d/%d", fails, repairs)
	}
	if tg.Epoch() != uint64(fails) {
		t.Fatalf("epoch %d != failures %d", tg.Epoch(), fails)
	}
}

func TestMeasuredAvailabilityMatchesTheory(t *testing.T) {
	k := sim.NewKernel()
	inj := NewInjector(k, workload.NewRNG(3), 1e6)
	spec := Spec{MeanUp: 9, MeanDown: 1} // 90% available
	tg := inj.Attach("gw", spec)
	k.RunUntil(200000)
	got := tg.Availability()
	want := spec.TheoreticalAvailability()
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("availability %v, want ~%v", got, want)
	}
}

func TestDowntimeAccountsOpenInterval(t *testing.T) {
	k := sim.NewKernel()
	inj := NewInjector(k, workload.NewRNG(4), 1e6)
	tg := inj.Attach("gw", Spec{MeanUp: 1, MeanDown: 1000})
	// Run until the target is down, then check downtime grows with the
	// clock even before repair.
	for k.Now() < 100000 && tg.Up() {
		k.RunUntil(k.Now() + 1)
	}
	if tg.Up() {
		t.Skip("target never failed in window (improbable)")
	}
	d1 := tg.Downtime()
	k.RunUntil(k.Now() + 10)
	if tg.Up() {
		return // repaired in the window; accounting covered elsewhere
	}
	d2 := tg.Downtime()
	if d2 < d1+9.99 {
		t.Fatalf("open-interval downtime not accruing: %v -> %v", d1, d2)
	}
}

func TestAttachPanicsOnBadSpec(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad spec accepted")
		}
	}()
	NewInjector(sim.NewKernel(), workload.NewRNG(1), 1e6).Attach("x", Spec{})
}

// Property: availability is always in [0, 1] and epochs never decrease.
func TestPropertyAvailabilityBounds(t *testing.T) {
	f := func(seed uint64, upRaw, downRaw uint8) bool {
		k := sim.NewKernel()
		inj := NewInjector(k, workload.NewRNG(seed), 1e6)
		spec := Spec{MeanUp: float64(upRaw%20) + 0.5, MeanDown: float64(downRaw%10) + 0.5}
		tg := inj.Attach("t", spec)
		var prevEpoch uint64
		for i := 0; i < 20; i++ {
			k.RunUntil(k.Now() + 50)
			a := tg.Availability()
			if a < 0 || a > 1 {
				return false
			}
			if tg.Epoch() < prevEpoch {
				return false
			}
			prevEpoch = tg.Epoch()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
