package fault

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// This file is the one parser behind every textual fault description in
// the system: the continuumd -chaos flag, scenario event specs, and the
// simulator's MTBF/MTTR specs all share a single comma-separated
// key=value grammar — and a single error-message style, so a typo reads
// the same no matter where it was written.

// applyFn consumes one key=value term of the grammar. It reports whether
// it recognized the key; unrecognized keys fall through to the next
// handler (and error out if nothing claims them).
type applyFn func(key, val string) (handled bool, err error)

// parseTerms scans the shared grammar and routes each term through the
// given handlers in order.
func parseTerms(s string, fns ...applyFn) error {
	if strings.TrimSpace(s) == "" {
		return fmt.Errorf("fault: empty spec")
	}
	for _, kv := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return fmt.Errorf("fault: term %q is not key=value", kv)
		}
		handled := false
		for _, fn := range fns {
			done, err := fn(k, v)
			if err != nil {
				return fmt.Errorf("fault: %s: %w", k, err)
			}
			if done {
				handled = true
				break
			}
		}
		if !handled {
			return fmt.Errorf("fault: unknown key %q", k)
		}
	}
	return nil
}

// seconds parses a Go duration ("500ms", "10s") into float seconds — the
// unit Spec uses for both virtual and wall-clock phase lengths.
func seconds(v string) (float64, error) {
	d, err := time.ParseDuration(v)
	if err != nil {
		return 0, err
	}
	return d.Seconds(), nil
}

// terms is the MTBF/MTTR half of the grammar: up=<dur> (mean time
// between failures) and down=<dur> (mean time to repair).
func (s *Spec) terms() applyFn {
	return func(k, v string) (bool, error) {
		var err error
		switch k {
		case "up":
			s.MeanUp, err = seconds(v)
		case "down":
			s.MeanDown, err = seconds(v)
		default:
			return false, nil
		}
		return true, err
	}
}

// ParseSpec parses the MTBF/MTTR grammar, e.g. "up=10s,down=500ms":
// mean uptime and mean repair time as Go durations. It is the
// simulator-facing half of the grammar that ParseChaos extends with
// per-request draws.
func ParseSpec(str string) (Spec, error) {
	var s Spec
	if err := parseTerms(str, s.terms()); err != nil {
		return s, err
	}
	return s, s.Validate()
}

// chaosTerms is the per-request half of the grammar: drop/err/delayp
// probabilities, delay (mean latency spike), and seed.
func (s *ChaosSpec) chaosTerms() applyFn {
	return func(k, v string) (bool, error) {
		var err error
		switch k {
		case "drop":
			s.DropProb, err = strconv.ParseFloat(v, 64)
		case "err":
			s.ErrProb, err = strconv.ParseFloat(v, 64)
		case "delayp":
			s.DelayProb, err = strconv.ParseFloat(v, 64)
		case "delay":
			var d time.Duration
			d, err = time.ParseDuration(v)
			s.DelayMean = d
			if s.DelayProb == 0 {
				s.DelayProb = 1 // delay= alone means "every request"
			}
		case "seed":
			s.Seed, err = strconv.ParseInt(v, 10, 64)
		default:
			return false, nil
		}
		return true, err
	}
}

// ParseChaos parses the full chaos grammar: comma-separated key=value
// pairs, e.g.
//
//	drop=0.05,err=0.1,delay=20ms,delayp=0.2,up=10s,down=500ms,seed=1
//
// Keys: drop/err/delayp (probabilities), delay (mean latency spike,
// Go duration), up/down (mean phase lengths, Go durations — the shared
// ParseSpec grammar), seed (int64). Unknown keys are errors so typos
// fail fast. The same grammar drives continuumd -chaos and scenario
// chaos events.
func ParseChaos(str string) (ChaosSpec, error) {
	var spec ChaosSpec
	if err := parseTerms(str, spec.Spec.terms(), spec.chaosTerms()); err != nil {
		return spec, err
	}
	return spec, spec.Validate()
}
