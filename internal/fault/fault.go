// Package fault injects fail-stop node failures into a simulation: each
// attached target alternates exponentially distributed up and down
// periods (the classic MTBF/MTTR model). The continuum's edge is flaky by
// nature — battery sensors die, gateways reboot, links flap — and any
// placement story that ignores that is incomplete; this package powers
// the F7 reliability experiment.
//
// Failure semantics are fail-stop with work loss: the injector flips
// availability and bumps an epoch counter; executors (see
// core.RunStreamReliable) treat work whose host changed epoch mid-flight
// as lost and retry elsewhere.
package fault

import (
	"fmt"

	"continuum/internal/sim"
	"continuum/internal/workload"
)

// Spec parameterizes a target's failure process.
type Spec struct {
	// MeanUp is the mean time between failures (seconds of uptime).
	MeanUp float64
	// MeanDown is the mean time to repair (seconds of downtime).
	MeanDown float64
}

// Validate reports the first problem with the spec.
func (s Spec) Validate() error {
	if s.MeanUp <= 0 || s.MeanDown <= 0 {
		return fmt.Errorf("fault: MeanUp and MeanDown must be positive (got %v, %v)", s.MeanUp, s.MeanDown)
	}
	return nil
}

// Target is one failure domain (typically a node).
type Target struct {
	Name string

	up    bool
	epoch uint64

	failures  int64
	downSince float64
	totalDown float64

	// OnFail and OnRepair, when set, run at each transition (inside the
	// simulation event).
	OnFail   func()
	OnRepair func()

	k *sim.Kernel
}

// Up reports current availability.
func (t *Target) Up() bool { return t.up }

// Epoch returns the failure epoch: it increments on every failure, so an
// executor can detect "my host failed while I ran" by comparing epochs.
func (t *Target) Epoch() uint64 { return t.epoch }

// Failures returns the number of failures so far.
func (t *Target) Failures() int64 { return t.failures }

// Downtime returns accumulated seconds of unavailability.
func (t *Target) Downtime() float64 {
	d := t.totalDown
	if !t.up {
		d += t.k.Now() - t.downSince
	}
	return d
}

// Availability returns the measured fraction of time up, over the
// interval [0, now]. Returns 1 at time zero.
func (t *Target) Availability() float64 {
	now := t.k.Now()
	if now == 0 {
		return 1
	}
	return 1 - t.Downtime()/now
}

// NewTarget returns a detached, initially-up target for scripted fault
// injection: scenario event scripts flip it with Fail and Repair at
// exact virtual times instead of attaching an MTBF/MTTR process via an
// Injector. Availability bookkeeping (Downtime, Availability, Epoch)
// works identically either way.
func NewTarget(name string, k *sim.Kernel) *Target {
	return &Target{Name: name, up: true, k: k}
}

// Fail forces the target down now (idempotent while down): the failure
// epoch advances, so in-flight work on it is treated as lost.
func (t *Target) Fail() { t.fail() }

// Repair forces the target up now (idempotent while up).
func (t *Target) Repair() { t.repair() }

func (t *Target) fail() {
	if !t.up {
		return
	}
	t.up = false
	t.epoch++
	t.failures++
	t.downSince = t.k.Now()
	if t.OnFail != nil {
		t.OnFail()
	}
}

func (t *Target) repair() {
	if t.up {
		return
	}
	t.up = true
	t.totalDown += t.k.Now() - t.downSince
	if t.OnRepair != nil {
		t.OnRepair()
	}
}

// Injector drives failure processes on a kernel, up to a horizon.
//
// The horizon matters: an unbounded fail/repair cycle would keep the
// event queue nonempty forever and Kernel.Run would never return. Events
// beyond the horizon are simply not scheduled; targets keep their final
// state.
type Injector struct {
	k       *sim.Kernel
	rng     *workload.RNG
	horizon float64
	targets []*Target
}

// NewInjector creates an injector using rng for all failure draws.
// Failure/repair events are only scheduled at times <= horizon.
func NewInjector(k *sim.Kernel, rng *workload.RNG, horizon float64) *Injector {
	if horizon <= 0 {
		panic(fmt.Sprintf("fault: horizon %v <= 0", horizon))
	}
	return &Injector{k: k, rng: rng, horizon: horizon}
}

// Targets returns all attached targets.
func (i *Injector) Targets() []*Target { return i.targets }

// Attach registers a target and starts its fail/repair cycle. The target
// starts up; the first failure arrives after an exponential draw.
func (i *Injector) Attach(name string, spec Spec) *Target {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	t := &Target{Name: name, up: true, k: i.k}
	i.targets = append(i.targets, t)

	var scheduleFail, scheduleRepair func()
	at := func(d float64, fn func()) {
		if i.k.Now()+d <= i.horizon {
			i.k.After(d, fn)
		}
	}
	scheduleFail = func() {
		at(i.rng.Exp(1/spec.MeanUp), func() {
			t.fail()
			scheduleRepair()
		})
	}
	scheduleRepair = func() {
		at(i.rng.Exp(1/spec.MeanDown), func() {
			t.repair()
			scheduleFail()
		})
	}
	scheduleFail()
	return t
}

// TheoreticalAvailability returns MeanUp/(MeanUp+MeanDown), the
// steady-state availability the measured value should converge to.
func (s Spec) TheoreticalAvailability() float64 {
	return s.MeanUp / (s.MeanUp + s.MeanDown)
}
