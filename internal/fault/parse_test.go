package fault

import (
	"strings"
	"testing"

	"continuum/internal/sim"
)

func TestParseSpec(t *testing.T) {
	s, err := ParseSpec("up=10s,down=500ms")
	if err != nil {
		t.Fatal(err)
	}
	if s.MeanUp != 10 || s.MeanDown != 0.5 {
		t.Fatalf("spec = %+v", s)
	}
}

func TestParseSpecRejects(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", "empty spec"},
		{"up=10s,oops", `term "oops" is not key=value`},
		{"drop=0.5", `unknown key "drop"`}, // chaos-only key in the spec grammar
		{"up=banana", "up"},
		{"up=-5s,down=1s", ""}, // Validate rejects negative phases
	}
	for _, tc := range cases {
		_, err := ParseSpec(tc.in)
		if err == nil {
			t.Errorf("ParseSpec(%q) accepted", tc.in)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("ParseSpec(%q) = %q, want mention of %q", tc.in, err, tc.want)
		}
	}
}

// TestSharedGrammarErrorStyle pins the dedup: both parsers come from the
// same parseTerms core, so the same malformed input yields the same
// error text whether it arrived via -chaos, a scenario event, or a sim
// fault spec.
func TestSharedGrammarErrorStyle(t *testing.T) {
	_, specErr := ParseSpec("up;10s")
	_, chaosErr := ParseChaos("up;10s")
	if specErr == nil || chaosErr == nil {
		t.Fatal("malformed term accepted")
	}
	if specErr.Error() != chaosErr.Error() {
		t.Fatalf("error style diverged: %q vs %q", specErr, chaosErr)
	}
	for _, err := range []error{specErr, chaosErr} {
		if !strings.HasPrefix(err.Error(), "fault: ") {
			t.Fatalf("error %q lost the fault: prefix", err)
		}
	}
}

func TestParseChaosWhitespaceTolerant(t *testing.T) {
	spec, err := ParseChaos(" drop=0.1 , up=2s , down=1s ")
	if err != nil {
		t.Fatal(err)
	}
	if spec.DropProb != 0.1 || spec.MeanUp != 2 {
		t.Fatalf("spec = %+v", spec)
	}
}

func TestTargetScriptedFailRepair(t *testing.T) {
	// NewTarget gives scripted (scenario-driven) control over the same
	// up/down state machine the stochastic injector uses.
	k := sim.NewKernel()
	tg := NewTarget("n0", k)
	if !tg.Up() {
		t.Fatal("new target not up")
	}
	tg.Fail()
	if tg.Up() {
		t.Fatal("Fail() left target up")
	}
	tg.Fail() // idempotent
	if tg.Up() {
		t.Fatal("double Fail() flipped state")
	}
	tg.Repair()
	if !tg.Up() {
		t.Fatal("Repair() left target down")
	}
}
