package fault

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"
)

// This file is the live-path counterpart of the simulated Injector: the
// same MTBF/MTTR failure model (Spec), driven by the wall clock instead
// of a simulation kernel, plus per-request fault draws (dropped
// connections, injected latency, injected errors). The wire server
// consults a Chaos before dispatching each request, which turns a real
// continuumd into its own fault injector — the substrate for the
// end-to-end "kill an endpoint mid-run, no request lost" test.

// ChaosAction is the injected fate of one request.
type ChaosAction int

// Chaos actions, in increasing severity.
const (
	// ChaosNone serves the request normally.
	ChaosNone ChaosAction = iota
	// ChaosError answers with an injected (retryable) error response.
	ChaosError
	// ChaosDrop severs the connection without a response — the client
	// sees a mid-request transport failure.
	ChaosDrop
)

// String returns the action name.
func (a ChaosAction) String() string {
	switch a {
	case ChaosNone:
		return "none"
	case ChaosError:
		return "error"
	case ChaosDrop:
		return "drop"
	default:
		return fmt.Sprintf("action(%d)", int(a))
	}
}

// ChaosSpec parameterizes live fault injection. The embedded Spec, when
// nonzero, cycles the target through exponentially distributed up/down
// phases (wall-clock seconds): every request during a down phase is
// dropped, modeling an endpoint crash/repair cycle. The probabilities
// apply per request while up.
type ChaosSpec struct {
	// Spec cycles availability (MeanUp/MeanDown in wall-clock seconds).
	// The zero Spec means always up.
	Spec
	// DropProb is the per-request probability of severing the connection.
	DropProb float64
	// ErrProb is the per-request probability of an injected error
	// response.
	ErrProb float64
	// DelayProb is the per-request probability of a latency spike.
	DelayProb float64
	// DelayMean is the mean of the exponential injected latency.
	DelayMean time.Duration
	// Seed makes the injection sequence reproducible (0 seeds from the
	// clock).
	Seed int64
}

// Validate reports the first problem with the spec.
func (s ChaosSpec) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{{"drop", s.DropProb}, {"err", s.ErrProb}, {"delay", s.DelayProb}} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("fault: chaos %s probability %v outside [0,1]", p.name, p.v)
		}
	}
	if s.DelayMean < 0 {
		return fmt.Errorf("fault: chaos delay mean %v < 0", s.DelayMean)
	}
	if (s.MeanUp == 0) != (s.MeanDown == 0) {
		return fmt.Errorf("fault: chaos up/down must both be set or both zero (got %v, %v)", s.MeanUp, s.MeanDown)
	}
	if s.MeanUp < 0 || s.MeanDown < 0 {
		return fmt.Errorf("fault: chaos up/down must be positive (got %v, %v)", s.MeanUp, s.MeanDown)
	}
	return nil
}

// cycling reports whether up/down phases are enabled.
func (s ChaosSpec) cycling() bool { return s.MeanUp > 0 && s.MeanDown > 0 }

// Chaos draws per-request fault injections against the wall clock. It is
// safe for concurrent use.
type Chaos struct {
	spec ChaosSpec
	now  func() time.Time // injectable clock for tests

	mu       sync.Mutex
	rng      *rand.Rand
	up       bool
	phaseEnd time.Time // when the current up/down phase expires
}

// NewChaos builds an injector from spec; it panics on an invalid spec
// (configuration error, caught at startup like the Injector's).
func NewChaos(spec ChaosSpec) *Chaos {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	seed := spec.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &Chaos{
		spec: spec,
		now:  time.Now,
		rng:  rand.New(rand.NewSource(seed)),
		up:   true,
	}
}

// exp draws an exponential duration with the given mean. Callers hold
// c.mu.
func (c *Chaos) exp(mean float64) time.Duration {
	d := c.rng.ExpFloat64() * mean
	if d > math.MaxInt64/float64(time.Second) {
		return math.MaxInt64
	}
	return time.Duration(d * float64(time.Second))
}

// advance rolls the up/down phase machine forward to now. Callers hold
// c.mu.
func (c *Chaos) advance(now time.Time) {
	if !c.spec.cycling() {
		return
	}
	if c.phaseEnd.IsZero() {
		c.phaseEnd = now.Add(c.exp(c.spec.MeanUp))
	}
	for !now.Before(c.phaseEnd) {
		if c.up {
			c.up = false
			c.phaseEnd = c.phaseEnd.Add(c.exp(c.spec.MeanDown))
		} else {
			c.up = true
			c.phaseEnd = c.phaseEnd.Add(c.exp(c.spec.MeanUp))
		}
	}
}

// Up reports whether the target is currently in an up phase.
func (c *Chaos) Up() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.advance(c.now())
	return c.up
}

// Next draws the fate of one request: an action plus a latency spike to
// impose before it (0 when no spike was drawn). During a down phase every
// request is dropped.
func (c *Chaos) Next() (ChaosAction, time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.advance(c.now())
	if !c.up {
		return ChaosDrop, 0
	}
	var delay time.Duration
	if c.spec.DelayProb > 0 && c.rng.Float64() < c.spec.DelayProb {
		delay = c.exp(c.spec.DelayMean.Seconds())
	}
	switch {
	case c.spec.DropProb > 0 && c.rng.Float64() < c.spec.DropProb:
		return ChaosDrop, delay
	case c.spec.ErrProb > 0 && c.rng.Float64() < c.spec.ErrProb:
		return ChaosError, delay
	default:
		return ChaosNone, delay
	}
}
