package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"continuum/internal/faas"
)

func startServer(t *testing.T) (*Server, string) {
	t.Helper()
	reg := faas.NewRegistry()
	reg.Register("echo", func(p []byte) ([]byte, error) { return p, nil })
	reg.Register("upper", func(p []byte) ([]byte, error) {
		return bytes.ToUpper(p), nil
	})
	reg.Register("fail", func([]byte) ([]byte, error) { return nil, errors.New("nope") })
	ep := faas.NewEndpoint(faas.EndpointConfig{
		Name: "local", Capacity: 4, ColdStart: 0, WarmTTL: time.Minute,
	}, reg)
	srv := &Server{Invoker: ep, Batcher: ep, Registry: reg, Endpoints: []*faas.Endpoint{ep}}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)
	t.Cleanup(srv.Close)
	return srv, lis.Addr().String()
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := Request{Op: OpInvoke, Fn: "f", Payload: []byte{1, 2, 3}}
	if err := WriteFrame(&buf, &in); err != nil {
		t.Fatal(err)
	}
	var out Request
	if err := ReadFrame(&buf, &out); err != nil {
		t.Fatal(err)
	}
	if out.Op != in.Op || out.Fn != in.Fn || !bytes.Equal(out.Payload, in.Payload) {
		t.Fatalf("round trip mismatch: %+v", out)
	}
}

func TestReadFrameRejectsHugeLength(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	var req Request
	err := ReadFrame(bytes.NewReader(hdr[:]), &req)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v", err)
	}
}

func TestReadFrameShortBody(t *testing.T) {
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 100)
	buf.Write(hdr[:])
	buf.WriteString("{}") // only 2 bytes of promised 100
	var req Request
	if err := ReadFrame(&buf, &req); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

func TestClientInvoke(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	out, err := c.Invoke("upper", []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "HELLO" {
		t.Fatalf("out = %q", out)
	}
}

func TestClientPing(t *testing.T) {
	_, addr := startServer(t)
	c, _ := Dial(addr)
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
}

func TestClientInvokeError(t *testing.T) {
	_, addr := startServer(t)
	c, _ := Dial(addr)
	defer c.Close()
	_, err := c.Invoke("fail", nil)
	if err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("err = %v", err)
	}
	// Connection must survive an application error.
	if _, err := c.Invoke("echo", []byte("still alive")); err != nil {
		t.Fatalf("connection dead after app error: %v", err)
	}
}

func TestClientUnknownFunction(t *testing.T) {
	_, addr := startServer(t)
	c, _ := Dial(addr)
	defer c.Close()
	if _, err := c.Invoke("ghost", nil); err == nil {
		t.Fatal("unknown function succeeded")
	}
}

func TestClientList(t *testing.T) {
	_, addr := startServer(t)
	c, _ := Dial(addr)
	defer c.Close()
	names, err := c.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 {
		t.Fatalf("names = %v", names)
	}
}

func TestClientStats(t *testing.T) {
	_, addr := startServer(t)
	c, _ := Dial(addr)
	defer c.Close()
	c.Invoke("echo", []byte("x"))
	c.Invoke("echo", []byte("y"))
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 1 || stats[0].Invocations != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats[0].ColdStarts != 1 || stats[0].WarmHits != 1 {
		t.Fatalf("cold/warm = %d/%d", stats[0].ColdStarts, stats[0].WarmHits)
	}
}

func TestClientBatch(t *testing.T) {
	_, addr := startServer(t)
	c, _ := Dial(addr)
	defer c.Close()
	outs, err := c.InvokeBatch("upper", [][]byte{[]byte("a"), []byte("b")})
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 2 || string(outs[0]) != "A" || string(outs[1]) != "B" {
		t.Fatalf("outs = %q", outs)
	}
}

func TestConcurrentClients(t *testing.T) {
	_, addr := startServer(t)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer c.Close()
			for j := 0; j < 20; j++ {
				out, err := c.Invoke("echo", []byte("m"))
				if err != nil || string(out) != "m" {
					t.Errorf("invoke: %q, %v", out, err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestUnknownOp(t *testing.T) {
	_, addr := startServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := WriteFrame(conn, &Request{Op: "nonsense"}); err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := ReadFrame(conn, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.OK || resp.Error == "" {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestServerCloseUnblocksServe(t *testing.T) {
	srv, _ := startServer(t)
	done := make(chan struct{})
	go func() {
		srv.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Close hung")
	}
}
