package wire

// Wire hot-path benchmarks. `make bench-wire` runs these with -benchmem
// and continuum-bench -wire records the e2e throughput trajectory in
// BENCH_wire.json.

import (
	"bytes"
	"net"
	"runtime"
	"testing"
	"time"

	"continuum/internal/faas"
)

// benchServer starts a loopback echo server sized so the endpoint never
// queues during a parallel benchmark.
func benchServer(b *testing.B) string {
	b.Helper()
	reg := faas.NewRegistry()
	reg.Register("echo", func(p []byte) ([]byte, error) { return p, nil })
	ep := faas.NewEndpoint(faas.EndpointConfig{
		Name: "bench", Capacity: 256, WarmTTL: time.Minute,
	}, reg)
	srv := &Server{Invoker: ep, Registry: reg, Endpoints: []*faas.Endpoint{ep}, Workers: 256}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(lis)
	b.Cleanup(srv.Close)
	return lis.Addr().String()
}

func benchClient(b *testing.B, addr string, forceJSON bool) *Client {
	b.Helper()
	c, err := Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	if forceJSON {
		c.ForceJSON()
	}
	b.Cleanup(func() { c.Close() })
	// Prime the connection (and codec negotiation) outside the timer.
	if _, err := c.Invoke("echo", []byte("warm")); err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkWireInvoke is the serial round-trip floor: one call in
// flight at a time over one connection.
func BenchmarkWireInvoke(b *testing.B) {
	for _, variant := range []struct {
		name      string
		forceJSON bool
	}{{"binary", false}, {"json", true}} {
		b.Run(variant.name, func(b *testing.B) {
			c := benchClient(b, benchServer(b), variant.forceJSON)
			payload := bytes.Repeat([]byte{'x'}, 256)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Invoke("echo", payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWireInvokeParallel is the multiplexing payoff: ~64
// concurrent callers share ONE connection. Compare ops/sec against
// BenchmarkWireInvoke for the pipelining speedup.
func BenchmarkWireInvokeParallel(b *testing.B) {
	for _, variant := range []struct {
		name      string
		forceJSON bool
	}{{"binary", false}, {"json", true}} {
		b.Run(variant.name, func(b *testing.B) {
			c := benchClient(b, benchServer(b), variant.forceJSON)
			payload := bytes.Repeat([]byte{'x'}, 256)
			// RunParallel spawns GOMAXPROCS*parallelism goroutines; aim
			// for ~64 in-flight calls regardless of core count.
			par := 64 / runtime.GOMAXPROCS(0)
			if par < 1 {
				par = 1
			}
			b.SetParallelism(par)
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := c.Invoke("echo", payload); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkWireCodec isolates encode+decode cost for a 64 KiB payload —
// the B/op gap is base64-in-JSON vs raw bytes.
func BenchmarkWireCodec(b *testing.B) {
	payload := bytes.Repeat([]byte{0xAB}, 64<<10)
	req := &Request{Op: OpInvoke, ID: "bench-1", Fn: "echo", Payload: payload}
	for _, variant := range []struct {
		name  string
		codec Codec
	}{{"json-64k", CodecJSON}, {"binary-64k", CodecBinary}} {
		b.Run(variant.name, func(b *testing.B) {
			var buf bytes.Buffer
			if err := WriteFrameCodec(&buf, req, variant.codec); err != nil {
				b.Fatal(err)
			}
			frame := append([]byte(nil), buf.Bytes()...)
			b.SetBytes(int64(len(frame)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf.Reset()
				if err := WriteFrameCodec(&buf, req, variant.codec); err != nil {
					b.Fatal(err)
				}
				out := new(Request)
				if _, err := ReadFrameCodec(bytes.NewReader(frame), out); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
