package wire

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"continuum/internal/metrics"
	"continuum/internal/retry"
	"continuum/internal/trace"
)

// ErrAllBreakersOpen is returned (and retried with backoff — cooldowns
// eventually admit half-open probes) when every endpoint's circuit
// breaker is refusing traffic.
var ErrAllBreakersOpen = errors.New("wire: all endpoint breakers open")

// ErrNoEndpoints is returned when the client's endpoint set is empty —
// only possible on a Dynamic client before membership arrives (or after
// every member left). It is retried with backoff: a router's client
// set refills as daemons register, so a briefly-empty federation is a
// transient, not a verdict.
var ErrNoEndpoints = errors.New("wire: no endpoints")

// DefaultPoolSize is the number of pooled connections kept per endpoint
// when ReliableConfig.PoolSize is zero. Each connection is itself
// multiplexed, so a small pool is enough to spread load while keeping
// failover and concurrency from paying per-call dials.
const DefaultPoolSize = 2

// ReliableConfig parameterizes a ReliableClient.
type ReliableConfig struct {
	// Addrs lists the federation's endpoint addresses. Attempts rotate
	// across them, so a retry after a failure naturally fails over.
	// SetEndpoints replaces the set at runtime.
	Addrs []string
	// Dynamic permits an empty initial Addrs: the set is expected to be
	// populated later with SetEndpoints (a continuum-router builds its
	// client this way and feeds it the registry's live membership).
	// Calls made while the set is empty fail with ErrNoEndpoints, which
	// retries with backoff.
	Dynamic bool
	// PoolSize is how many multiplexed connections to keep per endpoint
	// (0 = DefaultPoolSize). Calls round-robin across the pool; broken
	// connections are redialed in place.
	PoolSize int
	// Retry is the backoff policy (zero value → retry defaults). Its
	// Retryable classifier defaults to IsRetryable plus
	// ErrAllBreakersOpen.
	Retry retry.Policy
	// Breaker parameterizes the per-endpoint circuit breakers (zero
	// value → breaker defaults).
	Breaker retry.BreakerConfig
	// CallTimeout bounds each round trip (0 = none). Connects are always
	// bounded by DefaultDialTimeout.
	CallTimeout time.Duration
	// Hedge enables hedged requests: a call still in flight after the
	// hedge delay fires a second identical request at a different
	// endpoint, the first response wins, and the stale arm is cancelled.
	// The zero value disables hedging.
	Hedge HedgeConfig
	// Budget, when set, is the token-bucket retry budget every retry
	// attempt AND every hedge arm draws from (they are the same kind of
	// extra load on the fleet, so they share one bucket). An exhausted
	// budget suppresses the hedge (the primary keeps running) and fails a
	// would-be retry with retry.ErrBudgetExhausted — deliberately
	// non-retryable, so a browned-out federation sees the client fleet's
	// extra traffic throttle to Budget.Ratio × its success rate instead
	// of a retry storm. Share one Budget across every client that talks
	// to the same backends. Nil means unlimited (the old behavior).
	Budget *retry.Budget
	// Metrics, when set, receives the reliability counters:
	//
	//	wire_breaker_state{ep}        0 closed, 1 open, 2 half-open
	//	wire_breaker_trips_total{ep}  transitions into open
	//	wire_client_retries_total     attempts after the first
	//	wire_client_failovers_total   attempts on a different endpoint
	//	                              than the previous try
	//	wire_conn_reuse_total         calls served by an already-open
	//	                              pooled connection (vs a fresh dial)
	//	wire_hedges_total             hedge arms launched
	//	wire_hedge_wins_total         calls won by the hedge arm
	//	wire_retry_budget_exhausted_total
	//	                              retries failed / hedges suppressed
	//	                              by an empty retry budget
	Metrics *metrics.Registry

	// Spans, when set, records the caller's half of every traced
	// invocation: a root client span per InvokeContext call (started
	// fresh when the context carries no trace, so this is where a trace
	// is usually born), one attempt span per retry attempt and hedge arm
	// (attributed with endpoint, failover, and cancellation), and
	// breaker-open skips. Pooled connections share the store, so their
	// send spans land in the same place. Nil records nothing and keeps
	// the call path span-free.
	Spans *trace.SpanStore
	// Service labels this client's spans (default "client").
	Service string
}

// Hedge defaults.
const (
	// DefaultHedgeQuantile is the latency quantile the derived hedge
	// delay tracks when HedgeConfig.Quantile is zero.
	DefaultHedgeQuantile = 0.99
	// DefaultHedgeMinSamples is how many completed calls the derived
	// delay needs before hedging engages.
	DefaultHedgeMinSamples = 50
	// DefaultHedgeMinDelay floors the derived delay so a burst of fast
	// calls cannot make the client hedge everything.
	DefaultHedgeMinDelay = time.Millisecond
)

// HedgeConfig parameterizes hedged requests (see ReliableConfig.Hedge).
// Hedging attacks tail latency: the slowest fraction of calls — a GC
// pause, a queue pileup, a cold container on one endpoint — is re-issued
// elsewhere instead of waited out. Each arm runs under the per-endpoint
// circuit breakers exactly like a normal call, except that the cancelled
// loser reports no outcome (the endpoint was not at fault), so hedging
// cannot double-trip a breaker.
type HedgeConfig struct {
	// Enabled turns hedging on. Hedging also requires at least two
	// endpoints — the hedge arm always targets a different one.
	Enabled bool
	// Delay is the fixed in-flight time before the hedge arm fires.
	// 0 derives the delay from the client's own observed latency
	// distribution (see Quantile/MinSamples/MinDelay).
	Delay time.Duration
	// Quantile is the observed-latency quantile the derived delay tracks
	// (0 = DefaultHedgeQuantile, i.e. p99: only the slowest ~1% of calls
	// ever grow a second arm).
	Quantile float64
	// MinSamples is how many completed calls the derived delay needs
	// before hedging engages (0 = DefaultHedgeMinSamples).
	MinSamples int
	// MinDelay floors the derived delay (0 = DefaultHedgeMinDelay).
	MinDelay time.Duration
}

// repEndpoint is one endpoint's client-side state: a small pool of
// lazily dialed, reusable multiplexed connections and the circuit
// breaker guarding them.
type repEndpoint struct {
	addr    string
	breaker *retry.Breaker
	reuse   *metrics.Counter // nil without a registry
	spans   *trace.SpanStore // handed to dialed clients, nil = untraced
	service string

	mu    sync.Mutex
	conns []*Client // fixed-size pool; nil slots are dialed on demand
	next  int       // round-robin cursor
}

// get returns a pooled connection, dialing (or redialing a broken
// slot) if needed. Slots rotate round-robin so concurrent calls spread
// across the pool.
func (e *repEndpoint) get(ctx context.Context, callTimeout time.Duration) (*Client, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	idx := e.next % len(e.conns)
	e.next++
	if c := e.conns[idx]; c != nil {
		if !c.Broken() {
			if e.reuse != nil {
				e.reuse.Inc()
			}
			return c, nil
		}
		c.Close()
		e.conns[idx] = nil
	}
	c, err := DialContext(ctx, e.addr)
	if err != nil {
		return nil, err
	}
	if callTimeout > 0 {
		c.SetCallTimeout(callTimeout)
	}
	if e.spans != nil {
		c.SetSpans(e.spans, e.service)
	}
	e.conns[idx] = c
	return c, nil
}

// closeConns closes every pooled connection, leaving empty slots that
// would redial on demand — called when the endpoint leaves the set, so
// nothing will. In-flight calls on the closed connections fail with a
// retryable transport error and fail over.
func (e *repEndpoint) closeConns() {
	e.mu.Lock()
	conns := e.conns
	e.conns = make([]*Client, len(conns))
	e.mu.Unlock()
	for _, c := range conns {
		if c != nil {
			c.Close()
		}
	}
}

// discard drops a broken connection so its slot redials. Only the
// exact client that failed is discarded — a concurrent caller may
// already have replaced it.
func (e *repEndpoint) discard(c *Client) {
	e.mu.Lock()
	for i, have := range e.conns {
		if have == c {
			e.conns[i] = nil
			break
		}
	}
	e.mu.Unlock()
	c.Close()
}

// ReliableClient invokes functions across a federation of endpoints with
// retry (exponential backoff, full jitter), failover, per-endpoint
// circuit breakers, and a per-endpoint pool of multiplexed connections.
// It is safe for concurrent use. A transport failure or a server
// response marked retryable moves the attempt to the next endpoint;
// definitive application errors return immediately.
type ReliableClient struct {
	cfg ReliableConfig

	// set is the immutable endpoint-set snapshot calls read lock-free;
	// epMu serializes SetEndpoints writers (the read path never takes it).
	set  atomic.Pointer[epSet]
	epMu sync.Mutex

	mu   sync.Mutex
	next int // round-robin start for the next call

	lat               *metrics.Histogram // completed-call latency, seconds
	hedges, hedgeWins atomic.Int64
	budgetDenied      atomic.Int64

	retries, failovers  *metrics.Counter // nil without a registry
	reuse               *metrics.Counter
	hedgesC, hedgeWinsC *metrics.Counter
	budgetDeniedC       *metrics.Counter
}

// epSet is one immutable snapshot of the endpoint set. Membership
// changes build a fresh snapshot and swap the pointer, so the call path
// reads a consistent set without locks while SetEndpoints reconciles.
type epSet struct {
	list   []*repEndpoint
	byAddr map[string]*repEndpoint
}

// NewReliableClient builds a client over the configured endpoints. No
// connection is made until the first call.
func NewReliableClient(cfg ReliableConfig) (*ReliableClient, error) {
	if len(cfg.Addrs) == 0 && !cfg.Dynamic {
		return nil, errors.New("wire: reliable client needs at least one address")
	}
	r := &ReliableClient{cfg: cfg, lat: metrics.NewHistogram()}
	if cfg.Metrics != nil {
		r.retries = cfg.Metrics.Counter("wire_client_retries_total")
		r.failovers = cfg.Metrics.Counter("wire_client_failovers_total")
		r.reuse = cfg.Metrics.Counter("wire_conn_reuse_total")
		r.hedgesC = cfg.Metrics.Counter("wire_hedges_total")
		r.hedgeWinsC = cfg.Metrics.Counter("wire_hedge_wins_total")
		r.budgetDeniedC = cfg.Metrics.Counter("wire_retry_budget_exhausted_total")
	}
	set := &epSet{byAddr: make(map[string]*repEndpoint, len(cfg.Addrs))}
	for _, addr := range cfg.Addrs {
		if _, dup := set.byAddr[addr]; dup {
			continue
		}
		ep := r.newEndpoint(addr)
		set.list = append(set.list, ep)
		set.byAddr[addr] = ep
	}
	r.set.Store(set)
	return r, nil
}

// newEndpoint builds one endpoint's client-side state (breaker, metrics
// hookup, empty connection pool).
func (r *ReliableClient) newEndpoint(addr string) *repEndpoint {
	pool := r.cfg.PoolSize
	if pool <= 0 {
		pool = DefaultPoolSize
	}
	bc := r.cfg.Breaker
	if r.cfg.Metrics != nil {
		state := r.cfg.Metrics.Gauge(metrics.Label("wire_breaker_state", "ep", addr))
		state.Set(float64(retry.Closed))
		trips := r.cfg.Metrics.Counter(metrics.Label("wire_breaker_trips_total", "ep", addr))
		bc.OnStateChange = func(_, to retry.State) {
			state.Set(float64(to))
			if to == retry.Open {
				trips.Inc()
			}
		}
	}
	return &repEndpoint{
		addr:    addr,
		breaker: retry.NewBreaker(bc),
		reuse:   r.reuse,
		spans:   r.cfg.Spans,
		service: r.service(),
		conns:   make([]*Client, pool),
	}
}

// snapshot returns the current endpoint set.
func (r *ReliableClient) snapshot() *epSet { return r.set.Load() }

// SetEndpoints replaces the endpoint set, reconciling against the
// current one: endpoints whose address is kept retain their breaker
// state, latency history, and pooled connections; new addresses start
// fresh; removed addresses have their pools closed, which fails any
// call still in flight on them with a retryable transport error so it
// fails over to a surviving endpoint. Safe for concurrent use with the
// call path — calls read an immutable snapshot. Duplicate addresses
// collapse to one endpoint.
func (r *ReliableClient) SetEndpoints(addrs []string) {
	r.epMu.Lock()
	old := r.snapshot()
	next := &epSet{byAddr: make(map[string]*repEndpoint, len(addrs))}
	for _, addr := range addrs {
		if _, dup := next.byAddr[addr]; dup {
			continue
		}
		ep := old.byAddr[addr]
		if ep == nil {
			ep = r.newEndpoint(addr)
		}
		next.list = append(next.list, ep)
		next.byAddr[addr] = ep
	}
	r.set.Store(next)
	r.epMu.Unlock()
	for addr, ep := range old.byAddr {
		if next.byAddr[addr] == nil {
			ep.closeConns()
		}
	}
}

// EndpointAddrs returns the current endpoint addresses, in set order.
func (r *ReliableClient) EndpointAddrs() []string {
	set := r.snapshot()
	out := make([]string, len(set.list))
	for i, ep := range set.list {
		out[i] = ep.addr
	}
	return out
}

// service returns the span service label.
func (r *ReliableClient) service() string {
	if r.cfg.Service != "" {
		return r.cfg.Service
	}
	return "client"
}

// armSpan opens one attempt/arm span when the call is traced (a traced
// context and a configured store), attributed with the endpoint, the
// hedge arm, and whether this attempt failed over from another endpoint.
func (r *ReliableClient) armSpan(ctx context.Context, ep *repEndpoint, attempt int, arm string, failover bool) *trace.ActiveSpan {
	if r.cfg.Spans == nil {
		return nil
	}
	tc, ok := trace.ContextSpan(ctx)
	if !ok {
		return nil
	}
	sp := r.cfg.Spans.StartSpan(tc, r.service(), "attempt", trace.KindAttempt)
	sp.SetAttempt(attempt)
	sp.SetAttr("ep", ep.addr)
	if arm != "" {
		sp.SetAttr("arm", arm)
	}
	if failover {
		sp.SetAttr("failover", "true")
	}
	return sp
}

// skipSpan records a breaker-open skip: the attempt found no admitting
// endpoint — a delay that would otherwise be invisible in a trace.
func (r *ReliableClient) skipSpan(ctx context.Context, attempt int) {
	if r.cfg.Spans == nil {
		return
	}
	tc, ok := trace.ContextSpan(ctx)
	if !ok {
		return
	}
	sp := r.cfg.Spans.StartSpan(tc, r.service(), "breaker-open", trace.KindInternal)
	sp.SetAttempt(attempt)
	sp.SetErr(ErrAllBreakersOpen)
	sp.End()
}

// policy returns the retry policy with the default classifier filled in.
func (r *ReliableClient) policy() retry.Policy {
	p := r.cfg.Retry
	if p.Retryable == nil {
		p.Retryable = func(err error) bool {
			return errors.Is(err, ErrAllBreakersOpen) || errors.Is(err, ErrNoEndpoints) || IsRetryable(err)
		}
	}
	return p
}

// pick selects the next endpoint whose breaker admits traffic, rotating
// round-robin so consecutive attempts (and concurrent calls) spread
// across the federation. Returns nil when the set is empty or every
// breaker refuses; noEndpointsErr distinguishes the two.
func (r *ReliableClient) pick() *repEndpoint {
	eps := r.snapshot().list
	if len(eps) == 0 {
		return nil
	}
	r.mu.Lock()
	start := r.next
	r.next++
	r.mu.Unlock()
	for i := 0; i < len(eps); i++ {
		ep := eps[(start+i)%len(eps)]
		if ep.breaker.Allow() {
			return ep
		}
	}
	return nil
}

// pickPreferred walks a preference-ordered address list (a routing
// policy's output), consuming entries via *idx so consecutive attempts
// advance down the list instead of re-trying the same first choice.
// Addresses no longer in the set — membership moved on since the
// preference was computed — or refused by their breaker are skipped.
// Returns nil when the list is exhausted; the caller falls back to
// pick().
func (r *ReliableClient) pickPreferred(prefer []string, idx *int) *repEndpoint {
	set := r.snapshot()
	for *idx < len(prefer) {
		addr := prefer[*idx]
		*idx++
		if ep := set.byAddr[addr]; ep != nil && ep.breaker.Allow() {
			return ep
		}
	}
	return nil
}

// noEndpointsErr maps a nil pick to the right verdict: an empty set is
// ErrNoEndpoints (membership may arrive), a populated one with no
// admitting breaker is ErrAllBreakersOpen.
func (r *ReliableClient) noEndpointsErr() error {
	if len(r.snapshot().list) == 0 {
		return ErrNoEndpoints
	}
	return ErrAllBreakersOpen
}

// settle reports an attempt's outcome to the endpoint's breaker and
// connection pool. A cancelled arm (the hedge race was decided elsewhere)
// reports no verdict: the endpoint was not at fault, so the breaker sees
// Cancel — which only returns an admitted half-open probe slot — and the
// connection stays pooled (multiplexing cleans up the abandoned call).
func settle(ep *repEndpoint, c *Client, err error) {
	if err == nil {
		ep.breaker.Success()
		return
	}
	if errors.Is(err, context.Canceled) {
		ep.breaker.Cancel()
		return
	}
	ep.breaker.Failure()
	var re *RemoteError
	if c != nil && !errors.As(err, &re) {
		// Transport-level failure: the connection is suspect.
		ep.discard(c)
	}
}

// spendBudget draws one retry/hedge token, counting a denial. Nil
// budget always grants.
func (r *ReliableClient) spendBudget() bool {
	if r.cfg.Budget.Spend() {
		return true
	}
	r.budgetDenied.Add(1)
	if r.budgetDeniedC != nil {
		r.budgetDeniedC.Inc()
	}
	return false
}

// do runs op against successive endpoints under the retry policy.
func (r *ReliableClient) do(ctx context.Context, op func(*Client) error) error {
	var last *repEndpoint
	return r.policy().Do(ctx, func(attempt int) error {
		if attempt > 0 && !r.spendBudget() {
			return fmt.Errorf("wire: retry suppressed: %w", retry.ErrBudgetExhausted)
		}
		ep := r.pick()
		if ep == nil {
			return r.noEndpointsErr()
		}
		if attempt > 0 {
			if r.retries != nil {
				r.retries.Inc()
			}
			if last != nil && ep != last && r.failovers != nil {
				r.failovers.Inc()
			}
		}
		last = ep
		c, err := ep.get(ctx, r.cfg.CallTimeout)
		if err != nil {
			settle(ep, nil, err)
			return err
		}
		if err := op(c); err != nil {
			settle(ep, c, err)
			return err
		}
		ep.breaker.Success()
		r.cfg.Budget.Success()
		return nil
	})
}

// Invoke calls fn with retry and failover.
func (r *ReliableClient) Invoke(fn string, payload []byte) ([]byte, error) {
	return r.InvokeContext(context.Background(), fn, payload)
}

// InvokeContext calls fn with retry, failover, and (when configured)
// hedging under ctx; ctx bounds the whole retry loop including backoff
// sleeps. With a span store configured the call records a root client
// span — joining ctx's trace when it carries one, starting a new trace
// otherwise — and one span per attempt, hedge arm, and breaker skip.
func (r *ReliableClient) InvokeContext(ctx context.Context, fn string, payload []byte) ([]byte, error) {
	return r.invoke(ctx, fn, payload, nil)
}

// InvokeRouted is InvokeContext steered by a routing policy: prefer is
// a preference-ordered address list (a consistent-hash ring walk, a
// least-loaded ordering) that successive attempts consume in order —
// the first attempt takes the first admitted preferred endpoint, a
// retry after its failure moves to the next, and an exhausted list
// falls back to plain round-robin over whatever admits traffic. A
// preferred address that already left the set is skipped, so a stale
// preference degrades to ordinary failover instead of an error. This is
// the router's invocation path: policy chooses, ReliableClient
// retries/hedges/breaks exactly as for any other call.
func (r *ReliableClient) InvokeRouted(ctx context.Context, fn string, payload []byte, prefer []string) ([]byte, error) {
	return r.invoke(ctx, fn, payload, prefer)
}

func (r *ReliableClient) invoke(ctx context.Context, fn string, payload []byte, prefer []string) ([]byte, error) {
	var root *trace.ActiveSpan
	if r.cfg.Spans != nil {
		tc, _ := trace.ContextSpan(ctx)
		root = r.cfg.Spans.StartSpan(tc, r.service(), "invoke "+fn, trace.KindClient)
		ctx = trace.NewContext(ctx, root.Context())
	}
	var out []byte
	var last *repEndpoint
	preferIdx := 0
	err := r.policy().Do(ctx, func(attempt int) error {
		// Every attempt after the first is extra fleet load and must be
		// paid for from the shared budget — the same bucket hedge arms
		// draw from. ErrBudgetExhausted is non-retryable by design, so an
		// empty bucket fails the call here rather than queueing another
		// attempt.
		if attempt > 0 && !r.spendBudget() {
			return fmt.Errorf("wire: retry suppressed: %w", retry.ErrBudgetExhausted)
		}
		ep := r.pickPreferred(prefer, &preferIdx)
		if ep == nil {
			ep = r.pick()
		}
		if ep == nil {
			if err := r.noEndpointsErr(); errors.Is(err, ErrNoEndpoints) {
				return err
			}
			r.skipSpan(ctx, attempt)
			return ErrAllBreakersOpen
		}
		failover := false
		if attempt > 0 {
			if r.retries != nil {
				r.retries.Inc()
			}
			if last != nil && ep != last {
				failover = true
				if r.failovers != nil {
					r.failovers.Inc()
				}
			}
		}
		last = ep
		res, err := r.invokeAttempt(ctx, ep, fn, payload, attempt, failover)
		if err != nil {
			return err
		}
		r.cfg.Budget.Success()
		out = res
		return nil
	})
	root.SetErr(err)
	root.End()
	if err != nil {
		return nil, err
	}
	return out, nil
}

// attemptOn runs one call arm against one endpoint and settles its
// breaker/pool outcome. The breaker Allow for ep has already been spent
// (by pick or pickOther). Traced calls record an attempt span, which
// becomes the parent of the connection's send span (and, transitively,
// the server's spans); a cancelled arm — the hedge race was decided
// elsewhere — is marked cancelled rather than failed-by-endpoint.
func (r *ReliableClient) attemptOn(ctx context.Context, ep *repEndpoint, fn string, payload []byte, attempt int, arm string, failover bool) ([]byte, error) {
	sp := r.armSpan(ctx, ep, attempt, arm, failover)
	if sp != nil {
		ctx = trace.NewContext(ctx, sp.Context())
	}
	c, err := ep.get(ctx, r.cfg.CallTimeout)
	if err != nil {
		settle(ep, nil, err)
		sp.SetErr(err)
		sp.End()
		return nil, err
	}
	start := time.Now()
	out, err := c.InvokeContext(ctx, fn, payload)
	settle(ep, c, err)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			sp.SetAttr("cancelled", "true")
		}
		sp.SetErr(err)
		sp.End()
		return nil, err
	}
	r.lat.Add(time.Since(start).Seconds())
	sp.End()
	return out, nil
}

// armResult is one arm's outcome in a hedged race.
type armResult struct {
	ep  *repEndpoint
	out []byte
	err error
}

// invokeAttempt runs one logical attempt: a single call, or — when the
// hedge delay elapses with the primary still in flight — a two-arm race
// against distinct endpoints where the first success wins and the loser
// is cancelled. In a hedged race each arm records its own span
// ("primary"/"hedge"); the loser's ends cancelled, so one trace shows
// both arms and which one won.
func (r *ReliableClient) invokeAttempt(ctx context.Context, ep *repEndpoint, fn string, payload []byte, attempt int, failover bool) ([]byte, error) {
	delay, ok := r.hedgeDelay()
	if !ok {
		return r.attemptOn(ctx, ep, fn, payload, attempt, "", failover)
	}

	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make(chan armResult, 2)
	arm := func(ep *repEndpoint, label string, failedOver bool) {
		out, err := r.attemptOn(actx, ep, fn, payload, attempt, label, failedOver)
		results <- armResult{ep: ep, out: out, err: err}
	}
	go arm(ep, "primary", failover)

	timer := time.NewTimer(delay)
	defer timer.Stop()

	pending := 1
	hedged := false
	var firstErr error
	for {
		select {
		case <-timer.C:
			if hedged {
				continue
			}
			hedged = true
			backup := r.pickOther(ep)
			if backup == nil {
				continue // no second endpoint admits traffic; race stays 1-arm
			}
			if !r.spendBudget() {
				// Hedges spend from the same bucket as retries: with the
				// budget dry the race stays one-arm — the primary is
				// still in flight, so nothing fails, the fleet just stops
				// multiplying load. Return the breaker slot the pick
				// spent (it may have been a half-open probe).
				backup.breaker.Cancel()
				continue
			}
			r.hedges.Add(1)
			if r.hedgesC != nil {
				r.hedgesC.Inc()
			}
			pending++
			go arm(backup, "hedge", false)
		case res := <-results:
			pending--
			if res.err == nil {
				if res.ep != ep {
					r.hedgeWins.Add(1)
					if r.hedgeWinsC != nil {
						r.hedgeWinsC.Inc()
					}
				}
				cancel() // preempt the losing arm; it settles as Cancel
				return res.out, nil
			}
			if firstErr == nil && !errors.Is(res.err, context.Canceled) {
				firstErr = res.err
			}
			if pending == 0 {
				if firstErr == nil {
					firstErr = res.err
				}
				return nil, firstErr
			}
		}
	}
}

// pickOther selects an endpoint other than avoid whose breaker admits
// traffic, rotating round-robin like pick. Returns nil with fewer than
// two endpoints or when no other breaker allows.
func (r *ReliableClient) pickOther(avoid *repEndpoint) *repEndpoint {
	eps := r.snapshot().list
	if len(eps) < 2 {
		return nil
	}
	r.mu.Lock()
	start := r.next
	r.next++
	r.mu.Unlock()
	for i := 0; i < len(eps); i++ {
		ep := eps[(start+i)%len(eps)]
		if ep == avoid {
			continue
		}
		if ep.breaker.Allow() {
			return ep
		}
	}
	return nil
}

// hedgeDelay returns the in-flight time after which a call grows a second
// arm, and whether hedging applies at all right now. A fixed Delay always
// applies; a derived delay waits for MinSamples completed calls and then
// tracks the configured latency quantile, floored at MinDelay.
func (r *ReliableClient) hedgeDelay() (time.Duration, bool) {
	h := r.cfg.Hedge
	if !h.Enabled || len(r.snapshot().list) < 2 {
		return 0, false
	}
	if h.Delay > 0 {
		return h.Delay, true
	}
	min := h.MinSamples
	if min <= 0 {
		min = DefaultHedgeMinSamples
	}
	if r.lat.Count() < int64(min) {
		return 0, false
	}
	q := h.Quantile
	if q <= 0 {
		q = DefaultHedgeQuantile
	}
	d := time.Duration(r.lat.Quantile(q) * float64(time.Second))
	floor := h.MinDelay
	if floor <= 0 {
		floor = DefaultHedgeMinDelay
	}
	if d < floor {
		d = floor
	}
	return d, true
}

// HedgeStats returns how many hedge arms were launched and how many calls
// the hedge arm won.
func (r *ReliableClient) HedgeStats() (launched, wins int64) {
	return r.hedges.Load(), r.hedgeWins.Load()
}

// BudgetDenials returns how many retries were failed and hedge arms
// suppressed by an exhausted retry budget.
func (r *ReliableClient) BudgetDenials() int64 {
	return r.budgetDenied.Load()
}

// Ping round-trips against any live endpoint.
func (r *ReliableClient) Ping() error {
	return r.do(context.Background(), func(c *Client) error { return c.Ping() })
}

// List returns the function names registered on any live endpoint, with
// retry and failover — a router forwards the list op through this, so a
// federation answers with whichever member responds first.
func (r *ReliableClient) List() ([]string, error) {
	var names []string
	err := r.do(context.Background(), func(c *Client) error {
		var err error
		names, err = c.List()
		return err
	})
	return names, err
}

// BreakerStates returns each endpoint's current breaker state, keyed by
// address — continuumctl renders this after a failover-enabled run.
func (r *ReliableClient) BreakerStates() map[string]retry.State {
	eps := r.snapshot().list
	out := make(map[string]retry.State, len(eps))
	for _, ep := range eps {
		out[ep.addr] = ep.breaker.State()
	}
	return out
}

// Close closes every pooled connection.
func (r *ReliableClient) Close() error {
	for _, ep := range r.snapshot().list {
		ep.closeConns()
	}
	return nil
}
