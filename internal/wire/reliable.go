package wire

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"continuum/internal/metrics"
	"continuum/internal/retry"
)

// ErrAllBreakersOpen is returned (and retried with backoff — cooldowns
// eventually admit half-open probes) when every endpoint's circuit
// breaker is refusing traffic.
var ErrAllBreakersOpen = errors.New("wire: all endpoint breakers open")

// DefaultPoolSize is the number of pooled connections kept per endpoint
// when ReliableConfig.PoolSize is zero. Each connection is itself
// multiplexed, so a small pool is enough to spread load while keeping
// failover and concurrency from paying per-call dials.
const DefaultPoolSize = 2

// ReliableConfig parameterizes a ReliableClient.
type ReliableConfig struct {
	// Addrs lists the federation's endpoint addresses. Attempts rotate
	// across them, so a retry after a failure naturally fails over.
	Addrs []string
	// PoolSize is how many multiplexed connections to keep per endpoint
	// (0 = DefaultPoolSize). Calls round-robin across the pool; broken
	// connections are redialed in place.
	PoolSize int
	// Retry is the backoff policy (zero value → retry defaults). Its
	// Retryable classifier defaults to IsRetryable plus
	// ErrAllBreakersOpen.
	Retry retry.Policy
	// Breaker parameterizes the per-endpoint circuit breakers (zero
	// value → breaker defaults).
	Breaker retry.BreakerConfig
	// CallTimeout bounds each round trip (0 = none). Connects are always
	// bounded by DefaultDialTimeout.
	CallTimeout time.Duration
	// Metrics, when set, receives the reliability counters:
	//
	//	wire_breaker_state{ep}        0 closed, 1 open, 2 half-open
	//	wire_breaker_trips_total{ep}  transitions into open
	//	wire_client_retries_total     attempts after the first
	//	wire_client_failovers_total   attempts on a different endpoint
	//	                              than the previous try
	//	wire_conn_reuse_total         calls served by an already-open
	//	                              pooled connection (vs a fresh dial)
	Metrics *metrics.Registry
}

// repEndpoint is one endpoint's client-side state: a small pool of
// lazily dialed, reusable multiplexed connections and the circuit
// breaker guarding them.
type repEndpoint struct {
	addr    string
	breaker *retry.Breaker
	reuse   *metrics.Counter // nil without a registry

	mu    sync.Mutex
	conns []*Client // fixed-size pool; nil slots are dialed on demand
	next  int       // round-robin cursor
}

// get returns a pooled connection, dialing (or redialing a broken
// slot) if needed. Slots rotate round-robin so concurrent calls spread
// across the pool.
func (e *repEndpoint) get(ctx context.Context, callTimeout time.Duration) (*Client, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	idx := e.next % len(e.conns)
	e.next++
	if c := e.conns[idx]; c != nil {
		if !c.Broken() {
			if e.reuse != nil {
				e.reuse.Inc()
			}
			return c, nil
		}
		c.Close()
		e.conns[idx] = nil
	}
	c, err := DialContext(ctx, e.addr)
	if err != nil {
		return nil, err
	}
	if callTimeout > 0 {
		c.SetCallTimeout(callTimeout)
	}
	e.conns[idx] = c
	return c, nil
}

// discard drops a broken connection so its slot redials. Only the
// exact client that failed is discarded — a concurrent caller may
// already have replaced it.
func (e *repEndpoint) discard(c *Client) {
	e.mu.Lock()
	for i, have := range e.conns {
		if have == c {
			e.conns[i] = nil
			break
		}
	}
	e.mu.Unlock()
	c.Close()
}

// ReliableClient invokes functions across a federation of endpoints with
// retry (exponential backoff, full jitter), failover, per-endpoint
// circuit breakers, and a per-endpoint pool of multiplexed connections.
// It is safe for concurrent use. A transport failure or a server
// response marked retryable moves the attempt to the next endpoint;
// definitive application errors return immediately.
type ReliableClient struct {
	cfg ReliableConfig
	eps []*repEndpoint

	mu   sync.Mutex
	next int // round-robin start for the next call

	retries, failovers *metrics.Counter // nil without a registry
}

// NewReliableClient builds a client over the configured endpoints. No
// connection is made until the first call.
func NewReliableClient(cfg ReliableConfig) (*ReliableClient, error) {
	if len(cfg.Addrs) == 0 {
		return nil, errors.New("wire: reliable client needs at least one address")
	}
	pool := cfg.PoolSize
	if pool <= 0 {
		pool = DefaultPoolSize
	}
	r := &ReliableClient{cfg: cfg}
	var reuse *metrics.Counter
	if cfg.Metrics != nil {
		r.retries = cfg.Metrics.Counter("wire_client_retries_total")
		r.failovers = cfg.Metrics.Counter("wire_client_failovers_total")
		reuse = cfg.Metrics.Counter("wire_conn_reuse_total")
	}
	for _, addr := range cfg.Addrs {
		bc := cfg.Breaker
		if cfg.Metrics != nil {
			state := cfg.Metrics.Gauge(metrics.Label("wire_breaker_state", "ep", addr))
			state.Set(float64(retry.Closed))
			trips := cfg.Metrics.Counter(metrics.Label("wire_breaker_trips_total", "ep", addr))
			bc.OnStateChange = func(_, to retry.State) {
				state.Set(float64(to))
				if to == retry.Open {
					trips.Inc()
				}
			}
		}
		r.eps = append(r.eps, &repEndpoint{
			addr:    addr,
			breaker: retry.NewBreaker(bc),
			reuse:   reuse,
			conns:   make([]*Client, pool),
		})
	}
	return r, nil
}

// policy returns the retry policy with the default classifier filled in.
func (r *ReliableClient) policy() retry.Policy {
	p := r.cfg.Retry
	if p.Retryable == nil {
		p.Retryable = func(err error) bool {
			return errors.Is(err, ErrAllBreakersOpen) || IsRetryable(err)
		}
	}
	return p
}

// pick selects the next endpoint whose breaker admits traffic, rotating
// round-robin so consecutive attempts (and concurrent calls) spread
// across the federation. Returns nil when every breaker refuses.
func (r *ReliableClient) pick() *repEndpoint {
	r.mu.Lock()
	start := r.next
	r.next++
	r.mu.Unlock()
	for i := 0; i < len(r.eps); i++ {
		ep := r.eps[(start+i)%len(r.eps)]
		if ep.breaker.Allow() {
			return ep
		}
	}
	return nil
}

// do runs op against successive endpoints under the retry policy.
func (r *ReliableClient) do(ctx context.Context, op func(*Client) error) error {
	var last *repEndpoint
	return r.policy().Do(ctx, func(attempt int) error {
		ep := r.pick()
		if ep == nil {
			return ErrAllBreakersOpen
		}
		if attempt > 0 {
			if r.retries != nil {
				r.retries.Inc()
			}
			if last != nil && ep != last && r.failovers != nil {
				r.failovers.Inc()
			}
		}
		last = ep
		c, err := ep.get(ctx, r.cfg.CallTimeout)
		if err != nil {
			ep.breaker.Failure()
			return err
		}
		if err := op(c); err != nil {
			ep.breaker.Failure()
			var re *RemoteError
			if !errors.As(err, &re) {
				// Transport-level failure: the connection is suspect.
				ep.discard(c)
			}
			return err
		}
		ep.breaker.Success()
		return nil
	})
}

// Invoke calls fn with retry and failover.
func (r *ReliableClient) Invoke(fn string, payload []byte) ([]byte, error) {
	return r.InvokeContext(context.Background(), fn, payload)
}

// InvokeContext calls fn with retry and failover under ctx; ctx bounds
// the whole retry loop including backoff sleeps.
func (r *ReliableClient) InvokeContext(ctx context.Context, fn string, payload []byte) ([]byte, error) {
	var out []byte
	err := r.do(ctx, func(c *Client) error {
		var err error
		out, err = c.InvokeContext(ctx, fn, payload)
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Ping round-trips against any live endpoint.
func (r *ReliableClient) Ping() error {
	return r.do(context.Background(), func(c *Client) error { return c.Ping() })
}

// BreakerStates returns each endpoint's current breaker state, keyed by
// address — continuumctl renders this after a failover-enabled run.
func (r *ReliableClient) BreakerStates() map[string]retry.State {
	out := make(map[string]retry.State, len(r.eps))
	for _, ep := range r.eps {
		out[ep.addr] = ep.breaker.State()
	}
	return out
}

// Close closes every pooled connection.
func (r *ReliableClient) Close() error {
	var first error
	for _, ep := range r.eps {
		ep.mu.Lock()
		conns := ep.conns
		ep.conns = make([]*Client, len(ep.conns))
		ep.mu.Unlock()
		for _, c := range conns {
			if c == nil {
				continue
			}
			if err := c.Close(); err != nil && first == nil {
				first = fmt.Errorf("wire: close %s: %w", ep.addr, err)
			}
		}
	}
	return first
}
