package wire

// groupWriter batches concurrent frame writes on one connection into
// shared syscalls. Writers append encoded frames to a queue and signal
// a dedicated flusher goroutine, which yields once before snapshotting
// the queue — so every caller runnable at that moment gets its frame
// into the same Write. A lone caller pays one goroutine handoff; 64
// pipelined callers share a syscall, which is where most of the
// multiplexed throughput comes from on a loaded host.
//
// A flush failure is terminal for the connection: framing may be torn
// mid-frame, so the writer records the error, drops the queue, and
// severs the connection via onFatal so every sharer fails fast.

import (
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"time"
)

// errWriteQueueOverflow is returned when more than MaxFrame bytes of
// frames are queued behind a peer that has stopped draining its socket;
// the connection is severed rather than buffering unboundedly.
var errWriteQueueOverflow = errors.New("wire: write queue overflow")

type groupWriter struct {
	conn     net.Conn
	deadline func() time.Time // optional per-flush write deadline
	onFatal  func(error)      // severs the connection; called at most once

	mu      sync.Mutex
	wake    *sync.Cond // signals the flusher: queue non-empty or stopping
	idle    *sync.Cond // broadcast when the flusher drains the queue or fails
	queue   []byte     // encoded frames awaiting flush
	busy    bool       // flusher is between snapshot and completion
	stopped bool
	err     error // terminal: set once, every later write fails fast

	spare []byte // recycled queue backing; flusher-only
}

func newGroupWriter(conn net.Conn, deadline func() time.Time, onFatal func(error)) *groupWriter {
	g := &groupWriter{conn: conn, deadline: deadline, onFatal: onFatal}
	g.wake = sync.NewCond(&g.mu)
	g.idle = sync.NewCond(&g.mu)
	go g.flushLoop()
	return g
}

// writeFrame encodes v in the given codec and queues the frame for the
// flusher, returning its wire size. The returned error covers only
// queueing — a later flush failure severs the connection, which callers
// observe through their read side.
func (g *groupWriter) writeFrame(v any, codec Codec) (int64, error) {
	bp := getBuf()
	frame, err := appendFrame((*bp)[:0], v, codec)
	if err != nil {
		putBuf(bp)
		return 0, err
	}
	n := int64(len(frame))
	g.mu.Lock()
	err = g.enqueueLocked(frame)
	g.mu.Unlock()
	*bp = frame
	putBuf(bp)
	if err != nil {
		return 0, err
	}
	return n, nil
}

// enqueueLocked appends one encoded frame to the queue and signals the
// flusher. The caller holds mu.
func (g *groupWriter) enqueueLocked(frame []byte) error {
	if g.err != nil {
		return fmt.Errorf("wire: connection failed: %w", g.err)
	}
	if g.stopped {
		return net.ErrClosed
	}
	if len(g.queue) > MaxFrame {
		g.failLocked(errWriteQueueOverflow)
		return errWriteQueueOverflow
	}
	g.queue = append(g.queue, frame...)
	g.wake.Signal()
	return nil
}

// flushLoop is the connection's single flusher. Woken by the first
// queued frame, it yields the processor once so every caller that is
// currently runnable can append its frame too, then writes the whole
// queue in one syscall.
func (g *groupWriter) flushLoop() {
	g.mu.Lock()
	for {
		for g.err == nil && !g.stopped && len(g.queue) == 0 {
			g.wake.Wait()
		}
		if g.err != nil || (g.stopped && len(g.queue) == 0) {
			g.mu.Unlock()
			return
		}
		g.busy = true
		g.mu.Unlock()
		runtime.Gosched() // let concurrent callers pile on before snapshotting
		g.mu.Lock()
		out := g.queue
		g.queue = g.spare[:0]
		g.mu.Unlock()

		werr := g.flushChunk(out)

		g.mu.Lock()
		if cap(out) <= maxPooledBuf {
			g.spare = out[:0]
		} else {
			g.spare = nil
		}
		g.busy = false
		if werr != nil {
			g.failLocked(werr)
		} else if len(g.queue) == 0 {
			g.idle.Broadcast()
		}
	}
}

// flushChunk writes one batch of frames in a single syscall, bounded by
// the deadline callback when one is configured. Flusher-only.
func (g *groupWriter) flushChunk(out []byte) error {
	if g.deadline != nil {
		if d := g.deadline(); !d.IsZero() {
			g.conn.SetWriteDeadline(d)
		}
	}
	_, err := g.conn.Write(out)
	return err
}

// failLocked records the writer's terminal error (first one wins),
// drops the queue, and severs the connection. Caller holds mu.
func (g *groupWriter) failLocked(err error) {
	if g.err != nil {
		return
	}
	g.err = err
	g.queue = nil
	g.wake.Signal()
	g.idle.Broadcast()
	if g.onFatal != nil {
		g.onFatal(err)
	}
}

// stop shuts the flusher down once the queue drains. Safe to call more
// than once; pending frames are still flushed (the connection may be
// closing gracefully).
func (g *groupWriter) stop() {
	g.mu.Lock()
	g.stopped = true
	g.wake.Signal()
	g.idle.Broadcast()
	g.mu.Unlock()
}

// barrier blocks until every queued frame is on the wire (or the writer
// has failed) — the gate a graceful drain passes before closing a
// connection, so a response enqueued by the last in-flight request is
// never cut off mid-buffer.
func (g *groupWriter) barrier() {
	g.mu.Lock()
	for g.err == nil && (g.busy || len(g.queue) > 0) {
		g.idle.Wait()
	}
	g.mu.Unlock()
}
