package wire

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"

	"continuum/internal/trace"
)

// fullRequest returns a Request with every field set to a non-zero
// value. requireAllFieldsSet keeps it honest when fields are added.
func fullRequest() *Request {
	return &Request{
		Op:      OpInvoke,
		ID:      "req-1",
		Accept:  AcceptBinary,
		Fn:      "echo",
		Payload: []byte{0x00, 0xC5, '{', 0xFF}, // bytes that would confuse sniffing if mishandled
		Batch:   [][]byte{{1}, {}, {2, 3}},
		TraceID: "0123456789abcdef",
		SpanID:  "89abcdef",
		// Negative on purpose: the binary codec carries priority as a
		// signed varint.
		Priority: -1,
		Member: &MemberInfo{
			Name: "ep0", Addr: "127.0.0.1:9000", Capacity: 8,
			Functions: []string{"echo"}, Generation: 3,
			QueueDepth: 2, InFlight: 1, SlotLimit: 4,
			Cordoned: true, Draining: true,
		},
	}
}

// fullResponse returns a Response with every field set.
func fullResponse() *Response {
	return &Response{
		OK:           true,
		ID:           "req-1",
		Codec:        codecBinaryName,
		Error:        "partial failure",
		Retryable:    true,
		RetryAfterMS: 40,
		Payload:      bytes.Repeat([]byte{0xC5}, 64),
		Batch:        [][]byte{{9, 8}, {7}},
		Names:        []string{"echo", "upper"},
		Stats: []EndpointStats{{
			Name: "ep0", Capacity: 4, Running: 1, Invocations: 10, ColdStarts: 2, WarmHits: 8,
		}},
		Top: []FnMetrics{{
			Endpoint: "ep0", Fn: "echo", Count: 10,
			P50: 0.001, P90: 0.002, P99: 0.003, ColdStarts: 2, WarmHits: 8,
		}},
		Spans: []trace.Span{{
			TraceID: "0123456789abcdef", SpanID: "89abcdef", Parent: "01234567",
			Service: "ep0", Name: "exec echo", Kind: trace.KindExec, Attempt: 1,
			Start: 100, End: 200, Err: "boom",
			Attrs: map[string]string{"container": "cold"},
		}},
		Members: []MemberStatus{{
			MemberInfo: MemberInfo{
				Name: "ep0", Addr: "127.0.0.1:9000", Capacity: 8,
				Functions: []string{"echo"}, Generation: 3,
				QueueDepth: 2, InFlight: 1, SlotLimit: 4,
				Cordoned: true, Draining: true,
			},
			State: "alive", AgeMS: 12,
		}},
		HeartbeatMS: 2000,
		Generation:  3,
	}
}

// requireAllFieldsSet fails if any field of v is its zero value — the
// guard that makes the round-trip test prove EVERY protocol field
// survives both codecs, including fields added after this test was
// written (adding a field without extending the fixtures fails here).
func requireAllFieldsSet(t *testing.T, v any) {
	t.Helper()
	rv := reflect.ValueOf(v).Elem()
	for i := 0; i < rv.NumField(); i++ {
		if rv.Field(i).IsZero() {
			t.Fatalf("%s fixture leaves field %s at its zero value; extend the fixture so the codec round-trip covers it",
				rv.Type().Name(), rv.Type().Field(i).Name)
		}
	}
}

// TestCodecRoundTripAllFields proves both codecs round-trip every
// Request and Response field bit for bit.
func TestCodecRoundTripAllFields(t *testing.T) {
	for _, codec := range []Codec{CodecJSON, CodecBinary} {
		t.Run(codec.String(), func(t *testing.T) {
			req := fullRequest()
			requireAllFieldsSet(t, req)
			var buf bytes.Buffer
			if err := WriteFrameCodec(&buf, req, codec); err != nil {
				t.Fatal(err)
			}
			gotReq := new(Request)
			gotCodec, err := ReadFrameCodec(&buf, gotReq)
			if err != nil {
				t.Fatal(err)
			}
			if gotCodec != codec {
				t.Fatalf("detected codec %v, wrote %v", gotCodec, codec)
			}
			if !reflect.DeepEqual(req, gotReq) {
				t.Fatalf("request round trip mismatch:\nin:  %+v\nout: %+v", req, gotReq)
			}

			resp := fullResponse()
			requireAllFieldsSet(t, resp)
			buf.Reset()
			if err := WriteFrameCodec(&buf, resp, codec); err != nil {
				t.Fatal(err)
			}
			gotResp := new(Response)
			if _, err := ReadFrameCodec(&buf, gotResp); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(resp, gotResp) {
				t.Fatalf("response round trip mismatch:\nin:  %+v\nout: %+v", resp, gotResp)
			}
		})
	}
}

// TestBinaryCodecPreservesNilVsEmpty: the blob sections distinguish a
// nil payload/batch from an empty one, which JSON-with-omitempty cannot.
func TestBinaryCodecPreservesNilVsEmpty(t *testing.T) {
	cases := []Request{
		{Op: OpInvoke, ID: "a", Payload: nil, Batch: nil},
		{Op: OpInvoke, ID: "b", Payload: []byte{}, Batch: [][]byte{}},
		{Op: OpInvoke, ID: "c", Payload: []byte{}, Batch: [][]byte{nil, {}}},
	}
	for _, in := range cases {
		var buf bytes.Buffer
		if err := WriteFrameCodec(&buf, &in, CodecBinary); err != nil {
			t.Fatal(err)
		}
		out := new(Request)
		if _, err := ReadFrameCodec(&buf, out); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(&in, out) {
			t.Fatalf("nil/empty not preserved:\nin:  %#v\nout: %#v", in, *out)
		}
	}
}

// TestBinaryCodecSmallerForLargePayloads is the point of the codec: raw
// payload bytes instead of base64-in-JSON.
func TestBinaryCodecSmallerForLargePayloads(t *testing.T) {
	req := &Request{Op: OpInvoke, ID: "big", Fn: "echo", Payload: bytes.Repeat([]byte{0xAB}, 64<<10)}
	var js, bin bytes.Buffer
	if err := WriteFrameCodec(&js, req, CodecJSON); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrameCodec(&bin, req, CodecBinary); err != nil {
		t.Fatal(err)
	}
	if bin.Len() >= js.Len() {
		t.Fatalf("binary frame %d B not smaller than JSON frame %d B", bin.Len(), js.Len())
	}
	// Base64 inflates 64 KiB to ~85 KiB; binary should be within ~1% of raw.
	if bin.Len() > 65<<10 {
		t.Fatalf("binary frame %d B for a 64 KiB payload", bin.Len())
	}
}

// countingWriter tallies Write calls to prove frames are coalesced.
type countingWriter struct {
	writes int
	bytes.Buffer
}

func (w *countingWriter) Write(p []byte) (int, error) {
	w.writes++
	return w.Buffer.Write(p)
}

// TestWriteFrameSingleWrite: header and body must go out in ONE Write,
// so a frame is never torn across a deadline and a small call costs one
// syscall.
func TestWriteFrameSingleWrite(t *testing.T) {
	for _, codec := range []Codec{CodecJSON, CodecBinary} {
		var w countingWriter
		if err := WriteFrameCodec(&w, fullRequest(), codec); err != nil {
			t.Fatal(err)
		}
		if w.writes != 1 {
			t.Fatalf("%v frame issued %d writes, want 1", codec, w.writes)
		}
		// And the coalesced frame must still parse.
		out := new(Request)
		if _, err := ReadFrameCodec(&w.Buffer, out); err != nil {
			t.Fatal(err)
		}
	}
}

// TestBinaryFallsBackToJSONForOtherTypes: CodecBinary is only defined
// for *Request/*Response; any other value must go out as a JSON frame
// (which readers auto-detect) rather than erroring.
func TestBinaryFallsBackToJSONForOtherTypes(t *testing.T) {
	var buf bytes.Buffer
	in := map[string]string{"k": "v"}
	if err := WriteFrameCodec(&buf, in, CodecBinary); err != nil {
		t.Fatalf("non-frame type under CodecBinary: %v", err)
	}
	out := map[string]string{}
	if codec, err := ReadFrameCodec(&buf, &out); err != nil || codec != CodecJSON {
		t.Fatalf("read back codec=%v err=%v, want JSON fallback", codec, err)
	}
	if out["k"] != "v" {
		t.Fatalf("round trip = %v", out)
	}
}

// TestBinaryFrameTooLarge: the size cap applies to binary frames too.
func TestBinaryFrameTooLarge(t *testing.T) {
	req := &Request{Op: OpInvoke, Payload: make([]byte, MaxFrame+1)}
	var buf bytes.Buffer
	if err := WriteFrameCodec(&buf, req, CodecBinary); err != ErrFrameTooLarge {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

// TestBinaryDecodeTruncated: a truncated binary body errors instead of
// panicking or fabricating fields — with THREE deliberate exceptions,
// one per historical frame layout: a cut landing exactly on the end of
// the pre-trailer schema is indistinguishable from a frame a legacy
// encoder wrote (decodes as the same request, untraced and normal
// priority), a cut on the end of the trace strings is indistinguishable
// from a pre-priority traced frame (decodes traced, normal priority),
// and a cut on the end of the priority varint is indistinguishable from
// a pre-federation frame (decodes with no member). Those ambiguities
// are what make the trailer backward compatible across all three
// protocol additions.
func TestBinaryDecodeTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrameCodec(&buf, fullRequest(), CodecBinary); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	frameLen := func(req *Request) int {
		var b bytes.Buffer
		if err := WriteFrameCodec(&b, req, CodecBinary); err != nil {
			t.Fatal(err)
		}
		return b.Len()
	}
	// The legacy frame boundary: everything up to (not including) the
	// trace/priority/member trailer.
	legacy := fullRequest()
	legacy.TraceID, legacy.SpanID, legacy.Priority, legacy.Member = "", "", 0, nil
	legacyBoundary := frameLen(legacy)
	// The pre-priority boundary: trace strings present, priority and
	// member absent.
	traced := fullRequest()
	traced.Priority, traced.Member = 0, nil
	tracedBoundary := frameLen(traced)
	// The pre-federation boundary: trace strings and priority present,
	// member absent.
	preMember := fullRequest()
	preMember.Member = nil
	preMemberBoundary := frameLen(preMember)

	for cut := 5; cut < len(whole); cut++ {
		// Rewrite the length prefix to match the truncated body, so the
		// decoder's own bounds checks are exercised, not just short reads.
		trunc := append([]byte(nil), whole[:cut]...)
		binary.BigEndian.PutUint32(trunc[:4], uint32(cut-4))
		out := new(Request)
		err := ReadFrame(bytes.NewReader(trunc), out)
		switch cut {
		case legacyBoundary:
			if err != nil {
				t.Fatalf("cut at the legacy boundary (%d) must decode as an untraced frame, got %v", cut, err)
			}
			if !reflect.DeepEqual(out, legacy) {
				t.Fatalf("legacy-boundary decode:\nin:  %+v\nout: %+v", legacy, out)
			}
		case tracedBoundary:
			if err != nil {
				t.Fatalf("cut at the pre-priority boundary (%d) must decode as a traced normal-priority frame, got %v", cut, err)
			}
			if !reflect.DeepEqual(out, traced) {
				t.Fatalf("pre-priority-boundary decode:\nin:  %+v\nout: %+v", traced, out)
			}
		case preMemberBoundary:
			if err != nil {
				t.Fatalf("cut at the pre-federation boundary (%d) must decode as a member-less frame, got %v", cut, err)
			}
			if !reflect.DeepEqual(out, preMember) {
				t.Fatalf("pre-federation-boundary decode:\nin:  %+v\nout: %+v", preMember, out)
			}
		default:
			if err == nil {
				t.Fatalf("truncated binary frame (cut at %d/%d, boundaries %d/%d/%d) accepted",
					cut, len(whole), legacyBoundary, tracedBoundary, preMemberBoundary)
			}
		}
	}
}
