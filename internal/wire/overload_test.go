package wire

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"continuum/internal/faas"
	"continuum/internal/retry"
)

// shedServer builds a server over a capacity-1 admission-controlled
// endpoint plus a release-gated "hold" handler, so tests can saturate it
// deterministically.
func shedServer(t *testing.T) (*Server, *faas.Endpoint, chan struct{}) {
	t.Helper()
	reg := faas.NewRegistry()
	release := make(chan struct{})
	reg.Register("hold", func(p []byte) ([]byte, error) {
		<-release
		return p, nil
	})
	reg.Register("echo", func(p []byte) ([]byte, error) { return p, nil })
	ep := faas.NewEndpoint(faas.EndpointConfig{
		Name: "shedbox", Capacity: 1, QueueWait: 2 * time.Second,
		Admission: faas.AdmissionConfig{Enabled: true, MaxQueue: 3},
	}, reg)
	return &Server{Invoker: ep, Registry: reg, Endpoints: []*faas.Endpoint{ep}}, ep, release
}

// TestShedCarriesRetryAfterToClient is the wire half of admission
// control: a low-priority request shed by a saturated server must come
// back fast (not after QueueWait), marked retryable, carrying the
// server's Retry-After hint — and the hint must be extractable by the
// retry package's hook.
func TestShedCarriesRetryAfterToClient(t *testing.T) {
	srv, ep, release := shedServer(t)
	addr := startServerOn(t, srv)
	defer close(release)

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Saturate: one call holds the only slot...
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.Invoke("hold", nil)
	}()
	waitCond(t, func() bool { return ep.Running() == 1 })
	// ...and one low-priority call fills the low class's queue watermark
	// (MaxQueue 3 → the low class sheds beyond 1 queued).
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.InvokeContext(faas.WithPriority(context.Background(), faas.PriorityLow), "hold", nil)
	}()
	waitCond(t, func() bool { return ep.QueueDepth() == 1 })

	start := time.Now()
	_, err = c.InvokeContext(faas.WithPriority(context.Background(), faas.PriorityLow), "echo", nil)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("low-priority invoke admitted past the class watermark")
	}
	// Shed means rejected on arrival: far sooner than the 2s QueueWait.
	if elapsed > 500*time.Millisecond {
		t.Fatalf("shed took %v, want immediate rejection", elapsed)
	}
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
	if !re.Retryable {
		t.Fatalf("shed response not retryable: %v", err)
	}
	if re.RetryAfterHint <= 0 {
		t.Fatalf("shed response carries no Retry-After hint: %+v", re)
	}
	if got := retry.RetryAfterHint(err); got != re.RetryAfterHint {
		t.Fatalf("retry.RetryAfterHint(err) = %v, want %v", got, re.RetryAfterHint)
	}
	release <- struct{}{} // free the slot holder
	release <- struct{}{} // and the queued waiter
	wg.Wait()
}

// TestPriorityReachesAdmission proves the wire actually carries the
// class: under the exact same saturation, a NORMAL-priority request is
// queued (its watermark is higher), where the low-priority one above
// was shed. If priority were dropped on the wire both would behave
// identically.
func TestPriorityReachesAdmission(t *testing.T) {
	srv, ep, release := shedServer(t)
	addr := startServerOn(t, srv)
	defer close(release)

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.Invoke("hold", nil)
	}()
	waitCond(t, func() bool { return ep.Running() == 1 })
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.InvokeContext(faas.WithPriority(context.Background(), faas.PriorityLow), "hold", nil)
	}()
	waitCond(t, func() bool { return ep.QueueDepth() == 1 })

	// Normal priority, same queue depth: must be admitted to the queue
	// and eventually served, not shed.
	done := make(chan error, 1)
	go func() {
		_, err := c.Invoke("echo", nil)
		done <- err
	}()
	waitCond(t, func() bool { return ep.QueueDepth() == 2 })
	release <- struct{}{} // slot holder finishes; queue drains in class order
	release <- struct{}{} // low "hold" waiter runs and finishes
	if err := <-done; err != nil {
		t.Fatalf("normal-priority invoke shed at a depth the low class sheds at: %v", err)
	}
	wg.Wait()
}

// TestRetryBudgetSharedByHedgesAndRetries: one token bucket, two kinds
// of extra load. A hedge arm spends the bucket's only token; a
// subsequent retry finds it empty and fails with ErrBudgetExhausted
// instead of launching — proving hedges and retries draw from the same
// budget, and that exhaustion is terminal (non-retryable).
func TestRetryBudgetSharedByHedgesAndRetries(t *testing.T) {
	// Ratio tiny-but-positive so the hedged call's success cannot refill
	// a whole token.
	budget := retry.NewBudget(retry.BudgetConfig{Tokens: 1, Ratio: 1e-9})

	// Two slow endpoints: every call outlives the hedge delay.
	slow := func(name string) *Server {
		reg := faas.NewRegistry()
		reg.Register("slow", func(p []byte) ([]byte, error) {
			time.Sleep(60 * time.Millisecond)
			return p, nil
		})
		ep := faas.NewEndpoint(faas.EndpointConfig{Name: name, Capacity: 4}, reg)
		return &Server{Invoker: ep, Registry: reg, Endpoints: []*faas.Endpoint{ep}}
	}
	addr1 := startServerOn(t, slow("slow1"))
	addr2 := startServerOn(t, slow("slow2"))

	hedger, err := NewReliableClient(ReliableConfig{
		Addrs:  []string{addr1, addr2},
		Hedge:  HedgeConfig{Enabled: true, Delay: 5 * time.Millisecond},
		Budget: budget,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer hedger.Close()
	if _, err := hedger.Invoke("slow", []byte("x")); err != nil {
		t.Fatalf("hedged call failed: %v", err)
	}
	if launched, _ := hedger.HedgeStats(); launched != 1 {
		t.Fatalf("hedges launched = %d, want 1 (the budget's only token)", launched)
	}
	if tok := budget.Tokens(); tok >= 1 {
		t.Fatalf("budget still holds %v tokens after the hedge", tok)
	}

	// Same bucket, now a retry client against a saturated endpoint.
	reg := faas.NewRegistry()
	release := make(chan struct{})
	defer close(release)
	reg.Register("hold", func(p []byte) ([]byte, error) {
		<-release
		return p, nil
	})
	ep := faas.NewEndpoint(faas.EndpointConfig{
		Name: "tight", Capacity: 1, QueueWait: 5 * time.Millisecond,
	}, reg)
	addr3 := startServerOn(t, &Server{Invoker: ep, Registry: reg, Endpoints: []*faas.Endpoint{ep}})

	retrier, err := NewReliableClient(ReliableConfig{
		Addrs:  []string{addr3},
		Retry:  retry.Policy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
		Budget: budget,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer retrier.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		retrier.Invoke("hold", nil) // occupies the only slot
	}()
	waitCond(t, func() bool { return ep.Running() == 1 })

	_, err = retrier.Invoke("hold", nil) // overloaded; first retry needs a token
	if !errors.Is(err, retry.ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted (hedge drained the shared bucket)", err)
	}
	if retrier.BudgetDenials() == 0 {
		t.Fatal("budget denial not counted")
	}
	release <- struct{}{}
	wg.Wait()
}

// TestHedgeSuppressedByEmptyBudget: an empty budget must not fail a
// hedged call — the race just stays one-arm.
func TestHedgeSuppressedByEmptyBudget(t *testing.T) {
	budget := retry.NewBudget(retry.BudgetConfig{Tokens: 1, Ratio: 1e-9})
	if !budget.Spend() {
		t.Fatal("fresh bucket empty")
	}

	slow := func(name string) *Server {
		reg := faas.NewRegistry()
		reg.Register("slow", func(p []byte) ([]byte, error) {
			time.Sleep(40 * time.Millisecond)
			return p, nil
		})
		ep := faas.NewEndpoint(faas.EndpointConfig{Name: name, Capacity: 4}, reg)
		return &Server{Invoker: ep, Registry: reg, Endpoints: []*faas.Endpoint{ep}}
	}
	c, err := NewReliableClient(ReliableConfig{
		Addrs:  []string{startServerOn(t, slow("a")), startServerOn(t, slow("b"))},
		Hedge:  HedgeConfig{Enabled: true, Delay: 5 * time.Millisecond},
		Budget: budget,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	out, err := c.Invoke("slow", []byte("ok"))
	if err != nil || string(out) != "ok" {
		t.Fatalf("call under empty budget: out=%q err=%v", out, err)
	}
	if launched, _ := c.HedgeStats(); launched != 0 {
		t.Fatalf("hedges launched = %d with an empty budget", launched)
	}
	if c.BudgetDenials() == 0 {
		t.Fatal("suppressed hedge not counted as a budget denial")
	}
}

// waitCond polls cond for up to 2s.
func waitCond(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never reached")
		}
		time.Sleep(time.Millisecond)
	}
}
