package wire

import (
	"bufio"
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"continuum/internal/faas"
	"continuum/internal/trace"
)

// Client is a multiplexed protocol client: many concurrent calls share
// one connection, matched to their responses by request ID, so a slow
// invocation never head-of-line-blocks the calls behind it. It is safe
// for concurrent use. Every request is stamped with a unique ID
// ("<connection-prefix>-<seq>") the server echoes back; a legacy server
// that strips IDs is handled by matching responses to requests in wire
// order, which is exact because such servers process serially.
//
// The client starts in JSON frames and advertises the binary codec on
// every request; the first response acking it (Response.Codec) upgrades
// the connection, so a legacy JSON-only server simply keeps JSON.
type Client struct {
	conn    net.Conn
	gw      *groupWriter // serializes and batches request frames onto conn
	prefix  string
	seq     atomic.Int64
	timeout atomic.Int64 // per-call deadline in nanoseconds, 0 = none
	binary  atomic.Bool  // server acked the binary codec
	noBin   atomic.Bool  // pinned to JSON (ForceJSON)

	pmu     sync.Mutex
	pending map[string]chan *Response // in-flight calls by request ID
	fifo    []string                  // wire order, for ID-less responses
	idEcho  bool                      // server echoes IDs: fifo bookkeeping unnecessary
	broken  error                     // set once the reader dies

	spans   *trace.SpanStore // send spans for traced calls, nil = record nothing
	service string           // span service label, set with spans
}

// SetSpans attaches a span store: from then on every call made under a
// traced context (trace.NewContext) records one client send span —
// covering serialization, the wire, and the server's processing — into
// store, labeled with service. The span becomes the parent of the
// server's spans via the request's trace fields. Call before issuing
// traffic; untraced calls still cost nothing.
func (c *Client) SetSpans(store *trace.SpanStore, service string) {
	if service == "" {
		service = "client"
	}
	c.spans, c.service = store, service
}

// Dial connects to a server, bounding the TCP connect by
// DefaultDialTimeout.
func Dial(addr string) (*Client, error) {
	return DialTimeout(addr, DefaultDialTimeout)
}

// DialTimeout connects to a server with an explicit connect bound
// (0 = no bound).
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return newClient(conn)
}

// DialContext connects to a server under ctx: the connect is abandoned
// when ctx ends, and is additionally bounded by DefaultDialTimeout.
func DialContext(ctx context.Context, addr string) (*Client, error) {
	d := net.Dialer{Timeout: DefaultDialTimeout}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	return newClient(conn)
}

func newClient(conn net.Conn) (*Client, error) {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		conn.Close()
		return nil, fmt.Errorf("wire: request-id seed: %w", err)
	}
	c := &Client{
		conn:    conn,
		prefix:  hex.EncodeToString(b[:]),
		pending: make(map[string]chan *Response),
	}
	// Each flush is bounded by the call timeout (when one is set) so a
	// peer that stops reading surfaces as a write error, not a stuck
	// flusher; any flush failure severs the connection, because a torn
	// frame desyncs every call sharing it.
	c.gw = newGroupWriter(conn, func() time.Time {
		if d := time.Duration(c.timeout.Load()); d > 0 {
			return time.Now().Add(d)
		}
		return time.Time{}
	}, func(error) { conn.Close() })
	go c.readLoop()
	return c, nil
}

// SetCallTimeout bounds every subsequent round trip: the request write
// carries it as a write deadline and the response wait is bounded by a
// timer, so a dead or wedged peer surfaces as a timeout error instead
// of blocking forever. 0 (the default) disables the bound.
func (c *Client) SetCallTimeout(d time.Duration) {
	c.timeout.Store(int64(d))
}

// ForceJSON pins the connection to JSON frames: the client never
// advertises the binary codec and ignores any ack. This is the
// mixed-version baseline for benchmarks and interop tests.
func (c *Client) ForceJSON() {
	c.noBin.Store(true)
	c.binary.Store(false)
}

// Broken reports whether the connection has failed; a broken client
// fails every call immediately and must be redialed.
func (c *Client) Broken() bool {
	c.pmu.Lock()
	defer c.pmu.Unlock()
	return c.broken != nil
}

// Close closes the connection, failing all in-flight calls.
func (c *Client) Close() error { return c.conn.Close() }

// readLoop is the connection's single reader: it matches every inbound
// response to its waiting call and dies — failing all pending calls —
// on the first transport error. Reads are buffered, so a burst of
// pipelined responses costs one syscall, not two per frame.
func (c *Client) readLoop() {
	br := bufio.NewReaderSize(c.conn, 64<<10)
	for {
		resp := new(Response)
		if _, err := ReadFrameCodec(br, resp); err != nil {
			c.fail(err)
			return
		}
		if resp.Codec == codecBinaryName && !c.noBin.Load() {
			c.binary.Store(true)
		}
		c.deliver(resp)
	}
}

// deliver routes one response to its call: by ID when the server echoed
// one, else to the oldest in-flight call (legacy serial servers answer
// strictly in wire order). Responses for calls that already timed out
// are dropped.
func (c *Client) deliver(resp *Response) {
	var ch chan *Response
	c.pmu.Lock()
	if resp.ID != "" {
		// The server echoes IDs, so the FIFO fallback will never fire:
		// stop maintaining it, or it would grow for the connection's
		// lifetime (by-ID delivery never drains it).
		if !c.idEcho {
			c.idEcho = true
			c.fifo = nil
		}
		ch = c.pending[resp.ID]
		delete(c.pending, resp.ID)
	} else if len(c.fifo) > 0 {
		// A serial legacy server sends exactly one response per request,
		// in wire order, so consume exactly one fifo entry here. If that
		// call was forgotten (timed out, cancelled), this response is its
		// now-unwanted answer and must be dropped — handing it to the
		// next fifo entry would leave every later response off by one.
		id := c.fifo[0]
		c.fifo = c.fifo[1:]
		ch = c.pending[id]
		delete(c.pending, id)
	}
	c.pmu.Unlock()
	if ch != nil {
		ch <- resp // buffered: never blocks the reader
	}
}

// fail marks the connection broken, stops the write flusher, and wakes
// every in-flight call.
func (c *Client) fail(err error) {
	c.gw.stop()
	c.pmu.Lock()
	if c.broken == nil {
		c.broken = err
	}
	pend := c.pending
	c.pending = nil
	c.fifo = nil
	c.pmu.Unlock()
	for _, ch := range pend {
		close(ch)
	}
}

// forget abandons an in-flight call (timeout, cancellation, write
// failure); its response, if one ever arrives, is dropped.
func (c *Client) forget(id string) {
	c.pmu.Lock()
	delete(c.pending, id)
	c.pmu.Unlock()
}

// brokenErr returns the reader's terminal error.
func (c *Client) brokenErr() error {
	c.pmu.Lock()
	defer c.pmu.Unlock()
	if c.broken == nil {
		return net.ErrClosed
	}
	return fmt.Errorf("wire: connection failed: %w", c.broken)
}

func (c *Client) roundTrip(req *Request) (*Response, error) {
	return c.roundTripContext(context.Background(), req)
}

// roundTripContext performs one call over the shared connection. A
// traced ctx (trace.NewContext) stamps the request's trace fields so
// the server's spans join the caller's trace, and — when SetSpans was
// called — records a client send span around the round trip. The
// untraced path pays one context lookup and nothing else.
func (c *Client) roundTripContext(ctx context.Context, req *Request) (*Response, error) {
	// A non-normal priority (faas.WithPriority) rides the request so the
	// server's admission controller sheds in class order; the normal
	// default keeps the frame byte-identical to priority-unaware peers.
	if p := faas.PriorityFromContext(ctx); p != faas.PriorityNormal {
		req.Priority = int(p)
	}
	tc, traced := trace.ContextSpan(ctx)
	if !traced {
		return c.doRoundTrip(ctx, req)
	}
	sp := c.spans.StartSpan(tc, c.service, "send "+string(req.Op), trace.KindClient)
	if sp != nil {
		tc = sp.Context() // server spans parent to the send span
	}
	req.TraceID, req.SpanID = tc.TraceID, tc.SpanID
	resp, err := c.doRoundTrip(ctx, req)
	sp.SetErr(err)
	sp.End()
	return resp, err
}

// doRoundTrip is the transport half of roundTripContext. The effective
// deadline is the earlier of the client's call timeout and ctx's
// deadline; it bounds the response wait with a timer (and each
// write-side flush with a write deadline) without disturbing the other
// calls in flight. Timeout errors wrap context.DeadlineExceeded, which
// satisfies net.Error, so existing retry classification keeps working.
func (c *Client) doRoundTrip(ctx context.Context, req *Request) (*Response, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if req.ID == "" {
		b := make([]byte, 0, len(c.prefix)+20)
		b = append(b, c.prefix...)
		b = append(b, '-')
		req.ID = string(strconv.AppendInt(b, c.seq.Add(1), 10))
	}
	codec := CodecJSON
	if c.binary.Load() {
		codec = CodecBinary
	} else if !c.noBin.Load() {
		req.Accept = AcceptBinary
	}
	var deadline time.Time
	if d := time.Duration(c.timeout.Load()); d > 0 {
		deadline = time.Now().Add(d)
	}
	if d, ok := ctx.Deadline(); ok && (deadline.IsZero() || d.Before(deadline)) {
		deadline = d
	}
	ch := make(chan *Response, 1)

	bp := getBuf()
	frame, err := appendFrame((*bp)[:0], req, codec)
	if err != nil {
		putBuf(bp)
		return nil, err
	}

	// Register and enqueue under the writer's lock so fifo order matches
	// wire order — the invariant the legacy ID-less matching relies on.
	c.gw.mu.Lock()
	c.pmu.Lock()
	if err := c.broken; err != nil {
		c.pmu.Unlock()
		c.gw.mu.Unlock()
		putBuf(bp)
		return nil, fmt.Errorf("wire: connection failed: %w", err)
	}
	c.pending[req.ID] = ch
	if !c.idEcho {
		c.fifo = append(c.fifo, req.ID)
	}
	c.pmu.Unlock()
	err = c.gw.enqueueLocked(frame)
	c.gw.mu.Unlock()
	*bp = frame
	putBuf(bp)
	if err != nil {
		// The writer is dead (a flush failure severs the connection,
		// since a partial write desyncs the framing for every call
		// sharing it); drop our registration and fail now instead of
		// waiting for the reader to notice.
		c.forget(req.ID)
		return nil, err
	}

	var timeoutC <-chan time.Time
	if !deadline.IsZero() {
		t := time.NewTimer(time.Until(deadline))
		defer t.Stop()
		timeoutC = t.C
	}
	select {
	case resp, ok := <-ch:
		if !ok {
			return nil, c.brokenErr()
		}
		if !resp.OK {
			return resp, &RemoteError{
				Msg:            resp.Error,
				Retryable:      resp.Retryable,
				RetryAfterHint: time.Duration(resp.RetryAfterMS) * time.Millisecond,
			}
		}
		return resp, nil
	case <-ctx.Done():
		c.forget(req.ID)
		return nil, ctx.Err()
	case <-timeoutC:
		c.forget(req.ID)
		return nil, fmt.Errorf("wire: call %s timed out: %w", req.ID, context.DeadlineExceeded)
	}
}

// Ping round-trips a no-op frame.
func (c *Client) Ping() error {
	_, err := c.roundTrip(&Request{Op: OpPing})
	return err
}

// PingContext round-trips a no-op frame under ctx.
func (c *Client) PingContext(ctx context.Context) error {
	_, err := c.roundTripContext(ctx, &Request{Op: OpPing})
	return err
}

// Invoke calls fn remotely.
func (c *Client) Invoke(fn string, payload []byte) ([]byte, error) {
	resp, err := c.roundTrip(&Request{Op: OpInvoke, Fn: fn, Payload: payload})
	if err != nil {
		return nil, err
	}
	return resp.Payload, nil
}

// InvokeContext calls fn remotely under ctx: the ctx deadline (and the
// client's call timeout) bound the round trip.
func (c *Client) InvokeContext(ctx context.Context, fn string, payload []byte) ([]byte, error) {
	resp, err := c.roundTripContext(ctx, &Request{Op: OpInvoke, Fn: fn, Payload: payload})
	if err != nil {
		return nil, err
	}
	return resp.Payload, nil
}

// InvokeBatch calls fn with several payloads in one frame.
func (c *Client) InvokeBatch(fn string, payloads [][]byte) ([][]byte, error) {
	resp, err := c.roundTrip(&Request{Op: OpBatch, Fn: fn, Batch: payloads})
	if err != nil {
		return nil, err
	}
	return resp.Batch, nil
}

// List returns registered function names.
func (c *Client) List() ([]string, error) {
	resp, err := c.roundTrip(&Request{Op: OpList})
	if err != nil {
		return nil, err
	}
	return resp.Names, nil
}

// Stats returns per-endpoint counters.
func (c *Client) Stats() ([]EndpointStats, error) {
	resp, err := c.roundTrip(&Request{Op: OpStats})
	if err != nil {
		return nil, err
	}
	return resp.Stats, nil
}

// Top returns live per-function latency percentiles and cold/warm counts
// from the server's metrics registry. Fails if the server was started
// without one.
func (c *Client) Top() ([]FnMetrics, error) {
	resp, err := c.roundTrip(&Request{Op: OpTop})
	if err != nil {
		return nil, err
	}
	return resp.Top, nil
}

// Trace pulls the server's retained spans; a non-empty traceID filters
// to one trace. Fails if the server was started without a span store.
func (c *Client) Trace(traceID string) ([]trace.Span, error) {
	resp, err := c.roundTrip(&Request{Op: OpTrace, Fn: traceID})
	if err != nil {
		return nil, err
	}
	return resp.Spans, nil
}

// Register joins a federation: it announces info to the router this
// client is connected to and returns the generation the router assigned
// (echo it on every heartbeat and deregister) and the heartbeat
// interval the router expects.
func (c *Client) Register(info MemberInfo) (generation int64, heartbeat time.Duration, err error) {
	resp, err := c.roundTrip(&Request{Op: OpRegister, Member: &info})
	if err != nil {
		return 0, 0, err
	}
	return resp.Generation, time.Duration(resp.HeartbeatMS) * time.Millisecond, nil
}

// Heartbeat refreshes a registration with a live load snapshot. A
// router that no longer recognizes the member (expired, or superseded
// by a newer registration) answers with an error; the caller should
// Register again.
func (c *Client) Heartbeat(info MemberInfo) error {
	_, err := c.roundTrip(&Request{Op: OpHeartbeat, Member: &info})
	return err
}

// Deregister leaves a federation. drain true requests a graceful drain
// (the member stays listed, receives no new routes, and finishes its
// in-flight work); false leaves immediately. generation must echo the
// value Register returned.
func (c *Client) Deregister(name string, generation int64, drain bool) error {
	_, err := c.roundTrip(&Request{Op: OpDeregister, Member: &MemberInfo{
		Name: name, Generation: generation, Draining: drain,
	}})
	return err
}

// Endpoints lists the router's membership view — one MemberStatus per
// registered daemon with its last advertised load and the router's
// liveness verdict. Fails against a server that is not a router.
func (c *Client) Endpoints() ([]MemberStatus, error) {
	resp, err := c.roundTrip(&Request{Op: OpEndpoints})
	if err != nil {
		return nil, err
	}
	return resp.Members, nil
}
