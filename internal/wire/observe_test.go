package wire

import (
	"bytes"
	"log/slog"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"continuum/internal/faas"
	"continuum/internal/metrics"
)

// startObservedServer is startServer plus a metrics registry shared
// between the endpoint and the wire server, the way continuumd wires it.
func startObservedServer(t *testing.T) (*metrics.Registry, string) {
	t.Helper()
	reg := faas.NewRegistry()
	reg.Register("echo", func(p []byte) ([]byte, error) { return p, nil })
	reg.Register("upper", func(p []byte) ([]byte, error) {
		return bytes.ToUpper(p), nil
	})
	ep := faas.NewEndpoint(faas.EndpointConfig{
		Name: "local", Capacity: 4, ColdStart: 0, WarmTTL: time.Minute,
	}, reg)
	m := metrics.NewRegistry()
	ep.SetMetrics(m)
	srv := &Server{
		Invoker: ep, Batcher: ep, Registry: reg,
		Endpoints: []*faas.Endpoint{ep},
		Metrics:   m,
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)
	t.Cleanup(srv.Close)
	return m, lis.Addr().String()
}

// TestRequestIDEcho drives raw frames with explicit IDs across three ops
// and checks each response carries its request's ID back verbatim.
func TestRequestIDEcho(t *testing.T) {
	_, addr := startServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	reqs := []Request{
		{Op: OpPing, ID: "ping-1"},
		{Op: OpInvoke, ID: "inv-2", Fn: "echo", Payload: []byte("x")},
		{Op: OpStats, ID: "stats-3"},
	}
	for _, req := range reqs {
		if err := WriteFrame(conn, &req); err != nil {
			t.Fatal(err)
		}
		var resp Response
		if err := ReadFrame(conn, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.ID != req.ID {
			t.Fatalf("op %s: response ID %q, want %q", req.Op, resp.ID, req.ID)
		}
		if !resp.OK {
			t.Fatalf("op %s failed: %s", req.Op, resp.Error)
		}
	}
}

// TestRequestIDOmittedForOldPeers confirms a request without an ID gets a
// response without one — the field stays invisible to peers that predate
// it.
func TestRequestIDOmittedForOldPeers(t *testing.T) {
	_, addr := startServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := WriteFrame(conn, &Request{Op: OpPing}); err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := ReadFrame(conn, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.ID != "" {
		t.Fatalf("ID-less request got ID %q back", resp.ID)
	}
}

func TestClientGeneratesUniqueIDs(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	req1 := &Request{Op: OpPing}
	if _, err := c.roundTrip(req1); err != nil {
		t.Fatal(err)
	}
	req2 := &Request{Op: OpPing}
	if _, err := c.roundTrip(req2); err != nil {
		t.Fatal(err)
	}
	if req1.ID == "" || req2.ID == "" || req1.ID == req2.ID {
		t.Fatalf("IDs not unique: %q, %q", req1.ID, req2.ID)
	}
	if !strings.HasPrefix(req1.ID, c.prefix+"-") {
		t.Fatalf("ID %q missing connection prefix %q", req1.ID, c.prefix)
	}
}

func TestServerPerOpCounters(t *testing.T) {
	m, addr := startObservedServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Invoke("echo", []byte("abc")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Invoke("echo", []byte("def")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Invoke("ghost", nil); err == nil {
		t.Fatal("unknown function succeeded")
	}
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if got := m.Counter(metrics.Label("wire_requests_total", "op", "invoke")).Value(); got != 3 {
		t.Fatalf("invoke requests = %d, want 3", got)
	}
	if got := m.Counter(metrics.Label("wire_errors_total", "op", "invoke")).Value(); got != 1 {
		t.Fatalf("invoke errors = %d, want 1", got)
	}
	if got := m.Counter(metrics.Label("wire_requests_total", "op", "ping")).Value(); got != 1 {
		t.Fatalf("ping requests = %d, want 1", got)
	}
	if got := m.Counter(metrics.Label("wire_request_bytes_total", "op", "invoke")).Value(); got <= 0 {
		t.Fatalf("invoke request bytes = %d, want > 0", got)
	}
	if got := m.Counter(metrics.Label("wire_response_bytes_total", "op", "invoke")).Value(); got <= 0 {
		t.Fatalf("invoke response bytes = %d, want > 0", got)
	}
}

func TestClientTop(t *testing.T) {
	_, addr := startObservedServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 5; i++ {
		if _, err := c.Invoke("echo", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Invoke("upper", []byte("y")); err != nil {
		t.Fatal(err)
	}
	rows, err := c.Top()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("top rows = %+v, want 2 entries", rows)
	}
	// Sorted by endpoint then fn: echo before upper.
	if rows[0].Fn != "echo" || rows[1].Fn != "upper" {
		t.Fatalf("row order = %q, %q", rows[0].Fn, rows[1].Fn)
	}
	e := rows[0]
	if e.Endpoint != "local" || e.Count != 5 {
		t.Fatalf("echo row = %+v", e)
	}
	if e.ColdStarts != 1 || e.WarmHits != 4 {
		t.Fatalf("echo cold/warm = %d/%d, want 1/4", e.ColdStarts, e.WarmHits)
	}
	if e.P50 < 0 || e.P99 < e.P50 {
		t.Fatalf("echo percentiles out of order: p50=%v p99=%v", e.P50, e.P99)
	}
}

func TestClientTopWithoutMetrics(t *testing.T) {
	_, addr := startServer(t) // no registry attached
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Top(); err == nil {
		t.Fatal("top succeeded on a server without metrics")
	}
}

// TestServerLogsRequests checks the one-line-per-request contract: the
// structured line carries the request ID and op.
func TestServerLogsRequests(t *testing.T) {
	regF := faas.NewRegistry()
	regF.Register("echo", func(p []byte) ([]byte, error) { return p, nil })
	ep := faas.NewEndpoint(faas.EndpointConfig{
		Name: "local", Capacity: 1, WarmTTL: time.Minute,
	}, regF)
	var buf bytes.Buffer
	srv := &Server{
		Invoker: ep, Registry: regF, Endpoints: []*faas.Endpoint{ep},
		Logger: slog.New(slog.NewTextHandler(&syncWriter{w: &buf}, nil)),
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)
	defer srv.Close()

	c, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	req := &Request{Op: OpInvoke, ID: "trace-me", Fn: "echo", Payload: []byte("x")}
	if _, err := c.roundTrip(req); err != nil {
		t.Fatal(err)
	}
	c.Close()
	srv.Close()

	out := buf.String()
	if !strings.Contains(out, "trace-me") || !strings.Contains(out, "op=invoke") {
		t.Fatalf("log line missing id/op: %q", out)
	}
}

// syncWriter serializes writes so the handler goroutine and the test body
// never race on the buffer.
type syncWriter struct {
	mu sync.Mutex
	w  *bytes.Buffer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}
