package wire

import (
	"sync"
	"testing"
	"time"

	"continuum/internal/fault"
)

// TestSetChaosOverridesAndRestores: SetChaos installs an injector on a
// running server, and SetChaos(nil) restores clean service — including
// when the server was constructed with a baseline Chaos, which nil
// explicitly overrides (the scenario live backend relies on both
// directions).
func TestSetChaosOverridesAndRestores(t *testing.T) {
	srv, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Invoke("echo", []byte("hi")); err != nil {
		t.Fatal(err)
	}

	srv.SetChaos(fault.NewChaos(fault.ChaosSpec{ErrProb: 1, Seed: 1}))
	if _, err := c.Invoke("echo", []byte("hi")); err == nil {
		t.Fatal("chaos err=1 did not fail the call")
	}

	srv.SetChaos(nil)
	if _, err := c.Invoke("echo", []byte("hi")); err != nil {
		t.Fatalf("SetChaos(nil) did not restore service: %v", err)
	}
}

func TestSetChaosNilOverridesBaseline(t *testing.T) {
	srv, addr := startServer(t)
	// Simulate a server booted with -chaos: baseline injector that fails
	// everything.
	srv.Chaos = fault.NewChaos(fault.ChaosSpec{ErrProb: 1, Seed: 1})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Invoke("echo", []byte("hi")); err == nil {
		t.Fatal("baseline chaos inactive")
	}
	srv.SetChaos(nil) // override-with-nil beats the baseline
	if _, err := c.Invoke("echo", []byte("hi")); err != nil {
		t.Fatalf("SetChaos(nil) did not mask the baseline: %v", err)
	}
}

// TestSetChaosConcurrent hammers SetChaos while calls are in flight;
// meaningful under -race (scripted chaos flips race with dispatch).
func TestSetChaosConcurrent(t *testing.T) {
	srv, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	done := make(chan struct{})
	var flips sync.WaitGroup
	flips.Add(1)
	go func() {
		defer flips.Done()
		delay := fault.NewChaos(fault.ChaosSpec{DelayProb: 1, DelayMean: time.Microsecond, Seed: 1})
		for {
			select {
			case <-done:
				return
			default:
			}
			srv.SetChaos(delay)
			srv.SetChaos(nil)
		}
	}()
	for i := 0; i < 200; i++ {
		if _, err := c.Invoke("echo", []byte("x")); err != nil {
			t.Fatalf("call %d failed under delay-only chaos: %v", i, err)
		}
	}
	close(done)
	flips.Wait()
}
