package wire

// Federation control-plane frames: the register / heartbeat / deregister
// ops a continuumd daemon sends to a continuum-router, and the endpoints
// op clients use to list the router's membership view. These are
// low-rate control frames (one heartbeat per daemon per interval), so
// their bodies ride as ordinary optional fields — JSON omitempty in the
// JSON codec, a JSON blob in the binary codec's rare-field trailers —
// and legacy peers that predate them interoperate unchanged.

// MemberInfo is the body of the federation control ops. A register op
// carries the static half (Name, Addr, Capacity, Functions); heartbeats
// repeat it with the live load snapshot (QueueDepth, InFlight,
// SlotLimit, Cordoned) so the router can route least-loaded without an
// extra round trip; deregister carries Name, Generation, and Draining
// (true = graceful drain, false = immediate leave).
type MemberInfo struct {
	// Name identifies the member; re-registering the same name
	// supersedes the previous incarnation (see Generation).
	Name string `json:"name"`
	// Addr is the address the router dials to reach the member's wire
	// server — the daemon's advertised address, not the connection's
	// source address (which may be NATed or ephemeral).
	Addr string `json:"addr,omitempty"`
	// Capacity is the member's maximum concurrent containers.
	Capacity int `json:"capacity,omitempty"`
	// Functions lists the function names the member serves. Empty means
	// "everything" (a homogeneous fleet needs no capability filtering).
	Functions []string `json:"functions,omitempty"`
	// Generation is the registration incarnation the router assigned:
	// heartbeats and deregisters must echo it, so a frame from a
	// superseded incarnation (a restarted daemon re-registered the name)
	// is detected and rejected instead of corrupting the new state.
	Generation int64 `json:"gen,omitempty"`

	// QueueDepth is the number of invocations waiting for admission at
	// heartbeat time.
	QueueDepth int `json:"queue,omitempty"`
	// InFlight is the number of invocations currently executing.
	InFlight int64 `json:"inflight,omitempty"`
	// SlotLimit is the current (possibly elastic) concurrency limit.
	SlotLimit int `json:"slots,omitempty"`
	// Cordoned reports that the member rejects new work while finishing
	// in-flight work; the router routes around it.
	Cordoned bool `json:"cordoned,omitempty"`
	// Draining marks a deregister as graceful: the member stops
	// receiving new routes but stays listed until it leaves or expires.
	Draining bool `json:"draining,omitempty"`
}

// MemberStatus is one row of the endpoints op: the member's last
// advertised info plus the router's view of its liveness.
type MemberStatus struct {
	MemberInfo
	// State is the router's liveness verdict: "alive", "suspect"
	// (missed heartbeats), or "draining".
	State string `json:"state"`
	// AgeMS is how long ago the last heartbeat (or registration)
	// arrived, in milliseconds.
	AgeMS int64 `json:"age_ms"`
}
