package wire

import (
	"context"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"continuum/internal/faas"
	"continuum/internal/fault"
	"continuum/internal/metrics"
	"continuum/internal/retry"
)

// startServerOn is startServer with a caller-supplied server, so tests
// can attach chaos, metrics, or slow handlers before serving.
func startServerOn(t *testing.T, srv *Server) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)
	t.Cleanup(srv.Close)
	return lis.Addr().String()
}

func echoServer(t *testing.T, name string) *Server {
	t.Helper()
	reg := faas.NewRegistry()
	reg.Register("echo", func(p []byte) ([]byte, error) { return p, nil })
	reg.Register("slow", func(p []byte) ([]byte, error) {
		time.Sleep(150 * time.Millisecond)
		return p, nil
	})
	ep := faas.NewEndpoint(faas.EndpointConfig{Name: name, Capacity: 8}, reg)
	return &Server{Invoker: ep, Registry: reg, Endpoints: []*faas.Endpoint{ep}}
}

func TestCallTimeoutAgainstHungPeer(t *testing.T) {
	// A listener that accepts and never answers: the call must surface a
	// timeout instead of blocking forever.
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			defer conn.Close() // swallow frames, never reply
		}
	}()
	c, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetCallTimeout(50 * time.Millisecond)
	start := time.Now()
	_, err = c.Invoke("echo", []byte("x"))
	if err == nil {
		t.Fatal("call against hung peer succeeded")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("want timeout error, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("timeout took %v", elapsed)
	}
	if !IsRetryable(err) {
		t.Fatal("timeout not classified retryable")
	}
}

func TestInvokeContextDeadline(t *testing.T) {
	srv := echoServer(t, "slowbox")
	addr := startServerOn(t, srv)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := c.InvokeContext(ctx, "slow", nil); err == nil {
		t.Fatal("slow invoke beat a 30ms deadline")
	}
	// A later call without a deadline must not inherit the old one.
	c2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c2.Invoke("echo", []byte("ok")); err != nil {
		t.Fatalf("fresh connection failed: %v", err)
	}
}

func TestRetryablePropagation(t *testing.T) {
	// An endpoint with capacity 1 and a tiny queue wait rejects the second
	// concurrent invoke with ErrOverloaded; the client must see a
	// RemoteError marked retryable.
	reg := faas.NewRegistry()
	release := make(chan struct{})
	reg.Register("hold", func(p []byte) ([]byte, error) {
		<-release
		return p, nil
	})
	ep := faas.NewEndpoint(faas.EndpointConfig{
		Name: "tight", Capacity: 1, QueueWait: 10 * time.Millisecond,
	}, reg)
	srv := &Server{Invoker: ep, Registry: reg, Endpoints: []*faas.Endpoint{ep}}
	addr := startServerOn(t, srv)

	c1, _ := Dial(addr)
	defer c1.Close()
	c2, _ := Dial(addr)
	defer c2.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c1.Invoke("hold", nil)
	}()
	time.Sleep(20 * time.Millisecond) // let the holder take the slot
	_, err := c2.Invoke("hold", nil)
	close(release)
	wg.Wait()
	if err == nil {
		t.Fatal("overloaded invoke succeeded")
	}
	var re *RemoteError
	if !errors.As(err, &re) || !re.Retryable {
		t.Fatalf("overload not marked retryable: %v", err)
	}
	if !IsRetryable(err) {
		t.Fatal("IsRetryable disagrees with RemoteError.Retryable")
	}
	// Application errors must NOT be retryable.
	if _, err := c2.Invoke("ghost", nil); err == nil || IsRetryable(err) {
		t.Fatalf("unknown-function error classified retryable: %v", err)
	}
}

func TestGracefulShutdownDrainsInFlight(t *testing.T) {
	srv := echoServer(t, "drainbox")
	addr := startServerOn(t, srv)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	type result struct {
		out []byte
		err error
	}
	got := make(chan result, 1)
	go func() {
		out, err := c.Invoke("slow", []byte("inflight"))
		got <- result{out, err}
	}()
	time.Sleep(30 * time.Millisecond) // the slow invoke is now mid-flight

	done := make(chan struct{})
	go func() {
		srv.Shutdown(2 * time.Second)
		close(done)
	}()

	r := <-got
	if r.err != nil || string(r.out) != "inflight" {
		t.Fatalf("in-flight request lost during shutdown: %q, %v", r.out, r.err)
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Shutdown did not return after drain")
	}
	// After the drain the connection is closed and new dials fail.
	if _, err := c.Invoke("echo", nil); err == nil {
		t.Fatal("connection survived shutdown")
	}
	if _, err := Dial(addr); err == nil {
		t.Fatal("dial succeeded after shutdown")
	}
}

func TestShutdownForceClosesAfterGrace(t *testing.T) {
	srv := echoServer(t, "forcebox")
	addr := startServerOn(t, srv)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	go c.Invoke("slow", nil) // 150ms handler outlives a 10ms grace
	time.Sleep(30 * time.Millisecond)
	start := time.Now()
	srv.Shutdown(10 * time.Millisecond)
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("forced shutdown took %v", elapsed)
	}
}

func TestChaosErrorInjection(t *testing.T) {
	srv := echoServer(t, "chaosbox")
	m := metrics.NewRegistry()
	srv.Metrics = m
	srv.Chaos = fault.NewChaos(fault.ChaosSpec{ErrProb: 1, Seed: 1})
	addr := startServerOn(t, srv)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Invoke("echo", []byte("x"))
	if err == nil {
		t.Fatal("chaos error not injected")
	}
	var re *RemoteError
	if !errors.As(err, &re) || !re.Retryable {
		t.Fatalf("chaos error not retryable: %v", err)
	}
	if !strings.Contains(err.Error(), "chaos") {
		t.Fatalf("err = %v", err)
	}
	if got := m.Counter(metrics.Label("wire_chaos_injections_total", "kind", "error")).Value(); got == 0 {
		t.Fatal("chaos injection not counted")
	}
}

func TestChaosDropSeversConnection(t *testing.T) {
	srv := echoServer(t, "dropbox")
	srv.Chaos = fault.NewChaos(fault.ChaosSpec{DropProb: 1, Seed: 1})
	addr := startServerOn(t, srv)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetCallTimeout(time.Second)
	_, err = c.Invoke("echo", []byte("x"))
	if err == nil {
		t.Fatal("dropped request returned a response")
	}
	if !IsRetryable(err) {
		t.Fatalf("connection drop not retryable: %v", err)
	}
}

func TestReliableClientRetriesThroughChaos(t *testing.T) {
	srv := echoServer(t, "flaky")
	// ~40% injected errors: plain clients fail often, the reliable client
	// must always get through within its attempt budget.
	srv.Chaos = fault.NewChaos(fault.ChaosSpec{ErrProb: 0.4, Seed: 7})
	addr := startServerOn(t, srv)
	m := metrics.NewRegistry()
	rc, err := NewReliableClient(ReliableConfig{
		Addrs: []string{addr},
		Retry: retry.Policy{MaxAttempts: 10, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond},
		// Error-rate chaos at 40% would trip default breakers mid-test;
		// keep them out of the way so this test isolates retry behavior.
		Breaker:     retry.BreakerConfig{FailureThreshold: 1 << 30},
		CallTimeout: time.Second,
		Metrics:     m,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	for i := 0; i < 50; i++ {
		out, err := rc.Invoke("echo", []byte("p"))
		if err != nil || string(out) != "p" {
			t.Fatalf("invoke %d: %q, %v", i, out, err)
		}
	}
	if m.Counter("wire_client_retries_total").Value() == 0 {
		t.Fatal("no retries recorded under 40% chaos")
	}
}

func TestReliableClientFailsOverToHealthyEndpoint(t *testing.T) {
	bad := echoServer(t, "bad")
	bad.Chaos = fault.NewChaos(fault.ChaosSpec{ErrProb: 1, Seed: 3})
	badAddr := startServerOn(t, bad)
	good := echoServer(t, "good")
	goodAddr := startServerOn(t, good)

	m := metrics.NewRegistry()
	rc, err := NewReliableClient(ReliableConfig{
		Addrs:       []string{badAddr, goodAddr},
		Retry:       retry.Policy{MaxAttempts: 6, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond},
		Breaker:     retry.BreakerConfig{FailureThreshold: 3, Cooldown: 10 * time.Second},
		CallTimeout: time.Second,
		Metrics:     m,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	for i := 0; i < 30; i++ {
		out, err := rc.Invoke("echo", []byte("q"))
		if err != nil || string(out) != "q" {
			t.Fatalf("invoke %d: %q, %v", i, out, err)
		}
	}
	// The bad endpoint's breaker must have tripped and be visible in
	// the metrics the daemon would export.
	states := rc.BreakerStates()
	if states[badAddr] != retry.Open {
		t.Fatalf("bad endpoint breaker = %v, want open", states[badAddr])
	}
	if states[goodAddr] != retry.Closed {
		t.Fatalf("good endpoint breaker = %v, want closed", states[goodAddr])
	}
	if m.Gauge(metrics.Label("wire_breaker_state", "ep", badAddr)).Value() != float64(retry.Open) {
		t.Fatal("breaker gauge not updated")
	}
	if m.Counter(metrics.Label("wire_breaker_trips_total", "ep", badAddr)).Value() == 0 {
		t.Fatal("breaker trip not counted")
	}
	if m.Counter("wire_client_failovers_total").Value() == 0 {
		t.Fatal("no failovers recorded")
	}
}

func TestReliableClientSurvivesEndpointDeath(t *testing.T) {
	dying := echoServer(t, "dying")
	dyingAddr := startServerOn(t, dying)
	stable := echoServer(t, "stable")
	stableAddr := startServerOn(t, stable)

	rc, err := NewReliableClient(ReliableConfig{
		Addrs:       []string{dyingAddr, stableAddr},
		Retry:       retry.Policy{MaxAttempts: 8, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond},
		Breaker:     retry.BreakerConfig{FailureThreshold: 2, Cooldown: 10 * time.Second},
		CallTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	for i := 0; i < 40; i++ {
		if i == 10 {
			dying.Close() // kill one endpoint mid-run
		}
		out, err := rc.Invoke("echo", []byte("r"))
		if err != nil || string(out) != "r" {
			t.Fatalf("invoke %d after death: %q, %v", i, out, err)
		}
	}
}

func TestReliableClientAllBreakersOpen(t *testing.T) {
	// No server listening anywhere: every attempt fails, breakers trip,
	// and the final error is informative rather than a hang.
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	lis.Close() // nothing accepts here any more
	rc, err := NewReliableClient(ReliableConfig{
		Addrs:   []string{addr},
		Retry:   retry.Policy{MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
		Breaker: retry.BreakerConfig{FailureThreshold: 2, Cooldown: time.Minute},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	_, err = rc.Invoke("echo", nil)
	if err == nil {
		t.Fatal("invoke against dead federation succeeded")
	}
	if rc.BreakerStates()[addr] != retry.Open {
		t.Fatalf("breaker = %v, want open", rc.BreakerStates()[addr])
	}
	// With the breaker open and a long cooldown, the next call must fail
	// fast with ErrAllBreakersOpen after exhausting attempts.
	_, err = rc.Invoke("echo", nil)
	if !errors.Is(err, ErrAllBreakersOpen) {
		t.Fatalf("err = %v, want ErrAllBreakersOpen", err)
	}
}
