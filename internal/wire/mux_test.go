package wire

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"continuum/internal/faas"
	"continuum/internal/fault"
	"continuum/internal/metrics"
	"continuum/internal/retry"
)

// TestMultiplexedOutOfOrder: a slow call and a fast call share one
// connection; the fast call must complete while the slow one is still
// in flight — the head-of-line block the multiplexed protocol removes.
func TestMultiplexedOutOfOrder(t *testing.T) {
	srv := echoServer(t, "mux") // has "slow" (150ms) and "echo"
	addr := startServerOn(t, srv)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	slowDone := make(chan error, 1)
	go func() {
		_, err := c.Invoke("slow", []byte("s"))
		slowDone <- err
	}()
	time.Sleep(20 * time.Millisecond) // slow call is on the wire

	start := time.Now()
	out, err := c.Invoke("echo", []byte("fast"))
	fastTook := time.Since(start)
	if err != nil || string(out) != "fast" {
		t.Fatalf("fast call: %q, %v", out, err)
	}
	if fastTook > 100*time.Millisecond {
		t.Fatalf("fast call took %v behind a 150ms slow call: still head-of-line blocked", fastTook)
	}
	if err := <-slowDone; err != nil {
		t.Fatalf("slow call: %v", err)
	}
}

// TestMultiplexHammer is the -race correctness gate for multiplexing:
// N goroutines × M invokes over ONE client against a chaotic server
// (injected latency jitter and retryable errors). Every call must get
// an answer, and every successful echo must return its own payload —
// which proves responses are matched to the right requests even when
// they complete out of order.
func TestMultiplexHammer(t *testing.T) {
	const workers, calls = 16, 40
	reg := faas.NewRegistry()
	reg.Register("echo", func(p []byte) ([]byte, error) { return p, nil })
	ep := faas.NewEndpoint(faas.EndpointConfig{Name: "hammer", Capacity: 32}, reg)
	srv := &Server{
		Invoker: ep, Registry: reg, Endpoints: []*faas.Endpoint{ep},
		// Errors and delay jitter, but no drops: every call must complete.
		Chaos: fault.NewChaos(fault.ChaosSpec{ErrProb: 0.2, DelayProb: 0.2, DelayMean: time.Millisecond, Seed: 11}),
	}
	addr := startServerOn(t, srv)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var wg sync.WaitGroup
	errs := make(chan string, workers*calls)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < calls; i++ {
				want := fmt.Sprintf("payload-%d-%d", w, i)
				out, err := c.Invoke("echo", []byte(want))
				switch {
				case err == nil && string(out) != want:
					errs <- fmt.Sprintf("call %s answered with %q: response matched to the wrong request", want, out)
				case err != nil && !IsRetryable(err):
					errs <- fmt.Sprintf("call %s: unexpected terminal error %v", want, err)
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestClientFailsFastAfterConnDeath: when the server dies, in-flight
// calls fail promptly and later calls fail immediately instead of
// hanging on a dead multiplexer.
func TestClientFailsFastAfterConnDeath(t *testing.T) {
	srv := echoServer(t, "mortal")
	addr := startServerOn(t, srv)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Invoke("echo", []byte("warm")); err != nil {
		t.Fatal(err)
	}

	inFlight := make(chan error, 1)
	go func() {
		_, err := c.Invoke("slow", nil) // 150ms: still running when the server dies
		inFlight <- err
	}()
	time.Sleep(20 * time.Millisecond)
	srv.Shutdown(time.Millisecond) // grace far below the 150ms handler: force-cut

	select {
	case err := <-inFlight:
		if err == nil {
			t.Fatal("in-flight call succeeded after server death")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("in-flight call hung after server death")
	}
	start := time.Now()
	if _, err := c.Invoke("echo", nil); err == nil {
		t.Fatal("call on dead connection succeeded")
	}
	if time.Since(start) > 100*time.Millisecond {
		t.Fatal("call on dead connection did not fail fast")
	}
	if !c.Broken() {
		t.Fatal("client not marked broken after connection death")
	}
}

// TestServerInflightGauge: wire_inflight must track requests currently
// being processed and return to zero when the server goes idle.
func TestServerInflightGauge(t *testing.T) {
	reg := faas.NewRegistry()
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	reg.Register("hold", func(p []byte) ([]byte, error) {
		started <- struct{}{}
		<-release
		return p, nil
	})
	ep := faas.NewEndpoint(faas.EndpointConfig{Name: "gaugebox", Capacity: 8}, reg)
	m := metrics.NewRegistry()
	srv := &Server{Invoker: ep, Registry: reg, Endpoints: []*faas.Endpoint{ep}, Metrics: m}
	addr := startServerOn(t, srv)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const held = 3
	var wg sync.WaitGroup
	for i := 0; i < held; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Invoke("hold", nil); err != nil {
				t.Errorf("hold: %v", err)
			}
		}()
	}
	for i := 0; i < held; i++ {
		<-started // all three are inside their handlers
	}
	if got := m.Gauge("wire_inflight").Value(); got != held {
		t.Fatalf("wire_inflight = %v with %d requests processing", got, held)
	}
	close(release)
	wg.Wait()
	deadline := time.Now().Add(time.Second)
	for m.Gauge("wire_inflight").Value() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("wire_inflight = %v after all requests finished", m.Gauge("wire_inflight").Value())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestReliableClientPoolReuse: the pooled client must reuse warm
// connections instead of dialing per call, and count the reuses.
func TestReliableClientPoolReuse(t *testing.T) {
	srv := echoServer(t, "poolbox")
	addr := startServerOn(t, srv)
	m := metrics.NewRegistry()
	rc, err := NewReliableClient(ReliableConfig{
		Addrs:    []string{addr},
		PoolSize: 2,
		Metrics:  m,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	const n = 10
	for i := 0; i < n; i++ {
		if _, err := rc.Invoke("echo", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	// First two calls dial the two pool slots; the rest must reuse.
	if got := m.Counter("wire_conn_reuse_total").Value(); got != n-2 {
		t.Fatalf("wire_conn_reuse_total = %d, want %d", got, n-2)
	}
}

// TestReliableClientPoolRedialsBrokenSlot: a broken pooled connection
// is replaced in place, without poisoning the other slot.
func TestReliableClientPoolRedialsBrokenSlot(t *testing.T) {
	srv := echoServer(t, "redialbox")
	addr := startServerOn(t, srv)
	rc, err := NewReliableClient(ReliableConfig{
		Addrs:    []string{addr},
		PoolSize: 2,
		Retry:    retry.Policy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	for i := 0; i < 4; i++ {
		if _, err := rc.Invoke("echo", []byte("a")); err != nil {
			t.Fatal(err)
		}
	}
	// Sever both pooled connections out from under the client.
	for _, ep := range rc.snapshot().list {
		ep.mu.Lock()
		for _, c := range ep.conns {
			if c != nil {
				c.conn.Close()
			}
		}
		ep.mu.Unlock()
	}
	for i := 0; i < 4; i++ {
		if _, err := rc.Invoke("echo", []byte("b")); err != nil {
			t.Fatalf("invoke %d after severed pool: %v", i, err)
		}
	}
}

// TestDrainWaitsForPipelinedCalls: a drain must not cut a connection
// with several multiplexed calls in flight — all of them complete.
func TestDrainWaitsForPipelinedCalls(t *testing.T) {
	srv := echoServer(t, "drainmux")
	addr := startServerOn(t, srv)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 4
	results := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			_, err := c.Invoke("slow", []byte("x")) // 150ms each, concurrent
			results <- err
		}()
	}
	time.Sleep(30 * time.Millisecond) // all n are in flight
	done := make(chan struct{})
	go func() {
		srv.Shutdown(2 * time.Second)
		close(done)
	}()
	for i := 0; i < n; i++ {
		if err := <-results; err != nil {
			t.Fatalf("pipelined call lost during drain: %v", err)
		}
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Shutdown hung")
	}
}
