package wire

// Dynamic-membership tests for ReliableClient: the endpoint set a
// continuum-router swaps under live traffic as daemons join, drain, and
// expire. SetEndpoints must preserve surviving endpoints' state, fail
// over traffic off removed ones, and InvokeRouted must honor a routing
// policy's preference order while degrading to plain failover when the
// preference goes stale.

import (
	"context"
	"errors"
	"testing"
	"time"

	"continuum/internal/faas"
	"continuum/internal/retry"
)

// whoServer answers "who" with its own name, so tests can assert which
// endpoint served a call.
func whoServer(t *testing.T, name string) string {
	t.Helper()
	reg := faas.NewRegistry()
	reg.Register("who", func([]byte) ([]byte, error) { return []byte(name), nil })
	ep := faas.NewEndpoint(faas.EndpointConfig{Name: name, Capacity: 8}, reg)
	srv := &Server{Invoker: ep, Registry: reg, Endpoints: []*faas.Endpoint{ep}}
	return startServerOn(t, srv)
}

func fastPolicy(attempts int) retry.Policy {
	return retry.Policy{MaxAttempts: attempts, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}
}

// TestDynamicEmptySetFailsRetryable: a Dynamic client with no members
// yet fails with ErrNoEndpoints — classified retryable, so a routed
// call rides the backoff loop instead of failing outright, and succeeds
// as soon as membership arrives.
func TestDynamicEmptySetFailsRetryable(t *testing.T) {
	r, err := NewReliableClient(ReliableConfig{Dynamic: true, Retry: fastPolicy(2)})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Invoke("who", nil); !errors.Is(err, ErrNoEndpoints) {
		t.Fatalf("invoke on empty set = %v, want ErrNoEndpoints", err)
	}
	if !r.policy().Retryable(ErrNoEndpoints) {
		t.Fatal("ErrNoEndpoints must be retryable: membership can still arrive")
	}

	// Membership arrives mid-backoff: the same retry loop that was
	// failing must pick it up and succeed. A generous attempt budget
	// keeps the loop alive until SetEndpoints lands.
	r2, err := NewReliableClient(ReliableConfig{Dynamic: true, Retry: fastPolicy(200)})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	addr := whoServer(t, "late")
	done := make(chan error, 1)
	go func() {
		_, err := r2.Invoke("who", nil)
		done <- err
	}()
	time.Sleep(2 * time.Millisecond)
	r2.SetEndpoints([]string{addr})
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("invoke after membership arrived: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("invoke did not complete after membership arrived")
	}
}

// TestSetEndpointsReconciles: kept endpoints survive a membership swap
// with their breaker state intact, removed ones drop out of rotation,
// and new ones serve traffic.
func TestSetEndpointsReconciles(t *testing.T) {
	a := whoServer(t, "a")
	b := whoServer(t, "b")
	r, err := NewReliableClient(ReliableConfig{Addrs: []string{a}, Retry: fastPolicy(3)})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if out, err := r.Invoke("who", nil); err != nil || string(out) != "a" {
		t.Fatalf("initial invoke = %q, %v", out, err)
	}
	keptEp := r.snapshot().byAddr[a]

	r.SetEndpoints([]string{a, b})
	if got := r.snapshot().byAddr[a]; got != keptEp {
		t.Fatal("SetEndpoints rebuilt a kept endpoint; breaker state and pooled connections must survive")
	}
	if addrs := r.EndpointAddrs(); len(addrs) != 2 {
		t.Fatalf("EndpointAddrs = %v, want 2 entries", addrs)
	}

	// Remove a: every call must now land on b.
	r.SetEndpoints([]string{b})
	for i := 0; i < 4; i++ {
		out, err := r.Invoke("who", nil)
		if err != nil || string(out) != "b" {
			t.Fatalf("invoke %d after removing a = %q, %v", i, out, err)
		}
	}
}

// TestInvokeRoutedPreference: the preference list steers the first
// attempt; a dead preferred endpoint is retried past, in order; an
// address absent from the set is skipped without an attempt.
func TestInvokeRoutedPreference(t *testing.T) {
	a := whoServer(t, "a")
	b := whoServer(t, "b")
	// A dead address: reserve a port, then close the listener.
	deadSrv := echoServer(t, "dead")
	dead := startServerOn(t, deadSrv)
	deadSrv.Close()

	r, err := NewReliableClient(ReliableConfig{Addrs: []string{a, b, dead}, Retry: fastPolicy(4)})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Preference wins over round-robin.
	for i := 0; i < 3; i++ {
		out, err := r.InvokeRouted(context.Background(), "who", nil, []string{b})
		if err != nil || string(out) != "b" {
			t.Fatalf("routed invoke %d = %q, %v, want b", i, out, err)
		}
	}
	// A dead first preference fails over to the second, in order.
	out, err := r.InvokeRouted(context.Background(), "who", nil, []string{dead, a})
	if err != nil || string(out) != "a" {
		t.Fatalf("routed invoke past dead preference = %q, %v, want a", out, err)
	}
	// A preference no longer in the set degrades to plain selection.
	r.SetEndpoints([]string{a})
	out, err = r.InvokeRouted(context.Background(), "who", nil, []string{b, dead})
	if err != nil || string(out) != "a" {
		t.Fatalf("routed invoke with stale preference = %q, %v, want a", out, err)
	}
}
