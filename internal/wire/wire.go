// Package wire exposes the faas layer over TCP with a length-prefixed
// frame protocol (JSON, with an opt-in binary codec — see codec.go),
// giving the reproduction a real multi-process mode: continuumd serves
// endpoints, continuumctl (or any Client) invokes functions across
// them. Frames are capped to guard against runaway peers.
//
// The protocol is multiplexed: clients pipeline many calls over one
// connection, and the server dispatches each connection's requests to a
// bounded worker pool, writing responses as they complete — out of
// order when a slow function would otherwise head-of-line-block the
// calls behind it. Responses are matched to requests by ID. Requests
// without an ID (legacy peers, which never pipeline) are processed
// strictly serially, preserving the old in-order contract.
//
// Observability: clients stamp every request with a generated ID which
// the server echoes on the response (old peers that omit or drop the
// field interoperate unchanged — it is a plain optional JSON field).
// A server given a metrics registry counts requests, errors, and frame
// bytes by op, and tracks in-flight requests as a gauge; given a logger
// it emits one structured line per request carrying the request ID, so
// a slow or failing invocation can be correlated across client and
// server logs.
//
// ReliableClient layers retry, failover, per-endpoint circuit breaking,
// and optional hedging (HedgeConfig) over the raw client: when a call
// outlives the hedge delay — fixed, or derived from the observed latency
// quantile — a second arm is launched at a different endpoint, the first
// answer wins, and the stale arm is cancelled without charging its
// endpoint's breaker.
package wire

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"continuum/internal/faas"
	"continuum/internal/fault"
	"continuum/internal/metrics"
	"continuum/internal/trace"
)

// MaxFrame bounds a single frame (16 MiB) so a corrupt length prefix
// cannot allocate unbounded memory.
const MaxFrame = 16 << 20

// DefaultDialTimeout bounds the TCP connect in Dial, so a blackholed
// address fails fast instead of hanging the caller for the kernel's
// minutes-long SYN retry budget.
const DefaultDialTimeout = 5 * time.Second

// DefaultConnWorkers bounds concurrent request processing per
// connection when Server.Workers is zero. Capacity-limited endpoints
// bound actual handler concurrency below this; the pool only caps how
// many requests one connection may have in flight inside the server.
const DefaultConnWorkers = 64

// ErrFrameTooLarge is returned when a peer announces an oversized frame.
var ErrFrameTooLarge = errors.New("wire: frame exceeds limit")

// RemoteError is an application-level error response: the server
// answered with a well-formed frame carrying an error, so the connection
// itself is healthy. Retryable marks errors the server declared
// transient (overload, injected chaos) — safe to retry elsewhere.
// RetryAfterHint, when nonzero, is the server's Retry-After: how long it
// wants this client to back off before retrying (shed requests carry the
// admission controller's current queue-wait estimate).
type RemoteError struct {
	Msg            string
	Retryable      bool
	RetryAfterHint time.Duration
}

// Error returns the server's message.
func (e *RemoteError) Error() string { return e.Msg }

// RetryAfter exposes the server's backoff hint in the shape
// retry.RetryAfterHint extracts, so retry.Policy.Do floors its jittered
// backoff at the server's ask.
func (e *RemoteError) RetryAfter() time.Duration { return e.RetryAfterHint }

// IsRetryable classifies an error from a Client call as safe to retry on
// another connection or endpoint: transport failures (dials, resets,
// EOFs, timeouts) and server responses explicitly marked retryable.
// Definitive application errors (unknown function, handler failure) are
// not retryable — re-running them elsewhere would mask real bugs.
func IsRetryable(err error) bool {
	if err == nil {
		return false
	}
	var re *RemoteError
	if errors.As(err, &re) {
		return re.Retryable
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne)
}

// Op identifies a request type.
type Op string

// Protocol operations.
const (
	OpInvoke Op = "invoke"
	OpBatch  Op = "batch"
	OpList   Op = "list"
	OpStats  Op = "stats"
	OpTop    Op = "top"
	OpPing   Op = "ping"
	// OpTrace pulls the server's retained spans (Fn, when set, filters to
	// one trace ID) — the wire half of the pull-based trace store; the
	// other half is continuumd's /debug/traces HTTP endpoint.
	OpTrace Op = "trace"
	// OpRegister joins the federation: a daemon announces itself to a
	// continuum-router with Request.Member (name, advertised address,
	// capacity, functions). The response carries the assigned
	// Generation and the heartbeat interval (Response.HeartbeatMS).
	OpRegister Op = "register"
	// OpHeartbeat refreshes a member's liveness and load snapshot.
	// Request.Member repeats the registration body plus the live
	// queue-depth/in-flight/cordon figures and must echo the assigned
	// Generation; a router that no longer knows the member (expired, or
	// superseded by a newer registration) answers with an error telling
	// the daemon to re-register.
	OpHeartbeat Op = "heartbeat"
	// OpDeregister leaves the federation: Member.Draining true is a
	// graceful drain (stop routing new work, stay listed while in-flight
	// work finishes), false an immediate departure.
	OpDeregister Op = "deregister"
	// OpEndpoints lists the router's membership view
	// (Response.Members) — the wire half of `continuumctl endpoints`.
	OpEndpoints Op = "endpoints"
)

// Request is a client frame. ID, when set, is echoed verbatim on the
// response; peers predating the field simply never see it (optional JSON
// both ways), so mixed-version federations keep working. Accept, when
// set to AcceptBinary, advertises that the sender understands binary
// response frames — another optional field old servers ignore.
//
// TraceID/SpanID carry distributed trace context: the trace this call
// belongs to and the caller's span (the parent for every span the server
// records while processing it). Like ID they are optional in both
// codecs — a legacy peer drops them and the trace simply loses that
// hop's spans, never its integrity.
//
// Priority is the request's admission class (faas.PriorityLow = -1,
// 0 = normal, faas.PriorityHigh = 1): under overload the server sheds
// lower classes first. Zero — the wire default — is normal, so legacy
// peers that never send the field land in the normal class, and frames
// from priority-unaware clients stay byte-identical in both codecs.
// Member is the federation control-plane body (register, heartbeat,
// deregister — see MemberInfo). Like the trace fields it is optional in
// both codecs: requests that don't carry it stay byte-identical to
// pre-federation frames, and legacy peers simply drop it.
type Request struct {
	Op       Op          `json:"op"`
	ID       string      `json:"id,omitempty"`
	Accept   string      `json:"accept,omitempty"`
	Fn       string      `json:"fn,omitempty"`
	Payload  []byte      `json:"payload,omitempty"`
	Batch    [][]byte    `json:"batch,omitempty"`
	TraceID  string      `json:"trace,omitempty"`
	SpanID   string      `json:"span,omitempty"`
	Priority int         `json:"prio,omitempty"`
	Member   *MemberInfo `json:"member,omitempty"`
}

// EndpointStats mirrors one endpoint's counters.
type EndpointStats struct {
	Name        string `json:"name"`
	Capacity    int    `json:"capacity"`
	Running     int64  `json:"running"`
	Invocations int64  `json:"invocations"`
	ColdStarts  int64  `json:"cold_starts"`
	WarmHits    int64  `json:"warm_hits"`
}

// FnMetrics is one function's live latency profile on one endpoint, the
// unit of the top op (continuumctl top renders a table of these).
// Latencies are seconds.
type FnMetrics struct {
	Endpoint   string  `json:"ep"`
	Fn         string  `json:"fn"`
	Count      int64   `json:"count"`
	P50        float64 `json:"p50"`
	P90        float64 `json:"p90"`
	P99        float64 `json:"p99"`
	ColdStarts int64   `json:"cold_starts"`
	WarmHits   int64   `json:"warm_hits"`
}

// Response is a server frame. ID echoes the request's ID. Retryable,
// when set on an error response, marks the failure as transient — the
// client may safely retry the request on this or another endpoint.
// Codec acks the frame encoding the server chose (set when it answers
// in binary), upgrading the connection for codec-aware clients. Like ID
// these are optional JSON fields, so mixed-version peers interoperate.
// RetryAfterMS, set on shed (admission-rejected) error responses, is the
// server's Retry-After hint in milliseconds: how long the client should
// back off before retrying. Optional in both codecs (JSON omitempty;
// binary rides the rare-field extension), so unloaded responses stay
// byte-identical and legacy peers simply never see it.
// Members, HeartbeatMS, and Generation are the federation control-plane
// results: Members answers the endpoints op, HeartbeatMS and Generation
// answer register (the interval the daemon must heartbeat at, and the
// incarnation it must echo). All optional in both codecs.
type Response struct {
	OK           bool            `json:"ok"`
	ID           string          `json:"id,omitempty"`
	Codec        string          `json:"codec,omitempty"`
	Error        string          `json:"error,omitempty"`
	Retryable    bool            `json:"retryable,omitempty"`
	RetryAfterMS int64           `json:"retry_after_ms,omitempty"`
	Payload      []byte          `json:"payload,omitempty"`
	Batch        [][]byte        `json:"batch,omitempty"`
	Names        []string        `json:"names,omitempty"`
	Stats        []EndpointStats `json:"stats,omitempty"`
	Top          []FnMetrics     `json:"top,omitempty"`
	Spans        []trace.Span    `json:"spans,omitempty"` // OpTrace result
	Members      []MemberStatus  `json:"members,omitempty"`
	HeartbeatMS  int64           `json:"heartbeat_ms,omitempty"`
	Generation   int64           `json:"generation,omitempty"`
}

// OpsHandler extends a Server with additional ops without the Server
// knowing them. Dispatch offers every request to the handler first;
// returning handled=false falls through to the built-in ops. This is
// how a continuum-router serves the federation control ops (register,
// heartbeat, deregister, endpoints) on the same listener that routes
// invocations: the router's registry implements OpsHandler while
// invocations flow through the ordinary Invoker path, keeping span and
// priority threading.
type OpsHandler interface {
	HandleOp(req *Request) (resp *Response, handled bool)
}

// Server serves the protocol over accepted connections.
type Server struct {
	Invoker faas.Invoker
	Batcher interface {
		InvokeBatch(fn string, payloads [][]byte) ([][]byte, error)
	}
	Registry  *faas.Registry
	Endpoints []*faas.Endpoint

	// Ops, when set, is offered every request before the built-in
	// dispatch — see OpsHandler. Unhandled requests fall through.
	Ops OpsHandler

	// Workers bounds concurrent request processing per connection
	// (0 = DefaultConnWorkers). Requests without an ID — legacy peers,
	// which never pipeline — are always processed serially.
	Workers int

	// Metrics, when set, receives per-op counters (wire_requests_total,
	// wire_errors_total, wire_request_bytes_total,
	// wire_response_bytes_total, all labeled {op}), the wire_inflight
	// gauge, and powers the top op. Share it with the endpoints'
	// SetMetrics so one /metrics exposition covers the whole daemon.
	Metrics *metrics.Registry
	// Logger, when set, emits one structured line per request with the
	// request ID, trace ID, op, function, outcome, and wall-clock
	// duration.
	Logger *slog.Logger

	// Name labels this process's spans (and the trace op's service
	// attribution). Empty falls back to "server".
	Name string
	// Spans, when set, records one server span per traced request (a
	// request carrying a TraceID) into a bounded ring, answers the trace
	// op from it, and threads trace context into the endpoints behind
	// ContextInvoker so queue-wait and exec spans join the same trace.
	// Share one store with the endpoints' SetSpans so a single pull
	// returns the whole daemon's view of a trace. Nil records nothing
	// and costs nothing on the request path.
	Spans *trace.SpanStore

	// Chaos, when set, injects faults ahead of every dispatch: latency
	// spikes, retryable error responses, dropped connections, and whole
	// down phases (see fault.ChaosSpec). Injections are counted as
	// wire_chaos_injections_total{kind} when Metrics is set. This is how
	// a real daemon doubles as its own fault injector for end-to-end
	// reliability tests (continuumd -chaos). Set it before Serve; to
	// change injection while serving, use SetChaos.
	Chaos *fault.Chaos

	// chaosOverride, once SetChaos has been called, supersedes Chaos for
	// every subsequent request. It holds a slot rather than the *Chaos
	// itself so "override with nil" (chaos off) is distinguishable from
	// "never overridden" (fall back to the Chaos field).
	chaosOverride atomic.Pointer[chaosSlot]

	inflightOnce sync.Once
	inflight     *metrics.Gauge // wire_inflight, nil without Metrics

	mu       sync.Mutex
	lis      net.Listener
	closed   bool
	draining bool
	conns    map[*countConn]struct{}
	wg       sync.WaitGroup
}

// countConn wraps a connection for the server side of multiplexing: a
// group-commit writer that serializes — and under load batches —
// response frames, and an in-flight request count so a draining server
// knows which connections it must not cut. Reads belong to the
// connection's single reader goroutine.
type countConn struct {
	net.Conn
	gw       *groupWriter
	inflight atomic.Int64
}

func newCountConn(conn net.Conn) *countConn {
	cc := &countConn{Conn: conn}
	// A write failure is terminal for the connection (torn framing);
	// severing it unblocks the reader, which tears the handler down.
	cc.gw = newGroupWriter(conn, nil, func(error) { conn.Close() })
	return cc
}

// writeFrame queues one response frame on the connection's batching
// writer and returns its wire size. Concurrent workers' responses
// coalesce into shared syscalls.
func (c *countConn) writeFrame(v any, codec Codec) (int64, error) {
	return c.gw.writeFrame(v, codec)
}

// Serve accepts connections until the listener closes. It returns nil
// after Close.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	s.lis = lis
	s.mu.Unlock()
	for {
		conn, err := lis.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				s.wg.Wait()
				return nil
			}
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// Close stops accepting, closes idle connections, and drains in-flight
// requests with no time bound. Use Shutdown for a bounded drain.
func (s *Server) Close() {
	s.drain(nil)
}

// Shutdown gracefully stops the server: it stops accepting, closes idle
// connections, and lets requests already being processed finish. After
// the grace period any connection still open is force-closed (its client
// sees a transport error and can retry elsewhere). Shutdown returns once
// every connection handler has exited.
func (s *Server) Shutdown(grace time.Duration) {
	t := time.NewTimer(grace)
	defer t.Stop()
	s.drain(t.C)
}

// drain implements Close/Shutdown; a nil deadline waits forever.
func (s *Server) drain(deadline <-chan time.Time) {
	s.mu.Lock()
	s.closed = true
	s.draining = true
	lis := s.lis
	for c := range s.conns {
		if c.inflight.Load() == 0 {
			// Idle: unblock its ReadFrame. The barrier lets a response
			// that is still in the batching writer reach the wire first;
			// run it off the lock so a wedged peer cannot stall the drain
			// (the grace deadline force-closes it regardless).
			go func(c *countConn) {
				c.gw.barrier()
				c.Close()
			}(c)
		}
	}
	s.mu.Unlock()
	if lis != nil {
		lis.Close()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-deadline:
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
	}
}

// isDraining reports whether a drain has started.
func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// inflightGauge lazily resolves the wire_inflight gauge.
func (s *Server) inflightGauge() *metrics.Gauge {
	if s.Metrics == nil {
		return nil
	}
	s.inflightOnce.Do(func() {
		s.inflight = s.Metrics.Gauge("wire_inflight")
	})
	return s.inflight
}

// handle is one connection's reader loop: it reads frames and fans each
// request out to a bounded worker pool, so a slow call never blocks the
// calls pipelined behind it. Responses are written as they complete,
// serialized by the connection's write mutex. Legacy ID-less requests
// run inline, keeping strict-serial semantics for peers that expect
// in-order responses.
func (s *Server) handle(conn net.Conn) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		conn.Close()
		return
	}
	// Created under the lock so the draining check above covers it: a
	// countConn spawns the groupWriter flusher, which only an accepted
	// connection's teardown path stops.
	cc := newCountConn(conn)
	if s.conns == nil {
		s.conns = make(map[*countConn]struct{})
	}
	s.conns[cc] = struct{}{}
	s.mu.Unlock()

	workers := s.Workers
	if workers <= 0 {
		workers = DefaultConnWorkers
	}
	// Persistent worker pool, grown on demand: dispatching a request is a
	// channel send to an already-running goroutine, not a goroutine spawn
	// (whose fresh stack would regrow through the handler on every
	// single request). The buffered channel doubles as the backpressure
	// bound: the reader blocks once `workers` requests are queued beyond
	// the ones being processed.
	tasks := make(chan connTask, workers)
	var spawned int
	var idle atomic.Int64
	var cwg sync.WaitGroup
	defer func() {
		close(tasks)
		cwg.Wait()      // every dispatched request has queued its response
		cc.gw.stop()    // flusher drains the queue and exits
		cc.gw.barrier() // queued responses are on the wire (or the conn died)
		s.mu.Lock()
		delete(s.conns, cc)
		s.mu.Unlock()
		cc.Close()
	}()
	br := bufio.NewReaderSize(cc.Conn, 64<<10) // a pipelined burst reads in one syscall
	for {
		req := new(Request)
		codec, inB, err := readFrameCodecN(br, req)
		if err != nil {
			return // EOF, bad peer, or drain cut: drop the connection
		}
		// Read timestamp feeds the traced requests' worker-pool queue-wait
		// attribution; untraced serving skips the clock read.
		var read time.Time
		if s.Spans != nil && req.TraceID != "" {
			read = time.Now()
		}
		cc.inflight.Add(1)
		if req.ID == "" {
			s.process(cc, req, codec, inB, read)
		} else {
			if idle.Load() == 0 && spawned < workers {
				spawned++
				cwg.Add(1)
				go func() {
					defer cwg.Done()
					for {
						idle.Add(1)
						t, ok := <-tasks
						idle.Add(-1)
						if !ok {
							return
						}
						s.process(cc, t.req, t.codec, t.inB, t.read)
					}
				}()
			}
			tasks <- connTask{req, codec, inB, read}
		}
		if s.isDraining() {
			return // graceful shutdown: stop reading, finish what's in flight
		}
	}
}

// connTask is one dispatched request on its way to a connection worker.
type connTask struct {
	req   *Request
	codec Codec
	inB   int64
	read  time.Time // when the frame left the reader (traced requests only)
}

// serviceName labels this server's spans.
func (s *Server) serviceName() string {
	if s.Name != "" {
		return s.Name
	}
	return "server"
}

// process serves one request end to end: chaos injection, dispatch,
// response write, accounting. It decrements the connection's in-flight
// count and, during a drain, closes the connection once it goes idle so
// the blocked reader exits.
func (s *Server) process(cc *countConn, req *Request, codec Codec, inB int64, read time.Time) {
	start := time.Now()
	// Traced request on a traced server: record one server span parented
	// to the caller's span, covering chaos, dispatch, and response
	// enqueue. The worker-pool wait (frame read to processing start) is
	// attributed explicitly so queueing inside the server is visible.
	var sp *trace.ActiveSpan
	if s.Spans != nil && req.TraceID != "" {
		sp = s.Spans.StartSpan(trace.SpanContext{TraceID: req.TraceID, SpanID: req.SpanID},
			s.serviceName(), string(req.Op), trace.KindServer)
		if !read.IsZero() {
			sp.SetAttr("pool_wait_us", strconv.FormatInt(start.Sub(read).Microseconds(), 10))
		}
	}
	g := s.inflightGauge()
	if g != nil {
		g.Add(1)
	}
	done := func() {
		if g != nil {
			g.Add(-1)
		}
		if cc.inflight.Add(-1) == 0 && s.isDraining() {
			// Drain: last in-flight request just finished. Let its
			// response clear the batching writer before cutting the
			// connection out from under the blocked reader.
			cc.gw.barrier()
			cc.Close()
		}
	}
	var resp *Response
	if chaos := s.chaos(); chaos != nil {
		act, delay := chaos.Next()
		if delay > 0 {
			s.countChaos("delay")
			time.Sleep(delay)
		}
		switch act {
		case fault.ChaosDrop:
			s.countChaos("drop")
			if sp != nil {
				sp.SetErr(errors.New("chaos: dropped connection"))
				sp.End()
			}
			done()
			cc.Close() // sever mid-request, like a crashing endpoint
			return
		case fault.ChaosError:
			s.countChaos("error")
			resp = &Response{Error: "chaos: injected error", Retryable: true}
		}
	}
	if resp == nil {
		resp = s.dispatch(req, sp)
	}
	resp.ID = req.ID
	if sp != nil {
		if resp.Error != "" {
			sp.SetErr(errors.New(resp.Error))
		}
		sp.End()
	}
	// Answer in binary when the request arrived in binary or advertised
	// it; the Codec ack tells the client the upgrade is on.
	if codec == CodecBinary || req.Accept == AcceptBinary {
		codec = CodecBinary
		resp.Codec = codecBinaryName
	} else {
		codec = CodecJSON
	}
	outB, err := cc.writeFrame(resp, codec)
	done()
	if err == nil {
		s.observe(req, resp, time.Since(start), inB, outB)
	}
}

// chaosSlot wraps an injector (possibly nil) for atomic replacement.
type chaosSlot struct{ c *fault.Chaos }

// SetChaos replaces the server's fault injector for all subsequent
// requests; nil turns injection off. Safe to call while serving — this
// is how a scenario's live runner flips endpoints between healthy,
// flaky, and dead mid-run without restarting them. In-flight requests
// finish under whatever injector they drew at dispatch.
func (s *Server) SetChaos(c *fault.Chaos) {
	s.chaosOverride.Store(&chaosSlot{c: c})
}

// chaos returns the injector in force: the last SetChaos value if any,
// else the construction-time Chaos field.
func (s *Server) chaos() *fault.Chaos {
	if slot := s.chaosOverride.Load(); slot != nil {
		return slot.c
	}
	return s.Chaos
}

// countChaos tallies one injected fault by kind.
func (s *Server) countChaos(kind string) {
	if s.Metrics != nil {
		s.Metrics.Counter(metrics.Label("wire_chaos_injections_total", "kind", kind)).Inc()
	}
}

// observe publishes one request's accounting: per-op counters into the
// metrics registry and one structured log line. Both sinks are optional
// and independently nil-safe.
func (s *Server) observe(req *Request, resp *Response, d time.Duration, inB, outB int64) {
	op := string(req.Op)
	if s.Metrics != nil {
		s.Metrics.Counter(metrics.Label("wire_requests_total", "op", op)).Inc()
		if !resp.OK {
			s.Metrics.Counter(metrics.Label("wire_errors_total", "op", op)).Inc()
		}
		s.Metrics.Counter(metrics.Label("wire_request_bytes_total", "op", op)).Add(inB)
		s.Metrics.Counter(metrics.Label("wire_response_bytes_total", "op", op)).Add(outB)
	}
	if s.Logger != nil {
		attrs := []any{
			"id", req.ID, "op", op, "fn", req.Fn, "ok", resp.OK,
			"dur_ms", float64(d.Microseconds()) / 1000, "in_bytes", inB, "out_bytes", outB,
		}
		if req.TraceID != "" {
			attrs = append(attrs, "trace", req.TraceID)
		}
		if resp.Error != "" {
			attrs = append(attrs, "error", resp.Error)
			s.Logger.Warn("request", attrs...)
		} else {
			s.Logger.Info("request", attrs...)
		}
	}
}

// top summarizes every faas_invoke_duration_seconds histogram in the
// registry into per-(endpoint, function) latency percentiles, joined with
// the matching cold/warm counters. Sorted by endpoint then function for
// stable rendering.
func (s *Server) top() []FnMetrics {
	var out []FnMetrics
	s.Metrics.EachHistogram(func(name string, h *metrics.Histogram) {
		base, labels := metrics.SplitLabels(name)
		if base != "faas_invoke_duration_seconds" {
			return
		}
		ep, fn := labels["ep"], labels["fn"]
		out = append(out, FnMetrics{
			Endpoint:   ep,
			Fn:         fn,
			Count:      h.Count(),
			P50:        h.P50(),
			P90:        h.P90(),
			P99:        h.P99(),
			ColdStarts: s.Metrics.Counter(metrics.Label("faas_cold_starts_total", "ep", ep, "fn", fn)).Value(),
			WarmHits:   s.Metrics.Counter(metrics.Label("faas_warm_hits_total", "ep", ep, "fn", fn)).Value(),
		})
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].Endpoint != out[j].Endpoint {
			return out[i].Endpoint < out[j].Endpoint
		}
		return out[i].Fn < out[j].Fn
	})
	return out
}

// dispatch routes one decoded request to the right backend. sp, when
// non-nil, is the server span covering this request; its context is
// threaded into context-aware invokers so endpoint spans (queue-wait,
// exec) join the request's trace.
func (s *Server) dispatch(req *Request, sp *trace.ActiveSpan) *Response {
	if s.Ops != nil {
		if resp, handled := s.Ops.HandleOp(req); handled {
			return resp
		}
	}
	switch req.Op {
	case OpPing:
		return &Response{OK: true}
	case OpInvoke:
		var out []byte
		var err error
		if ci, ok := s.Invoker.(faas.ContextInvoker); ok {
			ctx := context.Background()
			if req.Priority != 0 {
				ctx = faas.WithPriority(ctx, faas.Priority(req.Priority))
			}
			if sp != nil {
				ctx = trace.NewContext(ctx, sp.Context())
			}
			out, err = ci.InvokeContext(ctx, req.Fn, req.Payload)
		} else {
			out, err = s.Invoker.Invoke(req.Fn, req.Payload)
		}
		if err != nil {
			// Overload rejections, a cordoned endpoint, and a draining
			// endpoint never started the work, so the client may safely
			// retry elsewhere.
			retryable := errors.Is(err, faas.ErrOverloaded) ||
				errors.Is(err, faas.ErrClosed) || errors.Is(err, faas.ErrCordoned)
			resp := &Response{Error: err.Error(), Retryable: retryable}
			// A shed request carries the admission controller's backoff
			// hint so the client's retry floors at the server's ask
			// instead of re-amplifying the overload.
			var oe *faas.OverloadError
			if errors.As(err, &oe) && oe.RetryAfter > 0 {
				resp.RetryAfterMS = int64(oe.RetryAfter / time.Millisecond)
				if resp.RetryAfterMS == 0 {
					resp.RetryAfterMS = 1 // sub-millisecond hints still round up, not off
				}
			}
			return resp
		}
		return &Response{OK: true, Payload: out}
	case OpBatch:
		if s.Batcher == nil {
			return &Response{Error: "wire: batch unsupported"}
		}
		outs, err := s.Batcher.InvokeBatch(req.Fn, req.Batch)
		if err != nil {
			return &Response{Error: err.Error()}
		}
		return &Response{OK: true, Batch: outs}
	case OpList:
		if s.Registry == nil {
			return &Response{Error: "wire: no registry"}
		}
		return &Response{OK: true, Names: s.Registry.Names()}
	case OpTop:
		if s.Metrics == nil {
			return &Response{Error: "wire: no metrics registry (start the daemon with metrics enabled)"}
		}
		return &Response{OK: true, Top: s.top()}
	case OpTrace:
		if s.Spans == nil {
			return &Response{Error: "wire: no span store (start the daemon with tracing enabled)"}
		}
		var src []*trace.Span
		if req.Fn != "" {
			src = s.Spans.Trace(req.Fn)
		} else {
			src = s.Spans.Snapshot()
		}
		spans := make([]trace.Span, len(src))
		for i, p := range src {
			spans[i] = *p
		}
		return &Response{OK: true, Spans: spans}
	case OpStats:
		var stats []EndpointStats
		for _, ep := range s.Endpoints {
			stats = append(stats, EndpointStats{
				Name:        ep.Name(),
				Capacity:    ep.Capacity(),
				Running:     ep.Running(),
				Invocations: ep.Invocations(),
				ColdStarts:  ep.ColdStarts(),
				WarmHits:    ep.WarmHits(),
			})
		}
		return &Response{OK: true, Stats: stats}
	default:
		return &Response{Error: fmt.Sprintf("wire: unknown op %q", req.Op)}
	}
}
