// Package wire exposes the faas layer over TCP with a length-prefixed
// JSON frame protocol, giving the reproduction a real multi-process mode:
// continuumd serves endpoints, continuumctl (or any Client) invokes
// functions across them. Frames are capped to guard against runaway
// peers; connections handle requests sequentially while the server
// accepts connections concurrently.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"continuum/internal/faas"
)

// MaxFrame bounds a single frame (16 MiB) so a corrupt length prefix
// cannot allocate unbounded memory.
const MaxFrame = 16 << 20

// ErrFrameTooLarge is returned when a peer announces an oversized frame.
var ErrFrameTooLarge = errors.New("wire: frame exceeds limit")

// Op identifies a request type.
type Op string

// Protocol operations.
const (
	OpInvoke Op = "invoke"
	OpBatch  Op = "batch"
	OpList   Op = "list"
	OpStats  Op = "stats"
	OpPing   Op = "ping"
)

// Request is a client frame.
type Request struct {
	Op      Op       `json:"op"`
	Fn      string   `json:"fn,omitempty"`
	Payload []byte   `json:"payload,omitempty"`
	Batch   [][]byte `json:"batch,omitempty"`
}

// EndpointStats mirrors one endpoint's counters.
type EndpointStats struct {
	Name        string `json:"name"`
	Capacity    int    `json:"capacity"`
	Running     int64  `json:"running"`
	Invocations int64  `json:"invocations"`
	ColdStarts  int64  `json:"cold_starts"`
	WarmHits    int64  `json:"warm_hits"`
}

// Response is a server frame.
type Response struct {
	OK      bool            `json:"ok"`
	Error   string          `json:"error,omitempty"`
	Payload []byte          `json:"payload,omitempty"`
	Batch   [][]byte        `json:"batch,omitempty"`
	Names   []string        `json:"names,omitempty"`
	Stats   []EndpointStats `json:"stats,omitempty"`
}

// WriteFrame writes v as a 4-byte big-endian length followed by JSON.
func WriteFrame(w io.Writer, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("wire: marshal: %w", err)
	}
	if len(body) > MaxFrame {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// ReadFrame reads one frame into v.
func ReadFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return ErrFrameTooLarge
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return err
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("wire: unmarshal: %w", err)
	}
	return nil
}

// Server serves the protocol over accepted connections.
type Server struct {
	Invoker faas.Invoker
	Batcher interface {
		InvokeBatch(fn string, payloads [][]byte) ([][]byte, error)
	}
	Registry  *faas.Registry
	Endpoints []*faas.Endpoint

	mu     sync.Mutex
	lis    net.Listener
	closed bool
	wg     sync.WaitGroup
}

// Serve accepts connections until the listener closes. It returns nil
// after Close.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	s.lis = lis
	s.mu.Unlock()
	for {
		conn, err := lis.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				s.wg.Wait()
				return nil
			}
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// Close stops accepting and waits for in-flight connections to drain.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	lis := s.lis
	s.mu.Unlock()
	if lis != nil {
		lis.Close()
	}
	s.wg.Wait()
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	for {
		var req Request
		if err := ReadFrame(conn, &req); err != nil {
			return // EOF or bad peer: drop the connection
		}
		resp := s.dispatch(&req)
		if err := WriteFrame(conn, resp); err != nil {
			return
		}
	}
}

func (s *Server) dispatch(req *Request) *Response {
	switch req.Op {
	case OpPing:
		return &Response{OK: true}
	case OpInvoke:
		out, err := s.Invoker.Invoke(req.Fn, req.Payload)
		if err != nil {
			return &Response{Error: err.Error()}
		}
		return &Response{OK: true, Payload: out}
	case OpBatch:
		if s.Batcher == nil {
			return &Response{Error: "wire: batch unsupported"}
		}
		outs, err := s.Batcher.InvokeBatch(req.Fn, req.Batch)
		if err != nil {
			return &Response{Error: err.Error()}
		}
		return &Response{OK: true, Batch: outs}
	case OpList:
		if s.Registry == nil {
			return &Response{Error: "wire: no registry"}
		}
		return &Response{OK: true, Names: s.Registry.Names()}
	case OpStats:
		var stats []EndpointStats
		for _, ep := range s.Endpoints {
			stats = append(stats, EndpointStats{
				Name:        ep.Name(),
				Capacity:    ep.Capacity(),
				Running:     ep.Running(),
				Invocations: ep.Invocations(),
				ColdStarts:  ep.ColdStarts(),
				WarmHits:    ep.WarmHits(),
			})
		}
		return &Response{OK: true, Stats: stats}
	default:
		return &Response{Error: fmt.Sprintf("wire: unknown op %q", req.Op)}
	}
}

// Client is a synchronous protocol client. It is safe for concurrent use:
// calls serialize on the single connection.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) roundTrip(req *Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := WriteFrame(c.conn, req); err != nil {
		return nil, err
	}
	var resp Response
	if err := ReadFrame(c.conn, &resp); err != nil {
		return nil, err
	}
	if !resp.OK {
		return &resp, errors.New(resp.Error)
	}
	return &resp, nil
}

// Ping round-trips a no-op frame.
func (c *Client) Ping() error {
	_, err := c.roundTrip(&Request{Op: OpPing})
	return err
}

// Invoke calls fn remotely.
func (c *Client) Invoke(fn string, payload []byte) ([]byte, error) {
	resp, err := c.roundTrip(&Request{Op: OpInvoke, Fn: fn, Payload: payload})
	if err != nil {
		return nil, err
	}
	return resp.Payload, nil
}

// InvokeBatch calls fn with several payloads in one frame.
func (c *Client) InvokeBatch(fn string, payloads [][]byte) ([][]byte, error) {
	resp, err := c.roundTrip(&Request{Op: OpBatch, Fn: fn, Batch: payloads})
	if err != nil {
		return nil, err
	}
	return resp.Batch, nil
}

// List returns registered function names.
func (c *Client) List() ([]string, error) {
	resp, err := c.roundTrip(&Request{Op: OpList})
	if err != nil {
		return nil, err
	}
	return resp.Names, nil
}

// Stats returns per-endpoint counters.
func (c *Client) Stats() ([]EndpointStats, error) {
	resp, err := c.roundTrip(&Request{Op: OpStats})
	if err != nil {
		return nil, err
	}
	return resp.Stats, nil
}
