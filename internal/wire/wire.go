// Package wire exposes the faas layer over TCP with a length-prefixed
// JSON frame protocol, giving the reproduction a real multi-process mode:
// continuumd serves endpoints, continuumctl (or any Client) invokes
// functions across them. Frames are capped to guard against runaway
// peers; connections handle requests sequentially while the server
// accepts connections concurrently.
//
// Observability: clients stamp every request with a generated ID which
// the server echoes on the response (old peers that omit or drop the
// field interoperate unchanged — it is a plain optional JSON field).
// A server given a metrics registry counts requests, errors, and frame
// bytes by op; given a logger it emits one structured line per request
// carrying the request ID, so a slow or failing invocation can be
// correlated across client and server logs.
package wire

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"continuum/internal/faas"
	"continuum/internal/fault"
	"continuum/internal/metrics"
)

// MaxFrame bounds a single frame (16 MiB) so a corrupt length prefix
// cannot allocate unbounded memory.
const MaxFrame = 16 << 20

// DefaultDialTimeout bounds the TCP connect in Dial, so a blackholed
// address fails fast instead of hanging the caller for the kernel's
// minutes-long SYN retry budget.
const DefaultDialTimeout = 5 * time.Second

// ErrFrameTooLarge is returned when a peer announces an oversized frame.
var ErrFrameTooLarge = errors.New("wire: frame exceeds limit")

// RemoteError is an application-level error response: the server
// answered with a well-formed frame carrying an error, so the connection
// itself is healthy. Retryable marks errors the server declared
// transient (overload, injected chaos) — safe to retry elsewhere.
type RemoteError struct {
	Msg       string
	Retryable bool
}

// Error returns the server's message.
func (e *RemoteError) Error() string { return e.Msg }

// IsRetryable classifies an error from a Client call as safe to retry on
// another connection or endpoint: transport failures (dials, resets,
// EOFs, timeouts) and server responses explicitly marked retryable.
// Definitive application errors (unknown function, handler failure) are
// not retryable — re-running them elsewhere would mask real bugs.
func IsRetryable(err error) bool {
	if err == nil {
		return false
	}
	var re *RemoteError
	if errors.As(err, &re) {
		return re.Retryable
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne)
}

// Op identifies a request type.
type Op string

// Protocol operations.
const (
	OpInvoke Op = "invoke"
	OpBatch  Op = "batch"
	OpList   Op = "list"
	OpStats  Op = "stats"
	OpTop    Op = "top"
	OpPing   Op = "ping"
)

// Request is a client frame. ID, when set, is echoed verbatim on the
// response; peers predating the field simply never see it (optional JSON
// both ways), so mixed-version federations keep working.
type Request struct {
	Op      Op       `json:"op"`
	ID      string   `json:"id,omitempty"`
	Fn      string   `json:"fn,omitempty"`
	Payload []byte   `json:"payload,omitempty"`
	Batch   [][]byte `json:"batch,omitempty"`
}

// EndpointStats mirrors one endpoint's counters.
type EndpointStats struct {
	Name        string `json:"name"`
	Capacity    int    `json:"capacity"`
	Running     int64  `json:"running"`
	Invocations int64  `json:"invocations"`
	ColdStarts  int64  `json:"cold_starts"`
	WarmHits    int64  `json:"warm_hits"`
}

// FnMetrics is one function's live latency profile on one endpoint, the
// unit of the top op (continuumctl top renders a table of these).
// Latencies are seconds.
type FnMetrics struct {
	Endpoint   string  `json:"ep"`
	Fn         string  `json:"fn"`
	Count      int64   `json:"count"`
	P50        float64 `json:"p50"`
	P90        float64 `json:"p90"`
	P99        float64 `json:"p99"`
	ColdStarts int64   `json:"cold_starts"`
	WarmHits   int64   `json:"warm_hits"`
}

// Response is a server frame. ID echoes the request's ID. Retryable,
// when set on an error response, marks the failure as transient — the
// client may safely retry the request on this or another endpoint. Like
// ID it is an optional JSON field, so mixed-version peers interoperate.
type Response struct {
	OK        bool            `json:"ok"`
	ID        string          `json:"id,omitempty"`
	Error     string          `json:"error,omitempty"`
	Retryable bool            `json:"retryable,omitempty"`
	Payload   []byte          `json:"payload,omitempty"`
	Batch     [][]byte        `json:"batch,omitempty"`
	Names     []string        `json:"names,omitempty"`
	Stats     []EndpointStats `json:"stats,omitempty"`
	Top       []FnMetrics     `json:"top,omitempty"`
}

// WriteFrame writes v as a 4-byte big-endian length followed by JSON.
func WriteFrame(w io.Writer, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("wire: marshal: %w", err)
	}
	if len(body) > MaxFrame {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// ReadFrame reads one frame into v.
func ReadFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return ErrFrameTooLarge
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return err
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("wire: unmarshal: %w", err)
	}
	return nil
}

// Server serves the protocol over accepted connections.
type Server struct {
	Invoker faas.Invoker
	Batcher interface {
		InvokeBatch(fn string, payloads [][]byte) ([][]byte, error)
	}
	Registry  *faas.Registry
	Endpoints []*faas.Endpoint

	// Metrics, when set, receives per-op counters (wire_requests_total,
	// wire_errors_total, wire_request_bytes_total,
	// wire_response_bytes_total, all labeled {op}) and powers the top op.
	// Share it with the endpoints' SetMetrics so one /metrics exposition
	// covers the whole daemon.
	Metrics *metrics.Registry
	// Logger, when set, emits one structured line per request with the
	// request ID, op, function, outcome, and wall-clock duration.
	Logger *slog.Logger

	// Chaos, when set, injects faults ahead of every dispatch: latency
	// spikes, retryable error responses, dropped connections, and whole
	// down phases (see fault.ChaosSpec). Injections are counted as
	// wire_chaos_injections_total{kind} when Metrics is set. This is how
	// a real daemon doubles as its own fault injector for end-to-end
	// reliability tests (continuumd -chaos).
	Chaos *fault.Chaos

	mu       sync.Mutex
	lis      net.Listener
	closed   bool
	draining bool
	conns    map[*countConn]struct{}
	wg       sync.WaitGroup
}

// countConn wraps a connection and tallies bytes in each direction so
// per-request frame sizes can be attributed without changing the frame
// codec. Only the connection-handling goroutine touches the totals; busy
// is the exception — it marks a request mid-flight so a draining server
// knows which connections it must not cut.
type countConn struct {
	net.Conn
	read, written int64
	busy          atomic.Bool
}

func (c *countConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.read += int64(n)
	return n, err
}

func (c *countConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.written += int64(n)
	return n, err
}

// Serve accepts connections until the listener closes. It returns nil
// after Close.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	s.lis = lis
	s.mu.Unlock()
	for {
		conn, err := lis.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				s.wg.Wait()
				return nil
			}
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// Close stops accepting, closes idle connections, and drains in-flight
// requests with no time bound. Use Shutdown for a bounded drain.
func (s *Server) Close() {
	s.drain(nil)
}

// Shutdown gracefully stops the server: it stops accepting, closes idle
// connections, and lets requests already being processed finish. After
// the grace period any connection still open is force-closed (its client
// sees a transport error and can retry elsewhere). Shutdown returns once
// every connection handler has exited.
func (s *Server) Shutdown(grace time.Duration) {
	t := time.NewTimer(grace)
	defer t.Stop()
	s.drain(t.C)
}

// drain implements Close/Shutdown; a nil deadline waits forever.
func (s *Server) drain(deadline <-chan time.Time) {
	s.mu.Lock()
	s.closed = true
	s.draining = true
	lis := s.lis
	for c := range s.conns {
		if !c.busy.Load() {
			c.Close() // idle: unblock its ReadFrame now
		}
	}
	s.mu.Unlock()
	if lis != nil {
		lis.Close()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-deadline:
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
	}
}

// draining reports whether a drain has started.
func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

func (s *Server) handle(conn net.Conn) {
	cc := &countConn{Conn: conn}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		conn.Close()
		return
	}
	if s.conns == nil {
		s.conns = make(map[*countConn]struct{})
	}
	s.conns[cc] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.conns, cc)
		s.mu.Unlock()
		cc.Close()
	}()
	for {
		r0 := cc.read
		var req Request
		if err := ReadFrame(cc, &req); err != nil {
			return // EOF, bad peer, or drain cut: drop the connection
		}
		cc.busy.Store(true)
		start := time.Now()
		var resp *Response
		if s.Chaos != nil {
			act, delay := s.Chaos.Next()
			if delay > 0 {
				s.countChaos("delay")
				time.Sleep(delay)
			}
			switch act {
			case fault.ChaosDrop:
				s.countChaos("drop")
				return // sever mid-request, like a crashing endpoint
			case fault.ChaosError:
				s.countChaos("error")
				resp = &Response{Error: "chaos: injected error", Retryable: true}
			}
		}
		if resp == nil {
			resp = s.dispatch(&req)
		}
		resp.ID = req.ID
		w0 := cc.written
		if err := WriteFrame(cc, resp); err != nil {
			return
		}
		s.observe(&req, resp, time.Since(start), cc.read-r0, cc.written-w0)
		cc.busy.Store(false)
		if s.isDraining() {
			return // graceful shutdown: stop after the in-flight request
		}
	}
}

// countChaos tallies one injected fault by kind.
func (s *Server) countChaos(kind string) {
	if s.Metrics != nil {
		s.Metrics.Counter(metrics.Label("wire_chaos_injections_total", "kind", kind)).Inc()
	}
}

// observe publishes one request's accounting: per-op counters into the
// metrics registry and one structured log line. Both sinks are optional
// and independently nil-safe.
func (s *Server) observe(req *Request, resp *Response, d time.Duration, inB, outB int64) {
	op := string(req.Op)
	if s.Metrics != nil {
		s.Metrics.Counter(metrics.Label("wire_requests_total", "op", op)).Inc()
		if !resp.OK {
			s.Metrics.Counter(metrics.Label("wire_errors_total", "op", op)).Inc()
		}
		s.Metrics.Counter(metrics.Label("wire_request_bytes_total", "op", op)).Add(inB)
		s.Metrics.Counter(metrics.Label("wire_response_bytes_total", "op", op)).Add(outB)
	}
	if s.Logger != nil {
		attrs := []any{
			"id", req.ID, "op", op, "fn", req.Fn, "ok", resp.OK,
			"dur_ms", float64(d.Microseconds()) / 1000, "in_bytes", inB, "out_bytes", outB,
		}
		if resp.Error != "" {
			attrs = append(attrs, "error", resp.Error)
			s.Logger.Warn("request", attrs...)
		} else {
			s.Logger.Info("request", attrs...)
		}
	}
}

// top summarizes every faas_invoke_duration_seconds histogram in the
// registry into per-(endpoint, function) latency percentiles, joined with
// the matching cold/warm counters. Sorted by endpoint then function for
// stable rendering.
func (s *Server) top() []FnMetrics {
	var out []FnMetrics
	s.Metrics.EachHistogram(func(name string, h *metrics.Histogram) {
		base, labels := metrics.SplitLabels(name)
		if base != "faas_invoke_duration_seconds" {
			return
		}
		ep, fn := labels["ep"], labels["fn"]
		out = append(out, FnMetrics{
			Endpoint:   ep,
			Fn:         fn,
			Count:      h.Count(),
			P50:        h.P50(),
			P90:        h.P90(),
			P99:        h.P99(),
			ColdStarts: s.Metrics.Counter(metrics.Label("faas_cold_starts_total", "ep", ep, "fn", fn)).Value(),
			WarmHits:   s.Metrics.Counter(metrics.Label("faas_warm_hits_total", "ep", ep, "fn", fn)).Value(),
		})
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].Endpoint != out[j].Endpoint {
			return out[i].Endpoint < out[j].Endpoint
		}
		return out[i].Fn < out[j].Fn
	})
	return out
}

func (s *Server) dispatch(req *Request) *Response {
	switch req.Op {
	case OpPing:
		return &Response{OK: true}
	case OpInvoke:
		out, err := s.Invoker.Invoke(req.Fn, req.Payload)
		if err != nil {
			// Overload rejections and a draining endpoint never started
			// the work, so the client may safely retry elsewhere.
			retryable := errors.Is(err, faas.ErrOverloaded) || errors.Is(err, faas.ErrClosed)
			return &Response{Error: err.Error(), Retryable: retryable}
		}
		return &Response{OK: true, Payload: out}
	case OpBatch:
		if s.Batcher == nil {
			return &Response{Error: "wire: batch unsupported"}
		}
		outs, err := s.Batcher.InvokeBatch(req.Fn, req.Batch)
		if err != nil {
			return &Response{Error: err.Error()}
		}
		return &Response{OK: true, Batch: outs}
	case OpList:
		if s.Registry == nil {
			return &Response{Error: "wire: no registry"}
		}
		return &Response{OK: true, Names: s.Registry.Names()}
	case OpTop:
		if s.Metrics == nil {
			return &Response{Error: "wire: no metrics registry (start the daemon with metrics enabled)"}
		}
		return &Response{OK: true, Top: s.top()}
	case OpStats:
		var stats []EndpointStats
		for _, ep := range s.Endpoints {
			stats = append(stats, EndpointStats{
				Name:        ep.Name(),
				Capacity:    ep.Capacity(),
				Running:     ep.Running(),
				Invocations: ep.Invocations(),
				ColdStarts:  ep.ColdStarts(),
				WarmHits:    ep.WarmHits(),
			})
		}
		return &Response{OK: true, Stats: stats}
	default:
		return &Response{Error: fmt.Sprintf("wire: unknown op %q", req.Op)}
	}
}

// Client is a synchronous protocol client. It is safe for concurrent use:
// calls serialize on the single connection. Every request is stamped with
// a unique ID ("<connection-prefix>-<seq>") the server echoes back,
// correlating client calls with server log lines.
type Client struct {
	mu      sync.Mutex
	conn    net.Conn
	prefix  string
	seq     atomic.Int64
	timeout time.Duration // per-call deadline; guarded by mu
}

// Dial connects to a server, bounding the TCP connect by
// DefaultDialTimeout.
func Dial(addr string) (*Client, error) {
	return DialTimeout(addr, DefaultDialTimeout)
}

// DialTimeout connects to a server with an explicit connect bound
// (0 = no bound).
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return newClient(conn)
}

// DialContext connects to a server under ctx: the connect is abandoned
// when ctx ends, and is additionally bounded by DefaultDialTimeout.
func DialContext(ctx context.Context, addr string) (*Client, error) {
	d := net.Dialer{Timeout: DefaultDialTimeout}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	return newClient(conn)
}

func newClient(conn net.Conn) (*Client, error) {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		conn.Close()
		return nil, fmt.Errorf("wire: request-id seed: %w", err)
	}
	return &Client{conn: conn, prefix: hex.EncodeToString(b[:])}, nil
}

// SetCallTimeout bounds every subsequent round trip: the connection
// deadline covers the request write and the response read, so a dead or
// wedged peer surfaces as a timeout error instead of blocking forever.
// 0 (the default) disables the bound.
func (c *Client) SetCallTimeout(d time.Duration) {
	c.mu.Lock()
	c.timeout = d
	c.mu.Unlock()
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) roundTrip(req *Request) (*Response, error) {
	return c.roundTripContext(context.Background(), req)
}

// roundTripContext performs one call. The effective deadline is the
// earlier of the client's call timeout and ctx's deadline; it is applied
// to the connection with SetDeadline, so both the write and the read
// respect it. (Cancellation without a deadline cannot interrupt a call
// already on the wire — bound calls with a deadline, not just a cancel.)
func (c *Client) roundTripContext(ctx context.Context, req *Request) (*Response, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if req.ID == "" {
		req.ID = fmt.Sprintf("%s-%d", c.prefix, c.seq.Add(1))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var deadline time.Time
	if c.timeout > 0 {
		deadline = time.Now().Add(c.timeout)
	}
	if d, ok := ctx.Deadline(); ok && (deadline.IsZero() || d.Before(deadline)) {
		deadline = d
	}
	// A zero deadline clears any bound from a previous call.
	if err := c.conn.SetDeadline(deadline); err != nil {
		return nil, err
	}
	if err := WriteFrame(c.conn, req); err != nil {
		return nil, err
	}
	var resp Response
	if err := ReadFrame(c.conn, &resp); err != nil {
		return nil, err
	}
	if !resp.OK {
		return &resp, &RemoteError{Msg: resp.Error, Retryable: resp.Retryable}
	}
	return &resp, nil
}

// Ping round-trips a no-op frame.
func (c *Client) Ping() error {
	_, err := c.roundTrip(&Request{Op: OpPing})
	return err
}

// PingContext round-trips a no-op frame under ctx.
func (c *Client) PingContext(ctx context.Context) error {
	_, err := c.roundTripContext(ctx, &Request{Op: OpPing})
	return err
}

// Invoke calls fn remotely.
func (c *Client) Invoke(fn string, payload []byte) ([]byte, error) {
	resp, err := c.roundTrip(&Request{Op: OpInvoke, Fn: fn, Payload: payload})
	if err != nil {
		return nil, err
	}
	return resp.Payload, nil
}

// InvokeContext calls fn remotely under ctx: the ctx deadline (and the
// client's call timeout) bound the round trip.
func (c *Client) InvokeContext(ctx context.Context, fn string, payload []byte) ([]byte, error) {
	resp, err := c.roundTripContext(ctx, &Request{Op: OpInvoke, Fn: fn, Payload: payload})
	if err != nil {
		return nil, err
	}
	return resp.Payload, nil
}

// InvokeBatch calls fn with several payloads in one frame.
func (c *Client) InvokeBatch(fn string, payloads [][]byte) ([][]byte, error) {
	resp, err := c.roundTrip(&Request{Op: OpBatch, Fn: fn, Batch: payloads})
	if err != nil {
		return nil, err
	}
	return resp.Batch, nil
}

// List returns registered function names.
func (c *Client) List() ([]string, error) {
	resp, err := c.roundTrip(&Request{Op: OpList})
	if err != nil {
		return nil, err
	}
	return resp.Names, nil
}

// Stats returns per-endpoint counters.
func (c *Client) Stats() ([]EndpointStats, error) {
	resp, err := c.roundTrip(&Request{Op: OpStats})
	if err != nil {
		return nil, err
	}
	return resp.Stats, nil
}

// Top returns live per-function latency percentiles and cold/warm counts
// from the server's metrics registry. Fails if the server was started
// without one.
func (c *Client) Top() ([]FnMetrics, error) {
	resp, err := c.roundTrip(&Request{Op: OpTop})
	if err != nil {
		return nil, err
	}
	return resp.Top, nil
}
