package wire

// Hedged-request tests: the tail-latency arm must win races cleanly,
// settle the losing arm as a cancellation (never a breaker failure),
// and leave no per-connection call state behind on either codec path.

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"continuum/internal/faas"
	"continuum/internal/retry"
)

// slowServer serves "work" with a fixed handler delay, so it reliably
// loses any hedged race against a fast peer.
func slowServer(t *testing.T, name string, d time.Duration) *Server {
	t.Helper()
	reg := faas.NewRegistry()
	reg.Register("work", func(p []byte) ([]byte, error) {
		time.Sleep(d)
		return bytes.ToUpper(p), nil
	})
	ep := faas.NewEndpoint(faas.EndpointConfig{Name: name, Capacity: 8}, reg)
	return &Server{Invoker: ep, Registry: reg, Endpoints: []*faas.Endpoint{ep}}
}

func fastServer(t *testing.T, name string) *Server {
	return slowServer(t, name, 0)
}

// TestHedgeWinsAgainstSlowEndpoint: the primary lands on a slow
// endpoint, the hedge delay elapses, the backup arm on the fast
// endpoint answers first, and the call returns the backup's response
// long before the primary would have.
func TestHedgeWinsAgainstSlowEndpoint(t *testing.T) {
	slowAddr := startServerOn(t, slowServer(t, "slow", 300*time.Millisecond))
	fastAddr := startServerOn(t, fastServer(t, "fast"))
	r, err := NewReliableClient(ReliableConfig{
		Addrs: []string{slowAddr, fastAddr}, // pick starts at eps[0] = slow
		Hedge: HedgeConfig{Enabled: true, Delay: 10 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	start := time.Now()
	out, err := r.Invoke("work", []byte("hedged"))
	if err != nil || string(out) != "HEDGED" {
		t.Fatalf("hedged call = %q, %v", out, err)
	}
	if elapsed := time.Since(start); elapsed > 200*time.Millisecond {
		t.Fatalf("hedged call took %v — the backup arm did not win", elapsed)
	}
	launched, wins := r.HedgeStats()
	if launched != 1 || wins != 1 {
		t.Fatalf("HedgeStats = %d launched, %d wins, want 1/1", launched, wins)
	}
}

// TestHedgeLoserDoesNotTripBreaker: a hedged race's losing arm is
// cancelled, not failed. With a one-failure breaker threshold, any
// misclassification of the cancellation as a failure would trip the
// slow endpoint open on the very first lost race.
func TestHedgeLoserDoesNotTripBreaker(t *testing.T) {
	slowAddr := startServerOn(t, slowServer(t, "slow", 100*time.Millisecond))
	fastAddr := startServerOn(t, fastServer(t, "fast"))
	r, err := NewReliableClient(ReliableConfig{
		Addrs:   []string{slowAddr, fastAddr},
		Hedge:   HedgeConfig{Enabled: true, Delay: 5 * time.Millisecond},
		Breaker: retry.BreakerConfig{FailureThreshold: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Several races in a row; the slow endpoint loses every one it is
	// part of (pick rotates, so it is primary on even calls and hedge
	// target on odd ones).
	for i := 0; i < 6; i++ {
		out, err := r.Invoke("work", []byte("race"))
		if err != nil || string(out) != "RACE" {
			t.Fatalf("call %d = %q, %v", i, out, err)
		}
	}
	// Losing arms settle asynchronously (cancellation returns them
	// within a few ms of the winner); give them a moment, then assert
	// nothing was ever recorded as a failure.
	time.Sleep(100 * time.Millisecond)
	var trips int64
	for _, ep := range r.snapshot().list {
		trips += ep.breaker.Trips()
	}
	states := r.BreakerStates()
	if trips != 0 || states[slowAddr] != retry.Closed || states[fastAddr] != retry.Closed {
		t.Fatalf("breakers after hedged races: states=%v trips=%d, want all closed with 0 trips",
			states, trips)
	}
	if launched, wins := r.HedgeStats(); launched == 0 || wins == 0 {
		t.Fatalf("HedgeStats = %d/%d, expected hedges to launch and win", launched, wins)
	}
}

// TestHedgeNoSecondEndpointStaysSingleArm: when the only other breaker
// refuses traffic the race must degrade to one arm and still succeed,
// without counting a phantom hedge.
func TestHedgeNoSecondEndpointStaysSingleArm(t *testing.T) {
	// The live endpoint is slow enough that the 1ms hedge timer always
	// fires mid-call; the only other address is a dead listener whose
	// breaker trips on first contact.
	okAddr := startServerOn(t, slowServer(t, "ok", 30*time.Millisecond))
	deadLis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := deadLis.Addr().String()
	deadLis.Close()

	r, err := NewReliableClient(ReliableConfig{
		Addrs:   []string{okAddr, deadAddr},
		Hedge:   HedgeConfig{Enabled: true, Delay: time.Millisecond},
		Breaker: retry.BreakerConfig{FailureThreshold: 1, Cooldown: time.Minute},
		Retry:   retry.Policy{MaxAttempts: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Warm up until the dead endpoint's breaker is open (the first call
	// that touches it — as primary or hedge target — trips it).
	for i := 0; i < 4; i++ {
		if _, err := r.Invoke("work", []byte("warm")); err != nil {
			t.Fatalf("warmup call %d: %v", i, err)
		}
	}
	if r.BreakerStates()[deadAddr] != retry.Open {
		t.Fatalf("dead endpoint breaker = %v, want open", r.BreakerStates()[deadAddr])
	}
	launchedBefore, _ := r.HedgeStats()

	// With the dead breaker open pickOther finds no admissible backup,
	// so the hedge timer fires into a no-op and the race stays one-arm.
	out, err := r.Invoke("work", []byte("solo"))
	if err != nil || string(out) != "SOLO" {
		t.Fatalf("single-arm call = %q, %v", out, err)
	}
	if launched, _ := r.HedgeStats(); launched != launchedBefore {
		t.Fatalf("hedges launched went %d -> %d with no admissible backup", launchedBefore, launched)
	}
}

// TestHedgeConcurrentCallsClean: hedged calls under concurrency must
// return each caller its own payload — a crossed wire between arms or
// a leaked pending entry shows up as a mismatched echo.
func TestHedgeConcurrentCallsClean(t *testing.T) {
	aAddr := startServerOn(t, slowServer(t, "a", 20*time.Millisecond))
	bAddr := startServerOn(t, fastServer(t, "b"))
	r, err := NewReliableClient(ReliableConfig{
		Addrs:    []string{aAddr, bAddr},
		PoolSize: 1, // every call shares one connection per endpoint
		Hedge:    HedgeConfig{Enabled: true, Delay: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			in := fmt.Sprintf("msg-%03d", i)
			out, err := r.Invoke("work", []byte(in))
			if err != nil {
				errs <- fmt.Errorf("call %d: %w", i, err)
				return
			}
			if string(out) != fmt.Sprintf("MSG-%03d", i) {
				errs <- fmt.Errorf("call %d echoed %q", i, out)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
