package wire

// Frame codec: every frame on the wire is a 4-byte big-endian length
// followed by a body in one of two encodings, distinguished by the
// body's first byte:
//
//	'{'      JSON — the original encoding, understood by every peer.
//	0xC5     binary — an opt-in encoding that carries Payload/Batch
//	         bytes raw instead of base64 inside JSON, and every hot
//	         field without reflection.
//
// The binary body encodes the common fields natively — JSON never runs
// on the invoke hot path:
//
//	[0]      0xC5 magic
//	[1]      kind: 0x01 request, 0x02 response
//	Request  str Op, str ID, str Accept, str Fn, blob Payload, batch,
//	         then — only when the request is traced, carries a
//	         non-normal priority, or carries a federation member body —
//	         str TraceID, str SpanID, then — only when the priority is
//	         non-normal or a member body follows — varint Priority,
//	         then — only for federation control frames — a uvarint
//	         length and a JSON-encoded MemberInfo. The trailer is
//	         backward compatible both ways: decoders predating it
//	         discard trailing request bytes, and new decoders treat an
//	         exhausted buffer as untraced / normal priority / no member.
//	Response [2] flags (bit0 OK, bit1 Retryable, bit2 extension),
//	         str ID, str Codec, str Error, blob Payload, batch,
//	         then — only when the extension bit is set — a uvarint
//	         length and a JSON object carrying the rare
//	         list/stats/top/spans/retry-after/federation fields.
//
// where str is uvarint length + bytes, blob is the same but with
// uvarint 0 meaning nil and length+1 otherwise (nil and empty payloads
// survive a round trip distinctly), and batch is uvarint 0 = nil or
// count+1 followed by one blob per item. A protocol field added later
// must be added here too; the codec round-trip test's all-fields guard
// fails until it is.
//
// Negotiation is in-band and backward compatible: a client advertises
// support with Request.Accept = AcceptBinary (an optional JSON field old
// servers ignore); a server that understands it replies in binary with
// Response.Codec set, and the client upgrades the connection from then
// on. A peer that never advertises — or never acks — keeps speaking
// JSON, so mixed-version federations interoperate frame by frame.

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"continuum/internal/trace"
)

// Codec identifies a frame body encoding.
type Codec uint8

// Frame body encodings.
const (
	CodecJSON Codec = iota
	CodecBinary
)

// String returns the codec name as used in negotiation fields.
func (c Codec) String() string {
	if c == CodecBinary {
		return codecBinaryName
	}
	return "json"
}

// binMagic starts every binary frame body. It can never begin a JSON
// body (JSON frames always start with '{'), so the codec is detected
// per frame with no out-of-band state.
const binMagic = 0xC5

// AcceptBinary is the Request.Accept value advertising that the sender
// understands binary response frames.
const AcceptBinary = "bin"

// codecBinaryName is the Response.Codec value acking binary frames.
const codecBinaryName = "bin"

// maxPooledBuf caps the capacity of buffers returned to the frame pool,
// so one oversized frame cannot pin megabytes for the process lifetime.
const maxPooledBuf = 1 << 20

// framePool recycles encode/decode scratch buffers: the steady-state
// invoke path allocates no frame buffers at all.
var framePool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

func getBuf() *[]byte { return framePool.Get().(*[]byte) }

func putBuf(bp *[]byte) {
	if cap(*bp) > maxPooledBuf {
		return
	}
	*bp = (*bp)[:0]
	framePool.Put(bp)
}

// WriteFrame writes v as a length-prefixed JSON frame. The header and
// body are coalesced into a single Write, so a frame is never torn
// across a write deadline and a small call costs one syscall.
func WriteFrame(w io.Writer, v any) error {
	return WriteFrameCodec(w, v, CodecJSON)
}

// WriteFrameCodec writes v as one length-prefixed frame in the given
// codec. CodecBinary is only defined for *Request and *Response; other
// values fall back to JSON. The whole frame (header + body) is issued
// as a single Write from a pooled buffer.
func WriteFrameCodec(w io.Writer, v any, codec Codec) error {
	bp := getBuf()
	frame, err := appendFrame((*bp)[:0], v, codec)
	if err == nil {
		_, err = w.Write(frame)
	}
	*bp = frame
	putBuf(bp)
	return err
}

// appendFrame appends one complete frame — length prefix and encoded
// body — to dst. This is the shared encode path: WriteFrameCodec issues
// the result as one Write, and groupWriter queues it for a batched one.
func appendFrame(dst []byte, v any, codec Codec) ([]byte, error) {
	if codec == CodecBinary {
		// The binary framing is only defined for the two frame types;
		// anything else falls back to JSON, which readers auto-detect.
		switch v.(type) {
		case *Request, *Response:
		default:
			codec = CodecJSON
		}
	}
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0) // length prefix placeholder
	var err error
	if codec == CodecBinary {
		dst, err = appendBinary(dst, v)
	} else {
		var body []byte
		body, err = json.Marshal(v)
		if err != nil {
			err = fmt.Errorf("wire: marshal: %w", err)
		}
		dst = append(dst, body...)
	}
	if err != nil {
		return dst[:start], err
	}
	n := len(dst) - start - 4
	if n > MaxFrame {
		return dst[:start], ErrFrameTooLarge
	}
	binary.BigEndian.PutUint32(dst[start:start+4], uint32(n))
	return dst, nil
}

// ReadFrame reads one frame into v, auto-detecting the body codec.
func ReadFrame(r io.Reader, v any) error {
	_, err := ReadFrameCodec(r, v)
	return err
}

// ReadFrameCodec reads one frame into v and reports which codec the
// peer used — servers mirror it on the response so a binary-speaking
// client is answered in kind.
func ReadFrameCodec(r io.Reader, v any) (Codec, error) {
	c, _, err := readFrameCodecN(r, v)
	return c, err
}

// readFrameCodecN is ReadFrameCodec plus the frame's wire size (header
// and body), so per-request byte accounting stays exact when the server
// reads through a buffered reader.
func readFrameCodecN(r io.Reader, v any) (Codec, int64, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return CodecJSON, 0, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return CodecJSON, 0, ErrFrameTooLarge
	}
	size := int64(4 + n)
	bp := getBuf()
	buf := *bp
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	} else {
		buf = buf[:n]
	}
	*bp = buf
	defer putBuf(bp)
	if _, err := io.ReadFull(r, buf); err != nil {
		return CodecJSON, 0, err
	}
	if n > 0 && buf[0] == binMagic {
		return CodecBinary, size, decodeBinary(buf, v)
	}
	if err := json.Unmarshal(buf, v); err != nil {
		return CodecJSON, 0, fmt.Errorf("wire: unmarshal: %w", err)
	}
	return CodecJSON, size, nil
}

// Binary body kinds (second byte, after the magic).
const (
	binKindRequest  = 0x01
	binKindResponse = 0x02
)

// Response flag bits.
const (
	binFlagOK        = 1 << 0
	binFlagRetryable = 1 << 1
	binFlagExt       = 1 << 2
)

// respExt carries the rare Response fields (list/stats/top/trace
// results) as a JSON extension section, keeping struct-heavy encoding
// off the invoke hot path. Old peers ignore unknown keys, so adding a
// field here never breaks a mixed-version federation.
type respExt struct {
	Names        []string        `json:"names,omitempty"`
	Stats        []EndpointStats `json:"stats,omitempty"`
	Top          []FnMetrics     `json:"top,omitempty"`
	Spans        []trace.Span    `json:"spans,omitempty"`
	RetryAfterMS int64           `json:"retry_after_ms,omitempty"`
	Members      []MemberStatus  `json:"members,omitempty"`
	HeartbeatMS  int64           `json:"heartbeat_ms,omitempty"`
	Generation   int64           `json:"generation,omitempty"`
}

// appendBinary encodes v (a *Request or *Response) onto buf in the
// binary framing.
func appendBinary(buf []byte, v any) ([]byte, error) {
	switch t := v.(type) {
	case *Request:
		buf = append(buf, binMagic, binKindRequest)
		buf = appendStr(buf, string(t.Op))
		buf = appendStr(buf, t.ID)
		buf = appendStr(buf, t.Accept)
		buf = appendStr(buf, t.Fn)
		buf = appendBlob(buf, t.Payload)
		buf = appendBatch(buf, t.Batch)
		// Trace/priority/member trailer: appended only for traced,
		// non-normal-priority, or federation-control requests, so default
		// frames are byte-identical to the pre-trailer encoding and legacy
		// decoders (which discard trailing bytes) interoperate unchanged.
		// Priority rides after the trace strings — elided when normal
		// unless a member body follows (the member blob needs every
		// preceding trailer field present so the decoder's position is
		// unambiguous) — and the member body last, as a uvarint-length
		// JSON blob: control frames are rare and tiny, so reflection
		// there costs nothing the invoke hot path ever sees.
		if t.TraceID != "" || t.SpanID != "" || t.Priority != 0 || t.Member != nil {
			buf = appendStr(buf, t.TraceID)
			buf = appendStr(buf, t.SpanID)
			if t.Priority != 0 || t.Member != nil {
				buf = binary.AppendVarint(buf, int64(t.Priority))
			}
			if t.Member != nil {
				mb, err := json.Marshal(t.Member)
				if err != nil {
					return buf, fmt.Errorf("wire: marshal member: %w", err)
				}
				buf = binary.AppendUvarint(buf, uint64(len(mb)))
				buf = append(buf, mb...)
			}
		}
		return buf, nil
	case *Response:
		var flags byte
		if t.OK {
			flags |= binFlagOK
		}
		if t.Retryable {
			flags |= binFlagRetryable
		}
		var ext []byte
		if t.Names != nil || t.Stats != nil || t.Top != nil || t.Spans != nil ||
			t.RetryAfterMS != 0 || t.Members != nil || t.HeartbeatMS != 0 || t.Generation != 0 {
			var err error
			if ext, err = json.Marshal(respExt{t.Names, t.Stats, t.Top, t.Spans, t.RetryAfterMS, t.Members, t.HeartbeatMS, t.Generation}); err != nil {
				return buf, fmt.Errorf("wire: marshal extension: %w", err)
			}
			flags |= binFlagExt
		}
		buf = append(buf, binMagic, binKindResponse, flags)
		buf = appendStr(buf, t.ID)
		buf = appendStr(buf, t.Codec)
		buf = appendStr(buf, t.Error)
		buf = appendBlob(buf, t.Payload)
		buf = appendBatch(buf, t.Batch)
		if flags&binFlagExt != 0 {
			buf = binary.AppendUvarint(buf, uint64(len(ext)))
			buf = append(buf, ext...)
		}
		return buf, nil
	default:
		return buf, fmt.Errorf("wire: binary codec unsupported for %T", v)
	}
}

// appendStr encodes one string as uvarint length + bytes.
func appendStr(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// takeStrBytes decodes one appendStr section as a view into the frame
// buffer — valid only until the buffer returns to the pool, so callers
// must intern or copy before keeping it.
func takeStrBytes(b []byte) ([]byte, []byte, error) {
	n, k := binary.Uvarint(b)
	if k <= 0 {
		return nil, nil, fmt.Errorf("wire: binary frame: bad string length")
	}
	b = b[k:]
	if uint64(len(b)) < n {
		return nil, nil, io.ErrUnexpectedEOF
	}
	return b[:n], b[n:], nil
}

// takeStr decodes one appendStr section, copying out of the pooled
// frame buffer.
func takeStr(b []byte) (string, []byte, error) {
	s, rest, err := takeStrBytes(b)
	return string(s), rest, err
}

// appendBatch encodes a batch: uvarint 0 = nil, else count+1 followed
// by one blob per item.
func appendBatch(buf []byte, batch [][]byte) []byte {
	if batch == nil {
		return binary.AppendUvarint(buf, 0)
	}
	buf = binary.AppendUvarint(buf, uint64(len(batch))+1)
	for _, b := range batch {
		buf = appendBlob(buf, b)
	}
	return buf
}

// takeBatch decodes one appendBatch section.
func takeBatch(b []byte) ([][]byte, []byte, error) {
	count, k := binary.Uvarint(b)
	if k <= 0 {
		return nil, nil, fmt.Errorf("wire: binary frame: bad batch count")
	}
	b = b[k:]
	if count == 0 {
		return nil, b, nil
	}
	count--
	// Every item costs at least one byte, so a count beyond the
	// remaining bytes is corrupt — reject it before allocating.
	if count > uint64(len(b)) {
		return nil, nil, io.ErrUnexpectedEOF
	}
	batch := make([][]byte, count)
	var err error
	for i := range batch {
		if batch[i], b, err = takeBlob(b); err != nil {
			return nil, nil, err
		}
	}
	return batch, b, nil
}

// appendBlob encodes one byte slice, distinguishing nil from empty:
// uvarint 0 means nil, else length+1 followed by the bytes.
func appendBlob(buf, b []byte) []byte {
	if b == nil {
		return binary.AppendUvarint(buf, 0)
	}
	buf = binary.AppendUvarint(buf, uint64(len(b))+1)
	return append(buf, b...)
}

// takeBlob decodes one appendBlob section. The returned slice is a copy
// — the input buffer goes back to the pool after decoding.
func takeBlob(b []byte) (blob, rest []byte, err error) {
	n, k := binary.Uvarint(b)
	if k <= 0 {
		return nil, nil, fmt.Errorf("wire: binary frame: bad blob length")
	}
	b = b[k:]
	if n == 0 {
		return nil, b, nil
	}
	n--
	if uint64(len(b)) < n {
		return nil, nil, io.ErrUnexpectedEOF
	}
	return bytes.Clone(b[:n]), b[n:], nil
}

// decodeBinary parses a binary frame body (magic byte already verified)
// into v, which must be *Request or *Response.
func decodeBinary(body []byte, v any) error {
	b := body[1:]
	if len(b) == 0 {
		return io.ErrUnexpectedEOF
	}
	kind := b[0]
	b = b[1:]
	var err error
	switch t := v.(type) {
	case *Request:
		if kind != binKindRequest {
			return fmt.Errorf("wire: binary frame: kind %#x is not a request", kind)
		}
		var op []byte
		if op, b, err = takeStrBytes(b); err != nil {
			return err
		}
		t.Op = internOp(op)
		if t.ID, b, err = takeStr(b); err != nil {
			return err
		}
		var accept []byte
		if accept, b, err = takeStrBytes(b); err != nil {
			return err
		}
		t.Accept = internAccept(accept)
		if t.Fn, b, err = takeStr(b); err != nil {
			return err
		}
		if t.Payload, b, err = takeBlob(b); err != nil {
			return err
		}
		if t.Batch, b, err = takeBatch(b); err != nil {
			return err
		}
		// Trace/priority/member trailer, absent on untraced
		// normal-priority non-control and pre-trailer frames. Each stage
		// treats an exhausted buffer as "the rest are defaults", so every
		// historical frame layout decodes correctly.
		t.TraceID, t.SpanID, t.Priority, t.Member = "", "", 0, nil
		if len(b) > 0 {
			if t.TraceID, b, err = takeStr(b); err != nil {
				return err
			}
			if t.SpanID, b, err = takeStr(b); err != nil {
				return err
			}
			if len(b) > 0 {
				p, k := binary.Varint(b)
				if k <= 0 {
					return fmt.Errorf("wire: binary frame: bad priority")
				}
				t.Priority = int(p)
				b = b[k:]
			}
			if len(b) > 0 {
				n, k := binary.Uvarint(b)
				if k <= 0 {
					return fmt.Errorf("wire: binary frame: bad member length")
				}
				b = b[k:]
				if uint64(len(b)) < n {
					return io.ErrUnexpectedEOF
				}
				t.Member = new(MemberInfo)
				if err := json.Unmarshal(b[:n], t.Member); err != nil {
					return fmt.Errorf("wire: unmarshal member: %w", err)
				}
			}
		}
		return nil
	case *Response:
		if kind != binKindResponse {
			return fmt.Errorf("wire: binary frame: kind %#x is not a response", kind)
		}
		if len(b) == 0 {
			return io.ErrUnexpectedEOF
		}
		flags := b[0]
		b = b[1:]
		t.OK = flags&binFlagOK != 0
		t.Retryable = flags&binFlagRetryable != 0
		if t.ID, b, err = takeStr(b); err != nil {
			return err
		}
		var codec []byte
		if codec, b, err = takeStrBytes(b); err != nil {
			return err
		}
		t.Codec = internAccept(codec)
		if t.Error, b, err = takeStr(b); err != nil {
			return err
		}
		if t.Payload, b, err = takeBlob(b); err != nil {
			return err
		}
		if t.Batch, b, err = takeBatch(b); err != nil {
			return err
		}
		t.Names, t.Stats, t.Top, t.Spans, t.RetryAfterMS = nil, nil, nil, nil, 0
		t.Members, t.HeartbeatMS, t.Generation = nil, 0, 0
		if flags&binFlagExt != 0 {
			n, k := binary.Uvarint(b)
			if k <= 0 {
				return fmt.Errorf("wire: binary frame: bad extension length")
			}
			b = b[k:]
			if uint64(len(b)) < n {
				return io.ErrUnexpectedEOF
			}
			var ext respExt
			if err := json.Unmarshal(b[:n], &ext); err != nil {
				return fmt.Errorf("wire: unmarshal extension: %w", err)
			}
			t.Names, t.Stats, t.Top, t.Spans = ext.Names, ext.Stats, ext.Top, ext.Spans
			t.RetryAfterMS = ext.RetryAfterMS
			t.Members, t.HeartbeatMS, t.Generation = ext.Members, ext.HeartbeatMS, ext.Generation
		}
		return nil
	default:
		return fmt.Errorf("wire: binary codec unsupported for %T", v)
	}
}

// internOp maps the protocol's known ops back to their constants so
// decoding a request allocates no string for the op field.
func internOp(s []byte) Op {
	switch string(s) { // compiled without allocating
	case string(OpInvoke):
		return OpInvoke
	case string(OpBatch):
		return OpBatch
	case string(OpPing):
		return OpPing
	case string(OpList):
		return OpList
	case string(OpStats):
		return OpStats
	case string(OpTop):
		return OpTop
	case string(OpTrace):
		return OpTrace
	case string(OpRegister):
		return OpRegister
	case string(OpHeartbeat):
		return OpHeartbeat
	case string(OpDeregister):
		return OpDeregister
	case string(OpEndpoints):
		return OpEndpoints
	}
	return Op(s)
}

// internAccept interns the one defined codec name ("" and "bin" cover
// every well-formed peer).
func internAccept(s []byte) string {
	if string(s) == AcceptBinary {
		return AcceptBinary
	}
	return string(s)
}
