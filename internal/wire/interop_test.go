package wire

// Mixed-version interop: the regression guard for codec negotiation.
// A "legacy" peer here speaks the original protocol exactly — JSON
// frames only, no Accept advertisement, serial request handling, and
// (for the oldest vintage) no ID echo. New code must degrade to plain
// JSON against it in both directions.

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// legacyRequest mirrors the pre-binary Request schema: no Accept field,
// so an advertised codec is silently dropped the way an old server's
// json.Unmarshal would drop it.
type legacyRequest struct {
	Op      string   `json:"op"`
	ID      string   `json:"id,omitempty"`
	Fn      string   `json:"fn,omitempty"`
	Payload []byte   `json:"payload,omitempty"`
	Batch   [][]byte `json:"batch,omitempty"`
}

// legacyResponse mirrors the pre-binary Response schema: no Codec field.
type legacyResponse struct {
	OK      bool   `json:"ok"`
	ID      string `json:"id,omitempty"`
	Error   string `json:"error,omitempty"`
	Payload []byte `json:"payload,omitempty"`
}

// readLegacyFrame / writeLegacyFrame speak raw length-prefixed JSON the
// way the seed implementation did, independent of the new codec path.
func readLegacyFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	body := make([]byte, binary.BigEndian.Uint32(hdr[:]))
	if _, err := io.ReadFull(r, body); err != nil {
		return err
	}
	return json.Unmarshal(body, v)
}

func writeLegacyFrame(w io.Writer, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// startLegacyServer runs a JSON-only echo server: serial per
// connection, upper-cases invoke payloads, echoes IDs only when
// echoIDs is set (the oldest peers predate the ID field entirely).
func startLegacyServer(t *testing.T, echoIDs bool) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lis.Close() })
	var wg sync.WaitGroup
	t.Cleanup(wg.Wait)
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer conn.Close()
				for {
					var req legacyRequest
					if err := readLegacyFrame(conn, &req); err != nil {
						return
					}
					resp := legacyResponse{OK: true, Payload: bytes.ToUpper(req.Payload)}
					if echoIDs {
						resp.ID = req.ID
					}
					if err := writeLegacyFrame(conn, &resp); err != nil {
						return
					}
				}
			}()
		}
	}()
	return lis.Addr().String()
}

// TestNewClientAgainstJSONOnlyServer: with no binary ack the client
// must stay on JSON forever and still work — including concurrent
// calls, which a serial ID-echoing server answers in order.
func TestNewClientAgainstJSONOnlyServer(t *testing.T) {
	addr := startLegacyServer(t, true)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 5; i++ {
		out, err := c.Invoke("upper", []byte("mixed"))
		if err != nil || string(out) != "MIXED" {
			t.Fatalf("call %d: %q, %v", i, out, err)
		}
		if c.binary.Load() {
			t.Fatal("client upgraded to binary against a JSON-only server")
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out, err := c.Invoke("upper", []byte("conc"))
			if err != nil || string(out) != "CONC" {
				t.Errorf("concurrent legacy call: %q, %v", out, err)
			}
		}()
	}
	wg.Wait()
}

// TestNewClientAgainstIDStrippingServer: the oldest vintage neither
// echoes IDs nor upgrades codecs; responses must still match calls via
// wire-order FIFO.
func TestNewClientAgainstIDStrippingServer(t *testing.T) {
	addr := startLegacyServer(t, false)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, in := range []string{"a", "bb", "ccc"} {
		out, err := c.Invoke("upper", []byte(in))
		if err != nil || string(out) != string(bytes.ToUpper([]byte(in))) {
			t.Fatalf("invoke(%q): %q, %v", in, out, err)
		}
	}
}

// TestLegacyFIFODropsStaleResponse: when a call against an ID-stripping
// server times out, its eventual ID-less response must be dropped — not
// handed to the next wire-order call, which would leave every later
// response off by one for the connection's lifetime.
func TestLegacyFIFODropsStaleResponse(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lis.Close() })
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		var req1, req2 legacyRequest
		if err := readLegacyFrame(conn, &req1); err != nil {
			return
		}
		// Hold the first answer until the second request arrives — which
		// only happens after the first call has timed out client-side —
		// so the stale response is guaranteed to land while the second
		// call is registered and waiting.
		if err := readLegacyFrame(conn, &req2); err != nil {
			return
		}
		writeLegacyFrame(conn, &legacyResponse{OK: true, Payload: bytes.ToUpper(req1.Payload)})
		writeLegacyFrame(conn, &legacyResponse{OK: true, Payload: bytes.ToUpper(req2.Payload)})
	}()
	c, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := c.InvokeContext(ctx, "upper", []byte("slow")); err == nil {
		t.Fatal("expected the held call to time out")
	}
	out, err := c.Invoke("upper", []byte("next"))
	if err != nil || string(out) != "NEXT" {
		t.Fatalf("call after timeout got %q, %v — stale response misrouted", out, err)
	}
}

// TestLegacyFIFODropsCancelledCall: the hedged-request variant of the
// stale-response regression. A losing hedge arm is CANCELLED (not timed
// out) while its legacy FIFO entry is outstanding; the entry must be
// forgotten so the server's eventual ID-less response is dropped instead
// of being handed to the next wire-order call on the pooled connection.
func TestLegacyFIFODropsCancelledCall(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lis.Close() })
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		var req1, req2 legacyRequest
		if err := readLegacyFrame(conn, &req1); err != nil {
			return
		}
		// Hold the first answer until the second request arrives — which
		// only happens after the first call was cancelled client-side —
		// so the stale response lands while the second call waits.
		if err := readLegacyFrame(conn, &req2); err != nil {
			return
		}
		writeLegacyFrame(conn, &legacyResponse{OK: true, Payload: bytes.ToUpper(req1.Payload)})
		writeLegacyFrame(conn, &legacyResponse{OK: true, Payload: bytes.ToUpper(req2.Payload)})
	}()
	c, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(30*time.Millisecond, cancel)
	if _, err := c.InvokeContext(ctx, "upper", []byte("loser")); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled call returned %v, want context.Canceled", err)
	}
	out, err := c.Invoke("upper", []byte("winner"))
	if err != nil || string(out) != "WINNER" {
		t.Fatalf("call after cancellation got %q, %v — the loser's fifo entry leaked", out, err)
	}
}

// TestOldClientAgainstNewServer: raw legacy JSON frames (no Accept)
// must be answered with plain JSON frames, byte-verifiably.
func TestOldClientAgainstNewServer(t *testing.T) {
	_, addr := startServer(t) // the new concurrent server
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < 3; i++ {
		req := legacyRequest{Op: "invoke", ID: "old-1", Fn: "upper", Payload: []byte("hi")}
		if err := writeLegacyFrame(conn, &req); err != nil {
			t.Fatal(err)
		}
		// Read the raw frame and check the body is JSON, not binary.
		var hdr [4]byte
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			t.Fatal(err)
		}
		body := make([]byte, binary.BigEndian.Uint32(hdr[:]))
		if _, err := io.ReadFull(conn, body); err != nil {
			t.Fatal(err)
		}
		if len(body) == 0 || body[0] != '{' {
			t.Fatalf("new server answered a legacy JSON request with a non-JSON frame: % x", body[:min(8, len(body))])
		}
		var resp legacyResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatal(err)
		}
		if !resp.OK || string(resp.Payload) != "HI" || resp.ID != "old-1" {
			t.Fatalf("resp = %+v", resp)
		}
	}
}

// TestBinaryNegotiationUpgrade: new client against new server starts on
// JSON, is acked, and speaks binary from the second request on — and
// the responses keep working across the switch.
func TestBinaryNegotiationUpgrade(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.binary.Load() {
		t.Fatal("client assumed binary before any ack")
	}
	out, err := c.Invoke("upper", []byte("first"))
	if err != nil || string(out) != "FIRST" {
		t.Fatalf("first call: %q, %v", out, err)
	}
	if !c.binary.Load() {
		t.Fatal("client did not upgrade after server ack")
	}
	out, err = c.Invoke("upper", []byte("second"))
	if err != nil || string(out) != "SECOND" {
		t.Fatalf("binary call: %q, %v", out, err)
	}
	if batch, err := c.InvokeBatch("upper", [][]byte{[]byte("x"), []byte("y")}); err != nil ||
		len(batch) != 2 || string(batch[0]) != "X" || string(batch[1]) != "Y" {
		t.Fatalf("binary batch: %q, %v", batch, err)
	}
}

// TestForceJSONNeverUpgrades: the pinned-JSON escape hatch for
// benchmarks and debugging.
func TestForceJSONNeverUpgrades(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.ForceJSON()
	for i := 0; i < 3; i++ {
		if _, err := c.Invoke("echo", []byte("j")); err != nil {
			t.Fatal(err)
		}
	}
	if c.binary.Load() {
		t.Fatal("ForceJSON client upgraded to binary")
	}
}
