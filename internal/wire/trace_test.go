package wire

// Distributed-tracing tests for the live path: trace context must ride
// both codecs (and degrade cleanly against legacy peers), every layer
// must emit correctly parented spans, a hedged race must record both
// arms under one trace with the loser marked cancelled, and OpTrace
// must pull a daemon's spans for cross-process assembly.

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"

	"continuum/internal/faas"
	"continuum/internal/trace"
)

// tracedServer builds an echo/work server whose wire server AND faas
// endpoint record into one fresh span store, mirroring continuumd.
func tracedServer(t *testing.T, name string, delay time.Duration) (*Server, *trace.SpanStore) {
	t.Helper()
	reg := faas.NewRegistry()
	reg.Register("echo", func(p []byte) ([]byte, error) { return p, nil })
	reg.Register("work", func(p []byte) ([]byte, error) {
		time.Sleep(delay)
		return bytes.ToUpper(p), nil
	})
	ep := faas.NewEndpoint(faas.EndpointConfig{Name: name, Capacity: 8}, reg)
	store := trace.NewSpanStore(256)
	ep.SetSpans(store)
	srv := &Server{
		Invoker: ep, Batcher: ep, Registry: reg,
		Endpoints: []*faas.Endpoint{ep},
		Name:      name, Spans: store,
	}
	return srv, store
}

// spanBy returns the first span matching pred, or nil.
func spanBy(spans []*trace.Span, pred func(*trace.Span) bool) *trace.Span {
	for _, sp := range spans {
		if pred(sp) {
			return sp
		}
	}
	return nil
}

// TestBinaryTraceTrailerOptional: the binary codec must append trace
// context strictly as a trailing extension — an untraced frame is a
// byte-for-byte prefix of the traced one, which is exactly why a legacy
// decoder (which stops reading after the batch section) parses traced
// frames correctly, and why untraced frames are identical to the
// pre-trace wire format.
func TestBinaryTraceTrailerOptional(t *testing.T) {
	plain := fullRequest()
	plain.TraceID, plain.SpanID, plain.Priority, plain.Member = "", "", 0, nil // default frame: no trailer at all
	traced := fullRequest()
	traced.Member = nil // trace-only trailer: strictly the trace extension

	var plainBuf, tracedBuf bytes.Buffer
	if err := WriteFrameCodec(&plainBuf, plain, CodecBinary); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrameCodec(&tracedBuf, traced, CodecBinary); err != nil {
		t.Fatal(err)
	}
	// Compare bodies (skip the 4-byte length prefix, which differs).
	pb, tb := plainBuf.Bytes()[4:], tracedBuf.Bytes()[4:]
	if len(tb) <= len(pb) {
		t.Fatalf("traced frame (%d B) not larger than untraced (%d B)", len(tb), len(pb))
	}
	if !bytes.Equal(tb[:len(pb)], pb) {
		t.Fatal("untraced binary frame is not a prefix of the traced one — trace context must be a trailing extension")
	}
	// A frame with no trailer decodes as untraced, not as an error.
	out := new(Request)
	if _, err := ReadFrameCodec(&plainBuf, out); err != nil {
		t.Fatal(err)
	}
	if out.TraceID != "" || out.SpanID != "" {
		t.Fatalf("untraced frame decoded trace context %q/%q", out.TraceID, out.SpanID)
	}
}

// TestTracedClientAgainstLegacyServer: a legacy JSON peer drops the
// trace fields entirely. The call must succeed, the client's own spans
// must still record and assemble into a coherent (client-only) trace,
// and nothing may corrupt.
func TestTracedClientAgainstLegacyServer(t *testing.T) {
	addr := startLegacyServer(t, true)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	store := trace.NewSpanStore(64)
	c.SetSpans(store, "ctl")

	traceID := trace.NewTraceID()
	ctx := trace.NewContext(context.Background(), trace.SpanContext{TraceID: traceID})
	out, err := c.InvokeContext(ctx, "upper", []byte("legacy"))
	if err != nil || string(out) != "LEGACY" {
		t.Fatalf("traced call against legacy server = %q, %v", out, err)
	}

	spans := store.Trace(traceID)
	if len(spans) != 1 {
		t.Fatalf("client recorded %d spans, want 1 send span", len(spans))
	}
	send := spans[0]
	if send.Kind != trace.KindClient || send.Service != "ctl" || send.Err != "" {
		t.Fatalf("send span = %+v", send)
	}
	// Assembly degrades to the client's half, never corrupts: the merge
	// of everything the federation retained is exactly that one span.
	merged := trace.MergeSpans(store.Trace(traceID))
	if len(merged) != 1 || merged[0].TraceID != traceID {
		t.Fatalf("degraded assembly = %+v", merged)
	}
}

// TestUntracedRequestRecordsNothing: a request without trace context —
// e.g. from a peer that predates the fields — must leave the server's
// span store untouched (tracing is strictly opt-in per request).
func TestUntracedRequestRecordsNothing(t *testing.T) {
	srv, store := tracedServer(t, "epA", 0)
	addr := startServerOn(t, srv)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if out, err := c.Invoke("echo", []byte("plain")); err != nil || string(out) != "plain" {
		t.Fatalf("untraced call = %q, %v", out, err)
	}
	if n := store.Len(); n != 0 {
		t.Fatalf("untraced request recorded %d spans: %+v", n, store.Snapshot())
	}
}

// TestTraceSpansAcrossClientServer: one traced call through the full
// stack must produce a correctly linked tree — send span on the client;
// server, queue, and exec spans on the daemon, each parented to its
// caller's span — and OpTrace must pull the daemon's half.
func TestTraceSpansAcrossClientServer(t *testing.T) {
	srv, serverStore := tracedServer(t, "epA", 0)
	addr := startServerOn(t, srv)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	clientStore := trace.NewSpanStore(64)
	c.SetSpans(clientStore, "ctl")

	traceID := trace.NewTraceID()
	ctx := trace.NewContext(context.Background(), trace.SpanContext{TraceID: traceID})
	if out, err := c.InvokeContext(ctx, "echo", []byte("hi")); err != nil || string(out) != "hi" {
		t.Fatalf("traced call = %q, %v", out, err)
	}

	send := spanBy(clientStore.Trace(traceID), func(sp *trace.Span) bool { return sp.Kind == trace.KindClient })
	if send == nil {
		t.Fatalf("no client send span: %+v", clientStore.Snapshot())
	}

	// Pull the daemon's half over the wire (the continuumctl trace path)
	// and check it matches the store directly.
	pulled, err := c.Trace(traceID)
	if err != nil {
		t.Fatal(err)
	}
	if len(pulled) != len(serverStore.Trace(traceID)) {
		t.Fatalf("OpTrace returned %d spans, store has %d", len(pulled), len(serverStore.Trace(traceID)))
	}
	byKind := func(k trace.SpanKind) *trace.Span {
		for i := range pulled {
			if pulled[i].Kind == k {
				return &pulled[i]
			}
		}
		return nil
	}
	server, queue, exec := byKind(trace.KindServer), byKind(trace.KindQueue), byKind(trace.KindExec)
	if server == nil || queue == nil || exec == nil {
		t.Fatalf("daemon spans missing (server=%v queue=%v exec=%v): %+v", server, queue, exec, pulled)
	}
	if server.Parent != send.SpanID {
		t.Fatalf("server span parent = %q, want the client send span %q", server.Parent, send.SpanID)
	}
	if queue.Parent != server.SpanID || exec.Parent != server.SpanID {
		t.Fatalf("queue/exec parents = %q/%q, want the server span %q", queue.Parent, exec.Parent, server.SpanID)
	}
	if server.Service != "epA" || exec.Name != "exec echo" || queue.Name != "queue echo" {
		t.Fatalf("span naming: server.svc=%q queue=%q exec=%q", server.Service, queue.Name, exec.Name)
	}
	if exec.Attrs["container"] != "cold" {
		t.Fatalf("first exec container attr = %q, want cold", exec.Attrs["container"])
	}
	if _, ok := server.Attrs["pool_wait_us"]; !ok {
		t.Fatalf("server span missing pool_wait_us attr: %+v", server.Attrs)
	}
	for _, sp := range pulled {
		if sp.TraceID != traceID {
			t.Fatalf("span %s leaked into trace %s", sp.SpanID, sp.TraceID)
		}
		if sp.End < sp.Start {
			t.Fatalf("span %s ends before it starts", sp.SpanID)
		}
	}
}

// syncBuf is a mutex-guarded buffer: the server logs the request line
// AFTER writing the response, so the client returns while the log write
// may still be in flight on the server goroutine.
type syncBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func (b *syncBuf) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.buf.Reset()
}

// waitLog polls until the buffer satisfies ok or the deadline passes,
// returning the final contents either way.
func waitLog(b *syncBuf, ok func(string) bool) string {
	deadline := time.Now().Add(2 * time.Second)
	for {
		s := b.String()
		if ok(s) || time.Now().After(deadline) {
			return s
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestTraceIDInRequestLog: the per-request slog line must carry the
// trace ID so logs and traces cross-reference.
func TestTraceIDInRequestLog(t *testing.T) {
	srv, _ := tracedServer(t, "epA", 0)
	logBuf := new(syncBuf)
	srv.Logger = slog.New(slog.NewTextHandler(logBuf, nil))
	addr := startServerOn(t, srv)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	traceID := trace.NewTraceID()
	ctx := trace.NewContext(context.Background(), trace.SpanContext{TraceID: traceID})
	if _, err := c.InvokeContext(ctx, "echo", []byte("x")); err != nil {
		t.Fatal(err)
	}
	got := waitLog(logBuf, func(s string) bool { return strings.Contains(s, "trace="+traceID) })
	if !strings.Contains(got, "trace="+traceID) {
		t.Fatalf("request log line missing trace ID %s:\n%s", traceID, got)
	}
	// Untraced requests must not log an empty trace attr. Wait for the
	// second request's line to land before asserting its shape.
	logBuf.Reset()
	if _, err := c.Invoke("echo", []byte("y")); err != nil {
		t.Fatal(err)
	}
	got = waitLog(logBuf, func(s string) bool { return strings.Contains(s, "msg=request") })
	if !strings.Contains(got, "msg=request") {
		t.Fatalf("untraced request never logged:\n%s", got)
	}
	if strings.Contains(got, "trace=") {
		t.Fatalf("untraced request logged a trace attr:\n%s", got)
	}
}

// TestHedgedTraceBothArms: a hedged race under tracing must record ONE
// trace holding the root, both arm spans (primary and hedge), the
// loser marked cancelled, the winner clean — and the merged view must
// assemble into a tree that exports as a Chrome trace.
func TestHedgedTraceBothArms(t *testing.T) {
	slowSrv, slowStore := tracedServer(t, "slow", 250*time.Millisecond)
	fastSrv, fastStore := tracedServer(t, "fast", 0)
	slowAddr := startServerOn(t, slowSrv)
	fastAddr := startServerOn(t, fastSrv)

	clientStore := trace.NewSpanStore(64)
	r, err := NewReliableClient(ReliableConfig{
		Addrs:   []string{slowAddr, fastAddr}, // pick starts at eps[0] = slow
		Hedge:   HedgeConfig{Enabled: true, Delay: 10 * time.Millisecond},
		Spans:   clientStore,
		Service: "ctl",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	out, err := r.Invoke("work", []byte("hedged"))
	if err != nil || string(out) != "HEDGED" {
		t.Fatalf("hedged call = %q, %v", out, err)
	}
	if _, wins := r.HedgeStats(); wins != 1 {
		t.Fatalf("hedge wins = %d, want 1", wins)
	}
	// The losing arm settles asynchronously once its cancellation lands.
	time.Sleep(100 * time.Millisecond)

	roots := trace.Summarize(clientStore.Snapshot())
	if len(roots) != 1 {
		t.Fatalf("client recorded %d traces, want exactly 1: %+v", len(roots), roots)
	}
	traceID := roots[0].TraceID
	spans := clientStore.Trace(traceID)

	root := spanBy(spans, func(sp *trace.Span) bool { return sp.Parent == "" })
	if root == nil || root.Kind != trace.KindClient || root.Name != "invoke work" {
		t.Fatalf("root span = %+v", root)
	}
	primary := spanBy(spans, func(sp *trace.Span) bool { return sp.Attrs["arm"] == "primary" })
	hedge := spanBy(spans, func(sp *trace.Span) bool { return sp.Attrs["arm"] == "hedge" })
	if primary == nil || hedge == nil {
		t.Fatalf("want primary+hedge arm spans, got %+v", spans)
	}
	for _, arm := range []*trace.Span{primary, hedge} {
		if arm.Kind != trace.KindAttempt || arm.Parent != root.SpanID {
			t.Fatalf("arm span %+v not an attempt child of the root", arm)
		}
	}
	// Loser: the primary landed on the slow endpoint, was cancelled when
	// the hedge won, and must say so. Winner: clean.
	if primary.Attrs["cancelled"] != "true" || primary.Err == "" {
		t.Fatalf("losing arm not marked cancelled: %+v", primary)
	}
	if primary.Attrs["ep"] != slowAddr || hedge.Attrs["ep"] != fastAddr {
		t.Fatalf("arm endpoints: primary=%q hedge=%q", primary.Attrs["ep"], hedge.Attrs["ep"])
	}
	if hedge.Err != "" {
		t.Fatalf("winning arm recorded an error: %+v", hedge)
	}

	// Cross-process assembly: merge all three stores; the winner's exec
	// span must be present and reachable root -> arm -> send -> server.
	merged := trace.MergeSpans(clientStore.Trace(traceID), slowStore.Trace(traceID), fastStore.Trace(traceID))
	byID := make(map[string]*trace.Span, len(merged))
	for _, sp := range merged {
		if sp.TraceID != traceID {
			t.Fatalf("merge leaked trace %s", sp.TraceID)
		}
		byID[sp.SpanID] = sp
	}
	exec := spanBy(merged, func(sp *trace.Span) bool { return sp.Kind == trace.KindExec && sp.Service == "fast" })
	if exec == nil {
		t.Fatalf("winner's exec span missing from the merged trace: %+v", merged)
	}
	for hop, sp := 0, exec; sp.Parent != ""; hop++ {
		parent, ok := byID[sp.Parent]
		if !ok {
			t.Fatalf("span %s (%s) has unresolvable parent %s", sp.SpanID, sp.Name, sp.Parent)
		}
		if hop > len(merged) {
			t.Fatal("parent chain cycles")
		}
		sp = parent
		if sp.Parent == "" && sp.SpanID != root.SpanID {
			t.Fatalf("exec span's ancestry tops out at %s, want the client root %s", sp.SpanID, root.SpanID)
		}
	}

	// And the assembled trace must export through the shared Chrome path.
	var chrome bytes.Buffer
	if err := trace.SpansToTracer(merged).WriteChromeTrace(&chrome); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(chrome.Bytes()) || !strings.Contains(chrome.String(), "invoke work") {
		t.Fatalf("Chrome export invalid or missing the root span:\n%s", chrome.String())
	}
}

// TestRetryTraceAttemptsAndFailover: a retry that fails over must
// record one attempt span per try, with the failover attributed.
func TestRetryTraceAttemptsAndFailover(t *testing.T) {
	// The flaky endpoint's only slot is held by a blocked call, so every
	// attempt on it rejects with a retryable overload; the good endpoint
	// answers normally.
	block := make(chan struct{})
	regFlaky := faas.NewRegistry()
	regFlaky.Register("echo", func(p []byte) ([]byte, error) { <-block; return p, nil })
	failEP := faas.NewEndpoint(faas.EndpointConfig{Name: "flaky", Capacity: 1, QueueWait: time.Millisecond}, regFlaky)
	failSrv := &Server{Invoker: failEP, Registry: regFlaky, Endpoints: []*faas.Endpoint{failEP}, Name: "flaky", Spans: trace.NewSpanStore(64)}
	goodSrv, _ := tracedServer(t, "good", 0)
	failAddr := startServerOn(t, failSrv)
	goodAddr := startServerOn(t, goodSrv)

	stuck, err := Dial(failAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer stuck.Close()
	stuckDone := make(chan struct{})
	go func() { stuck.Invoke("echo", []byte("stuck")); close(stuckDone) }()
	time.Sleep(20 * time.Millisecond)

	clientStore := trace.NewSpanStore(64)
	r, err := NewReliableClient(ReliableConfig{
		Addrs:   []string{failAddr, goodAddr},
		Spans:   clientStore,
		Service: "ctl",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	out, err := r.Invoke("echo", []byte("persist"))
	close(block)
	<-stuckDone
	if err != nil || string(out) != "persist" {
		t.Fatalf("retried call = %q, %v", out, err)
	}

	sums := trace.Summarize(clientStore.Snapshot())
	if len(sums) != 1 {
		t.Fatalf("client recorded %d traces, want 1", len(sums))
	}
	spans := clientStore.Trace(sums[0].TraceID)
	var attempts []*trace.Span
	for _, sp := range spans {
		if sp.Kind == trace.KindAttempt {
			attempts = append(attempts, sp)
		}
	}
	if len(attempts) < 2 {
		t.Fatalf("want >= 2 attempt spans (initial + retry), got %+v", spans)
	}
	// The first attempt failed; a later one succeeded on the other
	// endpoint with failover attributed.
	first := spanBy(attempts, func(sp *trace.Span) bool { return sp.Attempt == 0 })
	if first == nil || first.Err == "" {
		t.Fatalf("first attempt span = %+v, want a recorded failure", first)
	}
	winner := spanBy(attempts, func(sp *trace.Span) bool { return sp.Err == "" })
	if winner == nil || winner.Attrs["ep"] != goodAddr || winner.Attrs["failover"] != "true" {
		t.Fatalf("winning attempt = %+v, want success on %s with failover=true", winner, goodAddr)
	}
}
