package federation

import (
	"hash/fnv"
	"sort"

	"continuum/internal/wire"
)

// Policy orders the routable members for one invocation. The returned
// slice is a preference-ordered dial-address list: the router's client
// tries the first admitted entry, a retry after its failure moves to
// the next, and an exhausted list degrades to round-robin failover over
// whatever is left. Implementations must be safe for concurrent use and
// must not retain or mutate members.
type Policy interface {
	Order(fn string, payload []byte, members []wire.MemberStatus) []string
}

// serves reports whether a member advertises fn. An empty Functions
// list means the member serves everything (a homogeneous fleet needs no
// capability filtering).
func serves(m *wire.MemberStatus, fn string) bool {
	if len(m.Functions) == 0 {
		return true
	}
	for _, f := range m.Functions {
		if f == fn {
			return true
		}
	}
	return false
}

// hashVnodes is how many virtual nodes each member contributes to the
// consistent-hash ring. More vnodes smooth the key distribution across
// unevenly-named members at the cost of a bigger per-call sort; 64 is
// plenty for the fleet sizes one router fronts.
const hashVnodes = 64

// HashPolicy is consistent hashing on function+payload affinity: the
// invocation key (fn and the payload bytes) hashes to a point on a ring
// of member virtual nodes, and the preference order is the ring walk
// from that point. The same arguments keep landing on the same member —
// warm containers and caches stay warm — while membership churn remaps
// only the keys the departed member owned, not the whole keyspace. The
// ring is rebuilt per call from the routable set (fleets a single
// router fronts are small, and members carry live state a cached ring
// would go stale on).
type HashPolicy struct{}

// mix64 is the murmur3 finalizer: full avalanche, so the clustered
// outputs FNV produces for similar inputs (adjacent vnode indexes,
// sequential payloads) still spread uniformly over the ring.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Order implements Policy: the ring walk from the invocation key's
// point, capability-filtered, deduplicated to distinct members.
func (HashPolicy) Order(fn string, payload []byte, members []wire.MemberStatus) []string {
	type vnode struct {
		point uint64
		addr  string
	}
	ring := make([]vnode, 0, hashVnodes*len(members))
	for i := range members {
		m := &members[i]
		if !serves(m, fn) {
			continue
		}
		h := fnv.New64a()
		h.Write([]byte(m.Name))
		base := h.Sum64()
		for v := 0; v < hashVnodes; v++ {
			point := mix64(base + uint64(v)*0x9e3779b97f4a7c15) // golden-ratio stride per vnode
			ring = append(ring, vnode{point: point, addr: m.Addr})
		}
	}
	if len(ring) == 0 {
		return nil
	}
	sort.Slice(ring, func(i, j int) bool { return ring[i].point < ring[j].point })

	kh := fnv.New64a()
	kh.Write([]byte(fn))
	kh.Write(payload)
	key := mix64(kh.Sum64())
	start := sort.Search(len(ring), func(i int) bool { return ring[i].point >= key })

	seen := make(map[string]struct{}, len(members))
	out := make([]string, 0, len(members))
	for i := 0; i < len(ring) && len(seen) < len(members); i++ {
		addr := ring[(start+i)%len(ring)].addr
		if _, dup := seen[addr]; dup {
			continue
		}
		seen[addr] = struct{}{}
		out = append(out, addr)
	}
	return out
}

// LeastLoadedPolicy orders members by instantaneous load pressure —
// (queue depth + in-flight) normalized by the advertised slot limit —
// so new work flows toward spare capacity. Load figures are one
// heartbeat old by construction; the router's breakers and retries
// absorb the staleness. Ties break by name for determinism.
type LeastLoadedPolicy struct{}

// Order implements Policy.
func (LeastLoadedPolicy) Order(fn string, _ []byte, members []wire.MemberStatus) []string {
	type scored struct {
		score float64
		name  string
		addr  string
	}
	out := make([]scored, 0, len(members))
	for i := range members {
		m := &members[i]
		if !serves(m, fn) {
			continue
		}
		slots := m.SlotLimit
		if slots <= 0 {
			slots = m.Capacity
		}
		if slots <= 0 {
			slots = 1
		}
		out = append(out, scored{
			score: float64(m.QueueDepth+int(m.InFlight)) / float64(slots),
			name:  m.Name,
			addr:  m.Addr,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].score != out[j].score {
			return out[i].score < out[j].score
		}
		return out[i].name < out[j].name
	})
	addrs := make([]string, len(out))
	for i, s := range out {
		addrs[i] = s.addr
	}
	return addrs
}

// PolicyByName maps the -policy flag values to implementations:
// "hash" (consistent hashing, the default) and "least-loaded".
func PolicyByName(name string) (Policy, bool) {
	switch name {
	case "", "hash":
		return HashPolicy{}, true
	case "least-loaded", "least_loaded", "leastloaded":
		return LeastLoadedPolicy{}, true
	}
	return nil, false
}
