package federation

import (
	"log/slog"
	"strings"
	"sync"
	"time"

	"continuum/internal/faas"
	"continuum/internal/wire"
)

// AgentConfig parameterizes an Agent.
type AgentConfig struct {
	// RouterAddr is the continuum-router to register with.
	RouterAddr string
	// Name is this daemon's member name (must be unique in the
	// federation; re-registering it supersedes the previous holder).
	Name string
	// Advertise is the address the router should dial to reach this
	// daemon's wire listener — the daemon's reachable address, not
	// necessarily the one it bound.
	Advertise string
	// Endpoint supplies capacity and the live load snapshot heartbeats
	// carry. Nil advertises no load (a pure-capability member).
	Endpoint *faas.Endpoint
	// Functions lists the function names this daemon serves; empty means
	// "everything".
	Functions []string
	// Interval overrides the heartbeat cadence the router asked for
	// (0 = honor the router). Tests shrink it; production should not.
	Interval time.Duration
	// DialTimeout bounds each (re)connect to the router
	// (0 = wire.DefaultDialTimeout).
	DialTimeout time.Duration
	// Logger, when set, logs registration transitions and errors.
	Logger *slog.Logger
}

// Agent is the daemon half of the federation: it registers with the
// router, heartbeats at the router's cadence with the endpoint's live
// load snapshot, re-registers when the router stops recognizing it
// (router restart, expiry after a partition, a superseded generation),
// redials dropped connections, and deregisters — gracefully draining,
// when asked — on shutdown. Start it after the daemon's wire listener
// is serving, so the advertised address is live before the router can
// route to it.
type Agent struct {
	cfg AgentConfig

	mu     sync.Mutex
	client *wire.Client
	gen    int64
	stop   chan struct{}
	done   chan struct{}
}

// NewAgent builds an agent; Start begins the register/heartbeat loop.
func NewAgent(cfg AgentConfig) *Agent {
	return &Agent{cfg: cfg, stop: make(chan struct{}), done: make(chan struct{})}
}

// info assembles the member body for a register or heartbeat frame.
func (a *Agent) info(gen int64) wire.MemberInfo {
	m := wire.MemberInfo{
		Name:       a.cfg.Name,
		Addr:       a.cfg.Advertise,
		Functions:  a.cfg.Functions,
		Generation: gen,
	}
	if ep := a.cfg.Endpoint; ep != nil {
		m.Capacity = ep.Capacity()
		load := ep.Load()
		m.QueueDepth = load.QueueDepth
		m.InFlight = load.InFlight
		m.SlotLimit = load.SlotLimit
		m.Cordoned = load.Cordoned
	}
	return m
}

// dial returns the agent's router connection, (re)dialing if needed.
// Callers must hold a.mu.
func (a *Agent) dialLocked() (*wire.Client, error) {
	if a.client != nil && !a.client.Broken() {
		return a.client, nil
	}
	if a.client != nil {
		a.client.Close()
		a.client = nil
	}
	timeout := a.cfg.DialTimeout
	if timeout <= 0 {
		timeout = wire.DefaultDialTimeout
	}
	c, err := wire.DialTimeout(a.cfg.RouterAddr, timeout)
	if err != nil {
		return nil, err
	}
	a.client = c
	return c, nil
}

// register performs one register round trip and returns the interval
// the router asked for.
func (a *Agent) register() (time.Duration, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	c, err := a.dialLocked()
	if err != nil {
		return 0, err
	}
	gen, interval, err := c.Register(a.info(0))
	if err != nil {
		return 0, err
	}
	a.gen = gen
	if a.cfg.Logger != nil {
		a.cfg.Logger.Info("registered with router", "router", a.cfg.RouterAddr, "gen", gen, "heartbeat", interval)
	}
	return interval, nil
}

// heartbeat performs one heartbeat round trip.
func (a *Agent) heartbeat() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	c, err := a.dialLocked()
	if err != nil {
		return err
	}
	return c.Heartbeat(a.info(a.gen))
}

// Start launches the register/heartbeat loop. It returns immediately;
// registration happens (and keeps retrying) in the background, so a
// daemon that boots before its router still joins once the router is
// up.
func (a *Agent) Start() {
	go a.run()
}

// isUnknownMember classifies a router rejection that re-registration
// cures. The verdict crosses the wire as a RemoteError, so match on the
// registry's sentinel message.
func isUnknownMember(err error) bool {
	return err != nil && strings.Contains(err.Error(), "unknown member")
}

// run is the agent's loop: register (retrying at a fixed pace until the
// router answers), then heartbeat at the granted cadence, dropping back
// to registration whenever the router stops recognizing us.
func (a *Agent) run() {
	defer close(a.done)
	const registerRetry = time.Second
	for {
		interval, err := a.register()
		if err != nil {
			if a.cfg.Logger != nil {
				a.cfg.Logger.Warn("router registration failed; will retry", "err", err)
			}
			retry := a.cfg.Interval
			if retry <= 0 {
				retry = registerRetry
			}
			select {
			case <-a.stop:
				return
			case <-time.After(retry):
			}
			continue
		}
		if a.cfg.Interval > 0 {
			interval = a.cfg.Interval
		}
		if interval <= 0 {
			interval = DefaultHeartbeatInterval
		}
		t := time.NewTicker(interval)
		for {
			select {
			case <-a.stop:
				t.Stop()
				return
			case <-t.C:
			}
			if err := a.heartbeat(); err != nil {
				if a.cfg.Logger != nil {
					a.cfg.Logger.Warn("heartbeat failed", "err", err, "reregister", isUnknownMember(err))
				}
				if isUnknownMember(err) {
					break // fall back to registration with a fresh generation
				}
				// Transport errors just keep ticking: dialLocked redials on
				// the next beat, and the router's expiry horizon is several
				// intervals wide.
			}
		}
		t.Stop()
	}
}

// Stop halts the register/heartbeat loop WITHOUT deregistering — the
// crash shape: the router learns of the death only through missed
// heartbeats (suspect, then expiry). Tests use it to simulate a killed
// daemon; graceful shutdown wants Leave.
func (a *Agent) Stop() {
	select {
	case <-a.stop:
	default:
		close(a.stop)
		<-a.done
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.client != nil {
		a.client.Close()
		a.client = nil
	}
}

// Leave deregisters and stops the loop. drain true asks the router for
// a graceful drain — stop routing new work, let in-flight work finish —
// which is the daemon-shutdown path: cordon the endpoint, Leave(true),
// then drain the wire server.
func (a *Agent) Leave(drain bool) error {
	select {
	case <-a.stop:
	default:
		close(a.stop)
		<-a.done
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	var err error
	if a.gen != 0 {
		var c *wire.Client
		if c, err = a.dialLocked(); err == nil {
			err = c.Deregister(a.cfg.Name, a.gen, drain)
		}
	}
	if a.client != nil {
		a.client.Close()
		a.client = nil
	}
	return err
}
