package federation

import (
	"context"
	"errors"
	"log/slog"
	"sync/atomic"
	"time"

	"continuum/internal/metrics"
	"continuum/internal/trace"
	"continuum/internal/wire"
)

// RouterConfig parameterizes a Router.
type RouterConfig struct {
	// Registry configures the membership state machine (zero value →
	// registry defaults). Its OnChange hook is taken by the router.
	Registry Config
	// Policy orders routable members per invocation (nil = HashPolicy).
	Policy Policy
	// Client parameterizes the router's outbound ReliableClient — retry
	// policy, breakers, hedging, retry budget, call timeout, pool size.
	// Addrs and Dynamic are overwritten: the registry owns membership.
	Client wire.ReliableConfig
	// Metrics, when set, receives the federation_* counters and gauges
	// (see the package's metric inventory in docs/OPERATIONS.md) in
	// addition to the wire client metrics Client.Metrics would carry.
	Metrics *metrics.Registry
	// Spans, when set, records the router's half of every traced
	// invocation (service "router": root invoke span, attempt spans per
	// retry/hedge arm) so a pulled trace shows the route decision chain.
	Spans *trace.SpanStore
	// Logger, when set, logs membership transitions.
	Logger *slog.Logger
}

// Router is the data-plane half of a continuum-router process: it
// serves the federation control ops as a wire.OpsHandler and routes
// invocations across the registered daemons as a faas.ContextInvoker —
// plug it into a wire.Server as both Ops and Invoker and the one
// listener speaks the whole protocol. Routing composes the policy's
// preference order with wire.ReliableClient, so endpoint failures hit
// the same retry/breaker/hedge machinery as any other reliable call.
type Router struct {
	reg    *Registry
	policy Policy
	rc     *wire.ReliableClient
	log    *slog.Logger

	stop chan struct{}
	done chan struct{}

	routes       atomic.Int64
	routeErrs    atomic.Int64
	membersG     *metrics.Gauge   // federation_members, nil without Metrics
	routableG    *metrics.Gauge   // federation_members_routable
	registersC   *metrics.Counter // federation_registers_total
	heartbeatsC  *metrics.Counter // federation_heartbeats_total
	deregistersC *metrics.Counter // federation_deregisters_total
	expiredC     *metrics.Counter // federation_expired_total
	routesC      *metrics.Counter // federation_routes_total
	routeErrsC   *metrics.Counter // federation_route_errors_total
}

// NewRouter builds a router and starts its expiry sweeper. Close stops
// it.
func NewRouter(cfg RouterConfig) (*Router, error) {
	rt := &Router{
		policy: cfg.Policy,
		log:    cfg.Logger,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	if rt.policy == nil {
		rt.policy = HashPolicy{}
	}
	if cfg.Metrics != nil {
		rt.membersG = cfg.Metrics.Gauge("federation_members")
		rt.routableG = cfg.Metrics.Gauge("federation_members_routable")
		rt.registersC = cfg.Metrics.Counter("federation_registers_total")
		rt.heartbeatsC = cfg.Metrics.Counter("federation_heartbeats_total")
		rt.deregistersC = cfg.Metrics.Counter("federation_deregisters_total")
		rt.expiredC = cfg.Metrics.Counter("federation_expired_total")
		rt.routesC = cfg.Metrics.Counter("federation_routes_total")
		rt.routeErrsC = cfg.Metrics.Counter("federation_route_errors_total")
	}

	regCfg := cfg.Registry
	regCfg.OnChange = rt.sync
	rt.reg = NewRegistry(regCfg)

	ccfg := cfg.Client
	ccfg.Addrs = nil
	ccfg.Dynamic = true
	if ccfg.Service == "" {
		ccfg.Service = "router"
	}
	if ccfg.Spans == nil {
		ccfg.Spans = cfg.Spans
	}
	if ccfg.Metrics == nil {
		ccfg.Metrics = cfg.Metrics
	}
	rc, err := wire.NewReliableClient(ccfg)
	if err != nil {
		return nil, err
	}
	rt.rc = rc

	go rt.sweepLoop()
	return rt, nil
}

// Registry exposes the membership state machine (tests and continuumd's
// in-process mode reach it directly).
func (rt *Router) Registry() *Registry { return rt.reg }

// Client exposes the router's outbound reliable client.
func (rt *Router) Client() *wire.ReliableClient { return rt.rc }

// sweepLoop expires silent members on a timer, so deaths are noticed
// within the expiry horizon even when no heartbeat arrives to trigger
// the registry's lazy sweep.
func (rt *Router) sweepLoop() {
	defer close(rt.done)
	t := time.NewTicker(rt.reg.HeartbeatInterval())
	defer t.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-t.C:
			rt.reg.Sweep()
		}
	}
}

// Close stops the sweeper and closes the outbound connection pools.
func (rt *Router) Close() error {
	select {
	case <-rt.stop:
	default:
		close(rt.stop)
		<-rt.done
	}
	return rt.rc.Close()
}

// sync reconciles the reliable client's endpoint set (and the
// membership gauges) with the registry. Wired as the registry's
// OnChange hook, so every membership mutation — register, drain,
// leave, expiry — lands in the routing set immediately.
func (rt *Router) sync() {
	addrs := rt.reg.MemberAddrs()
	before := len(rt.rc.EndpointAddrs())
	rt.rc.SetEndpoints(addrs)
	if rt.membersG != nil {
		rt.membersG.Set(float64(len(addrs)))
		rt.routableG.Set(float64(len(rt.reg.Routable())))
	}
	if rt.expiredC != nil && len(addrs) < before {
		rt.expiredC.Add(int64(before - len(addrs)))
	}
}

// HandleOp implements wire.OpsHandler: the register / heartbeat /
// deregister / endpoints control ops, plus list forwarded to the fleet.
// Everything else falls through to the wire server's built-in dispatch
// (invoke arrives at InvokeContext via the server's Invoker path, which
// keeps span and priority threading intact).
func (rt *Router) HandleOp(req *wire.Request) (*wire.Response, bool) {
	switch req.Op {
	case wire.OpRegister:
		if req.Member == nil {
			return &wire.Response{Error: "federation: register without member body"}, true
		}
		gen, err := rt.reg.Register(*req.Member)
		if err != nil {
			return &wire.Response{Error: err.Error()}, true
		}
		if rt.registersC != nil {
			rt.registersC.Inc()
		}
		if rt.log != nil {
			rt.log.Info("member registered", "member", req.Member.Name, "addr", req.Member.Addr, "gen", gen)
		}
		return &wire.Response{
			OK:          true,
			Generation:  gen,
			HeartbeatMS: rt.reg.HeartbeatInterval().Milliseconds(),
		}, true
	case wire.OpHeartbeat:
		if req.Member == nil {
			return &wire.Response{Error: "federation: heartbeat without member body"}, true
		}
		if err := rt.reg.Heartbeat(*req.Member); err != nil {
			return &wire.Response{Error: err.Error()}, true
		}
		if rt.heartbeatsC != nil {
			rt.heartbeatsC.Inc()
		}
		return &wire.Response{OK: true}, true
	case wire.OpDeregister:
		if req.Member == nil {
			return &wire.Response{Error: "federation: deregister without member body"}, true
		}
		if err := rt.reg.Deregister(req.Member.Name, req.Member.Generation, req.Member.Draining); err != nil {
			return &wire.Response{Error: err.Error()}, true
		}
		if rt.deregistersC != nil {
			rt.deregistersC.Inc()
		}
		if rt.log != nil {
			rt.log.Info("member left", "member", req.Member.Name, "drain", req.Member.Draining)
		}
		return &wire.Response{OK: true}, true
	case wire.OpEndpoints:
		return &wire.Response{OK: true, Members: rt.reg.Snapshot()}, true
	case wire.OpList:
		// Forward to the fleet: the router serves no functions itself,
		// but any member can answer what the federation serves.
		names, err := rt.rc.List()
		if err != nil {
			return &wire.Response{Error: err.Error(), Retryable: wire.IsRetryable(err)}, true
		}
		return &wire.Response{OK: true, Names: names}, true
	}
	return nil, false
}

// Invoke implements faas.Invoker.
func (rt *Router) Invoke(fn string, payload []byte) ([]byte, error) {
	return rt.InvokeContext(context.Background(), fn, payload)
}

// InvokeContext implements faas.ContextInvoker: it orders the routable
// members with the configured policy and rides the preference list
// through the reliable client — retry walks down the preferences, an
// exhausted list falls back to round-robin over every member, breakers
// rout around repeat offenders, and hedging (when configured) races a
// second member against a slow first choice.
func (rt *Router) InvokeContext(ctx context.Context, fn string, payload []byte) ([]byte, error) {
	prefer := rt.policy.Order(fn, payload, rt.reg.Routable())
	out, err := rt.rc.InvokeRouted(ctx, fn, payload, prefer)
	rt.routes.Add(1)
	if rt.routesC != nil {
		rt.routesC.Inc()
	}
	if err != nil && !errors.Is(err, context.Canceled) {
		rt.routeErrs.Add(1)
		if rt.routeErrsC != nil {
			rt.routeErrsC.Inc()
		}
	}
	return out, err
}

// RouteStats returns how many invocations the router has routed and how
// many ultimately failed after retries.
func (rt *Router) RouteStats() (routes, errs int64) {
	return rt.routes.Load(), rt.routeErrs.Load()
}
