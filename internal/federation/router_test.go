package federation

// Router integration tests over real wire servers: daemons join via
// Agent, the router routes invocations across them, and churn — drain
// racing an in-flight route, a member dying mid-fleet, agents
// re-registering after a router restart wiped membership — resolves
// without losing accepted requests.

import (
	"net"
	"testing"
	"time"

	"continuum/internal/faas"
	"continuum/internal/retry"
	"continuum/internal/wire"
)

// daemonT is one in-process continuumd for router tests.
type daemonT struct {
	name  string
	addr  string
	ep    *faas.Endpoint
	srv   *wire.Server
	agent *Agent
}

// startDaemon boots an in-process daemon serving "who" (returns its own
// name) and "slow" (sleeps, then echoes) and joins it to the router at
// routerAddr with a fast heartbeat.
func startDaemon(t *testing.T, name, routerAddr string, interval time.Duration) *daemonT {
	t.Helper()
	reg := faas.NewRegistry()
	reg.Register("who", func([]byte) ([]byte, error) { return []byte(name), nil })
	reg.Register("slow", func(p []byte) ([]byte, error) {
		time.Sleep(300 * time.Millisecond)
		return p, nil
	})
	ep := faas.NewEndpoint(faas.EndpointConfig{Name: name, Capacity: 8}, reg)
	srv := &wire.Server{Invoker: ep, Registry: reg, Endpoints: []*faas.Endpoint{ep}}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)
	t.Cleanup(srv.Close)
	d := &daemonT{name: name, addr: lis.Addr().String(), ep: ep, srv: srv}
	d.agent = NewAgent(AgentConfig{
		RouterAddr: routerAddr,
		Name:       name,
		Advertise:  d.addr,
		Endpoint:   ep,
		Interval:   interval,
	})
	d.agent.Start()
	t.Cleanup(func() { d.agent.Leave(false) })
	return d
}

// startRouter boots a router process: registry+policy behind a wire
// server listening on a real socket.
func startRouter(t *testing.T, policy Policy, interval time.Duration) (*Router, string) {
	t.Helper()
	rt, err := NewRouter(RouterConfig{
		Registry: Config{HeartbeatInterval: interval},
		Policy:   policy,
		Client: wire.ReliableConfig{
			Retry:       retry.Policy{MaxAttempts: 6, BaseDelay: 5 * time.Millisecond, MaxDelay: 50 * time.Millisecond},
			CallTimeout: 5 * time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rt.Close() })
	srv := &wire.Server{Invoker: rt, Ops: rt, Name: "router"}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)
	t.Cleanup(srv.Close)
	return rt, lis.Addr().String()
}

// waitMembers blocks until the router sees want members (any state) or
// the deadline passes.
func waitMembers(t *testing.T, rt *Router, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if rt.Registry().Len() == want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("router never saw %d members (have %d)", want, rt.Registry().Len())
}

// TestRouterRoutesAcrossFleet: daemons join through the wire protocol,
// and client invocations through the router reach them.
func TestRouterRoutesAcrossFleet(t *testing.T) {
	const interval = 50 * time.Millisecond
	rt, routerAddr := startRouter(t, LeastLoadedPolicy{}, interval)
	startDaemon(t, "d1", routerAddr, interval)
	startDaemon(t, "d2", routerAddr, interval)
	waitMembers(t, rt, 2)

	c, err := wire.Dial(routerAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Idle fleet: ties break deterministically, calls just work.
	for i := 0; i < 10; i++ {
		out, err := c.Invoke("who", nil)
		if err != nil {
			t.Fatalf("invoke %d through router: %v", i, err)
		}
		if string(out) != "d1" && string(out) != "d2" {
			t.Fatalf("invoke %d served by %q", i, out)
		}
	}
	// Load up d1 (the idle tie-break winner) with a slow call; once a
	// heartbeat advertises its in-flight work, least-loaded must steer
	// new calls to d2.
	slow := make(chan error, 1)
	go func() {
		_, err := c.Invoke("slow", nil)
		slow <- err
	}()
	time.Sleep(3 * interval) // slow call lands + at least one heartbeat reports it
	out, err := c.Invoke("who", nil)
	if err != nil || string(out) != "d2" {
		t.Fatalf("invoke under load = %q, %v; want diverted to d2", out, err)
	}
	if err := <-slow; err != nil {
		t.Fatalf("slow call: %v", err)
	}
	// The endpoints op reports both, alive.
	members, err := c.Endpoints()
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 2 || members[0].State != StateAlive || members[1].State != StateAlive {
		t.Fatalf("endpoints = %+v, want 2 alive members", members)
	}
	// And list forwards to the fleet.
	names, err := c.List()
	if err != nil || len(names) != 2 {
		t.Fatalf("list through router = %v, %v", names, err)
	}
}

// TestRouterHashAffinity: under the hash policy the same payload keeps
// landing on the same daemon.
func TestRouterHashAffinity(t *testing.T) {
	const interval = 50 * time.Millisecond
	rt, routerAddr := startRouter(t, HashPolicy{}, interval)
	startDaemon(t, "d1", routerAddr, interval)
	startDaemon(t, "d2", routerAddr, interval)
	startDaemon(t, "d3", routerAddr, interval)
	waitMembers(t, rt, 3)

	c, err := wire.Dial(routerAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	first, err := c.Invoke("who", []byte("sticky-key"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		out, err := c.Invoke("who", []byte("sticky-key"))
		if err != nil || string(out) != string(first) {
			t.Fatalf("invoke %d = %q, %v; want stable %q", i, out, err, first)
		}
	}
}

// TestDrainRacesInFlightRoute: a member drains while a routed
// invocation is executing on it. The in-flight call must complete (its
// connection survives the drain), new calls must route elsewhere, and
// nothing is lost.
func TestDrainRacesInFlightRoute(t *testing.T) {
	const interval = 50 * time.Millisecond
	rt, routerAddr := startRouter(t, LeastLoadedPolicy{}, interval)
	d1 := startDaemon(t, "d1", routerAddr, interval)
	startDaemon(t, "d2", routerAddr, interval)
	waitMembers(t, rt, 2)

	c, err := wire.Dial(routerAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Launch a slow call; least-loaded may pick either daemon, so race
	// the drain against whichever it is — the invariant under test is
	// "accepted work completes", not placement.
	done := make(chan error, 1)
	go func() {
		out, err := c.Invoke("slow", []byte("in-flight"))
		if err == nil && string(out) != "in-flight" {
			err = errInvokeCorrupt
		}
		done <- err
	}()
	time.Sleep(100 * time.Millisecond) // let the route land and start executing

	// Drain d1 the way continuumd's shutdown does: cordon, then announce.
	d1.ep.SetCordon(true)
	if err := d1.agent.Leave(true); err != nil {
		t.Fatalf("drain announce: %v", err)
	}

	if err := <-done; err != nil {
		t.Fatalf("in-flight call racing the drain: %v", err)
	}
	// Every new call lands on d2 now.
	for i := 0; i < 10; i++ {
		out, err := c.Invoke("who", nil)
		if err != nil || string(out) != "d2" {
			t.Fatalf("post-drain invoke %d = %q, %v; want d2", i, out, err)
		}
	}
}

var errInvokeCorrupt = &wire.RemoteError{Msg: "corrupt echo"}

// TestAgentReregistersAfterExpiry: the router expires a silenced member;
// when its heartbeats resume they are rejected as unknown, and the
// agent must re-register — rejoining with a fresh generation, no
// operator involved.
func TestAgentReregistersAfterExpiry(t *testing.T) {
	const interval = 30 * time.Millisecond
	rt, routerAddr := startRouter(t, LeastLoadedPolicy{}, interval)
	startDaemon(t, "d1", routerAddr, interval)
	waitMembers(t, rt, 1)
	gen1 := rt.Registry().Snapshot()[0].Generation

	// Silence the member from the router's point of view by wiping
	// membership out from under it (a router restart looks exactly like
	// this): the next heartbeat is rejected, the agent re-registers.
	rt.Registry().mu.Lock()
	rt.Registry().members = map[string]*member{}
	rt.Registry().mu.Unlock()
	rt.sync()

	waitMembers(t, rt, 1)
	gen2 := rt.Registry().Snapshot()[0].Generation
	if gen2 <= gen1 {
		t.Fatalf("agent rejoined with generation %d, want newer than %d", gen2, gen1)
	}
	// And traffic flows again.
	c, err := wire.Dial(routerAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if out, err := c.Invoke("who", nil); err != nil || string(out) != "d1" {
		t.Fatalf("invoke after re-registration = %q, %v", out, err)
	}
}
