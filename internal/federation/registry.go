// Package federation is the funcX-style control plane that stitches
// many continuumd daemons into one serving fabric. Daemons register
// with a continuum-router over the ordinary wire protocol and keep
// their registration alive with periodic heartbeats carrying a load
// snapshot (queue depth, in-flight, slot limit, cordon state); the
// router routes client invocations across the live membership with a
// pluggable policy — consistent hashing on function+payload affinity,
// or least-loaded — on top of wire.ReliableClient's existing
// retry/breaker/hedge machinery, so endpoint churn (join, leave, drain,
// crash) degrades to ordinary failover instead of lost requests.
//
// The package has three working parts: Registry (the membership state
// machine: generation-checked registration, heartbeat freshness,
// suspect/expiry sweeping), Router (the data path: a wire.OpsHandler
// serving the control ops plus a faas.ContextInvoker routing invoke),
// and Agent (the daemon side: register, heartbeat, re-register when
// superseded, drain on shutdown).
package federation

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"continuum/internal/wire"
)

// Membership defaults.
const (
	// DefaultHeartbeatInterval is the heartbeat cadence the router asks
	// of its members when Config.HeartbeatInterval is zero.
	DefaultHeartbeatInterval = 2 * time.Second
	// DefaultSuspectAfter is how many missed heartbeat intervals turn a
	// member suspect (routed around, still listed).
	DefaultSuspectAfter = 2
	// DefaultExpireAfter is how many missed heartbeat intervals expire a
	// member entirely (removed from membership; it must re-register).
	DefaultExpireAfter = 4
)

// Member liveness states as reported by the endpoints op.
const (
	// StateAlive marks a member with a fresh heartbeat.
	StateAlive = "alive"
	// StateSuspect marks a member that has missed heartbeats but not yet
	// expired: no new work is routed to it, in-flight work may finish.
	StateSuspect = "suspect"
	// StateDraining marks a member that asked to leave gracefully: no
	// new work, stays listed until it deregisters for good or expires.
	StateDraining = "draining"
)

// ErrUnknownMember rejects a heartbeat or deregister from a member the
// registry does not know — never registered, expired, or superseded by
// a newer registration of the same name. The sender's cure is to
// register again; Agent does so automatically.
var ErrUnknownMember = errors.New("federation: unknown member (re-register)")

// Config parameterizes a Registry.
type Config struct {
	// HeartbeatInterval is the cadence members must heartbeat at
	// (0 = DefaultHeartbeatInterval). The router returns it from the
	// register op, so members need no out-of-band configuration.
	HeartbeatInterval time.Duration
	// SuspectAfter is how many missed intervals turn a member suspect
	// (0 = DefaultSuspectAfter).
	SuspectAfter int
	// ExpireAfter is how many missed intervals expire a member
	// (0 = DefaultExpireAfter). Must be >= SuspectAfter to be useful.
	ExpireAfter int
	// Now supplies the clock (nil = time.Now). Tests inject a fake to
	// drive the expiry state machine deterministically.
	Now func() time.Time
	// OnChange, when set, is called — outside the registry lock — after
	// any membership mutation: register, deregister, drain, expiry, or a
	// heartbeat that flipped a member's routability (cordon change,
	// suspect recovery). The router uses it to resync its client's
	// endpoint set.
	OnChange func()
}

// member is one registration's server-side state.
type member struct {
	info wire.MemberInfo // last advertised body, Generation = assigned
	last time.Time       // last heartbeat (or registration) arrival
}

// Registry is the membership half of a continuum-router: the
// generation-checked register/heartbeat/deregister state machine and
// the suspect/expiry sweep. Safe for concurrent use. Expiry is lazy —
// every read or write sweeps first — plus the router runs a periodic
// Sweep so an idle federation still notices silent deaths.
type Registry struct {
	cfg Config

	mu      sync.Mutex
	members map[string]*member
	nextGen int64
}

// NewRegistry builds an empty registry.
func NewRegistry(cfg Config) *Registry {
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = DefaultHeartbeatInterval
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = DefaultSuspectAfter
	}
	if cfg.ExpireAfter <= 0 {
		cfg.ExpireAfter = DefaultExpireAfter
	}
	return &Registry{cfg: cfg, members: make(map[string]*member)}
}

// HeartbeatInterval returns the cadence members must heartbeat at.
func (r *Registry) HeartbeatInterval() time.Duration { return r.cfg.HeartbeatInterval }

func (r *Registry) now() time.Time {
	if r.cfg.Now != nil {
		return r.cfg.Now()
	}
	return time.Now()
}

// expireLocked removes members whose last heartbeat is older than the
// expiry horizon. Returns whether membership changed.
func (r *Registry) expireLocked(now time.Time) bool {
	horizon := time.Duration(r.cfg.ExpireAfter) * r.cfg.HeartbeatInterval
	changed := false
	for name, m := range r.members {
		if now.Sub(m.last) > horizon {
			delete(r.members, name)
			changed = true
		}
	}
	return changed
}

// notify runs the change hook, if any. Callers must NOT hold r.mu.
func (r *Registry) notify(changed bool) {
	if changed && r.cfg.OnChange != nil {
		r.cfg.OnChange()
	}
}

// Register admits (or re-admits) a member and returns the generation
// assigned to this incarnation. Registering a name that is already
// present supersedes the previous incarnation: its generation is
// retired, so a lingering heartbeat from a restarted daemon's earlier
// life is rejected with ErrUnknownMember instead of corrupting the new
// state. Register never fails on a duplicate — the newest registration
// always wins, which is what a crashed-and-restarted daemon needs.
func (r *Registry) Register(info wire.MemberInfo) (int64, error) {
	if info.Name == "" {
		return 0, errors.New("federation: register: empty member name")
	}
	if info.Addr == "" {
		return 0, fmt.Errorf("federation: register %q: empty advertised address", info.Name)
	}
	now := r.now()
	r.mu.Lock()
	r.expireLocked(now)
	r.nextGen++
	info.Generation = r.nextGen
	info.Draining = false
	r.members[info.Name] = &member{info: info, last: now}
	r.mu.Unlock()
	r.notify(true)
	return info.Generation, nil
}

// Heartbeat refreshes a member's liveness and load snapshot. The
// heartbeat must carry the generation Register assigned; a heartbeat
// for an unknown name, an expired member, or a superseded generation
// fails with ErrUnknownMember, telling the sender to re-register.
func (r *Registry) Heartbeat(info wire.MemberInfo) error {
	now := r.now()
	r.mu.Lock()
	expired := r.expireLocked(now)
	m, ok := r.members[info.Name]
	if !ok || m.info.Generation != info.Generation {
		r.mu.Unlock()
		r.notify(expired)
		return ErrUnknownMember
	}
	// Whether the member can take new work may flip on any heartbeat:
	// cordon toggled, or a suspect member coming back fresh. Evaluate
	// before the refresh so the transition is visible.
	wasRoutable := r.routableLocked(m, now)
	m.info.QueueDepth = info.QueueDepth
	m.info.InFlight = info.InFlight
	m.info.SlotLimit = info.SlotLimit
	m.info.Cordoned = info.Cordoned
	if info.Capacity != 0 {
		m.info.Capacity = info.Capacity
	}
	if info.Functions != nil {
		m.info.Functions = info.Functions
	}
	m.last = now
	isRoutable := r.routableLocked(m, now)
	r.mu.Unlock()
	r.notify(expired || wasRoutable != isRoutable)
	return nil
}

// Deregister removes a member. drain true marks it draining instead —
// it stops receiving new routes but stays listed (and its in-flight
// work undisturbed) until it deregisters for good or expires. The
// generation must match; a stale incarnation's deregister is ignored
// with ErrUnknownMember so a restarted daemon's shutdown path cannot
// evict its successor.
func (r *Registry) Deregister(name string, generation int64, drain bool) error {
	now := r.now()
	r.mu.Lock()
	expired := r.expireLocked(now)
	m, ok := r.members[name]
	if !ok || m.info.Generation != generation {
		r.mu.Unlock()
		r.notify(expired)
		return ErrUnknownMember
	}
	if drain {
		m.info.Draining = true
		m.last = now // a drain announcement proves liveness
	} else {
		delete(r.members, name)
	}
	r.mu.Unlock()
	r.notify(true)
	return nil
}

// Sweep expires silent members now. The router calls it on a timer so
// an idle federation (no heartbeats arriving to trigger the lazy sweep)
// still notices deaths within the expiry horizon.
func (r *Registry) Sweep() {
	now := r.now()
	r.mu.Lock()
	changed := r.expireLocked(now)
	r.mu.Unlock()
	r.notify(changed)
}

// routableLocked reports whether m should receive new work as of now:
// heartbeat fresh (not suspect), not cordoned, not draining.
func (r *Registry) routableLocked(m *member, now time.Time) bool {
	suspectAt := time.Duration(r.cfg.SuspectAfter) * r.cfg.HeartbeatInterval
	return now.Sub(m.last) <= suspectAt && !m.info.Cordoned && !m.info.Draining
}

// stateLocked names m's liveness for the endpoints op.
func (r *Registry) stateLocked(m *member, now time.Time) string {
	if m.info.Draining {
		return StateDraining
	}
	if now.Sub(m.last) > time.Duration(r.cfg.SuspectAfter)*r.cfg.HeartbeatInterval {
		return StateSuspect
	}
	return StateAlive
}

// Snapshot returns the membership view, sorted by name — the endpoints
// op's answer and `continuumctl endpoints`' table.
func (r *Registry) Snapshot() []wire.MemberStatus {
	now := r.now()
	r.mu.Lock()
	changed := r.expireLocked(now)
	out := make([]wire.MemberStatus, 0, len(r.members))
	for _, m := range r.members {
		out = append(out, wire.MemberStatus{
			MemberInfo: m.info,
			State:      r.stateLocked(m, now),
			AgeMS:      now.Sub(m.last).Milliseconds(),
		})
	}
	r.mu.Unlock()
	r.notify(changed)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// MemberAddrs returns the dial addresses of every non-expired member —
// including suspect, cordoned, and draining ones. This is the set the
// router's ReliableClient holds connections to: a draining member must
// keep its connections (its in-flight work finishes on them), it just
// stops appearing in Routable.
func (r *Registry) MemberAddrs() []string {
	now := r.now()
	r.mu.Lock()
	changed := r.expireLocked(now)
	out := make([]string, 0, len(r.members))
	for _, m := range r.members {
		out = append(out, m.info.Addr)
	}
	r.mu.Unlock()
	r.notify(changed)
	sort.Strings(out)
	return out
}

// Routable returns the members that should receive new work — fresh
// heartbeat, not cordoned, not draining — sorted by name. Routing
// policies order their preferences over this set.
func (r *Registry) Routable() []wire.MemberStatus {
	now := r.now()
	r.mu.Lock()
	changed := r.expireLocked(now)
	out := make([]wire.MemberStatus, 0, len(r.members))
	for _, m := range r.members {
		if !r.routableLocked(m, now) {
			continue
		}
		out = append(out, wire.MemberStatus{
			MemberInfo: m.info,
			State:      StateAlive,
			AgeMS:      now.Sub(m.last).Milliseconds(),
		})
	}
	r.mu.Unlock()
	r.notify(changed)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the current (non-expired) member count.
func (r *Registry) Len() int {
	now := r.now()
	r.mu.Lock()
	changed := r.expireLocked(now)
	n := len(r.members)
	r.mu.Unlock()
	r.notify(changed)
	return n
}
