package federation

import (
	"fmt"
	"testing"

	"continuum/internal/wire"
)

func routableSet(names ...string) []wire.MemberStatus {
	out := make([]wire.MemberStatus, len(names))
	for i, n := range names {
		out[i] = wire.MemberStatus{
			MemberInfo: wire.MemberInfo{Name: n, Addr: "addr-" + n, SlotLimit: 4},
			State:      StateAlive,
		}
	}
	return out
}

// TestHashPolicyAffinity: the same function+payload always lands on the
// same member, and distinct keys spread across the fleet.
func TestHashPolicyAffinity(t *testing.T) {
	members := routableSet("a", "b", "c")
	var p HashPolicy
	hits := map[string]int{}
	for i := 0; i < 200; i++ {
		key := []byte(fmt.Sprintf("payload-%d", i))
		first := p.Order("fn", key, members)[0]
		again := p.Order("fn", key, members)[0]
		if first != again {
			t.Fatalf("key %d not stable: %s then %s", i, first, again)
		}
		hits[first]++
	}
	if len(hits) != 3 {
		t.Fatalf("200 keys landed on %d of 3 members: %v", len(hits), hits)
	}
	for addr, n := range hits {
		if n < 20 {
			t.Fatalf("distribution badly skewed: %s got %d of 200 (%v)", addr, n, hits)
		}
	}
}

// TestHashPolicyMinimalRemap is the point of CONSISTENT hashing: losing
// one member remaps only the keys it owned — everything else keeps its
// assignment, so the fleet's warm containers stay warm through churn.
func TestHashPolicyMinimalRemap(t *testing.T) {
	full := routableSet("a", "b", "c", "d")
	without := routableSet("a", "b", "c") // d left
	var p HashPolicy
	moved := 0
	const keys = 400
	for i := 0; i < keys; i++ {
		key := []byte(fmt.Sprintf("payload-%d", i))
		before := p.Order("fn", key, full)[0]
		after := p.Order("fn", key, without)[0]
		if before == "addr-d" {
			continue // d's keys must move; that's the remap we accept
		}
		if before != after {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d/%d keys not owned by the departed member were remapped; consistent hashing must move only the departed member's keys", moved, keys)
	}
}

// TestHashPolicyCapabilityFilter: members that do not advertise the
// function are excluded; an empty Functions list serves everything.
func TestHashPolicyCapabilityFilter(t *testing.T) {
	members := routableSet("a", "b")
	members[0].Functions = []string{"other"}
	var p HashPolicy
	order := p.Order("fn", []byte("x"), members)
	if len(order) != 1 || order[0] != "addr-b" {
		t.Fatalf("capability filter order = %v, want [addr-b]", order)
	}
}

// TestLeastLoadedOrder: members sort by (queue+inflight)/slots, ties by
// name.
func TestLeastLoadedOrder(t *testing.T) {
	members := routableSet("a", "b", "c")
	members[0].QueueDepth, members[0].InFlight = 4, 4 // 2.0
	members[1].QueueDepth, members[1].InFlight = 0, 2 // 0.5
	members[2].QueueDepth, members[2].InFlight = 0, 0 // 0.0
	var p LeastLoadedPolicy
	order := p.Order("fn", nil, members)
	want := []string{"addr-c", "addr-b", "addr-a"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("least-loaded order = %v, want %v", order, want)
		}
	}
}

// TestPolicyByName covers the flag-value mapping.
func TestPolicyByName(t *testing.T) {
	if p, ok := PolicyByName(""); !ok {
		t.Fatal("default policy missing")
	} else if _, isHash := p.(HashPolicy); !isHash {
		t.Fatalf("default policy = %T, want HashPolicy", p)
	}
	if _, ok := PolicyByName("least-loaded"); !ok {
		t.Fatal("least-loaded policy missing")
	}
	if _, ok := PolicyByName("bogus"); ok {
		t.Fatal("bogus policy accepted")
	}
}
