package federation

// Membership state-machine tests under an injected clock: the
// suspect/expiry ladder, the late heartbeat after expiry, duplicate
// registration superseding the old incarnation, and drain semantics —
// the churn edges the live federation must survive.

import (
	"errors"
	"sync"
	"testing"
	"time"

	"continuum/internal/wire"
)

// fakeClock is an injectable, manually-advanced clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func testRegistry(clk *fakeClock) *Registry {
	return NewRegistry(Config{
		HeartbeatInterval: time.Second,
		SuspectAfter:      2,
		ExpireAfter:       4,
		Now:               clk.now,
	})
}

func memberInfo(name, addr string) wire.MemberInfo {
	return wire.MemberInfo{Name: name, Addr: addr, Capacity: 4}
}

func stateOf(t *testing.T, r *Registry, name string) string {
	t.Helper()
	for _, m := range r.Snapshot() {
		if m.Name == name {
			return m.State
		}
	}
	return "(gone)"
}

// TestSuspectExpiryLadder: fresh → suspect after SuspectAfter missed
// intervals → expired (removed) after ExpireAfter, with a heartbeat
// resetting the ladder at any pre-expiry rung.
func TestSuspectExpiryLadder(t *testing.T) {
	clk := newFakeClock()
	r := testRegistry(clk)
	gen, err := r.Register(memberInfo("a", "addr-a"))
	if err != nil {
		t.Fatal(err)
	}
	if got := stateOf(t, r, "a"); got != StateAlive {
		t.Fatalf("state after register = %s, want alive", got)
	}
	if len(r.Routable()) != 1 {
		t.Fatal("fresh member not routable")
	}

	// 2 intervals silent: suspect — listed, but no new work.
	clk.advance(2*time.Second + time.Millisecond)
	if got := stateOf(t, r, "a"); got != StateSuspect {
		t.Fatalf("state after 2 silent intervals = %s, want suspect", got)
	}
	if len(r.Routable()) != 0 {
		t.Fatal("suspect member still routable")
	}
	if len(r.MemberAddrs()) != 1 {
		t.Fatal("suspect member dropped from the connection set; in-flight work would be severed early")
	}

	// A heartbeat brings it back.
	if err := r.Heartbeat(wire.MemberInfo{Name: "a", Generation: gen}); err != nil {
		t.Fatalf("heartbeat from suspect member: %v", err)
	}
	if got := stateOf(t, r, "a"); got != StateAlive {
		t.Fatalf("state after recovery heartbeat = %s, want alive", got)
	}

	// 4+ intervals silent: expired, fully gone.
	clk.advance(4*time.Second + time.Millisecond)
	if got := stateOf(t, r, "a"); got != "(gone)" {
		t.Fatalf("state after expiry horizon = %s, want removed", got)
	}
	if len(r.MemberAddrs()) != 0 {
		t.Fatal("expired member still in the connection set")
	}
}

// TestLateHeartbeatAfterExpiry: a heartbeat arriving after the member
// expired must be rejected with ErrUnknownMember — the cure is
// re-registration, which hands out a fresh generation.
func TestLateHeartbeatAfterExpiry(t *testing.T) {
	clk := newFakeClock()
	r := testRegistry(clk)
	gen, err := r.Register(memberInfo("a", "addr-a"))
	if err != nil {
		t.Fatal(err)
	}
	clk.advance(5 * time.Second)
	if err := r.Heartbeat(wire.MemberInfo{Name: "a", Generation: gen}); !errors.Is(err, ErrUnknownMember) {
		t.Fatalf("late heartbeat after expiry = %v, want ErrUnknownMember", err)
	}
	// Re-registration rejoins with a NEW generation; the old one stays dead.
	gen2, err := r.Register(memberInfo("a", "addr-a"))
	if err != nil {
		t.Fatal(err)
	}
	if gen2 == gen {
		t.Fatalf("re-registration reused generation %d", gen)
	}
	if err := r.Heartbeat(wire.MemberInfo{Name: "a", Generation: gen}); !errors.Is(err, ErrUnknownMember) {
		t.Fatal("heartbeat with the expired generation accepted after re-registration")
	}
	if err := r.Heartbeat(wire.MemberInfo{Name: "a", Generation: gen2}); err != nil {
		t.Fatalf("heartbeat with the fresh generation: %v", err)
	}
}

// TestDuplicateRegistrationSupersedes: registering an already-present
// name wins — the previous incarnation's generation is retired, so its
// lingering heartbeats (a restarted daemon's earlier life, a
// misconfigured clone) cannot corrupt the new registration's state.
func TestDuplicateRegistrationSupersedes(t *testing.T) {
	clk := newFakeClock()
	r := testRegistry(clk)
	gen1, err := r.Register(memberInfo("a", "addr-old"))
	if err != nil {
		t.Fatal(err)
	}
	gen2, err := r.Register(memberInfo("a", "addr-new"))
	if err != nil {
		t.Fatalf("duplicate registration must supersede, not fail: %v", err)
	}
	if gen2 <= gen1 {
		t.Fatalf("superseding generation %d not newer than %d", gen2, gen1)
	}
	if n := r.Len(); n != 1 {
		t.Fatalf("members after duplicate registration = %d, want 1", n)
	}
	if addrs := r.MemberAddrs(); len(addrs) != 1 || addrs[0] != "addr-new" {
		t.Fatalf("addresses after supersede = %v, want [addr-new]", addrs)
	}
	if err := r.Heartbeat(wire.MemberInfo{Name: "a", Generation: gen1}); !errors.Is(err, ErrUnknownMember) {
		t.Fatalf("old incarnation's heartbeat = %v, want ErrUnknownMember", err)
	}
	// And the old incarnation cannot evict its successor on shutdown.
	if err := r.Deregister("a", gen1, false); !errors.Is(err, ErrUnknownMember) {
		t.Fatalf("old incarnation's deregister = %v, want ErrUnknownMember", err)
	}
	if n := r.Len(); n != 1 {
		t.Fatal("stale deregister evicted the superseding registration")
	}
}

// TestDrainSemantics: a draining member leaves the routable set
// immediately, stays listed (state "draining") and connected, keeps its
// liveness refreshed by the drain itself, and disappears on the final
// deregister.
func TestDrainSemantics(t *testing.T) {
	clk := newFakeClock()
	r := testRegistry(clk)
	gen, err := r.Register(memberInfo("a", "addr-a"))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Deregister("a", gen, true); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if got := stateOf(t, r, "a"); got != StateDraining {
		t.Fatalf("state after drain = %s, want draining", got)
	}
	if len(r.Routable()) != 0 {
		t.Fatal("draining member still routable")
	}
	if len(r.MemberAddrs()) != 1 {
		t.Fatal("draining member dropped from the connection set; its in-flight work would be severed")
	}
	// Final leave removes it.
	if err := r.Deregister("a", gen, false); err != nil {
		t.Fatalf("final deregister: %v", err)
	}
	if n := r.Len(); n != 0 {
		t.Fatalf("members after final deregister = %d, want 0", n)
	}
}

// TestOnChangeFires: every membership mutation must fire the hook —
// it is how the router keeps its routing set in sync.
func TestOnChangeFires(t *testing.T) {
	clk := newFakeClock()
	var calls int
	r := NewRegistry(Config{
		HeartbeatInterval: time.Second,
		Now:               clk.now,
		OnChange:          func() { calls++ },
	})
	gen, _ := r.Register(memberInfo("a", "addr-a"))
	if calls == 0 {
		t.Fatal("register did not fire OnChange")
	}
	before := calls
	// A plain load-refresh heartbeat is NOT a membership change.
	if err := r.Heartbeat(wire.MemberInfo{Name: "a", Generation: gen, InFlight: 3}); err != nil {
		t.Fatal(err)
	}
	if calls != before {
		t.Fatal("load-only heartbeat fired OnChange")
	}
	// A cordon flip is: the member left the routable set.
	if err := r.Heartbeat(wire.MemberInfo{Name: "a", Generation: gen, Cordoned: true}); err != nil {
		t.Fatal(err)
	}
	if calls == before {
		t.Fatal("cordon flip did not fire OnChange")
	}
	before = calls
	// Expiry via Sweep fires too.
	clk.advance(time.Hour)
	r.Sweep()
	if calls == before {
		t.Fatal("expiry sweep did not fire OnChange")
	}
}
