// Prometheus text-format exposition for Registry. Metric names in the
// registry follow the convention produced by Label: a base name optionally
// followed by {k="v",...}. WritePrometheus renders each family with a
// # TYPE header, sanitizing names and escaping label values so arbitrary
// registry keys (function names, endpoint addresses) cannot corrupt the
// output stream.
package metrics

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Label builds a registry metric name "base{k1=\"v1\",k2=\"v2\"}" from
// alternating key/value pairs. Keys and values are recorded verbatim;
// sanitization happens at exposition time. Odd trailing arguments panic.
func Label(base string, kv ...string) string {
	if len(kv) == 0 {
		return base
	}
	if len(kv)%2 != 0 {
		panic("metrics: Label requires alternating key/value pairs")
	}
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(kv[i+1])
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// SplitLabels parses a Label-built name back into its base and label map.
// Names without labels return a nil map. Malformed label blocks are
// returned as part of the base (never dropped silently).
func SplitLabels(name string) (base string, labels map[string]string) {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return name, nil
	}
	base = name[:i]
	body := name[i+1 : len(name)-1]
	labels = make(map[string]string)
	for _, part := range splitLabelPairs(body) {
		eq := strings.Index(part, `="`)
		if eq < 0 || !strings.HasSuffix(part, `"`) {
			return name, nil // malformed: treat the whole thing as a base name
		}
		labels[part[:eq]] = part[eq+2 : len(part)-1]
	}
	return base, labels
}

// splitLabelPairs splits `a="x",b="y"` on commas outside quotes.
func splitLabelPairs(s string) []string {
	var out []string
	inQuote := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			inQuote = !inQuote
		case ',':
			if !inQuote {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) || len(s) > 0 {
		out = append(out, s[start:])
	}
	return out
}

// sanitizeName rewrites s into a valid Prometheus metric/label name:
// [a-zA-Z_:][a-zA-Z0-9_:]*. Invalid runes become '_'; a leading digit is
// prefixed with '_'. Empty names become "_".
func sanitizeName(s string) string {
	if s == "" {
		return "_"
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if c >= '0' && c <= '9' && i == 0 {
			b.WriteByte('_')
			b.WriteByte(c)
			continue
		}
		if ok {
			b.WriteByte(c)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeLabelValue escapes a label value per the exposition format.
func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return s
}

// renderLabels renders a sanitized {k="v",...} block, merging extra pairs
// (e.g. le for histogram buckets) after the metric's own labels. Returns
// "" when there are no labels at all.
func renderLabels(labels map[string]string, extraK, extraV string) string {
	if len(labels) == 0 && extraK == "" {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, sanitizeName(k), escapeLabelValue(labels[k]))
	}
	if extraK != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, extraK, escapeLabelValue(extraV))
	}
	b.WriteByte('}')
	return b.String()
}

// promMetric is one registry entry resolved to its sanitized family name.
type promMetric struct {
	family string // sanitized base name
	labels map[string]string
	write  func(w io.Writer, family, labelBlock string, labels map[string]string)
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4): counters and gauges as single
// samples, histograms with cumulative le buckets plus _sum/_count, and
// summaries as _sum/_count pairs. Families are grouped under one # TYPE
// line and emitted in sorted order for stable scrapes.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)

	emit := func(typ string, metrics []promMetric) {
		sort.Slice(metrics, func(i, j int) bool { return metrics[i].family < metrics[j].family })
		lastFamily := ""
		for _, m := range metrics {
			if m.family != lastFamily {
				fmt.Fprintf(bw, "# TYPE %s %s\n", m.family, typ)
				lastFamily = m.family
			}
			m.write(bw, m.family, renderLabels(m.labels, "", ""), m.labels)
		}
	}

	var counters []promMetric
	r.EachCounter(func(name string, c *Counter) {
		base, labels := SplitLabels(name)
		counters = append(counters, promMetric{
			family: sanitizeName(base), labels: labels,
			write: func(w io.Writer, family, lb string, _ map[string]string) {
				fmt.Fprintf(w, "%s%s %d\n", family, lb, c.Value())
			},
		})
	})
	emit("counter", counters)

	var gauges []promMetric
	r.EachGauge(func(name string, g *Gauge) {
		base, labels := SplitLabels(name)
		gauges = append(gauges, promMetric{
			family: sanitizeName(base), labels: labels,
			write: func(w io.Writer, family, lb string, _ map[string]string) {
				fmt.Fprintf(w, "%s%s %v\n", family, lb, g.Value())
			},
		})
	})
	emit("gauge", gauges)

	var hists []promMetric
	r.EachHistogram(func(name string, h *Histogram) {
		base, labels := SplitLabels(name)
		hists = append(hists, promMetric{
			family: sanitizeName(base), labels: labels,
			write: func(w io.Writer, family, _ string, labels map[string]string) {
				writeHistogram(w, family, labels, h)
			},
		})
	})
	emit("histogram", hists)

	var sums []promMetric
	r.EachSummary(func(name string, s *Summary) {
		base, labels := SplitLabels(name)
		sums = append(sums, promMetric{
			family: sanitizeName(base), labels: labels,
			write: func(w io.Writer, family, lb string, _ map[string]string) {
				fmt.Fprintf(w, "%s_sum%s %v\n", family, lb, s.Sum())
				fmt.Fprintf(w, "%s_count%s %d\n", family, lb, s.Count())
			},
		})
	})
	emit("summary", sums)

	return bw.Flush()
}

// writeHistogram renders one histogram as cumulative le buckets. Only
// boundaries that close a non-empty bucket are emitted (512 log buckets
// would bloat every scrape); cumulative counts stay exact because each
// emitted bound carries everything below it. Buckets with a recorded
// exemplar carry an OpenMetrics-style ` # {trace_id="..."} <value>`
// suffix linking the bucket to the latest trace that landed in it;
// histograms never fed through AddExemplar expose byte-identical output
// to before exemplars existed.
func writeHistogram(w io.Writer, family string, labels map[string]string, h *Histogram) {
	snap := h.snapshot()
	exemplar := func(b int) string {
		e, ok := snap.exemplars[b]
		if !ok {
			return ""
		}
		return fmt.Sprintf(` # {trace_id="%s"} %v`, escapeLabelValue(e.TraceID), e.Value)
	}
	cum := int64(0)
	if snap.underflow > 0 {
		cum += snap.underflow
		fmt.Fprintf(w, "%s_bucket%s %d%s\n",
			family, renderLabels(labels, "le", fmt.Sprintf("%.3g", histMinVal)), cum, exemplar(-1))
	}
	for b, c := range snap.counts {
		if c == 0 {
			continue
		}
		cum += c
		fmt.Fprintf(w, "%s_bucket%s %d%s\n",
			family, renderLabels(labels, "le", fmt.Sprintf("%.6g", bucketUpper(b))), cum, exemplar(b))
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", family, renderLabels(labels, "le", "+Inf"), snap.n)
	lb := renderLabels(labels, "", "")
	fmt.Fprintf(w, "%s_sum%s %v\n", family, lb, snap.sum)
	fmt.Fprintf(w, "%s_count%s %d\n", family, lb, snap.n)
}
