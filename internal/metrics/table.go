package metrics

import (
	"fmt"
	"strings"
)

// Table renders aligned plain-text tables, the output format for every
// reconstructed table/figure in the benchmark harness.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped, missing
// cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row built from values formatted with %v (floats get
// %.4g).
func (t *Table) AddRowf(values ...any) {
	cells := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			cells[i] = fmt.Sprintf("%.4g", x)
		case float32:
			cells[i] = fmt.Sprintf("%.4g", x)
		default:
			cells[i] = fmt.Sprintf("%v", v)
		}
	}
	t.AddRow(cells...)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	if total >= 2 {
		total -= 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (headers first). Cells
// containing commas or quotes are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	writeCSVRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, "\"", "\"\""))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeCSVRow(t.headers)
	for _, row := range t.rows {
		writeCSVRow(row)
	}
	return b.String()
}
