package metrics

import (
	"bytes"
	"strings"
	"testing"
)

// TestHistogramExemplarsInExposition: a traced observation must surface
// as an OpenMetrics-style exemplar suffix on its bucket line, linking
// the Prometheus view straight to a trace ID.
func TestHistogramExemplarsInExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("faas_invoke_duration_seconds")
	h.Add(0.010)
	h.AddExemplar(0.013, "0123456789abcdef")

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `# {trace_id="0123456789abcdef"} 0.013`) {
		t.Fatalf("exposition missing the exemplar suffix:\n%s", out)
	}
	// The suffix rides bucket lines only — never _sum/_count/+Inf.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "trace_id") &&
			(strings.Contains(line, "_sum") || strings.Contains(line, "_count") || strings.Contains(line, "+Inf")) {
			t.Fatalf("exemplar leaked onto a non-bucket line: %s", line)
		}
	}
}

// TestHistogramWithoutExemplarsUnchanged: plain Add must produce
// exposition with no exemplar syntax at all — histograms that never see
// AddExemplar keep their pre-exemplar output byte for byte.
func TestHistogramWithoutExemplarsUnchanged(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency")
	h.Add(0.5)
	h.Add(1.5)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "#  {") || strings.Contains(buf.String(), "trace_id") {
		t.Fatalf("untraced histogram grew exemplar syntax:\n%s", buf.String())
	}
}

// TestAddExemplarEmptyTraceDegradesToAdd: recording with no trace ID
// counts the observation but stores no exemplar.
func TestAddExemplarEmptyTraceDegradesToAdd(t *testing.T) {
	h := NewHistogram()
	h.AddExemplar(0.25, "")
	if h.Count() != 1 {
		t.Fatalf("Count = %d, want 1", h.Count())
	}
	if ex := h.Exemplars(); len(ex) != 0 {
		t.Fatalf("empty trace ID stored an exemplar: %v", ex)
	}
}

// TestExemplarLatestWinsAndMerge: the newest trace per bucket wins, and
// Merge folds the other histogram's exemplars in without disturbing
// value equality.
func TestExemplarLatestWinsAndMerge(t *testing.T) {
	a := NewHistogram()
	a.AddExemplar(0.100, "old")
	a.AddExemplar(0.101, "new") // same bucket: must replace
	ex := a.Exemplars()
	if len(ex) != 1 {
		t.Fatalf("exemplars = %v, want one bucket", ex)
	}
	for _, e := range ex {
		if e.TraceID != "new" {
			t.Fatalf("bucket kept %q, want the latest trace", e.TraceID)
		}
	}

	b := NewHistogram()
	b.AddExemplar(100, "elsewhere")
	a.Merge(b)
	merged := a.Exemplars()
	if len(merged) != 2 {
		t.Fatalf("merge kept %d exemplar buckets, want 2: %v", len(merged), merged)
	}

	// Equal compares distributions, not exemplars.
	x, y := NewHistogram(), NewHistogram()
	x.AddExemplar(1, "tx")
	y.Add(1)
	if !x.Equal(y) {
		t.Fatal("Equal must ignore exemplars")
	}
}
