package metrics

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"testing"
)

func TestLabelAndSplit(t *testing.T) {
	name := Label("faas_invoke_duration_seconds", "ep", "edge-1", "fn", "echo")
	want := `faas_invoke_duration_seconds{ep="edge-1",fn="echo"}`
	if name != want {
		t.Fatalf("Label = %q, want %q", name, want)
	}
	base, labels := SplitLabels(name)
	if base != "faas_invoke_duration_seconds" {
		t.Fatalf("base = %q", base)
	}
	if labels["ep"] != "edge-1" || labels["fn"] != "echo" {
		t.Fatalf("labels = %v", labels)
	}

	base, labels = SplitLabels("plain_name")
	if base != "plain_name" || labels != nil {
		t.Fatalf("plain split = %q, %v", base, labels)
	}

	if Label("x") != "x" {
		t.Fatal("no-label Label should be identity")
	}

	defer func() {
		if recover() == nil {
			t.Error("odd kv count did not panic")
		}
	}()
	Label("x", "dangling")
}

func TestSanitizeName(t *testing.T) {
	cases := map[string]string{
		"ok_name":    "ok_name",
		"with-dash":  "with_dash",
		"9starts":    "_9starts",
		"dots.in.it": "dots_in_it",
		"":           "_",
		"a:b":        "a:b",
	}
	for in, want := range cases {
		if got := sanitizeName(in); got != want {
			t.Errorf("sanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWritePrometheusBasics(t *testing.T) {
	r := NewRegistry()
	r.Counter(Label("requests_total", "op", "invoke")).Add(7)
	r.Gauge("inflight").Set(3)
	r.Summary("bytes").Add(10)
	r.Summary("bytes").Add(20)
	h := r.Histogram(Label("lat_seconds", "fn", "echo"))
	h.Add(0.010)
	h.Add(0.010)
	h.Add(0.500)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	for _, want := range []string{
		"# TYPE requests_total counter",
		`requests_total{op="invoke"} 7`,
		"# TYPE inflight gauge",
		"inflight 3",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{fn="echo",le="+Inf"} 3`,
		`lat_seconds_count{fn="echo"} 3`,
		"# TYPE bytes summary",
		"bytes_sum 30",
		"bytes_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}

	// Histogram buckets must be cumulative and ordered: parse every
	// lat_seconds_bucket line and check monotone counts with +Inf == n.
	var prev int64 = -1
	var infSeen bool
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "lat_seconds_bucket") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("bad sample line %q", line)
		}
		n, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			t.Fatalf("bad count in %q: %v", line, err)
		}
		if n < prev {
			t.Fatalf("buckets not cumulative: %q after %d", line, prev)
		}
		prev = n
		if strings.Contains(line, `le="+Inf"`) {
			infSeen = true
			if n != 3 {
				t.Fatalf("+Inf bucket = %d, want 3", n)
			}
		}
	}
	if !infSeen {
		t.Fatal("no +Inf bucket emitted")
	}
}

func TestWritePrometheusSanitizesAndEscapes(t *testing.T) {
	r := NewRegistry()
	r.Counter(Label("bad-metric.name", "bad-key", "quote\"back\\slash\nnl")).Inc()

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# TYPE bad_metric_name counter") {
		t.Fatalf("metric name not sanitized:\n%s", out)
	}
	if !strings.Contains(out, `bad_metric_name{bad_key="quote\"back\\slash\nnl"} 1`) {
		t.Fatalf("label not sanitized/escaped:\n%s", out)
	}
	// The raw newline in the label value must not split the sample line:
	// exactly two lines mention the metric (TYPE header + one sample).
	n := 0
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.Contains(line, "bad_metric_name") {
			n++
		}
	}
	if n != 2 {
		t.Fatalf("expected TYPE + 1 sample line, got %d:\n%s", n, out)
	}
}

func TestWritePrometheusUnderflowBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h")
	h.Add(0) // underflow
	h.Add(0.1)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, fmt.Sprintf(`h_bucket{le="%.3g"} 1`, 1e-9)) {
		t.Fatalf("underflow bucket missing:\n%s", out)
	}
	if !strings.Contains(out, `h_bucket{le="+Inf"} 2`) {
		t.Fatalf("+Inf bucket wrong:\n%s", out)
	}
}

func TestWritePrometheusStableOrder(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Inc()
	r.Counter("a_total").Inc()
	var one, two bytes.Buffer
	if err := r.WritePrometheus(&one); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&two); err != nil {
		t.Fatal(err)
	}
	if one.String() != two.String() {
		t.Fatal("exposition output not deterministic")
	}
	if strings.Index(one.String(), "a_total") > strings.Index(one.String(), "b_total") {
		t.Fatalf("families not sorted:\n%s", one.String())
	}
}
