// Package metrics provides the measurement plumbing used by every
// experiment: streaming summaries (Welford), log-bucketed latency
// histograms with percentile queries, counters, time series, and plain-text
// table rendering for the benchmark harness output.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates count/mean/variance/min/max in O(1) space using
// Welford's online algorithm. The zero value is ready to use.
type Summary struct {
	n         int64
	mean, m2  float64
	min, max  float64
	everySeen bool
	total     float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.n++
	s.total += x
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
	if !s.everySeen || x < s.min {
		s.min = x
	}
	if !s.everySeen || x > s.max {
		s.max = x
	}
	s.everySeen = true
}

// Count returns the number of observations.
func (s *Summary) Count() int64 { return s.n }

// Sum returns the total of all observations.
func (s *Summary) Sum() float64 { return s.total }

// Mean returns the arithmetic mean, or 0 if empty.
func (s *Summary) Mean() float64 { return s.mean }

// Var returns the population variance, or 0 if fewer than 2 observations.
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n)
}

// Std returns the population standard deviation.
func (s *Summary) Std() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation, or 0 if empty.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation, or 0 if empty.
func (s *Summary) Max() float64 { return s.max }

// Merge folds other into s, as if every observation of other had been
// Added to s (Chan et al. parallel variance combination).
func (s *Summary) Merge(other *Summary) {
	if other.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *other
		return
	}
	n1, n2 := float64(s.n), float64(other.n)
	d := other.mean - s.mean
	tot := n1 + n2
	s.m2 += other.m2 + d*d*n1*n2/tot
	s.mean += d * n2 / tot
	s.n += other.n
	s.total += other.total
	if other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
}

// Histogram is a log-bucketed histogram for positive values spanning many
// orders of magnitude (latencies from ns to hours). Relative bucket error
// is bounded by the growth factor (~4.6% with 64 buckets per decade... we
// use a fixed 1.07 growth giving <7% relative error). Zero and negative
// values land in a dedicated underflow bucket.
type Histogram struct {
	counts    []int64
	underflow int64
	n         int64
	sum       float64
	min, max  float64
	seen      bool
}

const (
	histGrowth  = 1.07
	histMinVal  = 1e-9 // 1 ns in seconds
	histBuckets = 512  // covers ~1e-9 .. ~1e6 with 7% resolution
)

var logGrowth = math.Log(histGrowth)

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make([]int64, histBuckets)}
}

func bucketOf(v float64) int {
	if v < histMinVal {
		return -1
	}
	b := int(math.Log(v/histMinVal) / logGrowth)
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

func bucketUpper(b int) float64 {
	return histMinVal * math.Pow(histGrowth, float64(b+1))
}

// Add records one observation.
func (h *Histogram) Add(v float64) {
	h.n++
	h.sum += v
	if !h.seen || v < h.min {
		h.min = v
	}
	if !h.seen || v > h.max {
		h.max = v
	}
	h.seen = true
	if b := bucketOf(v); b >= 0 {
		h.counts[b]++
	} else {
		h.underflow++
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.n }

// Mean returns the exact mean (tracked outside the buckets).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Min returns the smallest observation, or 0 if empty.
func (h *Histogram) Min() float64 { return h.min }

// Max returns the largest observation, or 0 if empty.
func (h *Histogram) Max() float64 { return h.max }

// Quantile returns an estimate of the q-quantile (0 <= q <= 1) with
// relative error bounded by the bucket growth factor. Empty histograms
// return 0.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	target := int64(q * float64(h.n))
	if target < h.underflow {
		return histMinVal
	}
	cum := h.underflow
	for b, c := range h.counts {
		cum += c
		if cum > target {
			u := bucketUpper(b)
			if u > h.max {
				u = h.max
			}
			return u
		}
	}
	return h.max
}

// P50, P90, P99 are convenience percentile accessors.
func (h *Histogram) P50() float64 { return h.Quantile(0.50) }

// P90 returns the 90th percentile estimate.
func (h *Histogram) P90() float64 { return h.Quantile(0.90) }

// P99 returns the 99th percentile estimate.
func (h *Histogram) P99() float64 { return h.Quantile(0.99) }

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	for b, c := range other.counts {
		h.counts[b] += c
	}
	h.underflow += other.underflow
	h.n += other.n
	h.sum += other.sum
	if other.seen {
		if !h.seen || other.min < h.min {
			h.min = other.min
		}
		if !h.seen || other.max > h.max {
			h.max = other.max
		}
		h.seen = true
	}
}

// Equal reports whether h and other recorded identical distributions:
// same observation count, exact sum, extrema, and per-bucket counts.
// Used by core's zero-fault equivalence property tests to compare runner
// Stats field-for-field.
func (h *Histogram) Equal(other *Histogram) bool {
	if h.n != other.n || h.sum != other.sum || h.underflow != other.underflow ||
		h.seen != other.seen || h.min != other.min || h.max != other.max ||
		len(h.counts) != len(other.counts) {
		return false
	}
	for b, c := range h.counts {
		if c != other.counts[b] {
			return false
		}
	}
	return true
}

// Counter is a monotonically increasing count with a name.
type Counter struct {
	Name  string
	Value int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Value++ }

// Add adds n; negative n panics (counters only go up).
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("metrics: negative Counter.Add")
	}
	c.Value += n
}

// Series is an append-only (x, y) sequence, used for figure output.
type Series struct {
	Name string
	X, Y []float64
}

// Append adds one point.
func (s *Series) Append(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.X) }

// Registry is a named collection of summaries, histograms and counters,
// shared by one simulation run.
type Registry struct {
	Summaries  map[string]*Summary
	Histograms map[string]*Histogram
	Counters   map[string]*Counter
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		Summaries:  make(map[string]*Summary),
		Histograms: make(map[string]*Histogram),
		Counters:   make(map[string]*Counter),
	}
}

// Summary returns (creating if needed) the named summary.
func (r *Registry) Summary(name string) *Summary {
	s, ok := r.Summaries[name]
	if !ok {
		s = &Summary{}
		r.Summaries[name] = s
	}
	return s
}

// Histogram returns (creating if needed) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	h, ok := r.Histograms[name]
	if !ok {
		h = NewHistogram()
		r.Histograms[name] = h
	}
	return h
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	c, ok := r.Counters[name]
	if !ok {
		c = &Counter{Name: name}
		r.Counters[name] = c
	}
	return c
}

// Names returns all registered metric names, sorted, for stable output.
func (r *Registry) Names() []string {
	var names []string
	for n := range r.Summaries {
		names = append(names, n)
	}
	for n := range r.Histograms {
		names = append(names, n)
	}
	for n := range r.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// FormatDuration renders a duration in seconds with an adaptive unit,
// e.g. 1.5e-05 -> "15.0µs".
func FormatDuration(sec float64) string {
	abs := math.Abs(sec)
	switch {
	case abs == 0:
		return "0s"
	case abs < 1e-6:
		return fmt.Sprintf("%.1fns", sec*1e9)
	case abs < 1e-3:
		return fmt.Sprintf("%.1fµs", sec*1e6)
	case abs < 1:
		return fmt.Sprintf("%.2fms", sec*1e3)
	case abs < 120:
		return fmt.Sprintf("%.2fs", sec)
	default:
		return fmt.Sprintf("%.1fmin", sec/60)
	}
}

// FormatBytes renders a byte count with an adaptive binary unit.
func FormatBytes(b float64) string {
	abs := math.Abs(b)
	switch {
	case abs < 1024:
		return fmt.Sprintf("%.0fB", b)
	case abs < 1024*1024:
		return fmt.Sprintf("%.1fKiB", b/1024)
	case abs < 1024*1024*1024:
		return fmt.Sprintf("%.1fMiB", b/(1024*1024))
	case abs < 1024*1024*1024*1024:
		return fmt.Sprintf("%.2fGiB", b/(1024*1024*1024))
	default:
		return fmt.Sprintf("%.2fTiB", b/(1024*1024*1024*1024))
	}
}
