// Package metrics provides the measurement plumbing used by every
// experiment and by the live serving path: streaming summaries (Welford),
// log-bucketed latency histograms with percentile queries, counters,
// gauges, time series, plain-text table rendering for the benchmark
// harness output, and Prometheus text-format exposition (see
// prometheus.go). All metric types and the Registry are safe for
// concurrent use.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// summaryData is the lock-free core of a Summary, shared between Add and
// Merge (which must combine two instances without holding both locks).
type summaryData struct {
	n         int64
	mean, m2  float64
	min, max  float64
	everySeen bool
	total     float64
}

func (d *summaryData) add(x float64) {
	d.n++
	d.total += x
	dx := x - d.mean
	d.mean += dx / float64(d.n)
	d.m2 += dx * (x - d.mean)
	if !d.everySeen || x < d.min {
		d.min = x
	}
	if !d.everySeen || x > d.max {
		d.max = x
	}
	d.everySeen = true
}

// merge folds other into d (Chan et al. parallel variance combination).
func (d *summaryData) merge(other summaryData) {
	if other.n == 0 {
		return
	}
	if d.n == 0 {
		*d = other
		return
	}
	n1, n2 := float64(d.n), float64(other.n)
	dd := other.mean - d.mean
	tot := n1 + n2
	d.m2 += other.m2 + dd*dd*n1*n2/tot
	d.mean += dd * n2 / tot
	d.n += other.n
	d.total += other.total
	if other.min < d.min {
		d.min = other.min
	}
	if other.max > d.max {
		d.max = other.max
	}
}

// Summary accumulates count/mean/variance/min/max in O(1) space using
// Welford's online algorithm. The zero value is ready to use, and all
// methods are safe for concurrent use.
type Summary struct {
	mu sync.Mutex
	d  summaryData
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.mu.Lock()
	s.d.add(x)
	s.mu.Unlock()
}

func (s *Summary) snapshot() summaryData {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.d
}

// Count returns the number of observations.
func (s *Summary) Count() int64 { s.mu.Lock(); defer s.mu.Unlock(); return s.d.n }

// Sum returns the total of all observations.
func (s *Summary) Sum() float64 { s.mu.Lock(); defer s.mu.Unlock(); return s.d.total }

// Mean returns the arithmetic mean, or 0 if empty.
func (s *Summary) Mean() float64 { s.mu.Lock(); defer s.mu.Unlock(); return s.d.mean }

// Var returns the population variance, or 0 if fewer than 2 observations.
func (s *Summary) Var() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.d.n < 2 {
		return 0
	}
	return s.d.m2 / float64(s.d.n)
}

// Std returns the population standard deviation.
func (s *Summary) Std() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation, or 0 if empty.
func (s *Summary) Min() float64 { s.mu.Lock(); defer s.mu.Unlock(); return s.d.min }

// Max returns the largest observation, or 0 if empty.
func (s *Summary) Max() float64 { s.mu.Lock(); defer s.mu.Unlock(); return s.d.max }

// Merge folds other into s, as if every observation of other had been
// Added to s. Other is snapshotted first, so s.Merge(s) and concurrent
// merges in both directions are safe (no double-lock).
func (s *Summary) Merge(other *Summary) {
	od := other.snapshot()
	s.mu.Lock()
	s.d.merge(od)
	s.mu.Unlock()
}

// Histogram is a log-bucketed histogram for positive values spanning many
// orders of magnitude (latencies from ns to hours). Relative bucket error
// is bounded by the growth factor (~4.6% with 64 buckets per decade... we
// use a fixed 1.07 growth giving <7% relative error). Zero and negative
// values land in a dedicated underflow bucket. All methods are safe for
// concurrent use.
type Histogram struct {
	mu        sync.Mutex
	counts    []int64
	underflow int64
	n         int64
	sum       float64
	min, max  float64
	seen      bool
	// exemplars holds the latest traced observation per bucket (key -1 =
	// underflow), linking a histogram bucket to a concrete trace ID in
	// the Prometheus exposition. Lazily allocated: histograms that never
	// see AddExemplar pay nothing.
	exemplars map[int]Exemplar
}

// Exemplar ties one observed value to the trace that produced it, so a
// latency spike in a scraped histogram links directly to an inspectable
// trace (`continuumctl trace <id>`).
type Exemplar struct {
	Value   float64
	TraceID string
}

const (
	histGrowth  = 1.07
	histMinVal  = 1e-9 // 1 ns in seconds
	histBuckets = 512  // covers ~1e-9 .. ~1e6 with 7% resolution
)

var logGrowth = math.Log(histGrowth)

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make([]int64, histBuckets)}
}

func bucketOf(v float64) int {
	if v < histMinVal {
		return -1
	}
	b := int(math.Log(v/histMinVal) / logGrowth)
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

func bucketUpper(b int) float64 {
	return histMinVal * math.Pow(histGrowth, float64(b+1))
}

// Add records one observation.
func (h *Histogram) Add(v float64) {
	h.mu.Lock()
	h.addLocked(v)
	h.mu.Unlock()
}

// addLocked records v and returns the bucket it landed in (-1 =
// underflow). Caller holds h.mu.
func (h *Histogram) addLocked(v float64) int {
	if h.counts == nil {
		h.counts = make([]int64, histBuckets)
	}
	h.n++
	h.sum += v
	if !h.seen || v < h.min {
		h.min = v
	}
	if !h.seen || v > h.max {
		h.max = v
	}
	h.seen = true
	b := bucketOf(v)
	if b >= 0 {
		h.counts[b]++
	} else {
		h.underflow++
	}
	return b
}

// AddExemplar records one observation attributed to a trace: the value
// is Added normally, and the (value, trace ID) pair replaces the
// bucket's exemplar, so each exposed bucket carries the most recent
// trace that landed in it. An empty traceID degrades to a plain Add.
func (h *Histogram) AddExemplar(v float64, traceID string) {
	h.mu.Lock()
	b := h.addLocked(v)
	if traceID != "" {
		if h.exemplars == nil {
			h.exemplars = make(map[int]Exemplar)
		}
		h.exemplars[b] = Exemplar{Value: v, TraceID: traceID}
	}
	h.mu.Unlock()
}

// Exemplars returns a copy of the per-bucket exemplars, keyed by bucket
// index (-1 = underflow). Nil when no traced observation was recorded.
func (h *Histogram) Exemplars() map[int]Exemplar {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.exemplars == nil {
		return nil
	}
	out := make(map[int]Exemplar, len(h.exemplars))
	for k, e := range h.exemplars {
		out[k] = e
	}
	return out
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { h.mu.Lock(); defer h.mu.Unlock(); return h.n }

// Mean returns the exact mean (tracked outside the buckets).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Sum returns the exact total of all observations.
func (h *Histogram) Sum() float64 { h.mu.Lock(); defer h.mu.Unlock(); return h.sum }

// Min returns the smallest observation, or 0 if empty.
func (h *Histogram) Min() float64 { h.mu.Lock(); defer h.mu.Unlock(); return h.min }

// Max returns the largest observation, or 0 if empty.
func (h *Histogram) Max() float64 { h.mu.Lock(); defer h.mu.Unlock(); return h.max }

// Quantile returns an estimate of the q-quantile (0 <= q <= 1) with
// relative error bounded by the bucket growth factor. Empty histograms
// return 0.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

func (h *Histogram) quantileLocked(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	target := int64(q * float64(h.n))
	if target < h.underflow {
		return histMinVal
	}
	cum := h.underflow
	for b, c := range h.counts {
		cum += c
		if cum > target {
			u := bucketUpper(b)
			if u > h.max {
				u = h.max
			}
			return u
		}
	}
	return h.max
}

// P50, P90, P99 are convenience percentile accessors.
func (h *Histogram) P50() float64 { return h.Quantile(0.50) }

// P90 returns the 90th percentile estimate.
func (h *Histogram) P90() float64 { return h.Quantile(0.90) }

// P99 returns the 99th percentile estimate.
func (h *Histogram) P99() float64 { return h.Quantile(0.99) }

// histSnapshot is a point-in-time copy of a histogram's state, used by
// Merge/Equal (to combine two instances without holding both locks) and
// by the Prometheus exposition.
type histSnapshot struct {
	counts    []int64
	underflow int64
	n         int64
	sum       float64
	min, max  float64
	seen      bool
	exemplars map[int]Exemplar
}

func (h *Histogram) snapshot() histSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	counts := make([]int64, len(h.counts))
	copy(counts, h.counts)
	var ex map[int]Exemplar
	if h.exemplars != nil {
		ex = make(map[int]Exemplar, len(h.exemplars))
		for k, e := range h.exemplars {
			ex[k] = e
		}
	}
	return histSnapshot{
		counts: counts, underflow: h.underflow, n: h.n,
		sum: h.sum, min: h.min, max: h.max, seen: h.seen, exemplars: ex,
	}
}

// Merge folds other into h. Other is snapshotted first, so concurrent
// merges in both directions are safe.
func (h *Histogram) Merge(other *Histogram) {
	o := other.snapshot()
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.counts == nil {
		h.counts = make([]int64, histBuckets)
	}
	for b, c := range o.counts {
		h.counts[b] += c
	}
	h.underflow += o.underflow
	h.n += o.n
	h.sum += o.sum
	if o.exemplars != nil {
		if h.exemplars == nil {
			h.exemplars = make(map[int]Exemplar, len(o.exemplars))
		}
		for k, e := range o.exemplars {
			h.exemplars[k] = e
		}
	}
	if o.seen {
		if !h.seen || o.min < h.min {
			h.min = o.min
		}
		if !h.seen || o.max > h.max {
			h.max = o.max
		}
		h.seen = true
	}
}

// Equal reports whether h and other recorded identical distributions:
// same observation count, exact sum, extrema, and per-bucket counts.
// Used by core's zero-fault equivalence property tests to compare runner
// Stats field-for-field.
func (h *Histogram) Equal(other *Histogram) bool {
	o := other.snapshot()
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n != o.n || h.sum != o.sum || h.underflow != o.underflow ||
		h.seen != o.seen || h.min != o.min || h.max != o.max ||
		len(h.counts) != len(o.counts) {
		return false
	}
	for b, c := range h.counts {
		if c != o.counts[b] {
			return false
		}
	}
	return true
}

// Counter is a monotonically increasing count with a name. The zero value
// is ready to use; all methods are safe for concurrent use.
type Counter struct {
	Name string
	v    atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative n panics (counters only go up).
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("metrics: negative Counter.Add")
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down (in-flight requests, queue
// depth). The zero value is ready to use; all methods are safe for
// concurrent use.
type Gauge struct {
	Name string
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add moves the gauge by d (negative d decreases it).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Series is an append-only (x, y) sequence, used for figure output.
type Series struct {
	Name string
	X, Y []float64
}

// Append adds one point.
func (s *Series) Append(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.X) }

// Registry is a named collection of summaries, histograms, counters and
// gauges, shared by one simulation run or one serving process. It is safe
// for concurrent use; the accessor methods create on first reference, so
// hammering the same name from many goroutines always yields one shared
// metric.
type Registry struct {
	mu         sync.Mutex
	summaries  map[string]*Summary
	histograms map[string]*Histogram
	counters   map[string]*Counter
	gauges     map[string]*Gauge
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		summaries:  make(map[string]*Summary),
		histograms: make(map[string]*Histogram),
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
	}
}

// Summary returns (creating if needed) the named summary.
func (r *Registry) Summary(name string) *Summary {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.summaries[name]
	if !ok {
		s = &Summary{}
		r.summaries[name] = s
	}
	return s
}

// Histogram returns (creating if needed) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram()
		r.histograms[name] = h
	}
	return h
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{Name: name}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{Name: name}
		r.gauges[name] = g
	}
	return g
}

// Names returns all registered metric names, sorted, for stable output.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var names []string
	for n := range r.summaries {
		names = append(names, n)
	}
	for n := range r.histograms {
		names = append(names, n)
	}
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// sortedKeys returns m's keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// EachHistogram calls f for every registered histogram in name order. f
// must not call back into r (the registry lock is not held, but metric
// handles are shared live objects).
func (r *Registry) EachHistogram(f func(name string, h *Histogram)) {
	r.mu.Lock()
	names := sortedKeys(r.histograms)
	hs := make([]*Histogram, len(names))
	for i, n := range names {
		hs[i] = r.histograms[n]
	}
	r.mu.Unlock()
	for i, n := range names {
		f(n, hs[i])
	}
}

// EachCounter calls f for every registered counter in name order.
func (r *Registry) EachCounter(f func(name string, c *Counter)) {
	r.mu.Lock()
	names := sortedKeys(r.counters)
	cs := make([]*Counter, len(names))
	for i, n := range names {
		cs[i] = r.counters[n]
	}
	r.mu.Unlock()
	for i, n := range names {
		f(n, cs[i])
	}
}

// EachGauge calls f for every registered gauge in name order.
func (r *Registry) EachGauge(f func(name string, g *Gauge)) {
	r.mu.Lock()
	names := sortedKeys(r.gauges)
	gs := make([]*Gauge, len(names))
	for i, n := range names {
		gs[i] = r.gauges[n]
	}
	r.mu.Unlock()
	for i, n := range names {
		f(n, gs[i])
	}
}

// EachSummary calls f for every registered summary in name order.
func (r *Registry) EachSummary(f func(name string, s *Summary)) {
	r.mu.Lock()
	names := sortedKeys(r.summaries)
	ss := make([]*Summary, len(names))
	for i, n := range names {
		ss[i] = r.summaries[n]
	}
	r.mu.Unlock()
	for i, n := range names {
		f(n, ss[i])
	}
}

// FormatDuration renders a duration in seconds with an adaptive unit,
// e.g. 1.5e-05 -> "15.0µs".
func FormatDuration(sec float64) string {
	abs := math.Abs(sec)
	switch {
	case abs == 0:
		return "0s"
	case abs < 1e-6:
		return fmt.Sprintf("%.1fns", sec*1e9)
	case abs < 1e-3:
		return fmt.Sprintf("%.1fµs", sec*1e6)
	case abs < 1:
		return fmt.Sprintf("%.2fms", sec*1e3)
	case abs < 120:
		return fmt.Sprintf("%.2fs", sec)
	default:
		return fmt.Sprintf("%.1fmin", sec/60)
	}
}

// FormatBytes renders a byte count with an adaptive binary unit.
func FormatBytes(b float64) string {
	abs := math.Abs(b)
	switch {
	case abs < 1024:
		return fmt.Sprintf("%.0fB", b)
	case abs < 1024*1024:
		return fmt.Sprintf("%.1fKiB", b/1024)
	case abs < 1024*1024*1024:
		return fmt.Sprintf("%.1fMiB", b/(1024*1024))
	case abs < 1024*1024*1024*1024:
		return fmt.Sprintf("%.2fGiB", b/(1024*1024*1024))
	default:
		return fmt.Sprintf("%.2fTiB", b/(1024*1024*1024*1024))
	}
}
