package metrics

import (
	"sync"
	"testing"
)

// TestRegistryConcurrentHammer is the regression test for the latent data
// race the pre-observability metrics package carried: Counter increments
// were plain ++ and Registry maps were unguarded, so the first concurrent
// user (the live faas/wire path) corrupted counts or crashed the map.
// Run under -race (the tier-1 gate always does) this fails loudly on any
// reintroduction; the count assertions below catch lost updates even
// without the race detector.
func TestRegistryConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	const goroutines = 16
	const perG = 500

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Same names from every goroutine: exercises create-on-first-use
				// racing with use, and concurrent mutation of one shared metric.
				r.Counter("hits").Inc()
				r.Gauge("inflight").Add(1)
				r.Gauge("inflight").Add(-1)
				r.Histogram("lat").Add(float64(i%10+1) * 1e-3)
				r.Summary("bytes").Add(float64(i))
				_ = r.Histogram("lat").P99()
				_ = r.Names()
			}
		}()
	}
	wg.Wait()

	const total = goroutines * perG
	if got := r.Counter("hits").Value(); got != total {
		t.Fatalf("lost counter updates: %d, want %d", got, total)
	}
	if got := r.Histogram("lat").Count(); got != total {
		t.Fatalf("lost histogram observations: %d, want %d", got, total)
	}
	if got := r.Summary("bytes").Count(); got != total {
		t.Fatalf("lost summary observations: %d, want %d", got, total)
	}
	if got := r.Gauge("inflight").Value(); got != 0 {
		t.Fatalf("gauge should settle at 0, got %v", got)
	}
}

// TestHistogramConcurrentMerge exercises Merge/Equal against concurrent
// Adds (snapshot-based combination must not deadlock or race).
func TestHistogramConcurrentMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				a.Add(0.01)
				b.Add(0.02)
				a.Merge(b)
				_ = a.Equal(b)
			}
		}()
	}
	wg.Wait()
	if a.Count() == 0 || b.Count() != 800 {
		t.Fatalf("counts = %d/%d", a.Count(), b.Count())
	}
}

// TestSummaryConcurrentMerge covers the Summary snapshot path, including
// self-merge which would deadlock a naive two-lock implementation.
func TestSummaryConcurrentMerge(t *testing.T) {
	var a, b Summary
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				a.Add(1)
				b.Add(2)
				a.Merge(&b)
			}
		}()
	}
	wg.Wait()
	a.Merge(&a) // self-merge must not deadlock
	if b.Count() != 800 {
		t.Fatalf("b.Count = %d", b.Count())
	}
}
