package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"continuum/internal/workload"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, v := range []float64{1, 2, 3, 4, 5} {
		s.Add(v)
	}
	if s.Count() != 5 {
		t.Fatalf("Count = %d, want 5", s.Count())
	}
	if s.Mean() != 3 {
		t.Fatalf("Mean = %v, want 3", s.Mean())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("Min/Max = %v/%v, want 1/5", s.Min(), s.Max())
	}
	if s.Sum() != 15 {
		t.Fatalf("Sum = %v, want 15", s.Sum())
	}
	if math.Abs(s.Var()-2) > 1e-12 {
		t.Fatalf("Var = %v, want 2", s.Var())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Var() != 0 || s.Std() != 0 {
		t.Fatal("empty summary should report zeros")
	}
}

func TestSummaryNegativeValues(t *testing.T) {
	var s Summary
	s.Add(-5)
	s.Add(5)
	if s.Min() != -5 || s.Max() != 5 || s.Mean() != 0 {
		t.Fatalf("min/max/mean = %v/%v/%v", s.Min(), s.Max(), s.Mean())
	}
}

func TestSummaryMergeEqualsSequential(t *testing.T) {
	rng := workload.NewRNG(1)
	var all, a, b Summary
	for i := 0; i < 1000; i++ {
		v := rng.Norm(10, 3)
		all.Add(v)
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	a.Merge(&b)
	if a.Count() != all.Count() {
		t.Fatalf("merged count %d != %d", a.Count(), all.Count())
	}
	if math.Abs(a.Mean()-all.Mean()) > 1e-9 {
		t.Fatalf("merged mean %v != %v", a.Mean(), all.Mean())
	}
	if math.Abs(a.Var()-all.Var()) > 1e-9 {
		t.Fatalf("merged var %v != %v", a.Var(), all.Var())
	}
	if a.Min() != all.Min() || a.Max() != all.Max() {
		t.Fatal("merged min/max mismatch")
	}
}

func TestSummaryMergeEmptyCases(t *testing.T) {
	var a, b Summary
	a.Add(1)
	a.Merge(&b) // merge empty into non-empty
	if a.Count() != 1 {
		t.Fatal("merge with empty changed count")
	}
	var c Summary
	c.Merge(&a) // merge non-empty into empty
	if c.Count() != 1 || c.Mean() != 1 {
		t.Fatal("merge into empty lost data")
	}
}

func TestHistogramPercentiles(t *testing.T) {
	h := NewHistogram()
	// 1..1000 ms
	for i := 1; i <= 1000; i++ {
		h.Add(float64(i) * 1e-3)
	}
	if h.Count() != 1000 {
		t.Fatalf("Count = %d", h.Count())
	}
	p50 := h.P50()
	if p50 < 0.45 || p50 > 0.56 {
		t.Fatalf("P50 = %v, want ~0.5", p50)
	}
	p99 := h.P99()
	if p99 < 0.92 || p99 > 1.08 {
		t.Fatalf("P99 = %v, want ~0.99", p99)
	}
	if math.Abs(h.Mean()-0.5005) > 1e-9 {
		t.Fatalf("Mean = %v, want 0.5005 exactly", h.Mean())
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile != 0")
	}
	h.Add(0.25)
	if h.Quantile(0) != 0.25 || h.Quantile(1) != 0.25 {
		t.Fatal("q=0/q=1 should return min/max")
	}
}

func TestHistogramUnderflow(t *testing.T) {
	h := NewHistogram()
	h.Add(0)
	h.Add(-1)
	h.Add(1)
	if h.Count() != 3 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Min() != -1 || h.Max() != 1 {
		t.Fatalf("Min/Max = %v/%v", h.Min(), h.Max())
	}
	// Low quantiles land in the underflow bucket, reported as histMinVal.
	if q := h.Quantile(0.1); q > 1e-8 {
		t.Fatalf("underflow quantile = %v, want ~1e-9", q)
	}
}

func TestHistogramRelativeError(t *testing.T) {
	h := NewHistogram()
	const v = 0.0371
	for i := 0; i < 100; i++ {
		h.Add(v)
	}
	q := h.Quantile(0.5)
	if math.Abs(q-v)/v > 0.08 {
		t.Fatalf("quantile %v deviates >8%% from %v", q, v)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := 1; i <= 500; i++ {
		a.Add(float64(i) * 1e-3)
	}
	for i := 501; i <= 1000; i++ {
		b.Add(float64(i) * 1e-3)
	}
	a.Merge(b)
	if a.Count() != 1000 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Max() != 1.0 || a.Min() != 1e-3 {
		t.Fatalf("merged min/max = %v/%v", a.Min(), a.Max())
	}
	p50 := a.P50()
	if p50 < 0.45 || p50 > 0.56 {
		t.Fatalf("merged P50 = %v", p50)
	}
}

// Property: quantiles are monotone in q and bounded by [min, max].
func TestPropertyHistogramQuantileMonotone(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		rng := workload.NewRNG(seed)
		h := NewHistogram()
		for i := 0; i < int(n)+1; i++ {
			h.Add(rng.Lognormal(0, 2))
		}
		prev := 0.0
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := h.Quantile(q)
			if v < prev-1e-12 {
				return false
			}
			if v > h.Max()+1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("Value = %d, want 5", c.Value())
	}
	defer func() {
		if recover() == nil {
			t.Error("negative Add did not panic")
		}
	}()
	c.Add(-1)
}

func TestGauge(t *testing.T) {
	var g Gauge
	if g.Value() != 0 {
		t.Fatalf("zero gauge = %v", g.Value())
	}
	g.Set(3.5)
	g.Add(1.5)
	g.Add(-2)
	if g.Value() != 3 {
		t.Fatalf("Value = %v, want 3", g.Value())
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Summary("lat").Add(1)
	r.Summary("lat").Add(3)
	if r.Summary("lat").Mean() != 2 {
		t.Fatal("registry summary not shared by name")
	}
	r.Counter("done").Inc()
	r.Histogram("h").Add(0.1)
	r.Gauge("inflight").Set(2)
	names := r.Names()
	if len(names) != 4 {
		t.Fatalf("Names = %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Fatalf("Names not sorted: %v", names)
		}
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Append(1, 2)
	s.Append(3, 4)
	if s.Len() != 2 || s.X[1] != 3 || s.Y[1] != 4 {
		t.Fatalf("series = %+v", s)
	}
}

func TestFormatDuration(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0s"},
		{5e-9, "5.0ns"},
		{1.5e-5, "15.0µs"},
		{0.0042, "4.20ms"},
		{1.25, "1.25s"},
		{300, "5.0min"},
	}
	for _, tc := range cases {
		if got := FormatDuration(tc.in); got != tc.want {
			t.Errorf("FormatDuration(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestFormatBytes(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{100, "100B"},
		{2048, "2.0KiB"},
		{3 * 1024 * 1024, "3.0MiB"},
		{1.5 * 1024 * 1024 * 1024, "1.50GiB"},
	}
	for _, tc := range cases {
		if got := FormatBytes(tc.in); got != tc.want {
			t.Errorf("FormatBytes(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("T1: demo", "policy", "latency", "energy")
	tb.AddRow("edge", "1.2ms", "3J")
	tb.AddRowf("cloud", 0.5, 42)
	out := tb.String()
	if !strings.Contains(out, "T1: demo") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "policy") || !strings.Contains(out, "cloud") {
		t.Fatalf("table missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
}

func TestTableRowPadding(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("only-one")
	tb.AddRow("x", "y", "dropped-extra")
	out := tb.String()
	if strings.Contains(out, "dropped-extra") {
		t.Fatal("extra cell not dropped")
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow("x,y", `q"z`)
	csv := tb.CSV()
	if !strings.Contains(csv, `"x,y"`) {
		t.Fatalf("comma cell not quoted: %q", csv)
	}
	if !strings.Contains(csv, `"q""z"`) {
		t.Fatalf("quote cell not escaped: %q", csv)
	}
	if !strings.HasPrefix(csv, "a,b\n") {
		t.Fatalf("missing header: %q", csv)
	}
}

func TestHistogramEqual(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	if !a.Equal(b) {
		t.Fatal("empty histograms not equal")
	}
	for _, v := range []float64{0.01, 2.5, 1e-12, 40} {
		a.Add(v)
		b.Add(v)
	}
	if !a.Equal(b) {
		t.Fatal("identical observation streams not equal")
	}
	b.Add(0.01)
	if a.Equal(b) {
		t.Fatal("different counts reported equal")
	}
	c, d := NewHistogram(), NewHistogram()
	c.Add(1.0)
	c.Add(3.0)
	d.Add(2.0)
	d.Add(2.0) // same count and sum, different extrema/buckets
	if c.Equal(d) {
		t.Fatal("different distributions reported equal")
	}
}
