package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync/atomic"
	"time"
)

// DefaultSpanStoreSize is the ring capacity used when a store is built
// with size <= 0. At ~200 B/span that bounds a daemon's trace memory to
// about a megabyte while retaining the last few hundred requests' worth
// of spans.
const DefaultSpanStoreSize = 4096

// SpanStore is a bounded in-process span buffer: recording overwrites
// the oldest span once full (a live daemon is interested in recent
// traces; the pull API exists precisely so anything older has already
// been scraped). Add is lock-free — one atomic increment and one atomic
// pointer store — so the serving hot path pays nanoseconds, and a nil
// *SpanStore discards everything at zero cost, mirroring the simulator
// tracer's nil discipline.
type SpanStore struct {
	slots []atomic.Pointer[Span]
	next  atomic.Uint64
}

// NewSpanStore returns a store retaining the most recent size spans
// (<= 0 = DefaultSpanStoreSize).
func NewSpanStore(size int) *SpanStore {
	if size <= 0 {
		size = DefaultSpanStoreSize
	}
	return &SpanStore{slots: make([]atomic.Pointer[Span], size)}
}

// Add records one completed span, overwriting the oldest when full. The
// span must not be mutated after Add. Nil stores discard.
func (st *SpanStore) Add(sp *Span) {
	if st == nil || sp == nil {
		return
	}
	i := st.next.Add(1) - 1
	st.slots[i%uint64(len(st.slots))].Store(sp)
}

// Len returns how many spans are currently retained.
func (st *SpanStore) Len() int {
	if st == nil {
		return 0
	}
	n := st.next.Load()
	if n > uint64(len(st.slots)) {
		return len(st.slots)
	}
	return int(n)
}

// Dropped returns how many spans have been overwritten by the ring.
func (st *SpanStore) Dropped() int64 {
	if st == nil {
		return 0
	}
	n := st.next.Load()
	if n <= uint64(len(st.slots)) {
		return 0
	}
	return int64(n - uint64(len(st.slots)))
}

// Snapshot returns the retained spans sorted by start time. Each slot is
// read atomically; a concurrent writer may replace slots mid-walk, which
// can momentarily duplicate or skip an overwritten span — acceptable for
// a debugging view, and the race detector stays quiet because every
// access is atomic.
func (st *SpanStore) Snapshot() []*Span {
	if st == nil {
		return nil
	}
	out := make([]*Span, 0, len(st.slots))
	for i := range st.slots {
		if sp := st.slots[i].Load(); sp != nil {
			out = append(out, sp)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].SpanID < out[j].SpanID
	})
	return out
}

// Trace returns the retained spans belonging to one trace, sorted by
// start time.
func (st *SpanStore) Trace(id string) []*Span {
	var out []*Span
	for _, sp := range st.Snapshot() {
		if sp.TraceID == id {
			out = append(out, sp)
		}
	}
	return out
}

// WriteJSON streams the retained spans as a JSON array — the payload of
// continuumd's /debug/traces endpoint. A non-empty traceID filters to
// one trace.
func (st *SpanStore) WriteJSON(w io.Writer, traceID string) error {
	bw := bufio.NewWriter(w)
	spans := st.Snapshot()
	if traceID != "" {
		spans = st.Trace(traceID)
	}
	if _, err := bw.WriteString("[\n"); err != nil {
		return err
	}
	enc := json.NewEncoder(bw)
	for i, sp := range spans {
		if i > 0 {
			bw.WriteString(",")
		}
		if err := enc.Encode(sp); err != nil {
			return fmt.Errorf("trace: span export: %w", err)
		}
	}
	if _, err := bw.WriteString("]\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// StartSpan opens a span recorded into st on End. All methods of the
// returned *ActiveSpan are nil-safe, so callers write
//
//	sp := store.StartSpan(tc, svc, name, kind)
//	defer sp.End()
//
// unconditionally: with a nil store the whole chain costs one nil check
// per call and records nothing. A zero tc starts a new trace (the span
// becomes a root); otherwise the span joins tc's trace as a child of
// tc.SpanID.
func (st *SpanStore) StartSpan(tc SpanContext, service, name string, kind SpanKind) *ActiveSpan {
	if st == nil {
		return nil
	}
	if tc.TraceID == "" {
		tc.TraceID = NewTraceID()
	}
	return &ActiveSpan{
		store: st,
		span: Span{
			TraceID: tc.TraceID,
			SpanID:  NewSpanID(),
			Parent:  tc.SpanID,
			Service: service,
			Name:    name,
			Kind:    kind,
			Start:   time.Now().UnixNano(),
		},
	}
}

// ActiveSpan is a span being recorded. It is owned by one goroutine
// until End; the stored *Span is immutable afterwards.
type ActiveSpan struct {
	store *SpanStore
	span  Span
	ended bool
}

// Context returns the span's propagation context: its trace ID and its
// own span ID as the parent for callees. A nil span returns the zero
// context (untraced).
func (a *ActiveSpan) Context() SpanContext {
	if a == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: a.span.TraceID, SpanID: a.span.SpanID}
}

// TraceID returns the trace this span belongs to ("" for nil spans).
func (a *ActiveSpan) TraceID() string {
	if a == nil {
		return ""
	}
	return a.span.TraceID
}

// SetAttempt records which retry attempt or hedge arm this span is.
func (a *ActiveSpan) SetAttempt(n int) {
	if a != nil {
		a.span.Attempt = n
	}
}

// SetAttr attaches one key/value fact to the span.
func (a *ActiveSpan) SetAttr(k, v string) {
	if a == nil {
		return
	}
	if a.span.Attrs == nil {
		a.span.Attrs = make(map[string]string, 4)
	}
	a.span.Attrs[k] = v
}

// SetErr marks the span failed (nil err leaves it untouched).
func (a *ActiveSpan) SetErr(err error) {
	if a != nil && err != nil {
		a.span.Err = err.Error()
	}
}

// End stamps the end time and records the span. Calling End twice
// records once.
func (a *ActiveSpan) End() {
	if a == nil || a.ended {
		return
	}
	a.ended = true
	a.span.End = time.Now().UnixNano()
	sp := a.span
	a.store.Add(&sp)
}

// ReadSpans parses a JSON span array (the /debug/traces payload or a
// continuumctl span file) back into spans.
func ReadSpans(r io.Reader) ([]*Span, error) {
	var out []*Span
	if err := json.NewDecoder(r).Decode(&out); err != nil {
		return nil, fmt.Errorf("trace: read spans: %w", err)
	}
	return out, nil
}

// MergeSpans combines span sets pulled from several processes into one
// start-sorted, SpanID-deduplicated slice — the assembly step behind
// `continuumctl trace`.
func MergeSpans(sets ...[]*Span) []*Span {
	seen := make(map[string]bool)
	var out []*Span
	for _, set := range sets {
		for _, sp := range set {
			key := sp.TraceID + "/" + sp.SpanID
			if seen[key] {
				continue
			}
			seen[key] = true
			out = append(out, sp)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].SpanID < out[j].SpanID
	})
	return out
}

// TraceSummary is one trace's aggregate view, used by
// `continuumctl trace -slowest`.
type TraceSummary struct {
	TraceID  string
	Root     string // root span name (or the earliest span's name)
	Services int
	Spans    int
	Start    int64
	Duration time.Duration
	Err      bool
}

// Summarize groups spans by trace and aggregates each trace's extent.
// Duration is last-end minus first-start across the whole trace, which
// also covers traces whose root span was overwritten in the ring.
func Summarize(spans []*Span) []TraceSummary {
	type agg struct {
		root       string
		rootIsRoot bool
		svcs       map[string]bool
		n          int
		start, end int64
		err        bool
	}
	traces := make(map[string]*agg)
	for _, sp := range spans {
		a := traces[sp.TraceID]
		if a == nil {
			a = &agg{svcs: make(map[string]bool), start: sp.Start, end: sp.End}
			traces[sp.TraceID] = a
		}
		a.n++
		a.svcs[sp.Service] = true
		if sp.Start < a.start {
			a.start = sp.Start
		}
		if sp.End > a.end {
			a.end = sp.End
		}
		if sp.Err != "" {
			a.err = true
		}
		if sp.Parent == "" && !a.rootIsRoot {
			a.root, a.rootIsRoot = sp.Name, true
		} else if a.root == "" {
			a.root = sp.Name
		}
	}
	out := make([]TraceSummary, 0, len(traces))
	for id, a := range traces {
		out = append(out, TraceSummary{
			TraceID: id, Root: a.root, Services: len(a.svcs), Spans: a.n,
			Start: a.start, Duration: time.Duration(a.end - a.start), Err: a.err,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Duration != out[j].Duration {
			return out[i].Duration > out[j].Duration
		}
		return out[i].TraceID < out[j].TraceID
	})
	return out
}

// SpansToTracer bridges distributed spans into the simulator's event
// tracer so one export path — Tracer.WriteChromeTrace — renders sim and
// live runs in the same viewer. Each span becomes a StageStart/StageEnd
// pair on its service's lane, emitted adjacently so the exporter's
// attempt-aware pairing can never cross two spans; times are seconds
// relative to the earliest span start.
func SpansToTracer(spans []*Span) *Tracer {
	t := New(0)
	if len(spans) == 0 {
		return t
	}
	epoch := spans[0].Start
	for _, sp := range spans {
		if sp.Start < epoch {
			epoch = sp.Start
		}
	}
	rel := func(ns int64) float64 { return float64(ns-epoch) / float64(time.Second) }
	for _, sp := range spans {
		detail := sp.Name
		if sp.Err != "" {
			detail += " !err"
		}
		t.RecordAttempt(rel(sp.Start), StageStart, sp.Service, detail, sp.Attempt)
		t.RecordAttempt(rel(sp.End), StageEnd, sp.Service, detail, sp.Attempt)
	}
	return t
}
