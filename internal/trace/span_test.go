package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// mkSpan builds a completed span for store tests.
func mkSpan(traceID, spanID, parent, svc, name string, start, end int64) *Span {
	return &Span{
		TraceID: traceID, SpanID: spanID, Parent: parent,
		Service: svc, Name: name, Kind: KindInternal,
		Start: start, End: end,
	}
}

func TestSpanStoreRingOverwrite(t *testing.T) {
	st := NewSpanStore(4)
	for i := 0; i < 10; i++ {
		st.Add(mkSpan("t", fmt.Sprintf("s%d", i), "", "svc", "op", int64(i), int64(i+1)))
	}
	if got := st.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4 (ring capacity)", got)
	}
	if got := st.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	snap := st.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("Snapshot retained %d spans, want 4", len(snap))
	}
	// The ring keeps the most recent adds, sorted by start.
	for i, sp := range snap {
		if want := fmt.Sprintf("s%d", 6+i); sp.SpanID != want {
			t.Fatalf("slot %d = %s, want %s (oldest spans must be overwritten)", i, sp.SpanID, want)
		}
	}
}

func TestSpanStoreDefaultSize(t *testing.T) {
	st := NewSpanStore(0)
	if len(st.slots) != DefaultSpanStoreSize {
		t.Fatalf("size 0 store got %d slots, want DefaultSpanStoreSize %d", len(st.slots), DefaultSpanStoreSize)
	}
}

// TestNilStoreAndSpanAreNoOps: the whole recording chain must be safe on
// a nil store — that is the zero-cost "tracing off" path every hot-path
// caller relies on.
func TestNilStoreAndSpanAreNoOps(t *testing.T) {
	var st *SpanStore
	st.Add(mkSpan("t", "s", "", "svc", "op", 0, 1))
	if st.Len() != 0 || st.Dropped() != 0 || st.Snapshot() != nil {
		t.Fatal("nil store must report empty")
	}
	sp := st.StartSpan(SpanContext{}, "svc", "op", KindClient)
	if sp != nil {
		t.Fatal("nil store must hand out nil active spans")
	}
	// Every method of a nil ActiveSpan is a no-op.
	sp.SetAttempt(1)
	sp.SetAttr("k", "v")
	sp.SetErr(fmt.Errorf("boom"))
	sp.End()
	if tc := sp.Context(); tc != (SpanContext{}) {
		t.Fatalf("nil span context = %+v, want zero", tc)
	}
	if id := sp.TraceID(); id != "" {
		t.Fatalf("nil span trace ID = %q, want empty", id)
	}
}

func TestStartSpanRootAndChild(t *testing.T) {
	st := NewSpanStore(16)
	root := st.StartSpan(SpanContext{}, "svcA", "root-op", KindClient)
	if root.TraceID() == "" {
		t.Fatal("zero context must start a fresh trace")
	}
	child := st.StartSpan(root.Context(), "svcB", "child-op", KindServer)
	child.SetAttr("k", "v")
	child.End()
	root.SetErr(fmt.Errorf("late failure"))
	root.End()
	root.End() // double End records once

	spans := st.Trace(root.TraceID())
	if len(spans) != 2 {
		t.Fatalf("trace has %d spans, want 2 (double End must not duplicate)", len(spans))
	}
	var r, c *Span
	for _, sp := range spans {
		switch sp.Name {
		case "root-op":
			r = sp
		case "child-op":
			c = sp
		}
	}
	if r == nil || c == nil {
		t.Fatalf("missing spans: %+v", spans)
	}
	if r.Parent != "" {
		t.Fatalf("root parent = %q, want empty", r.Parent)
	}
	if c.Parent != r.SpanID {
		t.Fatalf("child parent = %q, want root span %q", c.Parent, r.SpanID)
	}
	if c.TraceID != r.TraceID {
		t.Fatal("child landed in a different trace")
	}
	if c.Attrs["k"] != "v" {
		t.Fatalf("child attrs = %v", c.Attrs)
	}
	if r.Err != "late failure" {
		t.Fatalf("root err = %q", r.Err)
	}
	if r.End < r.Start || c.End < c.Start {
		t.Fatal("span end precedes start")
	}
}

func TestContextPropagation(t *testing.T) {
	if _, ok := ContextSpan(context.Background()); ok {
		t.Fatal("bare context claims a trace")
	}
	sc := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID()}
	got, ok := ContextSpan(NewContext(context.Background(), sc))
	if !ok || got != sc {
		t.Fatalf("context round trip = %+v, %v", got, ok)
	}
	// A context carrying an empty trace ID counts as untraced.
	if _, ok := ContextSpan(NewContext(context.Background(), SpanContext{SpanID: "x"})); ok {
		t.Fatal("empty trace ID must read as untraced")
	}
}

func TestIDsAreUniqueAndWellFormed(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 10000; i++ {
		id := NewTraceID()
		if len(id) != 16 {
			t.Fatalf("trace ID %q has length %d, want 16", id, len(id))
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %q after %d draws", id, i)
		}
		seen[id] = true
	}
	if len(NewSpanID()) != 8 {
		t.Fatalf("span ID %q has wrong length", NewSpanID())
	}
}

func TestWriteJSONReadSpansRoundTrip(t *testing.T) {
	st := NewSpanStore(16)
	st.Add(mkSpan("trace-a", "s1", "", "svc1", "op1", 100, 200))
	st.Add(mkSpan("trace-a", "s2", "s1", "svc2", "op2", 120, 180))
	st.Add(mkSpan("trace-b", "s3", "", "svc1", "op3", 300, 400))

	var buf bytes.Buffer
	if err := st.WriteJSON(&buf, ""); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("WriteJSON produced invalid JSON: %s", buf.String())
	}
	all, err := ReadSpans(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Fatalf("round trip kept %d spans, want 3", len(all))
	}

	buf.Reset()
	if err := st.WriteJSON(&buf, "trace-a"); err != nil {
		t.Fatal(err)
	}
	filtered, err := ReadSpans(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(filtered) != 2 {
		t.Fatalf("trace filter kept %d spans, want 2", len(filtered))
	}
	for _, sp := range filtered {
		if sp.TraceID != "trace-a" {
			t.Fatalf("filter leaked span from %s", sp.TraceID)
		}
	}

	// An empty store still writes a valid (empty) array.
	buf.Reset()
	if err := NewSpanStore(4).WriteJSON(&buf, ""); err != nil {
		t.Fatal(err)
	}
	empty, err := ReadSpans(bytes.NewReader(buf.Bytes()))
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty store round trip = %v, %v", empty, err)
	}
}

func TestMergeSpansDedup(t *testing.T) {
	a := []*Span{
		mkSpan("t1", "s1", "", "daemon-a", "server", 50, 90),
		mkSpan("t1", "s2", "s1", "daemon-a", "exec", 60, 80),
	}
	b := []*Span{
		mkSpan("t1", "s1", "", "daemon-a", "server", 50, 90), // duplicate pull
		mkSpan("t1", "s0", "", "ctl", "invoke", 10, 100),
	}
	merged := MergeSpans(a, b)
	if len(merged) != 3 {
		t.Fatalf("merged %d spans, want 3 (duplicate must collapse)", len(merged))
	}
	for i := 1; i < len(merged); i++ {
		if merged[i-1].Start > merged[i].Start {
			t.Fatal("merged spans not start-sorted")
		}
	}
	if merged[0].SpanID != "s0" {
		t.Fatalf("earliest span = %s, want s0", merged[0].SpanID)
	}
}

func TestSummarizeSlowestFirst(t *testing.T) {
	spans := []*Span{
		mkSpan("fast", "f1", "", "svc", "invoke fast", 0, 10),
		mkSpan("slow", "l1", "", "svc", "invoke slow", 0, 100),
		mkSpan("slow", "l2", "l1", "other", "exec", 20, 80),
	}
	spans[2].Err = "boom"
	sums := Summarize(spans)
	if len(sums) != 2 {
		t.Fatalf("%d summaries, want 2", len(sums))
	}
	s := sums[0]
	if s.TraceID != "slow" || s.Duration != 100 || s.Spans != 2 || s.Services != 2 || !s.Err || s.Root != "invoke slow" {
		t.Fatalf("slowest summary = %+v", s)
	}
	if sums[1].TraceID != "fast" || sums[1].Err {
		t.Fatalf("second summary = %+v", sums[1])
	}
}

func TestSpansToTracerChromeExport(t *testing.T) {
	sec := int64(time.Second)
	spans := []*Span{
		mkSpan("t", "a", "", "ctl", "invoke echo", 5*sec, 8*sec),
		mkSpan("t", "b", "a", "daemon", "exec echo", 6*sec, 7*sec),
	}
	spans[1].Err = "boom"
	tr := SpansToTracer(spans)
	if tr.Len() != 4 {
		t.Fatalf("tracer has %d events, want 4 (start+end per span)", tr.Len())
	}
	// Times are relative to the earliest span, not absolute unix time.
	if lo, hi := tr.Span(); lo != 0 || hi != 3 {
		t.Fatalf("tracer span = [%v, %v], want [0, 3]", lo, hi)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("Chrome trace is not valid JSON")
	}
	out := buf.String()
	if !strings.Contains(out, "invoke echo") || !strings.Contains(out, "exec echo !err") {
		t.Fatalf("Chrome trace missing span names:\n%s", out)
	}
}

// TestSpanStoreConcurrentHammer drives writers against snapshot readers;
// under -race (scripts/check.sh runs the full suite with the detector)
// this proves the lock-free ring is data-race-clean.
func TestSpanStoreConcurrentHammer(t *testing.T) {
	st := NewSpanStore(64)
	const writers, perWriter = 8, 500
	stop := make(chan struct{})
	var readersWG, writersWG sync.WaitGroup
	// Concurrent readers: Snapshot, Trace, WriteJSON, Len/Dropped.
	for i := 0; i < 4; i++ {
		readersWG.Add(1)
		go func() {
			defer readersWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				st.Snapshot()
				st.Trace("t0")
				st.WriteJSON(&bytes.Buffer{}, "")
				_ = st.Len()
				_ = st.Dropped()
			}
		}()
	}
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			for i := 0; i < perWriter; i++ {
				sp := st.StartSpan(SpanContext{TraceID: fmt.Sprintf("t%d", w)}, "svc", "op", KindExec)
				sp.SetAttempt(i)
				sp.SetAttr("w", fmt.Sprint(w))
				sp.End()
			}
		}(w)
	}
	writersWG.Wait()
	close(stop)
	readersWG.Wait()
	if got := st.Len(); got != 64 {
		t.Fatalf("Len = %d after overflow, want full ring 64", got)
	}
	if want := int64(writers*perWriter - 64); st.Dropped() != want {
		t.Fatalf("Dropped = %d, want %d", st.Dropped(), want)
	}
}
