// Chrome trace-event JSON export: renders a Tracer as the JSON object
// format that chrome://tracing and Perfetto open directly. Entities map
// to threads of one synthetic process; matched Start/End kinds become
// complete ("X") slices with microsecond timestamps; everything else
// (dispatch, failures, scaling) becomes thread-scoped instant events.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one entry of the traceEvents array. Fields follow the
// Trace Event Format spec (ph "X" = complete slice, "i" = instant,
// "M" = metadata); ts/dur are microseconds.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Dur   *float64       `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Cat   string         `json:"cat,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// spanPairs maps each span-opening kind to its closing kind; all other
// kinds export as instants.
var spanPairs = map[Kind]Kind{
	TaskStart:     TaskEnd,
	TransferStart: TransferEnd,
	StageStart:    StageEnd,
}

// chromePid is the single synthetic process all entities live under.
const chromePid = 1

// WriteChromeTrace writes the trace in Chrome trace-event JSON. Spans
// are paired per entity and opening kind, preferring the open event with
// the same attempt number as the close — so concurrent speculative or
// retried spans of one task on one entity pair with their own replica,
// not whichever opened last — and falling back to LIFO when no attempt
// matches (nested spans close innermost-first). Unmatched opens extend
// to the trace end, mirroring busyIntervals. Attempt numbers and details
// ride along in args, so retry and hedge attribution survives into the
// viewer.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	_, end := t.Span()

	ents := t.Entities()
	tid := make(map[string]int, len(ents))
	out := make([]chromeEvent, 0, len(t.events)+len(ents))
	for i, e := range ents {
		tid[e] = i + 1
		out = append(out, chromeEvent{
			Name: "thread_name", Phase: "M", Pid: chromePid, Tid: i + 1,
			Args: map[string]any{"name": e},
		})
	}

	closers := make(map[Kind]Kind, len(spanPairs))
	for open, close := range spanPairs {
		closers[close] = open
	}

	// open[entity][openKind] is a LIFO stack of pending span opens.
	type openSpan struct{ ev Event }
	open := map[string]map[Kind][]openSpan{}
	push := func(e Event) {
		m := open[e.Entity]
		if m == nil {
			m = map[Kind][]openSpan{}
			open[e.Entity] = m
		}
		m[e.Kind] = append(m[e.Kind], openSpan{ev: e})
	}
	pop := func(entity string, openKind Kind, attempt int) (openSpan, bool) {
		stack := open[entity][openKind]
		if len(stack) == 0 {
			return openSpan{}, false
		}
		// Prefer the open carrying the close's attempt number: concurrent
		// replicas (speculation) or retries of one task interleave on an
		// entity, and plain LIFO would cross-pair them. Fall back to the
		// top of the stack for attempt-less custom kinds.
		idx := len(stack) - 1
		for i := len(stack) - 1; i >= 0; i-- {
			if stack[i].ev.Attempt == attempt {
				idx = i
				break
			}
		}
		s := stack[idx]
		open[entity][openKind] = append(stack[:idx], stack[idx+1:]...)
		return s, true
	}

	slice := func(start Event, endTime float64) chromeEvent {
		name := start.Detail
		if name == "" {
			name = string(start.Kind)
		}
		dur := (endTime - start.Time) * 1e6
		if dur < 0 {
			dur = 0
		}
		ev := chromeEvent{
			Name: name, Phase: "X", Ts: start.Time * 1e6, Dur: &dur,
			Pid: chromePid, Tid: tid[start.Entity], Cat: string(start.Kind),
			Args: map[string]any{"attempt": start.Attempt},
		}
		return ev
	}

	for _, e := range t.events {
		if _, isOpen := spanPairs[e.Kind]; isOpen {
			push(e)
			continue
		}
		if openKind, isClose := closers[e.Kind]; isClose {
			if s, ok := pop(e.Entity, openKind, e.Attempt); ok {
				out = append(out, slice(s.ev, e.Time))
				continue
			}
			// A close without an open (trace truncation): fall through and
			// keep it visible as an instant rather than dropping it.
		}
		args := map[string]any{"attempt": e.Attempt}
		if e.Detail != "" {
			args["detail"] = e.Detail
		}
		out = append(out, chromeEvent{
			Name: string(e.Kind), Phase: "i", Ts: e.Time * 1e6,
			Pid: chromePid, Tid: tid[e.Entity], Scope: "t", Args: args,
		})
	}

	// Unmatched opens: the run was cut off; close them at the trace end.
	// Deterministic iteration (sorted entities, fixed kind order) keeps
	// the export byte-stable for identical traces.
	for _, ent := range ents {
		for _, k := range []Kind{TaskStart, TransferStart, StageStart} {
			for _, s := range open[ent][k] {
				out = append(out, slice(s.ev, end))
			}
		}
	}

	doc := struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{TraceEvents: out, DisplayTimeUnit: "ms"}
	enc := json.NewEncoder(w)
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("trace: chrome export: %w", err)
	}
	return nil
}
