// Distributed spans: the live-path counterpart of the simulator's event
// trace. A Span is one timed operation attributed to a trace (one
// end-to-end request), a parent span (the caller's operation), a service
// (which process or endpoint did the work), and an attempt (which retry
// or hedge arm). Spans are recorded wall-clock and assembled post hoc —
// possibly across processes, by merging each daemon's span store — into
// one tree per trace.
//
// Context propagation is deliberately tiny: a trace ID plus the current
// span ID ride a context.Context inside one process and two optional
// wire fields between processes (see wire.Request). A peer that predates
// the fields simply drops them; the trace degrades to the spans of the
// processes that do record, never to corruption.
package trace

import (
	"context"
	"encoding/hex"
	"math/rand/v2"
	"sync"
	"time"
)

// SpanKind classifies which layer emitted a span.
type SpanKind string

// Span kinds recorded by the live path.
const (
	// KindClient is a caller-side span: the reliable client's root
	// invocation span and the raw wire client's per-call send span.
	KindClient SpanKind = "client"
	// KindAttempt is one logical try of a reliable call: a retry attempt
	// or one arm of a hedged race.
	KindAttempt SpanKind = "attempt"
	// KindServer covers a request inside a wire server, from decoded
	// frame to queued response.
	KindServer SpanKind = "server"
	// KindQueue is time spent waiting for an execution slot.
	KindQueue SpanKind = "queue"
	// KindExec is handler execution (including cold-start provisioning).
	KindExec SpanKind = "exec"
	// KindInternal is anything else (breaker skips, store housekeeping).
	KindInternal SpanKind = "internal"
)

// Span is one completed timed operation. Start/End are wall-clock unix
// nanoseconds so spans from different processes on one machine merge on
// a common axis. Attrs carry low-cardinality string facts (endpoint
// address, cold/warm, cancellation); Err is set when the operation
// failed.
type Span struct {
	TraceID string            `json:"trace"`
	SpanID  string            `json:"span"`
	Parent  string            `json:"parent,omitempty"`
	Service string            `json:"svc"`
	Name    string            `json:"name"`
	Kind    SpanKind          `json:"kind"`
	Attempt int               `json:"attempt,omitempty"`
	Start   int64             `json:"start"` // unix nanoseconds
	End     int64             `json:"end"`   // unix nanoseconds
	Err     string            `json:"err,omitempty"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// Duration returns the span's elapsed time.
func (s *Span) Duration() time.Duration {
	return time.Duration(s.End - s.Start)
}

// idRNG generates span and trace IDs. Uniqueness (not secrecy) is the
// requirement; ChaCha8 seeded per process keeps IDs distinct across
// daemons while costing a few nanoseconds per draw under a mutex — off
// the hot path entirely when no span store is installed.
var idRNG = struct {
	sync.Mutex
	r *rand.ChaCha8
}{r: rand.NewChaCha8(seed())}

func seed() [32]byte {
	var s [32]byte
	now := time.Now().UnixNano()
	for i := 0; i < 8; i++ {
		s[i] = byte(now >> (8 * i))
	}
	// Mix in Go's runtime-seeded global RNG so two daemons started the
	// same nanosecond still diverge.
	a, b := rand.Uint64(), rand.Uint64()
	for i := 0; i < 8; i++ {
		s[8+i] = byte(a >> (8 * i))
		s[16+i] = byte(b >> (8 * i))
	}
	return s
}

func randHex(n int) string {
	buf := make([]byte, n)
	idRNG.Lock()
	for i := 0; i < n; i += 8 {
		v := idRNG.r.Uint64()
		for j := 0; j < 8 && i+j < n; j++ {
			buf[i+j] = byte(v >> (8 * j))
		}
	}
	idRNG.Unlock()
	return hex.EncodeToString(buf)
}

// NewTraceID returns a fresh 16-hex-character trace identifier.
func NewTraceID() string { return randHex(8) }

// NewSpanID returns a fresh 8-hex-character span identifier.
func NewSpanID() string { return randHex(4) }

// SpanContext is the propagated slice of a trace: which trace the caller
// belongs to and which of its spans is the current parent.
type SpanContext struct {
	TraceID string
	SpanID  string
}

type ctxKey struct{}

// NewContext returns ctx carrying sc, to be picked up by ContextSpan in
// a callee (the wire client stamps it onto outgoing requests).
func NewContext(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, ctxKey{}, sc)
}

// ContextSpan extracts the propagated trace context, if any.
func ContextSpan(ctx context.Context) (SpanContext, bool) {
	sc, ok := ctx.Value(ctxKey{}).(SpanContext)
	return sc, ok && sc.TraceID != ""
}
