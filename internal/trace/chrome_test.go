package trace

import (
	"bytes"
	"encoding/json"
	"testing"
)

// chromeDoc mirrors the subset of the trace-event format Perfetto and
// chrome://tracing require: a traceEvents array whose entries carry
// name/ph/ts/pid/tid, with complete events ("X") adding a non-negative
// dur. The schema assertions here are the acceptance gate for
// continuum-sim -chrome-trace.
type chromeDoc struct {
	TraceEvents []struct {
		Name  string         `json:"name"`
		Phase string         `json:"ph"`
		Ts    *float64       `json:"ts"`
		Dur   *float64       `json:"dur"`
		Pid   *int           `json:"pid"`
		Tid   *int           `json:"tid"`
		Args  map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func exportAndParse(t *testing.T, tr *Tracer) chromeDoc {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	return doc
}

func TestChromeTraceSchema(t *testing.T) {
	tr := sampleTrace()
	tr.Record(3, Failure, "cloud", "b lost")
	doc := exportAndParse(t, tr)

	if len(doc.TraceEvents) == 0 {
		t.Fatal("no traceEvents")
	}
	phases := map[string]int{}
	for _, e := range doc.TraceEvents {
		if e.Name == "" || e.Phase == "" {
			t.Fatalf("event missing name/ph: %+v", e)
		}
		if e.Pid == nil || e.Tid == nil {
			t.Fatalf("event missing pid/tid: %+v", e)
		}
		if e.Phase != "M" && e.Ts == nil {
			t.Fatalf("non-metadata event missing ts: %+v", e)
		}
		if e.Phase == "X" {
			if e.Dur == nil || *e.Dur < 0 {
				t.Fatalf("complete event with missing/negative dur: %+v", e)
			}
		}
		phases[e.Phase]++
	}
	// 3 task spans -> 3 X events; failure -> 1 instant; 2 entities -> 2
	// thread_name metadata events.
	if phases["X"] != 3 || phases["i"] != 1 || phases["M"] != 2 {
		t.Fatalf("phase counts = %v, want X:3 i:1 M:2", phases)
	}
}

func TestChromeTraceAttemptAttribution(t *testing.T) {
	tr := New(0)
	tr.RecordAttempt(0, TaskStart, "gw", "job", 0)
	tr.RecordAttempt(1, Failure, "gw", "job lost", 0)
	tr.RecordAttempt(1, TaskEnd, "gw", "job", 0) // engine closes via lost path at same time
	tr.RecordAttempt(2, TaskStart, "gw", "job", 1)
	tr.RecordAttempt(3, TaskEnd, "gw", "job", 1)
	doc := exportAndParse(t, tr)

	attempts := map[float64]int{}
	for _, e := range doc.TraceEvents {
		if e.Phase != "X" {
			continue
		}
		a, ok := e.Args["attempt"].(float64)
		if !ok {
			t.Fatalf("X event without attempt arg: %+v", e)
		}
		attempts[a]++
	}
	if attempts[0] != 1 || attempts[1] != 1 {
		t.Fatalf("attempt attribution lost: %v", attempts)
	}
}

// TestChromeTraceInterleavedReplicaPairing covers speculative execution:
// two replicas of one task run concurrently on the SAME entity, and the
// primary (attempt 0) finishes after the backup (attempt 1). Plain LIFO
// pairing would close attempt 0's open with attempt 1's end, yielding a
// 4s and a 1s slice; attempt-preferred pairing must yield the true 2s
// backup slice and 5s primary slice.
func TestChromeTraceInterleavedReplicaPairing(t *testing.T) {
	tr := New(0)
	tr.RecordAttempt(0, TaskStart, "n1", "job", 0) // primary
	tr.RecordAttempt(3, TaskStart, "n1", "job", 1) // backup, same entity
	tr.RecordAttempt(5, TaskEnd, "n1", "job", 1)   // backup wins at 5
	tr.RecordAttempt(8, TaskEnd, "n1", "job", 0)   // stale primary at 8
	doc := exportAndParse(t, tr)

	durByAttempt := map[float64]float64{}
	for _, e := range doc.TraceEvents {
		if e.Phase != "X" {
			continue
		}
		a, ok := e.Args["attempt"].(float64)
		if !ok {
			t.Fatalf("X event without attempt arg: %+v", e)
		}
		durByAttempt[a] = *e.Dur
	}
	if durByAttempt[1] != 2*1e6 {
		t.Fatalf("backup slice dur = %v µs, want 2e6 (cross-paired with the primary?)", durByAttempt[1])
	}
	if durByAttempt[0] != 8*1e6 {
		t.Fatalf("primary slice dur = %v µs, want 8e6", durByAttempt[0])
	}
}

// TestChromeTracePreemptInstant: the Preempt kind is not a span closer,
// so it must export as an instant carrying the losing attempt.
func TestChromeTracePreemptInstant(t *testing.T) {
	tr := New(0)
	tr.RecordAttempt(1, Preempt, "n1", "job", 2)
	doc := exportAndParse(t, tr)
	for _, e := range doc.TraceEvents {
		if e.Phase == "i" && e.Name == string(Preempt) {
			if a, _ := e.Args["attempt"].(float64); a != 2 {
				t.Fatalf("preempt instant attempt = %v, want 2", a)
			}
			return
		}
	}
	t.Fatal("preempt event missing from export")
}

func TestChromeTraceUnmatchedStartClosesAtEnd(t *testing.T) {
	tr := New(0)
	tr.Record(0, TaskStart, "n", "cut")
	tr.Record(10, TaskEnd, "m", "other") // extends span to 10; "cut" never ends
	doc := exportAndParse(t, tr)
	found := false
	for _, e := range doc.TraceEvents {
		if e.Phase == "X" && e.Name == "cut" {
			found = true
			if *e.Dur != 10*1e6 {
				t.Fatalf("cut-off span dur = %v µs, want 1e7", *e.Dur)
			}
		}
	}
	if !found {
		t.Fatal("unmatched start dropped from export")
	}
}

func TestChromeTraceDeterministic(t *testing.T) {
	tr := sampleTrace()
	tr.Record(0.5, TaskStart, "gw", "never-ends")
	var a, b bytes.Buffer
	if err := tr.WriteChromeTrace(&a); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("chrome export not deterministic")
	}
}

func TestChromeTraceEmpty(t *testing.T) {
	doc := exportAndParse(t, New(0))
	if len(doc.TraceEvents) != 0 {
		t.Fatalf("empty trace produced %d events", len(doc.TraceEvents))
	}
}
