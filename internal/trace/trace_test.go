package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func sampleTrace() *Tracer {
	t := New(0)
	t.Record(0, TaskStart, "gw", "a")
	t.Record(2, TaskEnd, "gw", "a")
	t.Record(1, TaskStart, "cloud", "b")
	t.Record(5, TaskEnd, "cloud", "b")
	t.Record(6, TaskStart, "gw", "c")
	t.Record(8, TaskEnd, "gw", "c")
	return t
}

func TestRecordAndFilter(t *testing.T) {
	tr := sampleTrace()
	if tr.Len() != 6 {
		t.Fatalf("Len = %d", tr.Len())
	}
	starts := tr.Filter(TaskStart)
	if len(starts) != 3 {
		t.Fatalf("starts = %d", len(starts))
	}
	if starts[0].Entity != "gw" || starts[1].Entity != "cloud" {
		t.Fatal("filter order broken")
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Record(1, TaskStart, "x", "") // must not panic
}

func TestLimitDropsNewest(t *testing.T) {
	tr := New(2)
	tr.Record(1, TaskStart, "a", "")
	tr.Record(2, TaskStart, "b", "")
	tr.Record(3, TaskStart, "c", "")
	if tr.Len() != 2 || tr.Dropped != 1 {
		t.Fatalf("len=%d dropped=%d", tr.Len(), tr.Dropped)
	}
	if tr.Events()[0].Entity != "a" {
		t.Fatal("oldest event lost")
	}
}

func TestEntitiesSorted(t *testing.T) {
	tr := sampleTrace()
	ents := tr.Entities()
	if len(ents) != 2 || ents[0] != "cloud" || ents[1] != "gw" {
		t.Fatalf("Entities = %v", ents)
	}
}

func TestSpan(t *testing.T) {
	tr := sampleTrace()
	lo, hi := tr.Span()
	if lo != 0 || hi != 8 {
		t.Fatalf("Span = %v,%v", lo, hi)
	}
	empty := New(0)
	lo, hi = empty.Span()
	if lo != 0 || hi != 0 {
		t.Fatal("empty span not zero")
	}
}

func TestUtilization(t *testing.T) {
	tr := sampleTrace()
	// gw busy [0,2] and [6,8] over [0,8]: 4/8 = 0.5.
	if u := tr.Utilization("gw", 0, 8); math.Abs(u-0.5) > 1e-12 {
		t.Fatalf("gw utilization = %v", u)
	}
	// cloud busy [1,5] over [0,8]: 0.5.
	if u := tr.Utilization("cloud", 0, 8); math.Abs(u-0.5) > 1e-12 {
		t.Fatalf("cloud utilization = %v", u)
	}
	// Window clipping: gw over [1,7] -> busy [1,2] + [6,7] = 2/6.
	if u := tr.Utilization("gw", 1, 7); math.Abs(u-2.0/6.0) > 1e-12 {
		t.Fatalf("clipped utilization = %v", u)
	}
	if tr.Utilization("gw", 5, 5) != 0 {
		t.Fatal("degenerate window not zero")
	}
}

func TestUtilizationNestedTasks(t *testing.T) {
	tr := New(0)
	// Two overlapping tasks on one node: busy [0,4] once, not twice.
	tr.Record(0, TaskStart, "n", "a")
	tr.Record(1, TaskStart, "n", "b")
	tr.Record(3, TaskEnd, "n", "a")
	tr.Record(4, TaskEnd, "n", "b")
	if u := tr.Utilization("n", 0, 4); math.Abs(u-1) > 1e-12 {
		t.Fatalf("nested utilization = %v, want 1", u)
	}
}

func TestUnmatchedStartExtendsToEnd(t *testing.T) {
	tr := New(0)
	tr.Record(0, TaskStart, "n", "a")
	tr.Record(10, TaskEnd, "m", "other") // extends span to 10
	if u := tr.Utilization("n", 0, 10); math.Abs(u-1) > 1e-12 {
		t.Fatalf("cut-off utilization = %v, want 1", u)
	}
}

func TestGantt(t *testing.T) {
	tr := sampleTrace()
	g := tr.Gantt(16)
	if !strings.Contains(g, "gw") || !strings.Contains(g, "cloud") {
		t.Fatalf("gantt missing lanes:\n%s", g)
	}
	if !strings.Contains(g, "#") || !strings.Contains(g, ".") {
		t.Fatalf("gantt missing marks:\n%s", g)
	}
	if New(0).Gantt(10) != "" {
		t.Fatal("empty gantt not empty")
	}
}

func TestGanttPanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero width accepted")
		}
	}()
	sampleTrace().Gantt(0)
}

func TestJSONLRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tr.Len() {
		t.Fatalf("round trip %d != %d", back.Len(), tr.Len())
	}
	for i, e := range back.Events() {
		if e != tr.Events()[i] {
			t.Fatalf("event %d mismatch: %+v vs %+v", i, e, tr.Events()[i])
		}
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{oops")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestReadJSONLMalformedMidStream(t *testing.T) {
	// A valid line followed by a malformed one must error, not silently
	// truncate: partial traces would skew utilization analysis.
	var buf bytes.Buffer
	tr := New(0)
	tr.Record(1, TaskStart, "n", "a")
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	buf.WriteString(`{"t": "not-a-number"}` + "\n")
	if _, err := ReadJSONL(&buf); err == nil {
		t.Fatal("malformed mid-stream line accepted")
	}
}

func TestJSONLAttemptRoundTrip(t *testing.T) {
	tr := New(0)
	tr.RecordAttempt(0, TaskStart, "gw", "j", 0)
	tr.RecordAttempt(1, Failure, "gw", "j lost", 0)
	tr.RecordAttempt(2, TaskStart, "gw", "j", 1)
	tr.RecordAttempt(3, TaskEnd, "gw", "j", 1)
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	// Attempt 0 must be omitted from the wire form (old readers keep
	// working); non-zero attempts must survive the round trip.
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if strings.Contains(lines[0], "attempt") {
		t.Fatalf("attempt 0 serialized: %s", lines[0])
	}
	if !strings.Contains(lines[2], `"attempt":1`) {
		t.Fatalf("attempt 1 lost: %s", lines[2])
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range back.Events() {
		if e != tr.Events()[i] {
			t.Fatalf("event %d mismatch: %+v vs %+v", i, e, tr.Events()[i])
		}
	}
}

// TestGanttGoldenNarrow pins the exact rendering of a small fixed trace
// at a width too narrow to fit both axis labels — the regression case
// where the footer pad went negative and left-shifted the end label.
func TestGanttGoldenNarrow(t *testing.T) {
	tr := New(0)
	tr.Record(0, TaskStart, "gw", "a")
	tr.Record(8, TaskEnd, "gw", "a")
	got := tr.Gantt(4)
	want := "" +
		"gw |####|\n" +
		"    0.00s 8.00s\n"
	if got != want {
		t.Fatalf("golden mismatch:\ngot:\n%q\nwant:\n%q", got, want)
	}
	// Wide enough to fit both labels: hi right-aligns to the lane edge.
	got = tr.Gantt(16)
	want = "" +
		"gw |################|\n" +
		"    0.00s      8.00s\n"
	if got != want {
		t.Fatalf("golden mismatch (wide):\ngot:\n%q\nwant:\n%q", got, want)
	}
	// At any width the axis keeps both labels, in order, separated by at
	// least one space (the old negative pad glued or reordered them).
	for _, w := range []int{1, 2, 3, 5, 9, 12} {
		lines := strings.Split(strings.TrimRight(tr.Gantt(w), "\n"), "\n")
		if len(lines) != 2 {
			t.Fatalf("width %d: %d lines", w, len(lines))
		}
		if !strings.Contains(lines[1], "0.00s ") || !strings.HasSuffix(lines[1], "8.00s") {
			t.Fatalf("width %d: malformed axis %q", w, lines[1])
		}
	}
}
