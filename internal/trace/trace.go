// Package trace records simulation events for post-hoc analysis: what ran
// where and when, what moved, what failed. A Tracer costs nothing when
// absent (core's runners take it optionally) and renders timelines —
// per-node utilization and an ASCII Gantt chart — plus JSONL export for
// external tooling.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Kind classifies an event.
type Kind string

// Event kinds recorded by the built-in runners. Custom kinds are fine;
// analysis functions only interpret the Start/End pairs.
const (
	TaskStart     Kind = "task-start"
	TaskEnd       Kind = "task-end"
	TransferStart Kind = "xfer-start"
	TransferEnd   Kind = "xfer-end"
	StageStart    Kind = "stage-start"
	StageEnd      Kind = "stage-end"
	Dispatch      Kind = "dispatch"
	ScaleUp       Kind = "scale-up"
	ScaleDown     Kind = "scale-down"
	Failure       Kind = "failure"
	Repair        Kind = "repair"
	// Preempt marks a speculative replica whose result was discarded
	// because a sibling replica delivered first; Attempt identifies which
	// replica lost.
	Preempt Kind = "preempt"
	// Cordon/Uncordon mark scripted scheduling holds: a cordoned node
	// finishes in-flight work but receives nothing new (unlike Failure,
	// which loses in-flight attempts). Detail says "cordon" or "drain"
	// (drain also silences the node's own request generator).
	Cordon   Kind = "cordon"
	Uncordon Kind = "uncordon"
)

// Event is one timestamped record. Matched Start/End kinds form spans;
// Attempt carries retry attribution (0 = first attempt) so a retried
// task's spans are distinguishable in exported timelines.
type Event struct {
	Time    float64 `json:"t"`
	Kind    Kind    `json:"kind"`
	Entity  string  `json:"entity"` // node/link/pool name
	Detail  string  `json:"detail,omitempty"`
	Attempt int     `json:"attempt,omitempty"`
}

// Tracer accumulates events up to a bound (0 = unbounded). Overflow drops
// the newest events and sets Dropped, never the oldest (the run's start
// usually matters most when debugging).
type Tracer struct {
	limit   int
	events  []Event
	Dropped int64
}

// New returns a tracer retaining at most limit events (0 = unlimited).
func New(limit int) *Tracer {
	if limit < 0 {
		panic("trace: negative limit")
	}
	return &Tracer{limit: limit}
}

// Record appends an event on attempt 0.
func (t *Tracer) Record(time float64, kind Kind, entity, detail string) {
	t.RecordAttempt(time, kind, entity, detail, 0)
}

// RecordAttempt appends an event carrying retry attribution: attempt 0 is
// the first try, each re-dispatch increments it. Nil tracers discard
// everything at zero cost.
func (t *Tracer) RecordAttempt(time float64, kind Kind, entity, detail string, attempt int) {
	if t == nil {
		return
	}
	if t.limit > 0 && len(t.events) >= t.limit {
		t.Dropped++
		return
	}
	t.events = append(t.events, Event{Time: time, Kind: kind, Entity: entity, Detail: detail, Attempt: attempt})
}

// Len returns the number of retained events.
func (t *Tracer) Len() int { return len(t.events) }

// Events returns the retained events in record order (shared slice; do
// not mutate).
func (t *Tracer) Events() []Event { return t.events }

// Filter returns events of the given kind, preserving order.
func (t *Tracer) Filter(kind Kind) []Event {
	var out []Event
	for _, e := range t.events {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// Entities returns the sorted set of entity names seen.
func (t *Tracer) Entities() []string {
	seen := map[string]bool{}
	for _, e := range t.events {
		seen[e.Entity] = true
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Span returns the [min, max] event-time range (0,0 when empty).
func (t *Tracer) Span() (float64, float64) {
	if len(t.events) == 0 {
		return 0, 0
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, e := range t.events {
		if e.Time < lo {
			lo = e.Time
		}
		if e.Time > hi {
			hi = e.Time
		}
	}
	return lo, hi
}

// busyIntervals pairs TaskStart/TaskEnd events per entity. Unmatched
// starts extend to the trace end (the run was cut off).
func (t *Tracer) busyIntervals(entity string) [][2]float64 {
	_, end := t.Span()
	var out [][2]float64
	depth := 0
	start := 0.0
	for _, e := range t.events {
		if e.Entity != entity {
			continue
		}
		switch e.Kind {
		case TaskStart:
			if depth == 0 {
				start = e.Time
			}
			depth++
		case TaskEnd:
			if depth > 0 {
				depth--
				if depth == 0 {
					out = append(out, [2]float64{start, e.Time})
				}
			}
		}
	}
	if depth > 0 {
		out = append(out, [2]float64{start, end})
	}
	return out
}

// Utilization returns the fraction of [from, to] during which the entity
// had at least one task running.
func (t *Tracer) Utilization(entity string, from, to float64) float64 {
	if to <= from {
		return 0
	}
	busy := 0.0
	for _, iv := range t.busyIntervals(entity) {
		lo := math.Max(iv[0], from)
		hi := math.Min(iv[1], to)
		if hi > lo {
			busy += hi - lo
		}
	}
	return busy / (to - from)
}

// Gantt renders an ASCII busy-timeline, one lane per entity, width
// columns spanning the trace. '#' marks any-busy buckets.
func (t *Tracer) Gantt(width int) string {
	if width < 1 {
		panic("trace: Gantt width < 1")
	}
	lo, hi := t.Span()
	if hi <= lo {
		return ""
	}
	ents := t.Entities()
	nameW := 0
	for _, e := range ents {
		if len(e) > nameW {
			nameW = len(e)
		}
	}
	var b strings.Builder
	bucket := (hi - lo) / float64(width)
	for _, ent := range ents {
		ivs := t.busyIntervals(ent)
		if len(ivs) == 0 {
			continue
		}
		lane := make([]byte, width)
		for i := range lane {
			lane[i] = '.'
		}
		for _, iv := range ivs {
			s := int((iv[0] - lo) / bucket)
			e := int((iv[1] - lo) / bucket)
			if e >= width {
				e = width - 1
			}
			for i := s; i <= e; i++ {
				lane[i] = '#'
			}
		}
		fmt.Fprintf(&b, "%-*s |%s|\n", nameW, ent, lane)
	}
	// Time axis: lo left-aligned under the first lane column, hi
	// right-aligned under the last. When the width is too narrow to fit
	// both labels the pad clamps to a single space instead of going
	// negative (which used to left-shift hi and misalign the axis).
	loS, hiS := fmt.Sprintf("%.2fs", lo), fmt.Sprintf("%.2fs", hi)
	pad := width - len(loS) - len(hiS)
	if pad < 1 {
		pad = 1
	}
	fmt.Fprintf(&b, "%-*s  %s%s%s\n", nameW, "", loS, strings.Repeat(" ", pad), hiS)
	return b.String()
}

// WriteJSONL streams events as JSON lines.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range t.events {
		if err := enc.Encode(e); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
	}
	return bw.Flush()
}

// ReadJSONL loads events from JSON lines into a fresh unbounded tracer.
func ReadJSONL(r io.Reader) (*Tracer, error) {
	t := New(0)
	dec := json.NewDecoder(r)
	for {
		var e Event
		if err := dec.Decode(&e); err != nil {
			if err == io.EOF {
				return t, nil
			}
			return nil, fmt.Errorf("trace: %w", err)
		}
		t.events = append(t.events, e)
	}
}
