package autoscale

import (
	"testing"

	"continuum/internal/core"
	"continuum/internal/node"
	"continuum/internal/workload"
)

func poolConfig() Config {
	return Config{
		Min: 1, Max: 8,
		Template: node.Spec{
			Name: "worker", Class: node.Cloud,
			Cores: 2, CoreFlops: 1e9, MemBytes: 1 << 30,
			IdleWatts: 10, ActiveWattsCore: 5,
		},
		LinkLatency: 0.001, LinkCapacity: 1.25e9,
		ProvisionDelay: 2.0,
		DrainAfter:     5.0,
		QueuePerNode:   2,
	}
}

func newPool(t *testing.T, cfg Config) (*core.Continuum, *Pool) {
	t.Helper()
	c := core.New()
	hub := c.AddVertex()
	return c, NewPool(c, hub, cfg)
}

func TestPoolStartsAtMin(t *testing.T) {
	_, p := newPool(t, poolConfig())
	if p.Active() != 1 {
		t.Fatalf("Active = %d, want Min", p.Active())
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"min zero", func(c *Config) { c.Min = 0 }},
		{"max below min", func(c *Config) { c.Max = 0 }},
		{"negative provision", func(c *Config) { c.ProvisionDelay = -1 }},
		{"zero drain", func(c *Config) { c.DrainAfter = 0 }},
		{"zero trigger", func(c *Config) { c.QueuePerNode = 0 }},
		{"bad template", func(c *Config) { c.Template.Cores = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := poolConfig()
			tc.mutate(&cfg)
			if cfg.Validate() == nil {
				t.Errorf("%s accepted", tc.name)
			}
		})
	}
}

func TestSubmitCompletes(t *testing.T) {
	c, p := newPool(t, poolConfig())
	done := 0
	for i := 0; i < 5; i++ {
		p.Submit(1e9, 0, node.NoAccel, func() { done++ })
	}
	c.K.Run()
	if done != 5 {
		t.Fatalf("done = %d", done)
	}
	if p.Outstanding != 0 {
		t.Fatalf("Outstanding = %d", p.Outstanding)
	}
}

func TestBurstTriggersScaleUp(t *testing.T) {
	c, p := newPool(t, poolConfig())
	// 30 one-second tasks on a 2-core node: queue explodes past the
	// trigger; the pool must provision.
	for i := 0; i < 30; i++ {
		p.Submit(1e9, 0, node.NoAccel, nil)
	}
	c.K.Run()
	if p.ScaleUps == 0 || p.ColdProvisions == 0 {
		t.Fatalf("no scaling: ups=%d cold=%d", p.ScaleUps, p.ColdProvisions)
	}
	if p.Active() > poolConfig().Max {
		t.Fatalf("Active %d exceeds Max", p.Active())
	}
}

func TestScaleUpRespectsMax(t *testing.T) {
	cfg := poolConfig()
	cfg.Max = 2
	c, p := newPool(t, cfg)
	for i := 0; i < 100; i++ {
		p.Submit(1e9, 0, node.NoAccel, nil)
	}
	c.K.Run()
	if got := len(p.members); got > 2 {
		t.Fatalf("%d members, Max 2", got)
	}
}

func TestIdleNodesDrainToMin(t *testing.T) {
	c, p := newPool(t, poolConfig())
	for i := 0; i < 30; i++ {
		p.Submit(1e9, 0, node.NoAccel, nil)
	}
	c.K.Run() // all work done + drain timers fired
	if p.Active() != poolConfig().Min {
		t.Fatalf("Active = %d after drain, want Min=%d", p.Active(), poolConfig().Min)
	}
	if p.ScaleDowns == 0 {
		t.Fatal("no scale-downs recorded")
	}
}

func TestWarmReactivationAvoidsColdProvision(t *testing.T) {
	c, p := newPool(t, poolConfig())
	burst := func() {
		for i := 0; i < 30; i++ {
			p.Submit(1e9, 0, node.NoAccel, nil)
		}
	}
	burst()
	c.K.Run() // scale up cold, then drain to warm
	coldAfterFirst := p.ColdProvisions
	if coldAfterFirst == 0 {
		t.Fatal("first burst provisioned nothing")
	}
	burst()
	c.K.Run()
	// The second burst should reuse warm capacity before (or instead of)
	// cold-provisioning more.
	if p.ColdProvisions > coldAfterFirst+1 {
		t.Fatalf("second burst cold-provisioned %d more nodes despite warm pool",
			p.ColdProvisions-coldAfterFirst)
	}
}

func TestNodeSecondsAccrue(t *testing.T) {
	c, p := newPool(t, poolConfig())
	p.Submit(2e9, 0, node.NoAccel, nil) // 2s of work
	c.K.Run()
	ns := p.NodeSeconds()
	if ns <= 0 {
		t.Fatalf("NodeSeconds = %v", ns)
	}
	// At least the active node's lifetime (work + drain window).
	if ns < 2 {
		t.Fatalf("NodeSeconds = %v, want >= 2", ns)
	}
}

func TestAutoscaleVsStaticLatencyCostTradeoff(t *testing.T) {
	// A bursty workload: the autoscaled pool should deliver lower mean
	// latency than a static Min-sized fleet, at lower node-seconds than a
	// static Max-sized fleet.
	runPool := func(cfg Config) (meanLat, nodeSec float64) {
		c := core.New()
		hub := c.AddVertex()
		p := NewPool(c, hub, cfg)
		rng := workload.NewRNG(1)
		var total float64
		var count int
		t0 := 0.0
		for burst := 0; burst < 3; burst++ {
			for i := 0; i < 20; i++ {
				at := t0 + rng.Float64()
				c.K.At(at, func() {
					p.Submit(1e9, 0, node.NoAccel, func() {
						total += c.K.Now() - at
						count++
					})
				})
			}
			t0 += 60
		}
		c.K.Run()
		return total / float64(count), p.NodeSeconds()
	}

	elastic := poolConfig()
	staticSmall := poolConfig()
	staticSmall.Max = staticSmall.Min // no scaling
	staticBig := poolConfig()
	staticBig.Min, staticBig.Max = 8, 8

	eLat, eCost := runPool(elastic)
	sLat, _ := runPool(staticSmall)
	_, bCost := runPool(staticBig)

	if eLat >= sLat {
		t.Fatalf("elastic latency %v not below static-small %v", eLat, sLat)
	}
	if eCost >= bCost {
		t.Fatalf("elastic cost %v not below static-big %v", eCost, bCost)
	}
}
