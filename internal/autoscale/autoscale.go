// Package autoscale adds serverless-style elasticity to the simulated
// continuum: a Pool grows and shrinks a fleet of identical nodes behind a
// hub vertex, paying a provisioning delay for cold capacity and draining
// idle nodes after a grace period. It answers the cost/latency question
// bursty workloads pose — over-provision, under-provision, or scale — and
// powers the F8 experiment.
//
// The pool is event-driven: scaling decisions happen on submit and on
// completion, never on a free-running timer, so the simulation always
// terminates.
package autoscale

import (
	"fmt"

	"continuum/internal/core"
	"continuum/internal/node"
	"continuum/internal/sim"
	"continuum/internal/trace"
)

// Config parameterizes a pool.
type Config struct {
	// Min and Max bound the active fleet size.
	Min, Max int
	// Template is the spec every pool node instantiates (Name gets a
	// suffix).
	Template node.Spec
	// LinkLatency/LinkCapacity connect each node to the hub.
	LinkLatency, LinkCapacity float64
	// ProvisionDelay is the virtual time to bring up a cold node.
	ProvisionDelay float64
	// DrainAfter is how long a node must sit idle before deactivating.
	DrainAfter float64
	// QueuePerNode is the scale-up trigger: provision when total queued
	// tasks exceed QueuePerNode × active nodes.
	QueuePerNode int
}

// Validate reports the first problem.
func (c Config) Validate() error {
	switch {
	case c.Min < 1:
		return fmt.Errorf("autoscale: Min %d < 1", c.Min)
	case c.Max < c.Min:
		return fmt.Errorf("autoscale: Max %d < Min %d", c.Max, c.Min)
	case c.ProvisionDelay < 0 || c.DrainAfter <= 0:
		return fmt.Errorf("autoscale: delays must be positive")
	case c.QueuePerNode < 1:
		return fmt.Errorf("autoscale: QueuePerNode %d < 1", c.QueuePerNode)
	}
	return c.Template.Validate()
}

type member struct {
	n          *node.Node
	active     bool
	lastBusy   float64
	drainTimer sim.Timer
	// activeSince tracks the current activation for node-seconds billing.
	activeSince float64
	nodeSeconds float64
}

// Pool is an elastic fleet on a continuum.
type Pool struct {
	cont *core.Continuum
	hub  int
	cfg  Config

	members      []*member
	provisioning int

	// ScaleUps/ScaleDowns count transitions; ColdProvisions counts
	// brand-new nodes (vs reactivated warm ones).
	ScaleUps, ScaleDowns, ColdProvisions int64
	// Outstanding tracks submitted-but-incomplete tasks.
	Outstanding int64
}

// NewPool creates a pool attached to hub with Min nodes pre-provisioned
// (warm and active).
func NewPool(c *core.Continuum, hub int, cfg Config) *Pool {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	p := &Pool{cont: c, hub: hub, cfg: cfg}
	for i := 0; i < cfg.Min; i++ {
		p.addNode(true)
	}
	return p
}

// addNode instantiates a fresh node on the topology.
func (p *Pool) addNode(activate bool) *member {
	spec := p.cfg.Template
	spec.Name = fmt.Sprintf("%s-%d", spec.Name, len(p.members))
	n := p.cont.AddNode(spec)
	p.cont.Connect(n.ID, p.hub, p.cfg.LinkLatency, p.cfg.LinkCapacity)
	m := &member{n: n, active: activate, activeSince: p.cont.K.Now()}
	p.members = append(p.members, m)
	return m
}

// Active returns the number of active nodes.
func (p *Pool) Active() int {
	c := 0
	for _, m := range p.members {
		if m.active {
			c++
		}
	}
	return c
}

// NodeSeconds returns accumulated active node-time (the cost proxy).
func (p *Pool) NodeSeconds() float64 {
	now := p.cont.K.Now()
	total := 0.0
	for _, m := range p.members {
		total += m.nodeSeconds
		if m.active {
			total += now - m.activeSince
		}
	}
	return total
}

func (p *Pool) queuedTotal() int {
	q := 0
	for _, m := range p.members {
		if m.active {
			q += m.n.Cores.QueueLen()
		}
	}
	return q
}

// leastLoaded returns the active node with the smallest backlog.
func (p *Pool) leastLoaded() *member {
	var best *member
	bestScore := 0.0
	for _, m := range p.members {
		if !m.active {
			continue
		}
		score := float64(m.n.Cores.InUse()+int64(m.n.Cores.QueueLen())) / float64(m.n.Spec.Cores)
		if best == nil || score < bestScore {
			best, bestScore = m, score
		}
	}
	return best
}

// Submit places one task on the least-loaded active node and triggers a
// scaling decision. done may be nil.
func (p *Pool) Submit(scalarWork, tensorWork float64, kind node.AccelKind, done func()) {
	m := p.leastLoaded()
	if m == nil {
		panic("autoscale: no active nodes (Min >= 1 should prevent this)")
	}
	p.Outstanding++
	m.drainTimer.Cancel()
	m.lastBusy = p.cont.K.Now()
	p.cont.Tracer.Record(p.cont.K.Now(), trace.TaskStart, m.n.Name, "")
	m.n.Execute(scalarWork, tensorWork, kind, func() {
		p.Outstanding--
		m.lastBusy = p.cont.K.Now()
		p.cont.Tracer.Record(p.cont.K.Now(), trace.TaskEnd, m.n.Name, "")
		p.maybeScaleDown(m)
		if done != nil {
			done()
		}
	})
	p.maybeScaleUp()
}

// maybeScaleUp provisions capacity when the backlog per active node
// exceeds the trigger. Warm (deactivated) nodes reactivate instantly;
// otherwise a cold node arrives after ProvisionDelay.
func (p *Pool) maybeScaleUp() {
	active := p.Active()
	if active+p.provisioning >= p.cfg.Max {
		return
	}
	if p.queuedTotal() <= p.cfg.QueuePerNode*active {
		return
	}
	// Prefer a warm node.
	for _, m := range p.members {
		if !m.active {
			m.active = true
			m.activeSince = p.cont.K.Now()
			m.lastBusy = p.cont.K.Now()
			p.ScaleUps++
			p.cont.Tracer.Record(p.cont.K.Now(), trace.ScaleUp, m.n.Name, "warm")
			p.armDrain(m) // deactivate again if the burst never reaches it
			return
		}
	}
	// Cold provision.
	p.provisioning++
	p.ColdProvisions++
	p.cont.K.After(p.cfg.ProvisionDelay, func() {
		p.provisioning--
		m := p.addNode(true)
		p.ScaleUps++
		p.cont.Tracer.Record(p.cont.K.Now(), trace.ScaleUp, m.n.Name, "cold")
		p.armDrain(m) // a late arrival may find the burst already gone
	})
}

// armDrain starts m's idle countdown if none is pending.
func (p *Pool) armDrain(m *member) {
	if !m.active || m.drainTimer.Pending() {
		return
	}
	m.drainTimer = p.cont.K.After(p.cfg.DrainAfter, func() {
		if !m.active || p.Active() <= p.cfg.Min {
			return
		}
		if m.n.Cores.InUse() > 0 || m.n.Cores.QueueLen() > 0 {
			return
		}
		m.active = false
		m.nodeSeconds += p.cont.K.Now() - m.activeSince
		p.ScaleDowns++
		p.cont.Tracer.Record(p.cont.K.Now(), trace.ScaleDown, m.n.Name, "")
	})
}

// maybeScaleDown arms a drain timer on a node that just went idle; if it
// stays idle for DrainAfter and the fleet is above Min, it deactivates
// (stays warm for instant reactivation).
func (p *Pool) maybeScaleDown(m *member) {
	if m.n.Cores.InUse() > 0 || m.n.Cores.QueueLen() > 0 {
		return
	}
	p.armDrain(m)
}
