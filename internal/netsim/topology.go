package netsim

import "continuum/internal/sim"

// Topology builders for common experiment shapes. Each returns the network
// plus the ids of the vertices it created, so callers can attach node
// models to them.

// StarSpec parameterizes a star (hub-and-spoke) topology.
type StarSpec struct {
	Leaves       int
	LeafLatency  float64 // hub<->leaf one-way latency
	LeafCapacity float64 // per-direction capacity
}

// Star builds a hub with n leaves. It returns the hub id and leaf ids.
func Star(k *sim.Kernel, spec StarSpec) (*Network, int, []int) {
	n := New(k, spec.Leaves+1)
	hub := 0
	leaves := make([]int, spec.Leaves)
	for i := 0; i < spec.Leaves; i++ {
		leaves[i] = i + 1
		n.AddDuplexLink(hub, leaves[i], spec.LeafLatency, spec.LeafCapacity)
	}
	return n, hub, leaves
}

// DumbbellSpec parameterizes a dumbbell: two access stars joined by one
// shared bottleneck link.
type DumbbellSpec struct {
	LeftLeaves, RightLeaves int
	AccessLatency           float64
	AccessCapacity          float64
	BottleneckLatency       float64
	BottleneckCapacity      float64
}

// Dumbbell builds the classic congestion topology and returns left leaf
// ids, right leaf ids, and the two inner router ids.
func Dumbbell(k *sim.Kernel, spec DumbbellSpec) (net *Network, left, right []int, lRouter, rRouter int) {
	total := spec.LeftLeaves + spec.RightLeaves + 2
	n := New(k, total)
	lRouter, rRouter = 0, 1
	n.AddDuplexLink(lRouter, rRouter, spec.BottleneckLatency, spec.BottleneckCapacity)
	id := 2
	for i := 0; i < spec.LeftLeaves; i++ {
		n.AddDuplexLink(id, lRouter, spec.AccessLatency, spec.AccessCapacity)
		left = append(left, id)
		id++
	}
	for i := 0; i < spec.RightLeaves; i++ {
		n.AddDuplexLink(id, rRouter, spec.AccessLatency, spec.AccessCapacity)
		right = append(right, id)
		id++
	}
	return n, left, right, lRouter, rRouter
}

// ThreeTierSpec parameterizes the canonical continuum topology used by the
// placement experiments: sensors attach to gateways over a constrained
// wireless-ish hop; gateways attach to a metro fog/router; the metro core
// reaches the cloud over a WAN link with speed-of-light latency.
type ThreeTierSpec struct {
	Gateways          int
	SensorsPerGateway int

	SensorLatency  float64 // sensor<->gateway
	SensorCapacity float64
	MetroLatency   float64 // gateway<->metro core
	MetroCapacity  float64
	WANLatency     float64 // metro core<->cloud
	WANCapacity    float64
}

// ThreeTier builds the edge-to-cloud topology. Returned ids: sensors
// (grouped per gateway), gateways, the metro core vertex, and the cloud
// vertex.
func ThreeTier(k *sim.Kernel, spec ThreeTierSpec) (net *Network, sensors [][]int, gateways []int, core, cloud int) {
	total := spec.Gateways*spec.SensorsPerGateway + spec.Gateways + 2
	n := New(k, total)
	core = 0
	cloud = 1
	n.AddDuplexLink(core, cloud, spec.WANLatency, spec.WANCapacity)
	id := 2
	for g := 0; g < spec.Gateways; g++ {
		gw := id
		id++
		gateways = append(gateways, gw)
		n.AddDuplexLink(gw, core, spec.MetroLatency, spec.MetroCapacity)
		var group []int
		for s := 0; s < spec.SensorsPerGateway; s++ {
			sv := id
			id++
			n.AddDuplexLink(sv, gw, spec.SensorLatency, spec.SensorCapacity)
			group = append(group, sv)
		}
		sensors = append(sensors, group)
	}
	return n, sensors, gateways, core, cloud
}

// Line builds a chain of n vertices with identical hops, for propagation
// and multi-hop tests. It returns the vertex ids in order.
func Line(k *sim.Kernel, n int, hopLatency, capacity float64) (*Network, []int) {
	net := New(k, n)
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	for i := 0; i+1 < n; i++ {
		net.AddDuplexLink(i, i+1, hopLatency, capacity)
	}
	return net, ids
}
