// Package netsim is the network substrate of the continuum simulator: a
// directed topology of links with propagation latency (speed-of-light
// delays) and finite bandwidth, shortest-path routing, and flow-level
// transfer simulation with max-min fair bandwidth sharing (the standard
// flow-level model used by SimGrid-class simulators).
//
// Two transfer APIs are offered:
//
//   - Transfer: a long-lived flow that contends with other flows for link
//     bandwidth; rates are recomputed with progressive filling whenever any
//     flow starts or ends.
//   - Message: an analytic, uncontended small-message send (propagation +
//     size/bottleneck); appropriate for telemetry and control traffic whose
//     bandwidth footprint is negligible.
package netsim

import (
	"container/heap"
	"fmt"
	"math"

	"continuum/internal/sim"
)

// SpeedOfLightFiber is the propagation speed in optical fiber, km/s
// (roughly 2/3 of c in vacuum).
const SpeedOfLightFiber = 200000.0

// PropagationDelay returns the one-way fiber propagation delay for a
// distance in kilometers.
func PropagationDelay(km float64) float64 {
	return km / SpeedOfLightFiber
}

// Link is a directed edge with propagation latency and capacity.
type Link struct {
	ID       int
	From, To int
	Latency  float64 // one-way propagation, seconds
	Capacity float64 // bytes/second

	flows map[*Flow]struct{}

	// BytesCarried accumulates delivered bytes for accounting (egress
	// billing, WAN savings experiments).
	BytesCarried float64
}

// Network is a topology bound to a simulation kernel.
type Network struct {
	k     *sim.Kernel
	adj   [][]*Link
	links []*Link

	active map[*Flow]struct{}

	// spt caches the shortest-path tree per source; invalidated whenever
	// the topology changes. Routing is latency-static, so caching is exact.
	spt map[int]*spTree

	// Transfers counts completed Transfer flows; Messages counts Message
	// sends.
	Transfers, Messages int64
}

type spTree struct {
	dist []float64
	prev []*Link
}

// New creates a network with n nodes and no links.
func New(k *sim.Kernel, n int) *Network {
	if n < 0 {
		panic("netsim: negative node count")
	}
	return &Network{
		k:      k,
		adj:    make([][]*Link, n),
		active: make(map[*Flow]struct{}),
		spt:    make(map[int]*spTree),
	}
}

// Kernel returns the simulation kernel.
func (n *Network) Kernel() *sim.Kernel { return n.k }

// NumNodes returns the number of topology vertices.
func (n *Network) NumNodes() int { return len(n.adj) }

// NumLinks returns the number of directed links.
func (n *Network) NumLinks() int { return len(n.links) }

// AddNode appends a vertex and returns its id.
func (n *Network) AddNode() int {
	n.adj = append(n.adj, nil)
	clear(n.spt)
	return len(n.adj) - 1
}

// AddLink adds a directed link and returns it. Latency must be >= 0 and
// capacity > 0.
func (n *Network) AddLink(from, to int, latency, capacity float64) *Link {
	n.checkNode(from)
	n.checkNode(to)
	if latency < 0 {
		panic(fmt.Sprintf("netsim: negative latency %v", latency))
	}
	if capacity <= 0 {
		panic(fmt.Sprintf("netsim: capacity %v <= 0", capacity))
	}
	l := &Link{
		ID: len(n.links), From: from, To: to,
		Latency: latency, Capacity: capacity,
		flows: make(map[*Flow]struct{}),
	}
	n.links = append(n.links, l)
	n.adj[from] = append(n.adj[from], l)
	clear(n.spt)
	return l
}

// AddDuplexLink adds a pair of directed links (one each way) with the same
// latency and per-direction capacity, returning both.
func (n *Network) AddDuplexLink(a, b int, latency, capacity float64) (ab, ba *Link) {
	return n.AddLink(a, b, latency, capacity), n.AddLink(b, a, latency, capacity)
}

// Links returns all directed links (shared slice; do not mutate).
func (n *Network) Links() []*Link { return n.links }

// SetLinkParams retunes a link's latency and capacity mid-simulation
// (scenario link-degradation events). Routing is latency-based, so the
// shortest-path cache is invalidated; flows already crossing the link
// keep their negotiated rates until the next flow event recomputes them,
// matching how a real router change affects in-flight traffic.
func (n *Network) SetLinkParams(l *Link, latency, capacity float64) {
	if latency < 0 {
		panic(fmt.Sprintf("netsim: negative latency %v", latency))
	}
	if capacity <= 0 {
		panic(fmt.Sprintf("netsim: capacity %v <= 0", capacity))
	}
	l.Latency = latency
	l.Capacity = capacity
	clear(n.spt)
}

func (n *Network) checkNode(id int) {
	if id < 0 || id >= len(n.adj) {
		panic(fmt.Sprintf("netsim: node %d out of range [0,%d)", id, len(n.adj)))
	}
}

// Path returns the minimum-latency link path from a to b, or an error if b
// is unreachable. Same-node paths are empty and nil error.
func (n *Network) Path(a, b int) ([]*Link, error) {
	n.checkNode(a)
	n.checkNode(b)
	if a == b {
		return nil, nil
	}
	tree, ok := n.spt[a]
	if !ok {
		dist, prev := n.dijkstra(a)
		tree = &spTree{dist: dist, prev: prev}
		n.spt[a] = tree
	}
	dist, prev := tree.dist, tree.prev
	if math.IsInf(dist[b], 1) {
		return nil, fmt.Errorf("netsim: node %d unreachable from %d", b, a)
	}
	var path []*Link
	for at := b; at != a; {
		l := prev[at]
		path = append(path, l)
		at = l.From
	}
	// Reverse into forward order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, nil
}

// Latency returns the one-way minimum propagation latency from a to b, or
// +Inf if unreachable.
func (n *Network) Latency(a, b int) float64 {
	if a == b {
		return 0
	}
	path, err := n.Path(a, b)
	if err != nil {
		return math.Inf(1)
	}
	return pathLatency(path)
}

// RTT returns the round-trip latency between a and b.
func (n *Network) RTT(a, b int) float64 {
	return n.Latency(a, b) + n.Latency(b, a)
}

// Bottleneck returns the minimum link capacity along the minimum-latency
// path from a to b, +Inf for a == b, and 0 if unreachable.
func (n *Network) Bottleneck(a, b int) float64 {
	if a == b {
		return math.Inf(1)
	}
	path, err := n.Path(a, b)
	if err != nil {
		return 0
	}
	bn := math.Inf(1)
	for _, l := range path {
		if l.Capacity < bn {
			bn = l.Capacity
		}
	}
	return bn
}

func pathLatency(path []*Link) float64 {
	sum := 0.0
	for _, l := range path {
		sum += l.Latency
	}
	return sum
}

// dijkstra computes latency-shortest paths from src, returning the distance
// array and the incoming link for each reached vertex.
func (n *Network) dijkstra(src int) ([]float64, []*Link) {
	dist := make([]float64, len(n.adj))
	prev := make([]*Link, len(n.adj))
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	pq := &nodeHeap{{src, 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(nodeDist)
		if it.d > dist[it.id] {
			continue
		}
		for _, l := range n.adj[it.id] {
			nd := it.d + l.Latency
			if nd < dist[l.To] {
				dist[l.To] = nd
				prev[l.To] = l
				heap.Push(pq, nodeDist{l.To, nd})
			}
		}
	}
	return dist, prev
}

type nodeDist struct {
	id int
	d  float64
}

type nodeHeap []nodeDist

func (h nodeHeap) Len() int           { return len(h) }
func (h nodeHeap) Less(i, j int) bool { return h[i].d < h[j].d }
func (h nodeHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x any)        { *h = append(*h, x.(nodeDist)) }
func (h *nodeHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Message schedules fn after the uncontended delivery time of a size-byte
// message from a to b: path propagation plus size/bottleneck transmission.
// It panics if b is unreachable (callers route over connected topologies).
func (n *Network) Message(a, b int, size float64, fn func()) {
	if size < 0 {
		panic(fmt.Sprintf("netsim: negative message size %v", size))
	}
	n.Messages++
	if a == b {
		n.k.After(0, fn)
		return
	}
	path, err := n.Path(a, b)
	if err != nil {
		panic(err)
	}
	d := pathLatency(path)
	bn := math.Inf(1)
	for _, l := range path {
		if l.Capacity < bn {
			bn = l.Capacity
		}
		l.BytesCarried += size
	}
	if size > 0 && !math.IsInf(bn, 1) {
		d += size / bn
	}
	n.k.After(d, fn)
}

// MessageTime returns the uncontended delivery time Message would use,
// without sending anything. It returns +Inf if unreachable.
func (n *Network) MessageTime(a, b int, size float64) float64 {
	if a == b {
		return 0
	}
	path, err := n.Path(a, b)
	if err != nil {
		return math.Inf(1)
	}
	d := pathLatency(path)
	bn := math.Inf(1)
	for _, l := range path {
		if l.Capacity < bn {
			bn = l.Capacity
		}
	}
	if size > 0 && !math.IsInf(bn, 1) {
		d += size / bn
	}
	return d
}
