package netsim

import (
	"math"
	"testing"

	"continuum/internal/sim"
)

// TestSetLinkParamsReroutes: degrading a link must invalidate the cached
// shortest-path trees so traffic reroutes, and restoring it must bring
// the original path back.
func TestSetLinkParamsReroutes(t *testing.T) {
	k := sim.NewKernel()
	n := New(k, 3)
	// Two routes 0->2: direct (5ms) and via 1 (2x 4ms = 8ms).
	direct, _ := n.AddDuplexLink(0, 2, 0.005, 1e9)
	n.AddDuplexLink(0, 1, 0.004, 1e9)
	n.AddDuplexLink(1, 2, 0.004, 1e9)

	if lat := n.Latency(0, 2); math.Abs(lat-0.005) > 1e-12 {
		t.Fatalf("baseline latency %v, want direct 5ms", lat)
	}

	// 10x degradation: direct becomes 50ms, the 8ms detour must win. This
	// only happens if SetLinkParams drops the cached SPT.
	n.SetLinkParams(direct, 0.050, 1e8)
	if lat := n.Latency(0, 2); math.Abs(lat-0.008) > 1e-12 {
		t.Fatalf("latency after degrade %v, want rerouted 8ms", lat)
	}
	if direct.Latency != 0.050 || direct.Capacity != 1e8 {
		t.Fatalf("link params not applied: %+v", direct)
	}

	n.SetLinkParams(direct, 0.005, 1e9)
	if lat := n.Latency(0, 2); math.Abs(lat-0.005) > 1e-12 {
		t.Fatalf("latency after restore %v, want direct 5ms again", lat)
	}
}

func TestSetLinkParamsPanicsOnBadValues(t *testing.T) {
	k := sim.NewKernel()
	n := New(k, 2)
	l, _ := n.AddDuplexLink(0, 1, 0.001, 1e9)
	for name, fn := range map[string]func(){
		"negative latency": func() { n.SetLinkParams(l, -1, 1e9) },
		"zero capacity":    func() { n.SetLinkParams(l, 0.001, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
