package netsim

import (
	"math"
	"testing"
	"testing/quick"

	"continuum/internal/sim"
	"continuum/internal/workload"
)

func TestPropagationDelay(t *testing.T) {
	// 200,000 km of fiber: 1 second.
	if d := PropagationDelay(200000); math.Abs(d-1) > 1e-12 {
		t.Fatalf("PropagationDelay = %v, want 1", d)
	}
	// Chicago to Amsterdam ~6600 km: ~33 ms one way.
	if d := PropagationDelay(6600); d < 0.03 || d > 0.04 {
		t.Fatalf("transatlantic delay = %v, want ~33ms", d)
	}
}

func TestAddNodesAndLinks(t *testing.T) {
	k := sim.NewKernel()
	n := New(k, 2)
	if n.NumNodes() != 2 {
		t.Fatalf("NumNodes = %d", n.NumNodes())
	}
	id := n.AddNode()
	if id != 2 || n.NumNodes() != 3 {
		t.Fatalf("AddNode -> %d, NumNodes = %d", id, n.NumNodes())
	}
	n.AddDuplexLink(0, 1, 0.001, 1e9)
	if n.NumLinks() != 2 {
		t.Fatalf("NumLinks = %d, want 2", n.NumLinks())
	}
}

func TestBadTopologyPanics(t *testing.T) {
	k := sim.NewKernel()
	cases := []struct {
		name string
		fn   func()
	}{
		{"negative nodes", func() { New(k, -1) }},
		{"link out of range", func() { New(k, 1).AddLink(0, 5, 0, 1) }},
		{"negative latency", func() { New(k, 2).AddLink(0, 1, -1, 1) }},
		{"zero capacity", func() { New(k, 2).AddLink(0, 1, 0, 0) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", tc.name)
				}
			}()
			tc.fn()
		})
	}
}

func TestPathShortestByLatency(t *testing.T) {
	k := sim.NewKernel()
	n := New(k, 4)
	// 0 -> 1 -> 3 with total latency 2; 0 -> 2 -> 3 with total latency 10.
	n.AddLink(0, 1, 1, 1e9)
	n.AddLink(1, 3, 1, 1e9)
	n.AddLink(0, 2, 5, 1e9)
	n.AddLink(2, 3, 5, 1e9)
	path, err := n.Path(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 2 || path[0].To != 1 || path[1].To != 3 {
		t.Fatalf("path = %+v, want via node 1", path)
	}
	if lat := n.Latency(0, 3); math.Abs(lat-2) > 1e-12 {
		t.Fatalf("Latency = %v, want 2", lat)
	}
}

func TestPathSameNode(t *testing.T) {
	k := sim.NewKernel()
	n := New(k, 2)
	path, err := n.Path(1, 1)
	if err != nil || path != nil {
		t.Fatalf("same-node path = %v, %v", path, err)
	}
	if n.Latency(1, 1) != 0 {
		t.Fatal("same-node latency != 0")
	}
}

func TestPathUnreachable(t *testing.T) {
	k := sim.NewKernel()
	n := New(k, 3)
	n.AddLink(0, 1, 1, 1e9)
	if _, err := n.Path(0, 2); err == nil {
		t.Fatal("unreachable node returned nil error")
	}
	if !math.IsInf(n.Latency(0, 2), 1) {
		t.Fatal("unreachable latency != +Inf")
	}
	if n.Bottleneck(0, 2) != 0 {
		t.Fatal("unreachable bottleneck != 0")
	}
}

func TestRouteCacheInvalidation(t *testing.T) {
	k := sim.NewKernel()
	n := New(k, 3)
	n.AddLink(0, 1, 10, 1e9)
	n.AddLink(1, 2, 10, 1e9)
	if lat := n.Latency(0, 2); math.Abs(lat-20) > 1e-12 {
		t.Fatalf("Latency = %v, want 20", lat)
	}
	// Adding a faster direct link must invalidate the cached route.
	n.AddLink(0, 2, 1, 1e9)
	if lat := n.Latency(0, 2); math.Abs(lat-1) > 1e-12 {
		t.Fatalf("Latency after new link = %v, want 1", lat)
	}
}

func TestRTTAsymmetric(t *testing.T) {
	k := sim.NewKernel()
	n := New(k, 2)
	n.AddLink(0, 1, 1, 1e9)
	n.AddLink(1, 0, 3, 1e9)
	if rtt := n.RTT(0, 1); math.Abs(rtt-4) > 1e-12 {
		t.Fatalf("RTT = %v, want 4", rtt)
	}
}

func TestBottleneck(t *testing.T) {
	k := sim.NewKernel()
	n := New(k, 3)
	n.AddLink(0, 1, 1, 1e9)
	n.AddLink(1, 2, 1, 1e6)
	if bn := n.Bottleneck(0, 2); bn != 1e6 {
		t.Fatalf("Bottleneck = %v, want 1e6", bn)
	}
	if !math.IsInf(n.Bottleneck(1, 1), 1) {
		t.Fatal("same-node bottleneck != +Inf")
	}
}

func TestMessageDeliveryTime(t *testing.T) {
	k := sim.NewKernel()
	n := New(k, 2)
	n.AddLink(0, 1, 0.010, 1e6) // 10ms + 1MB/s
	var at float64 = -1
	n.Message(0, 1, 1e6, func() { at = k.Now() })
	k.Run()
	// 10ms propagation + 1s transmission
	if math.Abs(at-1.010) > 1e-9 {
		t.Fatalf("message delivered at %v, want 1.010", at)
	}
	if n.Messages != 1 {
		t.Fatalf("Messages = %d", n.Messages)
	}
}

func TestMessageSameNodeImmediate(t *testing.T) {
	k := sim.NewKernel()
	n := New(k, 1)
	var at float64 = -1
	n.Message(0, 0, 1e9, func() { at = k.Now() })
	k.Run()
	if at != 0 {
		t.Fatalf("same-node message at %v, want 0", at)
	}
}

func TestMessageTimeMatchesMessage(t *testing.T) {
	k := sim.NewKernel()
	n := New(k, 3)
	n.AddLink(0, 1, 0.005, 1e7)
	n.AddLink(1, 2, 0.005, 1e6)
	want := n.MessageTime(0, 2, 5e5)
	var at float64 = -1
	n.Message(0, 2, 5e5, func() { at = k.Now() })
	k.Run()
	if math.Abs(at-want) > 1e-12 {
		t.Fatalf("Message at %v, MessageTime %v", at, want)
	}
	// Expected: 10ms prop + 5e5/1e6 = 0.51s
	if math.Abs(want-0.51) > 1e-9 {
		t.Fatalf("MessageTime = %v, want 0.51", want)
	}
}

func TestStarTopology(t *testing.T) {
	k := sim.NewKernel()
	n, hub, leaves := Star(k, StarSpec{Leaves: 5, LeafLatency: 0.001, LeafCapacity: 1e9})
	if len(leaves) != 5 || n.NumNodes() != 6 {
		t.Fatalf("star shape wrong: %d leaves, %d nodes", len(leaves), n.NumNodes())
	}
	// Leaf to leaf goes through the hub: 2ms.
	if lat := n.Latency(leaves[0], leaves[4]); math.Abs(lat-0.002) > 1e-12 {
		t.Fatalf("leaf-leaf latency = %v", lat)
	}
	if lat := n.Latency(hub, leaves[0]); math.Abs(lat-0.001) > 1e-12 {
		t.Fatalf("hub-leaf latency = %v", lat)
	}
}

func TestThreeTierTopology(t *testing.T) {
	k := sim.NewKernel()
	n, sensors, gateways, core, cloud := ThreeTier(k, ThreeTierSpec{
		Gateways: 3, SensorsPerGateway: 4,
		SensorLatency: 0.002, SensorCapacity: 1e6,
		MetroLatency: 0.005, MetroCapacity: 1e8,
		WANLatency: 0.040, WANCapacity: 1e9,
	})
	if len(gateways) != 3 || len(sensors) != 3 || len(sensors[0]) != 4 {
		t.Fatal("three-tier shape wrong")
	}
	if n.NumNodes() != 3*4+3+2 {
		t.Fatalf("NumNodes = %d", n.NumNodes())
	}
	// Sensor to cloud: 2 + 5 + 40 ms.
	lat := n.Latency(sensors[0][0], cloud)
	if math.Abs(lat-0.047) > 1e-12 {
		t.Fatalf("sensor->cloud latency = %v, want 0.047", lat)
	}
	// Sensor to its own gateway is the cheap hop.
	if lat := n.Latency(sensors[1][2], gateways[1]); math.Abs(lat-0.002) > 1e-12 {
		t.Fatalf("sensor->gateway latency = %v", lat)
	}
	if core == cloud {
		t.Fatal("core and cloud ids collide")
	}
}

func TestLineTopology(t *testing.T) {
	k := sim.NewKernel()
	n, ids := Line(k, 5, 0.01, 1e9)
	if len(ids) != 5 {
		t.Fatal("line ids wrong")
	}
	if lat := n.Latency(ids[0], ids[4]); math.Abs(lat-0.04) > 1e-12 {
		t.Fatalf("end-to-end latency = %v, want 0.04", lat)
	}
}

// Property: latency satisfies the triangle inequality over shortest paths
// (routing optimality), on random connected graphs.
func TestPropertyShortestPathTriangle(t *testing.T) {
	f := func(seed uint64) bool {
		rng := workload.NewRNG(seed)
		k := sim.NewKernel()
		const nn = 12
		n := New(k, nn)
		// Ring for connectivity plus random chords.
		for i := 0; i < nn; i++ {
			n.AddDuplexLink(i, (i+1)%nn, rng.Range(0.001, 0.02), 1e9)
		}
		for i := 0; i < 8; i++ {
			a, b := rng.Intn(nn), rng.Intn(nn)
			if a != b {
				n.AddDuplexLink(a, b, rng.Range(0.001, 0.02), 1e9)
			}
		}
		for trial := 0; trial < 20; trial++ {
			a, b, c := rng.Intn(nn), rng.Intn(nn), rng.Intn(nn)
			if n.Latency(a, c) > n.Latency(a, b)+n.Latency(b, c)+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
