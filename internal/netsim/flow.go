package netsim

import (
	"fmt"
	"math"

	"continuum/internal/sim"
)

// Flow is an in-progress bulk transfer sharing link bandwidth with other
// flows. Rates follow max-min fairness, recomputed by progressive filling
// whenever any flow starts or completes.
type Flow struct {
	From, To int
	path     []*Link

	remaining  float64 // bytes left to deliver
	rate       float64 // current allocated bytes/sec
	lastUpdate float64 // virtual time of last remaining/rate update

	timer sim.Timer // pending completion event
	done  func(*Flow)
	net   *Network

	// Start and Finish record flow lifetime; Finish is zero until complete.
	Start, Finish float64
	// Size is the original transfer size in bytes.
	Size float64
}

// Rate returns the flow's current allocated bandwidth in bytes/sec.
func (f *Flow) Rate() float64 { return f.rate }

// Remaining returns bytes left (as of the last reallocation event).
func (f *Flow) Remaining() float64 { return f.remaining }

// Transfer starts a bulk transfer of size bytes from a to b. The flow
// becomes bandwidth-active after the path propagation delay; done (may be
// nil) fires when the last byte is delivered. Same-node transfers complete
// immediately. Transfer panics if b is unreachable or size is negative.
func (n *Network) Transfer(a, b int, size float64, done func(*Flow)) *Flow {
	if size < 0 {
		panic(fmt.Sprintf("netsim: negative transfer size %v", size))
	}
	f := &Flow{From: a, To: b, Size: size, remaining: size, net: n, done: done, Start: n.k.Now()}
	if a == b || size == 0 {
		n.k.After(0, func() { f.complete() })
		return f
	}
	path, err := n.Path(a, b)
	if err != nil {
		panic(err)
	}
	f.path = path
	prop := pathLatency(path)
	// The flow joins bandwidth contention after propagation: the pipe fills,
	// then bytes drain at the fair-shared rate.
	n.k.After(prop, func() {
		f.lastUpdate = n.k.Now()
		n.active[f] = struct{}{}
		for _, l := range f.path {
			l.flows[f] = struct{}{}
		}
		n.reallocate()
	})
	return f
}

func (f *Flow) complete() {
	f.Finish = f.net.k.Now()
	f.net.Transfers++
	for _, l := range f.path {
		l.BytesCarried += f.Size
	}
	if f.done != nil {
		f.done(f)
	}
}

// advance charges progress since lastUpdate against remaining bytes.
func (f *Flow) advance(now float64) {
	f.remaining -= f.rate * (now - f.lastUpdate)
	if f.remaining < 0 {
		f.remaining = 0
	}
	f.lastUpdate = now
}

// reallocate recomputes max-min fair rates for all active flows
// (progressive filling) and reschedules completion events. Called whenever
// a flow joins or leaves.
func (n *Network) reallocate() {
	now := n.k.Now()
	for f := range n.active {
		f.advance(now)
		f.timer.Cancel()
		f.timer = sim.Timer{}
	}

	// Progressive filling: repeatedly saturate the tightest link.
	avail := make(map[*Link]float64)
	count := make(map[*Link]int) // unfrozen flows per link
	for f := range n.active {
		f.rate = -1 // unfrozen marker
		for _, l := range f.path {
			count[l]++
			avail[l] = l.Capacity
		}
	}
	unfrozen := len(n.active)
	for unfrozen > 0 {
		// Find the bottleneck: link minimizing avail/count over links with
		// unfrozen flows.
		var bottleneck *Link
		best := math.Inf(1)
		for l, c := range count {
			if c == 0 {
				continue
			}
			if share := avail[l] / float64(c); share < best {
				best = share
				bottleneck = l
			}
		}
		if bottleneck == nil {
			break
		}
		// Freeze every unfrozen flow through the bottleneck at the fair
		// share; charge its rate to all its links.
		for f := range bottleneck.flows {
			if f.rate >= 0 {
				continue
			}
			f.rate = best
			unfrozen--
			for _, l := range f.path {
				avail[l] -= best
				if avail[l] < 0 {
					avail[l] = 0
				}
				count[l]--
			}
		}
	}

	// Schedule completions at the new rates.
	for f := range n.active {
		if f.rate <= 0 {
			// Degenerate (should not happen on positive-capacity links);
			// avoid scheduling at +Inf.
			continue
		}
		eta := f.remaining / f.rate
		f.timer = n.k.After(eta, func(f *Flow) func() {
			return func() { n.finishFlow(f) }
		}(f))
	}
}

func (n *Network) finishFlow(f *Flow) {
	f.advance(n.k.Now())
	delete(n.active, f)
	for _, l := range f.path {
		delete(l.flows, f)
	}
	f.timer = sim.Timer{}
	f.rate = 0
	// Don't double-count bytes: complete() adds Size once.
	f.complete()
	n.reallocate()
}

// ActiveFlows returns the number of in-flight transfers (past propagation).
func (n *Network) ActiveFlows() int { return len(n.active) }

// TransferTime returns the uncontended time a size-byte transfer from a to
// b would take (propagation + size/bottleneck), without starting one.
// It returns +Inf if unreachable.
func (n *Network) TransferTime(a, b int, size float64) float64 {
	return n.MessageTime(a, b, size)
}
