package netsim

import (
	"math"
	"testing"
	"testing/quick"

	"continuum/internal/sim"
	"continuum/internal/workload"
)

func twoNode(capacity float64) (*sim.Kernel, *Network) {
	k := sim.NewKernel()
	n := New(k, 2)
	n.AddDuplexLink(0, 1, 0.010, capacity)
	return k, n
}

func TestSingleFlowTime(t *testing.T) {
	k, n := twoNode(1e6) // 1 MB/s, 10ms prop
	var at float64 = -1
	n.Transfer(0, 1, 2e6, func(*Flow) { at = k.Now() })
	k.Run()
	// 10ms prop + 2s transmission
	if math.Abs(at-2.010) > 1e-9 {
		t.Fatalf("flow finished at %v, want 2.010", at)
	}
	if n.Transfers != 1 {
		t.Fatalf("Transfers = %d", n.Transfers)
	}
}

func TestTwoFlowsShareFairly(t *testing.T) {
	k, n := twoNode(1e6)
	var t1, t2 float64
	n.Transfer(0, 1, 1e6, func(*Flow) { t1 = k.Now() })
	n.Transfer(0, 1, 1e6, func(*Flow) { t2 = k.Now() })
	k.Run()
	// Equal flows share the link: each sees ~0.5 MB/s, both finish at
	// ~10ms + 2s.
	if math.Abs(t1-2.010) > 1e-6 || math.Abs(t2-2.010) > 1e-6 {
		t.Fatalf("finish times %v, %v; want both ~2.010", t1, t2)
	}
}

func TestShortFlowThenLongCompletes(t *testing.T) {
	k, n := twoNode(1e6)
	var tShort, tLong float64
	n.Transfer(0, 1, 1e6, func(*Flow) { tShort = k.Now() })
	n.Transfer(0, 1, 3e6, func(*Flow) { tLong = k.Now() })
	k.Run()
	// Shared until the short one finishes: short delivers 1MB at 0.5MB/s =
	// 2s (+10ms). Long then has 2MB left at full 1MB/s: 2s more.
	if math.Abs(tShort-2.010) > 1e-6 {
		t.Fatalf("short flow at %v, want 2.010", tShort)
	}
	if math.Abs(tLong-4.010) > 1e-6 {
		t.Fatalf("long flow at %v, want 4.010", tLong)
	}
}

func TestFlowJoinsMidway(t *testing.T) {
	k, n := twoNode(1e6)
	var tA, tB float64
	n.Transfer(0, 1, 2e6, func(*Flow) { tA = k.Now() })
	k.At(1.010, func() {
		n.Transfer(0, 1, 1e6, func(*Flow) { tB = k.Now() })
	})
	k.Run()
	// A runs alone for 1s (1MB done), then shares: A has 1MB left at
	// 0.5MB/s -> finishes at ~3.01 (plus B's 10ms join offset shifts
	// sharing slightly). B: starts flowing at 1.02, 1MB at 0.5 MB/s while
	// A is active.
	if tA < 2.9 || tA > 3.1 {
		t.Fatalf("A finished at %v, want ~3.0", tA)
	}
	if tB < 2.9 || tB > 3.15 {
		t.Fatalf("B finished at %v, want ~3.0", tB)
	}
}

func TestDisjointFlowsDoNotInterfere(t *testing.T) {
	k := sim.NewKernel()
	n := New(k, 4)
	n.AddLink(0, 1, 0.010, 1e6)
	n.AddLink(2, 3, 0.010, 1e6)
	var t1, t2 float64
	n.Transfer(0, 1, 1e6, func(*Flow) { t1 = k.Now() })
	n.Transfer(2, 3, 1e6, func(*Flow) { t2 = k.Now() })
	k.Run()
	if math.Abs(t1-1.010) > 1e-6 || math.Abs(t2-1.010) > 1e-6 {
		t.Fatalf("disjoint flows at %v, %v; want both 1.010", t1, t2)
	}
}

func TestDumbbellBottleneckSharing(t *testing.T) {
	k := sim.NewKernel()
	n, left, right, _, _ := Dumbbell(k, DumbbellSpec{
		LeftLeaves: 2, RightLeaves: 2,
		AccessLatency: 0.001, AccessCapacity: 1e9,
		BottleneckLatency: 0.010, BottleneckCapacity: 1e6,
	})
	var done []float64
	for i := 0; i < 2; i++ {
		n.Transfer(left[i], right[i], 1e6, func(*Flow) { done = append(done, k.Now()) })
	}
	k.Run()
	// Both cross the 1MB/s bottleneck: each ~0.5MB/s, ~2s + 12ms prop.
	for _, d := range done {
		if d < 2.0 || d > 2.1 {
			t.Fatalf("bottleneck-shared finish = %v, want ~2.01", d)
		}
	}
}

func TestMaxMinUnevenPaths(t *testing.T) {
	// Flow X uses links L1+L2; flow Y uses only L2 (capacity 1 MB/s);
	// flow Z uses only L1 (capacity 10 MB/s). Max-min: X and Y split L2
	// (0.5 each); Z gets L1's remainder 9.5.
	k := sim.NewKernel()
	n := New(k, 3)
	n.AddLink(0, 1, 0, 1e7) // L1
	n.AddLink(1, 2, 0, 1e6) // L2
	fx := n.Transfer(0, 2, 1e9, nil)
	fy := n.Transfer(1, 2, 1e9, nil)
	fz := n.Transfer(0, 1, 1e9, nil)
	k.RunUntil(0.001) // let flows activate
	if math.Abs(fx.Rate()-5e5) > 1 {
		t.Fatalf("X rate = %v, want 5e5", fx.Rate())
	}
	if math.Abs(fy.Rate()-5e5) > 1 {
		t.Fatalf("Y rate = %v, want 5e5", fy.Rate())
	}
	if math.Abs(fz.Rate()-9.5e6) > 1 {
		t.Fatalf("Z rate = %v, want 9.5e6", fz.Rate())
	}
}

func TestSameNodeTransferImmediate(t *testing.T) {
	k := sim.NewKernel()
	n := New(k, 1)
	var at float64 = -1
	n.Transfer(0, 0, 1e12, func(*Flow) { at = k.Now() })
	k.Run()
	if at != 0 {
		t.Fatalf("same-node transfer at %v, want 0", at)
	}
}

func TestZeroSizeTransfer(t *testing.T) {
	k, n := twoNode(1e6)
	fired := false
	n.Transfer(0, 1, 0, func(*Flow) { fired = true })
	k.Run()
	if !fired {
		t.Fatal("zero-size transfer never completed")
	}
}

func TestBytesCarriedAccounting(t *testing.T) {
	k, n := twoNode(1e6)
	n.Transfer(0, 1, 5e5, nil)
	n.Message(0, 1, 100, func() {})
	k.Run()
	var forward *Link
	for _, l := range n.Links() {
		if l.From == 0 && l.To == 1 {
			forward = l
		}
	}
	if math.Abs(forward.BytesCarried-(5e5+100)) > 1e-9 {
		t.Fatalf("BytesCarried = %v, want 500100", forward.BytesCarried)
	}
}

func TestActiveFlowsGauge(t *testing.T) {
	k, n := twoNode(1e6)
	n.Transfer(0, 1, 1e6, nil)
	if n.ActiveFlows() != 0 {
		t.Fatal("flow active before propagation completes")
	}
	k.RunUntil(0.5)
	if n.ActiveFlows() != 1 {
		t.Fatalf("ActiveFlows = %d mid-transfer, want 1", n.ActiveFlows())
	}
	k.Run()
	if n.ActiveFlows() != 0 {
		t.Fatalf("ActiveFlows = %d after completion, want 0", n.ActiveFlows())
	}
}

func TestNegativeTransferPanics(t *testing.T) {
	_, n := twoNode(1e6)
	defer func() {
		if recover() == nil {
			t.Error("negative transfer did not panic")
		}
	}()
	n.Transfer(0, 1, -5, nil)
}

// Property: n equal flows over one link each take ~n times the solo time
// (work conservation + fairness).
func TestPropertyFairSlowdown(t *testing.T) {
	f := func(nf uint8) bool {
		flows := int(nf%6) + 1
		k, n := twoNode(1e6)
		var finish []float64
		for i := 0; i < flows; i++ {
			n.Transfer(0, 1, 1e6, func(*Flow) { finish = append(finish, k.Now()) })
		}
		k.Run()
		want := float64(flows) + 0.010
		for _, d := range finish {
			if math.Abs(d-want) > 0.01*want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: total delivered bytes equal the sum of transfer sizes
// (conservation), for random transfer schedules on a shared link.
func TestPropertyByteConservation(t *testing.T) {
	f := func(seed uint64) bool {
		rng := workload.NewRNG(seed)
		k, n := twoNode(1e6)
		total := 0.0
		count := int(rng.Uint64()%5) + 1
		done := 0
		for i := 0; i < count; i++ {
			size := rng.Range(1e4, 1e6)
			total += size
			at := rng.Float64()
			k.At(at, func() {
				n.Transfer(0, 1, size, func(*Flow) { done++ })
			})
		}
		k.Run()
		var forward *Link
		for _, l := range n.Links() {
			if l.From == 0 && l.To == 1 {
				forward = l
			}
		}
		return done == count && math.Abs(forward.BytesCarried-total) < 1e-6*total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: a flow's completion time is never better than the uncontended
// analytic bound.
func TestPropertyFlowLowerBound(t *testing.T) {
	f := func(seed uint64) bool {
		rng := workload.NewRNG(seed)
		k, n := twoNode(1e6)
		ok := true
		count := int(rng.Uint64()%4) + 1
		for i := 0; i < count; i++ {
			size := rng.Range(1e5, 2e6)
			bound := n.TransferTime(0, 1, size)
			start := k.Now()
			_ = start
			n.Transfer(0, 1, size, func(fl *Flow) {
				if fl.Finish-fl.Start < bound-1e-9 {
					ok = false
				}
			})
		}
		k.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
