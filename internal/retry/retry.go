// Package retry provides the reliability primitives the live serving
// path shares: retry with exponential backoff and full jitter, and a
// per-endpoint circuit breaker. The simulator models failure with
// internal/fault and the engine's ReliableOptions; this package gives the
// real wire/faas stack the matching survival behavior, so "kill an
// endpoint mid-run" degrades to retries and failover instead of hung or
// lost requests.
//
// The breaker distinguishes failure from abandonment: Failure counts
// toward tripping, while Cancel records neither success nor failure —
// it only returns an admitted half-open probe slot. Hedged callers use
// Cancel for the losing arm of a hedge so that deliberately abandoning
// a slow-but-healthy endpoint never trips its breaker.
package retry

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"
)

// Default policy parameters, chosen so a zero-value Policy behaves
// sanely: a handful of quick attempts that never sleep longer than a
// second.
const (
	DefaultMaxAttempts = 4
	DefaultBaseDelay   = 10 * time.Millisecond
	DefaultMaxDelay    = time.Second
)

// Policy configures retry with exponential backoff and full jitter
// (delay for attempt k is uniform in [0, min(MaxDelay, BaseDelay·2^k)],
// the AWS "full jitter" scheme — it decorrelates synchronized retry
// storms better than equal or no jitter).
type Policy struct {
	// MaxAttempts is the total number of tries including the first
	// (<= 0 means DefaultMaxAttempts).
	MaxAttempts int
	// BaseDelay is the backoff ceiling for the first retry (<= 0 means
	// DefaultBaseDelay).
	BaseDelay time.Duration
	// MaxDelay caps the backoff ceiling (<= 0 means DefaultMaxDelay).
	MaxDelay time.Duration
	// Retryable classifies errors; nil retries every error.
	Retryable func(error) bool
	// Rand supplies jitter draws in [0, 1); nil uses a locked global
	// source. Inject a deterministic source in tests.
	Rand func() float64
}

var (
	globalMu  sync.Mutex
	globalRng = rand.New(rand.NewSource(time.Now().UnixNano()))
)

func globalFloat() float64 {
	globalMu.Lock()
	defer globalMu.Unlock()
	return globalRng.Float64()
}

func (p Policy) maxAttempts() int {
	if p.MaxAttempts <= 0 {
		return DefaultMaxAttempts
	}
	return p.MaxAttempts
}

func (p Policy) rand() float64 {
	if p.Rand != nil {
		return p.Rand()
	}
	return globalFloat()
}

func (p Policy) retryable(err error) bool {
	return p.Retryable == nil || p.Retryable(err)
}

// Ceiling returns the backoff ceiling for the given retry (0-based): the
// largest delay Backoff may draw. It is min(MaxDelay, BaseDelay·2^retry),
// overflow-safe for large retry counts.
func (p Policy) Ceiling(retry int) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = DefaultBaseDelay
	}
	cap := p.MaxDelay
	if cap <= 0 {
		cap = DefaultMaxDelay
	}
	d := base
	for i := 0; i < retry; i++ {
		d *= 2
		if d >= cap || d < 0 { // d < 0: overflow
			return cap
		}
	}
	if d > cap {
		return cap
	}
	return d
}

// Backoff draws the jittered delay before the given retry (0-based for
// the first retry): uniform in [0, Ceiling(retry)].
func (p Policy) Backoff(retry int) time.Duration {
	return time.Duration(p.rand() * float64(p.Ceiling(retry)))
}

// Sleep blocks for the jittered backoff of the given retry, or until ctx
// is done (returning ctx.Err()).
func (p Policy) Sleep(ctx context.Context, retry int) error {
	return p.sleepFor(ctx, p.Backoff(retry))
}

func (p Policy) sleepFor(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// RetryAfterHint extracts a server-supplied backoff hint from err: any
// error in the chain exposing RetryAfter() time.Duration (the wire
// layer's RemoteError carries the Response.RetryAfterMS of a shed
// request this way). Zero means no hint.
func RetryAfterHint(err error) time.Duration {
	var ra interface{ RetryAfter() time.Duration }
	if errors.As(err, &ra) {
		return ra.RetryAfter()
	}
	return 0
}

// Do runs fn up to MaxAttempts times, sleeping the jittered backoff
// between attempts. It returns nil on the first success, the last error
// once attempts are exhausted or fn returns a non-retryable error, and
// ctx.Err() if the context ends first (checked before every attempt and
// during every backoff sleep). fn receives the 0-based attempt number.
//
// When a retryable error carries a Retry-After hint (see
// RetryAfterHint), the hint floors the backoff: an overloaded server's
// "come back in 40ms" overrides a jittered draw that would have retried
// sooner, so backpressure propagates instead of being re-amplified.
func (p Policy) Do(ctx context.Context, fn func(attempt int) error) error {
	var err error
	for attempt := 0; attempt < p.maxAttempts(); attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		if err = fn(attempt); err == nil {
			return nil
		}
		if !p.retryable(err) {
			return err
		}
		if attempt+1 < p.maxAttempts() {
			d := p.Backoff(attempt)
			if hint := RetryAfterHint(err); hint > d {
				d = hint
			}
			if serr := p.sleepFor(ctx, d); serr != nil {
				return serr
			}
		}
	}
	return err
}
