package retry

import (
	"fmt"
	"sync"
	"time"
)

// State is a circuit breaker's position.
type State int

// Breaker states. The numeric values are stable — they are exported as a
// gauge (wire_breaker_state) and dashboards key on them.
const (
	// Closed passes traffic and counts failures.
	Closed State = 0
	// Open rejects traffic until the cooldown elapses.
	Open State = 1
	// HalfOpen admits a limited number of probes to test recovery.
	HalfOpen State = 2
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Breaker defaults.
const (
	DefaultFailureThreshold = 5
	DefaultWindow           = 20
	DefaultCooldown         = time.Second
	DefaultHalfOpenProbes   = 1
)

// BreakerConfig parameterizes a Breaker. The zero value is usable: trip
// after DefaultFailureThreshold consecutive failures, cool down for
// DefaultCooldown, re-close after DefaultHalfOpenProbes probe successes.
type BreakerConfig struct {
	// FailureThreshold trips the breaker after this many consecutive
	// failures (<= 0 means DefaultFailureThreshold).
	FailureThreshold int
	// FailureRate additionally trips the breaker when the error rate over
	// the last Window outcomes exceeds it (0 disables rate tripping).
	FailureRate float64
	// Window is the rolling outcome window for FailureRate (<= 0 means
	// DefaultWindow). Rate tripping only engages once the window is full.
	Window int
	// Cooldown is how long the breaker stays open before admitting
	// half-open probes (<= 0 means DefaultCooldown).
	Cooldown time.Duration
	// HalfOpenProbes is how many consecutive probe successes re-close the
	// breaker (<= 0 means DefaultHalfOpenProbes).
	HalfOpenProbes int
	// Now is the clock (nil means time.Now). Inject in tests.
	Now func() time.Time
	// OnStateChange, when set, runs on every transition with the breaker
	// lock held — keep it fast and do not call back into the breaker.
	OnStateChange func(from, to State)
}

func (c BreakerConfig) failureThreshold() int {
	if c.FailureThreshold <= 0 {
		return DefaultFailureThreshold
	}
	return c.FailureThreshold
}

func (c BreakerConfig) window() int {
	if c.Window <= 0 {
		return DefaultWindow
	}
	return c.Window
}

func (c BreakerConfig) cooldown() time.Duration {
	if c.Cooldown <= 0 {
		return DefaultCooldown
	}
	return c.Cooldown
}

func (c BreakerConfig) halfOpenProbes() int {
	if c.HalfOpenProbes <= 0 {
		return DefaultHalfOpenProbes
	}
	return c.HalfOpenProbes
}

func (c BreakerConfig) now() time.Time {
	if c.Now != nil {
		return c.Now()
	}
	return time.Now()
}

// Breaker is a circuit breaker: closed → (failures) → open → (cooldown)
// → half-open → (probe success) → closed, or → (probe failure) → open.
// Callers ask Allow before attempting and report the outcome with
// Success/Failure. All methods are safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig

	mu          sync.Mutex
	state       State
	consecutive int       // consecutive failures while closed
	window      []bool    // rolling outcomes, true = failure
	windowAt    int       // next write position
	windowFull  bool      // window has wrapped at least once
	openedAt    time.Time // when the breaker last opened
	probes      int       // successes so far in half-open
	inFlight    int       // admitted half-open probes awaiting outcome
	trips       int64     // lifetime closed/half-open → open transitions
}

// NewBreaker returns a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg, window: make([]bool, cfg.window())}
}

// State returns the current state, applying any due open → half-open
// transition first.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.maybeHalfOpen()
	return b.state
}

// Trips returns how many times the breaker has opened.
func (b *Breaker) Trips() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// Allow reports whether a call may proceed now. In half-open it admits at
// most HalfOpenProbes concurrent probes; every admitted call must be
// concluded with Success or Failure.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.maybeHalfOpen()
	switch b.state {
	case Closed:
		return true
	case HalfOpen:
		if b.inFlight < b.cfg.halfOpenProbes() {
			b.inFlight++
			return true
		}
		return false
	default:
		return false
	}
}

// Success reports a completed call that succeeded.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		b.consecutive = 0
		b.record(false)
	case HalfOpen:
		if b.inFlight > 0 {
			b.inFlight--
		}
		b.probes++
		if b.probes >= b.cfg.halfOpenProbes() {
			b.transition(Closed)
		}
	}
}

// Cancel reports an admitted call that was abandoned without an outcome
// — typically a hedged request cancelled because its sibling arm won the
// race. The endpoint is not at fault, so nothing is recorded against the
// failure counters; in half-open the admitted probe slot is returned so
// an abandoned hedge cannot wedge the breaker's recovery.
func (b *Breaker) Cancel() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == HalfOpen && b.inFlight > 0 {
		b.inFlight--
	}
}

// Failure reports a completed call that failed.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		b.consecutive++
		b.record(true)
		if b.consecutive >= b.cfg.failureThreshold() || b.rateTripped() {
			b.trip()
		}
	case HalfOpen:
		if b.inFlight > 0 {
			b.inFlight--
		}
		b.trip() // the probe failed: back to open, cooldown restarts
	}
}

// record appends one outcome to the rolling window.
func (b *Breaker) record(failed bool) {
	b.window[b.windowAt] = failed
	b.windowAt++
	if b.windowAt == len(b.window) {
		b.windowAt = 0
		b.windowFull = true
	}
}

// rateTripped reports whether the windowed error rate exceeds the
// configured threshold. Only meaningful once the window is full, so a
// single early failure cannot read as a 100% error rate.
func (b *Breaker) rateTripped() bool {
	if b.cfg.FailureRate <= 0 || !b.windowFull {
		return false
	}
	failures := 0
	for _, f := range b.window {
		if f {
			failures++
		}
	}
	return float64(failures)/float64(len(b.window)) > b.cfg.FailureRate
}

// trip opens the breaker and resets the counting state.
func (b *Breaker) trip() {
	b.trips++
	b.openedAt = b.cfg.now()
	b.consecutive = 0
	b.probes = 0
	b.inFlight = 0
	for i := range b.window {
		b.window[i] = false
	}
	b.windowAt = 0
	b.windowFull = false
	b.transition(Open)
}

// maybeHalfOpen moves open → half-open once the cooldown has elapsed.
// Callers hold b.mu.
func (b *Breaker) maybeHalfOpen() {
	if b.state == Open && b.cfg.now().Sub(b.openedAt) >= b.cfg.cooldown() {
		b.probes = 0
		b.inFlight = 0
		b.transition(HalfOpen)
	}
}

// transition sets the state and fires the change hook. Callers hold b.mu.
func (b *Breaker) transition(to State) {
	if b.state == to {
		return
	}
	from := b.state
	b.state = to
	if b.cfg.OnStateChange != nil {
		b.cfg.OnStateChange(from, to)
	}
}
