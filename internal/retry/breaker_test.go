package retry

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for breaker cooldown tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestBreakerTripsOnConsecutiveFailures(t *testing.T) {
	clk := &fakeClock{}
	b := NewBreaker(BreakerConfig{FailureThreshold: 3, Cooldown: time.Second, Now: clk.now})
	if b.State() != Closed || !b.Allow() {
		t.Fatal("new breaker not closed/allowing")
	}
	b.Failure()
	b.Failure()
	if b.State() != Closed {
		t.Fatalf("tripped after 2 of 3 failures")
	}
	b.Failure()
	if b.State() != Open {
		t.Fatalf("state = %v after threshold failures", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker allowed a call")
	}
	if b.Trips() != 1 {
		t.Fatalf("trips = %d", b.Trips())
	}
}

func TestBreakerSuccessResetsConsecutiveCount(t *testing.T) {
	clk := &fakeClock{}
	b := NewBreaker(BreakerConfig{FailureThreshold: 3, Now: clk.now})
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if b.State() != Closed {
		t.Fatal("interleaved success did not reset the consecutive count")
	}
	b.Failure()
	if b.State() != Open {
		t.Fatal("did not trip at threshold after reset")
	}
}

func TestBreakerHalfOpenProbeRecloses(t *testing.T) {
	clk := &fakeClock{}
	var transitions []State
	b := NewBreaker(BreakerConfig{
		FailureThreshold: 1,
		Cooldown:         time.Second,
		Now:              clk.now,
		OnStateChange:    func(_, to State) { transitions = append(transitions, to) },
	})
	b.Failure() // trips
	if b.Allow() {
		t.Fatal("open breaker allowed")
	}
	clk.advance(time.Second)
	if b.State() != HalfOpen {
		t.Fatalf("state after cooldown = %v", b.State())
	}
	if !b.Allow() {
		t.Fatal("half-open refused the probe")
	}
	// Only HalfOpenProbes (1) concurrent probe is admitted.
	if b.Allow() {
		t.Fatal("half-open admitted a second concurrent probe")
	}
	b.Success()
	if b.State() != Closed {
		t.Fatalf("state after probe success = %v", b.State())
	}
	want := []State{Open, HalfOpen, Closed}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v", transitions)
	}
	for i, w := range want {
		if transitions[i] != w {
			t.Fatalf("transitions = %v, want %v", transitions, want)
		}
	}
}

func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	clk := &fakeClock{}
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, Cooldown: time.Second, Now: clk.now})
	b.Failure()
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("half-open refused the probe")
	}
	b.Failure()
	if b.State() != Open {
		t.Fatalf("state after probe failure = %v", b.State())
	}
	if b.Trips() != 2 {
		t.Fatalf("trips = %d", b.Trips())
	}
	// The cooldown restarted at the probe failure.
	clk.advance(500 * time.Millisecond)
	if b.Allow() {
		t.Fatal("allowed before the restarted cooldown elapsed")
	}
	clk.advance(500 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("refused after the restarted cooldown")
	}
}

func TestBreakerRateWindowTrips(t *testing.T) {
	clk := &fakeClock{}
	b := NewBreaker(BreakerConfig{
		FailureThreshold: 100, // consecutive tripping effectively off
		FailureRate:      0.5,
		Window:           10,
		Now:              clk.now,
	})
	// Alternate success/failure: 50% rate, not above the threshold.
	for i := 0; i < 20; i++ {
		if i%2 == 0 {
			b.Failure()
		} else {
			b.Success()
		}
	}
	if b.State() != Closed {
		t.Fatal("tripped at exactly the threshold rate")
	}
	// Push the window above 50% failures.
	b.Failure()
	b.Failure()
	if b.State() != Open {
		t.Fatalf("state = %v with windowed error rate above threshold", b.State())
	}
}

func TestBreakerRateNeedsFullWindow(t *testing.T) {
	clk := &fakeClock{}
	b := NewBreaker(BreakerConfig{
		FailureThreshold: 100,
		FailureRate:      0.1,
		Window:           10,
		Now:              clk.now,
	})
	// 5 failures is a 100% observed rate but only half a window: no trip.
	for i := 0; i < 5; i++ {
		b.Failure()
	}
	if b.State() != Closed {
		t.Fatal("tripped on a partial window")
	}
}

func TestBreakerMultipleHalfOpenProbes(t *testing.T) {
	clk := &fakeClock{}
	b := NewBreaker(BreakerConfig{
		FailureThreshold: 1,
		Cooldown:         time.Second,
		HalfOpenProbes:   2,
		Now:              clk.now,
	})
	b.Failure()
	clk.advance(time.Second)
	if !b.Allow() || !b.Allow() {
		t.Fatal("half-open refused configured probes")
	}
	if b.Allow() {
		t.Fatal("admitted more than HalfOpenProbes probes")
	}
	b.Success()
	if b.State() != HalfOpen {
		t.Fatal("re-closed after 1 of 2 probe successes")
	}
	b.Success()
	if b.State() != Closed {
		t.Fatalf("state = %v after all probe successes", b.State())
	}
}

// TestBreakerCancelReturnsHalfOpenProbe is the hedge-interaction
// regression: an admitted half-open probe that is abandoned (its hedge
// sibling won, the arm was cancelled) must return its probe slot via
// Cancel — without tripping, without counting as a success — or the
// breaker wedges in half-open forever.
func TestBreakerCancelReturnsHalfOpenProbe(t *testing.T) {
	clk := &fakeClock{}
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, Cooldown: time.Second, Now: clk.now})
	b.Failure()
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("half-open refused the first probe")
	}
	if b.Allow() {
		t.Fatal("admitted a second probe (default is 1)")
	}
	b.Cancel() // the admitted probe was abandoned, not concluded
	if b.State() != HalfOpen {
		t.Fatalf("state = %v after cancel, want half-open (no outcome recorded)", b.State())
	}
	if !b.Allow() {
		t.Fatal("probe slot not returned: breaker is wedged")
	}
	b.Success()
	if b.State() != Closed {
		t.Fatalf("state = %v after the real probe succeeded", b.State())
	}
}

// TestBreakerCancelNoopWhenClosed: cancelling in closed (or open) state
// records nothing — it must not reset failure counting or open the gate.
func TestBreakerCancelNoopWhenClosed(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureThreshold: 2})
	b.Failure()
	b.Cancel()
	b.Failure()
	if b.State() != Open {
		t.Fatalf("state = %v, want open (cancel must not reset the failure count)", b.State())
	}
	b.Cancel()
	if b.Allow() {
		t.Fatal("cancel re-opened the gate of an open breaker")
	}
}
