package retry

import (
	"errors"
	"sync"
)

// Budget is a token-bucket retry budget (the gRPC/Finagle scheme): every
// retry — and every hedge arm, which is just a retry launched early —
// spends one token, and successful first attempts slowly refill the
// bucket at Ratio tokens per success. Under normal operation the bucket
// stays full and retries are free; when an endpoint browns out, the
// bucket drains and the whole client fleet's retry traffic throttles to
// Ratio × its success rate instead of multiplying the overload. Share
// one Budget across everything that talks to the same backend.
//
// A nil *Budget is a valid unlimited budget: Spend always grants,
// Success does nothing.
type Budget struct {
	cfg BudgetConfig

	mu     sync.Mutex
	tokens float64
}

// Default budget parameters: a burst of ten free retries, then one
// retry earned per ten successes.
const (
	DefaultBudgetTokens = 10
	DefaultBudgetRatio  = 0.1
)

// ErrBudgetExhausted marks a retry (or hedge) suppressed because the
// budget is empty. It is deliberately non-retryable: the budget exists
// to stop retry storms, so running out must fail the call, not queue
// another attempt.
var ErrBudgetExhausted = errors.New("retry: budget exhausted")

// BudgetConfig parameterizes a Budget; the zero value uses the defaults.
type BudgetConfig struct {
	// Tokens is the bucket capacity and initial fill (<= 0 means
	// DefaultBudgetTokens).
	Tokens float64
	// Ratio is how many tokens each success refills, capped at Tokens
	// (<= 0 means DefaultBudgetRatio).
	Ratio float64
}

func (c BudgetConfig) tokens() float64 {
	if c.Tokens <= 0 {
		return DefaultBudgetTokens
	}
	return c.Tokens
}

func (c BudgetConfig) ratio() float64 {
	if c.Ratio <= 0 {
		return DefaultBudgetRatio
	}
	return c.Ratio
}

// NewBudget returns a full bucket.
func NewBudget(cfg BudgetConfig) *Budget {
	return &Budget{cfg: cfg, tokens: cfg.tokens()}
}

// Spend takes one token, reporting false (and taking nothing) when
// fewer than one token remains. Nil-safe: a nil budget always grants.
func (b *Budget) Spend() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Success refills Ratio tokens (capped at the bucket size). Call it on
// successful attempts — including successful retries, so a recovering
// backend earns its retry traffic back.
func (b *Budget) Success() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tokens += b.cfg.ratio()
	if full := b.cfg.tokens(); b.tokens > full {
		b.tokens = full
	}
}

// Tokens returns the current fill (for tests and introspection).
func (b *Budget) Tokens() float64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tokens
}
