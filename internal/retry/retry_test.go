package retry

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"
)

func TestCeilingDoublesThenCaps(t *testing.T) {
	p := Policy{BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond}
	want := []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
		80 * time.Millisecond, 80 * time.Millisecond,
	}
	for i, w := range want {
		if got := p.Ceiling(i); got != w {
			t.Errorf("Ceiling(%d) = %v, want %v", i, got, w)
		}
	}
}

func TestCeilingOverflowSafe(t *testing.T) {
	p := Policy{BaseDelay: time.Hour, MaxDelay: 24 * time.Hour}
	// 2^200 hours overflows int64 nanoseconds many times over; the cap
	// must still hold.
	if got := p.Ceiling(200); got != 24*time.Hour {
		t.Fatalf("Ceiling(200) = %v, want cap", got)
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := Policy{
		BaseDelay: time.Millisecond,
		MaxDelay:  16 * time.Millisecond,
		Rand:      rng.Float64,
	}
	for retry := 0; retry < 10; retry++ {
		ceil := p.Ceiling(retry)
		for i := 0; i < 1000; i++ {
			d := p.Backoff(retry)
			if d < 0 || d > ceil {
				t.Fatalf("Backoff(%d) = %v outside [0, %v]", retry, d, ceil)
			}
			if d > p.MaxDelay {
				t.Fatalf("Backoff(%d) = %v exceeds cap %v", retry, d, p.MaxDelay)
			}
		}
	}
}

func TestBackoffJitterSpreads(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := Policy{BaseDelay: time.Second, MaxDelay: time.Second, Rand: rng.Float64}
	lo, hi := 0, 0
	for i := 0; i < 1000; i++ {
		if d := p.Backoff(0); d < 500*time.Millisecond {
			lo++
		} else {
			hi++
		}
	}
	// Full jitter is uniform: both halves must be well populated.
	if lo < 300 || hi < 300 {
		t.Fatalf("jitter not spread: %d below midpoint, %d above", lo, hi)
	}
}

func TestDoSucceedsAfterRetries(t *testing.T) {
	p := Policy{MaxAttempts: 5, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond}
	calls := 0
	err := p.Do(context.Background(), func(attempt int) error {
		if attempt != calls {
			t.Fatalf("attempt %d on call %d", attempt, calls)
		}
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	p := Policy{MaxAttempts: 3, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond}
	calls := 0
	boom := errors.New("boom")
	if err := p.Do(context.Background(), func(int) error { calls++; return boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d", calls)
	}
}

func TestDoStopsOnNonRetryable(t *testing.T) {
	fatal := errors.New("fatal")
	p := Policy{
		MaxAttempts: 5,
		BaseDelay:   time.Microsecond,
		MaxDelay:    time.Microsecond,
		Retryable:   func(err error) bool { return !errors.Is(err, fatal) },
	}
	calls := 0
	if err := p.Do(context.Background(), func(int) error { calls++; return fatal }); !errors.Is(err, fatal) {
		t.Fatalf("err = %v", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d", calls)
	}
}

func TestDoRespectsCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := Policy{MaxAttempts: 5}
	calls := 0
	if err := p.Do(ctx, func(int) error { calls++; return nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if calls != 0 {
		t.Fatalf("fn ran %d times under a canceled context", calls)
	}
}

func TestDoCancelInterruptsBackoffSleep(t *testing.T) {
	// A long backoff must not delay cancellation: cancel mid-sleep and
	// require a prompt return with ctx.Err().
	ctx, cancel := context.WithCancel(context.Background())
	p := Policy{
		MaxAttempts: 2,
		BaseDelay:   10 * time.Second,
		MaxDelay:    10 * time.Second,
		Rand:        func() float64 { return 0.99 }, // near-ceiling sleep
	}
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := p.Do(ctx, func(int) error { return errors.New("transient") })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancel took %v to interrupt backoff", elapsed)
	}
}

func TestSleepZeroDelayChecksContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := Policy{Rand: func() float64 { return 0 }}
	if err := p.Sleep(ctx, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}
