package retry

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestBudgetSpendAndRefill(t *testing.T) {
	b := NewBudget(BudgetConfig{Tokens: 2, Ratio: 0.5})
	if !b.Spend() || !b.Spend() {
		t.Fatal("a full bucket must grant its capacity")
	}
	if b.Spend() {
		t.Fatal("empty bucket granted a token")
	}
	// Two successes at ratio 0.5 earn one retry back.
	b.Success()
	if b.Spend() {
		t.Fatalf("half a token granted (tokens = %v)", b.Tokens())
	}
	b.Success()
	if !b.Spend() {
		t.Fatal("refilled bucket denied a token")
	}
	// Refill caps at the bucket size.
	for i := 0; i < 100; i++ {
		b.Success()
	}
	if got := b.Tokens(); got != 2 {
		t.Fatalf("Tokens() = %v after overfill, want cap 2", got)
	}
}

func TestBudgetDefaultsAndNilSafety(t *testing.T) {
	b := NewBudget(BudgetConfig{})
	for i := 0; i < DefaultBudgetTokens; i++ {
		if !b.Spend() {
			t.Fatalf("default bucket exhausted after %d spends", i)
		}
	}
	if b.Spend() {
		t.Fatal("default bucket over-granted")
	}

	var nilB *Budget
	if !nilB.Spend() {
		t.Fatal("nil budget must be unlimited")
	}
	nilB.Success() // must not panic
	if nilB.Tokens() != 0 {
		t.Fatal("nil budget Tokens() != 0")
	}
}

// hintedErr is a retryable error carrying a server Retry-After hint.
type hintedErr struct{ after time.Duration }

func (e *hintedErr) Error() string             { return fmt.Sprintf("overloaded, retry after %v", e.after) }
func (e *hintedErr) RetryAfter() time.Duration { return e.after }

func TestRetryAfterHint(t *testing.T) {
	if got := RetryAfterHint(errors.New("plain")); got != 0 {
		t.Fatalf("hint on plain error = %v", got)
	}
	wrapped := fmt.Errorf("attempt 3: %w", &hintedErr{after: 40 * time.Millisecond})
	if got := RetryAfterHint(wrapped); got != 40*time.Millisecond {
		t.Fatalf("hint = %v, want 40ms", got)
	}
}

// TestDoHonorsRetryAfter: the server hint floors the jittered backoff —
// with Rand pinned to 0 the policy alone would retry immediately, so any
// observed delay is the hint being honored.
func TestDoHonorsRetryAfter(t *testing.T) {
	p := Policy{
		MaxAttempts: 2,
		BaseDelay:   time.Nanosecond,
		Rand:        func() float64 { return 0 }, // jittered backoff = 0
	}
	const hint = 50 * time.Millisecond
	start := time.Now()
	err := p.Do(context.Background(), func(attempt int) error {
		if attempt == 0 {
			return &hintedErr{after: hint}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < hint {
		t.Fatalf("retried after %v, want >= the server's %v hint", elapsed, hint)
	}

	// And without a hint the pinned-zero backoff really is immediate
	// (the control that makes the assertion above meaningful).
	start = time.Now()
	err = p.Do(context.Background(), func(attempt int) error {
		if attempt == 0 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > hint/2 {
		t.Fatalf("hintless retry slept %v", elapsed)
	}
}
