package node

import (
	"math"
	"testing"

	"continuum/internal/sim"
)

func gatewaySpec() Spec {
	return Spec{
		Name: "gw", Class: Gateway,
		Cores: 2, CoreFlops: 1e9, MemBytes: 1 << 30,
		IdleWatts: 1, ActiveWattsCore: 4,
	}
}

func gpuSpec() Spec {
	s := gatewaySpec()
	s.Name = "gpu-node"
	s.Accel = Accelerator{Kind: GPU, Count: 1, Flops: 1e12, Watts: 100}
	return s
}

func TestSpecValidate(t *testing.T) {
	good := gatewaySpec()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"empty name", func(s *Spec) { s.Name = "" }},
		{"zero cores", func(s *Spec) { s.Cores = 0 }},
		{"zero flops", func(s *Spec) { s.CoreFlops = 0 }},
		{"negative accel count", func(s *Spec) { s.Accel.Count = -1 }},
		{"accel without flops", func(s *Spec) { s.Accel = Accelerator{Kind: GPU, Count: 1} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := gatewaySpec()
			tc.mutate(&s)
			if s.Validate() == nil {
				t.Errorf("%s accepted", tc.name)
			}
		})
	}
}

func TestClassAndAccelStrings(t *testing.T) {
	if Sensor.String() != "sensor" || HPC.String() != "hpc" {
		t.Fatal("class names wrong")
	}
	if GPU.String() != "gpu" || NoAccel.String() != "none" {
		t.Fatal("accel names wrong")
	}
	if Class(99).String() == "" || AccelKind(99).String() == "" {
		t.Fatal("unknown enums should still render")
	}
}

func TestScalarAndTensorTime(t *testing.T) {
	s := gpuSpec()
	if got := s.ScalarTime(2e9); math.Abs(got-2) > 1e-12 {
		t.Fatalf("ScalarTime = %v, want 2", got)
	}
	// Matching accelerator: fast path.
	if got := s.TensorTime(1e12, GPU); math.Abs(got-1) > 1e-12 {
		t.Fatalf("TensorTime(GPU) = %v, want 1", got)
	}
	// Mismatched kind falls back to the core.
	if got := s.TensorTime(1e9, TPU); math.Abs(got-1) > 1e-12 {
		t.Fatalf("TensorTime(TPU fallback) = %v, want 1", got)
	}
	if s.TensorTime(0, GPU) != 0 {
		t.Fatal("zero tensor work should cost 0")
	}
}

func TestExecuteOccupiesCore(t *testing.T) {
	k := sim.NewKernel()
	n := New(k, 0, gatewaySpec())
	var doneAt float64 = -1
	n.Execute(2e9, 0, NoAccel, func() { doneAt = k.Now() })
	k.Run()
	if math.Abs(doneAt-2) > 1e-12 {
		t.Fatalf("done at %v, want 2", doneAt)
	}
	if n.TasksStarted != 1 || n.TasksDone != 1 {
		t.Fatalf("task counters %d/%d", n.TasksStarted, n.TasksDone)
	}
	if n.Cores.InUse() != 0 {
		t.Fatal("core not released")
	}
}

func TestExecuteQueuesBeyondCores(t *testing.T) {
	k := sim.NewKernel()
	n := New(k, 0, gatewaySpec()) // 2 cores
	var done []float64
	for i := 0; i < 3; i++ {
		n.Execute(1e9, 0, NoAccel, func() { done = append(done, k.Now()) })
	}
	k.Run()
	want := []float64{1, 1, 2}
	for i := range want {
		if math.Abs(done[i]-want[i]) > 1e-12 {
			t.Fatalf("done = %v, want %v", done, want)
		}
	}
}

func TestExecuteUsesAccelerator(t *testing.T) {
	k := sim.NewKernel()
	n := New(k, 0, gpuSpec())
	var doneAt float64 = -1
	n.Execute(0, 1e12, GPU, func() { doneAt = k.Now() })
	k.Run()
	if math.Abs(doneAt-1) > 1e-12 {
		t.Fatalf("GPU exec done at %v, want 1", doneAt)
	}
	if n.Accels.InUse() != 0 {
		t.Fatal("accelerator not released")
	}
}

func TestExecuteAccelFallbackOnPlainNode(t *testing.T) {
	k := sim.NewKernel()
	n := New(k, 0, gatewaySpec()) // no accel
	var doneAt float64 = -1
	n.Execute(0, 2e9, GPU, func() { doneAt = k.Now() })
	k.Run()
	if math.Abs(doneAt-2) > 1e-12 {
		t.Fatalf("fallback exec done at %v, want 2 (core speed)", doneAt)
	}
}

func TestExecuteEnergyAccounting(t *testing.T) {
	k := sim.NewKernel()
	n := New(k, 0, gatewaySpec())   // idle 1W, +4W per busy core
	n.Execute(2e9, 0, NoAccel, nil) // 2s at 5W
	k.RunUntil(10)
	// 10s idle (1W) + 2s active (4W) = 10 + 8 = 18 J
	if j := n.Meter.Joules(); math.Abs(j-18) > 1e-9 {
		t.Fatalf("Joules = %v, want 18", j)
	}
}

func TestAccelSerializesOnDeviceCount(t *testing.T) {
	k := sim.NewKernel()
	n := New(k, 0, gpuSpec()) // 2 cores but 1 GPU
	var done []float64
	for i := 0; i < 2; i++ {
		n.Execute(0, 1e12, GPU, func() { done = append(done, k.Now()) })
	}
	k.Run()
	// Both tasks want the single GPU: finish at 1 and 2.
	if math.Abs(done[0]-1) > 1e-12 || math.Abs(done[1]-2) > 1e-12 {
		t.Fatalf("done = %v, want [1 2]", done)
	}
}

func TestDollarCost(t *testing.T) {
	s := gatewaySpec()
	s.DollarPerHour = 36
	k := sim.NewKernel()
	n := New(k, 0, s)
	if c := n.DollarCost(100); math.Abs(c-1) > 1e-12 {
		t.Fatalf("DollarCost(100s) = %v, want 1", c)
	}
}

func TestCatalogSpecsValid(t *testing.T) {
	cat := Catalog()
	if len(cat) < 6 {
		t.Fatalf("catalog has %d entries, want >= 6", len(cat))
	}
	for name, spec := range cat {
		if err := spec.Validate(); err != nil {
			t.Errorf("catalog spec %q invalid: %v", name, err)
		}
		if spec.Name != name {
			t.Errorf("catalog key %q != spec name %q", name, spec.Name)
		}
	}
	// Tiers should be strictly faster going inward (scalar per-node).
	tiers := []string{"sensor", "gateway", "fog", "campus", "cloud", "hpc"}
	prev := 0.0
	for _, tier := range tiers {
		s := cat[tier]
		agg := float64(s.Cores) * s.CoreFlops
		if agg <= prev {
			t.Errorf("tier %s aggregate flops %v not above previous %v", tier, agg, prev)
		}
		prev = agg
	}
}

func TestNewPanicsOnInvalidSpec(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with invalid spec did not panic")
		}
	}()
	New(sim.NewKernel(), 0, Spec{})
}
