// Package node models the compute elements of the continuum: from
// battery-powered sensors through gateways, fog boxes, campus clusters and
// clouds to HPC centers, each optionally carrying specialized accelerator
// "appliances" (the disintegrated machine of Gilder's observation).
//
// A Spec is the static description (catalog entry); a Node is a live
// instance bound to a simulation kernel, with core and accelerator
// occupancy tracked by sim.Resource and energy integrated by an
// energy.Meter.
package node

import (
	"fmt"

	"continuum/internal/energy"
	"continuum/internal/sim"
)

// Class identifies a tier of the continuum.
type Class int

// Continuum tiers, ordered from the extreme edge inward.
const (
	Sensor Class = iota
	Gateway
	Fog
	Campus
	Cloud
	HPC
)

// String returns the tier name.
func (c Class) String() string {
	switch c {
	case Sensor:
		return "sensor"
	case Gateway:
		return "gateway"
	case Fog:
		return "fog"
	case Campus:
		return "campus"
	case Cloud:
		return "cloud"
	case HPC:
		return "hpc"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// AccelKind identifies a specialized appliance type.
type AccelKind int

// Accelerator kinds. Tasks declare which kind their tensor work targets;
// mismatched kinds fall back to cores.
const (
	NoAccel AccelKind = iota
	GPU
	TPU
	FPGA
)

// String returns the accelerator kind name.
func (k AccelKind) String() string {
	switch k {
	case NoAccel:
		return "none"
	case GPU:
		return "gpu"
	case TPU:
		return "tpu"
	case FPGA:
		return "fpga"
	default:
		return fmt.Sprintf("accel(%d)", int(k))
	}
}

// Accelerator describes an attached appliance pool.
type Accelerator struct {
	Kind  AccelKind
	Count int     // number of devices
	Flops float64 // flops/sec per device for matching work
	Watts float64 // active power per device
}

// Spec is a static node description. All rates are per-second SI units.
type Spec struct {
	Name  string
	Class Class

	Cores     int     // schedulable cores
	CoreFlops float64 // flops/sec per core for scalar work
	MemBytes  int64

	Accel Accelerator // zero value = no accelerator

	IdleWatts       float64 // drawn whenever the node is on
	ActiveWattsCore float64 // additional draw per busy core

	DollarPerHour float64 // rental/operation cost while on
	EgressPerByte float64 // $ per byte leaving this node's site
}

// Validate reports the first problem with the spec, or nil.
func (s *Spec) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("node: spec missing name")
	case s.Cores <= 0:
		return fmt.Errorf("node %q: cores %d <= 0", s.Name, s.Cores)
	case s.CoreFlops <= 0:
		return fmt.Errorf("node %q: core flops %v <= 0", s.Name, s.CoreFlops)
	case s.Accel.Count < 0:
		return fmt.Errorf("node %q: negative accel count", s.Name)
	case s.Accel.Count > 0 && s.Accel.Flops <= 0:
		return fmt.Errorf("node %q: accel flops %v <= 0", s.Name, s.Accel.Flops)
	}
	return nil
}

// HasAccel reports whether the spec carries at least one device of kind k.
func (s *Spec) HasAccel(k AccelKind) bool {
	return s.Accel.Count > 0 && s.Accel.Kind == k
}

// ScalarTime returns the time to execute w flops of scalar work on one
// core.
func (s *Spec) ScalarTime(w float64) float64 {
	return w / s.CoreFlops
}

// TensorTime returns the time to execute w flops of tensor work targeting
// kind k: on a matching accelerator if present, otherwise on a core
// (typically orders of magnitude slower — the cost of genericity).
func (s *Spec) TensorTime(w float64, k AccelKind) float64 {
	if w == 0 {
		return 0
	}
	if s.HasAccel(k) {
		return w / s.Accel.Flops
	}
	return w / s.CoreFlops
}

// Node is a live node in a simulation: spec + occupancy + energy.
type Node struct {
	Spec
	ID int // topology vertex id, assigned by the continuum builder

	Cores  *sim.Resource // core occupancy
	Accels *sim.Resource // device occupancy; nil if no accelerator
	Meter  *energy.Meter

	kernel *sim.Kernel

	// TasksStarted / TasksDone count work placed on this node.
	TasksStarted, TasksDone int64
}

// New instantiates spec on kernel k. It panics on an invalid spec
// (programming error: specs are constructed by builders, not user input).
func New(k *sim.Kernel, id int, spec Spec) *Node {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	n := &Node{
		Spec:   spec,
		ID:     id,
		Cores:  sim.NewResource(k, spec.Name+"/cores", int64(spec.Cores)),
		Meter:  energy.NewMeter(k, spec.IdleWatts),
		kernel: k,
	}
	if spec.Accel.Count > 0 {
		n.Accels = sim.NewResource(k, spec.Name+"/accel", int64(spec.Accel.Count))
	}
	return n
}

// Kernel returns the kernel this node is bound to.
func (n *Node) Kernel() *sim.Kernel { return n.kernel }

// ExecTime returns the time to run (scalarWork, tensorWork targeting kind)
// on this node with one core (plus one device if matching).
func (n *Node) ExecTime(scalarWork, tensorWork float64, kind AccelKind) float64 {
	return n.ScalarTime(scalarWork) + n.TensorTime(tensorWork, kind)
}

// Execute occupies one core (and one matching accelerator device, if the
// node has one and tensorWork > 0) for the task's execution time, then
// calls done. Queueing for busy cores/devices is FIFO via sim.Resource.
func (n *Node) Execute(scalarWork, tensorWork float64, kind AccelKind, done func()) {
	n.TasksStarted++
	useAccel := tensorWork > 0 && n.HasAccel(kind) && n.Accels != nil
	d := n.ExecTime(scalarWork, tensorWork, kind)
	run := func() {
		n.Meter.AddLoad(n.ActiveWattsCore)
		var accelW float64
		if useAccel {
			accelW = n.Accel.Watts
			n.Meter.AddLoad(accelW)
		}
		n.kernel.After(d, func() {
			n.Meter.RemoveLoad(n.ActiveWattsCore)
			if useAccel {
				n.Meter.RemoveLoad(accelW)
				n.Accels.Release(1)
			}
			n.Cores.Release(1)
			n.TasksDone++
			if done != nil {
				done()
			}
		})
	}
	n.Cores.Acquire(1, func() {
		if useAccel {
			n.Accels.Acquire(1, run)
			return
		}
		run()
	})
}

// DollarCost returns the cost of occupying this node for d seconds.
func (n *Node) DollarCost(d float64) float64 {
	return n.DollarPerHour * d / 3600
}

// Catalog returns specs for a representative continuum, used by examples
// and experiments. Parameters are order-of-magnitude realistic for 2019
// hardware: sensors ~100 MFLOPS, gateways ~10 GFLOPS/4 cores, fog ~50
// GFLOPS/16 cores, campus ~2 TFLOPS aggregate, cloud VMs with V100-class
// accelerators, HPC nodes with fat accelerators and many cores.
func Catalog() map[string]Spec {
	return map[string]Spec{
		"sensor": {
			Name: "sensor", Class: Sensor,
			Cores: 1, CoreFlops: 1e8, MemBytes: 64 << 20,
			IdleWatts: 0.05, ActiveWattsCore: 0.4,
		},
		"gateway": {
			Name: "gateway", Class: Gateway,
			Cores: 4, CoreFlops: 2.5e9, MemBytes: 4 << 30,
			IdleWatts: 2, ActiveWattsCore: 3,
		},
		"fog": {
			Name: "fog", Class: Fog,
			Cores: 16, CoreFlops: 3e9, MemBytes: 64 << 30,
			Accel:     Accelerator{Kind: GPU, Count: 1, Flops: 5e12, Watts: 70},
			IdleWatts: 40, ActiveWattsCore: 8,
		},
		"campus": {
			Name: "campus", Class: Campus,
			Cores: 64, CoreFlops: 3e9, MemBytes: 256 << 30,
			Accel:     Accelerator{Kind: GPU, Count: 4, Flops: 7e12, Watts: 250},
			IdleWatts: 200, ActiveWattsCore: 10, DollarPerHour: 1.5,
		},
		"cloud": {
			Name: "cloud", Class: Cloud,
			Cores: 96, CoreFlops: 3.2e9, MemBytes: 384 << 30,
			Accel:     Accelerator{Kind: GPU, Count: 8, Flops: 1.4e13, Watts: 300},
			IdleWatts: 300, ActiveWattsCore: 12,
			DollarPerHour: 24, EgressPerByte: 9e-11, // ~$0.09/GB
		},
		"hpc": {
			Name: "hpc", Class: HPC,
			Cores: 256, CoreFlops: 3.5e9, MemBytes: 1 << 40,
			Accel:     Accelerator{Kind: GPU, Count: 16, Flops: 2e13, Watts: 400},
			IdleWatts: 1000, ActiveWattsCore: 15, DollarPerHour: 10,
		},
	}
}
