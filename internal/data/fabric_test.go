package data

import (
	"math"
	"testing"
	"testing/quick"

	"continuum/internal/netsim"
	"continuum/internal/sim"
	"continuum/internal/workload"
)

// testFabric builds a 3-node line: edge(0) -- mid(1) -- home(2), with the
// dataset homes at node 2.
func testFabric(capacity float64, pol Policy) (*sim.Kernel, *Fabric) {
	k := sim.NewKernel()
	net, _ := netsim.Line(k, 3, 0.010, 1e6)
	f := NewFabric(net, workload.NewRNG(1))
	f.AddStore(0, capacity, pol)
	f.AddStore(1, capacity, pol)
	f.AddStore(2, 0, NoCache) // archive: pinned only
	return k, f
}

func TestPinAndLocate(t *testing.T) {
	_, f := testFabric(1e6, LRU)
	ds := Dataset{Name: "a", Bytes: 100}
	f.Pin(ds, 2)
	if !f.Holds(2, "a") || f.Holds(0, "a") {
		t.Fatal("Holds wrong after Pin")
	}
	locs := f.Locate("a")
	if len(locs) != 1 || locs[0] != 2 {
		t.Fatalf("Locate = %v", locs)
	}
}

func TestNearestReplica(t *testing.T) {
	_, f := testFabric(1e6, LRU)
	ds := Dataset{Name: "a", Bytes: 100}
	f.Pin(ds, 2)
	f.Pin(ds, 0)
	src, err := f.NearestReplica("a", 1)
	if err != nil {
		t.Fatal(err)
	}
	// Both are one hop; deterministic tie-break picks the lower id.
	if src != 0 {
		t.Fatalf("NearestReplica = %d, want 0", src)
	}
	if _, err := f.NearestReplica("missing", 1); err == nil {
		t.Fatal("missing dataset did not error")
	}
}

func TestStageHitIsImmediate(t *testing.T) {
	k, f := testFabric(1e6, LRU)
	ds := Dataset{Name: "a", Bytes: 1e5}
	f.Pin(ds, 0)
	var hit bool
	var at float64 = -1
	f.Stage(ds, 0, func(h bool) { hit = h; at = k.Now() })
	if !hit || at != 0 {
		t.Fatalf("local stage hit=%v at=%v", hit, at)
	}
	if f.Store(0).Hits != 1 {
		t.Fatal("hit not counted")
	}
}

func TestStageMissTransfersAndCaches(t *testing.T) {
	k, f := testFabric(1e6, LRU)
	ds := Dataset{Name: "a", Bytes: 5e5}
	f.Pin(ds, 2)
	var hit = true
	var at float64 = -1
	f.Stage(ds, 0, func(h bool) { hit = h; at = k.Now() })
	k.Run()
	if hit {
		t.Fatal("remote stage reported hit")
	}
	// Two hops of 10ms + 0.5s transmission at the 1MB/s bottleneck.
	if math.Abs(at-0.52) > 1e-6 {
		t.Fatalf("stage completed at %v, want 0.52", at)
	}
	if !f.Holds(0, "a") {
		t.Fatal("dataset not cached after miss")
	}
	if f.BytesMoved != 5e5 {
		t.Fatalf("BytesMoved = %v", f.BytesMoved)
	}
	// Second stage is now a hit.
	var hit2 bool
	f.Stage(ds, 0, func(h bool) { hit2 = h })
	if !hit2 {
		t.Fatal("second stage not a hit")
	}
}

func TestStageCoalescing(t *testing.T) {
	k, f := testFabric(1e6, LRU)
	ds := Dataset{Name: "a", Bytes: 5e5}
	f.Pin(ds, 2)
	calls := 0
	for i := 0; i < 3; i++ {
		f.Stage(ds, 0, func(bool) { calls++ })
	}
	k.Run()
	if calls != 3 {
		t.Fatalf("%d callbacks, want 3", calls)
	}
	if f.Coalesced != 2 {
		t.Fatalf("Coalesced = %d, want 2", f.Coalesced)
	}
	// One physical transfer only.
	if f.BytesMoved != 5e5 {
		t.Fatalf("BytesMoved = %v, want one transfer", f.BytesMoved)
	}
}

func TestStageTime(t *testing.T) {
	_, f := testFabric(1e6, LRU)
	ds := Dataset{Name: "a", Bytes: 5e5}
	f.Pin(ds, 2)
	if st := f.StageTime(ds, 2); st != 0 {
		t.Fatalf("local StageTime = %v", st)
	}
	if st := f.StageTime(ds, 0); math.Abs(st-0.52) > 1e-9 {
		t.Fatalf("remote StageTime = %v, want 0.52", st)
	}
	if !math.IsInf(f.StageTime(Dataset{Name: "nope", Bytes: 1}, 0), 1) {
		t.Fatal("missing dataset StageTime != +Inf")
	}
}

func TestLRUEviction(t *testing.T) {
	k, f := testFabric(250, LRU) // fits two 100B datasets plus slack
	a := Dataset{Name: "a", Bytes: 100}
	b := Dataset{Name: "b", Bytes: 100}
	c := Dataset{Name: "c", Bytes: 100}
	for _, ds := range []Dataset{a, b, c} {
		f.Pin(ds, 2)
	}
	f.Stage(a, 0, nil)
	k.Run()
	f.Stage(b, 0, nil)
	k.Run()
	// Touch a strictly later so b is the LRU victim, then stage c.
	k.At(k.Now()+1, func() {
		f.Stage(a, 0, nil)
		f.Stage(c, 0, nil)
	})
	k.Run()
	if !f.Holds(0, "a") || !f.Holds(0, "c") {
		t.Fatal("expected a and c resident")
	}
	if f.Holds(0, "b") {
		t.Fatal("LRU should have evicted b")
	}
	if f.Store(0).Evictions != 1 {
		t.Fatalf("Evictions = %d", f.Store(0).Evictions)
	}
}

func TestLFUEviction(t *testing.T) {
	k, f := testFabric(250, LFU)
	a := Dataset{Name: "a", Bytes: 100}
	b := Dataset{Name: "b", Bytes: 100}
	c := Dataset{Name: "c", Bytes: 100}
	for _, ds := range []Dataset{a, b, c} {
		f.Pin(ds, 2)
	}
	f.Stage(a, 0, nil)
	k.Run()
	f.Stage(b, 0, nil)
	k.Run()
	// a gets two more hits; b stays at freq 1 and should evict.
	f.Stage(a, 0, nil)
	f.Stage(a, 0, nil)
	f.Stage(c, 0, nil)
	k.Run()
	if f.Holds(0, "b") || !f.Holds(0, "a") {
		t.Fatal("LFU should have evicted b, kept a")
	}
}

func TestNoCachePolicy(t *testing.T) {
	k, f := testFabric(1e6, NoCache)
	ds := Dataset{Name: "a", Bytes: 100}
	f.Pin(ds, 2)
	f.Stage(ds, 0, nil)
	k.Run()
	if f.Holds(0, "a") {
		t.Fatal("NoCache retained data")
	}
	f.Stage(ds, 0, nil)
	k.Run()
	if f.Store(0).Misses != 2 {
		t.Fatalf("Misses = %d, want 2", f.Store(0).Misses)
	}
}

func TestOversizeDatasetNotRetained(t *testing.T) {
	k, f := testFabric(100, LRU)
	big := Dataset{Name: "big", Bytes: 1000}
	f.Pin(big, 2)
	done := false
	f.Stage(big, 0, func(bool) { done = true })
	k.Run()
	if !done {
		t.Fatal("oversize stage never completed")
	}
	if f.Holds(0, "big") {
		t.Fatal("oversize dataset retained beyond capacity")
	}
}

func TestPinnedNeverEvicted(t *testing.T) {
	k, f := testFabric(150, LRU)
	pinned := Dataset{Name: "pinned", Bytes: 100}
	f.Pin(pinned, 0) // pinned at the edge store itself
	remote := Dataset{Name: "r", Bytes: 100}
	f.Pin(remote, 2)
	f.Stage(remote, 0, nil)
	k.Run()
	if !f.Holds(0, "pinned") {
		t.Fatal("pinned replica evicted")
	}
	if !f.Holds(0, "r") {
		t.Fatal("cached dataset should fit (pinned exempt from budget)")
	}
}

func TestHitRate(t *testing.T) {
	k, f := testFabric(1e6, LRU)
	ds := Dataset{Name: "a", Bytes: 100}
	f.Pin(ds, 2)
	f.Stage(ds, 0, nil)
	k.Run()
	for i := 0; i < 3; i++ {
		f.Stage(ds, 0, nil)
	}
	if hr := f.Store(0).HitRate(); math.Abs(hr-0.75) > 1e-12 {
		t.Fatalf("HitRate = %v, want 0.75", hr)
	}
	if f.Store(1).HitRate() != 0 {
		t.Fatal("unused store HitRate != 0")
	}
}

func TestAddStorePanics(t *testing.T) {
	_, f := testFabric(1e6, LRU)
	cases := []struct {
		name string
		fn   func()
	}{
		{"negative capacity", func() { f.AddStore(9, -1, LRU) }},
		{"duplicate", func() { f.AddStore(0, 1, LRU) }},
		{"pin without store", func() { f.Pin(Dataset{Name: "x", Bytes: 1}, 99) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", tc.name)
				}
			}()
			tc.fn()
		})
	}
}

// Property: cache used bytes never exceed capacity and hit+miss == stages
// per store, under random Zipf access patterns, for every policy.
func TestPropertyCacheInvariants(t *testing.T) {
	f := func(seed uint64, polRaw uint8) bool {
		pol := Policy(polRaw % 3) // LRU, LFU, TwoRandom
		k := sim.NewKernel()
		net, _ := netsim.Line(k, 2, 0.001, 1e9)
		rng := workload.NewRNG(seed)
		fab := NewFabric(net, rng.Split())
		cache := fab.AddStore(0, 500, pol)
		fab.AddStore(1, 0, NoCache)
		const nds = 20
		sets := make([]Dataset, nds)
		for i := range sets {
			sets[i] = Dataset{Name: string(rune('a' + i)), Bytes: rng.Range(50, 200)}
			fab.Pin(sets[i], 1)
		}
		z := workload.NewZipf(rng.Split(), nds, 0.9)
		const accesses = 200
		done := 0
		for i := 0; i < accesses; i++ {
			at := rng.Range(0, 100)
			ds := sets[z.Next()]
			k.At(at, func() {
				fab.Stage(ds, 0, func(bool) { done++ })
				if cache.Used() > cache.Capacity+1e-9 {
					panic("cache over capacity")
				}
			})
		}
		k.Run()
		return done == accesses && cache.Used() <= cache.Capacity+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
