// Package data is the continuum's data fabric: named datasets with
// replicas pinned at home sites, per-node stores with configurable
// eviction (LRU, LFU, 2-random), and a staging engine that moves bytes
// over the simulated network — the Globus-transfer analogue of the
// reproduction.
//
// Staging coalesces concurrent requests for the same (dataset, node) pair
// into one transfer, and records hit/miss/bytes statistics for the caching
// experiments.
package data

import (
	"fmt"
	"math"

	"continuum/internal/netsim"
	"continuum/internal/workload"
)

// Dataset names an immutable blob of a known size.
type Dataset struct {
	Name  string
	Bytes float64
}

// Policy selects a cache eviction strategy.
type Policy int

// Supported eviction policies.
const (
	LRU Policy = iota
	LFU
	TwoRandom
	// NoCache stores nothing: every access is a miss. Useful baseline.
	NoCache
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "lru"
	case LFU:
		return "lfu"
	case TwoRandom:
		return "2random"
	case NoCache:
		return "nocache"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

type entry struct {
	ds       Dataset
	pinned   bool
	lastUsed float64
	freq     int64
}

// Store is one node's dataset holdings: pinned home replicas plus an
// evictable cache bounded by Capacity.
type Store struct {
	NodeID   int
	Capacity float64 // evictable-cache byte budget; pinned data is exempt
	Pol      Policy

	entries map[string]*entry
	used    float64 // bytes of unpinned (cache) entries

	// Hits/Misses/Evictions/BytesInserted summarize cache behaviour.
	Hits, Misses, Evictions int64
	BytesInserted           float64
}

// Fabric tracks datasets, replicas, and staging over a network.
type Fabric struct {
	net    *netsim.Network
	rng    *workload.RNG
	stores map[int]*Store

	inflight map[string][]func(bool) // key: name@node -> waiting callbacks

	// BytesMoved is the total bytes transferred by staging; WANBytes can be
	// derived per-link from the network's counters.
	BytesMoved float64
	// Stages counts Stage calls; Coalesced counts calls absorbed into an
	// in-flight transfer.
	Stages, Coalesced int64
}

// NewFabric creates a fabric over net. The RNG drives 2-random eviction.
func NewFabric(net *netsim.Network, rng *workload.RNG) *Fabric {
	return &Fabric{
		net:      net,
		rng:      rng,
		stores:   make(map[int]*Store),
		inflight: make(map[string][]func(bool)),
	}
}

// AddStore registers a store at node id with the given cache capacity in
// bytes (0 allows only pinned data) and eviction policy.
func (f *Fabric) AddStore(nodeID int, capacity float64, pol Policy) *Store {
	if capacity < 0 {
		panic(fmt.Sprintf("data: negative capacity %v", capacity))
	}
	if _, dup := f.stores[nodeID]; dup {
		panic(fmt.Sprintf("data: duplicate store for node %d", nodeID))
	}
	s := &Store{NodeID: nodeID, Capacity: capacity, Pol: pol, entries: make(map[string]*entry)}
	f.stores[nodeID] = s
	return s
}

// Store returns the store at node id, or nil.
func (f *Fabric) Store(nodeID int) *Store { return f.stores[nodeID] }

// Pin places a permanent replica of ds at node id (its "home"); pinned
// replicas never evict and do not consume cache budget.
func (f *Fabric) Pin(ds Dataset, nodeID int) {
	s := f.stores[nodeID]
	if s == nil {
		panic(fmt.Sprintf("data: no store at node %d", nodeID))
	}
	s.entries[ds.Name] = &entry{ds: ds, pinned: true}
}

// Holds reports whether node id currently holds name.
func (f *Fabric) Holds(nodeID int, name string) bool {
	s := f.stores[nodeID]
	if s == nil {
		return false
	}
	_, ok := s.entries[name]
	return ok
}

// Locate returns the ids of all nodes holding name, in unspecified order.
func (f *Fabric) Locate(name string) []int {
	var out []int
	for id, s := range f.stores {
		if _, ok := s.entries[name]; ok {
			out = append(out, id)
		}
	}
	return out
}

// NearestReplica returns the holder of name with minimum network latency
// to nodeID, or an error if no replica exists.
func (f *Fabric) NearestReplica(name string, nodeID int) (int, error) {
	best, bestLat := -1, math.Inf(1)
	for _, id := range f.Locate(name) {
		lat := f.net.Latency(id, nodeID)
		// Deterministic tie-break on id keeps runs reproducible.
		if lat < bestLat || (lat == bestLat && (best == -1 || id < best)) {
			best, bestLat = id, lat
		}
	}
	if best == -1 {
		return 0, fmt.Errorf("data: no replica of %q", name)
	}
	return best, nil
}

// StageTime estimates how long Stage would take right now, uncontended:
// 0 for a local hit, otherwise the transfer time from the nearest replica.
func (f *Fabric) StageTime(ds Dataset, nodeID int) float64 {
	if f.Holds(nodeID, ds.Name) {
		return 0
	}
	src, err := f.NearestReplica(ds.Name, nodeID)
	if err != nil {
		return math.Inf(1)
	}
	return f.net.TransferTime(src, nodeID, ds.Bytes)
}

// Stage makes ds available at nodeID, then calls done(hit) — hit is true
// when the dataset was already local. Misses transfer from the nearest
// replica and insert into the node's cache (evicting per policy).
// Concurrent stages of the same dataset to the same node share one
// transfer. Stage panics if no replica of the dataset exists anywhere.
func (f *Fabric) Stage(ds Dataset, nodeID int, done func(hit bool)) {
	f.Stages++
	s := f.stores[nodeID]
	if s == nil {
		panic(fmt.Sprintf("data: no store at node %d", nodeID))
	}
	now := f.net.Kernel().Now()
	if e, ok := s.entries[ds.Name]; ok {
		s.Hits++
		e.lastUsed = now
		e.freq++
		if done != nil {
			done(true)
		}
		return
	}
	s.Misses++
	key := ds.Name + "@" + itoa(nodeID)
	if waiters, busy := f.inflight[key]; busy {
		f.Coalesced++
		f.inflight[key] = append(waiters, done)
		return
	}
	f.inflight[key] = []func(bool){done}
	src, err := f.NearestReplica(ds.Name, nodeID)
	if err != nil {
		panic(err)
	}
	f.net.Transfer(src, nodeID, ds.Bytes, func(*netsim.Flow) {
		f.BytesMoved += ds.Bytes
		s.insert(ds, f.net.Kernel().Now(), f.rng)
		waiters := f.inflight[key]
		delete(f.inflight, key)
		for _, w := range waiters {
			if w != nil {
				w(false)
			}
		}
	})
}

func itoa(n int) string { return fmt.Sprintf("%d", n) }

// insert adds ds as an unpinned cache entry, evicting per policy until it
// fits. Datasets larger than the whole cache are used but not retained.
func (s *Store) insert(ds Dataset, now float64, rng *workload.RNG) {
	if s.Pol == NoCache || ds.Bytes > s.Capacity {
		return
	}
	if _, ok := s.entries[ds.Name]; ok {
		return // raced with another insert; already present
	}
	for s.used+ds.Bytes > s.Capacity {
		if !s.evictOne(rng) {
			return // nothing evictable; give up retaining
		}
	}
	s.entries[ds.Name] = &entry{ds: ds, lastUsed: now, freq: 1}
	s.used += ds.Bytes
	s.BytesInserted += ds.Bytes
}

// evictOne removes one unpinned entry per the policy, reporting success.
func (s *Store) evictOne(rng *workload.RNG) bool {
	var victim *entry
	switch s.Pol {
	case LRU:
		for _, e := range s.entries {
			if e.pinned {
				continue
			}
			if victim == nil || e.lastUsed < victim.lastUsed ||
				(e.lastUsed == victim.lastUsed && e.ds.Name < victim.ds.Name) {
				victim = e
			}
		}
	case LFU:
		for _, e := range s.entries {
			if e.pinned {
				continue
			}
			if victim == nil || e.freq < victim.freq ||
				(e.freq == victim.freq && e.ds.Name < victim.ds.Name) {
				victim = e
			}
		}
	case TwoRandom:
		// Choose two random unpinned entries, evict the least recently
		// used of the pair — the classic power-of-two-choices
		// approximation to LRU without a global ordering.
		var pool []*entry
		for _, e := range s.entries {
			if !e.pinned {
				pool = append(pool, e)
			}
		}
		if len(pool) == 0 {
			return false
		}
		a := pool[rng.Intn(len(pool))]
		b := pool[rng.Intn(len(pool))]
		victim = a
		if b.lastUsed < a.lastUsed {
			victim = b
		}
	default:
		return false
	}
	if victim == nil {
		return false
	}
	delete(s.entries, victim.ds.Name)
	s.used -= victim.ds.Bytes
	s.Evictions++
	return true
}

// Used returns the bytes of unpinned cache entries currently held.
func (s *Store) Used() float64 { return s.used }

// Len returns the number of datasets (pinned + cached) held.
func (s *Store) Len() int { return len(s.entries) }

// HitRate returns Hits/(Hits+Misses), or 0 when unused.
func (s *Store) HitRate() float64 {
	tot := s.Hits + s.Misses
	if tot == 0 {
		return 0
	}
	return float64(s.Hits) / float64(tot)
}
