package scenario

// Runner executes scenarios on one of the two interchangeable backends.
// The same file means the same experiment on both: the compiled event
// timeline, the seed-derived arrival schedule, and the chaos draws are
// shared — only the substrate differs (virtual time over the simulated
// continuum vs wall-clock time over a real in-process continuumd
// fleet).
type Runner interface {
	// Backend names the substrate: "sim" or "live".
	Backend() string
	// Run validates and executes the scenario, returning its report.
	Run(s *Scenario) (*Report, error)
}

// SimRunner executes scenarios on the discrete-event simulator.
type SimRunner struct{}

// Backend returns "sim".
func (SimRunner) Backend() string { return "sim" }

// Run executes the scenario in virtual time.
func (SimRunner) Run(s *Scenario) (*Report, error) { return s.Run() }

// LiveRunner executes scenarios against an in-process continuumd fleet.
type LiveRunner struct {
	// Options tunes the fleet; the zero value uses the defaults
	// documented on LiveOptions.
	Options LiveOptions
}

// Backend returns "live".
func (LiveRunner) Backend() string { return "live" }

// Run executes the scenario in wall-clock time (scaled by
// Options.TimeScale).
func (r LiveRunner) Run(s *Scenario) (*Report, error) { return s.RunLive(r.Options) }
