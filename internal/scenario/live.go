package scenario

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"continuum/internal/faas"
	"continuum/internal/fault"
	"continuum/internal/federation"
	"continuum/internal/metrics"
	"continuum/internal/retry"
	"continuum/internal/trace"
	"continuum/internal/wire"
	"continuum/internal/workload"
)

// This file is the live backend: every scenario node becomes a real
// in-process continuumd (a faas endpoint behind a wire server on a
// loopback TCP listener — the exact composition cmd/continuumd builds
// from flags), a wire.ReliableClient with retries, failover, and
// circuit breakers drives the whole fleet, and the compiled event
// timeline is replayed in wall-clock time: failed nodes drop every
// request (and stop generating load), chaos events install real
// fault.Chaos injectors via Server.SetChaos, link degradation becomes
// injected delay at the endpoints. The claim the e2e gate asserts is
// the chaos-test claim generalized to whole scenarios: zero lost
// requests, no matter what the script does to the fleet.

// LiveOptions parameterizes the live backend (see LiveRunner).
type LiveOptions struct {
	// TimeScale is wall-clock seconds per scenario second (default 1).
	// CI smokes use small values (e.g. 0.02) to replay a 30-second
	// scenario in under a second; event times, arrival gaps, and chaos
	// phase lengths all scale together.
	TimeScale float64
	// Function is the builtin each request invokes (default "echo",
	// whose response the runner also verifies byte-for-byte).
	Function string
	// Capacity is each endpoint's concurrent container slots
	// (default 16).
	Capacity int
	// MaxNodes refuses accidentally huge live fleets (default 128):
	// every scenario node is a real TCP server, so a 1000-node stress
	// scenario belongs on the sim backend.
	MaxNodes int
	// Spans, when set, traces every live invocation end to end: the
	// reliable client roots one trace per request, and every fleet node
	// records its server/queue/exec spans into this same store (the whole
	// fleet is in-process, so one ring holds the merged view directly).
	// The ring overwrites under sustained load — size it to the scenario
	// or pull promptly. Nil (the default) keeps the run span-free.
	Spans *trace.SpanStore
	// Router fronts the fleet with an in-process continuum-router: every
	// node registers through a federation.Agent and the scenario's
	// requests flow client → router → fleet, so scripted churn (leave /
	// join events, failures) exercises the registry's suspect/expiry
	// machinery instead of a static address list.
	Router bool
	// Policy names the router's routing policy when Router is set
	// ("hash" or "least-loaded"; default hash). Ignored otherwise.
	Policy string
	// Heartbeat is the federation heartbeat interval when Router is set
	// (default 100ms — scaled scenarios replay in wall-clock time, so the
	// cadence must be fast enough for churn to be noticed mid-run).
	Heartbeat time.Duration
}

func (o LiveOptions) timeScale() float64 {
	if o.TimeScale <= 0 {
		return 1
	}
	return o.TimeScale
}

func (o LiveOptions) function() string {
	if o.Function == "" {
		return "echo"
	}
	return o.Function
}

func (o LiveOptions) capacity() int {
	if o.Capacity <= 0 {
		return 16
	}
	return o.Capacity
}

func (o LiveOptions) maxNodes() int {
	if o.MaxNodes <= 0 {
		return 128
	}
	return o.MaxNodes
}

func (o LiveOptions) heartbeat() time.Duration {
	if o.Heartbeat <= 0 {
		return 100 * time.Millisecond
	}
	return o.Heartbeat
}

// liveNode is one in-process continuumd: endpoint, server, listener
// address, and whether the node is currently scripted as failed (a
// failed origin generates no traffic, matching the sim's DropSubmit) or
// drained (cordoned and generating nothing — the maintenance shape).
type liveNode struct {
	name    string
	addr    string
	ep      *faas.Endpoint
	srv     *wire.Server
	paused  atomic.Bool
	drained atomic.Bool

	// Router mode: the node's registration agent, plus the factory a
	// scripted join uses to re-register after a leave (agents are
	// one-shot — Leave closes them). Both are touched only by RunLive's
	// setup and the single replay goroutine, never concurrently.
	agent    *federation.Agent
	newAgent func() *federation.Agent
}

// startLiveNode boots one node of the fleet on a loopback listener.
func startLiveNode(name string, capacity int, spans *trace.SpanStore) (*liveNode, error) {
	reg := faas.BuiltinRegistry()
	ep := faas.NewEndpoint(faas.EndpointConfig{
		Name: name, Capacity: capacity, WarmTTL: time.Minute,
		PreemptAbandoned: true,
	}, reg)
	ep.SetSpans(spans)
	srv := &wire.Server{
		Invoker: ep, Batcher: ep, Registry: reg,
		Endpoints: []*faas.Endpoint{ep},
		Name:      name, Spans: spans,
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		ep.Close()
		return nil, fmt.Errorf("scenario: live node %q: %w", name, err)
	}
	go srv.Serve(lis)
	return &liveNode{name: name, addr: lis.Addr().String(), ep: ep, srv: srv}, nil
}

// RunLive executes the scenario against an in-process continuumd fleet,
// replaying the compiled event timeline in scaled wall-clock time. It
// supports stream scenarios only — a DAG has no live execution path —
// and reports Lost > 0 if any invocation failed through the reliable
// client (the e2e gate asserts zero).
func (s *Scenario) RunLive(opts LiveOptions) (*Report, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s.Stream == nil {
		return nil, fmt.Errorf("scenario %q: the live backend replays stream scenarios only (DAG workloads are simulator-only)", s.Name)
	}
	if len(s.Nodes) > opts.maxNodes() {
		return nil, fmt.Errorf("scenario %q: %d nodes exceeds the live fleet cap %d (LiveOptions.MaxNodes); use the sim backend for fleets this large", s.Name, len(s.Nodes), opts.maxNodes())
	}
	rng := workload.NewRNG(s.Seed)
	ops, err := s.compile(rng.Split())
	if err != nil {
		return nil, err
	}
	scale := opts.timeScale()
	fn := opts.function()

	fleet := make(map[string]*liveNode, len(s.Nodes))
	var addrs []string
	var rt *federation.Router
	var rtSrv *wire.Server
	shutdown := func() {
		for _, ln := range fleet {
			if ln.agent != nil {
				ln.agent.Leave(false)
			}
			ln.srv.Close()
			ln.ep.Close()
		}
		if rtSrv != nil {
			rtSrv.Close()
		}
		if rt != nil {
			rt.Close()
		}
	}
	for _, nj := range s.Nodes {
		ln, err := startLiveNode(nj.Name, opts.capacity(), opts.Spans)
		if err != nil {
			shutdown()
			return nil, err
		}
		fleet[nj.Name] = ln
		addrs = append(addrs, ln.addr)
	}
	defer shutdown()

	// Router mode: boot an in-process continuum-router, register every
	// node through a federation agent, and point the scenario's client at
	// the router alone — requests flow client → router → fleet, so the
	// script's churn exercises live membership instead of a fixed list.
	if opts.Router {
		policy, ok := federation.PolicyByName(opts.Policy)
		if !ok {
			return nil, fmt.Errorf("scenario %q: unknown router policy %q (want hash or least-loaded)", s.Name, opts.Policy)
		}
		rt, err = federation.NewRouter(federation.RouterConfig{
			Registry: federation.Config{HeartbeatInterval: opts.heartbeat()},
			Policy:   policy,
			Client: wire.ReliableConfig{
				Retry:       retry.Policy{MaxAttempts: 8, BaseDelay: time.Millisecond, MaxDelay: 20 * time.Millisecond},
				Breaker:     retry.BreakerConfig{FailureThreshold: 3, Cooldown: 50 * time.Millisecond},
				CallTimeout: 2 * time.Second,
			},
			Spans: opts.Spans,
		})
		if err != nil {
			return nil, fmt.Errorf("scenario %q: router: %w", s.Name, err)
		}
		rtSrv = &wire.Server{Invoker: rt, Ops: rt, Name: "router", Spans: opts.Spans}
		rlis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("scenario %q: router listener: %w", s.Name, err)
		}
		go rtSrv.Serve(rlis)
		routerAddr := rlis.Addr().String()
		for _, ln := range fleet {
			ln := ln
			ln.newAgent = func() *federation.Agent {
				return federation.NewAgent(federation.AgentConfig{
					RouterAddr: routerAddr,
					Name:       ln.name,
					Advertise:  ln.addr,
					Endpoint:   ln.ep,
				})
			}
			ln.agent = ln.newAgent()
			ln.agent.Start()
		}
		// Wait for the full fleet to register before load starts: the
		// scenario's arrival schedule begins at t=0, and a half-joined
		// fleet would skew the experiment (not its correctness — routing
		// an empty set is a retryable error).
		deadline := time.Now().Add(5 * time.Second)
		for rt.Registry().Len() < len(fleet) {
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("scenario %q: only %d/%d nodes registered with the router", s.Name, rt.Registry().Len(), len(fleet))
			}
			time.Sleep(time.Millisecond)
		}
		addrs = []string{routerAddr}
	}

	m := metrics.NewRegistry()
	rc, err := wire.NewReliableClient(wire.ReliableConfig{
		Addrs: addrs,
		Retry: retry.Policy{
			MaxAttempts: 12,
			BaseDelay:   time.Millisecond,
			MaxDelay:    20 * time.Millisecond,
		},
		Breaker: retry.BreakerConfig{
			FailureThreshold: 3,
			Cooldown:         50 * time.Millisecond,
		},
		CallTimeout: 2 * time.Second,
		Metrics:     m,
		Spans:       opts.Spans,
		Service:     "scenario",
	})
	if err != nil {
		return nil, fmt.Errorf("scenario %q: live client: %w", s.Name, err)
	}
	defer rc.Close()

	start := time.Now()
	wall := func(at float64) time.Time {
		return start.Add(time.Duration(at * scale * float64(time.Second)))
	}

	// Event replay: one goroutine walks the compiled timeline in order.
	stopReplay := make(chan struct{})
	var replayDone sync.WaitGroup
	replayDone.Add(1)
	go func() {
		defer replayDone.Done()
		s.replayOps(fleet, ops, scale, wall, stopReplay)
	}()

	// Load: one generator per origin, drawing the same seed-derived
	// arrival schedule (in scenario time) the sim backend uses, scaled
	// to wall time. Each invocation runs in its own goroutine so a slow
	// retry storm never delays subsequent arrivals.
	lat := metrics.NewHistogram()
	var completed, lost, suppressed atomic.Int64
	ph := phases(ops)
	var gens, calls sync.WaitGroup
	for _, origin := range s.Stream.Origins {
		arr := workload.NewPiecewise(rng.Split(), s.Stream.RatePerOrigin, ph)
		ln := fleet[origin]
		// The origin's scripted priority rides every request's context, so
		// it crosses the wire to the fleet's admission controllers exactly
		// as a real client's would.
		ctx := context.Background()
		if p := faas.Priority(s.Stream.Priorities[origin]); p != faas.PriorityNormal {
			ctx = faas.WithPriority(ctx, p)
		}
		gens.Add(1)
		go func(ln *liveNode, arr *workload.Piecewise, ctx context.Context) {
			defer gens.Done()
			t, seq := 0.0, 0
			for {
				t += arr.Next()
				if t > s.Stream.Horizon {
					return
				}
				time.Sleep(time.Until(wall(t)))
				if ln.paused.Load() || ln.drained.Load() {
					suppressed.Add(1) // a down or drained origin generates nothing
					continue
				}
				seq++
				payload := fmt.Sprintf("%s/%s#%d", s.Name, ln.name, seq)
				calls.Add(1)
				go func() {
					defer calls.Done()
					t0 := time.Now()
					out, err := rc.InvokeContext(ctx, fn, []byte(payload))
					if err != nil || (fn == "echo" && string(out) != payload) {
						lost.Add(1)
						return
					}
					completed.Add(1)
					lat.Add(time.Since(t0).Seconds())
				}()
			}
		}(ln, arr, ctx)
	}
	gens.Wait()
	calls.Wait()
	close(stopReplay)
	replayDone.Wait()

	perNode := make(map[string]int64, len(fleet))
	for name, ln := range fleet {
		perNode[name] = ln.ep.Invocations()
	}
	kind := "live/"
	if opts.Router {
		kind = "live+router/"
	}
	return &Report{
		Scenario:   s.Name,
		Backend:    "live",
		Workload:   kind + fn,
		Completed:  completed.Load(),
		Lost:       lost.Load(),
		Retries:    int64(m.Counter("wire_client_retries_total").Value()),
		Suppressed: suppressed.Load(),
		Makespan:   time.Since(start).Seconds(),
		MeanLat:    lat.Mean(),
		P99Lat:     lat.P99(),
		PerNode:    perNode,
	}, nil
}

// replayOps applies the compiled timeline to the fleet at scaled
// wall-clock times. Node failure is modeled as a drop-everything chaos
// injector plus a paused generator — the TCP listener stays up, exactly
// like a wedged-but-reachable endpoint, which is the harder failure for
// a client to survive (the chaos e2e kills the listener instead; both
// paths must end in zero losses).
func (s *Scenario) replayOps(fleet map[string]*liveNode, ops []op, scale float64,
	wall func(float64) time.Time, stop <-chan struct{}) {
	for _, o := range ops {
		timer := time.NewTimer(time.Until(wall(o.at)))
		select {
		case <-stop:
			timer.Stop()
			return
		case <-timer.C:
		}
		switch o.kind {
		case opFail:
			ln := fleet[o.node]
			ln.paused.Store(true)
			ln.srv.SetChaos(fault.NewChaos(fault.ChaosSpec{DropProb: 1, Seed: 1}))
		case opRepair:
			ln := fleet[o.node]
			ln.srv.SetChaos(nil)
			ln.paused.Store(false)
		case opChaosOn:
			fleet[o.node].srv.SetChaos(fault.NewChaos(scaleChaos(o.chaos, scale)))
		case opChaosOff:
			fleet[o.node].srv.SetChaos(nil)
		case opCordon:
			// The real graceful hold: the endpoint rejects new work with
			// ErrCordoned (retryable, so the client fails over) while
			// in-flight invocations finish. Drain also quiets the node's
			// own generator, matching the sim's DropSubmit.
			ln := fleet[o.node]
			ln.ep.SetCordon(true)
			if o.drain {
				ln.drained.Store(true)
			}
		case opUncordon:
			ln := fleet[o.node]
			ln.ep.SetCordon(false)
			ln.drained.Store(false)
		case opLeave:
			// Graceful federation departure: quiet the generator, cordon
			// (in-flight work finishes, new work is rejected retryably),
			// and — router-fronted — announce a drain-deregister so the
			// router stops preferring this node before its breaker ever
			// has to learn the hard way.
			ln := fleet[o.node]
			ln.drained.Store(true)
			ln.ep.SetCordon(true)
			if ln.agent != nil {
				ln.agent.Leave(true)
				ln.agent = nil
			}
		case opJoin:
			ln := fleet[o.node]
			ln.ep.SetCordon(false)
			ln.drained.Store(false)
			ln.paused.Store(false)
			if ln.agent == nil && ln.newAgent != nil {
				// Re-register with a fresh agent (and a fresh generation —
				// the router retired the old one at the leave).
				ln.agent = ln.newAgent()
				ln.agent.Start()
			}
		case opLink:
			// Approximation: a degraded link becomes injected delay at both
			// endpoint servers — the wire has no simulated topology to slow
			// down. The added delay is the extra one-way latency the sim
			// backend would see on that link.
			extra := s.linkBase(o.a, o.b).Latency * (o.factor - 1)
			for _, name := range []string{o.a, o.b} {
				ln := fleet[name]
				if o.factor == 1 || extra <= 0 {
					ln.srv.SetChaos(nil)
					continue
				}
				ln.srv.SetChaos(fault.NewChaos(fault.ChaosSpec{
					DelayProb: 1,
					DelayMean: time.Duration(extra * scale * float64(time.Second)),
					Seed:      1,
				}))
			}
		case opWorkload:
			// Already compiled into the generators' phase schedule.
		}
	}
}

// scaleChaos converts a chaos spec from scenario time to wall time:
// phase lengths and delay means stretch by the time scale; per-request
// probabilities and the seed are time-free and pass through.
func scaleChaos(spec fault.ChaosSpec, scale float64) fault.ChaosSpec {
	spec.MeanUp *= scale
	spec.MeanDown *= scale
	spec.DelayMean = time.Duration(float64(spec.DelayMean) * scale)
	return spec
}
