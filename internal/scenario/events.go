package scenario

import (
	"fmt"
	"path"
	"sort"
	"strings"

	"continuum/internal/fault"
	"continuum/internal/workload"
)

// EventJSON is one entry in a scenario's timed event script. At is in
// scenario seconds from run start (the simulator replays it in virtual
// time, the live runner in wall-clock time × LiveOptions.TimeScale).
// Kind selects the effect:
//
//	fail          target node(s) fail-stop; "for" seconds later they
//	              auto-recover (omit "for" to leave them down)
//	recover       target node(s) repair
//	cascade       correlated failure: "count" of the matching nodes
//	              (seed-drawn) fail one after another "spacing" seconds
//	              apart, each down for "for" seconds
//	chaos         per-request fault injection on target node(s); "spec"
//	              uses the shared fault grammar (drop/err/delay/delayp/
//	              up/down/seed — see fault.ParseChaos); "for" auto-stops
//	chaos-off     stop chaos on target node(s)
//	degrade-link  target "a->b": both directions of that link get
//	              latency × factor and capacity ÷ factor
//	restore-link  target "a->b": back to the scenario's figures
//	workload      the global stream arrival rate multiplier becomes
//	              "factor" (flash crowds, diurnal ramps)
//	cordon        target node(s) stop accepting NEW work while in-flight
//	              work finishes (the graceful half of a failure); "for"
//	              seconds later they uncordon (omit "for" to leave the
//	              hold in place)
//	uncordon      target node(s) accept new work again
//	drain         cordon plus the node's own request generator goes
//	              quiet — the maintenance shape: stop taking work, stop
//	              making work, let the pipeline empty; "for" undoes both
//	leave         target node(s) leave the federation gracefully: stop
//	              taking new work, stop generating, and (on a
//	              router-fronted live fleet) announce a drain-deregister
//	              to the router; "for" seconds later they rejoin (omit
//	              "for" to leave them gone)
//	join          target node(s) (re)join: accept and generate work
//	              again, re-registering with the router when one fronts
//	              the live fleet
//
// Node targets are an exact node name, a glob ("gw*"), or a tier
// selector ("class:gateway").
type EventJSON struct {
	At      float64 `json:"at"`
	Kind    string  `json:"kind"`
	Target  string  `json:"target,omitempty"`
	For     float64 `json:"for,omitempty"`
	Count   int     `json:"count,omitempty"`
	Spacing float64 `json:"spacing,omitempty"`
	Spec    string  `json:"spec,omitempty"`
	Factor  float64 `json:"factor,omitempty"`
}

// opKind enumerates the primitive timeline operations events compile to.
type opKind uint8

const (
	opFail opKind = iota
	opRepair
	opChaosOn
	opChaosOff
	opLink // factor 1 restores; anything else degrades
	opWorkload
	opCordon // drain=true also silences the node's generator
	opUncordon
	opLeave // graceful federation departure (sim: fail + quiet generator)
	opJoin  // rejoin (sim: repair; live+router: re-register)
)

// op is one compiled primitive. Events expand — cascades into staggered
// fail/repair pairs, target patterns into concrete node names, chaos
// specs into parsed structs with deterministic seeds — so both backends
// replay exactly the same timeline from the same compiled script.
type op struct {
	at     float64
	kind   opKind
	node   string          // opFail/opRepair/opChaosOn/opChaosOff/opCordon/opUncordon
	a, b   string          // opLink endpoints (scenario link order)
	factor float64         // opLink multiplier or opWorkload rate factor
	chaos  fault.ChaosSpec // opChaosOn
	drain  bool            // opCordon: also pause the node's generator
}

// compile expands the event script into a time-sorted primitive
// timeline, reporting the first invalid event positionally. rng feeds
// only random expansion (cascade victim order, chaos seeds) — never
// validity — so Validate can compile with a throwaway stream while runs
// compile with a seed-derived one.
func (s *Scenario) compile(rng *workload.RNG) ([]op, error) {
	if len(s.Events) == 0 {
		return nil, nil
	}
	evFail := func(i int, format string, args ...any) error {
		return fmt.Errorf("scenario %q: events[%d]: %s", s.Name, i, fmt.Sprintf(format, args...))
	}
	var ops []op
	for i, ev := range s.Events {
		if ev.At < 0 {
			return nil, evFail(i, "at %v must be >= 0", ev.At)
		}
		if ev.For < 0 {
			return nil, evFail(i, "for %v must be >= 0", ev.For)
		}
		switch ev.Kind {
		case "fail", "recover", "cascade", "chaos", "chaos-off", "cordon", "uncordon", "drain", "leave", "join":
			nodes, err := s.matchNodes(ev.Target)
			if err != nil {
				return nil, evFail(i, "%v", err)
			}
			switch ev.Kind {
			case "fail":
				for _, n := range nodes {
					ops = append(ops, op{at: ev.At, kind: opFail, node: n})
					if ev.For > 0 {
						ops = append(ops, op{at: ev.At + ev.For, kind: opRepair, node: n})
					}
				}
			case "recover":
				for _, n := range nodes {
					ops = append(ops, op{at: ev.At, kind: opRepair, node: n})
				}
			case "cascade":
				count := ev.Count
				if count <= 0 || count > len(nodes) {
					count = len(nodes)
				}
				if ev.Spacing < 0 {
					return nil, evFail(i, "spacing %v must be >= 0", ev.Spacing)
				}
				perm := rng.Perm(len(nodes))
				for k := 0; k < count; k++ {
					n := nodes[perm[k]]
					at := ev.At + float64(k)*ev.Spacing
					ops = append(ops, op{at: at, kind: opFail, node: n})
					if ev.For > 0 {
						ops = append(ops, op{at: at + ev.For, kind: opRepair, node: n})
					}
				}
			case "chaos":
				if ev.Spec == "" {
					return nil, evFail(i, "chaos needs a spec in the shared fault grammar, e.g. %q", "err=0.1,delay=20ms,delayp=0.3")
				}
				spec, err := fault.ParseChaos(ev.Spec)
				if err != nil {
					return nil, evFail(i, "%v", err)
				}
				if spec.Seed == 0 {
					// Draw a deterministic nonzero seed so the live Chaos
					// (which seeds from the clock on 0) stays reproducible.
					spec.Seed = int64(rng.Uint64()>>1) | 1
				}
				if spec.MeanUp > 0 && s.DAG != nil && ev.For <= 0 && !hasLaterChaosOff(s.Events, i) {
					return nil, evFail(i, "cycling chaos (up/down) in a DAG scenario needs \"for\" or a later chaos-off (no horizon bounds it)")
				}
				for _, n := range nodes {
					ops = append(ops, op{at: ev.At, kind: opChaosOn, node: n, chaos: spec})
					if ev.For > 0 {
						ops = append(ops, op{at: ev.At + ev.For, kind: opChaosOff, node: n})
					}
				}
			case "chaos-off":
				for _, n := range nodes {
					ops = append(ops, op{at: ev.At, kind: opChaosOff, node: n})
				}
			case "cordon", "drain":
				if len(nodes) == len(s.Nodes) {
					return nil, evFail(i, "%s %q would hold every node: at least one must stay schedulable", ev.Kind, ev.Target)
				}
				for _, n := range nodes {
					ops = append(ops, op{at: ev.At, kind: opCordon, node: n, drain: ev.Kind == "drain"})
					if ev.For > 0 {
						ops = append(ops, op{at: ev.At + ev.For, kind: opUncordon, node: n})
					}
				}
			case "uncordon":
				for _, n := range nodes {
					ops = append(ops, op{at: ev.At, kind: opUncordon, node: n})
				}
			case "leave":
				if len(nodes) == len(s.Nodes) {
					return nil, evFail(i, "leave %q would empty the fleet: at least one node must stay", ev.Target)
				}
				for _, n := range nodes {
					ops = append(ops, op{at: ev.At, kind: opLeave, node: n})
					if ev.For > 0 {
						ops = append(ops, op{at: ev.At + ev.For, kind: opJoin, node: n})
					}
				}
			case "join":
				for _, n := range nodes {
					ops = append(ops, op{at: ev.At, kind: opJoin, node: n})
				}
			}
		case "degrade-link", "restore-link":
			a, b, err := s.matchLink(ev.Target)
			if err != nil {
				return nil, evFail(i, "%v", err)
			}
			factor := 1.0
			if ev.Kind == "degrade-link" {
				if ev.Factor <= 0 {
					return nil, evFail(i, "degrade-link needs factor > 0 (latency multiplier / capacity divisor)")
				}
				factor = ev.Factor
			}
			ops = append(ops, op{at: ev.At, kind: opLink, a: a, b: b, factor: factor})
		case "workload":
			if s.Stream == nil {
				return nil, evFail(i, "workload event needs a stream workload")
			}
			if ev.Factor <= 0 {
				return nil, evFail(i, "workload event needs factor > 0")
			}
			ops = append(ops, op{at: ev.At, kind: opWorkload, factor: ev.Factor})
		default:
			return nil, evFail(i, "unknown kind %q (want fail|recover|cascade|chaos|chaos-off|cordon|uncordon|drain|leave|join|degrade-link|restore-link|workload)", ev.Kind)
		}
	}
	sort.SliceStable(ops, func(i, j int) bool { return ops[i].at < ops[j].at })
	return ops, nil
}

// hasLaterChaosOff reports whether any event after index i is a
// chaos-off (conservatively ignoring targets: its purpose is only to
// confirm the author thought about stopping an unbounded cycle).
func hasLaterChaosOff(events []EventJSON, i int) bool {
	for _, ev := range events[i+1:] {
		if ev.Kind == "chaos-off" {
			return true
		}
	}
	return false
}

// matchNodes resolves a node target — exact name, glob, or
// "class:<tier>" — against the scenario's nodes, in declaration order
// (which keeps expansion deterministic).
func (s *Scenario) matchNodes(pattern string) ([]string, error) {
	if pattern == "" {
		return nil, fmt.Errorf("target required (node name, glob, or class:<tier>)")
	}
	var out []string
	if cls, ok := strings.CutPrefix(pattern, "class:"); ok {
		c, err := parseClass(cls)
		if err != nil {
			return nil, err
		}
		for _, n := range s.Nodes {
			if n.Class == c.String() {
				out = append(out, n.Name)
			}
		}
	} else {
		for _, n := range s.Nodes {
			ok, err := path.Match(pattern, n.Name)
			if err != nil {
				return nil, fmt.Errorf("bad target pattern %q: %v", pattern, err)
			}
			if ok {
				out = append(out, n.Name)
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("target %q matches no node", pattern)
	}
	return out, nil
}

// matchLink resolves an "a->b" link target against the scenario's links
// (either direction), returning the endpoints in scenario declaration
// order.
func (s *Scenario) matchLink(target string) (string, string, error) {
	a, b, ok := strings.Cut(target, "->")
	if !ok {
		return "", "", fmt.Errorf("link target %q is not \"a->b\"", target)
	}
	a, b = strings.TrimSpace(a), strings.TrimSpace(b)
	for _, l := range s.Links {
		if (l.A == a && l.B == b) || (l.A == b && l.B == a) {
			return l.A, l.B, nil
		}
	}
	return "", "", fmt.Errorf("link %q is not defined", target)
}

// phases extracts the workload rate schedule from a compiled timeline
// (ops are time-sorted, so the phases come out sorted too).
func phases(ops []op) []workload.Phase {
	var ph []workload.Phase
	for _, o := range ops {
		if o.kind == opWorkload {
			ph = append(ph, workload.Phase{Start: o.at, Factor: o.factor})
		}
	}
	return ph
}

// linkKey canonicalizes a link's endpoints for map lookup.
func linkKey(a, b string) string { return a + "\x00" + b }
