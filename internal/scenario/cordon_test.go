package scenario

import (
	"strings"
	"testing"
)

// Tests for the cordon/uncordon/drain event kinds and the stream
// priority/admission knobs, on both backends.

func TestCompileCordonAndDrainOps(t *testing.T) {
	s := eventScenario()
	s.Events = []EventJSON{
		{At: 3, Kind: "drain", Target: "gw1", For: 4},
		{At: 5, Kind: "cordon", Target: "fog"},
		{At: 9, Kind: "uncordon", Target: "fog"},
	}
	ops := compileOk(t, s)
	if len(ops) != 4 {
		t.Fatalf("got %d ops, want drain+auto-uncordon+cordon+uncordon", len(ops))
	}
	if ops[0].kind != opCordon || !ops[0].drain || ops[0].node != "gw1" {
		t.Fatalf("drain op: %+v", ops[0])
	}
	if ops[1].kind != opCordon || ops[1].drain || ops[1].node != "fog" {
		t.Fatalf("cordon op: %+v", ops[1])
	}
	if ops[2].kind != opUncordon || ops[2].at != 7 || ops[2].node != "gw1" {
		t.Fatalf("auto-uncordon op: %+v", ops[2])
	}
	if ops[3].kind != opUncordon || ops[3].at != 9 || ops[3].node != "fog" {
		t.Fatalf("scripted uncordon op: %+v", ops[3])
	}
}

func TestCordonValidationErrors(t *testing.T) {
	cases := []struct {
		name string
		ev   EventJSON
		want string
	}{
		{"cordon everything", EventJSON{At: 1, Kind: "cordon", Target: "*"}, "every node"},
		{"drain everything", EventJSON{At: 1, Kind: "drain", Target: "*"}, "every node"},
		{"cordon no target", EventJSON{At: 1, Kind: "cordon"}, "target required"},
		{"uncordon no match", EventJSON{At: 1, Kind: "uncordon", Target: "ghost*"}, "matches no node"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := eventScenario()
			s.Events = []EventJSON{tc.ev}
			err := s.Validate()
			if err == nil {
				t.Fatalf("%s accepted", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) || !strings.Contains(err.Error(), "events[0]") {
				t.Fatalf("error %q: want positional mention of %q", err, tc.want)
			}
		})
	}
}

func TestPriorityValidationErrors(t *testing.T) {
	s := eventScenario()
	s.Stream.Priorities = map[string]int{"ghost": 1}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "not a stream origin") {
		t.Fatalf("unknown priority origin accepted: %v", err)
	}
	s.Stream.Priorities = map[string]int{"gw0": 7}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("out-of-range priority accepted: %v", err)
	}
	s.Stream.Priorities = map[string]int{"gw0": 1, "gw1": -1}
	s.Stream.Admission = -3
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "admission") {
		t.Fatalf("negative admission accepted: %v", err)
	}
}

// TestSimCordonStopsNewWork: cordoning the fog for the whole run must
// steer every placement elsewhere without losing anything, and the trace
// must carry the cordon/uncordon records.
func TestSimCordonStopsNewWork(t *testing.T) {
	base := eventScenario()
	base.Stream.Horizon = 10
	r0, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r0.PerNode["fog"] == 0 {
		t.Fatal("baseline never used the fog; cordon would be vacuous")
	}

	s := eventScenario()
	s.Stream.Horizon = 10
	s.Events = []EventJSON{{At: 0, Kind: "cordon", Target: "fog", For: 20}}
	r, tr, err := s.RunTraced()
	if err != nil {
		t.Fatal(err)
	}
	if r.PerNode["fog"] != 0 {
		t.Fatalf("cordoned fog still received %d jobs", r.PerNode["fog"])
	}
	if r.Completed == 0 || r.Lost != 0 {
		t.Fatalf("cordon run: %d completed, %d lost", r.Completed, r.Lost)
	}
	kinds := make(map[string]int)
	for _, ev := range tr.Events() {
		kinds[string(ev.Kind)]++
	}
	if kinds["cordon"] != 1 || kinds["uncordon"] != 1 {
		t.Fatalf("trace records: %v", kinds)
	}
}

// TestSimDrainSilencesOrigin: draining a gateway mid-run suppresses its
// submissions (counted, not lost) and sends it no new work.
func TestSimDrainSilencesOrigin(t *testing.T) {
	s := eventScenario()
	s.Stream.RatePerOrigin = 20
	s.Stream.Horizon = 10
	s.Events = []EventJSON{{At: 2, Kind: "drain", Target: "gw0", For: 6}}
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Suppressed == 0 {
		t.Fatal("drained origin kept generating")
	}
	if r.Lost != 0 {
		t.Fatalf("drain lost %d requests", r.Lost)
	}
}

// TestSimAdmissionSheds: an overloaded stream under a tight admission
// bound sheds fail-fast (reported in Shed, never Lost), and a
// priority-mixed variant sheds no more high-priority work than the
// uniform one gains.
func TestSimAdmissionSheds(t *testing.T) {
	s := eventScenario()
	s.Stream.RatePerOrigin = 40
	s.Stream.Horizon = 10
	s.Stream.Admission = 8
	s.Stream.Priorities = map[string]int{"gw0": 1, "gw1": -1}
	s.Events = []EventJSON{{At: 1, Kind: "workload", Factor: 4}}
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Shed == 0 {
		t.Fatal("overloaded run shed nothing")
	}
	if r.Lost != 0 {
		t.Fatalf("admission turned shed into loss: %d lost", r.Lost)
	}
	if r.Completed == 0 {
		t.Fatal("admission starved the run completely")
	}
	if r.Completed+r.Shed == 0 || r.Shed <= r.Completed/100 {
		t.Fatalf("bound too loose to exercise shedding: %d shed vs %d completed", r.Shed, r.Completed)
	}
}

// TestLiveCordonDrainZeroLost replays cordon and drain against a real
// fleet: the cordoned endpoint rejects retryably, the client fails over,
// and nothing is lost.
func TestLiveCordonDrainZeroLost(t *testing.T) {
	if testing.Short() {
		t.Skip("live fleet skipped in -short")
	}
	s := liveScenario()
	s.Name = "live-cordon"
	s.Stream.Priorities = map[string]int{"gw0": 1, "gw2": -1}
	s.Events = []EventJSON{
		{At: 1, Kind: "cordon", Target: "fog", For: 3},
		{At: 2, Kind: "drain", Target: "gw2", For: 4},
	}
	r, err := LiveRunner{Options: LiveOptions{TimeScale: 0.05}}.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if r.Completed == 0 {
		t.Fatal("nothing completed")
	}
	if r.Lost != 0 {
		t.Fatalf("%d requests lost through cordon/drain", r.Lost)
	}
	if r.Suppressed == 0 {
		t.Fatal("drained origin gw2 generated load anyway")
	}
}
