package scenario

import (
	"testing"
	"time"
)

func TestGenerateStressValidates(t *testing.T) {
	for _, n := range []int{0, 8, 100, 1000} {
		s := GenerateStress(StressSpec{Nodes: n, Seed: 1})
		if err := s.Validate(); err != nil {
			t.Fatalf("stress n=%d: %v", n, err)
		}
	}
	s := GenerateStress(StressSpec{Nodes: 1000})
	if len(s.Nodes) != 1000 {
		t.Fatalf("asked for 1000 nodes, got %d", len(s.Nodes))
	}
}

// TestStress1000Nodes is the scale gate from the issue: a generated
// 1000-node scenario must validate and complete a full sim run — every
// event mechanism firing at once over a 1000-node fleet — within a
// generous CI-safe budget. (`make stress` runs the same scenario
// through the CLI with a wall-clock check.)
func TestStress1000Nodes(t *testing.T) {
	if testing.Short() {
		t.Skip("stress harness skipped in -short")
	}
	s := GenerateStress(StressSpec{Nodes: 1000, Seed: 42})
	start := time.Now()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if r.Completed == 0 {
		t.Fatal("1000-node stress completed nothing")
	}
	if r.MeanLat <= 0 {
		t.Fatalf("degenerate report: %+v", r)
	}
	if len(r.PerNode) == 0 {
		t.Fatal("no per-node placement data")
	}
	// The script fails fog0 and cascades gateways, so there must be
	// retry/suppression activity — a zero here means events never fired.
	if r.Retries == 0 && r.Suppressed == 0 {
		t.Fatal("stress events produced no retries or suppressed submissions")
	}
	if budget := 120 * time.Second; elapsed > budget {
		t.Fatalf("1000-node stress took %v, budget %v", elapsed, budget)
	}
	t.Logf("1000 nodes: completed=%d lost=%d retries=%d suppressed=%d in %v",
		r.Completed, r.Lost, r.Retries, r.Suppressed, elapsed)
}
