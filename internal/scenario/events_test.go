package scenario

import (
	"strings"
	"testing"

	"continuum/internal/workload"
)

// eventScenario returns a small stream scenario to hang event scripts
// off: three gateways, a fog, and a cloud.
func eventScenario() *Scenario {
	s := Example()
	s.Events = nil
	s.Nodes = append(s.Nodes, NodeJSON{
		Name: "gw2", Class: "gateway", Cores: 4, CoreFlops: 2.5e9,
		MemBytes: 4 << 30, IdleWatts: 2, ActiveWatts: 3,
	})
	s.Links = append(s.Links, LinkJSON{A: "gw2", B: "fog", Latency: 0.002, Capacity: 1.25e8})
	return s
}

func compileOk(t *testing.T, s *Scenario) []op {
	t.Helper()
	ops, err := s.compile(workload.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	return ops
}

func TestCompileFailWithAutoRecover(t *testing.T) {
	s := eventScenario()
	s.Events = []EventJSON{{At: 5, Kind: "fail", Target: "fog", For: 3}}
	ops := compileOk(t, s)
	if len(ops) != 2 {
		t.Fatalf("got %d ops, want fail+repair", len(ops))
	}
	if ops[0].kind != opFail || ops[0].at != 5 || ops[0].node != "fog" {
		t.Fatalf("fail op: %+v", ops[0])
	}
	if ops[1].kind != opRepair || ops[1].at != 8 {
		t.Fatalf("repair op: %+v", ops[1])
	}
}

func TestCompileGlobAndClassTargets(t *testing.T) {
	s := eventScenario()
	s.Events = []EventJSON{{At: 1, Kind: "fail", Target: "gw*"}}
	if got := len(compileOk(t, s)); got != 3 {
		t.Fatalf("glob gw* matched %d nodes, want 3", got)
	}
	s.Events = []EventJSON{{At: 1, Kind: "fail", Target: "class:gateway"}}
	if got := len(compileOk(t, s)); got != 3 {
		t.Fatalf("class:gateway matched %d nodes, want 3", got)
	}
}

func TestCompileCascadeStaggersAndIsSeedDeterministic(t *testing.T) {
	s := eventScenario()
	s.Events = []EventJSON{{At: 10, Kind: "cascade", Target: "gw*", Count: 2, Spacing: 0.5, For: 2}}
	ops := compileOk(t, s)
	if len(ops) != 4 {
		t.Fatalf("got %d ops, want 2 victims x (fail+repair)", len(ops))
	}
	var fails []op
	for _, o := range ops {
		if o.kind == opFail {
			fails = append(fails, o)
		}
	}
	if len(fails) != 2 || fails[0].at != 10 || fails[1].at != 10.5 {
		t.Fatalf("cascade fails: %+v", fails)
	}
	if fails[0].node == fails[1].node {
		t.Fatal("cascade picked the same victim twice")
	}
	// Same RNG seed, same victims; the draw is part of the scenario seed.
	again, _ := s.compile(workload.NewRNG(1))
	for i := range ops {
		if ops[i] != again[i] {
			t.Fatalf("cascade not deterministic: %+v vs %+v", ops[i], again[i])
		}
	}
}

func TestCompileChaosParsesSharedGrammar(t *testing.T) {
	s := eventScenario()
	s.Events = []EventJSON{{At: 2, Kind: "chaos", Target: "fog", Spec: "err=0.2,delay=10ms,delayp=0.5", For: 5}}
	ops := compileOk(t, s)
	if len(ops) != 2 || ops[0].kind != opChaosOn || ops[1].kind != opChaosOff {
		t.Fatalf("chaos ops: %+v", ops)
	}
	if ops[0].chaos.ErrProb != 0.2 || ops[0].chaos.DelayProb != 0.5 {
		t.Fatalf("chaos spec not parsed: %+v", ops[0].chaos)
	}
	if ops[0].chaos.Seed == 0 {
		t.Fatal("chaos seed not derived (live Chaos would seed from the clock)")
	}
}

func TestCompileLinkAndWorkloadOps(t *testing.T) {
	s := eventScenario()
	s.Events = []EventJSON{
		{At: 4, Kind: "degrade-link", Target: "fog->cloud", Factor: 10},
		{At: 6, Kind: "restore-link", Target: "cloud -> fog"}, // either direction, spaces ok
		{At: 1, Kind: "workload", Factor: 2.5},
	}
	ops := compileOk(t, s)
	if ops[0].kind != opWorkload || ops[0].at != 1 || ops[0].factor != 2.5 {
		t.Fatalf("ops not time-sorted or workload wrong: %+v", ops[0])
	}
	if ops[1].kind != opLink || ops[1].factor != 10 || ops[1].a != "fog" || ops[1].b != "cloud" {
		t.Fatalf("degrade op: %+v", ops[1])
	}
	if ops[2].kind != opLink || ops[2].factor != 1 {
		t.Fatalf("restore op: %+v", ops[2])
	}
	if ph := phases(ops); len(ph) != 1 || ph[0].Start != 1 || ph[0].Factor != 2.5 {
		t.Fatalf("phases: %+v", ph)
	}
}

// TestEventValidationErrors covers every event error path with its
// positional message.
// TestCompileLeaveJoin: leave expands to opLeave (+opJoin with "for"),
// join to opJoin, and leaving every node is rejected — the federation
// analogue of the cordon-everything guard.
func TestCompileLeaveJoin(t *testing.T) {
	s := eventScenario()
	s.Events = []EventJSON{
		{At: 2, Kind: "leave", Target: "gw1", For: 3},
		{At: 7, Kind: "join", Target: "gw1"},
	}
	ops := compileOk(t, s)
	if len(ops) != 3 {
		t.Fatalf("got %d ops, want leave+join+join", len(ops))
	}
	if ops[0].kind != opLeave || ops[0].at != 2 || ops[0].node != "gw1" {
		t.Fatalf("leave op: %+v", ops[0])
	}
	if ops[1].kind != opJoin || ops[1].at != 5 {
		t.Fatalf("auto-rejoin op: %+v", ops[1])
	}
	if ops[2].kind != opJoin || ops[2].at != 7 {
		t.Fatalf("explicit join op: %+v", ops[2])
	}

	s.Events = []EventJSON{{At: 1, Kind: "leave", Target: "*"}}
	if _, err := s.compile(workload.NewRNG(1)); err == nil || !strings.Contains(err.Error(), "empty the fleet") {
		t.Fatalf("leave-everything: %v", err)
	}
}

func TestEventValidationErrors(t *testing.T) {
	cases := []struct {
		name string
		ev   EventJSON
		want string
	}{
		{"negative at", EventJSON{At: -1, Kind: "fail", Target: "fog"}, "events[0]: at"},
		{"negative for", EventJSON{At: 1, Kind: "fail", Target: "fog", For: -2}, "events[0]: for"},
		{"unknown kind", EventJSON{At: 1, Kind: "explode", Target: "fog"}, "unknown kind"},
		{"empty target", EventJSON{At: 1, Kind: "fail"}, "target required"},
		{"no match", EventJSON{At: 1, Kind: "fail", Target: "ghost*"}, "matches no node"},
		{"bad class", EventJSON{At: 1, Kind: "fail", Target: "class:mainframe"}, "unknown node class"},
		{"bad glob", EventJSON{At: 1, Kind: "fail", Target: "[a-"}, "bad target pattern"},
		{"negative spacing", EventJSON{At: 1, Kind: "cascade", Target: "gw*", Spacing: -1}, "spacing"},
		{"chaos no spec", EventJSON{At: 1, Kind: "chaos", Target: "fog"}, "needs a spec"},
		{"chaos bad spec", EventJSON{At: 1, Kind: "chaos", Target: "fog", Spec: "frob=1"}, "unknown key"},
		{"bad link target", EventJSON{At: 1, Kind: "degrade-link", Target: "fog", Factor: 2}, `not "a->b"`},
		{"unknown link", EventJSON{At: 1, Kind: "degrade-link", Target: "gw0->cloud", Factor: 2}, "not defined"},
		{"degrade no factor", EventJSON{At: 1, Kind: "degrade-link", Target: "fog->cloud"}, "factor > 0"},
		{"workload no factor", EventJSON{At: 1, Kind: "workload"}, "factor > 0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := eventScenario()
			s.Events = []EventJSON{tc.ev}
			err := s.Validate()
			if err == nil {
				t.Fatalf("%s accepted", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
			if !strings.Contains(err.Error(), "events[0]") {
				t.Fatalf("error %q is not positional", err)
			}
		})
	}
}

func TestWorkloadEventNeedsStream(t *testing.T) {
	s := eventScenario()
	s.Stream = nil
	s.DAG = &DAGJSON{Generator: "chain", Size: 4, Scheduler: "heft"}
	s.Events = []EventJSON{{At: 1, Kind: "workload", Factor: 2}}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "stream workload") {
		t.Fatalf("workload event on DAG scenario: %v", err)
	}
}

func TestCyclingChaosOnDAGNeedsBound(t *testing.T) {
	s := eventScenario()
	s.Stream = nil
	s.DAG = &DAGJSON{Generator: "chain", Size: 4, Scheduler: "heft"}
	s.Events = []EventJSON{{At: 1, Kind: "chaos", Target: "fog", Spec: "err=0.1,up=5s,down=1s"}}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "cycling chaos") {
		t.Fatalf("unbounded cycling chaos on DAG accepted: %v", err)
	}
	// Bounded via For: fine.
	s.Events[0].For = 10
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Bounded via a later chaos-off: fine.
	s.Events[0].For = 0
	s.Events = append(s.Events, EventJSON{At: 20, Kind: "chaos-off", Target: "fog"})
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestValidatePositionalErrors pins the satellite fix: bad inputs that
// used to panic or fail only at Run time now fail Validate with
// positional messages.
func TestValidatePositionalErrors(t *testing.T) {
	cases := []struct {
		name string
		f    func(*Scenario)
		want string
	}{
		{"empty node name", func(s *Scenario) { s.Nodes[0].Name = "" }, "nodes[0]"},
		{"duplicate node", func(s *Scenario) { s.Nodes[1].Name = s.Nodes[0].Name }, "nodes[1]"},
		{"bad class", func(s *Scenario) { s.Nodes[1].Class = "mainframe" }, "nodes[1]"},
		{"zero cores", func(s *Scenario) { s.Nodes[2].Cores = 0 }, "nodes[2]"},
		{"bad accel kind", func(s *Scenario) { s.Nodes[2].Accel = &AccelJSON{Kind: "quantum", Count: 1, Flops: 1, Watts: 1} }, "nodes[2]"},
		{"dangling link A", func(s *Scenario) { s.Links[1].A = "ghost" }, "links[1]"},
		{"dangling link B", func(s *Scenario) { s.Links[2].B = "ghost" }, "links[2]"},
		{"self link", func(s *Scenario) { s.Links[0].B = s.Links[0].A }, "links[0]"},
		{"negative latency", func(s *Scenario) { s.Links[0].Latency = -1 }, "links[0]"},
		{"zero capacity", func(s *Scenario) { s.Links[1].Capacity = 0 }, "links[1]"},
		{"bad origin", func(s *Scenario) { s.Stream.Origins = []string{"gw0", "ghost"} }, "origins[1]"},
		{"negative retries", func(s *Scenario) { s.Retries = -1 }, "retries"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := eventScenario()
			tc.f(s)
			err := s.Validate()
			if err == nil {
				t.Fatalf("%s accepted", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not locate the problem at %q", err, tc.want)
			}
		})
	}
}

// TestEventedRunExercisesAllMechanisms runs a scenario whose script hits
// every op kind on the sim backend and checks the report reflects it.
func TestEventedRunExercisesAllMechanisms(t *testing.T) {
	s := eventScenario()
	s.Seed = 9
	s.Stream.RatePerOrigin = 20
	s.Stream.Origins = []string{"gw0", "gw1", "gw2"}
	s.Stream.Horizon = 20
	s.Events = []EventJSON{
		{At: 2, Kind: "chaos", Target: "fog", Spec: "drop=0.3,delay=2ms,delayp=0.5", For: 10},
		{At: 4, Kind: "workload", Factor: 3},
		{At: 5, Kind: "cascade", Target: "gw*", Count: 2, Spacing: 0.5, For: 4},
		{At: 8, Kind: "degrade-link", Target: "fog->cloud", Factor: 5},
		{At: 12, Kind: "restore-link", Target: "fog->cloud"},
		{At: 14, Kind: "workload", Factor: 1},
	}
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Completed == 0 {
		t.Fatal("nothing completed")
	}
	if r.Backend != "sim" {
		t.Fatalf("backend %q", r.Backend)
	}
	if r.Retries == 0 {
		t.Fatal("no retries despite drops and failures")
	}
	if r.Suppressed == 0 {
		t.Fatal("no suppressed submissions despite failed origins")
	}
	if r.Lost > r.Completed/10 {
		t.Fatalf("excessive loss: %d lost vs %d completed", r.Lost, r.Completed)
	}
}

// TestFlashCrowdRaisesThroughput checks the workload op actually changes
// the arrival process: tripling the rate mid-run must yield more jobs
// than the unmodulated baseline.
func TestFlashCrowdRaisesThroughput(t *testing.T) {
	base := eventScenario()
	base.Stream.Horizon = 10
	r0, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}
	crowd := eventScenario()
	crowd.Stream.Horizon = 10
	crowd.Events = []EventJSON{{At: 2, Kind: "workload", Factor: 4}}
	r1, err := crowd.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Completed <= r0.Completed {
		t.Fatalf("flash crowd did not raise throughput: %d vs baseline %d", r1.Completed, r0.Completed)
	}
}
