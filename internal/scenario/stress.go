package scenario

import "fmt"

// StressSpec parameterizes GenerateStress.
type StressSpec struct {
	// Nodes is the total fleet size: 1 cloud, a fog tier (Nodes/64,
	// minimum 2), and the rest gateways (minimum total 8).
	Nodes int
	// Seed drives the whole run (see Scenario.Seed).
	Seed uint64
	// Origins bounds how many gateways generate load (default 64 —
	// enough to exercise every subsystem without the job count growing
	// linearly in fleet size).
	Origins int
	// Rate is per-origin arrivals/second (default 2).
	Rate float64
	// Horizon is the stream horizon in scenario seconds (default 20).
	Horizon float64
}

// GenerateStress builds a deterministic large-fleet scenario: a
// cloud-rooted fog/gateway tree with load from a capped set of origins
// and an event script that hits every mechanism at once — a flash
// crowd, a correlated gateway cascade, fog-tier chaos, a hard fog
// failure, and WAN link degradation. It is the scale harness: a
// 1000-node instance must validate and complete a sim run within the CI
// budget (see Makefile `stress`), which keeps Validate, compile, and
// the engine's per-event costs honest as the repo grows.
func GenerateStress(spec StressSpec) *Scenario {
	n := spec.Nodes
	if n < 8 {
		n = 8
	}
	fogs := n / 64
	if fogs < 2 {
		fogs = 2
	}
	gws := n - 1 - fogs
	origins := spec.Origins
	if origins <= 0 {
		origins = 64
	}
	if origins > gws {
		origins = gws
	}
	rate := spec.Rate
	if rate <= 0 {
		rate = 2
	}
	horizon := spec.Horizon
	if horizon <= 0 {
		horizon = 20
	}

	s := &Scenario{
		Name:    fmt.Sprintf("stress-%d", n),
		Seed:    spec.Seed,
		Retries: 10,
	}
	s.Nodes = append(s.Nodes, NodeJSON{
		Name: "cloud", Class: "cloud", Cores: 96, CoreFlops: 3.2e9,
		MemBytes: 384 << 30, IdleWatts: 300, ActiveWatts: 12,
		DollarPerHour: 24, EgressPerByte: 9e-11,
	})
	for f := 0; f < fogs; f++ {
		s.Nodes = append(s.Nodes, NodeJSON{
			Name: fmt.Sprintf("fog%d", f), Class: "fog", Cores: 16,
			CoreFlops: 3e9, MemBytes: 64 << 30, IdleWatts: 40, ActiveWatts: 8,
		})
		s.Links = append(s.Links, LinkJSON{
			A: fmt.Sprintf("fog%d", f), B: "cloud", Latency: 0.020, Capacity: 1.25e9,
		})
	}
	for g := 0; g < gws; g++ {
		name := fmt.Sprintf("gw%04d", g)
		s.Nodes = append(s.Nodes, NodeJSON{
			Name: name, Class: "gateway", Cores: 4, CoreFlops: 2.5e9,
			MemBytes: 4 << 30, IdleWatts: 2, ActiveWatts: 3,
		})
		s.Links = append(s.Links, LinkJSON{
			A: name, B: fmt.Sprintf("fog%d", g%fogs), Latency: 0.002, Capacity: 1.25e8,
		})
	}

	// Spread the origins evenly over the gateway tier so every fog
	// subtree carries load.
	stride := gws / origins
	if stride < 1 {
		stride = 1
	}
	var originNames []string
	for g := 0; g < gws && len(originNames) < origins; g += stride {
		originNames = append(originNames, fmt.Sprintf("gw%04d", g))
	}
	s.Stream = &StreamJSON{
		Policy: "greedy-latency", Origins: originNames,
		RatePerOrigin: rate, Horizon: horizon,
		ScalarWork: 5e8, InputBytes: 1024, OutputBytes: 128,
	}

	// One of everything, overlapping: the point is the combinatorics,
	// not any single mechanism.
	cascadeCount := gws / 20
	if cascadeCount < 1 {
		cascadeCount = 1
	}
	s.Events = []EventJSON{
		{At: 0.1 * horizon, Kind: "chaos", Target: "class:fog", Spec: "err=0.1,delay=5ms,delayp=0.3", For: 0.5 * horizon},
		{At: 0.25 * horizon, Kind: "workload", Factor: 3},
		{At: 0.3 * horizon, Kind: "cascade", Target: "gw*", Count: cascadeCount, Spacing: 0.05, For: 0.15 * horizon},
		{At: 0.4 * horizon, Kind: "fail", Target: "fog0", For: 0.25 * horizon},
		{At: 0.6 * horizon, Kind: "workload", Factor: 1},
		{At: 0.7 * horizon, Kind: "degrade-link", Target: "fog1->cloud", Factor: 4},
		{At: 0.9 * horizon, Kind: "restore-link", Target: "fog1->cloud"},
	}
	return s
}
