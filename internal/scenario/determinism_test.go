package scenario

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestScenarioBitReproducible is the determinism regression gate: the
// same scenario with the same Seed must produce a byte-identical Report
// and a byte-identical JSONL trace — not just equal aggregates. Every
// random draw (arrivals, cascade victim order, chaos cycling, chaos
// seeds, scheduler tie-breaks) must come from the scenario's seed tree
// for this to hold.
func TestScenarioBitReproducible(t *testing.T) {
	run := func(seed uint64, workers int) ([]byte, []byte) {
		s := GenerateStress(StressSpec{Nodes: 64, Seed: seed, Origins: 16, Horizon: 10})
		r, tr, err := s.RunTracedParallel(workers)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tr.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return rb, buf.Bytes()
	}

	r1, t1 := run(7, 1)
	r2, t2 := run(7, 1)
	if !bytes.Equal(r1, r2) {
		t.Fatalf("same seed, different reports:\n%s\n%s", r1, r2)
	}
	if !bytes.Equal(t1, t2) {
		t.Fatal("same seed, different JSONL traces")
	}

	// -parallel must be invisible in the output: the same seed with
	// parallel workload synthesis produces the identical bytes.
	r1p, t1p := run(7, 8)
	if !bytes.Equal(r1, r1p) {
		t.Fatalf("parallel workers changed the report:\n%s\n%s", r1, r1p)
	}
	if !bytes.Equal(t1, t1p) {
		t.Fatal("parallel workers changed the JSONL trace")
	}

	r3, t3 := run(8, 1)
	if bytes.Equal(r1, r3) && bytes.Equal(t1, t3) {
		t.Fatal("different seeds produced identical runs — seed is not wired through")
	}
}

// TestStressGeneratorDeterministic pins that generation itself is pure:
// two calls with the same spec marshal identically, so the stress
// harness always runs the same scenario.
func TestStressGeneratorDeterministic(t *testing.T) {
	a, err := json.Marshal(GenerateStress(StressSpec{Nodes: 200, Seed: 3}))
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(GenerateStress(StressSpec{Nodes: 200, Seed: 3}))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("GenerateStress is not deterministic")
	}
}
