package scenario

import (
	"sync"
	"sync/atomic"

	"continuum/internal/core"
	"continuum/internal/fault"
	"continuum/internal/netsim"
	"continuum/internal/node"
	"continuum/internal/task"
	"continuum/internal/trace"
	"continuum/internal/workload"
)

// This file is the simulator backend: the compiled event timeline is
// injected into the discrete-event engine as kernel-scheduled fault
// flips, per-attempt Disturb draws, link retunes, and a piecewise
// arrival schedule. The live backend (live.go) replays the identical
// timeline against real endpoints; keeping both behind the same compile
// step is what makes one scenario file mean one experiment.

// Run executes the scenario on the simulator backend.
func (s *Scenario) Run() (*Report, error) {
	r, _, err := s.RunTraced()
	return r, err
}

// RunTraced is Run plus the event trace of the execution, for timeline
// rendering (continuum-sim -gantt).
func (s *Scenario) RunTraced() (*Report, *trace.Tracer, error) {
	return s.RunTracedParallel(1)
}

// RunTracedParallel is RunTraced with up to workers goroutines
// synthesizing the per-origin arrival streams. The event loop itself
// stays serial — placement and max-min fair bandwidth sharing are
// globally coupled, so the engine's determinism comes from one kernel —
// but workload synthesis is embarrassingly parallel per origin: the
// per-origin RNGs are split off serially (fixing the stream identities),
// the origins' job lists are generated concurrently, and the lists are
// concatenated in origin order. The result is bit-identical to workers=1
// for any worker count.
func (s *Scenario) RunTracedParallel(workers int) (*Report, *trace.Tracer, error) {
	if err := s.Validate(); err != nil {
		return nil, nil, err
	}
	rng := workload.NewRNG(s.Seed)
	ops, err := s.compile(rng.Split())
	if err != nil {
		return nil, nil, err
	}

	c := core.New()
	c.Tracer = trace.New(1 << 20)
	byName := make(map[string]*node.Node)
	for _, nj := range s.Nodes {
		spec, err := nj.spec()
		if err != nil {
			return nil, nil, err // unreachable after Validate
		}
		byName[nj.Name] = c.AddNode(spec)
	}
	links := make(map[string][2]*netsim.Link)
	for _, lj := range s.Links {
		ab, ba := c.Connect(byName[lj.A].ID, byName[lj.B].ID, lj.Latency, lj.Capacity)
		links[linkKey(lj.A, lj.B)] = [2]*netsim.Link{ab, ba}
	}
	if err := c.Validate(); err != nil {
		return nil, nil, err
	}

	opts := core.ReliableOptions{MaxRetries: s.retries()}
	horizon := 0.0
	if s.Stream != nil {
		horizon = s.Stream.Horizon
		if s.Stream.Admission > 0 {
			opts.Admission = core.AdmissionOptions{MaxOutstanding: s.Stream.Admission}
		}
	}
	s.installEvents(c, byName, links, ops, rng.Split(), horizon, &opts)

	var rep *Report
	if s.Stream != nil {
		rep, err = s.runStream(c, byName, rng, ops, opts, workers)
	} else {
		rep, err = s.runDAG(c, rng, opts)
	}
	return rep, c.Tracer, err
}

// simChaos is one node's active per-request injection state on the sim
// backend. Drop and err draws both mean "attempt lost" — the simulator
// has no response channel to answer an injected error on, and both are
// retryable failures to the engine — while delay draws defer the
// attempt's entry into the pipeline, mirroring the live server sleeping
// before dispatch.
type simChaos struct {
	active  bool
	cycling bool // an up/down phase machine currently drives the fault target
	spec    fault.ChaosSpec
	rng     *workload.RNG
}

// installEvents wires the compiled timeline into the kernel and the
// engine options: scripted fail/repair flips on fault targets, chaos
// state machines (per-request draws via the Disturb hook, up/down
// cycling via scheduled exponential flips), link retunes, cordon holds
// (via the Cordoned hook), and origin silencing while an origin is down
// or drained. Workload ops are not scheduled here — they become the
// arrival processes' phase schedule.
func (s *Scenario) installEvents(c *core.Continuum, byName map[string]*node.Node,
	links map[string][2]*netsim.Link, ops []op, rng *workload.RNG,
	horizon float64, opts *core.ReliableOptions) {
	if len(ops) == 0 {
		return
	}
	targets := make(map[string]*fault.Target)
	target := func(name string) *fault.Target {
		t, ok := targets[name]
		if !ok {
			t = fault.NewTarget(name, c.K)
			targets[name] = t
			if opts.Faults == nil {
				opts.Faults = make(map[int]*fault.Target)
			}
			opts.Faults[byName[name].ID] = t
		}
		return t
	}
	// Cordon state: mutated only inside kernel callbacks and read only by
	// engine hooks, which also run on the (single-threaded) kernel.
	cordoned := make(map[int]bool)
	drained := make(map[int]bool)
	hasCordon := false
	for _, o := range ops {
		if o.kind == opCordon {
			hasCordon = true
			break
		}
	}
	chaos := make(map[int]*simChaos)
	chaosFor := func(name string) *simChaos {
		id := byName[name].ID
		sc, ok := chaos[id]
		if !ok {
			sc = &simChaos{}
			chaos[id] = sc
		}
		return sc
	}
	for _, o := range ops {
		o := o
		switch o.kind {
		case opFail:
			t := target(o.node)
			c.K.At(o.at, func() {
				c.Tracer.Record(o.at, trace.Failure, o.node, "scripted fail")
				t.Fail()
			})
		case opRepair:
			t := target(o.node)
			c.K.At(o.at, func() {
				c.Tracer.Record(o.at, trace.Repair, o.node, "scripted repair")
				t.Repair()
			})
		case opChaosOn:
			sc := chaosFor(o.node)
			srng := rng.Split()
			cycling := o.chaos.MeanUp > 0
			c.K.At(o.at, func() {
				sc.active, sc.cycling, sc.spec, sc.rng = true, cycling, o.chaos, srng
			})
			if cycling {
				stop := chaosStop(ops, o, horizon)
				scheduleCycle(c, target(o.node), o.chaos.Spec, o.at, stop, rng.Split())
			}
		case opChaosOff:
			sc := chaosFor(o.node)
			t := target(o.node)
			c.K.At(o.at, func() {
				// A cycling phase machine may have left the node down with
				// its repair beyond the stop bound; chaos-off heals it.
				if sc.cycling {
					t.Repair()
				}
				sc.active, sc.cycling = false, false
			})
		case opLink:
			pair, base := links[linkKey(o.a, o.b)], s.linkBase(o.a, o.b)
			c.K.At(o.at, func() {
				for _, l := range pair {
					c.Net.SetLinkParams(l, base.Latency*o.factor, base.Capacity/o.factor)
				}
			})
		case opCordon:
			id, drain := byName[o.node].ID, o.drain
			c.K.At(o.at, func() {
				detail := "cordon"
				if drain {
					detail = "drain"
				}
				c.Tracer.Record(o.at, trace.Cordon, o.node, detail)
				cordoned[id] = true
				if drain {
					drained[id] = true
				}
			})
		case opUncordon:
			id := byName[o.node].ID
			c.K.At(o.at, func() {
				c.Tracer.Record(o.at, trace.Uncordon, o.node, "scripted uncordon")
				cordoned[id] = false
				drained[id] = false
			})
		case opLeave:
			// The sim has no registry to deregister from: a graceful leave
			// is the node's fault target failing (attempts divert elsewhere)
			// with its own generator silenced.
			t, id := target(o.node), byName[o.node].ID
			c.K.At(o.at, func() {
				c.Tracer.Record(o.at, trace.Failure, o.node, "scripted leave")
				t.Fail()
				drained[id] = true
			})
		case opJoin:
			t, id := target(o.node), byName[o.node].ID
			c.K.At(o.at, func() {
				c.Tracer.Record(o.at, trace.Repair, o.node, "scripted join")
				t.Repair()
				drained[id] = false
			})
		case opWorkload:
			// Compiled into the arrival processes' phase schedule instead.
		}
	}
	if hasCordon {
		opts.Cordoned = func(n *node.Node) bool { return cordoned[n.ID] }
	}
	if len(chaos) > 0 {
		opts.Disturb = func(n *node.Node) (bool, float64) {
			sc, ok := chaos[n.ID]
			if !ok || !sc.active {
				return false, 0
			}
			var delay float64
			if p := sc.spec.DelayProb; p > 0 && sc.spec.DelayMean > 0 && sc.rng.Float64() < p {
				delay = sc.rng.Exp(1 / sc.spec.DelayMean.Seconds())
			}
			drop := false
			if p := sc.spec.DropProb + sc.spec.ErrProb; p > 0 && sc.rng.Float64() < p {
				drop = true
			}
			return drop, delay
		}
	}
	if s.Stream != nil && (opts.Faults != nil || hasCordon) {
		faults := opts.Faults
		opts.DropSubmit = func(origin int) bool {
			if drained[origin] {
				return true
			}
			t, ok := faults[origin]
			return ok && !t.Up()
		}
	}
}

// linkBase returns the scenario's declared parameters for a link, the
// baseline degrade-link multiplies and restore-link returns to.
func (s *Scenario) linkBase(a, b string) LinkJSON {
	for _, l := range s.Links {
		if l.A == a && l.B == b {
			return l
		}
	}
	return LinkJSON{} // unreachable: compile resolved the link
}

// chaosStop returns when a cycling chaos op's phase machine must stop
// scheduling: the node's next chaos-off if scripted, else the stream
// horizon (DAG scenarios are validated to always have a bound — an
// unbounded cycle would keep the kernel's queue nonempty forever).
func chaosStop(ops []op, on op, horizon float64) float64 {
	for _, o := range ops {
		if o.kind == opChaosOff && o.node == on.node && o.at >= on.at {
			return o.at
		}
	}
	if horizon > on.at {
		return horizon
	}
	return on.at
}

// scheduleCycle drives a chaos event's up/down availability machine on
// the simulation clock: exponentially distributed phases (the Injector's
// MTBF/MTTR model) flipping the node's fault target between from and
// stop. Like the Injector, events beyond the bound are not scheduled
// and the target keeps its final state — chaos-off repairs it.
func scheduleCycle(c *core.Continuum, t *fault.Target, spec fault.Spec, from, stop float64, rng *workload.RNG) {
	var scheduleFail, scheduleRepair func(now float64)
	at := func(when float64, fn func()) {
		if when <= stop {
			c.K.At(when, fn)
		}
	}
	scheduleFail = func(now float64) {
		when := now + rng.Exp(1/spec.MeanUp)
		at(when, func() {
			t.Fail()
			scheduleRepair(when)
		})
	}
	scheduleRepair = func(now float64) {
		when := now + rng.Exp(1/spec.MeanDown)
		at(when, func() {
			t.Repair()
			scheduleFail(when)
		})
	}
	scheduleFail(from)
}

func (s *Scenario) runStream(c *core.Continuum, byName map[string]*node.Node, rng *workload.RNG, ops []op, opts core.ReliableOptions, workers int) (*Report, error) {
	pol, err := parsePolicy(s.Stream.Policy, rng.Split())
	if err != nil {
		return nil, err
	}
	accel := node.NoAccel
	if s.Stream.Accel != "" {
		if accel, err = parseAccelKind(s.Stream.Accel); err != nil {
			return nil, err
		}
	}
	ph := phases(ops)
	// Per-origin arrival synthesis. The RNGs are split off serially — the
	// split order is the origins' declaration order, exactly as the
	// sequential loop would draw them — so each origin's stream is a fixed
	// function of (seed, origin index) and the generation below can run on
	// any number of goroutines without changing a single arrival.
	origins := s.Stream.Origins
	rngs := make([]*workload.RNG, len(origins))
	for i := range origins {
		rngs[i] = rng.Split()
	}
	perOrigin := make([][]core.StreamJob, len(origins))
	gen := func(i int) {
		arr := workload.NewPiecewise(rngs[i], s.Stream.RatePerOrigin, ph)
		t := 0.0
		var out []core.StreamJob
		for {
			t += arr.Next()
			if t > s.Stream.Horizon {
				break
			}
			out = append(out, core.StreamJob{
				Task: &task.Task{
					Name:        "job",
					ScalarWork:  s.Stream.ScalarWork,
					TensorWork:  s.Stream.TensorWork,
					Accel:       accel,
					OutputBytes: s.Stream.OutputBytes,
					Inputs:      []task.DataRef{{Name: "in", Bytes: s.Stream.InputBytes}},
				},
				Origin:   byName[origins[i]].ID,
				Submit:   t,
				Priority: s.Stream.Priorities[origins[i]],
			})
		}
		perOrigin[i] = out
	}
	if workers <= 1 || len(origins) == 1 {
		for i := range origins {
			gen(i)
		}
	} else {
		var cursor int64 = -1
		var wg sync.WaitGroup
		for w := 0; w < workers && w < len(origins); w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(atomic.AddInt64(&cursor, 1))
					if i >= len(origins) {
						return
					}
					gen(i)
				}
			}()
		}
		wg.Wait()
	}
	total := 0
	for _, p := range perOrigin {
		total += len(p)
	}
	jobs := make([]core.StreamJob, 0, total)
	for _, p := range perOrigin {
		jobs = append(jobs, p...)
	}
	st := c.RunStreamReliable(pol, jobs, nil, opts)
	return reportFromStats(s.Name, "stream/"+s.Stream.Policy, st), nil
}

func (s *Scenario) runDAG(c *core.Continuum, rng *workload.RNG, opts core.ReliableOptions) (*Report, error) {
	d, err := dagGen(s.DAG, rng.Split())
	if err != nil {
		return nil, err
	}
	schedule, err := parseScheduler(s.DAG.Scheduler)
	if err != nil {
		return nil, err
	}
	env := c.Env()
	st, err := c.RunDAGReliable(d, schedule(env, d, rng.Split()), env, opts)
	if err != nil {
		return nil, err
	}
	return reportFromStats(s.Name, "dag/"+s.DAG.Generator+"/"+s.DAG.Scheduler, st), nil
}

func reportFromStats(name, workloadDesc string, st *core.ReliableStats) *Report {
	return &Report{
		Scenario:   name,
		Backend:    "sim",
		Workload:   workloadDesc,
		Completed:  st.Completed,
		Lost:       st.Lost,
		Retries:    st.Retries,
		Suppressed: st.Suppressed,
		Shed:       st.Shed,
		Makespan:   st.Makespan,
		MeanLat:    st.Latency.Mean(),
		P99Lat:     st.Latency.P99(),
		Joules:     st.Joules,
		Dollars:    st.Dollars,
		EgressB:    st.EgressB,
		PerNode:    st.PerNode,
	}
}
