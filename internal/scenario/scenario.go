// Package scenario is the experiment front door: one JSON format
// describing a deployment (nodes, links), a workload (stream or DAG),
// and a timed event script — failures, cascades, chaos, link
// degradation, workload phases — that two interchangeable backends
// replay from the same file: the discrete-event simulator and a live
// in-process continuumd fleet (see Runner). A scenario plus its Seed is
// a complete, bit-reproducible experiment description.
package scenario

import (
	"encoding/json"
	"fmt"
	"sort"

	"continuum/internal/metrics"
	"continuum/internal/node"
	"continuum/internal/placement"
	"continuum/internal/task"
	"continuum/internal/workload"
)

// AccelJSON describes an accelerator pool.
type AccelJSON struct {
	Kind  string  `json:"kind"` // "gpu" | "tpu" | "fpga"
	Count int     `json:"count"`
	Flops float64 `json:"flops"`
	Watts float64 `json:"watts"`
}

// NodeJSON describes one node. Class accepts the tier names from
// node.Class.String.
type NodeJSON struct {
	Name          string     `json:"name"`
	Class         string     `json:"class"`
	Cores         int        `json:"cores"`
	CoreFlops     float64    `json:"coreFlops"`
	MemBytes      int64      `json:"memBytes"`
	Accel         *AccelJSON `json:"accel,omitempty"`
	IdleWatts     float64    `json:"idleWatts"`
	ActiveWatts   float64    `json:"activeWattsPerCore"`
	DollarPerHour float64    `json:"dollarPerHour"`
	EgressPerByte float64    `json:"egressPerByte"`
}

// spec builds the node.Spec this JSON describes. Both Validate and the
// backends go through it, so "valid" means exactly "buildable".
func (nj NodeJSON) spec() (node.Spec, error) {
	class, err := parseClass(nj.Class)
	if err != nil {
		return node.Spec{}, err
	}
	spec := node.Spec{
		Name: nj.Name, Class: class,
		Cores: nj.Cores, CoreFlops: nj.CoreFlops, MemBytes: nj.MemBytes,
		IdleWatts: nj.IdleWatts, ActiveWattsCore: nj.ActiveWatts,
		DollarPerHour: nj.DollarPerHour, EgressPerByte: nj.EgressPerByte,
	}
	if nj.Accel != nil {
		kind, err := parseAccelKind(nj.Accel.Kind)
		if err != nil {
			return node.Spec{}, err
		}
		spec.Accel = node.Accelerator{
			Kind: kind, Count: nj.Accel.Count,
			Flops: nj.Accel.Flops, Watts: nj.Accel.Watts,
		}
	}
	if err := spec.Validate(); err != nil {
		return node.Spec{}, err
	}
	return spec, nil
}

// LinkJSON is a duplex link between two named nodes.
type LinkJSON struct {
	A        string  `json:"a"`
	B        string  `json:"b"`
	Latency  float64 `json:"latency"`
	Capacity float64 `json:"capacity"`
}

// StreamJSON describes an online-placement workload.
type StreamJSON struct {
	Policy        string   `json:"policy"` // placement policy name
	Origins       []string `json:"origins"`
	RatePerOrigin float64  `json:"ratePerOrigin"`
	Horizon       float64  `json:"horizon"`
	ScalarWork    float64  `json:"scalarWork"`
	TensorWork    float64  `json:"tensorWork"`
	Accel         string   `json:"accel,omitempty"`
	InputBytes    float64  `json:"inputBytes"`
	OutputBytes   float64  `json:"outputBytes"`
	// Priorities maps an origin to the admission class of the requests
	// it submits: -1 low, 0 normal, 1 high. Origins absent from the map
	// submit at normal priority, so priority-unaware scenarios are
	// unchanged. Priority only changes outcomes when admission control
	// is in play (the Admission bound here, or -max-queue on a live
	// continuumd): under overload, low-priority origins shed first.
	Priorities map[string]int `json:"priorities,omitempty"`
	// Admission, when > 0, bounds how many admitted jobs may be
	// outstanding on the sim backend, with graduated per-priority
	// watermarks (core.AdmissionOptions.MaxOutstanding). Jobs refused at
	// the bound count in the report's Shed, not Lost. 0 disables
	// admission control.
	Admission int `json:"admission,omitempty"`
}

// DAGJSON describes a workflow workload.
type DAGJSON struct {
	Generator string  `json:"generator"` // chain|fanoutin|layered|montage|epigenomics|cybershake
	Size      int     `json:"size"`
	Scheduler string  `json:"scheduler"` // heft|cpop|greedy|roundrobin|random
	MeanWork  float64 `json:"meanWork"`
	MeanBytes float64 `json:"meanBytes"`
}

// Scenario is a full run description.
type Scenario struct {
	Name string `json:"name"`
	// Seed makes the run bit-reproducible: every random draw — arrival
	// gaps, cascade victim selection, chaos sequences, DAG shapes — is
	// derived from it through split sub-streams.
	Seed uint64 `json:"seed"`
	// Retries bounds per-job re-dispatches when faults are in play.
	// Zero defaults to 10 when the scenario has events, else 0 (a
	// fault-free scenario never retries anyway).
	Retries int         `json:"retries,omitempty"`
	Nodes   []NodeJSON  `json:"nodes"`
	Links   []LinkJSON  `json:"links"`
	Stream  *StreamJSON `json:"stream,omitempty"`
	DAG     *DAGJSON    `json:"dag,omitempty"`
	// Events is the timed script both backends replay; see EventJSON.
	Events []EventJSON `json:"events,omitempty"`
}

// retries returns the effective retry budget (see the Retries field).
func (s *Scenario) retries() int {
	if s.Retries > 0 {
		return s.Retries
	}
	if len(s.Events) > 0 {
		return 10
	}
	return 0
}

// Parse decodes and validates a scenario.
func Parse(b []byte) (*Scenario, error) {
	var s Scenario
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate checks the whole description and reports the first problem
// with a positional message (nodes[i], links[i], events[i]), so a bad
// file fails at validate time — never as a panic mid-run.
func (s *Scenario) Validate() error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("scenario %q: %s", s.Name, fmt.Sprintf(format, args...))
	}
	if len(s.Nodes) == 0 {
		return fail("no nodes")
	}
	names := make(map[string]int) // name → first index, for duplicate reporting
	for i, n := range s.Nodes {
		if n.Name == "" {
			return fail("nodes[%d]: empty name", i)
		}
		if j, dup := names[n.Name]; dup {
			return fail("nodes[%d] (%q): duplicate of nodes[%d]", i, n.Name, j)
		}
		names[n.Name] = i
		if _, err := n.spec(); err != nil {
			return fail("nodes[%d] (%q): %v", i, n.Name, err)
		}
	}
	for i, l := range s.Links {
		for _, end := range []string{l.A, l.B} {
			if _, ok := names[end]; !ok {
				return fail("links[%d] (%s-%s): endpoint %q is not a defined node", i, l.A, l.B, end)
			}
		}
		if l.A == l.B {
			return fail("links[%d]: self-link %q", i, l.A)
		}
		if l.Latency < 0 {
			return fail("links[%d] (%s-%s): negative latency %v", i, l.A, l.B, l.Latency)
		}
		if l.Capacity <= 0 {
			return fail("links[%d] (%s-%s): capacity %v must be positive", i, l.A, l.B, l.Capacity)
		}
	}
	if s.Stream == nil && s.DAG == nil {
		return fail("no workload (stream or dag)")
	}
	if s.Stream != nil && s.DAG != nil {
		return fail("both stream and dag specified")
	}
	if s.Stream != nil {
		if _, err := parsePolicy(s.Stream.Policy, workload.NewRNG(0)); err != nil {
			return fail("stream: %v", err)
		}
		if len(s.Stream.Origins) == 0 {
			return fail("stream: no origins")
		}
		for i, o := range s.Stream.Origins {
			if _, ok := names[o]; !ok {
				return fail("stream origins[%d]: %q is not a defined node", i, o)
			}
		}
		if s.Stream.RatePerOrigin <= 0 || s.Stream.Horizon <= 0 {
			return fail("stream: rate and horizon must be positive (got %v, %v)",
				s.Stream.RatePerOrigin, s.Stream.Horizon)
		}
		if s.Stream.Accel != "" {
			if _, err := parseAccelKind(s.Stream.Accel); err != nil {
				return fail("stream: %v", err)
			}
		}
		if s.Stream.Admission < 0 {
			return fail("stream: admission %d must be >= 0", s.Stream.Admission)
		}
		origins := make(map[string]bool, len(s.Stream.Origins))
		for _, o := range s.Stream.Origins {
			origins[o] = true
		}
		prioOrigins := make([]string, 0, len(s.Stream.Priorities))
		for o := range s.Stream.Priorities {
			prioOrigins = append(prioOrigins, o)
		}
		sort.Strings(prioOrigins) // deterministic first-error reporting
		for _, o := range prioOrigins {
			if !origins[o] {
				return fail("stream priorities: %q is not a stream origin", o)
			}
			if p := s.Stream.Priorities[o]; p < -1 || p > 1 {
				return fail("stream priorities[%q]: %d out of range [-1 low, 0 normal, 1 high]", o, p)
			}
		}
	}
	if s.DAG != nil {
		if _, err := dagGen(s.DAG, workload.NewRNG(0)); err != nil {
			return fail("dag: %v", err)
		}
		if _, err := parseScheduler(s.DAG.Scheduler); err != nil {
			return fail("dag: %v", err)
		}
	}
	if s.Retries < 0 {
		return fail("retries %d must be >= 0", s.Retries)
	}
	// Compiling the event script performs all per-event validation; the
	// throwaway RNG only feeds draws (cascade victim picks), never
	// validity.
	if _, err := s.compile(workload.NewRNG(0)); err != nil {
		return err
	}
	return nil
}

func parseClass(s string) (node.Class, error) {
	for c := node.Sensor; c <= node.HPC; c++ {
		if c.String() == s {
			return c, nil
		}
	}
	return 0, fmt.Errorf("unknown node class %q", s)
}

func parseAccelKind(s string) (node.AccelKind, error) {
	for k := node.NoAccel; k <= node.FPGA; k++ {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown accel kind %q", s)
}

func parsePolicy(name string, rng *workload.RNG) (placement.Policy, error) {
	switch name {
	case "edge-only":
		return placement.EdgeOnly{}, nil
	case "cloud-only":
		return placement.CloudOnly{}, nil
	case "greedy-latency":
		return placement.GreedyLatency{}, nil
	case "greedy-energy":
		return placement.GreedyEnergy{}, nil
	case "greedy-cost":
		return placement.GreedyCost{}, nil
	case "data-aware":
		return placement.DataAware{}, nil
	case "round-robin":
		return &placement.RoundRobin{}, nil
	case "random":
		return placement.Random{RNG: rng}, nil
	default:
		return nil, fmt.Errorf("unknown policy %q", name)
	}
}

func parseScheduler(name string) (func(*placement.Env, *task.DAG, *workload.RNG) placement.Schedule, error) {
	switch name {
	case "heft":
		return func(e *placement.Env, d *task.DAG, _ *workload.RNG) placement.Schedule {
			return placement.HEFT(e, d)
		}, nil
	case "cpop":
		return func(e *placement.Env, d *task.DAG, _ *workload.RNG) placement.Schedule {
			return placement.CPOP(e, d)
		}, nil
	case "greedy":
		return func(e *placement.Env, d *task.DAG, _ *workload.RNG) placement.Schedule {
			return placement.ListGreedy(e, d)
		}, nil
	case "roundrobin":
		return func(e *placement.Env, d *task.DAG, _ *workload.RNG) placement.Schedule {
			return placement.ListRoundRobin(e, d)
		}, nil
	case "random":
		return func(e *placement.Env, d *task.DAG, rng *workload.RNG) placement.Schedule {
			return placement.ListRandom(e, d, rng)
		}, nil
	default:
		return nil, fmt.Errorf("unknown scheduler %q", name)
	}
}

func dagGen(dj *DAGJSON, rng *workload.RNG) (*task.DAG, error) {
	spec := task.GenSpec{
		MeanWork: dj.MeanWork, WorkSigma: 0.8,
		MeanBytes: dj.MeanBytes, BytesSigma: 0.8,
	}
	if spec.MeanWork <= 0 {
		spec.MeanWork = 1e10
	}
	if spec.MeanBytes <= 0 {
		spec.MeanBytes = 1e6
	}
	size := dj.Size
	if size < 2 {
		size = 10
	}
	switch dj.Generator {
	case "chain":
		return task.Chain(rng, size, spec), nil
	case "fanoutin":
		return task.FanOutIn(rng, size, spec), nil
	case "layered":
		return task.RandomLayered(rng, 5, size/4+1, 3, spec), nil
	case "montage":
		return task.MontageLike(rng, size, spec), nil
	case "epigenomics":
		return task.EpigenomicsLike(rng, size/5+1, 4, spec), nil
	case "cybershake":
		return task.CyberShakeLike(rng, size, spec), nil
	default:
		return nil, fmt.Errorf("unknown DAG generator %q", dj.Generator)
	}
}

// Report is the outcome of a scenario run on either backend, renderable
// as a table. Fields have fixed JSON-marshalable types so two runs with
// the same seed produce byte-identical marshaled reports — the
// determinism regression test relies on that.
//
// MeanLat/P99Lat summarize the latency distribution; the meaning follows
// the workload kind and backend: submit→reply virtual seconds for
// simulated streams, per-task ready→finish for simulated DAGs, and
// wall-clock invoke→reply seconds for live runs.
type Report struct {
	Scenario string
	// Backend is "sim" or "live".
	Backend   string
	Workload  string
	Completed int64
	// Lost counts requests abandoned after exhausting retries (sim) or
	// invocations that errored through the reliable client (live). The
	// live e2e gate asserts it is zero.
	Lost int64
	// Retries counts re-dispatches on either backend.
	Retries int64
	// Suppressed counts stream submissions silenced because their origin
	// was down at submit time (a failed gateway generates no traffic) or
	// drained (a "drain" event pauses the node's generator).
	Suppressed int64
	// Shed counts submissions refused fail-fast by admission control
	// (sim backend, stream.admission > 0). Shed requests never started,
	// so they appear in neither Completed nor Lost.
	Shed     int64
	Makespan float64
	MeanLat  float64
	P99Lat   float64
	Joules   float64
	Dollars  float64
	EgressB  float64
	PerNode  map[string]int64
}

// Table renders the report.
func (r *Report) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("scenario %q (%s, %s)", r.Scenario, r.Workload, r.Backend),
		"metric", "value",
	)
	t.AddRow("completed", fmt.Sprintf("%d", r.Completed))
	t.AddRow("lost", fmt.Sprintf("%d", r.Lost))
	t.AddRow("retries", fmt.Sprintf("%d", r.Retries))
	if r.Suppressed > 0 {
		t.AddRow("suppressed", fmt.Sprintf("%d", r.Suppressed))
	}
	if r.Shed > 0 {
		t.AddRow("shed", fmt.Sprintf("%d", r.Shed))
	}
	t.AddRow("makespan", metrics.FormatDuration(r.Makespan))
	t.AddRow("mean latency", metrics.FormatDuration(r.MeanLat))
	t.AddRow("p99 latency", metrics.FormatDuration(r.P99Lat))
	if r.Joules > 0 {
		t.AddRow("energy", fmt.Sprintf("%.1f J", r.Joules))
	}
	if r.Dollars > 0 {
		t.AddRow("cost", fmt.Sprintf("$%.6f", r.Dollars))
	}
	if r.EgressB > 0 {
		t.AddRow("egress", metrics.FormatBytes(r.EgressB))
	}
	names := make([]string, 0, len(r.PerNode))
	for name := range r.PerNode {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t.AddRow("tasks@"+name, fmt.Sprintf("%d", r.PerNode[name]))
	}
	return t
}

// Example returns a documented sample scenario (used by `scenario
// example`): a metro IoT deployment with a mid-run flash crowd and a
// brief fog outage.
func Example() *Scenario {
	return &Scenario{
		Name: "metro-iot",
		Seed: 42,
		Nodes: []NodeJSON{
			{Name: "gw0", Class: "gateway", Cores: 4, CoreFlops: 2.5e9, MemBytes: 4 << 30, IdleWatts: 2, ActiveWatts: 3},
			{Name: "gw1", Class: "gateway", Cores: 4, CoreFlops: 2.5e9, MemBytes: 4 << 30, IdleWatts: 2, ActiveWatts: 3},
			{Name: "fog", Class: "fog", Cores: 16, CoreFlops: 3e9, MemBytes: 64 << 30, IdleWatts: 40, ActiveWatts: 8,
				Accel: &AccelJSON{Kind: "gpu", Count: 1, Flops: 5e12, Watts: 70}},
			{Name: "cloud", Class: "cloud", Cores: 96, CoreFlops: 3.2e9, MemBytes: 384 << 30, IdleWatts: 300, ActiveWatts: 12,
				DollarPerHour: 24, EgressPerByte: 9e-11,
				Accel: &AccelJSON{Kind: "gpu", Count: 8, Flops: 1.4e13, Watts: 300}},
		},
		Links: []LinkJSON{
			{A: "gw0", B: "fog", Latency: 0.002, Capacity: 1.25e8},
			{A: "gw1", B: "fog", Latency: 0.002, Capacity: 1.25e8},
			{A: "fog", B: "cloud", Latency: 0.020, Capacity: 1.25e9},
		},
		Stream: &StreamJSON{
			Policy: "greedy-latency", Origins: []string{"gw0", "gw1"},
			RatePerOrigin: 10, Horizon: 30,
			ScalarWork: 5e8, InputBytes: 1024, OutputBytes: 128,
		},
		Events: []EventJSON{
			{At: 8, Kind: "workload", Factor: 3},
			{At: 12, Kind: "fail", Target: "fog", For: 5},
			{At: 20, Kind: "workload", Factor: 1},
		},
	}
}
