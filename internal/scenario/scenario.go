// Package scenario loads JSON deployment + workload descriptions and runs
// them through the simulator — the file-driven front door used by
// cmd/continuum-sim, so experiments can be described without writing Go.
package scenario

import (
	"encoding/json"
	"fmt"
	"sort"

	"continuum/internal/core"
	"continuum/internal/metrics"
	"continuum/internal/node"
	"continuum/internal/placement"
	"continuum/internal/task"
	"continuum/internal/trace"
	"continuum/internal/workload"
)

// AccelJSON describes an accelerator pool.
type AccelJSON struct {
	Kind  string  `json:"kind"` // "gpu" | "tpu" | "fpga"
	Count int     `json:"count"`
	Flops float64 `json:"flops"`
	Watts float64 `json:"watts"`
}

// NodeJSON describes one node. Class accepts the tier names from
// node.Class.String.
type NodeJSON struct {
	Name          string     `json:"name"`
	Class         string     `json:"class"`
	Cores         int        `json:"cores"`
	CoreFlops     float64    `json:"coreFlops"`
	MemBytes      int64      `json:"memBytes"`
	Accel         *AccelJSON `json:"accel,omitempty"`
	IdleWatts     float64    `json:"idleWatts"`
	ActiveWatts   float64    `json:"activeWattsPerCore"`
	DollarPerHour float64    `json:"dollarPerHour"`
	EgressPerByte float64    `json:"egressPerByte"`
}

// LinkJSON is a duplex link between two named nodes.
type LinkJSON struct {
	A        string  `json:"a"`
	B        string  `json:"b"`
	Latency  float64 `json:"latency"`
	Capacity float64 `json:"capacity"`
}

// StreamJSON describes an online-placement workload.
type StreamJSON struct {
	Policy        string   `json:"policy"` // placement policy name
	Origins       []string `json:"origins"`
	RatePerOrigin float64  `json:"ratePerOrigin"`
	Horizon       float64  `json:"horizon"`
	ScalarWork    float64  `json:"scalarWork"`
	TensorWork    float64  `json:"tensorWork"`
	Accel         string   `json:"accel,omitempty"`
	InputBytes    float64  `json:"inputBytes"`
	OutputBytes   float64  `json:"outputBytes"`
}

// DAGJSON describes a workflow workload.
type DAGJSON struct {
	Generator string  `json:"generator"` // chain|fanoutin|layered|montage|epigenomics|cybershake
	Size      int     `json:"size"`
	Scheduler string  `json:"scheduler"` // heft|cpop|greedy|roundrobin|random
	MeanWork  float64 `json:"meanWork"`
	MeanBytes float64 `json:"meanBytes"`
}

// Scenario is a full run description.
type Scenario struct {
	Name   string      `json:"name"`
	Seed   uint64      `json:"seed"`
	Nodes  []NodeJSON  `json:"nodes"`
	Links  []LinkJSON  `json:"links"`
	Stream *StreamJSON `json:"stream,omitempty"`
	DAG    *DAGJSON    `json:"dag,omitempty"`
}

// Parse decodes and validates a scenario.
func Parse(b []byte) (*Scenario, error) {
	var s Scenario
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate checks structural consistency.
func (s *Scenario) Validate() error {
	if len(s.Nodes) == 0 {
		return fmt.Errorf("scenario %q: no nodes", s.Name)
	}
	names := make(map[string]bool)
	for _, n := range s.Nodes {
		if n.Name == "" {
			return fmt.Errorf("scenario %q: node with empty name", s.Name)
		}
		if names[n.Name] {
			return fmt.Errorf("scenario %q: duplicate node %q", s.Name, n.Name)
		}
		names[n.Name] = true
		if _, err := parseClass(n.Class); err != nil {
			return err
		}
	}
	for _, l := range s.Links {
		if !names[l.A] || !names[l.B] {
			return fmt.Errorf("scenario %q: link %s-%s references unknown node", s.Name, l.A, l.B)
		}
	}
	if s.Stream == nil && s.DAG == nil {
		return fmt.Errorf("scenario %q: no workload (stream or dag)", s.Name)
	}
	if s.Stream != nil && s.DAG != nil {
		return fmt.Errorf("scenario %q: both stream and dag specified", s.Name)
	}
	if s.Stream != nil {
		if _, err := parsePolicy(s.Stream.Policy, workload.NewRNG(0)); err != nil {
			return err
		}
		for _, o := range s.Stream.Origins {
			if !names[o] {
				return fmt.Errorf("scenario %q: origin %q unknown", s.Name, o)
			}
		}
		if s.Stream.RatePerOrigin <= 0 || s.Stream.Horizon <= 0 {
			return fmt.Errorf("scenario %q: stream rate and horizon must be positive", s.Name)
		}
	}
	if s.DAG != nil {
		if _, err := dagGen(s.DAG, workload.NewRNG(0)); err != nil {
			return err
		}
		if _, err := parseScheduler(s.DAG.Scheduler); err != nil {
			return err
		}
	}
	return nil
}

func parseClass(s string) (node.Class, error) {
	for c := node.Sensor; c <= node.HPC; c++ {
		if c.String() == s {
			return c, nil
		}
	}
	return 0, fmt.Errorf("scenario: unknown node class %q", s)
}

func parseAccelKind(s string) (node.AccelKind, error) {
	for k := node.NoAccel; k <= node.FPGA; k++ {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("scenario: unknown accel kind %q", s)
}

func parsePolicy(name string, rng *workload.RNG) (placement.Policy, error) {
	switch name {
	case "edge-only":
		return placement.EdgeOnly{}, nil
	case "cloud-only":
		return placement.CloudOnly{}, nil
	case "greedy-latency":
		return placement.GreedyLatency{}, nil
	case "greedy-energy":
		return placement.GreedyEnergy{}, nil
	case "greedy-cost":
		return placement.GreedyCost{}, nil
	case "data-aware":
		return placement.DataAware{}, nil
	case "round-robin":
		return &placement.RoundRobin{}, nil
	case "random":
		return placement.Random{RNG: rng}, nil
	default:
		return nil, fmt.Errorf("scenario: unknown policy %q", name)
	}
}

func parseScheduler(name string) (func(*placement.Env, *task.DAG, *workload.RNG) placement.Schedule, error) {
	switch name {
	case "heft":
		return func(e *placement.Env, d *task.DAG, _ *workload.RNG) placement.Schedule {
			return placement.HEFT(e, d)
		}, nil
	case "cpop":
		return func(e *placement.Env, d *task.DAG, _ *workload.RNG) placement.Schedule {
			return placement.CPOP(e, d)
		}, nil
	case "greedy":
		return func(e *placement.Env, d *task.DAG, _ *workload.RNG) placement.Schedule {
			return placement.ListGreedy(e, d)
		}, nil
	case "roundrobin":
		return func(e *placement.Env, d *task.DAG, _ *workload.RNG) placement.Schedule {
			return placement.ListRoundRobin(e, d)
		}, nil
	case "random":
		return func(e *placement.Env, d *task.DAG, rng *workload.RNG) placement.Schedule {
			return placement.ListRandom(e, d, rng)
		}, nil
	default:
		return nil, fmt.Errorf("scenario: unknown scheduler %q", name)
	}
}

func dagGen(dj *DAGJSON, rng *workload.RNG) (*task.DAG, error) {
	spec := task.GenSpec{
		MeanWork: dj.MeanWork, WorkSigma: 0.8,
		MeanBytes: dj.MeanBytes, BytesSigma: 0.8,
	}
	if spec.MeanWork <= 0 {
		spec.MeanWork = 1e10
	}
	if spec.MeanBytes <= 0 {
		spec.MeanBytes = 1e6
	}
	size := dj.Size
	if size < 2 {
		size = 10
	}
	switch dj.Generator {
	case "chain":
		return task.Chain(rng, size, spec), nil
	case "fanoutin":
		return task.FanOutIn(rng, size, spec), nil
	case "layered":
		return task.RandomLayered(rng, 5, size/4+1, 3, spec), nil
	case "montage":
		return task.MontageLike(rng, size, spec), nil
	case "epigenomics":
		return task.EpigenomicsLike(rng, size/5+1, 4, spec), nil
	case "cybershake":
		return task.CyberShakeLike(rng, size, spec), nil
	default:
		return nil, fmt.Errorf("scenario: unknown DAG generator %q", dj.Generator)
	}
}

// Report is the outcome of a scenario run, renderable as a table.
//
// MeanLat/P99Lat summarize core.Stats.Latency, so their meaning follows
// the workload kind: submit→reply seconds for stream scenarios, per-task
// ready→finish seconds for DAG scenarios (see core.Stats).
type Report struct {
	Scenario  string
	Workload  string
	Completed int64
	Makespan  float64
	MeanLat   float64
	P99Lat    float64
	Joules    float64
	Dollars   float64
	EgressB   float64
	PerNode   map[string]int64
}

// Table renders the report.
func (r *Report) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("scenario %q (%s)", r.Scenario, r.Workload),
		"metric", "value",
	)
	t.AddRow("completed", fmt.Sprintf("%d", r.Completed))
	t.AddRow("makespan", metrics.FormatDuration(r.Makespan))
	t.AddRow("mean latency", metrics.FormatDuration(r.MeanLat))
	t.AddRow("p99 latency", metrics.FormatDuration(r.P99Lat))
	t.AddRow("energy", fmt.Sprintf("%.1f J", r.Joules))
	t.AddRow("cost", fmt.Sprintf("$%.6f", r.Dollars))
	t.AddRow("egress", metrics.FormatBytes(r.EgressB))
	names := make([]string, 0, len(r.PerNode))
	for name := range r.PerNode {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t.AddRow("tasks@"+name, fmt.Sprintf("%d", r.PerNode[name]))
	}
	return t
}

// Run builds the continuum and executes the workload.
func (s *Scenario) Run() (*Report, error) {
	r, _, err := s.RunTraced()
	return r, err
}

// RunTraced is Run plus the event trace of the execution, for timeline
// rendering (continuum-sim -gantt).
func (s *Scenario) RunTraced() (*Report, *trace.Tracer, error) {
	if err := s.Validate(); err != nil {
		return nil, nil, err
	}
	rng := workload.NewRNG(s.Seed)

	c := core.New()
	c.Tracer = trace.New(1 << 20)
	byName := make(map[string]*node.Node)
	for _, nj := range s.Nodes {
		class, _ := parseClass(nj.Class)
		spec := node.Spec{
			Name: nj.Name, Class: class,
			Cores: nj.Cores, CoreFlops: nj.CoreFlops, MemBytes: nj.MemBytes,
			IdleWatts: nj.IdleWatts, ActiveWattsCore: nj.ActiveWatts,
			DollarPerHour: nj.DollarPerHour, EgressPerByte: nj.EgressPerByte,
		}
		if nj.Accel != nil {
			kind, err := parseAccelKind(nj.Accel.Kind)
			if err != nil {
				return nil, nil, err
			}
			spec.Accel = node.Accelerator{
				Kind: kind, Count: nj.Accel.Count,
				Flops: nj.Accel.Flops, Watts: nj.Accel.Watts,
			}
		}
		if err := spec.Validate(); err != nil {
			return nil, nil, err
		}
		byName[nj.Name] = c.AddNode(spec)
	}
	for _, lj := range s.Links {
		c.Connect(byName[lj.A].ID, byName[lj.B].ID, lj.Latency, lj.Capacity)
	}
	if err := c.Validate(); err != nil {
		return nil, nil, err
	}

	var rep *Report
	var err error
	if s.Stream != nil {
		rep, err = s.runStream(c, byName, rng)
	} else {
		rep, err = s.runDAG(c, rng)
	}
	return rep, c.Tracer, err
}

func (s *Scenario) runStream(c *core.Continuum, byName map[string]*node.Node, rng *workload.RNG) (*Report, error) {
	pol, err := parsePolicy(s.Stream.Policy, rng.Split())
	if err != nil {
		return nil, err
	}
	accel := node.NoAccel
	if s.Stream.Accel != "" {
		if accel, err = parseAccelKind(s.Stream.Accel); err != nil {
			return nil, err
		}
	}
	var jobs []core.StreamJob
	for _, origin := range s.Stream.Origins {
		arr := workload.NewPoisson(rng.Split(), s.Stream.RatePerOrigin)
		t := 0.0
		for {
			t += arr.Next()
			if t > s.Stream.Horizon {
				break
			}
			jobs = append(jobs, core.StreamJob{
				Task: &task.Task{
					Name:        "job",
					ScalarWork:  s.Stream.ScalarWork,
					TensorWork:  s.Stream.TensorWork,
					Accel:       accel,
					OutputBytes: s.Stream.OutputBytes,
					Inputs:      []task.DataRef{{Name: "in", Bytes: s.Stream.InputBytes}},
				},
				Origin: byName[origin].ID,
				Submit: t,
			})
		}
	}
	st := c.RunStream(pol, jobs, nil)
	return reportFromStats(s.Name, "stream/"+s.Stream.Policy, st), nil
}

func (s *Scenario) runDAG(c *core.Continuum, rng *workload.RNG) (*Report, error) {
	d, err := dagGen(s.DAG, rng.Split())
	if err != nil {
		return nil, err
	}
	schedule, err := parseScheduler(s.DAG.Scheduler)
	if err != nil {
		return nil, err
	}
	env := c.Env()
	st, err := c.RunDAG(d, schedule(env, d, rng.Split()), env)
	if err != nil {
		return nil, err
	}
	return reportFromStats(s.Name, "dag/"+s.DAG.Generator+"/"+s.DAG.Scheduler, st), nil
}

func reportFromStats(name, workloadDesc string, st *core.Stats) *Report {
	return &Report{
		Scenario:  name,
		Workload:  workloadDesc,
		Completed: st.Completed,
		Makespan:  st.Makespan,
		MeanLat:   st.Latency.Mean(),
		P99Lat:    st.Latency.P99(),
		Joules:    st.Joules,
		Dollars:   st.Dollars,
		EgressB:   st.EgressB,
		PerNode:   st.PerNode,
	}
}

// Example returns a documented sample scenario (used by -example).
func Example() *Scenario {
	return &Scenario{
		Name: "metro-iot",
		Seed: 42,
		Nodes: []NodeJSON{
			{Name: "gw0", Class: "gateway", Cores: 4, CoreFlops: 2.5e9, MemBytes: 4 << 30, IdleWatts: 2, ActiveWatts: 3},
			{Name: "gw1", Class: "gateway", Cores: 4, CoreFlops: 2.5e9, MemBytes: 4 << 30, IdleWatts: 2, ActiveWatts: 3},
			{Name: "fog", Class: "fog", Cores: 16, CoreFlops: 3e9, MemBytes: 64 << 30, IdleWatts: 40, ActiveWatts: 8,
				Accel: &AccelJSON{Kind: "gpu", Count: 1, Flops: 5e12, Watts: 70}},
			{Name: "cloud", Class: "cloud", Cores: 96, CoreFlops: 3.2e9, MemBytes: 384 << 30, IdleWatts: 300, ActiveWatts: 12,
				DollarPerHour: 24, EgressPerByte: 9e-11,
				Accel: &AccelJSON{Kind: "gpu", Count: 8, Flops: 1.4e13, Watts: 300}},
		},
		Links: []LinkJSON{
			{A: "gw0", B: "fog", Latency: 0.002, Capacity: 1.25e8},
			{A: "gw1", B: "fog", Latency: 0.002, Capacity: 1.25e8},
			{A: "fog", B: "cloud", Latency: 0.020, Capacity: 1.25e9},
		},
		Stream: &StreamJSON{
			Policy: "greedy-latency", Origins: []string{"gw0", "gw1"},
			RatePerOrigin: 10, Horizon: 30,
			ScalarWork: 5e8, InputBytes: 1024, OutputBytes: 128,
		},
	}
}
