package scenario

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestExampleValidatesAndRuns(t *testing.T) {
	s := Example()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Completed == 0 {
		t.Fatal("nothing completed")
	}
	if r.MeanLat <= 0 || r.Joules <= 0 {
		t.Fatalf("degenerate report %+v", r)
	}
	out := r.Table().String()
	if !strings.Contains(out, "metro-iot") || !strings.Contains(out, "completed") {
		t.Fatalf("table rendering: %s", out)
	}
}

func TestParseRoundTrip(t *testing.T) {
	b, err := json.Marshal(Example())
	if err != nil {
		t.Fatal(err)
	}
	s, err := Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "metro-iot" || len(s.Nodes) != 4 {
		t.Fatalf("parsed %+v", s)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse([]byte("{nope")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func mutate(t *testing.T, f func(*Scenario)) error {
	t.Helper()
	s := Example()
	f(s)
	return s.Validate()
}

func TestValidateCatchesErrors(t *testing.T) {
	cases := []struct {
		name string
		f    func(*Scenario)
	}{
		{"no nodes", func(s *Scenario) { s.Nodes = nil }},
		{"empty node name", func(s *Scenario) { s.Nodes[0].Name = "" }},
		{"duplicate node", func(s *Scenario) { s.Nodes[1].Name = s.Nodes[0].Name }},
		{"bad class", func(s *Scenario) { s.Nodes[0].Class = "mainframe" }},
		{"dangling link", func(s *Scenario) { s.Links[0].A = "ghost" }},
		{"no workload", func(s *Scenario) { s.Stream = nil }},
		{"both workloads", func(s *Scenario) {
			s.DAG = &DAGJSON{Generator: "chain", Scheduler: "heft"}
		}},
		{"bad policy", func(s *Scenario) { s.Stream.Policy = "oracle" }},
		{"bad origin", func(s *Scenario) { s.Stream.Origins = []string{"ghost"} }},
		{"zero rate", func(s *Scenario) { s.Stream.RatePerOrigin = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := mutate(t, tc.f); err == nil {
				t.Errorf("%s accepted", tc.name)
			}
		})
	}
}

func TestDAGScenarioRuns(t *testing.T) {
	s := Example()
	s.Stream, s.Events = nil, nil
	s.DAG = &DAGJSON{Generator: "montage", Size: 8, Scheduler: "heft", MeanWork: 1e10, MeanBytes: 1e6}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// montage-8: 8 + 7 + 1 + 8 + 1 = 25 tasks
	if r.Completed != 25 {
		t.Fatalf("Completed = %d, want 25", r.Completed)
	}
	if r.Makespan <= 0 {
		t.Fatal("no makespan")
	}
}

func TestAllGeneratorsAndSchedulersRun(t *testing.T) {
	for _, gen := range []string{"chain", "fanoutin", "layered", "montage", "epigenomics", "cybershake"} {
		for _, sched := range []string{"heft", "cpop", "greedy", "roundrobin", "random"} {
			s := Example()
			s.Stream, s.Events = nil, nil
			s.DAG = &DAGJSON{Generator: gen, Size: 6, Scheduler: sched}
			r, err := s.Run()
			if err != nil {
				t.Fatalf("%s/%s: %v", gen, sched, err)
			}
			if r.Completed == 0 {
				t.Fatalf("%s/%s completed nothing", gen, sched)
			}
		}
	}
}

func TestAllPoliciesRun(t *testing.T) {
	for _, pol := range []string{
		"edge-only", "cloud-only", "greedy-latency", "greedy-energy",
		"greedy-cost", "data-aware", "round-robin", "random",
	} {
		s := Example()
		s.Stream.Policy = pol
		s.Stream.Horizon = 3
		r, err := s.Run()
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		if r.Completed == 0 {
			t.Fatalf("%s completed nothing", pol)
		}
	}
}

func TestRunTracedReturnsEvents(t *testing.T) {
	s := Example()
	s.Stream.Horizon = 3
	r, tr, err := s.RunTraced()
	if err != nil {
		t.Fatal(err)
	}
	if r.Completed == 0 {
		t.Fatal("nothing completed")
	}
	if tr == nil || tr.Len() == 0 {
		t.Fatal("no trace events from a traced run")
	}
	if g := tr.Gantt(30); g == "" {
		t.Fatal("empty gantt from traced run")
	}
}

func TestSeedDeterminism(t *testing.T) {
	run := func() *Report {
		s := Example()
		s.Stream.Horizon = 5
		r, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.Completed != b.Completed || a.MeanLat != b.MeanLat || a.Joules != b.Joules {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}
