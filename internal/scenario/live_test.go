package scenario

import (
	"strings"
	"testing"
	"time"

	"continuum/internal/trace"
)

// liveScenario is a small evented stream scenario sized for fast
// wall-clock replay: ~8 scenario seconds at TimeScale 0.05 is ~0.4s.
func liveScenario() *Scenario {
	s := eventScenario()
	s.Name = "live-smoke"
	s.Seed = 11
	s.Stream.RatePerOrigin = 12
	s.Stream.Origins = []string{"gw0", "gw1", "gw2"}
	s.Stream.Horizon = 8
	s.Events = []EventJSON{
		{At: 1, Kind: "chaos", Target: "fog", Spec: "drop=0.3,err=0.1", For: 4},
		{At: 2, Kind: "fail", Target: "gw1", For: 3},
		{At: 3, Kind: "degrade-link", Target: "fog->cloud", Factor: 3},
		{At: 5, Kind: "restore-link", Target: "fog->cloud"},
		{At: 2, Kind: "workload", Factor: 2},
	}
	return s
}

// TestLiveRunnerZeroLost replays a scripted failure scenario against a
// real in-process fleet and asserts the chaos-e2e claim generalized:
// the reliable client loses nothing, no matter what the script does.
func TestLiveRunnerZeroLost(t *testing.T) {
	if testing.Short() {
		t.Skip("live fleet skipped in -short")
	}
	s := liveScenario()
	r, err := LiveRunner{Options: LiveOptions{TimeScale: 0.05}}.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if r.Backend != "live" {
		t.Fatalf("backend %q", r.Backend)
	}
	if r.Completed == 0 {
		t.Fatal("nothing completed")
	}
	if r.Lost != 0 {
		t.Fatalf("%d requests lost out of %d", r.Lost, r.Completed+r.Lost)
	}
	if r.Suppressed == 0 {
		t.Fatal("failed origin gw1 generated load anyway")
	}
	if r.MeanLat <= 0 {
		t.Fatalf("degenerate latency: %+v", r)
	}
	var total int64
	for _, n := range r.PerNode {
		total += n
	}
	if total < r.Completed {
		t.Fatalf("per-node invocations %d < completed %d", total, r.Completed)
	}
}

// TestLiveRunnerTracesEndToEnd: with a span store configured, a live
// replay must record full traces — client root, attempt, send, server,
// queue, and exec spans, correctly linked — for the scripted fleet.
func TestLiveRunnerTracesEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("live fleet skipped in -short")
	}
	s := liveScenario()
	s.Events = nil // healthy fleet: every trace should be complete
	s.Stream.Horizon = 3
	spans := trace.NewSpanStore(1 << 16)
	r, err := LiveRunner{Options: LiveOptions{TimeScale: 0.05, Spans: spans}}.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if r.Lost != 0 || r.Completed == 0 {
		t.Fatalf("lost=%d completed=%d", r.Lost, r.Completed)
	}
	if spans.Dropped() > 0 {
		t.Fatalf("span ring overflowed (%d dropped); size it to the scenario", spans.Dropped())
	}
	sums := trace.Summarize(spans.Snapshot())
	if int64(len(sums)) != r.Completed {
		t.Fatalf("recorded %d traces for %d completed invocations", len(sums), r.Completed)
	}
	// Every trace must span the client and at least one fleet node, and
	// every span's parent must resolve within its own trace.
	byTrace := make(map[string][]*trace.Span)
	byID := make(map[string]bool)
	for _, sp := range spans.Snapshot() {
		byTrace[sp.TraceID] = append(byTrace[sp.TraceID], sp)
		byID[sp.TraceID+"/"+sp.SpanID] = true
	}
	kinds := map[trace.SpanKind]bool{}
	for id, set := range byTrace {
		roots := 0
		for _, sp := range set {
			kinds[sp.Kind] = true
			if sp.Parent == "" {
				roots++
				if sp.Service != "scenario" {
					t.Fatalf("trace %s rooted at %q, want the scenario client", id, sp.Service)
				}
			} else if !byID[sp.TraceID+"/"+sp.Parent] {
				t.Fatalf("trace %s: span %s has unresolvable parent %s", id, sp.SpanID, sp.Parent)
			}
		}
		if roots != 1 {
			t.Fatalf("trace %s has %d roots, want 1", id, roots)
		}
	}
	for _, k := range []trace.SpanKind{trace.KindClient, trace.KindAttempt, trace.KindServer, trace.KindQueue, trace.KindExec} {
		if !kinds[k] {
			t.Fatalf("no %s spans recorded across %d traces", k, len(sums))
		}
	}
}

// TestLiveRouterChurnZeroLost fronts the live fleet with an in-process
// continuum-router: every node registers through a federation agent,
// requests flow client → router → fleet, and the script churns the
// membership — a graceful leave+rejoin and a hard failure — while the
// zero-loss claim must keep holding end to end.
func TestLiveRouterChurnZeroLost(t *testing.T) {
	if testing.Short() {
		t.Skip("live fleet skipped in -short")
	}
	s := liveScenario()
	s.Name = "live-router-churn"
	s.Events = []EventJSON{
		{At: 1, Kind: "leave", Target: "gw1", For: 4},
		{At: 2, Kind: "fail", Target: "fog", For: 3},
		{At: 3, Kind: "workload", Factor: 2},
	}
	r, err := LiveRunner{Options: LiveOptions{TimeScale: 0.05, Router: true, Heartbeat: 50 * time.Millisecond}}.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if r.Workload != "live+router/echo" {
		t.Fatalf("workload %q, want live+router/echo", r.Workload)
	}
	if r.Completed == 0 {
		t.Fatal("nothing completed through the router")
	}
	if r.Lost != 0 {
		t.Fatalf("%d requests lost out of %d during membership churn", r.Lost, r.Completed+r.Lost)
	}
	if r.Suppressed == 0 {
		t.Fatal("the departed origin gw1 generated load anyway")
	}
	// The rejoined node served work after coming back: its invocation
	// count must be nonzero (it was an origin before the leave too, so
	// this is a weak but cheap signal the round trip happened).
	if r.PerNode["gw1"] == 0 {
		t.Fatal("gw1 never served an invocation across leave+rejoin")
	}
}

func TestLiveRejectsDAG(t *testing.T) {
	s := eventScenario()
	s.Stream, s.Events = nil, nil
	s.DAG = &DAGJSON{Generator: "chain", Size: 4, Scheduler: "heft"}
	_, err := (&LiveRunner{}).Run(s)
	if err == nil || !strings.Contains(err.Error(), "stream scenarios only") {
		t.Fatalf("DAG on live backend: %v", err)
	}
}

func TestLiveRejectsHugeFleet(t *testing.T) {
	s := GenerateStress(StressSpec{Nodes: 1000, Seed: 1})
	_, err := LiveRunner{Options: LiveOptions{TimeScale: 0.01}}.Run(s)
	if err == nil || !strings.Contains(err.Error(), "live fleet cap") {
		t.Fatalf("1000-node live fleet: %v", err)
	}
}

func TestRunnerBackendsShareOneScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("live fleet skipped in -short")
	}
	s := liveScenario()
	runners := []Runner{SimRunner{}, LiveRunner{Options: LiveOptions{TimeScale: 0.02}}}
	for _, rn := range runners {
		r, err := rn.Run(s)
		if err != nil {
			t.Fatalf("%s: %v", rn.Backend(), err)
		}
		if r.Backend != rn.Backend() {
			t.Fatalf("report says %q, runner says %q", r.Backend, rn.Backend())
		}
		if r.Completed == 0 {
			t.Fatalf("%s completed nothing", rn.Backend())
		}
	}
}
