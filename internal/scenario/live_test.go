package scenario

import (
	"strings"
	"testing"
)

// liveScenario is a small evented stream scenario sized for fast
// wall-clock replay: ~8 scenario seconds at TimeScale 0.05 is ~0.4s.
func liveScenario() *Scenario {
	s := eventScenario()
	s.Name = "live-smoke"
	s.Seed = 11
	s.Stream.RatePerOrigin = 12
	s.Stream.Origins = []string{"gw0", "gw1", "gw2"}
	s.Stream.Horizon = 8
	s.Events = []EventJSON{
		{At: 1, Kind: "chaos", Target: "fog", Spec: "drop=0.3,err=0.1", For: 4},
		{At: 2, Kind: "fail", Target: "gw1", For: 3},
		{At: 3, Kind: "degrade-link", Target: "fog->cloud", Factor: 3},
		{At: 5, Kind: "restore-link", Target: "fog->cloud"},
		{At: 2, Kind: "workload", Factor: 2},
	}
	return s
}

// TestLiveRunnerZeroLost replays a scripted failure scenario against a
// real in-process fleet and asserts the chaos-e2e claim generalized:
// the reliable client loses nothing, no matter what the script does.
func TestLiveRunnerZeroLost(t *testing.T) {
	if testing.Short() {
		t.Skip("live fleet skipped in -short")
	}
	s := liveScenario()
	r, err := LiveRunner{Options: LiveOptions{TimeScale: 0.05}}.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if r.Backend != "live" {
		t.Fatalf("backend %q", r.Backend)
	}
	if r.Completed == 0 {
		t.Fatal("nothing completed")
	}
	if r.Lost != 0 {
		t.Fatalf("%d requests lost out of %d", r.Lost, r.Completed+r.Lost)
	}
	if r.Suppressed == 0 {
		t.Fatal("failed origin gw1 generated load anyway")
	}
	if r.MeanLat <= 0 {
		t.Fatalf("degenerate latency: %+v", r)
	}
	var total int64
	for _, n := range r.PerNode {
		total += n
	}
	if total < r.Completed {
		t.Fatalf("per-node invocations %d < completed %d", total, r.Completed)
	}
}

func TestLiveRejectsDAG(t *testing.T) {
	s := eventScenario()
	s.Stream, s.Events = nil, nil
	s.DAG = &DAGJSON{Generator: "chain", Size: 4, Scheduler: "heft"}
	_, err := (&LiveRunner{}).Run(s)
	if err == nil || !strings.Contains(err.Error(), "stream scenarios only") {
		t.Fatalf("DAG on live backend: %v", err)
	}
}

func TestLiveRejectsHugeFleet(t *testing.T) {
	s := GenerateStress(StressSpec{Nodes: 1000, Seed: 1})
	_, err := LiveRunner{Options: LiveOptions{TimeScale: 0.01}}.Run(s)
	if err == nil || !strings.Contains(err.Error(), "live fleet cap") {
		t.Fatalf("1000-node live fleet: %v", err)
	}
}

func TestRunnerBackendsShareOneScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("live fleet skipped in -short")
	}
	s := liveScenario()
	runners := []Runner{SimRunner{}, LiveRunner{Options: LiveOptions{TimeScale: 0.02}}}
	for _, rn := range runners {
		r, err := rn.Run(s)
		if err != nil {
			t.Fatalf("%s: %v", rn.Backend(), err)
		}
		if r.Backend != rn.Backend() {
			t.Fatalf("report says %q, runner says %q", r.Backend, rn.Backend())
		}
		if r.Completed == 0 {
			t.Fatalf("%s completed nothing", rn.Backend())
		}
	}
}
