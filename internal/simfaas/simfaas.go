// Package simfaas is function serving in *virtual* time: endpoints live
// on the simulated network, invocations pay real routing latency, queue
// for capacity slots, and suffer cold starts — all under the
// discrete-event kernel. Where internal/faas runs a real federation on
// goroutines, simfaas scales the same mechanics to hundreds of endpoints
// and millions of invocations, powering the F9 routing experiment.
package simfaas

import (
	"fmt"
	"math"

	"continuum/internal/netsim"
	"continuum/internal/sim"
	"continuum/internal/workload"
)

// Endpoint is a serving site on the topology.
type Endpoint struct {
	Name string
	// Vertex is the endpoint's network attachment point.
	Vertex int

	slots   *sim.Resource
	cold    float64 // provisioning delay for a cold container
	warmTTL float64 // idle lifetime of a warm container

	// warm holds per-function stacks of idle-since timestamps.
	warm map[string][]float64

	k *sim.Kernel

	// ColdStarts/WarmHits/Invocations mirror the real faas counters.
	ColdStarts, WarmHits, Invocations int64

	// pending counts invocations the router has dispatched toward this
	// endpoint that have not yet arrived — without it, load-aware
	// policies would route on stale zeros while requests are in flight.
	pending int64
}

// NewEndpoint creates an endpoint with `capacity` concurrent containers.
func NewEndpoint(k *sim.Kernel, vertex int, name string, capacity int, cold, warmTTL float64) *Endpoint {
	if capacity < 1 {
		panic(fmt.Sprintf("simfaas: endpoint %q capacity %d < 1", name, capacity))
	}
	if cold < 0 || warmTTL < 0 {
		panic("simfaas: negative cold or warmTTL")
	}
	return &Endpoint{
		Name: name, Vertex: vertex,
		slots:   sim.NewResource(k, name+"/slots", int64(capacity)),
		cold:    cold,
		warmTTL: warmTTL,
		warm:    make(map[string][]float64),
		k:       k,
	}
}

// Backlog returns running, queued, and router-dispatched-in-flight
// invocations.
func (ep *Endpoint) Backlog() int64 {
	return ep.slots.InUse() + int64(ep.slots.QueueLen()) + ep.pending
}

// Capacity returns the concurrency limit.
func (ep *Endpoint) Capacity() int64 { return ep.slots.Capacity() }

// takeWarm pops a fresh warm container for fn, expiring stale ones.
func (ep *Endpoint) takeWarm(fn string) bool {
	now := ep.k.Now()
	pool := ep.warm[fn]
	for len(pool) > 0 {
		idleSince := pool[len(pool)-1]
		pool = pool[:len(pool)-1]
		if ep.warmTTL == 0 || now-idleSince <= ep.warmTTL {
			ep.warm[fn] = pool
			return true
		}
	}
	ep.warm[fn] = pool
	return false
}

// Invoke queues one invocation of fn with the given service time; done
// fires (in virtual time) when it finishes.
func (ep *Endpoint) Invoke(fn string, service float64, done func()) {
	if service < 0 {
		panic("simfaas: negative service time")
	}
	ep.slots.Acquire(1, func() {
		d := service
		if ep.takeWarm(fn) {
			ep.WarmHits++
		} else {
			ep.ColdStarts++
			d += ep.cold
		}
		ep.k.After(d, func() {
			ep.warm[fn] = append(ep.warm[fn], ep.k.Now())
			ep.slots.Release(1)
			ep.Invocations++
			if done != nil {
				done()
			}
		})
	})
}

// Policy selects an endpoint for an invocation originating at a vertex.
type Policy interface {
	Name() string
	Pick(r *Router, origin int, fn string) *Endpoint
}

// Nearest picks the endpoint with minimum network latency from the
// origin — optimal when nobody else is talking.
type Nearest struct{}

// Name implements Policy.
func (Nearest) Name() string { return "nearest" }

// Pick implements Policy.
func (Nearest) Pick(r *Router, origin int, fn string) *Endpoint {
	var best *Endpoint
	bestLat := math.Inf(1)
	for _, ep := range r.eps {
		lat := r.net.Latency(origin, ep.Vertex)
		if lat < bestLat {
			best, bestLat = ep, lat
		}
	}
	return best
}

// LeastLoaded picks the endpoint with the smallest backlog/capacity
// ratio, ignoring distance — funcX's spread heuristic.
type LeastLoaded struct{}

// Name implements Policy.
func (LeastLoaded) Name() string { return "least-loaded" }

// Pick implements Policy.
func (LeastLoaded) Pick(r *Router, origin int, fn string) *Endpoint {
	var best *Endpoint
	bestLoad := math.Inf(1)
	for _, ep := range r.eps {
		load := float64(ep.Backlog()) / float64(ep.Capacity())
		if load < bestLoad {
			best, bestLoad = ep, load
		}
	}
	return best
}

// TwoChoices samples two random endpoints and takes the less loaded —
// the classic power-of-two-choices compromise: near-optimal load spread
// with O(1) state and no global view.
type TwoChoices struct{ RNG *workload.RNG }

// Name implements Policy.
func (TwoChoices) Name() string { return "two-choices" }

// Pick implements Policy.
func (p TwoChoices) Pick(r *Router, origin int, fn string) *Endpoint {
	a := r.eps[p.RNG.Intn(len(r.eps))]
	b := r.eps[p.RNG.Intn(len(r.eps))]
	la := float64(a.Backlog()) / float64(a.Capacity())
	lb := float64(b.Backlog()) / float64(b.Capacity())
	if lb < la {
		return b
	}
	return a
}

// NearestUnderLoad prefers the nearest endpoint unless its backlog
// exceeds threshold×capacity, then falls back to least-loaded: the
// latency-first hybrid.
type NearestUnderLoad struct{ Threshold float64 }

// Name implements Policy.
func (NearestUnderLoad) Name() string { return "nearest-spill" }

// Pick implements Policy.
func (p NearestUnderLoad) Pick(r *Router, origin int, fn string) *Endpoint {
	near := Nearest{}.Pick(r, origin, fn)
	if float64(near.Backlog()) <= p.Threshold*float64(near.Capacity()) {
		return near
	}
	return LeastLoaded{}.Pick(r, origin, fn)
}

// Router federates simulated endpoints over a network.
type Router struct {
	net *netsim.Network
	eps []*Endpoint
	pol Policy
}

// NewRouter builds a router.
func NewRouter(net *netsim.Network, pol Policy, eps ...*Endpoint) *Router {
	if len(eps) == 0 {
		panic("simfaas: router needs endpoints")
	}
	return &Router{net: net, eps: eps, pol: pol}
}

// Endpoints returns the federated endpoints.
func (r *Router) Endpoints() []*Endpoint { return r.eps }

// Invoke routes one invocation from origin: request payload travels to
// the chosen endpoint, executes, and the response returns to the origin.
// done receives the end-to-end latency in virtual seconds.
func (r *Router) Invoke(origin int, fn string, reqBytes, respBytes, service float64, done func(latency float64)) {
	start := r.net.Kernel().Now()
	ep := r.pol.Pick(r, origin, fn)
	ep.pending++
	r.net.Message(origin, ep.Vertex, reqBytes, func() {
		ep.pending--
		ep.Invoke(fn, service, func() {
			r.net.Message(ep.Vertex, origin, respBytes, func() {
				if done != nil {
					done(r.net.Kernel().Now() - start)
				}
			})
		})
	})
}
