package simfaas

import (
	"math"
	"testing"

	"continuum/internal/netsim"
	"continuum/internal/sim"
	"continuum/internal/workload"
)

// twoSiteNet: origin(0) -- near ep(1) at 1ms -- far ep(2) at 50ms.
func twoSiteNet() (*sim.Kernel, *netsim.Network) {
	k := sim.NewKernel()
	net := netsim.New(k, 3)
	net.AddDuplexLink(0, 1, 0.001, 1e9)
	net.AddDuplexLink(0, 2, 0.050, 1e9)
	return k, net
}

func TestEndpointColdThenWarm(t *testing.T) {
	k := sim.NewKernel()
	_ = netsim.New(k, 1)
	ep := NewEndpoint(k, 0, "ep", 2, 0.1, 60)
	var t1, t2 float64
	ep.Invoke("f", 0.2, func() { t1 = k.Now() })
	k.Run()
	// Cold: 0.1 + 0.2.
	if math.Abs(t1-0.3) > 1e-9 {
		t.Fatalf("cold finish = %v, want 0.3", t1)
	}
	ep.Invoke("f", 0.2, func() { t2 = k.Now() })
	k.Run()
	// Warm: just 0.2 more.
	if math.Abs(t2-0.5) > 1e-9 {
		t.Fatalf("warm finish = %v, want 0.5", t2)
	}
	if ep.ColdStarts != 1 || ep.WarmHits != 1 {
		t.Fatalf("cold/warm = %d/%d", ep.ColdStarts, ep.WarmHits)
	}
}

func TestEndpointWarmTTLExpires(t *testing.T) {
	k := sim.NewKernel()
	ep := NewEndpoint(k, 0, "ep", 1, 0.1, 1.0)
	ep.Invoke("f", 0.1, nil)
	k.Run()
	// Wait past the TTL in virtual time.
	k.At(k.Now()+5, func() {
		ep.Invoke("f", 0.1, nil)
	})
	k.Run()
	if ep.ColdStarts != 2 {
		t.Fatalf("ColdStarts = %d, want 2 (TTL expiry)", ep.ColdStarts)
	}
}

func TestEndpointCapacityQueues(t *testing.T) {
	k := sim.NewKernel()
	ep := NewEndpoint(k, 0, "ep", 1, 0, 60)
	var done []float64
	for i := 0; i < 3; i++ {
		ep.Invoke("f", 1.0, func() { done = append(done, k.Now()) })
	}
	k.Run()
	want := []float64{1, 2, 3}
	for i := range want {
		if math.Abs(done[i]-want[i]) > 1e-9 {
			t.Fatalf("done = %v", done)
		}
	}
	if ep.Backlog() != 0 {
		t.Fatal("backlog nonzero after drain")
	}
}

func TestWarmPoolsPerFunction(t *testing.T) {
	k := sim.NewKernel()
	ep := NewEndpoint(k, 0, "ep", 2, 0.1, 60)
	ep.Invoke("f", 0.1, nil)
	ep.Invoke("g", 0.1, nil)
	k.Run()
	if ep.ColdStarts != 2 {
		t.Fatalf("ColdStarts = %d, want one per function", ep.ColdStarts)
	}
}

func TestNearestPolicy(t *testing.T) {
	k, net := twoSiteNet()
	near := NewEndpoint(k, 1, "near", 4, 0, 60)
	far := NewEndpoint(k, 2, "far", 4, 0, 60)
	r := NewRouter(net, Nearest{}, near, far)
	var lat float64
	r.Invoke(0, "f", 100, 100, 0.01, func(l float64) { lat = l })
	k.Run()
	if near.Invocations != 1 || far.Invocations != 0 {
		t.Fatal("nearest did not pick the near endpoint")
	}
	// 2x 1ms + 10ms service (+ tiny transmission).
	if lat < 0.012 || lat > 0.013 {
		t.Fatalf("latency = %v, want ~12ms", lat)
	}
}

func TestLeastLoadedAvoidsBacklog(t *testing.T) {
	k, net := twoSiteNet()
	near := NewEndpoint(k, 1, "near", 1, 0, 60)
	far := NewEndpoint(k, 2, "far", 1, 0, 60)
	r := NewRouter(net, LeastLoaded{}, near, far)
	// Saturate "near" first (it sorts first with equal load at 0).
	for i := 0; i < 4; i++ {
		r.Invoke(0, "f", 10, 10, 1.0, nil)
	}
	k.Run()
	if near.Invocations == 4 || far.Invocations == 0 {
		t.Fatalf("least-loaded never spread: near=%d far=%d", near.Invocations, far.Invocations)
	}
}

func TestTwoChoicesSpreads(t *testing.T) {
	k := sim.NewKernel()
	const n = 8
	net := netsim.New(k, n+1)
	eps := make([]*Endpoint, n)
	for i := 0; i < n; i++ {
		net.AddDuplexLink(0, i+1, 0.001, 1e9)
		eps[i] = NewEndpoint(k, i+1, "ep", 2, 0, 60)
	}
	r := NewRouter(net, TwoChoices{RNG: workload.NewRNG(1)}, eps...)
	for i := 0; i < 200; i++ {
		r.Invoke(0, "f", 10, 10, 0.5, nil)
	}
	k.Run()
	// No endpoint should be starved or dominate wildly.
	for i, ep := range eps {
		if ep.Invocations == 0 {
			t.Fatalf("endpoint %d starved", i)
		}
	}
}

func TestNearestSpillFallsBack(t *testing.T) {
	k, net := twoSiteNet()
	near := NewEndpoint(k, 1, "near", 1, 0, 60)
	far := NewEndpoint(k, 2, "far", 8, 0, 60)
	r := NewRouter(net, NearestUnderLoad{Threshold: 2}, near, far)
	for i := 0; i < 10; i++ {
		r.Invoke(0, "f", 10, 10, 1.0, nil)
	}
	k.Run()
	if far.Invocations == 0 {
		t.Fatal("spill policy never spilled")
	}
	if near.Invocations == 0 {
		t.Fatal("spill policy never used the near endpoint")
	}
}

func TestPanics(t *testing.T) {
	k := sim.NewKernel()
	cases := []struct {
		name string
		fn   func()
	}{
		{"zero capacity", func() { NewEndpoint(k, 0, "x", 0, 0, 0) }},
		{"negative cold", func() { NewEndpoint(k, 0, "x", 1, -1, 0) }},
		{"negative service", func() {
			NewEndpoint(k, 0, "x", 1, 0, 0).Invoke("f", -1, nil)
		}},
		{"empty router", func() { NewRouter(netsim.New(k, 1), Nearest{}) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", tc.name)
				}
			}()
			tc.fn()
		})
	}
}

func TestPolicyNames(t *testing.T) {
	for _, p := range []Policy{Nearest{}, LeastLoaded{}, TwoChoices{}, NearestUnderLoad{}} {
		if p.Name() == "" {
			t.Fatal("empty policy name")
		}
	}
}
