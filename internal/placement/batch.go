package placement

import (
	"math"

	"continuum/internal/task"
)

// BatchSchedule maps a bag of independent tasks onto nodes: Assign[i] is
// the node index for tasks[i].
type BatchSchedule struct {
	Algorithm   string
	Assign      []int
	EstMakespan float64
}

// batchState tracks per-node-core availability during batch scheduling,
// plus the movement cost of each task's inputs from the bag's origin.
type batchState struct {
	env    *Env
	origin int
	slots  [][]float64
}

func newBatchState(env *Env, origin int) *batchState {
	bs := &batchState{env: env, origin: origin, slots: make([][]float64, len(env.Nodes))}
	for i, n := range env.Nodes {
		bs.slots[i] = make([]float64, n.Spec.Cores)
	}
	return bs
}

// completion returns the earliest completion time of t on node ni and the
// core index used.
func (bs *batchState) completion(t *task.Task, ni int) (float64, int) {
	n := bs.env.Nodes[ni]
	move := 0.0
	if ib := inputBytes(t); ib > 0 {
		move = bs.env.Net.MessageTime(bs.origin, n.ID, ib)
	}
	core, free := 0, bs.slots[ni][0]
	for c, f := range bs.slots[ni] {
		if f < free {
			core, free = c, f
		}
	}
	start := math.Max(free, move)
	return start + n.ExecTime(t.ScalarWork, t.TensorWork, t.Accel), core
}

// place books the slot.
func (bs *batchState) place(ni, core int, finish float64) {
	bs.slots[ni][core] = finish
}

// bestNode returns the node minimizing completion for t, with the time
// and core.
func (bs *batchState) bestNode(t *task.Task) (ni int, finish float64, core int) {
	finish = math.Inf(1)
	for cand := range bs.env.Nodes {
		f, c := bs.completion(t, cand)
		if f < finish {
			ni, finish, core = cand, f, c
		}
	}
	return ni, finish, core
}

// secondBest returns the second-lowest completion time for t (used by
// Sufferage); +Inf with fewer than two nodes.
func (bs *batchState) secondBest(t *task.Task) float64 {
	best, second := math.Inf(1), math.Inf(1)
	for cand := range bs.env.Nodes {
		f, _ := bs.completion(t, cand)
		if f < best {
			second = best
			best = f
		} else if f < second {
			second = f
		}
	}
	return second
}

// batchHeuristic runs the generic select-assign loop: at each step, pick
// selects one unassigned task index given its current best completion
// times; the task is assigned to its best node.
func batchHeuristic(env *Env, origin int, tasks []*task.Task, algorithm string,
	pick func(best []float64, sufferage []float64, unassigned []int) int) BatchSchedule {
	bs := newBatchState(env, origin)
	assign := make([]int, len(tasks))
	for i := range assign {
		assign[i] = -1
	}
	unassigned := make([]int, len(tasks))
	for i := range unassigned {
		unassigned[i] = i
	}
	makespan := 0.0
	for len(unassigned) > 0 {
		best := make([]float64, len(unassigned))
		suff := make([]float64, len(unassigned))
		for j, ti := range unassigned {
			_, f, _ := bs.bestNode(tasks[ti])
			best[j] = f
			suff[j] = bs.secondBest(tasks[ti]) - f
		}
		j := pick(best, suff, unassigned)
		ti := unassigned[j]
		ni, finish, core := bs.bestNode(tasks[ti])
		assign[ti] = ni
		bs.place(ni, core, finish)
		if finish > makespan {
			makespan = finish
		}
		unassigned = append(unassigned[:j], unassigned[j+1:]...)
	}
	return BatchSchedule{Algorithm: algorithm, Assign: assign, EstMakespan: makespan}
}

// MinMin repeatedly assigns the task with the *smallest* best-completion
// time: short tasks pack first, machines stay balanced early. The classic
// bag-of-tasks heuristic (Ibarra-Kim family).
func MinMin(env *Env, origin int, tasks []*task.Task) BatchSchedule {
	return batchHeuristic(env, origin, tasks, "min-min",
		func(best, _ []float64, _ []int) int {
			j := 0
			for i := 1; i < len(best); i++ {
				if best[i] < best[j] {
					j = i
				}
			}
			return j
		})
}

// MaxMin repeatedly assigns the task with the *largest* best-completion
// time: long tasks claim fast machines first, avoiding a straggler tail.
func MaxMin(env *Env, origin int, tasks []*task.Task) BatchSchedule {
	return batchHeuristic(env, origin, tasks, "max-min",
		func(best, _ []float64, _ []int) int {
			j := 0
			for i := 1; i < len(best); i++ {
				if best[i] > best[j] {
					j = i
				}
			}
			return j
		})
}

// Sufferage assigns the task that would *suffer* most from losing its
// best machine (largest gap to its second-best completion) — the
// Maheswaran et al. heuristic that often beats both Min-Min and Max-Min
// on heterogeneous resources.
func Sufferage(env *Env, origin int, tasks []*task.Task) BatchSchedule {
	return batchHeuristic(env, origin, tasks, "sufferage",
		func(_, suff []float64, _ []int) int {
			j := 0
			for i := 1; i < len(suff); i++ {
				if suff[i] > suff[j] {
					j = i
				}
			}
			return j
		})
}

// BatchRandom assigns uniformly at random — the bag-of-tasks floor.
// Provided for experiment baselines; takes the completion model into
// account only for the makespan estimate.
func BatchRandom(env *Env, origin int, tasks []*task.Task, intn func(int) int) BatchSchedule {
	bs := newBatchState(env, origin)
	assign := make([]int, len(tasks))
	makespan := 0.0
	for i, t := range tasks {
		ni := intn(len(env.Nodes))
		f, core := bs.completion(t, ni)
		assign[i] = ni
		bs.place(ni, core, f)
		if f > makespan {
			makespan = f
		}
	}
	return BatchSchedule{Algorithm: "random", Assign: assign, EstMakespan: makespan}
}
