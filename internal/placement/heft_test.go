package placement

import (
	"testing"
	"testing/quick"

	"continuum/internal/netsim"
	"continuum/internal/node"
	"continuum/internal/sim"
	"continuum/internal/task"
	"continuum/internal/workload"
)

// schedEnv builds a heterogeneous 3-node cluster for scheduling tests:
// two slow edge boxes and one fast cloud, all pairwise connected.
func schedEnv(t testing.TB) *Env {
	k := sim.NewKernel()
	net := netsim.New(k, 3)
	net.AddDuplexLink(0, 1, 0.001, 1e9)
	net.AddDuplexLink(0, 2, 0.030, 1e8)
	net.AddDuplexLink(1, 2, 0.030, 1e8)
	mk := func(id int, name string, cores int, flops float64) *node.Node {
		return node.New(k, id, node.Spec{
			Name: name, Class: node.Fog, Cores: cores, CoreFlops: flops,
			MemBytes: 1 << 30, IdleWatts: 1, ActiveWattsCore: 1,
		})
	}
	return &Env{Net: net, Nodes: []*node.Node{
		mk(0, "slow-a", 2, 1e9),
		mk(1, "slow-b", 2, 1e9),
		mk(2, "fast", 8, 8e9),
	}}
}

func genDAG(seed uint64, n int) *task.DAG {
	rng := workload.NewRNG(seed)
	return task.RandomLayered(rng, 5, n/4+1, 3, task.GenSpec{
		MeanWork: 5e9, WorkSigma: 1.0, MeanBytes: 1e6, BytesSigma: 0.8,
	})
}

// validSchedule checks structural soundness: every task assigned, finish
// times respect precedence + movement, makespan is the max finish.
func validSchedule(t *testing.T, env *Env, d *task.DAG, s Schedule) {
	t.Helper()
	if len(s.Assign) != d.N() {
		t.Fatalf("%s: %d of %d tasks assigned", s.Algorithm, len(s.Assign), d.N())
	}
	maxFinish := 0.0
	for id, ni := range s.Assign {
		if ni < 0 || ni >= len(env.Nodes) {
			t.Fatalf("%s: task %d on node %d out of range", s.Algorithm, id, ni)
		}
		if s.EstFinish[id] > maxFinish {
			maxFinish = s.EstFinish[id]
		}
	}
	if s.EstMakespan < maxFinish-1e-9 {
		t.Fatalf("%s: makespan %v < max finish %v", s.Algorithm, s.EstMakespan, maxFinish)
	}
	for _, e := range d.Edges {
		pf := s.EstFinish[e.From]
		cf := s.EstFinish[e.To]
		exec := execCost(d.Tasks[e.To], env.Nodes[s.Assign[e.To]])
		comm := commCost(env, e, env.Nodes[s.Assign[e.From]], env.Nodes[s.Assign[e.To]])
		if cf+1e-9 < pf+comm+exec {
			t.Fatalf("%s: edge %v violated: child finish %v < parent %v + comm %v + exec %v",
				s.Algorithm, e, cf, pf, comm, exec)
		}
	}
}

func TestHEFTStructure(t *testing.T) {
	env := schedEnv(t)
	d := genDAG(1, 40)
	validSchedule(t, env, d, HEFT(env, d))
}

func TestCPOPStructure(t *testing.T) {
	env := schedEnv(t)
	d := genDAG(2, 40)
	validSchedule(t, env, d, CPOP(env, d))
}

func TestBaselineStructures(t *testing.T) {
	env := schedEnv(t)
	d := genDAG(3, 40)
	validSchedule(t, env, d, ListRoundRobin(env, d))
	validSchedule(t, env, d, ListRandom(env, d, workload.NewRNG(4)))
	validSchedule(t, env, d, ListGreedy(env, d))
}

func TestHEFTBeatsRandomOnAverage(t *testing.T) {
	env := schedEnv(t)
	var heftTotal, randTotal float64
	const trials = 10
	for i := uint64(0); i < trials; i++ {
		d := genDAG(100+i, 40)
		heftTotal += HEFT(env, d).EstMakespan
		randTotal += ListRandom(env, d, workload.NewRNG(i)).EstMakespan
	}
	if heftTotal >= randTotal {
		t.Fatalf("HEFT mean makespan %v not better than random %v", heftTotal/trials, randTotal/trials)
	}
}

func TestHEFTBeatsRoundRobinOnHeterogeneous(t *testing.T) {
	env := schedEnv(t)
	var h, rr float64
	for i := uint64(0); i < 10; i++ {
		d := genDAG(200+i, 40)
		h += HEFT(env, d).EstMakespan
		rr += ListRoundRobin(env, d).EstMakespan
	}
	if h >= rr {
		t.Fatalf("HEFT %v not better than round-robin %v", h, rr)
	}
}

func TestHEFTChainUsesFastNode(t *testing.T) {
	env := schedEnv(t)
	// A pure chain has no parallelism: everything belongs on the fast
	// node (comm between stages is tiny).
	d := task.Chain(workload.NewRNG(5), 6, task.GenSpec{
		MeanWork: 1e10, WorkSigma: 0, MeanBytes: 1e3, BytesSigma: 0,
	})
	s := HEFT(env, d)
	for id, ni := range s.Assign {
		if env.Nodes[ni].Name != "fast" {
			t.Fatalf("chain task %d on %s, want fast", id, env.Nodes[ni].Name)
		}
	}
}

func TestHEFTDeterministic(t *testing.T) {
	env := schedEnv(t)
	d := genDAG(7, 30)
	a, b := HEFT(env, d), HEFT(env, d)
	if a.EstMakespan != b.EstMakespan {
		t.Fatal("HEFT not deterministic")
	}
	for id := range a.Assign {
		if a.Assign[id] != b.Assign[id] {
			t.Fatal("HEFT assignment not deterministic")
		}
	}
}

func TestScheduleMakespanLowerBound(t *testing.T) {
	// Makespan can't beat total-work / total-capacity or the critical path
	// on the fastest node.
	env := schedEnv(t)
	d := genDAG(8, 40)
	s := HEFT(env, d)
	totalFlops := d.TotalWork()
	capacity := 0.0
	fastest := 0.0
	for _, n := range env.Nodes {
		capacity += float64(n.Spec.Cores) * n.CoreFlops
		if n.CoreFlops > fastest {
			fastest = n.CoreFlops
		}
	}
	if s.EstMakespan < totalFlops/capacity-1e-9 {
		t.Fatalf("makespan %v beats work/capacity bound %v", s.EstMakespan, totalFlops/capacity)
	}
	cp, _ := d.CriticalPath(
		func(tk *task.Task) float64 { return tk.ScalarWork / fastest },
		func(task.Edge) float64 { return 0 },
	)
	if s.EstMakespan < cp-1e-9 {
		t.Fatalf("makespan %v beats critical-path bound %v", s.EstMakespan, cp)
	}
}

// Property: all schedulers produce structurally valid schedules on random
// DAGs (precedence + movement respected).
func TestPropertySchedulersValid(t *testing.T) {
	env := schedEnv(t)
	f := func(seed uint64) bool {
		d := genDAG(seed, 24)
		for _, s := range []Schedule{
			HEFT(env, d), CPOP(env, d),
			ListRoundRobin(env, d), ListGreedy(env, d),
			ListRandom(env, d, workload.NewRNG(seed)),
		} {
			if len(s.Assign) != d.N() {
				return false
			}
			for _, e := range d.Edges {
				exec := execCost(d.Tasks[e.To], env.Nodes[s.Assign[e.To]])
				comm := commCost(env, e, env.Nodes[s.Assign[e.From]], env.Nodes[s.Assign[e.To]])
				if s.EstFinish[e.To]+1e-9 < s.EstFinish[e.From]+comm+exec {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
