package placement

import (
	"testing"
	"testing/quick"

	"continuum/internal/task"
	"continuum/internal/workload"
)

func bagOfTasks(rng *workload.RNG, n int) []*task.Task {
	sizes := workload.NewLognormalSize(rng, 22.5, 1.0) // ~6e9 flops median
	tasks := make([]*task.Task, n)
	for i := range tasks {
		tasks[i] = &task.Task{Name: "t", ScalarWork: sizes.Next()}
	}
	return tasks
}

func allAssigned(t *testing.T, s BatchSchedule, n, nodes int) {
	t.Helper()
	if len(s.Assign) != n {
		t.Fatalf("%s: assigned %d of %d", s.Algorithm, len(s.Assign), n)
	}
	for i, ni := range s.Assign {
		if ni < 0 || ni >= nodes {
			t.Fatalf("%s: task %d on node %d", s.Algorithm, i, ni)
		}
	}
	if s.EstMakespan <= 0 {
		t.Fatalf("%s: makespan %v", s.Algorithm, s.EstMakespan)
	}
}

func TestBatchHeuristicsAssignEverything(t *testing.T) {
	_, env := testEnv(t)
	tasks := bagOfTasks(workload.NewRNG(1), 40)
	for _, s := range []BatchSchedule{
		MinMin(env, 0, tasks),
		MaxMin(env, 0, tasks),
		Sufferage(env, 0, tasks),
		BatchRandom(env, 0, tasks, workload.NewRNG(2).Intn),
	} {
		allAssigned(t, s, len(tasks), len(env.Nodes))
	}
}

func TestBatchHeuristicsBeatRandom(t *testing.T) {
	_, env := testEnv(t)
	rng := workload.NewRNG(3)
	var heuristic, random float64
	for trial := 0; trial < 10; trial++ {
		tasks := bagOfTasks(rng.Split(), 30)
		heuristic += MinMin(env, 0, tasks).EstMakespan
		random += BatchRandom(env, 0, tasks, rng.Split().Intn).EstMakespan
	}
	if heuristic >= random {
		t.Fatalf("min-min mean %v not below random %v", heuristic/10, random/10)
	}
}

func TestMaxMinHandlesStragglers(t *testing.T) {
	// One giant task plus many small ones: max-min places the giant on
	// the fastest node first; min-min leaves it for last (possibly on a
	// slow machine). Max-min should not lose on this adversarial bag.
	_, env := testEnv(t)
	var tasks []*task.Task
	tasks = append(tasks, &task.Task{Name: "giant", ScalarWork: 4e11})
	for i := 0; i < 20; i++ {
		tasks = append(tasks, &task.Task{Name: "small", ScalarWork: 1e9})
	}
	mm := MaxMin(env, 0, tasks)
	// The giant must land on the fastest node (cloud, index 2 in testEnv).
	if env.Nodes[mm.Assign[0]].Name != "cloud" {
		t.Fatalf("max-min placed the giant on %s", env.Nodes[mm.Assign[0]].Name)
	}
}

func TestSufferageUsesSecondBestGap(t *testing.T) {
	_, env := testEnv(t)
	tasks := bagOfTasks(workload.NewRNG(4), 30)
	s := Sufferage(env, 0, tasks)
	allAssigned(t, s, len(tasks), len(env.Nodes))
	// Sufferage should be within a small factor of min-min on benign bags.
	m := MinMin(env, 0, tasks)
	if s.EstMakespan > 2*m.EstMakespan {
		t.Fatalf("sufferage %v far above min-min %v", s.EstMakespan, m.EstMakespan)
	}
}

func TestBatchDeterminism(t *testing.T) {
	_, env := testEnv(t)
	tasks := bagOfTasks(workload.NewRNG(5), 25)
	a := MinMin(env, 0, tasks)
	b := MinMin(env, 0, tasks)
	if a.EstMakespan != b.EstMakespan {
		t.Fatal("min-min not deterministic")
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("assignment not deterministic")
		}
	}
}

func TestBatchEmptyBag(t *testing.T) {
	_, env := testEnv(t)
	s := MinMin(env, 0, nil)
	if len(s.Assign) != 0 || s.EstMakespan != 0 {
		t.Fatalf("empty bag schedule: %+v", s)
	}
}

// Property: makespan >= the largest single-task best-case execution and
// >= total work / aggregate capacity, for every heuristic.
func TestPropertyBatchMakespanBounds(t *testing.T) {
	_, env := testEnv(t)
	capacity := 0.0
	fastest := 0.0
	for _, n := range env.Nodes {
		capacity += float64(n.Spec.Cores) * n.CoreFlops
		if n.CoreFlops > fastest {
			fastest = n.CoreFlops
		}
	}
	f := func(seed uint64, nRaw uint8) bool {
		rng := workload.NewRNG(seed)
		tasks := bagOfTasks(rng, int(nRaw%30)+1)
		total, biggest := 0.0, 0.0
		for _, tk := range tasks {
			total += tk.ScalarWork
			if tk.ScalarWork > biggest {
				biggest = tk.ScalarWork
			}
		}
		lower := biggest / fastest
		if wb := total / capacity; wb > lower {
			lower = wb
		}
		for _, s := range []BatchSchedule{
			MinMin(env, 0, tasks), MaxMin(env, 0, tasks), Sufferage(env, 0, tasks),
		} {
			if s.EstMakespan < lower-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
