package placement

import "sort"

// Point is one policy's measured outcome in objective space (all three
// minimized).
type Point struct {
	Label   string
	Latency float64
	Energy  float64
	Dollars float64
}

// dominates reports whether a is at least as good as b on every objective
// and strictly better on at least one.
func dominates(a, b Point) bool {
	if a.Latency > b.Latency || a.Energy > b.Energy || a.Dollars > b.Dollars {
		return false
	}
	return a.Latency < b.Latency || a.Energy < b.Energy || a.Dollars < b.Dollars
}

// ParetoFront returns the non-dominated subset of pts, sorted by latency
// then label for stable output. Duplicate coordinates are all retained
// (none dominates the other).
func ParetoFront(pts []Point) []Point {
	var front []Point
	for i, p := range pts {
		dominated := false
		for j, q := range pts {
			if i == j {
				continue
			}
			if dominates(q, p) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, p)
		}
	}
	sort.Slice(front, func(i, j int) bool {
		if front[i].Latency != front[j].Latency {
			return front[i].Latency < front[j].Latency
		}
		return front[i].Label < front[j].Label
	})
	return front
}
