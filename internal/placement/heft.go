package placement

import (
	"math"
	"sort"

	"continuum/internal/node"
	"continuum/internal/task"
	"continuum/internal/workload"
)

// Schedule is a static workflow mapping: task -> node index (into the
// scheduler's node slice), with the scheduler's own makespan estimate.
// The DAG runner in internal/core executes schedules under the full
// network/contention model, so EstMakespan and measured makespan can
// diverge; the estimate uses the same cost model all schedulers share,
// making their estimates comparable.
type Schedule struct {
	Algorithm   string
	Assign      map[task.ID]int
	EstMakespan float64
	// EstFinish records each task's estimated finish time.
	EstFinish map[task.ID]float64
}

// commCost returns the estimated seconds to move e.Bytes from node a to
// node b: zero when colocated, otherwise latency + bytes/bottleneck.
func commCost(env *Env, e task.Edge, a, b *node.Node) float64 {
	if a.ID == b.ID {
		return 0
	}
	return env.Net.MessageTime(a.ID, b.ID, e.Bytes)
}

// execCost returns t's execution time on n.
func execCost(t *task.Task, n *node.Node) float64 {
	return n.ExecTime(t.ScalarWork, t.TensorWork, t.Accel)
}

// meanExecCost averages t's execution time over all nodes (HEFT's
// heterogeneity-averaging rank basis).
func meanExecCost(env *Env, t *task.Task) float64 {
	sum := 0.0
	for _, n := range env.Nodes {
		sum += execCost(t, n)
	}
	return sum / float64(len(env.Nodes))
}

// meanCommCost averages the movement cost of e over all ordered node
// pairs, including colocated (zero) pairs — the standard HEFT mean.
func meanCommCost(env *Env, e task.Edge) float64 {
	nn := len(env.Nodes)
	if nn < 2 {
		return 0
	}
	sum := 0.0
	for _, a := range env.Nodes {
		for _, b := range env.Nodes {
			if a.ID != b.ID {
				sum += env.Net.MessageTime(a.ID, b.ID, e.Bytes)
			}
		}
	}
	return sum / float64(nn*nn)
}

// upwardRanks computes HEFT's upward rank for every task: mean execution
// plus the maximum over successors of (mean comm + successor rank).
func upwardRanks(env *Env, d *task.DAG) []float64 {
	order, err := d.TopoOrder()
	if err != nil {
		panic(err)
	}
	rank := make([]float64, d.N())
	for i := len(order) - 1; i >= 0; i-- {
		u := order[i]
		best := 0.0
		for _, e := range d.Successors(u) {
			cand := meanCommCost(env, e) + rank[e.To]
			if cand > best {
				best = cand
			}
		}
		rank[u] = meanExecCost(env, d.Tasks[u]) + best
	}
	return rank
}

// downwardRanks computes CPOP's downward rank: longest mean-cost path from
// any root to the task (excluding the task's own execution).
func downwardRanks(env *Env, d *task.DAG) []float64 {
	order, err := d.TopoOrder()
	if err != nil {
		panic(err)
	}
	rank := make([]float64, d.N())
	for _, u := range order {
		for _, e := range d.Successors(u) {
			cand := rank[u] + meanExecCost(env, d.Tasks[u]) + meanCommCost(env, e)
			if cand > rank[e.To] {
				rank[e.To] = cand
			}
		}
	}
	return rank
}

// coreState tracks per-node core availability during list scheduling.
// Each node contributes Spec.Cores slots; a task occupies the earliest
// free slot (no insertion — slots only move forward).
type coreState struct {
	slots [][]float64 // per node: core free times
}

func newCoreState(env *Env) *coreState {
	cs := &coreState{slots: make([][]float64, len(env.Nodes))}
	for i, n := range env.Nodes {
		cs.slots[i] = make([]float64, n.Spec.Cores)
	}
	return cs
}

// earliest returns the index and free time of node ni's earliest core.
func (cs *coreState) earliest(ni int) (int, float64) {
	best, bestT := 0, cs.slots[ni][0]
	for c, t := range cs.slots[ni] {
		if t < bestT {
			best, bestT = c, t
		}
	}
	return best, bestT
}

// place occupies node ni's given core until finish.
func (cs *coreState) place(ni, core int, finish float64) {
	cs.slots[ni][core] = finish
}

// eft computes the earliest finish time of task u on node ni given
// predecessor placements, and the core used.
func eft(env *Env, d *task.DAG, u task.ID, ni int,
	assign map[task.ID]int, finish map[task.ID]float64, cs *coreState) (float64, int) {
	n := env.Nodes[ni]
	ready := 0.0
	for _, e := range d.Predecessors(u) {
		p := e.From
		arr := finish[p] + commCost(env, e, env.Nodes[assign[p]], n)
		if arr > ready {
			ready = arr
		}
	}
	core, free := cs.earliest(ni)
	start := math.Max(ready, free)
	return start + execCost(d.Tasks[u], n), core
}

// listSchedule runs list scheduling over the given task priority order,
// assigning each task to the node chosen by pick (which defaults to
// min-EFT across all nodes when nil).
func listSchedule(env *Env, d *task.DAG, order []task.ID, algorithm string,
	pick func(u task.ID, bestEFT func(ni int) (float64, int)) int) Schedule {
	assign := make(map[task.ID]int, d.N())
	finish := make(map[task.ID]float64, d.N())
	cs := newCoreState(env)
	makespan := 0.0
	for _, u := range order {
		evalNode := func(ni int) (float64, int) {
			return eft(env, d, u, ni, assign, finish, cs)
		}
		var ni int
		if pick != nil {
			ni = pick(u, evalNode)
		} else {
			bestF := math.Inf(1)
			for cand := range env.Nodes {
				f, _ := evalNode(cand)
				if f < bestF {
					bestF, ni = f, cand
				}
			}
		}
		f, core := evalNode(ni)
		assign[u] = ni
		finish[u] = f
		cs.place(ni, core, f)
		if f > makespan {
			makespan = f
		}
	}
	return Schedule{Algorithm: algorithm, Assign: assign, EstMakespan: makespan, EstFinish: finish}
}

// rankOrder returns task ids sorted by descending rank, ties broken by ID.
func rankOrder(rank []float64) []task.ID {
	ids := make([]task.ID, len(rank))
	for i := range ids {
		ids[i] = task.ID(i)
	}
	sort.SliceStable(ids, func(a, b int) bool {
		if rank[ids[a]] != rank[ids[b]] {
			return rank[ids[a]] > rank[ids[b]]
		}
		return ids[a] < ids[b]
	})
	return ids
}

// HEFT is Heterogeneous Earliest Finish Time (Topcuoglu et al.): order by
// upward rank, greedily assign each task to the node minimizing its
// earliest finish time. The reference heterogeneous DAG scheduler the F2
// experiment compares against.
//
// Note: upward-rank order is a topological order, so predecessors are
// always assigned before successors.
func HEFT(env *Env, d *task.DAG) Schedule {
	ranks := upwardRanks(env, d)
	return listSchedule(env, d, rankOrder(ranks), "heft", nil)
}

// CPOP is Critical Path on a Processor (Topcuoglu et al.): tasks on the
// critical path (max upward+downward rank) are pinned to the single node
// that minimizes the path's total execution; the rest schedule by EFT.
func CPOP(env *Env, d *task.DAG) Schedule {
	up := upwardRanks(env, d)
	down := downwardRanks(env, d)
	prio := make([]float64, d.N())
	cpLen := 0.0
	for i := range prio {
		prio[i] = up[i] + down[i]
		if prio[i] > cpLen {
			cpLen = prio[i]
		}
	}
	onCP := make(map[task.ID]bool)
	cpExec := make([]float64, len(env.Nodes))
	for i := range prio {
		if math.Abs(prio[i]-cpLen) < 1e-9*math.Max(1, cpLen) {
			onCP[task.ID(i)] = true
			for ni, n := range env.Nodes {
				cpExec[ni] += execCost(d.Tasks[i], n)
			}
		}
	}
	cpNode := 0
	for ni := 1; ni < len(env.Nodes); ni++ {
		if cpExec[ni] < cpExec[cpNode] {
			cpNode = ni
		}
	}
	// Priority queue order: by descending upward rank (a valid topological
	// order), with CP tasks pinned.
	order := rankOrder(up)
	return listSchedule(env, d, order, "cpop", func(u task.ID, evalNode func(int) (float64, int)) int {
		if onCP[u] {
			return cpNode
		}
		best, bestF := 0, math.Inf(1)
		for ni := range env.Nodes {
			f, _ := evalNode(ni)
			if f < bestF {
				best, bestF = ni, f
			}
		}
		return best
	})
}

// ListRoundRobin schedules tasks in topological order, cycling nodes —
// the load-spreading-without-awareness baseline.
func ListRoundRobin(env *Env, d *task.DAG) Schedule {
	order, err := d.TopoOrder()
	if err != nil {
		panic(err)
	}
	i := 0
	return listSchedule(env, d, order, "round-robin", func(task.ID, func(int) (float64, int)) int {
		ni := i % len(env.Nodes)
		i++
		return ni
	})
}

// ListRandom schedules tasks in topological order onto uniform random
// nodes — the floor.
func ListRandom(env *Env, d *task.DAG, rng *workload.RNG) Schedule {
	order, err := d.TopoOrder()
	if err != nil {
		panic(err)
	}
	return listSchedule(env, d, order, "random", func(task.ID, func(int) (float64, int)) int {
		return rng.Intn(len(env.Nodes))
	})
}

// ListGreedy schedules in topological order (not rank order) with min-EFT
// node choice: HEFT without the ranking, isolating the value of upward
// ranks in the ablation benchmark.
func ListGreedy(env *Env, d *task.DAG) Schedule {
	order, err := d.TopoOrder()
	if err != nil {
		panic(err)
	}
	s := listSchedule(env, d, order, "greedy-eft", nil)
	return s
}
