package placement

import (
	"testing"

	"continuum/internal/data"
	"continuum/internal/netsim"
	"continuum/internal/node"
	"continuum/internal/sim"
	"continuum/internal/task"
	"continuum/internal/workload"
)

// testEnv builds a 3-node continuum on a line: edge(0) -- fog(1) -- cloud(2).
// The edge is slow but close; the cloud is fast but 40ms away.
func testEnv(t *testing.T) (*sim.Kernel, *Env) {
	t.Helper()
	k := sim.NewKernel()
	net := netsim.New(k, 3)
	net.AddDuplexLink(0, 1, 0.002, 1e8) // edge-fog: 2ms
	net.AddDuplexLink(1, 2, 0.040, 1e9) // fog-cloud: 40ms

	edge := node.New(k, 0, node.Spec{
		Name: "edge", Class: node.Gateway,
		Cores: 2, CoreFlops: 1e9, MemBytes: 1 << 30,
		IdleWatts: 1, ActiveWattsCore: 2,
	})
	fog := node.New(k, 1, node.Spec{
		Name: "fog", Class: node.Fog,
		Cores: 8, CoreFlops: 3e9, MemBytes: 16 << 30,
		Accel:     node.Accelerator{Kind: node.GPU, Count: 1, Flops: 1e12, Watts: 70},
		IdleWatts: 30, ActiveWattsCore: 6,
	})
	cloud := node.New(k, 2, node.Spec{
		Name: "cloud", Class: node.Cloud,
		Cores: 32, CoreFlops: 4e9, MemBytes: 256 << 30,
		Accel:     node.Accelerator{Kind: node.GPU, Count: 4, Flops: 1e13, Watts: 250},
		IdleWatts: 200, ActiveWattsCore: 10,
		DollarPerHour: 10, EgressPerByte: 1e-10,
	})
	return k, &Env{Net: net, Nodes: []*node.Node{edge, fog, cloud}}
}

func smallTask() *task.Task {
	return &task.Task{Name: "t", ScalarWork: 1e8, OutputBytes: 1e3}
}

func bigTask() *task.Task {
	return &task.Task{Name: "big", ScalarWork: 1e11, OutputBytes: 1e6}
}

func TestEdgeOnlySticksToEdge(t *testing.T) {
	_, env := testEnv(t)
	n := EdgeOnly{}.Select(env, Request{Task: smallTask(), Origin: 0})
	if n.Class > node.Fog {
		t.Fatalf("EdgeOnly picked %s", n.Name)
	}
}

func TestCloudOnlySticksToCloud(t *testing.T) {
	_, env := testEnv(t)
	n := CloudOnly{}.Select(env, Request{Task: smallTask(), Origin: 0})
	if n.Class < node.Cloud {
		t.Fatalf("CloudOnly picked %s", n.Name)
	}
}

func TestGreedyLatencySmallTaskStaysLocal(t *testing.T) {
	_, env := testEnv(t)
	// Edge: 0.1s exec. Fog: 2ms + 0.033s. Cloud: 42ms + 0.025s = 0.067s.
	// The nearby tiers beat the WAN round trip; fog is optimal here.
	n := GreedyLatency{}.Select(env, Request{Task: smallTask(), Origin: 0})
	if n.Class > node.Fog {
		t.Fatalf("small task placed on %s, want an edge-tier node", n.Name)
	}
}

func TestGreedyLatencyBigTaskGoesInward(t *testing.T) {
	_, env := testEnv(t)
	// 100s on edge vs 25s on cloud + 80ms: cloud wins.
	n := GreedyLatency{}.Select(env, Request{Task: bigTask(), Origin: 0})
	if n.Name == "edge" {
		t.Fatalf("big task stuck on edge")
	}
}

func TestGreedyLatencyAccountsForLoad(t *testing.T) {
	k, env := testEnv(t)
	// Saturate the edge with long tasks; the next small task should go
	// elsewhere.
	for i := 0; i < 8; i++ {
		env.Nodes[0].Execute(1e10, 0, node.NoAccel, nil)
	}
	k.RunUntil(0.001)
	n := GreedyLatency{}.Select(env, Request{Task: smallTask(), Origin: 0})
	if n.Name == "edge" {
		t.Fatal("policy ignored queue backlog")
	}
}

func TestRandomCoversNodes(t *testing.T) {
	_, env := testEnv(t)
	r := Random{RNG: workload.NewRNG(1)}
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Select(env, Request{Task: smallTask(), Origin: 0}).Name] = true
	}
	if len(seen) != 3 {
		t.Fatalf("random policy covered %d nodes", len(seen))
	}
}

func TestRoundRobinCycles(t *testing.T) {
	_, env := testEnv(t)
	rr := &RoundRobin{}
	var names []string
	for i := 0; i < 6; i++ {
		names = append(names, rr.Select(env, Request{Task: smallTask(), Origin: 0}).Name)
	}
	if names[0] != names[3] || names[1] != names[4] || names[0] == names[1] {
		t.Fatalf("round robin order: %v", names)
	}
}

func TestGreedyEnergyPrefersLowPower(t *testing.T) {
	_, env := testEnv(t)
	// Scalar task: edge burns 2W for 0.1s = 0.2J; cloud burns 10W for
	// 0.025s = 0.25J; edge wins on energy.
	n := GreedyEnergy{}.Select(env, Request{Task: smallTask(), Origin: 0})
	if n.Name != "edge" {
		t.Fatalf("GreedyEnergy picked %s", n.Name)
	}
}

func TestGreedyCostAvoidsBilledNodes(t *testing.T) {
	_, env := testEnv(t)
	n := GreedyCost{}.Select(env, Request{Task: bigTask(), Origin: 0})
	if n.DollarPerHour > 0 {
		t.Fatalf("GreedyCost picked billed node %s", n.Name)
	}
}

func TestDataAwareFollowsReplicas(t *testing.T) {
	k, env := testEnv(t)
	fab := data.NewFabric(env.Net, workload.NewRNG(2))
	fab.AddStore(0, 1e9, data.LRU)
	fab.AddStore(1, 1e9, data.LRU)
	fab.AddStore(2, 1e9, data.LRU)
	big := data.Dataset{Name: "big-input", Bytes: 5e9} // 5GB pinned at cloud
	fab.Pin(big, 2)
	env.Fabric = fab
	_ = k
	tk := &task.Task{
		Name: "analyze", ScalarWork: 1e9,
		Inputs: []task.DataRef{{Name: "big-input", Bytes: big.Bytes}},
	}
	n := DataAware{}.Select(env, Request{Task: tk, Origin: 0})
	if n.Name != "cloud" {
		t.Fatalf("DataAware placed 5GB-input task on %s, want cloud (data home)", n.Name)
	}
	// GreedyLatency (replica-blind) ships from origin 0 and decides
	// differently — it believes the data must cross from the edge.
	g := GreedyLatency{}.Select(env, Request{Task: tk, Origin: 0})
	if g.Name == "cloud" {
		t.Skip("replica-blind baseline coincidentally matched; acceptable")
	}
}

func TestDataAwareUnknownDatasetFallsBack(t *testing.T) {
	_, env := testEnv(t)
	fab := data.NewFabric(env.Net, workload.NewRNG(3))
	fab.AddStore(0, 1e9, data.LRU)
	env.Fabric = fab
	tk := &task.Task{
		Name: "t", ScalarWork: 1e8,
		Inputs: []task.DataRef{{Name: "nowhere", Bytes: 1e3}},
	}
	// Must not panic; falls back to origin shipping estimates.
	n := DataAware{}.Select(env, Request{Task: tk, Origin: 0})
	if n == nil {
		t.Fatal("nil node")
	}
}

func TestMultiObjectiveExtremesMatchSingle(t *testing.T) {
	_, env := testEnv(t)
	req := Request{Task: bigTask(), Origin: 0}
	latOnly := MultiObjective{W: Weights{Latency: 1}}.Select(env, req)
	pureLat := GreedyLatency{}.Select(env, req)
	if latOnly.Name != pureLat.Name {
		t.Fatalf("latency-only multi = %s, greedy = %s", latOnly.Name, pureLat.Name)
	}
	engOnly := MultiObjective{W: Weights{Energy: 1}}.Select(env, req)
	pureEng := GreedyEnergy{}.Select(env, req)
	if engOnly.Name != pureEng.Name {
		t.Fatalf("energy-only multi = %s, greedy = %s", engOnly.Name, pureEng.Name)
	}
}

func TestTensorTaskPrefersAccelNode(t *testing.T) {
	_, env := testEnv(t)
	tk := &task.Task{Name: "train", TensorWork: 1e12, Accel: node.GPU}
	n := GreedyLatency{}.Select(env, Request{Task: tk, Origin: 0})
	if !n.HasAccel(node.GPU) {
		t.Fatalf("tensor task placed on accel-free node %s", n.Name)
	}
}

func TestEstimateLatencyComponents(t *testing.T) {
	_, env := testEnv(t)
	req := Request{Task: smallTask(), Origin: 0}
	lat := EstimateLatency(env, req, env.Nodes[0])
	// Local: no movement beyond 0, exec = 1e8/1e9 = 0.1s.
	if lat < 0.1 || lat > 0.11 {
		t.Fatalf("local estimate = %v, want ~0.1", lat)
	}
	latCloud := EstimateLatency(env, req, env.Nodes[2])
	// Cloud: 42ms latency + exec 0.025.
	if latCloud < 0.06 || latCloud > 0.08 {
		t.Fatalf("cloud estimate = %v, want ~0.067", latCloud)
	}
}

func TestArgminPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("argmin on empty did not panic")
		}
	}()
	argmin(nil, func(*node.Node) float64 { return 0 })
}

func TestFilterClassFallsBack(t *testing.T) {
	_, env := testEnv(t)
	// No HPC nodes: CloudOnly degrades to cloud; EdgeOnly with a sensor-
	// only band falls back to all nodes rather than panicking.
	got := filterClass(env.Nodes, node.Sensor, node.Sensor)
	if len(got) != len(env.Nodes) {
		t.Fatalf("empty class filter returned %d nodes", len(got))
	}
}

func TestParetoFront(t *testing.T) {
	pts := []Point{
		{Label: "a", Latency: 1, Energy: 10, Dollars: 5},
		{Label: "b", Latency: 2, Energy: 5, Dollars: 5},
		{Label: "c", Latency: 3, Energy: 20, Dollars: 10}, // dominated by a&b? a: lat1<=3,e10<=20,d5<=10 strict -> dominated
		{Label: "d", Latency: 0.5, Energy: 50, Dollars: 1},
	}
	front := ParetoFront(pts)
	names := map[string]bool{}
	for _, p := range front {
		names[p.Label] = true
	}
	if !names["a"] || !names["b"] || !names["d"] || names["c"] {
		t.Fatalf("front = %v", front)
	}
	// Sorted by latency.
	for i := 1; i < len(front); i++ {
		if front[i].Latency < front[i-1].Latency {
			t.Fatal("front not sorted")
		}
	}
}

func TestParetoFrontDuplicates(t *testing.T) {
	pts := []Point{
		{Label: "x", Latency: 1, Energy: 1, Dollars: 1},
		{Label: "y", Latency: 1, Energy: 1, Dollars: 1},
	}
	front := ParetoFront(pts)
	if len(front) != 2 {
		t.Fatalf("identical points should both survive, got %v", front)
	}
}
