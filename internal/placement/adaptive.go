package placement

import (
	"math"

	"continuum/internal/node"
)

// FeedbackPolicy is a Policy that learns from observed outcomes. The
// stream runners call Observe with the measured end-to-end latency after
// each completion, closing the loop.
type FeedbackPolicy interface {
	Policy
	// Observe records a measured latency for a job that ran on nodeID.
	Observe(nodeID int, latency float64)
}

// Adaptive is a UCB1 bandit over candidate nodes: it places by *measured*
// latency rather than the analytic cost model, so it keeps working when
// the model is misinformed — unmodeled co-tenants, mis-advertised clock
// speeds, or hidden congestion. The price is exploration traffic on
// inferior nodes.
//
// Arms are node IDs; the objective is minimized mean latency with the
// standard sqrt(2 ln N / n) confidence radius subtracted (optimism for a
// minimization problem).
type Adaptive struct {
	// Explore scales the confidence radius. Zero means pure greedy
	// exploitation after one sample per arm; the UCB1 constant is
	// sqrt(2) ≈ 1.41. Because radii are in seconds, Explore also sets
	// the latency scale the learner considers "worth exploring".
	Explore float64

	sum   map[int]float64
	count map[int]int64
	total int64
}

// NewAdaptive returns a UCB1 policy with the given exploration scale.
func NewAdaptive(explore float64) *Adaptive {
	return &Adaptive{
		Explore: explore,
		sum:     make(map[int]float64),
		count:   make(map[int]int64),
	}
}

// Name implements Policy.
func (a *Adaptive) Name() string { return "adaptive-ucb" }

// Observe implements FeedbackPolicy.
func (a *Adaptive) Observe(nodeID int, latency float64) {
	a.sum[nodeID] += latency
	a.count[nodeID]++
	a.total++
}

// Samples returns how many observations the arm for nodeID has.
func (a *Adaptive) Samples(nodeID int) int64 { return a.count[nodeID] }

// MeanLatency returns the arm's observed mean (0 if unsampled).
func (a *Adaptive) MeanLatency(nodeID int) float64 {
	if a.count[nodeID] == 0 {
		return 0
	}
	return a.sum[nodeID] / float64(a.count[nodeID])
}

// Select implements Policy: unsampled arms first (in node order for
// determinism), then lowest lower-confidence bound.
func (a *Adaptive) Select(env *Env, req Request) *node.Node {
	for _, n := range env.Nodes {
		if a.count[n.ID] == 0 {
			return n
		}
	}
	return argmin(env.Nodes, func(n *node.Node) float64 {
		mean := a.sum[n.ID] / float64(a.count[n.ID])
		radius := a.Explore * math.Sqrt(2*math.Log(float64(a.total))/float64(a.count[n.ID]))
		return mean - radius
	})
}
