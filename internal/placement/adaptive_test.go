package placement

import (
	"math"
	"testing"
)

func TestAdaptiveExploresAllArmsFirst(t *testing.T) {
	_, env := testEnv(t)
	a := NewAdaptive(1.41)
	req := Request{Task: smallTask(), Origin: 0}
	seen := map[int]bool{}
	for i := 0; i < len(env.Nodes); i++ {
		n := a.Select(env, req)
		if seen[n.ID] {
			t.Fatalf("arm %d selected twice before all arms sampled", n.ID)
		}
		seen[n.ID] = true
		a.Observe(n.ID, 1.0)
	}
	if len(seen) != len(env.Nodes) {
		t.Fatalf("explored %d of %d arms", len(seen), len(env.Nodes))
	}
}

func TestAdaptiveConvergesToBestArm(t *testing.T) {
	_, env := testEnv(t)
	a := NewAdaptive(0.05) // modest exploration at the ~0.1s latency scale
	req := Request{Task: smallTask(), Origin: 0}
	// Simulated truth: node 1 is fastest, regardless of what the cost
	// model believes.
	truth := map[int]float64{0: 0.30, 1: 0.05, 2: 0.20}
	picks := map[int]int{}
	for i := 0; i < 500; i++ {
		n := a.Select(env, req)
		picks[n.ID]++
		a.Observe(n.ID, truth[n.ID])
	}
	if picks[1] < 400 {
		t.Fatalf("best arm picked %d/500 times; picks=%v", picks[1], picks)
	}
	if a.Samples(1) != int64(picks[1]) {
		t.Fatal("Samples bookkeeping wrong")
	}
	if got := a.MeanLatency(1); math.Abs(got-truth[1]) > 1e-9 {
		t.Fatalf("MeanLatency = %v, want %v", got, truth[1])
	}
}

func TestAdaptiveKeepsExploringWithLargeBonus(t *testing.T) {
	_, env := testEnv(t)
	a := NewAdaptive(10) // exploration bonus dwarfs latency differences
	req := Request{Task: smallTask(), Origin: 0}
	truth := map[int]float64{0: 0.30, 1: 0.05, 2: 0.20}
	picks := map[int]int{}
	for i := 0; i < 300; i++ {
		n := a.Select(env, req)
		picks[n.ID]++
		a.Observe(n.ID, truth[n.ID])
	}
	for id, c := range picks {
		if c < 50 {
			t.Fatalf("arm %d starved (%d picks) despite huge exploration", id, c)
		}
	}
}

func TestAdaptiveName(t *testing.T) {
	if NewAdaptive(1).Name() != "adaptive-ucb" {
		t.Fatal("name wrong")
	}
}

func TestAdaptiveUnsampledMeanIsZero(t *testing.T) {
	a := NewAdaptive(1)
	if a.MeanLatency(42) != 0 || a.Samples(42) != 0 {
		t.Fatal("unsampled arm not zero")
	}
}

func TestAdaptiveIsAPolicy(t *testing.T) {
	var _ Policy = NewAdaptive(1)
	var _ FeedbackPolicy = NewAdaptive(1)
}
