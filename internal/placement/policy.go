// Package placement answers the keynote's first question — "where should I
// compute?" — over a modeled continuum.
//
// Two families live here:
//
//   - Online policies (Policy): pick a node for each arriving task, given
//     the network, current node occupancy, and (optionally) data replica
//     locations. These drive the streaming/IoT experiments.
//   - Static DAG schedulers (HEFT, CPOP, and list baselines in heft.go):
//     map a whole workflow to nodes before execution. These drive the
//     science-workflow experiments.
//
// All estimators share one cost model: completion = input movement +
// queueing + execution; energy = active watts × execution time; dollars =
// node $/hour × execution time + egress.
package placement

import (
	"fmt"
	"math"

	"continuum/internal/data"
	"continuum/internal/netsim"
	"continuum/internal/node"
	"continuum/internal/task"
	"continuum/internal/workload"
)

// Env is the continuum view a policy sees when deciding.
type Env struct {
	Net   *netsim.Network
	Nodes []*node.Node
	// Fabric is optional; when present, data-aware policies use replica
	// locations for staging estimates.
	Fabric *data.Fabric
}

// Request is one task to place, originating (its input data, its caller)
// at a topology vertex.
type Request struct {
	Task   *task.Task
	Origin int
}

// Policy selects a node for each request. Implementations must be
// deterministic given their construction parameters (randomized policies
// take an explicit RNG).
type Policy interface {
	Name() string
	Select(env *Env, req Request) *node.Node
}

// inputBytes sums the external input data the request must see.
func inputBytes(t *task.Task) float64 {
	sum := 0.0
	for _, in := range t.Inputs {
		sum += in.Bytes
	}
	return sum
}

// EstimateLatency returns the estimated completion time for req on n:
// input movement (from the fabric's nearest replicas when available,
// otherwise from the request origin) + queue wait + execution.
func EstimateLatency(env *Env, req Request, n *node.Node) float64 {
	move := 0.0
	if env.Fabric != nil && len(req.Task.Inputs) > 0 {
		for _, in := range req.Task.Inputs {
			st := env.Fabric.StageTime(data.Dataset{Name: in.Name, Bytes: in.Bytes}, n.ID)
			if math.IsInf(st, 1) {
				// Replica unknown to the fabric: fall back to shipping
				// from the origin.
				st = env.Net.MessageTime(req.Origin, n.ID, in.Bytes)
			}
			move += st
		}
	} else if ib := inputBytes(req.Task); ib > 0 {
		move = env.Net.MessageTime(req.Origin, n.ID, ib)
	} else {
		// Even an empty invocation pays one-way control latency.
		move = env.Net.Latency(req.Origin, n.ID)
	}
	exec := n.ExecTime(req.Task.ScalarWork, req.Task.TensorWork, req.Task.Accel)
	// Queue estimate: outstanding work ahead of us, spread over cores,
	// approximated with this task's own execution time as the mean.
	backlog := float64(n.Cores.InUse()) + float64(n.Cores.QueueLen())
	wait := backlog * exec / float64(n.Spec.Cores)
	return move + wait + exec
}

// EstimateEnergy returns the marginal joules req would consume on n:
// active-core draw (plus accelerator draw when used) over the execution.
func EstimateEnergy(env *Env, req Request, n *node.Node) float64 {
	exec := n.ExecTime(req.Task.ScalarWork, req.Task.TensorWork, req.Task.Accel)
	w := n.ActiveWattsCore
	if req.Task.TensorWork > 0 && n.HasAccel(req.Task.Accel) {
		w += n.Accel.Watts
	}
	return w * exec
}

// EstimateDollars returns the marginal dollar cost of req on n, including
// egress for shipping the result back to the origin.
func EstimateDollars(env *Env, req Request, n *node.Node) float64 {
	exec := n.ExecTime(req.Task.ScalarWork, req.Task.TensorWork, req.Task.Accel)
	c := n.DollarCost(exec)
	c += n.EgressPerByte * req.Task.OutputBytes
	return c
}

// argmin returns the node minimizing score, breaking ties on lower node ID
// for determinism. It panics if nodes is empty.
func argmin(nodes []*node.Node, score func(*node.Node) float64) *node.Node {
	if len(nodes) == 0 {
		panic("placement: no candidate nodes")
	}
	best := nodes[0]
	bestScore := score(best)
	for _, n := range nodes[1:] {
		s := score(n)
		if s < bestScore || (s == bestScore && n.ID < best.ID) {
			best, bestScore = n, s
		}
	}
	return best
}

// filterClass returns nodes with Class in [lo, hi]; if none match it
// returns the input unchanged (graceful degradation beats a panic when an
// experiment configures a tier-free continuum).
func filterClass(nodes []*node.Node, lo, hi node.Class) []*node.Node {
	var out []*node.Node
	for _, n := range nodes {
		if n.Class >= lo && n.Class <= hi {
			out = append(out, n)
		}
	}
	if len(out) == 0 {
		return nodes
	}
	return out
}

// EdgeOnly places every task on edge-tier nodes (Sensor..Fog), choosing
// the least-loaded nearest one. The "never leave the edge" baseline.
type EdgeOnly struct{}

// Name implements Policy.
func (EdgeOnly) Name() string { return "edge-only" }

// Select implements Policy.
func (EdgeOnly) Select(env *Env, req Request) *node.Node {
	cands := filterClass(env.Nodes, node.Sensor, node.Fog)
	return argmin(cands, func(n *node.Node) float64 {
		return EstimateLatency(env, req, n)
	})
}

// CloudOnly places every task on Cloud/HPC nodes: the "ship everything to
// the data center" baseline that pays WAN latency and egress.
type CloudOnly struct{}

// Name implements Policy.
func (CloudOnly) Name() string { return "cloud-only" }

// Select implements Policy.
func (CloudOnly) Select(env *Env, req Request) *node.Node {
	cands := filterClass(env.Nodes, node.Cloud, node.HPC)
	return argmin(cands, func(n *node.Node) float64 {
		return EstimateLatency(env, req, n)
	})
}

// Random places uniformly at random — the floor any useful policy must
// beat.
type Random struct{ RNG *workload.RNG }

// Name implements Policy.
func (Random) Name() string { return "random" }

// Select implements Policy.
func (r Random) Select(env *Env, req Request) *node.Node {
	return env.Nodes[r.RNG.Intn(len(env.Nodes))]
}

// RoundRobin cycles through nodes: oblivious load spreading.
type RoundRobin struct{ next int }

// Name implements Policy.
func (*RoundRobin) Name() string { return "round-robin" }

// Select implements Policy.
func (r *RoundRobin) Select(env *Env, req Request) *node.Node {
	n := env.Nodes[r.next%len(env.Nodes)]
	r.next++
	return n
}

// GreedyLatency picks the node with the lowest estimated completion time,
// ignoring data replicas (it ships inputs from the origin).
type GreedyLatency struct{}

// Name implements Policy.
func (GreedyLatency) Name() string { return "greedy-latency" }

// Select implements Policy.
func (GreedyLatency) Select(env *Env, req Request) *node.Node {
	noFabric := *env
	noFabric.Fabric = nil
	return argmin(env.Nodes, func(n *node.Node) float64 {
		return EstimateLatency(&noFabric, req, n)
	})
}

// DataAware is GreedyLatency plus replica knowledge: staging time is
// computed from the nearest replica (and is zero on a cache hit), so
// compute moves to data when data is big and to fast silicon when data is
// small — the continuum tradeoff the keynote centers on.
type DataAware struct{}

// Name implements Policy.
func (DataAware) Name() string { return "data-aware" }

// Select implements Policy.
func (DataAware) Select(env *Env, req Request) *node.Node {
	return argmin(env.Nodes, func(n *node.Node) float64 {
		return EstimateLatency(env, req, n)
	})
}

// GreedyEnergy minimizes marginal joules.
type GreedyEnergy struct{}

// Name implements Policy.
func (GreedyEnergy) Name() string { return "greedy-energy" }

// Select implements Policy.
func (GreedyEnergy) Select(env *Env, req Request) *node.Node {
	return argmin(env.Nodes, func(n *node.Node) float64 {
		return EstimateEnergy(env, req, n)
	})
}

// GreedyCost minimizes marginal dollars.
type GreedyCost struct{}

// Name implements Policy.
func (GreedyCost) Name() string { return "greedy-cost" }

// Select implements Policy.
func (GreedyCost) Select(env *Env, req Request) *node.Node {
	return argmin(env.Nodes, func(n *node.Node) float64 {
		return EstimateDollars(env, req, n)
	})
}

// Weights configures a multi-objective scalarization. Each weight
// multiplies a normalized objective; zero drops the objective.
type Weights struct {
	Latency float64
	Energy  float64
	Dollars float64
}

// MultiObjective scores nodes by a weighted sum of normalized latency,
// energy and dollar estimates (normalized by the per-request minimum of
// each objective across candidates, so objectives are unit-free and
// comparable).
type MultiObjective struct {
	W Weights
}

// Name implements Policy.
func (m MultiObjective) Name() string {
	return fmt.Sprintf("multi(l=%.2g,e=%.2g,c=%.2g)", m.W.Latency, m.W.Energy, m.W.Dollars)
}

// Select implements Policy.
func (m MultiObjective) Select(env *Env, req Request) *node.Node {
	lat := make([]float64, len(env.Nodes))
	eng := make([]float64, len(env.Nodes))
	dol := make([]float64, len(env.Nodes))
	minLat, minEng, minDol := math.Inf(1), math.Inf(1), math.Inf(1)
	for i, n := range env.Nodes {
		lat[i] = EstimateLatency(env, req, n)
		eng[i] = EstimateEnergy(env, req, n)
		dol[i] = EstimateDollars(env, req, n)
		minLat = math.Min(minLat, lat[i])
		minEng = math.Min(minEng, eng[i])
		minDol = math.Min(minDol, dol[i])
	}
	norm := func(v, min float64) float64 {
		if min <= 0 {
			return v
		}
		return v / min
	}
	best, bestScore := env.Nodes[0], math.Inf(1)
	for i, n := range env.Nodes {
		s := m.W.Latency*norm(lat[i], minLat) +
			m.W.Energy*norm(eng[i], minEng) +
			m.W.Dollars*norm(dol[i], minDol)
		if s < bestScore || (s == bestScore && n.ID < best.ID) {
			best, bestScore = n, s
		}
	}
	return best
}
