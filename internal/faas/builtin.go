package faas

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"
)

// BuiltinRegistry installs the demonstration functions every continuumd
// serves: echo, upper, wordcount, matmul (CPU-bound), and sleep
// (latency experiments). The scenario live runner registers the same
// set on its in-process fleet, so a scenario exercised against real
// endpoints invokes exactly what a standalone daemon would serve.
func BuiltinRegistry() *Registry {
	reg := NewRegistry()

	reg.Register("echo", func(p []byte) ([]byte, error) { return p, nil })

	reg.Register("upper", func(p []byte) ([]byte, error) {
		return []byte(strings.ToUpper(string(p))), nil
	})

	// wordcount: returns {"words": n, "bytes": n} for the payload.
	reg.Register("wordcount", func(p []byte) ([]byte, error) {
		out := struct {
			Words int `json:"words"`
			Bytes int `json:"bytes"`
		}{len(strings.Fields(string(p))), len(p)}
		return json.Marshal(out)
	})

	// matmul: parses {"n": k}, multiplies two k×k matrices, returns a
	// checksum — a CPU-bound science-ish kernel.
	reg.Register("matmul", func(p []byte) ([]byte, error) {
		var in struct {
			N int `json:"n"`
		}
		if err := json.Unmarshal(p, &in); err != nil {
			return nil, fmt.Errorf("matmul: %w", err)
		}
		if in.N <= 0 || in.N > 512 {
			return nil, fmt.Errorf("matmul: n %d outside (0,512]", in.N)
		}
		n := in.N
		a := make([]float64, n*n)
		b := make([]float64, n*n)
		c := make([]float64, n*n)
		for i := range a {
			a[i] = float64(i%7) * 0.5
			b[i] = float64(i%5) * 0.25
		}
		for i := 0; i < n; i++ {
			for k := 0; k < n; k++ {
				aik := a[i*n+k]
				for j := 0; j < n; j++ {
					c[i*n+j] += aik * b[k*n+j]
				}
			}
		}
		sum := 0.0
		for _, v := range c {
			sum += v
		}
		return json.Marshal(struct {
			Checksum float64 `json:"checksum"`
		}{sum})
	})

	// sleep: parses {"ms": k} and idles — for latency experiments.
	reg.Register("sleep", func(p []byte) ([]byte, error) {
		var in struct {
			MS int `json:"ms"`
		}
		if err := json.Unmarshal(p, &in); err != nil {
			return nil, fmt.Errorf("sleep: %w", err)
		}
		if in.MS < 0 || in.MS > 10000 {
			return nil, fmt.Errorf("sleep: ms %d outside [0,10000]", in.MS)
		}
		time.Sleep(time.Duration(in.MS) * time.Millisecond)
		return []byte(`{"ok":true}`), nil
	})

	return reg
}
