// Package faas is the funcX analogue of the reproduction: federated
// function-as-a-service over heterogeneous endpoints. Functions register
// centrally; endpoints execute them in "containers" with a cold-start
// penalty and a warm pool; a router spreads invocations across endpoints;
// an optional batcher amortizes per-invocation overhead.
//
// Unlike the simulation substrates, this package runs for real: handlers
// are Go functions, containers are capacity slots, and cold starts are
// wall-clock delays. The wire package exposes it over TCP.
package faas

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"continuum/internal/metrics"
	"continuum/internal/trace"
)

// Handler executes one invocation payload.
type Handler func(payload []byte) ([]byte, error)

// ErrUnknownFunction is returned when a function was never registered.
var ErrUnknownFunction = errors.New("faas: unknown function")

// ErrClosed is returned by invocations after Close.
var ErrClosed = errors.New("faas: endpoint closed")

// ErrHandlerPanic wraps a panic recovered from a function handler. The
// panic is converted to an ordinary invocation error so one bad function
// cannot take the endpoint (or the daemon serving it) down.
var ErrHandlerPanic = errors.New("faas: handler panicked")

// ErrOverloaded marks an invocation rejected before any work started
// (the capacity-slot wait exceeded QueueWait). Unlike an execution
// timeout it is always safe to retry on another endpoint.
var ErrOverloaded = errors.New("faas: endpoint overloaded")

// Registry maps function names to handlers. It is safe for concurrent use.
type Registry struct {
	mu  sync.RWMutex
	fns map[string]Handler
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fns: make(map[string]Handler)}
}

// Register installs (or replaces) a handler under name.
func (r *Registry) Register(name string, h Handler) {
	if h == nil {
		panic("faas: nil handler")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.fns[name] = h
}

// Lookup returns the handler for name.
func (r *Registry) Lookup(name string) (Handler, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	h, ok := r.fns[name]
	return h, ok
}

// Names returns all registered function names.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.fns))
	for n := range r.fns {
		out = append(out, n)
	}
	return out
}

// Invoker is anything that can execute a named function: an Endpoint, a
// Router over many endpoints, or a Batcher wrapping either.
type Invoker interface {
	Invoke(fn string, payload []byte) ([]byte, error)
}

// ContextInvoker is an Invoker that also honors a context deadline —
// Endpoints and Routers implement it; wrappers that cannot thread a
// context (the Batcher) stay plain Invokers.
type ContextInvoker interface {
	Invoker
	InvokeContext(ctx context.Context, fn string, payload []byte) ([]byte, error)
}

// EndpointConfig parameterizes one execution site.
type EndpointConfig struct {
	Name     string
	Capacity int // maximum concurrently running containers

	// ColdStart is the wall-clock cost of provisioning a container for a
	// function with no warm instance available.
	ColdStart time.Duration
	// WarmTTL is how long an idle warm container survives before it is
	// considered expired (lazily, at next acquisition).
	WarmTTL time.Duration
	// MaxWarmPerFn caps the warm pool per function (0 = Capacity).
	MaxWarmPerFn int

	// QueueWait bounds how long an invocation may block waiting for a
	// capacity slot before failing with a deadline error (0 = wait
	// forever, subject to the caller's context).
	QueueWait time.Duration
	// ExecTimeout bounds handler execution wall-clock time (0 =
	// unbounded). A timed-out invocation returns an error wrapping
	// context.DeadlineExceeded; the abandoned handler keeps its capacity
	// slot until it actually returns (Go cannot kill a goroutine), so a
	// stuck handler degrades capacity rather than corrupting state.
	ExecTimeout time.Duration
	// Admission enables overload control: a priority-classed, adaptively
	// bounded wait queue with immediate load shedding and elastic slot
	// sizing, replacing the plain fixed-slot semaphore (see
	// AdmissionConfig). Disabled (the zero value), invocations block on
	// a capacity slot exactly as before.
	Admission AdmissionConfig

	// PreemptAbandoned frees the capacity slot of a handler abandoned by
	// context *cancellation* immediately, instead of when the handler
	// returns. Cancellation means the caller no longer wants the result —
	// typically a hedged request whose sibling arm won — and the handler
	// is presumed cooperative, so holding its slot would let every lost
	// hedge race shrink effective capacity. Deliberately not applied to
	// ExecTimeout or deadline expiry: those often mean a wedged handler,
	// and freeing its slot would oversubscribe the endpoint.
	PreemptAbandoned bool
}

type container struct {
	fn       string
	idleFrom time.Time
}

// Endpoint executes functions in containers with a warm pool.
type Endpoint struct {
	cfg EndpointConfig
	reg *Registry

	slots chan struct{} // capacity semaphore (unused when adm != nil)
	adm   *admitter     // admission controller, nil unless cfg.Admission.Enabled

	// cordoned rejects new invocations (retryably) while letting
	// in-flight work finish; see SetCordon.
	cordoned atomic.Bool

	mu     sync.Mutex
	warm   map[string][]*container
	closed bool

	// Running is the number of in-flight containers (approximate gauge).
	running atomic.Int64

	// Stats (atomic): cold starts, warm hits, completed invocations,
	// recovered handler panics, preempted (cancelled, slot freed early)
	// invocations.
	coldStarts  atomic.Int64
	warmHits    atomic.Int64
	invocations atomic.Int64
	panics      atomic.Int64
	preempted   atomic.Int64

	// obs, when non-nil, publishes per-function latency histograms,
	// queue-wait, cold/warm counters, and an in-flight gauge into a
	// shared metrics registry (see SetMetrics). Absent registry = no
	// instrumentation on the invoke path.
	obs *epObserver

	// spans, when non-nil, records queue-wait and exec spans for traced
	// invocations (see SetSpans). Nil = no span work at all.
	spans *trace.SpanStore
}

// epObserver caches metric handles so the invoke hot path never formats
// label strings or takes the registry lock after first use of a function.
type epObserver struct {
	reg       *metrics.Registry
	ep        string
	queueWait *metrics.Histogram
	inflight  *metrics.Gauge

	// Admission-control instruments (always registered; only moved by
	// endpoints with Admission enabled).
	shed       [NumPriorities]*metrics.Counter
	slots      *metrics.Gauge
	queueDepth *metrics.Gauge

	mu  sync.Mutex
	fns map[string]*fnMetrics
}

type fnMetrics struct {
	latency     *metrics.Histogram
	cold, warm  *metrics.Counter
	invocations *metrics.Counter
	panics      *metrics.Counter
	preempted   *metrics.Counter
}

func newEpObserver(reg *metrics.Registry, ep string) *epObserver {
	o := &epObserver{
		reg:        reg,
		ep:         ep,
		queueWait:  reg.Histogram(metrics.Label("faas_queue_wait_seconds", "ep", ep)),
		inflight:   reg.Gauge(metrics.Label("faas_inflight", "ep", ep)),
		slots:      reg.Gauge(metrics.Label("faas_slots", "ep", ep)),
		queueDepth: reg.Gauge(metrics.Label("faas_queue_depth", "ep", ep)),
		fns:        make(map[string]*fnMetrics),
	}
	for cls := range o.shed {
		o.shed[cls] = reg.Counter(metrics.Label("faas_shed_total", "ep", ep, "prio", (Priority(cls) + PriorityLow).String()))
	}
	return o
}

// fn returns (creating on first use) the cached handles for one function.
func (o *epObserver) fn(name string) *fnMetrics {
	o.mu.Lock()
	defer o.mu.Unlock()
	m, ok := o.fns[name]
	if !ok {
		m = &fnMetrics{
			latency:     o.reg.Histogram(metrics.Label("faas_invoke_duration_seconds", "ep", o.ep, "fn", name)),
			cold:        o.reg.Counter(metrics.Label("faas_cold_starts_total", "ep", o.ep, "fn", name)),
			warm:        o.reg.Counter(metrics.Label("faas_warm_hits_total", "ep", o.ep, "fn", name)),
			invocations: o.reg.Counter(metrics.Label("faas_invocations_total", "ep", o.ep, "fn", name)),
			panics:      o.reg.Counter(metrics.Label("faas_panics_total", "ep", o.ep, "fn", name)),
			preempted:   o.reg.Counter(metrics.Label("faas_preempted_total", "ep", o.ep, "fn", name)),
		}
		o.fns[name] = m
	}
	return m
}

// NewEndpoint creates an endpoint executing functions from reg.
func NewEndpoint(cfg EndpointConfig, reg *Registry) *Endpoint {
	if cfg.Capacity <= 0 {
		panic(fmt.Sprintf("faas: endpoint %q capacity %d <= 0", cfg.Name, cfg.Capacity))
	}
	if cfg.MaxWarmPerFn <= 0 {
		cfg.MaxWarmPerFn = cfg.Capacity
	}
	ep := &Endpoint{
		cfg:   cfg,
		reg:   reg,
		slots: make(chan struct{}, cfg.Capacity),
		warm:  make(map[string][]*container),
	}
	if cfg.Admission.Enabled {
		ep.adm = newAdmitter(cfg.Admission, cfg.Capacity)
	}
	return ep
}

// SetMetrics attaches a shared metrics registry. From then on every
// invocation records, labeled by endpoint and function name:
//
//	faas_invoke_duration_seconds{ep,fn}  end-to-end latency histogram
//	                                     (queue wait + cold start + handler)
//	faas_queue_wait_seconds{ep}          time blocked on a capacity slot
//	faas_cold_starts_total{ep,fn}        invocations that paid provisioning
//	faas_warm_hits_total{ep,fn}          invocations that reused a container
//	faas_invocations_total{ep,fn}        completed invocations
//	faas_panics_total{ep,fn}             handler panics recovered
//	faas_preempted_total{ep,fn}          cancelled invocations whose slot
//	                                     was freed early (PreemptAbandoned)
//	faas_inflight{ep}                    invocations currently in the endpoint
//
// Call before serving traffic: SetMetrics is not synchronized against
// in-flight invocations. A nil-registry endpoint records nothing and
// pays nothing.
func (ep *Endpoint) SetMetrics(reg *metrics.Registry) {
	if reg == nil {
		ep.obs = nil
		if ep.adm != nil {
			ep.adm.obs = nil
		}
		return
	}
	ep.obs = newEpObserver(reg, ep.cfg.Name)
	if ep.adm != nil {
		ep.adm.obs = ep.obs
	}
}

// SetSpans attaches a span store: every invocation arriving under a
// traced context (trace.NewContext — the wire server threads it through
// for traced requests) then records a queue-wait span (time blocked on
// a capacity slot) and an exec span (cold start + handler, attributed
// cold/warm, panic, preemption) as children of the caller's span, and
// the invocation's latency histogram sample carries the trace ID as an
// exemplar. Share the store with the wire server's Spans so one pull
// covers the whole daemon. Call before serving traffic; untraced
// invocations pay one context lookup and nothing else.
func (ep *Endpoint) SetSpans(store *trace.SpanStore) {
	ep.spans = store
}

// Name returns the endpoint name.
func (ep *Endpoint) Name() string { return ep.cfg.Name }

// Running returns the in-flight container count.
func (ep *Endpoint) Running() int64 { return ep.running.Load() }

// Capacity returns the concurrency limit.
func (ep *Endpoint) Capacity() int { return ep.cfg.Capacity }

// ColdStarts returns how many invocations paid the provisioning penalty.
func (ep *Endpoint) ColdStarts() int64 { return ep.coldStarts.Load() }

// WarmHits returns how many invocations reused a warm container.
func (ep *Endpoint) WarmHits() int64 { return ep.warmHits.Load() }

// Invocations returns completed invocation count.
func (ep *Endpoint) Invocations() int64 { return ep.invocations.Load() }

// Panics returns how many handler panics were recovered.
func (ep *Endpoint) Panics() int64 { return ep.panics.Load() }

// Preempted returns how many cancelled invocations had their capacity
// slot freed early under EndpointConfig.PreemptAbandoned.
func (ep *Endpoint) Preempted() int64 { return ep.preempted.Load() }

// Shed returns how many invocations admission control rejected
// (0 without Admission enabled).
func (ep *Endpoint) Shed() int64 {
	if ep.adm == nil {
		return 0
	}
	return ep.adm.Shed()
}

// ShedByPriority returns shed counts indexed low, normal, high.
func (ep *Endpoint) ShedByPriority() [NumPriorities]int64 {
	if ep.adm == nil {
		return [NumPriorities]int64{}
	}
	return ep.adm.ShedByPriority()
}

// SlotLimit returns the current elastic concurrency limit (Capacity
// without Admission enabled).
func (ep *Endpoint) SlotLimit() int {
	if ep.adm == nil {
		return ep.cfg.Capacity
	}
	return ep.adm.SlotLimit()
}

// QueueDepth returns the number of invocations waiting for admission
// (0 without Admission enabled — channel waiters are not observable).
func (ep *Endpoint) QueueDepth() int {
	if ep.adm == nil {
		return 0
	}
	return ep.adm.QueueDepth()
}

// LoadSnapshot is one endpoint's instantaneous load picture — the body
// a federated daemon advertises in its heartbeats so the router can
// route least-loaded without an extra round trip.
type LoadSnapshot struct {
	// QueueDepth is the number of invocations waiting for admission.
	QueueDepth int
	// InFlight is the number of invocations currently executing.
	InFlight int64
	// SlotLimit is the current (possibly elastic) concurrency limit.
	SlotLimit int
	// Cordoned reports whether the endpoint rejects new work.
	Cordoned bool
}

// Load returns the endpoint's instantaneous load snapshot. The fields
// are read independently, so a snapshot taken under concurrent traffic
// is approximate — exactly as load advertisements must be.
func (ep *Endpoint) Load() LoadSnapshot {
	return LoadSnapshot{
		QueueDepth: ep.QueueDepth(),
		InFlight:   ep.Running(),
		SlotLimit:  ep.SlotLimit(),
		Cordoned:   ep.Cordoned(),
	}
}

// SetCordon marks the endpoint cordoned (true) or schedulable again
// (false). A cordoned endpoint finishes its in-flight invocations but
// rejects new ones with ErrCordoned — a retryable verdict, so reliable
// clients fail over instead of losing the request. This is the live
// half of the scenario DSL's cordon/drain events.
func (ep *Endpoint) SetCordon(c bool) { ep.cordoned.Store(c) }

// Cordoned reports whether the endpoint is currently cordoned.
func (ep *Endpoint) Cordoned() bool { return ep.cordoned.Load() }

// Close marks the endpoint closed; in-flight work completes, new
// invocations fail.
func (ep *Endpoint) Close() {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	ep.closed = true
}

// acquire takes a warm container for fn if one is fresh, else signals a
// cold start. Expired containers are discarded here (lazy TTL).
func (ep *Endpoint) acquire(fn string) (warm bool, err error) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.closed {
		return false, ErrClosed
	}
	pool := ep.warm[fn]
	now := time.Now()
	for len(pool) > 0 {
		c := pool[len(pool)-1]
		pool = pool[:len(pool)-1]
		if ep.cfg.WarmTTL == 0 || now.Sub(c.idleFrom) <= ep.cfg.WarmTTL {
			ep.warm[fn] = pool
			return true, nil
		}
		// expired; drop and keep scanning
	}
	ep.warm[fn] = pool
	return false, nil
}

// release returns a container to fn's warm pool (bounded).
func (ep *Endpoint) release(fn string) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.closed {
		return
	}
	pool := ep.warm[fn]
	if len(pool) < ep.cfg.MaxWarmPerFn {
		ep.warm[fn] = append(pool, &container{fn: fn, idleFrom: time.Now()})
	}
}

// WarmCount returns the current warm-pool size for fn.
func (ep *Endpoint) WarmCount(fn string) int {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return len(ep.warm[fn])
}

// Invoke executes fn with payload, blocking for a capacity slot. The
// container is returned to the warm pool afterwards.
func (ep *Endpoint) Invoke(fn string, payload []byte) ([]byte, error) {
	return ep.InvokeContext(context.Background(), fn, payload)
}

// InvokeContext executes fn with payload under ctx: the capacity-slot
// wait is bounded by ctx and EndpointConfig.QueueWait, and handler
// execution is bounded by ctx and EndpointConfig.ExecTimeout. Timeout
// errors wrap context.DeadlineExceeded; handler panics are recovered
// into ErrHandlerPanic errors.
func (ep *Endpoint) InvokeContext(ctx context.Context, fn string, payload []byte) ([]byte, error) {
	h, ok := ep.reg.Lookup(fn)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownFunction, fn)
	}
	tc, traced := trace.ContextSpan(ctx)
	if ep.spans == nil {
		traced = false
	}
	obs := ep.obs
	var fm *fnMetrics
	var entered time.Time
	if obs != nil {
		fm = obs.fn(fn)
		entered = time.Now()
		obs.inflight.Add(1)
		defer obs.inflight.Add(-1)
	}
	var qsp *trace.ActiveSpan
	if traced {
		qsp = ep.spans.StartSpan(tc, ep.cfg.Name, "queue "+fn, trace.KindQueue)
	}
	if err := ep.acquireSlot(ctx, fn); err != nil {
		qsp.SetErr(err)
		qsp.End()
		return nil, err
	}
	qsp.End()
	if obs != nil {
		obs.queueWait.Add(time.Since(entered).Seconds())
	}
	ep.running.Add(1)

	var xsp *trace.ActiveSpan
	if traced {
		xsp = ep.spans.StartSpan(tc, ep.cfg.Name, "exec "+fn, trace.KindExec)
	}
	warm, err := ep.acquire(fn)
	if err != nil {
		ep.releaseSlot()
		xsp.SetErr(err)
		xsp.End()
		return nil, err
	}
	if warm {
		ep.warmHits.Add(1)
		if fm != nil {
			fm.warm.Inc()
		}
		xsp.SetAttr("container", "warm")
	} else {
		ep.coldStarts.Add(1)
		if fm != nil {
			fm.cold.Inc()
		}
		xsp.SetAttr("container", "cold")
		if ep.cfg.ColdStart > 0 {
			time.Sleep(ep.cfg.ColdStart)
		}
	}
	out, err := ep.execute(ctx, fn, h, payload)
	if xsp != nil {
		if err != nil {
			switch {
			case errors.Is(err, ErrHandlerPanic):
				xsp.SetAttr("panic", "true")
			case errors.Is(err, context.Canceled):
				if ep.cfg.PreemptAbandoned {
					xsp.SetAttr("preempted", "true")
				} else {
					xsp.SetAttr("cancelled", "true")
				}
			}
			xsp.SetErr(err)
		}
		xsp.End()
	}
	ep.invocations.Add(1)
	if fm != nil {
		fm.invocations.Inc()
		if traced {
			// The exemplar links this bucket of the latency histogram to
			// the most recent trace that landed in it.
			fm.latency.AddExemplar(time.Since(entered).Seconds(), tc.TraceID)
		} else {
			fm.latency.Add(time.Since(entered).Seconds())
		}
	}
	return out, err
}

// acquireSlot blocks for a capacity slot, bounded by ctx and the
// configured QueueWait. A caller-context expiry surfaces as an error
// wrapping the context sentinel; a QueueWait expiry surfaces as
// ErrOverloaded (and only that — overload is the server's verdict, not
// the caller's deadline). With Admission enabled the wait goes through
// the admission controller instead: priority-classed bounded queuing
// with immediate shedding.
func (ep *Endpoint) acquireSlot(ctx context.Context, fn string) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("faas: %q queue wait: %w", fn, err)
	}
	if ep.cordoned.Load() {
		return fmt.Errorf("%w: %q", ErrCordoned, fn)
	}
	if ep.adm != nil {
		return ep.adm.acquire(ctx, fn, PriorityFromContext(ctx), ep.cfg.QueueWait)
	}
	var timeout <-chan time.Time
	if ep.cfg.QueueWait > 0 {
		t := time.NewTimer(ep.cfg.QueueWait)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case ep.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("faas: %q queue wait: %w", fn, ctx.Err())
	case <-timeout:
		// Deliberately NOT wrapped with context.DeadlineExceeded: callers
		// classify their own deadline via errors.Is(err, DeadlineExceeded)
		// and server-side overload via errors.Is(err, ErrOverloaded);
		// wrapping both here made the two indistinguishable.
		return fmt.Errorf("%w: %q queue wait exceeded %v", ErrOverloaded, fn, ep.cfg.QueueWait)
	}
}

// releaseSlot undoes acquireSlot plus the running count.
func (ep *Endpoint) releaseSlot() {
	ep.running.Add(-1)
	if ep.adm != nil {
		ep.adm.release()
		return
	}
	<-ep.slots
}

// safeCall runs the handler with panic containment: a panicking handler
// yields an ErrHandlerPanic invocation error (and bumps the panic
// counters) instead of unwinding the endpoint.
func (ep *Endpoint) safeCall(fn string, h Handler, payload []byte) (out []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			ep.panics.Add(1)
			if obs := ep.obs; obs != nil {
				obs.fn(fn).panics.Inc()
			}
			err = fmt.Errorf("%w: %q: %v", ErrHandlerPanic, fn, r)
		}
	}()
	return h(payload)
}

// execute runs the handler and releases the container and capacity slot.
// Without a deadline it runs inline (no extra goroutine on the fast
// path). With one, the handler runs in a goroutine and exactly one side
// — the caller or, if the caller times out first, the abandoned handler
// itself — performs the release, decided by a single atomic claim.
//
// With PreemptAbandoned, a *cancelled* caller frees the capacity slot
// right away; the still-running handler only returns its container to
// the warm pool when it eventually finishes (slotFreed tells it the slot
// side is already done).
func (ep *Endpoint) execute(ctx context.Context, fn string, h Handler, payload []byte) ([]byte, error) {
	finish := func() {
		ep.release(fn)
		ep.releaseSlot()
	}
	if ctx.Done() == nil && ep.cfg.ExecTimeout <= 0 {
		out, err := ep.safeCall(fn, h, payload)
		finish()
		return out, err
	}
	var timeout <-chan time.Time
	if ep.cfg.ExecTimeout > 0 {
		t := time.NewTimer(ep.cfg.ExecTimeout)
		defer t.Stop()
		timeout = t.C
	}
	type result struct {
		out []byte
		err error
	}
	done := make(chan result, 1)
	var claimed atomic.Bool   // first claimant controls who releases
	var slotFreed atomic.Bool // set (before the claim) when preemption released the slot
	go func() {
		out, err := ep.safeCall(fn, h, payload)
		if !claimed.CompareAndSwap(false, true) {
			// Caller gave up: the late handler cleans up whatever the
			// abandoning side left behind. slotFreed is ordered before the
			// claim, so losing the CAS guarantees we observe it.
			if slotFreed.Load() {
				ep.release(fn)
			} else {
				finish()
			}
			return
		}
		done <- result{out, err}
	}()
	abandon := func(cause error, preempt bool) ([]byte, error) {
		if preempt {
			// Must be ordered before the claim: the handler goroutine reads
			// slotFreed only after losing the CAS.
			slotFreed.Store(true)
		}
		if !claimed.CompareAndSwap(false, true) {
			slotFreed.Store(false) // lost the race: the handler just finished
			r := <-done
			finish()
			return r.out, r.err
		}
		if preempt {
			ep.preempted.Add(1)
			if obs := ep.obs; obs != nil {
				obs.fn(fn).preempted.Inc()
			}
			ep.releaseSlot()
		}
		return nil, cause
	}
	select {
	case r := <-done:
		finish()
		return r.out, r.err
	case <-timeout:
		return abandon(fmt.Errorf("faas: %q deadline exceeded after %v: %w",
			fn, ep.cfg.ExecTimeout, context.DeadlineExceeded), false)
	case <-ctx.Done():
		return abandon(fmt.Errorf("faas: %q: %w", fn, ctx.Err()),
			ep.cfg.PreemptAbandoned && errors.Is(ctx.Err(), context.Canceled))
	}
}

// InvokeBatch executes multiple payloads of the same function under a
// single container acquisition, amortizing the cold start across the
// batch. Results align with payloads; the first handler error is returned
// after all payloads run.
func (ep *Endpoint) InvokeBatch(fn string, payloads [][]byte) ([][]byte, error) {
	h, ok := ep.reg.Lookup(fn)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownFunction, fn)
	}
	obs := ep.obs
	var fm *fnMetrics
	var entered time.Time
	if obs != nil {
		fm = obs.fn(fn)
		entered = time.Now()
		obs.inflight.Add(1)
		defer obs.inflight.Add(-1)
	}
	if err := ep.acquireSlot(context.Background(), fn); err != nil {
		return nil, err
	}
	if obs != nil {
		obs.queueWait.Add(time.Since(entered).Seconds())
	}
	ep.running.Add(1)
	defer ep.releaseSlot()

	warm, err := ep.acquire(fn)
	if err != nil {
		return nil, err
	}
	if warm {
		ep.warmHits.Add(1)
		if fm != nil {
			fm.warm.Inc()
		}
	} else {
		ep.coldStarts.Add(1)
		if fm != nil {
			fm.cold.Inc()
		}
		if ep.cfg.ColdStart > 0 {
			time.Sleep(ep.cfg.ColdStart)
		}
	}
	out := make([][]byte, len(payloads))
	var firstErr error
	for i, p := range payloads {
		v, err := ep.safeCall(fn, h, p)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		out[i] = v
		ep.invocations.Add(1)
		if fm != nil {
			fm.invocations.Inc()
		}
	}
	ep.release(fn)
	if fm != nil {
		// One latency sample for the whole batch: the batch is the unit
		// that paid the (single) cold start and queue wait.
		fm.latency.Add(time.Since(entered).Seconds())
	}
	return out, firstErr
}
