package faas

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// admissionEndpoint builds an endpoint with admission control enabled
// and a controllable "gate" handler: each gate invocation blocks until
// the test releases it, so the test decides exactly when slots free up.
func admissionEndpoint(t *testing.T, cfg EndpointConfig) (*Endpoint, chan struct{}) {
	t.Helper()
	gate := make(chan struct{})
	reg := NewRegistry()
	reg.Register("echo", func(p []byte) ([]byte, error) { return p, nil })
	reg.Register("gate", func(p []byte) ([]byte, error) {
		<-gate
		return p, nil
	})
	if cfg.Name == "" {
		cfg.Name = "adm"
	}
	if cfg.Capacity == 0 {
		cfg.Capacity = 1
	}
	cfg.Admission.Enabled = true
	ep := NewEndpoint(cfg, reg)
	t.Cleanup(ep.Close)
	return ep, gate
}

// fillSlots occupies every elastic slot with gate invocations and waits
// until they are all running.
func fillSlots(t *testing.T, ep *Endpoint, n int) *sync.WaitGroup {
	t.Helper()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ep.Invoke("gate", nil)
		}()
	}
	deadline := time.Now().Add(2 * time.Second)
	for ep.Running() < int64(n) {
		if time.Now().After(deadline) {
			t.Fatalf("slots never filled: running %d want %d", ep.Running(), n)
		}
		time.Sleep(time.Millisecond)
	}
	return &wg
}

// TestAdmissionShedImmediateWithRetryAfter: once the queue watermark for
// a class is hit, an arrival is rejected right away — microseconds, not
// QueueWait — with an OverloadError carrying a positive Retry-After and
// no context sentinel.
func TestAdmissionShedImmediateWithRetryAfter(t *testing.T) {
	ep, gate := admissionEndpoint(t, EndpointConfig{
		Capacity:  1,
		QueueWait: time.Second,
		Admission: AdmissionConfig{MaxQueue: 3, MinSlots: 1},
	})
	defer close(gate)
	fillSlots(t, ep, 1)

	// The low class's watermark is MaxQueue/3 = 1: first low queues,
	// second low sheds instantly.
	ctx := WithPriority(context.Background(), PriorityLow)
	go ep.InvokeContext(ctx, "echo", nil) // queues (released when gate closes)
	waitQueued(t, ep, 1)

	start := time.Now()
	_, err := ep.InvokeContext(ctx, "echo", nil)
	elapsed := time.Since(start)
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("err = %v, want *OverloadError", err)
	}
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("shed error does not unwrap to ErrOverloaded: %v", err)
	}
	if errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("shed error wraps context.DeadlineExceeded: %v", err)
	}
	if oe.RetryAfter <= 0 {
		t.Fatalf("RetryAfter = %v, want > 0", oe.RetryAfter)
	}
	if elapsed > 100*time.Millisecond {
		t.Fatalf("shed took %v, want immediate (QueueWait is 1s)", elapsed)
	}
	if ep.Shed() != 1 {
		t.Fatalf("Shed() = %d", ep.Shed())
	}
}

func waitQueued(t *testing.T, ep *Endpoint, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for ep.QueueDepth() < n {
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached %d (at %d)", n, ep.QueueDepth())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAdmissionEvictsLowerPriority: a high-priority arrival hitting a
// full queue displaces a queued low-priority request instead of being
// rejected — lowest-priority-first shedding.
func TestAdmissionEvictsLowerPriority(t *testing.T) {
	ep, gate := admissionEndpoint(t, EndpointConfig{
		Capacity:  1,
		QueueWait: 5 * time.Second,
		Admission: AdmissionConfig{MaxQueue: 3, MinSlots: 1},
	})
	fillSlots(t, ep, 1)

	lowErr := make(chan error, 1)
	go func() {
		_, err := ep.InvokeContext(WithPriority(context.Background(), PriorityLow), "echo", nil)
		lowErr <- err
	}()
	waitQueued(t, ep, 1)

	// Fill the rest of the queue with high-priority waiters (their
	// watermark is the whole bound, so they queue without evicting),
	// then arrive one more high: the queue is at its hard bound, and the
	// arrival must displace the queued low instead of being rejected.
	for i := 0; i < 2; i++ {
		go ep.InvokeContext(WithPriority(context.Background(), PriorityHigh), "echo", nil)
		waitQueued(t, ep, 2+i)
	}

	highDone := make(chan error, 1)
	go func() {
		_, err := ep.InvokeContext(WithPriority(context.Background(), PriorityHigh), "echo", nil)
		highDone <- err
	}()

	select {
	case err := <-lowErr:
		var oe *OverloadError
		if !errors.As(err, &oe) || !oe.Evicted {
			t.Fatalf("low-priority waiter got %v, want evicted OverloadError", err)
		}
		if oe.RetryAfter <= 0 {
			t.Fatalf("evicted RetryAfter = %v", oe.RetryAfter)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("low-priority waiter was not evicted")
	}

	// Release the pool: the high-priority request must complete.
	close(gate)
	if err := <-highDone; err != nil {
		t.Fatalf("high-priority invoke after eviction: %v", err)
	}
}

// TestAdmissionGrantsHighestFirst: when a slot frees, the queued
// high-priority request runs before earlier-queued low-priority ones.
// With Capacity 1 the slot hands off serially, so handler execution
// order IS grant order.
func TestAdmissionGrantsHighestFirst(t *testing.T) {
	var mu sync.Mutex
	var order []string
	gate := make(chan struct{})
	reg := NewRegistry()
	reg.Register("gate", func(p []byte) ([]byte, error) {
		<-gate
		return p, nil
	})
	reg.Register("mark", func(p []byte) ([]byte, error) {
		mu.Lock()
		order = append(order, string(p))
		mu.Unlock()
		return p, nil
	})
	ep := NewEndpoint(EndpointConfig{
		Name: "adm", Capacity: 1, QueueWait: 5 * time.Second,
		Admission: AdmissionConfig{Enabled: true, MaxQueue: 12, MinSlots: 1},
	}, reg)
	defer ep.Close()
	fillSlots(t, ep, 1)

	var done sync.WaitGroup
	for i, job := range []struct {
		p     Priority
		label string
	}{{PriorityLow, "low"}, {PriorityHigh, "high"}} {
		done.Add(1)
		go func(p Priority, label string) {
			defer done.Done()
			if _, err := ep.InvokeContext(WithPriority(context.Background(), p), "mark", []byte(label)); err != nil {
				t.Errorf("%s: %v", label, err)
			}
		}(job.p, job.label)
		waitQueued(t, ep, i+1) // low must be queued before high arrives
	}

	close(gate) // free the slot; the queue drains serially
	done.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 || order[0] != "high" {
		t.Fatalf("grant order = %v, want high first", order)
	}
}

// TestAdmissionQueueWaitIsOverload: a queued request whose QueueWait
// expires under admission control gets an overload shed (with
// Retry-After), not a deadline error.
func TestAdmissionQueueWaitIsOverload(t *testing.T) {
	ep, gate := admissionEndpoint(t, EndpointConfig{
		Capacity:  1,
		QueueWait: 30 * time.Millisecond,
		Admission: AdmissionConfig{MaxQueue: 6, MinSlots: 1},
	})
	defer close(gate)
	fillSlots(t, ep, 1)

	_, err := ep.Invoke("echo", nil)
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("err = %v, want *OverloadError", err)
	}
	if errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queue-wait shed wraps context.DeadlineExceeded: %v", err)
	}
	if ep.QueueDepth() != 0 {
		t.Fatalf("timed-out waiter leaked: depth %d", ep.QueueDepth())
	}
}

// TestAdmissionElasticPool exercises the admitter's grow/shrink policy
// directly: backlog grows the pool toward capacity, sustained idle
// releases shrink it back to the floor.
func TestAdmissionElasticPool(t *testing.T) {
	a := newAdmitter(AdmissionConfig{MinSlots: 2, QueuePerSlot: 1, MaxQueue: 64}, 8)
	a.slots = 2 // pretend the pool already shrank to the floor

	ctx := context.Background()
	// Fill the 2 slots.
	for i := 0; i < 2; i++ {
		if err := a.acquire(ctx, "f", PriorityNormal, 0); err != nil {
			t.Fatal(err)
		}
	}
	// Queue 2 (= QueuePerSlot × slots): the next arrival grows the pool
	// and is admitted directly.
	errs := make(chan error, 8)
	for i := 0; i < 2; i++ {
		go func() { errs <- a.acquire(ctx, "f", PriorityNormal, 0) }()
	}
	waitFor(t, func() bool { return a.QueueDepth() == 2 })
	if err := a.acquire(ctx, "f", PriorityNormal, 0); err != nil {
		t.Fatalf("growth admission: %v", err)
	}
	if got := a.SlotLimit(); got != 3 {
		t.Fatalf("SlotLimit() = %d after growth, want 3", got)
	}
	grown, _ := a.Resized()
	if grown != 1 {
		t.Fatalf("grown = %d", grown)
	}

	// Drain everything, then release-cycle an idle pool: it shrinks back
	// to the floor, one slot per shrinkAfterIdle idle releases.
	for i := 0; i < 2; i++ {
		a.release() // grants the two queued waiters
	}
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		a.release() // now the pool is empty and idle
	}
	for i := 0; i < shrinkAfterIdle*2; i++ {
		if err := a.acquire(ctx, "f", PriorityNormal, 0); err != nil {
			t.Fatal(err)
		}
		a.release()
	}
	if got := a.SlotLimit(); got != 2 {
		t.Fatalf("SlotLimit() = %d after idling, want floor 2", got)
	}
	_, shrunk := a.Resized()
	if shrunk < 1 {
		t.Fatalf("shrunk = %d", shrunk)
	}
}

// TestAdmissionAIMDClampsQueue: sustained queue waits above the target
// halve the effective queue bound; calm traffic grows it back.
func TestAdmissionAIMDClampsQueue(t *testing.T) {
	a := newAdmitter(AdmissionConfig{MaxQueue: 48, TargetQueueWait: 10 * time.Millisecond}, 4)
	for i := 0; i < aimdEvery; i++ {
		a.observeWait(100 * time.Millisecond) // 10× over target
	}
	if got := a.QueueLimit(); got != 24 {
		t.Fatalf("QueueLimit() = %d after overload signal, want 24", got)
	}
	// EWMA decays as waits return to zero; the bound creeps back up.
	for i := 0; i < 40*aimdEvery; i++ {
		a.observeWait(0)
	}
	if got := a.QueueLimit(); got <= 24 {
		t.Fatalf("QueueLimit() = %d after calm, want growth above 24", got)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCordonFinishesInFlight: a cordoned endpoint completes running
// invocations but rejects new ones with ErrCordoned until uncordoned.
func TestCordonFinishesInFlight(t *testing.T) {
	ep, gate := admissionEndpoint(t, EndpointConfig{Capacity: 2})
	inflight := make(chan error, 1)
	go func() {
		_, err := ep.Invoke("gate", []byte("x"))
		inflight <- err
	}()
	waitFor(t, func() bool { return ep.Running() == 1 })

	ep.SetCordon(true)
	if _, err := ep.Invoke("echo", nil); !errors.Is(err, ErrCordoned) {
		t.Fatalf("cordoned invoke err = %v, want ErrCordoned", err)
	}
	close(gate) // the in-flight request must still finish cleanly
	if err := <-inflight; err != nil {
		t.Fatalf("in-flight invocation failed under cordon: %v", err)
	}
	ep.SetCordon(false)
	if _, err := ep.Invoke("echo", nil); err != nil {
		t.Fatalf("uncordoned invoke: %v", err)
	}
}

// TestAdmissionHammer is the -race gate for the admitter: a storm of
// concurrent invocations across all three priority classes, with a
// slice of callers abandoning via context, against a tiny endpoint.
// Invariants: every call resolves exactly one way, nothing leaks (no
// in-use slots or queued waiters remain), accepted work all completes,
// and shedding is priority-ordered in aggregate (low sheds at least as
// often as high).
func TestAdmissionHammer(t *testing.T) {
	reg := NewRegistry()
	reg.Register("spin", func(p []byte) ([]byte, error) {
		time.Sleep(200 * time.Microsecond)
		return p, nil
	})
	ep := NewEndpoint(EndpointConfig{
		Name:      "hammer",
		Capacity:  4,
		QueueWait: 20 * time.Millisecond,
		Admission: AdmissionConfig{
			Enabled:         true,
			MaxQueue:        24,
			TargetQueueWait: time.Millisecond,
			MinSlots:        1,
		},
	}, reg)
	defer ep.Close()

	const (
		workers = 24
		perW    = 200
	)
	var ok, shed, cancelled [NumPriorities]atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perW; i++ {
				p := Priority(rng.Intn(NumPriorities) - 1)
				cls := classOf(p)
				ctx := WithPriority(context.Background(), p)
				var cancel context.CancelFunc
				if rng.Intn(10) == 0 {
					ctx, cancel = context.WithTimeout(ctx, time.Duration(rng.Intn(3))*time.Millisecond)
				}
				_, err := ep.InvokeContext(ctx, "spin", nil)
				if cancel != nil {
					cancel()
				}
				switch {
				case err == nil:
					ok[cls].Add(1)
				case errors.Is(err, ErrOverloaded):
					shed[cls].Add(1)
				case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
					cancelled[cls].Add(1)
				default:
					t.Errorf("unclassified error: %v", err)
				}
			}
		}(int64(w))
	}
	wg.Wait()

	var total, completed, rejected int64
	for cls := 0; cls < NumPriorities; cls++ {
		total += ok[cls].Load() + shed[cls].Load() + cancelled[cls].Load()
		completed += ok[cls].Load()
		rejected += shed[cls].Load()
	}
	if total != workers*perW {
		t.Fatalf("calls resolved %d ways, want %d", total, workers*perW)
	}
	if ep.QueueDepth() != 0 {
		t.Fatalf("leaked queued waiters: %d", ep.QueueDepth())
	}
	if got := ep.Running(); got != 0 {
		t.Fatalf("leaked running slots: %d", got)
	}
	if ep.adm.inUseNow() != 0 {
		t.Fatalf("leaked admitted slots: %d", ep.adm.inUseNow())
	}
	if completed == 0 {
		t.Fatal("no call ever completed")
	}
	if sb := ep.ShedByPriority(); rejected > 0 && sb[0] < sb[2] {
		t.Fatalf("shed by priority = %v: low must shed at least as much as high", sb)
	}
	t.Logf("hammer: ok=%v shed=%v cancelled=%v slots=%d",
		loads(&ok), loads(&shed), loads(&cancelled), ep.SlotLimit())
}

func loads(a *[NumPriorities]atomic.Int64) [NumPriorities]int64 {
	var out [NumPriorities]int64
	for i := range a {
		out[i] = a[i].Load()
	}
	return out
}

// inUseNow exposes the admitted-slot count for leak assertions.
func (a *admitter) inUseNow() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inUse
}

// TestPriorityContextRoundTrip pins the context carriage and class
// clamping the wire layer depends on.
func TestPriorityContextRoundTrip(t *testing.T) {
	if got := PriorityFromContext(context.Background()); got != PriorityNormal {
		t.Fatalf("default priority = %v", got)
	}
	for _, p := range []Priority{PriorityLow, PriorityNormal, PriorityHigh} {
		if got := PriorityFromContext(WithPriority(context.Background(), p)); got != p {
			t.Fatalf("round trip %v = %v", p, got)
		}
	}
	if classOf(Priority(99)) != classOf(PriorityHigh) || classOf(Priority(-99)) != classOf(PriorityLow) {
		t.Fatal("out-of-range priorities must clamp")
	}
	names := map[Priority]string{PriorityLow: "low", PriorityNormal: "normal", PriorityHigh: "high"}
	for p, want := range names {
		if p.String() != want {
			t.Fatalf("%d.String() = %q, want %q", p, p.String(), want)
		}
	}
	var err error = &OverloadError{Fn: "f", Priority: PriorityLow, RetryAfter: 7 * time.Millisecond}
	if fmt.Sprintf("%v", err) == "" || !errors.Is(err, ErrOverloaded) {
		t.Fatalf("OverloadError: %v", err)
	}
}
