package faas

// Admission control: the overload-survival layer of the endpoint. The
// plain capacity semaphore (Endpoint.slots) makes a flash crowd queue
// up until QueueWait expires — every caller waits the full bound, the
// endpoint does work for requests that already gave up, and retries
// amplify the surge. With EndpointConfig.Admission enabled the endpoint
// instead:
//
//   - bounds the wait queue (adaptively: AIMD on the observed
//     queue-wait EWMA, the same signal faas_queue_wait_seconds exports);
//   - classifies requests into priority classes (carried by context,
//     see WithPriority) with graduated queue watermarks, so low-priority
//     traffic sheds first and high-priority traffic keeps headroom;
//   - sheds immediately — an over-limit arrival is rejected in
//     microseconds with an OverloadError carrying a Retry-After hint
//     derived from the observed queue wait, instead of blocking for
//     QueueWait and then failing;
//   - sizes the worker pool elastically between a floor and Capacity,
//     growing on backlog and shrinking after sustained idleness, the
//     policy internal/autoscale applies to simulated node fleets.
//
// The mirror of this policy for the simulator lives in
// core.ReliableOptions.Admission, so sim and live overload experiments
// stay comparable.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Priority is a request's importance class for admission control and
// load shedding. The zero value is PriorityNormal, so unprioritized
// callers (and legacy wire peers that predate the field) land in the
// middle class rather than the one shed first.
type Priority int

// The three priority classes. Under overload, lower classes are shed
// first: each class has a graduated share of the (adaptive) queue
// bound, and an arriving higher-priority request may evict a queued
// lower-priority one.
const (
	PriorityLow    Priority = -1
	PriorityNormal Priority = 0
	PriorityHigh   Priority = 1
)

// NumPriorities is the number of distinct priority classes.
const NumPriorities = 3

// String returns "low", "normal", or "high" (out-of-range values clamp).
func (p Priority) String() string {
	switch classOf(p) {
	case 0:
		return "low"
	case 2:
		return "high"
	default:
		return "normal"
	}
}

// classOf maps a Priority to its queue index in [0, NumPriorities),
// clamping out-of-range values to the nearest class.
func classOf(p Priority) int {
	if p < PriorityLow {
		p = PriorityLow
	}
	if p > PriorityHigh {
		p = PriorityHigh
	}
	return int(p - PriorityLow)
}

type priorityKey struct{}

// WithPriority tags ctx with a request priority. The endpoint's
// admission controller (and the wire client, which copies the tag onto
// outgoing requests) reads it back with PriorityFromContext.
func WithPriority(ctx context.Context, p Priority) context.Context {
	return context.WithValue(ctx, priorityKey{}, p)
}

// PriorityFromContext returns the priority carried by ctx, or
// PriorityNormal when none is set.
func PriorityFromContext(ctx context.Context) Priority {
	if p, ok := ctx.Value(priorityKey{}).(Priority); ok {
		return p
	}
	return PriorityNormal
}

// ErrCordoned is returned for new invocations while the endpoint is
// cordoned (SetCordon): in-flight work finishes, new work is rejected
// retryably so clients fail over to other endpoints.
var ErrCordoned = errors.New("faas: endpoint cordoned")

// OverloadError is the shed verdict of the admission controller: the
// request was rejected (or evicted from the wait queue) without any
// work being started. It unwraps to ErrOverloaded and carries the
// backoff hint the wire layer forwards to clients as
// Response.RetryAfterMS.
type OverloadError struct {
	// Fn is the function whose invocation was shed.
	Fn string
	// Priority is the shed request's class.
	Priority Priority
	// RetryAfter is the server's backoff hint: roughly the observed
	// queue-wait EWMA, i.e. how long until a retry is likely to find
	// room. Always > 0.
	RetryAfter time.Duration
	// Evicted marks a request that was queued and then displaced by a
	// higher-priority arrival (as opposed to shed on arrival).
	Evicted bool
}

// Error renders the shed/evicted verdict with its priority class and
// Retry-After hint.
func (e *OverloadError) Error() string {
	verb := "shed"
	if e.Evicted {
		verb = "evicted"
	}
	return fmt.Sprintf("%v: %q %s (priority %s, retry after %v)",
		ErrOverloaded, e.Fn, verb, e.Priority, e.RetryAfter)
}

// Unwrap makes errors.Is(err, ErrOverloaded) hold.
func (e *OverloadError) Unwrap() error { return ErrOverloaded }

// AdmissionConfig enables and tunes per-endpoint admission control.
// The zero value (Enabled=false) keeps the plain fixed-slot semaphore.
type AdmissionConfig struct {
	// Enabled turns the admission controller on.
	Enabled bool
	// MaxQueue is the hard bound on queued (admitted-but-waiting)
	// invocations across all priority classes; the effective bound
	// adapts below it via AIMD on observed queue wait
	// (0 = 4 × Capacity).
	MaxQueue int
	// TargetQueueWait is the queue-wait the AIMD loop steers toward:
	// above it the effective queue bound halves, well below it the
	// bound creeps back up (0 = 20ms).
	TargetQueueWait time.Duration
	// MinSlots is the elastic worker-pool floor the endpoint shrinks to
	// when idle; it grows back toward Capacity on backlog
	// (0 = max(1, Capacity/4)).
	MinSlots int
	// QueuePerSlot is the backlog-per-slot that triggers pool growth,
	// mirroring autoscale.Policy.QueuePerNode (0 = 2).
	QueuePerSlot int
	// RetryAfterFloor is the minimum Retry-After hint attached to shed
	// responses (0 = 5ms).
	RetryAfterFloor time.Duration
}

func (c AdmissionConfig) maxQueue(capacity int) int {
	if c.MaxQueue > 0 {
		return max(c.MaxQueue, NumPriorities)
	}
	return max(4*capacity, NumPriorities)
}

func (c AdmissionConfig) targetQueueWait() time.Duration {
	if c.TargetQueueWait > 0 {
		return c.TargetQueueWait
	}
	return 20 * time.Millisecond
}

func (c AdmissionConfig) minSlots(capacity int) int {
	if c.MinSlots > 0 {
		return min(c.MinSlots, capacity)
	}
	return max(1, capacity/4)
}

func (c AdmissionConfig) queuePerSlot() int {
	if c.QueuePerSlot > 0 {
		return c.QueuePerSlot
	}
	return 2
}

func (c AdmissionConfig) retryAfterFloor() time.Duration {
	if c.RetryAfterFloor > 0 {
		return c.RetryAfterFloor
	}
	return 5 * time.Millisecond
}

// waiter states (under admitter.mu). A waiter is in exactly one of:
// its class queue (wWaiting), granted a slot (wGranted), or displaced
// by a higher-priority arrival (wEvicted). The abandon path uses the
// state to resolve races between grant/eviction and the waiter's own
// timeout or cancellation.
const (
	wWaiting = iota
	wGranted
	wEvicted
)

type waiter struct {
	fn    string
	class int
	enq   time.Time
	ready chan error // buffered 1: nil = slot granted, *OverloadError = evicted
	state int
}

// aimd tuning: adjust the queue bound every aimdEvery admissions (so
// one slow grant doesn't slam the bound), shrink the pool after
// shrinkAfterIdle consecutive releases that found an empty queue.
const (
	aimdEvery       = 8
	shrinkAfterIdle = 16
	ewmaAlpha       = 0.2
)

// admitter is the admission controller: a priority-classed, adaptively
// bounded wait queue in front of an elastic slot pool. All state is
// guarded by mu; grants hand the slot directly to the next waiter
// (highest class first, FIFO within a class) so inUse never dips while
// work is queued.
type admitter struct {
	cfg      AdmissionConfig
	capacity int
	obs      *epObserver // set by SetMetrics before traffic; nil = unobserved

	mu     sync.Mutex
	slots  int // elastic concurrency limit, in [minSlots, capacity]
	inUse  int
	queues [NumPriorities][]*waiter
	queued int
	qLimit int     // adaptive queue bound, in [NumPriorities, maxQueue]
	qwEWMA float64 // observed queue-wait EWMA, seconds
	obsN   int     // admissions since the last AIMD adjustment
	idleN  int     // consecutive empty-queue releases (shrink signal)
	grown  int64
	shrunk int64
	shed   [NumPriorities]int64
}

func newAdmitter(cfg AdmissionConfig, capacity int) *admitter {
	return &admitter{
		cfg:      cfg,
		capacity: capacity,
		slots:    capacity, // start full; idleness shrinks toward the floor
		qLimit:   cfg.maxQueue(capacity),
	}
}

// classLimit is the graduated queue watermark for a class: the lowest
// class may use 1/NumPriorities of the adaptive bound, the highest the
// whole bound — so under overload the cheap traffic hits its wall
// first while high-priority requests still find queue headroom.
func (a *admitter) classLimit(cls int) int {
	return a.qLimit * (cls + 1) / NumPriorities
}

// acquire admits, queues, or sheds one invocation. It returns nil once
// a slot is held, an *OverloadError when shed (immediately on arrival,
// by eviction, or on queue-wait expiry), or a context error when the
// caller gave up first.
func (a *admitter) acquire(ctx context.Context, fn string, p Priority, queueWait time.Duration) error {
	cls := classOf(p)
	a.mu.Lock()
	if a.inUse < a.slots {
		a.inUse++
		a.observeWaitLocked(0)
		a.updateGaugesLocked()
		a.mu.Unlock()
		return nil
	}
	// Elastic growth: enough backlog per slot and headroom under the
	// hard capacity (the autoscale QueuePerNode policy, applied to
	// container slots).
	if a.slots < a.capacity && a.queued >= a.cfg.queuePerSlot()*a.slots {
		a.slots++
		a.grown++
		a.inUse++
		a.idleN = 0
		a.observeWaitLocked(0)
		a.updateGaugesLocked()
		a.mu.Unlock()
		return nil
	}
	if a.queued >= a.classLimit(cls) && !a.evictLowerLocked(cls) {
		err := &OverloadError{Fn: fn, Priority: p, RetryAfter: a.retryAfterLocked()}
		a.shedLocked(cls)
		a.mu.Unlock()
		return err
	}
	w := &waiter{fn: fn, class: cls, enq: time.Now(), ready: make(chan error, 1), state: wWaiting}
	a.queues[cls] = append(a.queues[cls], w)
	a.queued++
	a.updateGaugesLocked()
	a.mu.Unlock()

	var timeout <-chan time.Time
	if queueWait > 0 {
		t := time.NewTimer(queueWait)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case err := <-w.ready:
		if err == nil {
			a.observeWait(time.Since(w.enq))
		}
		return err
	case <-ctx.Done():
		return a.abandon(w, fmt.Errorf("faas: %q queue wait: %w", fn, ctx.Err()))
	case <-timeout:
		// Queue-wait expiry under admission control IS overload — the
		// shed carries a Retry-After hint and deliberately does not wrap
		// any context sentinel (see TestQueueWaitOverloadNotDeadline).
		a.mu.Lock()
		ra := a.retryAfterLocked()
		a.mu.Unlock()
		return a.abandon(w, &OverloadError{Fn: fn, Priority: p, RetryAfter: ra})
	}
}

// abandon resolves a waiter whose caller gave up (context or queue
// wait) against a concurrent grant or eviction, all under mu: a raced
// grant is handed onward so the slot is never leaked; a raced eviction
// was already counted by the evictor.
func (a *admitter) abandon(w *waiter, cause error) error {
	a.mu.Lock()
	switch w.state {
	case wGranted:
		a.releaseLocked()
	case wWaiting:
		a.removeLocked(w)
		var oe *OverloadError
		if errors.As(cause, &oe) {
			a.shedLocked(w.class)
		}
	case wEvicted:
		// evictLowerLocked already removed and counted it
	}
	a.updateGaugesLocked()
	a.mu.Unlock()
	return cause
}

// evictLowerLocked displaces the most recently queued waiter of the
// lowest class strictly below cls, making room for a higher-priority
// arrival. Returns false when no lower-class waiter exists.
func (a *admitter) evictLowerLocked(cls int) bool {
	for vc := 0; vc < cls; vc++ {
		q := a.queues[vc]
		if len(q) == 0 {
			continue
		}
		v := q[len(q)-1]
		a.queues[vc] = q[:len(q)-1]
		a.queued--
		v.state = wEvicted
		a.shedLocked(vc)
		v.ready <- &OverloadError{
			Fn: v.fn, Priority: Priority(vc) + PriorityLow,
			RetryAfter: a.retryAfterLocked(), Evicted: true,
		}
		return true
	}
	return false
}

// removeLocked deletes w from its class queue (it may have already
// been popped by a racing grant — then state != wWaiting and callers
// never get here).
func (a *admitter) removeLocked(w *waiter) {
	q := a.queues[w.class]
	for i, x := range q {
		if x == w {
			a.queues[w.class] = append(q[:i], q[i+1:]...)
			a.queued--
			return
		}
	}
}

// release frees one slot: the next waiter (highest class first, FIFO
// within a class) inherits it directly, else inUse drops and sustained
// idleness shrinks the elastic pool toward the floor.
func (a *admitter) release() {
	a.mu.Lock()
	a.releaseLocked()
	if a.queued == 0 && a.inUse < a.slots {
		a.idleN++
		if a.idleN >= shrinkAfterIdle && a.slots > a.cfg.minSlots(a.capacity) {
			a.slots--
			a.shrunk++
			a.idleN = 0
		}
	} else {
		a.idleN = 0
	}
	a.updateGaugesLocked()
	a.mu.Unlock()
}

func (a *admitter) releaseLocked() {
	for cls := NumPriorities - 1; cls >= 0; cls-- {
		q := a.queues[cls]
		if len(q) == 0 {
			continue
		}
		w := q[0]
		a.queues[cls] = q[1:]
		a.queued--
		w.state = wGranted
		w.ready <- nil // slot transfers; inUse unchanged
		return
	}
	a.inUse--
}

// observeWait feeds one admission's queue wait into the EWMA and, every
// aimdEvery admissions, adjusts the effective queue bound: halve when
// waits exceed the target (shed earlier), creep up by one when waits
// are comfortably below it. This reuses the exact signal the endpoint
// already exports as faas_queue_wait_seconds.
func (a *admitter) observeWait(d time.Duration) {
	a.mu.Lock()
	a.observeWaitLocked(d)
	a.mu.Unlock()
}

func (a *admitter) observeWaitLocked(d time.Duration) {
	a.qwEWMA = (1-ewmaAlpha)*a.qwEWMA + ewmaAlpha*d.Seconds()
	a.obsN++
	if a.obsN < aimdEvery {
		return
	}
	a.obsN = 0
	target := a.cfg.targetQueueWait().Seconds()
	switch {
	case a.qwEWMA > target:
		a.qLimit = max(NumPriorities, a.qLimit/2)
	case a.qwEWMA < target/2 && a.qLimit < a.cfg.maxQueue(a.capacity):
		a.qLimit++
	}
}

// retryAfterLocked derives the backoff hint from the queue-wait EWMA:
// a retry sooner than the current typical wait would just re-queue.
func (a *admitter) retryAfterLocked() time.Duration {
	ra := time.Duration(a.qwEWMA * float64(time.Second))
	return max(ra, a.cfg.retryAfterFloor())
}

func (a *admitter) shedLocked(cls int) {
	a.shed[cls]++
	if o := a.obs; o != nil {
		o.shed[cls].Inc()
	}
}

func (a *admitter) updateGaugesLocked() {
	if o := a.obs; o != nil {
		o.slots.Set(float64(a.slots))
		o.queueDepth.Set(float64(a.queued))
	}
}

// Shed returns the total invocations rejected by admission control.
func (a *admitter) Shed() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	var n int64
	for _, s := range a.shed {
		n += s
	}
	return n
}

// ShedByPriority returns shed counts indexed low, normal, high.
func (a *admitter) ShedByPriority() [NumPriorities]int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.shed
}

// SlotLimit returns the current elastic concurrency limit.
func (a *admitter) SlotLimit() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.slots
}

// QueueDepth returns the number of queued (admitted, waiting) requests.
func (a *admitter) QueueDepth() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.queued
}

// QueueLimit returns the current adaptive queue bound.
func (a *admitter) QueueLimit() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.qLimit
}

// Resized returns (grown, shrunk): elastic pool size changes so far.
func (a *admitter) Resized() (int64, int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.grown, a.shrunk
}
