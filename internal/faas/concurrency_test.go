package faas

// Concurrent dispatch safety: the wire server now fans one connection's
// requests out to a worker pool, so a single Endpoint sees genuinely
// concurrent Invoke/InvokeBatch/stat traffic from many goroutines.
// This hammer (run under -race by the tier-1 gate) pins down that the
// endpoint's slot accounting, warm pool, and metrics survive it.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"continuum/internal/metrics"
)

func TestEndpointConcurrentDispatchSafety(t *testing.T) {
	const workers, calls = 16, 32 // calls divisible by 4: even case mix
	reg := NewRegistry()
	reg.Register("echo", func(p []byte) ([]byte, error) { return p, nil })
	reg.Register("boom", func([]byte) ([]byte, error) { panic("boom") })
	ep := NewEndpoint(EndpointConfig{
		Name: "hammered", Capacity: 8, ColdStart: 0, WarmTTL: time.Minute,
	}, reg)
	m := metrics.NewRegistry()
	ep.SetMetrics(m)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < calls; i++ {
				switch i % 4 {
				case 0, 1:
					want := fmt.Sprintf("%d-%d", w, i)
					out, err := ep.Invoke("echo", []byte(want))
					if err != nil || string(out) != want {
						t.Errorf("invoke: %q, %v", out, err)
					}
				case 2:
					outs, err := ep.InvokeBatch("echo", [][]byte{[]byte("a"), []byte("b")})
					if err != nil || len(outs) != 2 {
						t.Errorf("batch: %v, %v", outs, err)
					}
				case 3:
					if _, err := ep.Invoke("boom", nil); err == nil {
						t.Error("panicking handler returned nil error")
					}
					// Stats reads race with the invokes above by design.
					_ = ep.Running()
					_ = ep.WarmCount("echo")
				}
			}
		}()
	}
	wg.Wait()

	if got := ep.Running(); got != 0 {
		t.Fatalf("running = %d after all invocations returned", got)
	}
	// Every call completed: 2 echo + 2 batch payloads + 1 panic per 4.
	wantInv := int64(workers * calls / 4 * 5)
	if got := ep.Invocations(); got != wantInv {
		t.Fatalf("invocations = %d, want %d", got, wantInv)
	}
	if got := ep.Panics(); got != int64(workers*calls/4) {
		t.Fatalf("panics = %d, want %d", got, workers*calls/4)
	}
	// Cold+warm counts one container acquisition per Invoke and per
	// batch, not per payload: 2 invokes + 1 batch + 1 panic-invoke per 4.
	wantAcq := int64(workers * calls / 4 * 4)
	if got := ep.ColdStarts() + ep.WarmHits(); got != wantAcq {
		t.Fatalf("cold+warm = %d, want %d", got, wantAcq)
	}
}
