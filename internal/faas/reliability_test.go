package faas

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"continuum/internal/metrics"
)

func panicEndpoint(t *testing.T, cfg EndpointConfig) (*Endpoint, *metrics.Registry) {
	t.Helper()
	reg := NewRegistry()
	reg.Register("boom", func([]byte) ([]byte, error) { panic("kaboom") })
	reg.Register("echo", func(p []byte) ([]byte, error) { return p, nil })
	reg.Register("block", func(p []byte) ([]byte, error) {
		time.Sleep(100 * time.Millisecond)
		return p, nil
	})
	if cfg.Name == "" {
		cfg.Name = "test"
	}
	if cfg.Capacity == 0 {
		cfg.Capacity = 2
	}
	ep := NewEndpoint(cfg, reg)
	m := metrics.NewRegistry()
	ep.SetMetrics(m)
	return ep, m
}

func TestPanicDoesNotKillEndpoint(t *testing.T) {
	ep, m := panicEndpoint(t, EndpointConfig{})
	_, err := ep.Invoke("boom", nil)
	if !errors.Is(err, ErrHandlerPanic) {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("panic value lost from error: %v", err)
	}
	// The endpoint must keep serving.
	out, err := ep.Invoke("echo", []byte("alive"))
	if err != nil || string(out) != "alive" {
		t.Fatalf("endpoint dead after panic: %q, %v", out, err)
	}
	if ep.Panics() != 1 {
		t.Fatalf("Panics() = %d", ep.Panics())
	}
	c := m.Counter(metrics.Label("faas_panics_total", "ep", "test", "fn", "boom"))
	if c.Value() != 1 {
		t.Fatalf("faas_panics_total = %d", c.Value())
	}
}

func TestPanicInBatchRecovered(t *testing.T) {
	ep, _ := panicEndpoint(t, EndpointConfig{})
	outs, err := ep.InvokeBatch("boom", [][]byte{nil, nil})
	if !errors.Is(err, ErrHandlerPanic) {
		t.Fatalf("err = %v", err)
	}
	if len(outs) != 2 {
		t.Fatalf("outs = %v", outs)
	}
	if ep.Panics() != 2 {
		t.Fatalf("Panics() = %d", ep.Panics())
	}
	if _, err := ep.InvokeBatch("echo", [][]byte{[]byte("x")}); err != nil {
		t.Fatalf("endpoint dead after batch panic: %v", err)
	}
}

func TestPanicReleasesCapacity(t *testing.T) {
	ep, _ := panicEndpoint(t, EndpointConfig{Capacity: 1})
	for i := 0; i < 5; i++ {
		if _, err := ep.Invoke("boom", nil); !errors.Is(err, ErrHandlerPanic) {
			t.Fatalf("invoke %d: %v", i, err)
		}
	}
	if got := ep.Running(); got != 0 {
		t.Fatalf("Running() = %d after panics", got)
	}
}

func TestQueueWaitTimeout(t *testing.T) {
	ep, _ := panicEndpoint(t, EndpointConfig{Capacity: 1, QueueWait: 20 * time.Millisecond})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ep.Invoke("block", nil) // occupies the only slot ~100ms
	}()
	time.Sleep(10 * time.Millisecond) // let the blocker take the slot
	start := time.Now()
	_, err := ep.Invoke("echo", nil)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v", err)
	}
	// Pin the satellite fix: queue-wait expiry is the server's overload
	// verdict, NOT the caller's deadline — wrapping both made callers
	// classifying via errors.Is(err, context.DeadlineExceeded) mistake
	// overload for their own deadline expiring.
	if errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queue-wait overload wraps context.DeadlineExceeded: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 90*time.Millisecond {
		t.Fatalf("queue timeout took %v", elapsed)
	}
	wg.Wait()
	// Slot freed: the endpoint serves again.
	if _, err := ep.Invoke("echo", nil); err != nil {
		t.Fatalf("endpoint wedged after queue timeout: %v", err)
	}
}

func TestQueueWaitContextCancel(t *testing.T) {
	ep, _ := panicEndpoint(t, EndpointConfig{Capacity: 1})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ep.Invoke("block", nil)
	}()
	time.Sleep(10 * time.Millisecond)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	if _, err := ep.InvokeContext(ctx, "echo", nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	wg.Wait()
}

func TestExecTimeout(t *testing.T) {
	ep, _ := panicEndpoint(t, EndpointConfig{Capacity: 1, ExecTimeout: 20 * time.Millisecond})
	start := time.Now()
	_, err := ep.Invoke("block", nil) // handler sleeps 100ms
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
	if elapsed := time.Since(start); elapsed > 90*time.Millisecond {
		t.Fatalf("exec timeout returned after %v", elapsed)
	}
	// The abandoned handler holds the slot until it returns; afterwards
	// capacity must be fully restored (no leak).
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := ep.Invoke("echo", nil); err == nil {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("capacity never recovered: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := ep.Running(); got != 0 {
		t.Fatalf("Running() = %d after recovery", got)
	}
}

func TestExecContextCancel(t *testing.T) {
	ep, _ := panicEndpoint(t, EndpointConfig{Capacity: 1})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	if _, err := ep.InvokeContext(ctx, "block", nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}

func TestExecTimeoutNotTriggeredByFastHandler(t *testing.T) {
	ep, _ := panicEndpoint(t, EndpointConfig{ExecTimeout: time.Second})
	out, err := ep.Invoke("echo", []byte("fast"))
	if err != nil || string(out) != "fast" {
		t.Fatalf("out=%q err=%v", out, err)
	}
}

// TestExecTimeoutCapacityUnderLoad hammers a deadline-bounded endpoint
// and then verifies no slot was leaked by either the normal or the
// abandoned-handler release path.
func TestExecTimeoutCapacityUnderLoad(t *testing.T) {
	reg := NewRegistry()
	reg.Register("mixed", func(p []byte) ([]byte, error) {
		if len(p) > 0 && p[0] == 's' {
			time.Sleep(30 * time.Millisecond) // will exceed the deadline
		}
		return p, nil
	})
	ep := NewEndpoint(EndpointConfig{
		Name: "load", Capacity: 4, ExecTimeout: 5 * time.Millisecond,
	}, reg)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := []byte("f")
			if i%2 == 0 {
				p = []byte("s")
			}
			ep.Invoke("mixed", p)
		}()
	}
	wg.Wait()
	// Wait out any abandoned handlers, then demand full capacity back.
	time.Sleep(100 * time.Millisecond)
	if got := ep.Running(); got != 0 {
		t.Fatalf("Running() = %d after drain", got)
	}
	done := make(chan struct{})
	go func() {
		var inner sync.WaitGroup
		for i := 0; i < 4; i++ {
			inner.Add(1)
			go func() {
				defer inner.Done()
				ep.Invoke("mixed", []byte("f"))
			}()
		}
		inner.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("capacity leaked: 4 fast invokes could not run concurrently")
	}
}
