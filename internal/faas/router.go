package faas

import (
	"context"
	"fmt"
	"hash/fnv"
	"sync/atomic"
)

// RoutePolicy selects an endpoint for an invocation.
type RoutePolicy int

// Routing policies.
const (
	// RouteRoundRobin cycles endpoints.
	RouteRoundRobin RoutePolicy = iota
	// RouteLeastLoaded picks the endpoint with the lowest running/capacity
	// ratio — funcX's default heuristic.
	RouteLeastLoaded
	// RouteSticky hashes the function name, maximizing warm-container
	// reuse at the cost of load spread.
	RouteSticky
)

// String returns the policy name.
func (p RoutePolicy) String() string {
	switch p {
	case RouteRoundRobin:
		return "round-robin"
	case RouteLeastLoaded:
		return "least-loaded"
	case RouteSticky:
		return "sticky"
	default:
		return fmt.Sprintf("route(%d)", int(p))
	}
}

// Router federates endpoints behind one Invoker.
type Router struct {
	eps    []*Endpoint
	policy RoutePolicy
	next   atomic.Int64
}

// NewRouter builds a router over endpoints.
func NewRouter(policy RoutePolicy, eps ...*Endpoint) *Router {
	if len(eps) == 0 {
		panic("faas: router needs at least one endpoint")
	}
	return &Router{eps: eps, policy: policy}
}

// Endpoints returns the federated endpoints.
func (r *Router) Endpoints() []*Endpoint { return r.eps }

// pick selects the endpoint for fn per the policy.
func (r *Router) pick(fn string) *Endpoint {
	switch r.policy {
	case RouteLeastLoaded:
		best := r.eps[0]
		bestLoad := float64(best.Running()) / float64(best.Capacity())
		for _, ep := range r.eps[1:] {
			load := float64(ep.Running()) / float64(ep.Capacity())
			if load < bestLoad {
				best, bestLoad = ep, load
			}
		}
		return best
	case RouteSticky:
		h := fnv.New32a()
		h.Write([]byte(fn))
		return r.eps[int(h.Sum32())%len(r.eps)]
	default: // round robin
		i := r.next.Add(1) - 1
		return r.eps[int(i)%len(r.eps)]
	}
}

// Invoke routes one invocation.
func (r *Router) Invoke(fn string, payload []byte) ([]byte, error) {
	return r.pick(fn).Invoke(fn, payload)
}

// InvokeContext routes one invocation under ctx.
func (r *Router) InvokeContext(ctx context.Context, fn string, payload []byte) ([]byte, error) {
	return r.pick(fn).InvokeContext(ctx, fn, payload)
}

// InvokeBatch routes a whole batch to one endpoint.
func (r *Router) InvokeBatch(fn string, payloads [][]byte) ([][]byte, error) {
	return r.pick(fn).InvokeBatch(fn, payloads)
}
