package faas

import (
	"strings"
	"testing"
)

// TestBuiltinRegistry pins the shared function set: continuumd and the
// scenario live backend must expose identical builtins, so a scenario
// that names one runs the same everywhere.
func TestBuiltinRegistry(t *testing.T) {
	reg := BuiltinRegistry()
	for _, name := range []string{"echo", "upper", "wordcount", "matmul", "sleep"} {
		if _, ok := reg.Lookup(name); !ok {
			t.Fatalf("builtin %q missing", name)
		}
	}

	run := func(name, in string) string {
		t.Helper()
		fn, _ := reg.Lookup(name)
		out, err := fn([]byte(in))
		if err != nil {
			t.Fatalf("%s(%q): %v", name, in, err)
		}
		return string(out)
	}
	if got := run("echo", "hello"); got != "hello" {
		t.Fatalf("echo = %q", got)
	}
	if got := run("upper", "hello"); got != "HELLO" {
		t.Fatalf("upper = %q", got)
	}
	if got := run("wordcount", "a b c"); !strings.Contains(got, `"words":3`) {
		t.Fatalf("wordcount = %q", got)
	}
	if got := run("matmul", `{"n":8}`); !strings.Contains(got, "checksum") {
		t.Fatalf("matmul = %q", got)
	}
	if got := run("sleep", `{"ms":1}`); got != `{"ok":true}` {
		t.Fatalf("sleep = %q", got)
	}
}
