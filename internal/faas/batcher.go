package faas

import (
	"sync"
	"time"
)

// batchInvoker is the subset of endpoint/router behaviour the batcher
// needs.
type batchInvoker interface {
	InvokeBatch(fn string, payloads [][]byte) ([][]byte, error)
}

type pendingCall struct {
	payload []byte
	done    chan struct{}
	out     []byte
	err     error
}

// Batcher groups invocations of the same function into batches of up to
// MaxBatch, flushed when full or after MaxWait — trading latency for
// amortized cold starts and slot acquisitions. It implements Invoker.
type Batcher struct {
	target   batchInvoker
	maxBatch int
	maxWait  time.Duration

	mu      sync.Mutex
	pending map[string][]*pendingCall
	timers  map[string]*time.Timer
	closed  bool

	// Flushes counts dispatched batches; BatchedCalls counts calls that
	// shared a batch with at least one other call.
	flushes      int64
	batchedCalls int64
}

// NewBatcher wraps target with batching.
func NewBatcher(target batchInvoker, maxBatch int, maxWait time.Duration) *Batcher {
	if maxBatch < 1 {
		panic("faas: batcher maxBatch < 1")
	}
	return &Batcher{
		target:   target,
		maxBatch: maxBatch,
		maxWait:  maxWait,
		pending:  make(map[string][]*pendingCall),
		timers:   make(map[string]*time.Timer),
	}
}

// Flushes returns the number of batches dispatched.
func (b *Batcher) Flushes() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.flushes
}

// BatchedCalls returns how many calls shared a batch with another call.
func (b *Batcher) BatchedCalls() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.batchedCalls
}

// Invoke enqueues the call and blocks until its batch executes.
func (b *Batcher) Invoke(fn string, payload []byte) ([]byte, error) {
	call := &pendingCall{payload: payload, done: make(chan struct{})}

	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, ErrClosed
	}
	b.pending[fn] = append(b.pending[fn], call)
	n := len(b.pending[fn])
	if n >= b.maxBatch {
		batch := b.takeLocked(fn)
		b.mu.Unlock()
		b.dispatch(fn, batch)
	} else {
		if n == 1 && b.maxWait > 0 {
			b.timers[fn] = time.AfterFunc(b.maxWait, func() { b.Flush(fn) })
		}
		b.mu.Unlock()
	}

	<-call.done
	return call.out, call.err
}

// takeLocked removes and returns fn's pending batch; caller holds b.mu.
func (b *Batcher) takeLocked(fn string) []*pendingCall {
	batch := b.pending[fn]
	delete(b.pending, fn)
	if t, ok := b.timers[fn]; ok {
		t.Stop()
		delete(b.timers, fn)
	}
	return batch
}

// Flush dispatches fn's pending batch immediately (no-op when empty).
func (b *Batcher) Flush(fn string) {
	b.mu.Lock()
	batch := b.takeLocked(fn)
	b.mu.Unlock()
	b.dispatch(fn, batch)
}

// FlushAll dispatches every pending batch.
func (b *Batcher) FlushAll() {
	b.mu.Lock()
	fns := make([]string, 0, len(b.pending))
	for fn := range b.pending {
		fns = append(fns, fn)
	}
	b.mu.Unlock()
	for _, fn := range fns {
		b.Flush(fn)
	}
}

// Close flushes everything and rejects further calls.
func (b *Batcher) Close() {
	b.mu.Lock()
	b.closed = true
	b.mu.Unlock()
	b.FlushAll()
}

func (b *Batcher) dispatch(fn string, batch []*pendingCall) {
	if len(batch) == 0 {
		return
	}
	b.mu.Lock()
	b.flushes++
	if len(batch) > 1 {
		b.batchedCalls += int64(len(batch))
	}
	b.mu.Unlock()

	payloads := make([][]byte, len(batch))
	for i, c := range batch {
		payloads[i] = c.payload
	}
	outs, err := b.target.InvokeBatch(fn, payloads)
	for i, c := range batch {
		if err != nil {
			c.err = err
		} else {
			c.out = outs[i]
		}
		close(c.done)
	}
}
