package faas

import (
	"sync"
	"testing"
	"time"

	"continuum/internal/metrics"
)

func TestEndpointMetrics(t *testing.T) {
	reg := echoRegistry()
	ep := NewEndpoint(EndpointConfig{
		Name: "edge-1", Capacity: 2, ColdStart: time.Millisecond, WarmTTL: time.Minute,
	}, reg)
	m := metrics.NewRegistry()
	ep.SetMetrics(m)

	if _, err := ep.Invoke("echo", []byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := ep.Invoke("echo", []byte("b")); err != nil {
		t.Fatal(err)
	}
	if _, err := ep.Invoke("double", []byte("c")); err != nil {
		t.Fatal(err)
	}

	lat := m.Histogram(metrics.Label("faas_invoke_duration_seconds", "ep", "edge-1", "fn", "echo"))
	if lat.Count() != 2 {
		t.Fatalf("echo latency samples = %d, want 2", lat.Count())
	}
	// First echo paid the 1ms cold start; the histogram must have seen it.
	if lat.Max() < 0.001 {
		t.Fatalf("max latency %v below the cold-start floor", lat.Max())
	}
	cold := m.Counter(metrics.Label("faas_cold_starts_total", "ep", "edge-1", "fn", "echo"))
	warm := m.Counter(metrics.Label("faas_warm_hits_total", "ep", "edge-1", "fn", "echo"))
	if cold.Value() != 1 || warm.Value() != 1 {
		t.Fatalf("cold/warm = %d/%d, want 1/1", cold.Value(), warm.Value())
	}
	inv := m.Counter(metrics.Label("faas_invocations_total", "ep", "edge-1", "fn", "double"))
	if inv.Value() != 1 {
		t.Fatalf("double invocations = %d, want 1", inv.Value())
	}
	if qw := m.Histogram(metrics.Label("faas_queue_wait_seconds", "ep", "edge-1")); qw.Count() != 3 {
		t.Fatalf("queue wait samples = %d, want 3", qw.Count())
	}
	if g := m.Gauge(metrics.Label("faas_inflight", "ep", "edge-1")).Value(); g != 0 {
		t.Fatalf("inflight gauge settled at %v, want 0", g)
	}
}

func TestEndpointMetricsBatch(t *testing.T) {
	reg := echoRegistry()
	ep := NewEndpoint(EndpointConfig{Name: "e", Capacity: 1, WarmTTL: time.Minute}, reg)
	m := metrics.NewRegistry()
	ep.SetMetrics(m)
	if _, err := ep.InvokeBatch("echo", [][]byte{[]byte("a"), []byte("b"), []byte("c")}); err != nil {
		t.Fatal(err)
	}
	inv := m.Counter(metrics.Label("faas_invocations_total", "ep", "e", "fn", "echo"))
	if inv.Value() != 3 {
		t.Fatalf("batch invocations = %d, want 3", inv.Value())
	}
	// One latency sample for the batch (it shares one acquisition).
	lat := m.Histogram(metrics.Label("faas_invoke_duration_seconds", "ep", "e", "fn", "echo"))
	if lat.Count() != 1 {
		t.Fatalf("batch latency samples = %d, want 1", lat.Count())
	}
}

func TestEndpointWithoutMetricsRecordsNothing(t *testing.T) {
	reg := echoRegistry()
	ep := NewEndpoint(EndpointConfig{Name: "e", Capacity: 1, WarmTTL: time.Minute}, reg)
	if _, err := ep.Invoke("echo", []byte("a")); err != nil {
		t.Fatal(err)
	}
	// No registry attached: nothing to assert beyond "it didn't crash",
	// which is the contract (absent registry = zero instrumentation).
	if ep.Invocations() != 1 {
		t.Fatalf("invocations = %d", ep.Invocations())
	}
}

func TestEndpointMetricsConcurrent(t *testing.T) {
	reg := echoRegistry()
	ep := NewEndpoint(EndpointConfig{Name: "e", Capacity: 4, WarmTTL: time.Minute}, reg)
	m := metrics.NewRegistry()
	ep.SetMetrics(m)
	var wg sync.WaitGroup
	const calls = 64
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := ep.Invoke("echo", []byte("x")); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	lat := m.Histogram(metrics.Label("faas_invoke_duration_seconds", "ep", "e", "fn", "echo"))
	if lat.Count() != calls {
		t.Fatalf("latency samples = %d, want %d", lat.Count(), calls)
	}
	if got := m.Gauge(metrics.Label("faas_inflight", "ep", "e")).Value(); got != 0 {
		t.Fatalf("inflight = %v, want 0", got)
	}
}
